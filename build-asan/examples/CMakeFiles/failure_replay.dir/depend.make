# Empty dependencies file for failure_replay.
# This may be replaced when dependencies are built.
