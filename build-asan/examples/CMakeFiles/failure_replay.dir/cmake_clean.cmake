file(REMOVE_RECURSE
  "CMakeFiles/failure_replay.dir/failure_replay.cpp.o"
  "CMakeFiles/failure_replay.dir/failure_replay.cpp.o.d"
  "failure_replay"
  "failure_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
