file(REMOVE_RECURSE
  "CMakeFiles/app_porting.dir/app_porting.cpp.o"
  "CMakeFiles/app_porting.dir/app_porting.cpp.o.d"
  "app_porting"
  "app_porting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_porting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
