# Empty compiler generated dependencies file for app_porting.
# This may be replaced when dependencies are built.
