# Empty compiler generated dependencies file for serve_cli.
# This may be replaced when dependencies are built.
