file(REMOVE_RECURSE
  "CMakeFiles/serve_cli.dir/serve_cli.cpp.o"
  "CMakeFiles/serve_cli.dir/serve_cli.cpp.o.d"
  "serve_cli"
  "serve_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
