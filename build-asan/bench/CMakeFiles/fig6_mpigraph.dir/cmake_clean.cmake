file(REMOVE_RECURSE
  "CMakeFiles/fig6_mpigraph.dir/fig6_mpigraph.cpp.o"
  "CMakeFiles/fig6_mpigraph.dir/fig6_mpigraph.cpp.o.d"
  "fig6_mpigraph"
  "fig6_mpigraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mpigraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
