# Empty dependencies file for fig6_mpigraph.
# This may be replaced when dependencies are built.
