file(REMOVE_RECURSE
  "CMakeFiles/fig3_gemm.dir/fig3_gemm.cpp.o"
  "CMakeFiles/fig3_gemm.dir/fig3_gemm.cpp.o.d"
  "fig3_gemm"
  "fig3_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
