# Empty dependencies file for fig3_gemm.
# This may be replaced when dependencies are built.
