# Empty compiler generated dependencies file for micro_flowsim.
# This may be replaced when dependencies are built.
