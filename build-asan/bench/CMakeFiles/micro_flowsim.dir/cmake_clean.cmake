file(REMOVE_RECURSE
  "CMakeFiles/micro_flowsim.dir/micro_flowsim.cpp.o"
  "CMakeFiles/micro_flowsim.dir/micro_flowsim.cpp.o.d"
  "micro_flowsim"
  "micro_flowsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_flowsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
