# Empty compiler generated dependencies file for sec51_power.
# This may be replaced when dependencies are built.
