file(REMOVE_RECURSE
  "CMakeFiles/sec51_power.dir/sec51_power.cpp.o"
  "CMakeFiles/sec51_power.dir/sec51_power.cpp.o.d"
  "sec51_power"
  "sec51_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec51_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
