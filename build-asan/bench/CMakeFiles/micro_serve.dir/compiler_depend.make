# Empty compiler generated dependencies file for micro_serve.
# This may be replaced when dependencies are built.
