file(REMOVE_RECURSE
  "CMakeFiles/micro_serve.dir/micro_serve.cpp.o"
  "CMakeFiles/micro_serve.dir/micro_serve.cpp.o.d"
  "micro_serve"
  "micro_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
