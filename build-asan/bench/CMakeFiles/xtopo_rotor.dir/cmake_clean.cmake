file(REMOVE_RECURSE
  "CMakeFiles/xtopo_rotor.dir/xtopo_rotor.cpp.o"
  "CMakeFiles/xtopo_rotor.dir/xtopo_rotor.cpp.o.d"
  "xtopo_rotor"
  "xtopo_rotor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtopo_rotor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
