# Empty dependencies file for xtopo_rotor.
# This may be replaced when dependencies are built.
