# Empty dependencies file for table3_cpu_stream.
# This may be replaced when dependencies are built.
