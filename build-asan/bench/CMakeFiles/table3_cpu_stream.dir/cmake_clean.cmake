file(REMOVE_RECURSE
  "CMakeFiles/table3_cpu_stream.dir/table3_cpu_stream.cpp.o"
  "CMakeFiles/table3_cpu_stream.dir/table3_cpu_stream.cpp.o.d"
  "table3_cpu_stream"
  "table3_cpu_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cpu_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
