# Empty dependencies file for table1_system_specs.
# This may be replaced when dependencies are built.
