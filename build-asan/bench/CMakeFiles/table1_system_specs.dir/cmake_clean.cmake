file(REMOVE_RECURSE
  "CMakeFiles/table1_system_specs.dir/table1_system_specs.cpp.o"
  "CMakeFiles/table1_system_specs.dir/table1_system_specs.cpp.o.d"
  "table1_system_specs"
  "table1_system_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_system_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
