# Empty dependencies file for fig4_cpu_gpu_bw.
# This may be replaced when dependencies are built.
