file(REMOVE_RECURSE
  "CMakeFiles/fig4_cpu_gpu_bw.dir/fig4_cpu_gpu_bw.cpp.o"
  "CMakeFiles/fig4_cpu_gpu_bw.dir/fig4_cpu_gpu_bw.cpp.o.d"
  "fig4_cpu_gpu_bw"
  "fig4_cpu_gpu_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cpu_gpu_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
