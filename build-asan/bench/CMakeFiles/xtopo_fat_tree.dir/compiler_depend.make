# Empty compiler generated dependencies file for xtopo_fat_tree.
# This may be replaced when dependencies are built.
