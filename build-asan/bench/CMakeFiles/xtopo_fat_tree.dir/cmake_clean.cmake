file(REMOVE_RECURSE
  "CMakeFiles/xtopo_fat_tree.dir/xtopo_fat_tree.cpp.o"
  "CMakeFiles/xtopo_fat_tree.dir/xtopo_fat_tree.cpp.o.d"
  "xtopo_fat_tree"
  "xtopo_fat_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtopo_fat_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
