# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for xtopo_fat_tree.
