# Empty compiler generated dependencies file for fig5_gcd_gcd_bw.
# This may be replaced when dependencies are built.
