file(REMOVE_RECURSE
  "CMakeFiles/fig5_gcd_gcd_bw.dir/fig5_gcd_gcd_bw.cpp.o"
  "CMakeFiles/fig5_gcd_gcd_bw.dir/fig5_gcd_gcd_bw.cpp.o.d"
  "fig5_gcd_gcd_bw"
  "fig5_gcd_gcd_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_gcd_gcd_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
