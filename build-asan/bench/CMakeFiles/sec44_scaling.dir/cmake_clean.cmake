file(REMOVE_RECURSE
  "CMakeFiles/sec44_scaling.dir/sec44_scaling.cpp.o"
  "CMakeFiles/sec44_scaling.dir/sec44_scaling.cpp.o.d"
  "sec44_scaling"
  "sec44_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec44_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
