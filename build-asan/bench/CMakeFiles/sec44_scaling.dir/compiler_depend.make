# Empty compiler generated dependencies file for sec44_scaling.
# This may be replaced when dependencies are built.
