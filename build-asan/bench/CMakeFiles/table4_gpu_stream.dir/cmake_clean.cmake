file(REMOVE_RECURSE
  "CMakeFiles/table4_gpu_stream.dir/table4_gpu_stream.cpp.o"
  "CMakeFiles/table4_gpu_stream.dir/table4_gpu_stream.cpp.o.d"
  "table4_gpu_stream"
  "table4_gpu_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_gpu_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
