# Empty dependencies file for table4_gpu_stream.
# This may be replaced when dependencies are built.
