file(REMOVE_RECURSE
  "CMakeFiles/sec43_storage.dir/sec43_storage.cpp.o"
  "CMakeFiles/sec43_storage.dir/sec43_storage.cpp.o.d"
  "sec43_storage"
  "sec43_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec43_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
