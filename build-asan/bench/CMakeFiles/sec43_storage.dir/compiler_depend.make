# Empty compiler generated dependencies file for sec43_storage.
# This may be replaced when dependencies are built.
