# Empty dependencies file for table2_io_specs.
# This may be replaced when dependencies are built.
