file(REMOVE_RECURSE
  "CMakeFiles/table2_io_specs.dir/table2_io_specs.cpp.o"
  "CMakeFiles/table2_io_specs.dir/table2_io_specs.cpp.o.d"
  "table2_io_specs"
  "table2_io_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_io_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
