file(REMOVE_RECURSE
  "CMakeFiles/table5_gpcnet.dir/table5_gpcnet.cpp.o"
  "CMakeFiles/table5_gpcnet.dir/table5_gpcnet.cpp.o.d"
  "table5_gpcnet"
  "table5_gpcnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_gpcnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
