# Empty dependencies file for table5_gpcnet.
# This may be replaced when dependencies are built.
