file(REMOVE_RECURSE
  "CMakeFiles/table7_ecp.dir/table7_ecp.cpp.o"
  "CMakeFiles/table7_ecp.dir/table7_ecp.cpp.o.d"
  "table7_ecp"
  "table7_ecp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_ecp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
