# Empty compiler generated dependencies file for table7_ecp.
# This may be replaced when dependencies are built.
