file(REMOVE_RECURSE
  "CMakeFiles/sec54_resiliency.dir/sec54_resiliency.cpp.o"
  "CMakeFiles/sec54_resiliency.dir/sec54_resiliency.cpp.o.d"
  "sec54_resiliency"
  "sec54_resiliency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec54_resiliency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
