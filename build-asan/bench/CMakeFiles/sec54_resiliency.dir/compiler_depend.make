# Empty compiler generated dependencies file for sec54_resiliency.
# This may be replaced when dependencies are built.
