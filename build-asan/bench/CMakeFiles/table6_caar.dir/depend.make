# Empty dependencies file for table6_caar.
# This may be replaced when dependencies are built.
