file(REMOVE_RECURSE
  "CMakeFiles/table6_caar.dir/table6_caar.cpp.o"
  "CMakeFiles/table6_caar.dir/table6_caar.cpp.o.d"
  "table6_caar"
  "table6_caar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_caar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
