file(REMOVE_RECURSE
  "libxscale.a"
)
