
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cpp" "src/CMakeFiles/xscale.dir/apps/app.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/apps/app.cpp.o.d"
  "/root/repo/src/apps/catalog.cpp" "src/CMakeFiles/xscale.dir/apps/catalog.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/apps/catalog.cpp.o.d"
  "/root/repo/src/apps/hpl.cpp" "src/CMakeFiles/xscale.dir/apps/hpl.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/apps/hpl.cpp.o.d"
  "/root/repo/src/apps/tables.cpp" "src/CMakeFiles/xscale.dir/apps/tables.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/apps/tables.cpp.o.d"
  "/root/repo/src/hw/gpu.cpp" "src/CMakeFiles/xscale.dir/hw/gpu.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/hw/gpu.cpp.o.d"
  "/root/repo/src/hw/memory.cpp" "src/CMakeFiles/xscale.dir/hw/memory.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/hw/memory.cpp.o.d"
  "/root/repo/src/hw/node.cpp" "src/CMakeFiles/xscale.dir/hw/node.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/hw/node.cpp.o.d"
  "/root/repo/src/hw/xgmi.cpp" "src/CMakeFiles/xscale.dir/hw/xgmi.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/hw/xgmi.cpp.o.d"
  "/root/repo/src/machines/machine.cpp" "src/CMakeFiles/xscale.dir/machines/machine.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/machines/machine.cpp.o.d"
  "/root/repo/src/mpi/collective_sim.cpp" "src/CMakeFiles/xscale.dir/mpi/collective_sim.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/mpi/collective_sim.cpp.o.d"
  "/root/repo/src/mpi/comm.cpp" "src/CMakeFiles/xscale.dir/mpi/comm.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/mpi/comm.cpp.o.d"
  "/root/repo/src/mpi/gpcnet.cpp" "src/CMakeFiles/xscale.dir/mpi/gpcnet.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/mpi/gpcnet.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/CMakeFiles/xscale.dir/net/fabric.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/net/fabric.cpp.o.d"
  "/root/repo/src/net/flowsim.cpp" "src/CMakeFiles/xscale.dir/net/flowsim.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/net/flowsim.cpp.o.d"
  "/root/repo/src/net/rotor.cpp" "src/CMakeFiles/xscale.dir/net/rotor.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/net/rotor.cpp.o.d"
  "/root/repo/src/net/snapshot.cpp" "src/CMakeFiles/xscale.dir/net/snapshot.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/net/snapshot.cpp.o.d"
  "/root/repo/src/net/solver.cpp" "src/CMakeFiles/xscale.dir/net/solver.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/net/solver.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "src/CMakeFiles/xscale.dir/obs/metrics.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/options.cpp" "src/CMakeFiles/xscale.dir/obs/options.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/obs/options.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "src/CMakeFiles/xscale.dir/obs/trace.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/obs/trace.cpp.o.d"
  "/root/repo/src/perf/host_stream.cpp" "src/CMakeFiles/xscale.dir/perf/host_stream.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/perf/host_stream.cpp.o.d"
  "/root/repo/src/perf/roofline.cpp" "src/CMakeFiles/xscale.dir/perf/roofline.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/perf/roofline.cpp.o.d"
  "/root/repo/src/power/power.cpp" "src/CMakeFiles/xscale.dir/power/power.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/power/power.cpp.o.d"
  "/root/repo/src/resil/jobsim.cpp" "src/CMakeFiles/xscale.dir/resil/jobsim.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/resil/jobsim.cpp.o.d"
  "/root/repo/src/resil/resiliency.cpp" "src/CMakeFiles/xscale.dir/resil/resiliency.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/resil/resiliency.cpp.o.d"
  "/root/repo/src/sched/slurm.cpp" "src/CMakeFiles/xscale.dir/sched/slurm.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/sched/slurm.cpp.o.d"
  "/root/repo/src/serve/batcher.cpp" "src/CMakeFiles/xscale.dir/serve/batcher.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/serve/batcher.cpp.o.d"
  "/root/repo/src/serve/frontend.cpp" "src/CMakeFiles/xscale.dir/serve/frontend.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/serve/frontend.cpp.o.d"
  "/root/repo/src/serve/session.cpp" "src/CMakeFiles/xscale.dir/serve/session.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/serve/session.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/xscale.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/parallel.cpp" "src/CMakeFiles/xscale.dir/sim/parallel.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/sim/parallel.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/xscale.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/table.cpp" "src/CMakeFiles/xscale.dir/sim/table.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/sim/table.cpp.o.d"
  "/root/repo/src/sim/units.cpp" "src/CMakeFiles/xscale.dir/sim/units.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/sim/units.cpp.o.d"
  "/root/repo/src/storage/campaign.cpp" "src/CMakeFiles/xscale.dir/storage/campaign.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/storage/campaign.cpp.o.d"
  "/root/repo/src/storage/nvme.cpp" "src/CMakeFiles/xscale.dir/storage/nvme.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/storage/nvme.cpp.o.d"
  "/root/repo/src/storage/orion.cpp" "src/CMakeFiles/xscale.dir/storage/orion.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/storage/orion.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/CMakeFiles/xscale.dir/topo/topology.cpp.o" "gcc" "src/CMakeFiles/xscale.dir/topo/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
