# Empty dependencies file for xscale.
# This may be replaced when dependencies are built.
