file(REMOVE_RECURSE
  "CMakeFiles/golden_check.dir/golden_check.cpp.o"
  "CMakeFiles/golden_check.dir/golden_check.cpp.o.d"
  "golden_check"
  "golden_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/golden_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
