# Empty dependencies file for golden_check.
# This may be replaced when dependencies are built.
