# Empty dependencies file for test_rotor.
# This may be replaced when dependencies are built.
