file(REMOVE_RECURSE
  "CMakeFiles/test_rotor.dir/test_rotor.cpp.o"
  "CMakeFiles/test_rotor.dir/test_rotor.cpp.o.d"
  "test_rotor"
  "test_rotor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rotor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
