file(REMOVE_RECURSE
  "CMakeFiles/test_resil.dir/test_resil.cpp.o"
  "CMakeFiles/test_resil.dir/test_resil.cpp.o.d"
  "test_resil"
  "test_resil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
