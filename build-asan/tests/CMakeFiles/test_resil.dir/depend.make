# Empty dependencies file for test_resil.
# This may be replaced when dependencies are built.
