// Interconnect design study: what if Frontier had been built differently?
//
// Sweeps the dragonfly taper (bundle width between compute groups), compares
// against a non-blocking fat-tree of the same endpoint count, and shows the
// placement-policy interaction — the §3.2/§4.2.2 trade-offs made explorable.
//
//   ./examples/topology_study
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;
using namespace xscale::units;

namespace {

// Average all-global per-NIC bandwidth for a shift permutation.
double global_shift_bw(const net::Fabric& fabric, int nodes, int nics) {
  net::PairList pairs;
  for (int i = 0; i < nodes; ++i)
    pairs.emplace_back(i * nics, ((i + nodes / 2) % nodes) * nics);
  const auto rates = fabric.steady_rates(pairs);
  double sum = 0;
  for (double r : rates) sum += r;
  return sum / static_cast<double>(rates.size());
}

}  // namespace

int main() {
  std::printf("=== Interconnect design study ===\n\n");
  const auto frontier = machines::frontier();

  std::printf("--- Taper sweep: links per compute-group pair (Frontier ships 4) ---\n");
  std::printf("%-8s %-12s %-14s %-16s\n", "links", "taper", "global TB/s",
              "all-global GB/s/NIC");
  for (int links : {2, 4, 8, 12}) {
    machines::FrontierFabricSpec spec;
    spec.compute_compute_links = links;
    auto topo = machines::frontier_topology(spec);
    double global = 0;
    for (const auto& l : topo.links())
      if (l.kind == topo::LinkKind::Global && topo.group_of_switch(l.src) < 74 &&
          topo.group_of_switch(l.dst) < 74)
        global += l.capacity;
    global /= 2;
    const double taper =
        global / 74.0 * 2.0 / topo.injection_capacity_per_group(0);
    net::Fabric fabric(std::move(topo), frontier.fabric_defaults);
    const double bw = global_shift_bw(fabric, frontier.total_nodes, 4);
    char taper_str[16];
    std::snprintf(taper_str, sizeof(taper_str), "%.0f%%", 100 * taper);
    std::printf("%-8d %-12s %-14.1f %-16.2f%s\n", links, taper_str, global / 1e12,
                bw / 1e9, links == 4 ? "   <- as built (57% taper)" : "");
  }

  std::printf("\n--- Same endpoints as a non-blocking fat-tree (Summit-style) ---\n");
  {
    auto ft = topo::Topology::fat_tree(74 * 32, 16, Gbps(200), 250e-9);
    net::FabricConfig cfg;
    cfg.nic_efficiency = 0.70;
    net::Fabric fabric(std::move(ft), cfg);
    const double bw = global_shift_bw(fabric, frontier.total_nodes, 4);
    std::printf("fat-tree all-global: %.2f GB/s/NIC — but needs ~2x the switches\n"
                "and cables (the cost trade §4.2.2 explains).\n",
                bw / 1e9);
  }

  std::printf("\n--- Placement interaction (512-node job, minimal routing) ---\n");
  auto cfg = frontier.fabric_defaults;
  cfg.routing = net::Routing::Minimal;
  auto fabric = frontier.build_fabric(cfg);
  sched::Scheduler slurm(frontier.compute_nodes, 128);
  for (auto policy : {sched::Placement::Pack, sched::Placement::Spread,
                      sched::Placement::Random}) {
    const auto alloc = slurm.allocate(512, policy).value();
    mpi::SimComm comm(frontier, &fabric, alloc.nodes, {.ppn = 8});
    std::printf("  %-7s: sustained %6.2f GB/s/rank, latency %s\n",
                sched::to_string(policy), comm.sustained_per_rank_bw() / 1e9,
                fmt_time(comm.avg_latency()).c_str());
    slurm.release(alloc);
  }
  std::printf("\nSlurm's policy (§3.4.2): pack below one group, spread above.\n");
  return 0;
}
