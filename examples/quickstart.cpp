// Quickstart: build the simulated Frontier, inspect the node, submit a job
// through the Slurm-like scheduler, measure the fabric the job actually got,
// and run one proxy application on it.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;
using namespace xscale::units;

int main() {
  std::printf("xscale %s — %s\n\n", kVersion, kPaper);

  // 1. The machine: 9,472 Bard Peak nodes + Slingshot dragonfly.
  const auto frontier = machines::frontier();
  std::printf("Machine: %s, %d nodes of '%s'\n", frontier.name.c_str(),
              frontier.total_nodes, frontier.node.name.c_str());
  std::printf("  per node: %d GCDs, %s HBM @ %s, %d NICs @ %s\n",
              frontier.node.gpus, fmt_bytes_iec(frontier.node.hbm_capacity()).c_str(),
              fmt_rate(frontier.node.hbm_bandwidth()).c_str(), frontier.node.nics,
              fmt_rate(frontier.node.nic.rate).c_str());
  std::printf("  peak FP64 DGEMM: %s\n\n", fmt_flops(frontier.fp64_dgemm_peak()).c_str());

  // 2. The fabric (takes a moment: 2,464 switches, ~160k links).
  auto fabric = frontier.build_fabric();
  std::printf("Fabric: %d groups, %d switches, %d endpoints, %s routing\n\n",
              fabric.topology().num_groups(), fabric.topology().num_switches(),
              fabric.topology().num_endpoints(), net::to_string(fabric.config().routing));

  // 3. Schedule a 512-node job (Auto placement spreads it across groups).
  sched::Scheduler slurm(frontier.compute_nodes, 128);
  const auto alloc = slurm.allocate(512).value();
  std::printf("Job %d allocated %zu nodes, Slingshot VNI %u\n", alloc.job_id,
              alloc.nodes.size(), alloc.vni);

  // 4. What bandwidth and latency does this allocation actually see?
  mpi::SimComm comm(frontier, &fabric, alloc.nodes, {.ppn = 8});
  std::printf("  sustained per-rank bandwidth : %s\n",
              fmt_rate(comm.sustained_per_rank_bw()).c_str());
  std::printf("  average pt2pt latency        : %s\n",
              fmt_time(comm.avg_latency()).c_str());
  std::printf("  8 B allreduce across the job : %s\n\n",
              fmt_time(comm.allreduce_time(8)).c_str());

  // 5. Run a proxy app (Cholla, astrophysical hydro) on the allocation.
  const auto run = apps::run_app(apps::cholla(), frontier, &fabric, alloc.nodes);
  std::printf("Cholla on %d nodes: %.3e %s, step time %s, parallel eff %.0f%%\n",
              run.nodes, run.fom, apps::cholla().fom_units.c_str(),
              fmt_time(run.step_time).c_str(), 100.0 * run.parallel_efficiency);

  slurm.release(alloc);
  std::printf("\nDone. See bench/ for every table and figure of the paper.\n");
  return 0;
}
