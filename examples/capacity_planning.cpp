// Capacity planning for a simulation campaign on the simulated Frontier:
// how large a job, how often to checkpoint, what I/O costs, and what MTTI
// means for expected progress. Ties together scheduler, storage, resiliency
// and power — the operational questions Section 4.3/5.4 of the paper answer.
//
//   ./examples/capacity_planning [nodes] [hbm_fraction]
#include <cstdio>
#include <cstdlib>

#include "core/xscale.hpp"

using namespace xscale;
using namespace xscale::units;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 4096;
  const double hbm_fraction = argc > 2 ? std::atof(argv[2]) : 0.15;

  const auto frontier = machines::frontier();
  storage::Orion orion;
  resil::ResiliencyModel resiliency;

  std::printf("=== Campaign plan: %d-node job on simulated Frontier ===\n\n", nodes);

  // Checkpoint footprint: the paper notes 90% of apps write <= 15% of GPU
  // memory per hour.
  const double ckpt_bytes =
      hbm_fraction * static_cast<double>(nodes) * frontier.node.hbm_capacity();
  std::printf("Checkpoint size: %s (%.0f%% of the job's HBM)\n",
              fmt_bytes_si(ckpt_bytes).c_str(), 100 * hbm_fraction);

  const auto plan = resiliency.plan_checkpoints(orion, ckpt_bytes, nodes);
  std::printf("Write time through Orion : %s\n", fmt_time(plan.write_time_s).c_str());
  std::printf("System MTTI              : %.1f h\n", resiliency.mtti_hours());
  std::printf("Optimal interval (Young) : %s\n", fmt_time(plan.interval_s).c_str());
  std::printf("Expected efficiency      : %.1f%%\n\n", 100 * plan.efficiency);

  // Node-local burst alternative (§3.3: node-local is for write caching).
  const storage::NodeLocalNvme nvme(frontier.node.nvme);
  const double burst_t =
      ckpt_bytes / static_cast<double>(nodes) / nvme.measured_write_bw();
  std::printf("Alternative: burst to node-local NVMe first\n");
  std::printf("  local write: %s (then drain to Orion asynchronously)\n",
              fmt_time(burst_t).c_str());
  resil::ResiliencyModel r2;
  std::printf("  efficiency with burst checkpoints: %.1f%%\n\n",
              100 * r2.checkpoint_efficiency(burst_t));

  // Power/energy of the campaign: 24 h of bandwidth-bound running.
  power::SystemPowerModel pm;
  const double frac = static_cast<double>(nodes) / frontier.total_nodes;
  const double watts = pm.system_power(power::stream_activity()) * frac;
  std::printf("Power draw (memory-bound workload, %d nodes): %.2f MW\n", nodes,
              watts / 1e6);
  std::printf("24 h of runtime: %.1f MWh (~$%.0fk at the DOE's $1M/MW-yr rule)\n",
              watts * 24 / 1e6, watts / 1e6 * 1e6 / 365.0 / 1e3);

  // Queue simulation: where does this job land in a busy day?
  sched::Scheduler slurm(frontier.compute_nodes, 128);
  sim::Engine eng;
  std::vector<sched::JobRequest> day;
  sim::Rng rng(42);
  for (int i = 0; i < 40; ++i)
    day.push_back({static_cast<int>(rng.index(2000)) + 64,
                   rng.uniform(600.0, 7200.0), sched::Placement::Auto});
  day.push_back({nodes, 24 * 3600.0, sched::Placement::Auto});  // ours, last in queue
  const auto rec = slurm.run_workload(eng, day);
  std::printf("\nQueue simulation (41 jobs): our job waits %s, machine utilization %.0f%%\n",
              fmt_time(rec.back().wait_time()).c_str(),
              100 * slurm.last_utilization());
  return 0;
}
