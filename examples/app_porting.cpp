// Application-porting what-if: how does a code's speedup on Frontier decompose
// into hardware vs software, and what would more (or less) optimization buy?
//
// Recreates the §4.4 narrative quantitatively for Cholla: its 20x over Summit
// is ~4-5x algorithmic work times ~4x machine. Then sweeps the optimization
// ("roofline fraction") axis for a user's hypothetical port.
//
//   ./examples/app_porting [frontier_nodes]
#include <cstdio>
#include <cstdlib>

#include "core/xscale.hpp"

using namespace xscale;

int main(int argc, char** argv) {
  const int nodes = argc > 1 ? std::atoi(argv[1]) : 9216;
  const auto frontier = machines::frontier();
  const auto summit = machines::summit();

  std::printf("=== Porting study: where does a Frontier speedup come from? ===\n\n");

  // Decompose Cholla's speedup: run the *unoptimized* code on both machines,
  // then the optimized code on Frontier.
  auto unopt = apps::cholla();
  unopt.efficiency["Frontier"] = unopt.efficiency["Summit"];  // no CAAR work
  const auto base_s = apps::run_app(apps::cholla(), summit, nullptr, 4600);
  const auto unopt_f = apps::run_app(unopt, frontier, nullptr, nodes);
  const auto opt_f = apps::run_app(apps::cholla(), frontier, nullptr, nodes);

  std::printf("Cholla decomposition (vs Summit baseline, %d Frontier nodes):\n", nodes);
  std::printf("  hardware-only speedup (same code)  : %5.1fx\n",
              unopt_f.fom / base_s.fom);
  std::printf("  + CAAR algorithmic work            : %5.1fx more\n",
              opt_f.fom / unopt_f.fom);
  std::printf("  total                              : %5.1fx  (paper: 20x, of "
              "which 4-5x algorithmic)\n\n",
              opt_f.fom / base_s.fom);

  // Sweep the optimization axis for a hypothetical bandwidth-bound port.
  std::printf("Your port: bandwidth-bound stencil on %d nodes.\n", nodes);
  std::printf("%-26s %-14s %-10s\n", "roofline fraction reached", "FOM (cells/s)",
              "vs 0.15");
  double ref = 0;
  for (double eff : {0.15, 0.30, 0.45, 0.60, 0.75, 0.90}) {
    auto spec = apps::athenapk();
    spec.name = "your-port";
    spec.efficiency = {{"Frontier", eff}};
    const auto r = apps::run_app(spec, frontier, nullptr, nodes);
    if (ref == 0) ref = r.fom;
    std::printf("  %.2f                     %.3e      %4.1fx%s\n", eff, r.fom,
                r.fom / ref,
                eff == 0.75 ? "   <- typical well-tuned HIP port" : "");
  }

  std::printf("\nMatrix-core leverage (compute-bound codes):\n");
  const auto g = hw::mi250x_gcd();
  std::printf("  FP64 vector peak %.1f TF vs matrix-core DGEMM %.1f TF: %.2fx for\n"
              "  free if your kernels map to MFMA tiles (LSMS did; Figure 3).\n",
              g.fp64_vector / 1e12, g.gemm_achieved(hw::Precision::FP64, 16384) / 1e12,
              g.gemm_achieved(hw::Precision::FP64, 16384) / g.fp64_vector);

  std::printf("\nData-movement advice the paper encodes (§3.1.2): HBM:DDR ratio is\n"
              "%.0fx — keep data resident in HBM; a CPU round-trip costs ~%.1fx\n"
              "the bandwidth of an HBM pass.\n",
              frontier.node.hbm_to_ddr_ratio(),
              frontier.node.hbm_bandwidth() / (frontier.node.fabric.cpu_gcd_single_core_bw() * 8));
  return 0;
}
