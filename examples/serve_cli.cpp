// xscale-as-a-service, smallest possible transport: the line protocol from
// serve::Frontend over stdin/stdout. Pipe a script in, or wrap the binary
// with `socat TCP-LISTEN:… EXEC:…` for an actual socket — the protocol layer
// neither knows nor cares.
//
//   ./serve_cli [endpoints] [max_sessions]
//
// Builds one shared TopologySnapshot for a dragonfly of `endpoints`
// (default 1024) and serves concurrent failure-overlay scenarios against it.
//
// Example session:
//   OPEN                     -> OK 0
//   FAIL 0 7                 -> OK
//   FLOW 0 0 512 1e9         -> OK
//   SUBMIT 0                 -> OK 1
//   RUN                      -> RESULT 0 0 <makespan> 0 / OK 1
//   METRICS                  -> METRIC serve.* ... / OK
//   QUIT                     -> OK
#include <cstdlib>
#include <iostream>

#include "serve/frontend.hpp"
#include "topo/topology.hpp"

namespace {

xscale::topo::Topology build_topology(int endpoints) {
  using xscale::topo::Topology;
  // Same shape table as bench/micro_flowsim: groups x switches x endpoints.
  if (endpoints <= 128) return Topology::uniform_dragonfly(8, {4, 4}, 1, 25e9, 180e-9);
  if (endpoints <= 512) return Topology::uniform_dragonfly(8, {8, 8}, 1, 25e9, 180e-9);
  return Topology::uniform_dragonfly(16, {8, 8}, 1, 25e9, 180e-9);
}

}  // namespace

int main(int argc, char** argv) {
  const int endpoints = argc > 1 ? std::atoi(argv[1]) : 1024;
  const int max_sessions = argc > 2 ? std::atoi(argv[2]) : 64;

  auto snap = xscale::net::make_snapshot(build_topology(endpoints));
  std::cerr << "serve_cli: " << snap->topology().num_endpoints()
            << " endpoints, " << snap->num_links() << " links, up to "
            << max_sessions << " sessions\n";

  xscale::serve::BatcherConfig cfg;
  cfg.max_sessions = max_sessions;
  xscale::serve::Batcher batcher(snap, cfg);
  xscale::serve::Frontend frontend(batcher);
  frontend.serve(std::cin, std::cout);
  return 0;
}
