// Failure replay: play a week of simulated Frontier failures against a
// long-running job and compare checkpoint strategies — the operational
// consequence of §5.4's MTTI numbers.
//
//   ./examples/failure_replay [work_hours]
#include <cstdio>
#include <cstdlib>

#include "core/xscale.hpp"
#include "resil/jobsim.hpp"

using namespace xscale;
using namespace xscale::units;

int main(int argc, char** argv) {
  const double work_hours = argc > 1 ? std::atof(argv[1]) : 168.0;  // one week

  resil::ResiliencyModel model;
  storage::Orion orion;
  const double ckpt_orion =
      orion.ingest_time(TB(776), 9408);  // full-system checkpoint to Lustre
  const storage::NodeLocalNvme nvme(hw::bard_peak().nvme);
  const double ckpt_burst = TB(776) / 9408 / nvme.measured_write_bw();

  std::printf("=== Replaying %.0f hours of work on simulated Frontier ===\n",
              work_hours);
  std::printf("MTTI %.1f h; checkpoint costs: Orion %s, node-local burst %s\n\n",
              model.mtti_hours(), fmt_time(ckpt_orion).c_str(),
              fmt_time(ckpt_burst).c_str());

  struct Strategy {
    const char* name;
    double write_s;
    double interval_s;  // 0 = Young's optimum
  };
  const Strategy strategies[] = {
      {"Orion, Young-optimal interval", ckpt_orion, 0},
      {"Orion, hourly", ckpt_orion, 3600},
      {"Orion, every 6 hours", ckpt_orion, 6 * 3600},
      {"burst buffer, Young-optimal", ckpt_burst, 0},
      {"no checkpoints (restart from zero)", 1.0, work_hours * 3600},
  };

  std::printf("%-36s %10s %9s %9s %11s\n", "strategy", "wall (h)", "failures",
              "ckpts", "efficiency");
  for (const auto& st : strategies) {
    resil::JobSimConfig cfg;
    cfg.work_hours = work_hours;
    cfg.checkpoint_write_s = st.write_s;
    cfg.checkpoint_interval_s = st.interval_s;
    cfg.restart_s = 600;
    const auto s = resil::replay_jobs(model, 0xF00D, 100, cfg);
    std::printf("%-36s %10.1f %9d %9d %9.1f%%  [p5 %.0f%% p95 %.0f%%]\n", st.name,
                s.mean.wall_hours, s.mean.failures, s.mean.checkpoints,
                100 * s.mean.efficiency, 100 * s.efficiency_p5,
                100 * s.efficiency_p95);
  }

  std::printf("\nYoung/Daly predictions: Orion %.1f%%, burst %.1f%% — the replay's\n"
              "means should straddle them.\n",
              100 * model.checkpoint_efficiency(ckpt_orion),
              100 * model.checkpoint_efficiency(ckpt_burst));
  std::printf("\nThe 'no checkpoints' row is why §5.4 matters: at a ~4.6 h MTTI a\n"
              "week-long uncheckpointed job essentially never finishes.\n");
  return 0;
}
