// Tests for the discrete-event engine, RNG, statistics, and table utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "sim/units.hpp"

namespace {

using xscale::sim::Engine;
using xscale::sim::Histogram;
using xscale::sim::OnlineStats;
using xscale::sim::Rng;
using xscale::sim::SampleSet;

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, EqualTimesFireInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NestedSchedulingAdvancesClock) {
  Engine e;
  double fired_at = -1;
  e.schedule_at(1.0, [&] {
    e.schedule_in(0.5, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const auto id = e.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // second cancel is a no-op
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 10; ++i) e.schedule_at(i, [&] { ++count; });
  e.run_until(5.0);
  EXPECT_EQ(count, 5);  // events at t=1..5 inclusive
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  e.run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, PastTimesClampToNow) {
  Engine e;
  double t = -1;
  e.schedule_at(2.0, [&] {
    e.schedule_at(1.0, [&] { t = e.now(); });  // in the past
  });
  e.run();
  EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(Engine, StopHaltsRun) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 10; ++i)
    e.schedule_at(i, [&] {
      if (++count == 3) e.stop();
    });
  e.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(e.pending_events(), 7u);
}

TEST(Engine, RunUntilExecutesEventExactlyAtBoundary) {
  Engine e;
  bool at_end = false, after_end = false;
  e.schedule_at(2.0, [&] { at_end = true; });
  e.schedule_at(2.0 + 1e-9, [&] { after_end = true; });
  e.run_until(2.0);
  EXPECT_TRUE(at_end);
  EXPECT_FALSE(after_end);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
}

// Regression: a cancelled entry at the heap top used to pass the
// `top().t > t_end` check, and step() would then skip it and execute the
// next *live* event even when that event lay beyond t_end.
TEST(Engine, CancelledTopDoesNotLeakLaterEventsThroughRunUntil) {
  Engine e;
  bool late_ran = false;
  const auto early = e.schedule_at(1.0, [] {});
  e.schedule_at(5.0, [&] { late_ran = true; });
  e.cancel(early);
  e.run_until(2.0);
  EXPECT_FALSE(late_ran);
  EXPECT_DOUBLE_EQ(e.now(), 2.0);
  e.run();
  EXPECT_TRUE(late_ran);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Engine, CancelThenRunUntilAtExactCancelledTime) {
  Engine e;
  int ran = 0;
  const auto a = e.schedule_at(3.0, [&] { ++ran; });
  e.schedule_at(3.0, [&] { ++ran; });  // same time, later insertion
  e.cancel(a);
  e.run_until(3.0);
  EXPECT_EQ(ran, 1);  // the live same-time event still fires
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, CompactionBoundsCancelledHeapEntries) {
  Engine e;
  // Churn: schedule/cancel pairs with one long-lived survivor, the FlowSim
  // reschedule pattern that used to grow the heap without bound.
  e.schedule_at(1e9, [] {});
  for (int i = 0; i < 100000; ++i) {
    const auto id = e.schedule_at(1.0 + i, [] {});
    e.cancel(id);
    EXPECT_LE(e.cancelled_events(), e.pending_events());
    EXPECT_LE(e.heap_size(), 2 * e.pending_events());
  }
  EXPECT_EQ(e.pending_events(), 1u);
  EXPECT_GT(e.compactions(), 0u);
  e.run();
  EXPECT_DOUBLE_EQ(e.now(), 1e9);
}

TEST(Engine, RejectsNonFiniteTimes) {
  Engine e;
  EXPECT_THROW(e.schedule_at(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(e.schedule_at(std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(e.schedule_at(-std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(e.schedule_in(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_EQ(e.pending_events(), 0u);  // nothing leaked into the heap
  // Finite negative times keep the documented clamp-to-now behaviour.
  double fired_at = -1;
  e.schedule_at(-5.0, [&] { fired_at = e.now(); });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 0.0);
}

TEST(Engine, SameTimeFifoOrderSurvivesCompaction) {
  Engine e;
  std::vector<int> order;
  // Interleave same-time events with cancel fodder so compaction (triggered
  // when stale entries outnumber live ones) rebuilds the heap mid-sequence.
  std::vector<std::uint64_t> fodder;
  for (int i = 0; i < 8; ++i)
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  for (int i = 0; i < 64; ++i) fodder.push_back(e.schedule_at(2.0, [] {}));
  for (std::uint64_t id : fodder) e.cancel(id);
  EXPECT_GT(e.compactions(), 0u);
  for (int i = 8; i < 16; ++i)
    e.schedule_at(1.0, [&order, i] { order.push_back(i); });
  e.run();
  std::vector<int> expect;
  for (int i = 0; i < 16; ++i) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

TEST(Engine, CompactionPreservesOrderAndDeterminism) {
  Engine e;
  std::vector<int> order;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 64; ++i)
    ids.push_back(e.schedule_at(static_cast<double>(i % 7), [&order, i] {
      order.push_back(i);
    }));
  for (int i = 0; i < 64; i += 2) e.cancel(ids[static_cast<std::size_t>(i)]);
  e.run();
  // Odd-index events only, time-major then insertion order.
  std::vector<int> expect;
  for (int t = 0; t < 7; ++t)
    for (int i = 1; i < 64; i += 2)
      if (i % 7 == t) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SubstreamsAreIndependentOfDrawOrder) {
  Rng master(7);
  Rng s1 = master.substream(1);
  // Drawing from the master must not change what substream(2) yields.
  (void)master.uniform();
  Rng s2 = master.substream(2);
  Rng master2(7);
  Rng s2b = master2.substream(2);
  EXPECT_DOUBLE_EQ(s2.uniform(), s2b.uniform());
  EXPECT_NE(s1.uniform(), s2.uniform());
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, IndexStaysInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.index(17), 17u);
}

TEST(Stats, OnlineMeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, PercentileNearestRank) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Stats, PercentileAfterInterleavedAdds) {
  SampleSet s;
  s.add(5);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  s.add(1);  // resorting must happen after new samples
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Stats, PercentileEmptySetIsGuarded) {
  SampleSet s;
  ASSERT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 0.0);
}

TEST(Stats, PercentileRejectsOutOfRangeP) {
  SampleSet s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_THROW(s.percentile(-0.001), std::invalid_argument);
  EXPECT_THROW(s.percentile(100.001), std::invalid_argument);
  EXPECT_THROW(s.percentile(std::nan("")), std::invalid_argument);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);    // boundaries stay valid
  EXPECT_DOUBLE_EQ(s.percentile(100), 2.0);
}

TEST(Stats, PercentileIgnoresNaNSamples) {
  // NaN breaks operator<'s strict weak ordering; it must neither poison the
  // sort nor be reported as a percentile.
  SampleSet s;
  s.add(3.0);
  s.add(std::nan(""));
  s.add(1.0);
  s.add(std::nan(""));
  s.add(2.0);
  EXPECT_EQ(s.nan_count(), 2u);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 3.0);  // not NaN
  SampleSet all_nan;
  all_nan.add(std::nan(""));
  EXPECT_TRUE(std::isnan(all_nan.percentile(50)));
}

TEST(Stats, HistogramBinsAndOutlierCounts) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.99);
  h.add(-5.0);   // below range: explicit underflow, not the first bin
  h.add(100.0);  // above range: explicit overflow, not the last bin
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 2.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
}

TEST(Stats, HistogramClampPolicyFoldsOutliersIntoEdgeBins) {
  Histogram h(0.0, 10.0, 10, Histogram::OutlierPolicy::Clamp);
  h.add(-5.0, 2.0);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 0.0);
}

TEST(Stats, HistogramRoutesNaNSeparately) {
  // Under the old clamping, a NaN sample fed std::clamp a NaN index (UB).
  for (auto policy :
       {Histogram::OutlierPolicy::Count, Histogram::OutlierPolicy::Clamp}) {
    Histogram h(0.0, 10.0, 4, policy);
    h.add(std::nan(""), 3.0);
    EXPECT_DOUBLE_EQ(h.total(), 0.0);
    EXPECT_DOUBLE_EQ(h.nan_weight(), 3.0);
    for (std::size_t i = 0; i < h.bins(); ++i) EXPECT_DOUBLE_EQ(h.count(i), 0.0);
  }
}

TEST(Stats, HistogramRejectsDegenerateRange) {
  EXPECT_THROW(Histogram(5.0, 5.0, 10), std::invalid_argument);   // hi == lo
  EXPECT_THROW(Histogram(5.0, 4.0, 10), std::invalid_argument);   // hi < lo
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);   // no bins
  EXPECT_THROW(Histogram(0.0, std::numeric_limits<double>::infinity(), 4),
               std::invalid_argument);
  EXPECT_NO_THROW(Histogram(-1.0, 1.0, 1));
}

TEST(Stats, HistogramInfinitySamplesAreOutliers) {
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 0.0);
}

TEST(Units, ConversionsRoundTrip) {
  using namespace xscale::units;
  EXPECT_DOUBLE_EQ(GiB(1), 1073741824.0);
  EXPECT_DOUBLE_EQ(Gbps(200), 25e9);
  EXPECT_DOUBLE_EQ(usec(2.6), 2.6e-6);
  EXPECT_DOUBLE_EQ(MW(21.1), 21.1e6);
}

TEST(Units, Formatting) {
  using namespace xscale::units;
  EXPECT_EQ(fmt_rate(1.635e12), "1.635 TB/s");
  EXPECT_EQ(fmt_bytes_iec(GiB(64)), "64 GiB");
  EXPECT_EQ(fmt_time(2.6e-6), "2.6 us");
}

TEST(Table, RendersAlignedColumns) {
  xscale::sim::Table t("demo");
  t.header({"a", "bbbb"}).row({"x", "y"}).rule().row({"longer", "z"});
  const std::string out = t.render();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("| longer | z"), std::string::npos);
}

}  // namespace
