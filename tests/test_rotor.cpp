// Rotor slot-boundary properties (ISSUE 9 satellite 2): the epoch discipline
// of slot transitions, the warm-memo staleness they induce, and the drain
// behaviour of flows whose matching goes dark — at thread counts {1, 2, 8}.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <vector>

#include "core/xscale.hpp"

namespace {

using namespace xscale;

struct ThreadCountGuard {
  ~ThreadCountGuard() { sim::set_thread_count(1); }
};

net::Fabric rotor_fabric(int n_switches, int eps_per_switch, int n_matchings,
                         double slot_s, double duty,
                         net::Routing r = net::Routing::Minimal) {
  net::FabricConfig cfg;
  cfg.routing = r;
  cfg.congestion_control = true;
  cfg.nic_efficiency = 0.70;
  return net::Fabric(
      topo::Topology::rotor(n_switches, eps_per_switch, n_matchings, slot_s,
                            duty, 25e9, 180e-9),
      cfg);
}

// --------------------------------------------------- epoch-per-slot bump ---

// Contract: every slot transition re-prices two whole matchings through ONE
// batched `set_link_capacities` call, so the overlay's capacity epoch
// advances by exactly one per transition — never once per link.
TEST(RotorSchedule, EpochBumpsExactlyOncePerSlotTransition) {
  sim::Engine eng;
  auto fabric = rotor_fabric(8, 2, 7, 100e-6, 0.9);
  const std::uint64_t epoch0 = fabric.capacity_epoch();
  net::RotorSchedule rotor(eng, fabric);
  rotor.start();
  // Nothing else drives the engine: a sentinel event keeps the rotation
  // alive for exactly 10 slot widths, then the auto-stop drains the run.
  eng.schedule_in(10.5 * 100e-6, [] {});
  eng.run();
  EXPECT_GE(rotor.transitions(), 10u);
  EXPECT_EQ(fabric.capacity_epoch() - epoch0, rotor.transitions());
  // Slot index is transitions mod n_matchings.
  EXPECT_EQ(rotor.current_slot(),
            static_cast<int>(rotor.transitions() % 7));
  EXPECT_FALSE(rotor.running());  // auto-stopped with nothing left to drive
}

TEST(RotorSchedule, SingleMatchingHasNothingToRotate) {
  sim::Engine eng;
  auto fabric = rotor_fabric(4, 2, 1, 100e-6, 1.0);
  const std::uint64_t epoch0 = fabric.capacity_epoch();
  net::RotorSchedule rotor(eng, fabric);
  rotor.start();  // no-op: one matching is permanently live
  EXPECT_FALSE(rotor.running());
  eng.run();
  EXPECT_EQ(rotor.transitions(), 0u);
  EXPECT_EQ(fabric.capacity_epoch(), epoch0);
}

TEST(RotorSchedule, NonRotorFabricIsRejected) {
  sim::Engine eng;
  net::FabricConfig cfg;
  net::Fabric fabric(topo::Topology::fat_tree(4, 2, 25e9, 180e-9), cfg);
  EXPECT_THROW(net::RotorSchedule(eng, fabric), std::invalid_argument);
}

// ---------------------------------------------- warm memo vs transitions ---

// Contract: a slot transition moves the overlay epoch, so warm-memo
// generations recorded under the previous slot are recognised as stale (the
// `warm_memo_stale` counter) instead of replaying wrong-slot rates. There
// are two memo generations, hence at most two stale observations per
// transition; the count is exactly reproducible at every thread count.
TEST(RotorWarmMemo, StalenessTracksSlotTransitionsAcrossThreadCounts) {
  ThreadCountGuard guard;
  std::uint64_t base_stale = 0, base_transitions = 0;
  for (int threads : {1, 2, 8}) {
    sim::set_thread_count(threads);
    sim::Engine eng;
    auto fabric = rotor_fabric(8, 8, 7, 250e-6, 0.9);
    net::FlowSim fs(eng, fabric, {.fallback_fraction = 0.25});
    net::RotorSchedule rotor(eng, fabric, &fs);
    rotor.start();
    sim::Rng rng(2026);
    const int eps = fabric.topology().num_endpoints();
    int launched = 0;
    const int total = 120;
    std::function<void()> launch = [&] {
      if (launched >= total) return;
      ++launched;
      const int src = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
      int dst = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
      if (dst == src) dst = (dst + 1) % eps;
      fs.start(src, dst, rng.uniform(1e6, 5e7), [&] { launch(); });
    };
    for (int i = 0; i < 16; ++i) launch();
    eng.run();
    const auto& st = fs.stats();
    EXPECT_GT(rotor.transitions(), 10u) << "threads=" << threads;
    EXPECT_GT(st.warm_memo_stale, 0u) << "threads=" << threads;
    EXPECT_LE(st.warm_memo_stale, 2 * rotor.transitions())
        << "threads=" << threads;
    EXPECT_GT(st.warm_solves, 0u) << "threads=" << threads;
    if (threads == 1) {
      base_stale = st.warm_memo_stale;
      base_transitions = rotor.transitions();
    } else {
      // Thread-count determinism: identical slot sequence, identical memo
      // staleness observations.
      EXPECT_EQ(st.warm_memo_stale, base_stale) << "threads=" << threads;
      EXPECT_EQ(rotor.transitions(), base_transitions)
          << "threads=" << threads;
    }
  }
}

// ------------------------------------------------- dark-matching drain -----

// A flow mid-transfer when its matching's slot ends must drain to a stall
// (StallPolicy::Stall: rate 0, still active, recovers when the matching
// returns) or to a drop (StallPolicy::Drop: removed at the transition, its
// completion callback never fires). rotor(4, 1, 3): matching m holds links
// i -> (i+m+1) mod 4, so endpoint 0 -> switch 0, endpoint 1 -> switch 1,
// and the 0->1 route rides matching 0 — live in slot 0, dark in slots 1, 2.
TEST(RotorDrain, StallPolicyParksAndRecoversAcrossDarkSlots) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 8}) {
    sim::set_thread_count(threads);
    sim::Engine eng;
    const double slot = 100e-6;
    auto fabric = rotor_fabric(4, 1, 3, slot, 1.0);
    net::FlowSim fs(eng, fabric, {.stall_policy = net::StallPolicy::Stall});
    net::RotorSchedule rotor(eng, fabric, &fs);
    rotor.start();
    // Active inter-switch capacity is 25e9 (duty 1.0): one slot moves at
    // most 2.5e6 bytes (terminal links are slower still), so 6e6 bytes
    // cannot finish within slot 0 — the flow MUST cross a dark period.
    bool done = false;
    double done_at = 0.0;
    fs.start(0, 1, 6e6, [&] {
      done = true;
      done_at = eng.now();
    });
    // Probe the stall while matching 0 is dark (mid slot 1).
    bool saw_stall = false;
    eng.schedule_in(1.5 * slot, [&] {
      saw_stall = fs.stalled_flows() == 1 && fs.active_flows() == 1;
    });
    eng.run();
    EXPECT_TRUE(done) << "threads=" << threads;
    EXPECT_TRUE(saw_stall) << "threads=" << threads;
    // Completion happens in a later live period of matching 0 (slot >= 3).
    EXPECT_GT(done_at, 3.0 * slot) << "threads=" << threads;
    EXPECT_EQ(fs.stalled_flows(), 0u);
    EXPECT_EQ(fs.dropped_flows(), 0u);
  }
}

TEST(RotorDrain, DropPolicyRemovesFlowAtTheSlotBoundary) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 8}) {
    sim::set_thread_count(threads);
    sim::Engine eng;
    const double slot = 100e-6;
    auto fabric = rotor_fabric(4, 1, 3, slot, 1.0);
    net::FlowSim fs(eng, fabric, {.stall_policy = net::StallPolicy::Drop});
    net::RotorSchedule rotor(eng, fabric, &fs);
    rotor.start();
    bool done = false;
    std::vector<std::uint64_t> dropped;
    fs.on_stall([&](std::uint64_t id) { dropped.push_back(id); });
    const auto id = fs.start(0, 1, 6e6, [&] { done = true; });
    eng.run();
    EXPECT_FALSE(done) << "threads=" << threads;
    EXPECT_EQ(fs.active_flows(), 0u);
    EXPECT_EQ(fs.dropped_flows(), 1u);
    ASSERT_EQ(dropped.size(), 1u);
    EXPECT_EQ(dropped[0], id);
    // The drop happened AT the first transition (matching 0 went dark), and
    // with nothing left to drive, the rotation auto-stopped right there.
    EXPECT_FALSE(rotor.running());
  }
}

// ------------------------------------------------ route-cache immunity -----

// Slot transitions re-price links but never steer packets: across an entire
// rotation cycle with live traffic, the shared route cache takes zero new
// misses once warm (the acceptance criterion that slot churn must not
// invalidate routes).
TEST(RotorRouteCache, SlotTransitionsCauseZeroNewMisses) {
  sim::Engine eng;
  auto fabric = rotor_fabric(8, 4, 7, 100e-6, 0.9);
  net::FlowSim fs(eng, fabric, {});
  net::RotorSchedule rotor(eng, fabric, &fs);
  rotor.start();
  const int eps = fabric.topology().num_endpoints();
  const auto misses = [] {
    return obs::metrics().counter("net.route_cache.miss").value();
  };
  // Warm the cache: one long-lived flow per (i, i+5) pair.
  sim::Rng rng(7);
  int completions = 0;
  std::function<void(int)> relaunch = [&](int i) {
    const int src = i % eps;
    const int dst = (src + 5) % eps;
    fs.start(src, dst, 2e6, [&, i] {
      ++completions;
      if (completions < 96) relaunch(i);
    });
  };
  for (int i = 0; i < 24; ++i) relaunch(i);
  const auto warm_misses = misses();
  eng.run();
  EXPECT_GT(rotor.transitions(), 5u);
  EXPECT_EQ(misses(), warm_misses)
      << "slot transitions took route-cache misses";
}

}  // namespace
