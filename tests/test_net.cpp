// Tests for topologies, the max-min solver, routing, and the fabric model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "machines/machine.hpp"
#include "net/fabric.hpp"
#include "net/flowsim.hpp"
#include "net/patterns.hpp"
#include "net/solver.hpp"
#include "sim/units.hpp"
#include "topo/topology.hpp"

namespace {

using namespace xscale;
using namespace xscale::units;

// ---------------------------------------------------------------- solver ----

TEST(Solver, SingleLinkEqualShare) {
  const std::vector<double> cap{10.0};
  const std::vector<std::vector<int>> paths{{0}, {0}, {0}, {0}};
  const auto r = net::max_min_rates(cap, paths);
  for (double x : r) EXPECT_DOUBLE_EQ(x, 2.5);
}

TEST(Solver, BottleneckThenResidual) {
  // Flow A uses links 0+1, flow B only link 0, flow C only link 1.
  // Link 0 cap 10, link 1 cap 4: A and C split link 1 at 2 each, then B gets
  // the residual 8 on link 0.
  const std::vector<double> cap{10.0, 4.0};
  const std::vector<std::vector<int>> paths{{0, 1}, {0}, {1}};
  const auto r = net::max_min_rates(cap, paths);
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_DOUBLE_EQ(r[1], 8.0);
  EXPECT_DOUBLE_EQ(r[2], 2.0);
}

TEST(Solver, WeightedFairness) {
  const std::vector<double> cap{12.0};
  const std::vector<std::vector<int>> paths{{0}, {0}};
  const std::vector<double> w{2.0, 1.0};
  const auto r = net::max_min_rates(cap, paths, &w);
  EXPECT_DOUBLE_EQ(r[0], 8.0);
  EXPECT_DOUBLE_EQ(r[1], 4.0);
}

TEST(Solver, WeightedFairnessAcrossMultipleBottlenecks) {
  // Link 0 (cap 12) carries flows A (w=2) and B (w=1); link 1 (cap 2)
  // carries B and C (w=1). B freezes at link 1's share 1.0 first; A then
  // takes the whole residual 11 on link 0.
  const std::vector<double> cap{12.0, 2.0};
  const std::vector<std::vector<int>> paths{{0}, {0, 1}, {1}};
  const std::vector<double> w{2.0, 1.0, 1.0};
  net::SolveStats ss;
  const auto r = net::max_min_rates(cap, paths, &w, &ss);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
  EXPECT_DOUBLE_EQ(r[2], 1.0);
  EXPECT_DOUBLE_EQ(r[0], 11.0);
  EXPECT_EQ(ss.iterations, 2);
}

TEST(Solver, MassiveTieCollapsesIntoOneIteration) {
  // 64 disjoint equal-capacity links, 4 flows each: every link ties at the
  // same share bitwise, so the exact-tie cutoff must freeze all 256 flows in
  // a single water-filling iteration (symmetric all-to-all patterns depend
  // on this collapse for performance).
  const int nlinks = 64, per = 4;
  std::vector<double> cap(nlinks, 25e9);
  std::vector<std::vector<int>> paths;
  for (int l = 0; l < nlinks; ++l)
    for (int f = 0; f < per; ++f) paths.push_back({l});
  net::SolveStats ss;
  const auto r = net::max_min_rates(cap, paths, nullptr, &ss);
  for (double x : r) EXPECT_DOUBLE_EQ(x, 25e9 / per);
  EXPECT_EQ(ss.iterations, 1);
  EXPECT_EQ(ss.bottleneck_links, nlinks);
}

TEST(Solver, NearTiesStayInSeparateIterationsForDecomposability) {
  // Shares that are close but NOT bitwise equal must freeze in separate
  // iterations, each at its own link's share. The historical 1e-9-relative
  // cutoff let the minimum "capture" a near-tied link from an unrelated
  // component, freezing its flows at the *other* component's share — so the
  // global solve and the per-component decomposition disagreed at the ULP
  // level (the warm==cold differential caught this on the oversubscribed
  // fat-tree, where drifted residuals land within 1e-9 of fresh quotients).
  const double hi = 10.0 * (1.0 + 0.5e-9);
  const std::vector<double> cap{10.0, hi};
  const std::vector<std::vector<int>> paths{{0}, {1}};
  net::SolveStats ss;
  const auto r = net::max_min_rates(cap, paths, nullptr, &ss);
  EXPECT_EQ(ss.iterations, 2);
  EXPECT_EQ(r[0], 10.0);
  EXPECT_EQ(r[1], hi);  // its own share, not the foreign minimum
  // And precisely because of that, splitting by component loses nothing:
  const auto split = net::max_min_rates_components(cap, paths);
  EXPECT_EQ(split[0], r[0]);
  EXPECT_EQ(split[1], r[1]);
}

TEST(Solver, MalformedCapacitiesThrowInAllBuildModes) {
  // The old bare assert(std::isfinite(min_share)) compiled out under
  // -DNDEBUG; NaN capacities then flowed through std::max as 0 and produced
  // silently wrong rates. The guard must hold in release builds too.
  const std::vector<std::vector<int>> paths{{0}};
  EXPECT_THROW(
      net::max_min_rates({std::nan("")}, paths), std::invalid_argument);
  EXPECT_THROW(
      net::max_min_rates({std::numeric_limits<double>::infinity()}, paths),
      std::invalid_argument);
  EXPECT_THROW(net::max_min_rates({-1.0}, paths), std::invalid_argument);
  EXPECT_NO_THROW(net::max_min_rates({0.0}, paths));  // failed link: rate 0
}

TEST(Solver, MalformedWeightsThrowInsteadOfHanging) {
  const std::vector<double> cap{10.0};
  const std::vector<std::vector<int>> paths{{0}};
  const std::vector<double> nan_w{std::nan("")};
  EXPECT_THROW(net::max_min_rates(cap, paths, &nan_w), std::invalid_argument);
  const std::vector<double> short_w{};
  EXPECT_THROW(net::max_min_rates(cap, paths, &short_w), std::invalid_argument);
  // An all-zero-weight problem has no finite max-min allocation; before the
  // guard this spun the water-filling loop forever under -DNDEBUG.
  const std::vector<double> zero_w{0.0};
  EXPECT_THROW(net::max_min_rates(cap, paths, &zero_w), std::runtime_error);
}

TEST(Solver, ZeroCapacityLinkYieldsZeroRateNotFloor) {
  // A flow crossing a failed (zero-capacity) link gets rate exactly 0; the
  // other flow still takes the full parallel link.
  const std::vector<double> cap{0.0, 10.0};
  const std::vector<std::vector<int>> paths{{0}, {1}};
  const auto r = net::max_min_rates(cap, paths);
  EXPECT_EQ(r[0], 0.0);
  EXPECT_DOUBLE_EQ(r[1], 10.0);
}

// Property: no link oversubscribed; every flow is bottlenecked somewhere
// (max-min optimality certificate).
TEST(Solver, CapacityRespectedAndEveryFlowBottlenecked) {
  sim::Rng rng(11);
  const int links = 40, flows = 200;
  std::vector<double> cap(links);
  for (auto& c : cap) c = rng.uniform(1.0, 20.0);
  std::vector<std::vector<int>> paths(flows);
  for (auto& p : paths) {
    const int len = 1 + static_cast<int>(rng.index(4));
    while (static_cast<int>(p.size()) < len) {
      const int l = static_cast<int>(rng.index(links));
      if (std::find(p.begin(), p.end(), l) == p.end()) p.push_back(l);
    }
  }
  const auto r = net::max_min_rates(cap, paths);

  std::vector<double> load(links, 0.0);
  for (int f = 0; f < flows; ++f)
    for (int l : paths[static_cast<std::size_t>(f)])
      load[static_cast<std::size_t>(l)] += r[static_cast<std::size_t>(f)];
  for (int l = 0; l < links; ++l)
    EXPECT_LE(load[static_cast<std::size_t>(l)],
              cap[static_cast<std::size_t>(l)] * (1.0 + 1e-6));

  // Each flow crosses at least one nearly-saturated link where it has a
  // maximal rate among that link's flows.
  for (int f = 0; f < flows; ++f) {
    bool certified = false;
    for (int l : paths[static_cast<std::size_t>(f)]) {
      const auto lu = static_cast<std::size_t>(l);
      if (load[lu] < cap[lu] * (1.0 - 1e-6)) continue;
      double max_rate = 0;
      for (int g = 0; g < flows; ++g) {
        if (std::find(paths[static_cast<std::size_t>(g)].begin(),
                      paths[static_cast<std::size_t>(g)].end(),
                      l) != paths[static_cast<std::size_t>(g)].end()) {
          max_rate = std::max(max_rate, r[static_cast<std::size_t>(g)]);
        }
      }
      if (r[static_cast<std::size_t>(f)] >= max_rate * (1.0 - 1e-6)) {
        certified = true;
        break;
      }
    }
    EXPECT_TRUE(certified) << "flow " << f << " is not max-min bottlenecked";
  }
}

// ---------------------------------------------------------------- topology --

TEST(Dragonfly, FrontierDimensions) {
  const auto t = machines::frontier_topology();
  EXPECT_EQ(t.num_groups(), 80);
  EXPECT_EQ(t.num_switches(), 74 * 32 + 6 * 16);
  EXPECT_EQ(t.num_endpoints(), 74 * 32 * 16 + 6 * 16 * 16);
}

TEST(Dragonfly, ComputeGlobalBandwidthIs270TBs) {
  const auto t = machines::frontier_topology();
  double sum = 0;
  for (const auto& l : t.links())
    if (l.kind == topo::LinkKind::Global && t.group_of_switch(l.src) < 74 &&
        t.group_of_switch(l.dst) < 74)
      sum += l.capacity;
  // Table 1: 270+270 TB/s between compute groups (one direction counted).
  EXPECT_NEAR(sum / 2.0 / 1e12, 270.1, 0.5);
}

TEST(Dragonfly, TaperIs57Percent) {
  const auto t = machines::frontier_topology();
  const double inj = t.injection_capacity_per_group(0);
  double global_cc = 0;
  for (const auto& l : t.links())
    if (l.kind == topo::LinkKind::Global && t.group_of_switch(l.src) == 0 &&
        t.group_of_switch(l.dst) < 74)
      global_cc += l.capacity;
  EXPECT_NEAR(inj / 1e12, 12.8, 0.1);       // §3.2
  EXPECT_NEAR(global_cc / 1e12, 7.3, 0.1);  // §3.2
  EXPECT_NEAR(global_cc / inj, 0.57, 0.01);
}

TEST(Dragonfly, GatewaysBelongToTheirGroups) {
  const auto t = machines::frontier_topology();
  for (int g : {0, 10, 73, 74, 79}) {
    for (int h : {1, 40, 75, 79}) {
      if (g == h) continue;
      const int gw = t.gateway_switch(g, h);
      ASSERT_GE(gw, 0) << g << "->" << h;
      EXPECT_EQ(t.group_of_switch(gw), g);
    }
  }
}

TEST(FatTree, NonBlockingCore) {
  const auto t = topo::Topology::fat_tree(8, 4, 10.0, 1e-7);
  EXPECT_EQ(t.num_endpoints(), 32);
  EXPECT_TRUE(t.is_fat_tree());
  // Core uplinks carry full leaf injection.
  for (const auto& l : t.links()) {
    if (l.kind == topo::LinkKind::Core) {
      EXPECT_DOUBLE_EQ(l.capacity, 40.0);
    }
  }
}

// ---------------------------------------------------------------- fabric ----

net::Fabric small_dragonfly(net::Routing r, bool cc = true) {
  // 8 groups x 4 switches x 4 endpoints, 1 link per group pair.
  auto t = topo::Topology::uniform_dragonfly(8, {4, 4}, 1, 25e9, 180e-9);
  net::FabricConfig cfg;
  cfg.routing = r;
  cfg.congestion_control = cc;
  cfg.nic_efficiency = 0.70;
  return net::Fabric(std::move(t), cfg);
}

TEST(Fabric, IntraSwitchPairHitsNicEfficiency) {
  auto f = small_dragonfly(net::Routing::Minimal);
  const auto rates = f.steady_rates({{0, 1}});
  EXPECT_NEAR(rates[0] / 1e9, 25.0 * 0.70, 0.01);
}

TEST(Fabric, MinimalPathHopCounts) {
  auto f = small_dragonfly(net::Routing::Minimal);
  // Same switch: inj + ej.
  EXPECT_EQ(f.minimal_hops(0, 1), 2);
  // Same group, different switch: + 1 local hop.
  EXPECT_EQ(f.minimal_hops(0, 5), 3);
  // Different group: inj + local + global + local + ej (worst case 5).
  EXPECT_LE(f.minimal_hops(0, 17), 5);
  EXPECT_GE(f.minimal_hops(0, 17), 3);
}

TEST(Fabric, MinimalRoutingCollapsesOnSingleGlobalLink) {
  auto f = small_dragonfly(net::Routing::Minimal);
  // All 16 endpoints of group 0 target group 1: one 25 GB/s global link.
  net::PairList pairs;
  for (int e = 0; e < 16; ++e) pairs.emplace_back(e, 16 + e);
  const auto rates = f.steady_rates(pairs);
  const double sum = std::accumulate(rates.begin(), rates.end(), 0.0);
  EXPECT_NEAR(sum / 1e9, 25.0, 0.1);  // global bundle is the bottleneck
}

TEST(Fabric, ValiantSpreadsAcrossIntermediateGroups) {
  auto fmin = small_dragonfly(net::Routing::Minimal);
  auto fval = small_dragonfly(net::Routing::Valiant);
  net::PairList pairs;
  for (int e = 0; e < 16; ++e) pairs.emplace_back(e, 16 + e);
  const auto rmin = fmin.steady_rates(pairs);
  const auto rval = fval.steady_rates(pairs);
  const double smin = std::accumulate(rmin.begin(), rmin.end(), 0.0);
  const double sval = std::accumulate(rval.begin(), rval.end(), 0.0);
  EXPECT_GT(sval, smin * 1.5);  // detours recruit other groups' links
}

TEST(Fabric, AdaptiveAtLeastAsGoodAsMinimalOnAdversarialPattern) {
  auto fmin = small_dragonfly(net::Routing::Minimal);
  auto fada = small_dragonfly(net::Routing::Adaptive);
  net::PairList pairs;
  for (int e = 0; e < 16; ++e) pairs.emplace_back(e, 16 + e);
  const auto rmin = fmin.steady_rates(pairs);
  const auto rada = fada.steady_rates(pairs);
  const double smin = std::accumulate(rmin.begin(), rmin.end(), 0.0);
  const double sada = std::accumulate(rada.begin(), rada.end(), 0.0);
  EXPECT_GE(sada, smin);
}

TEST(Fabric, FatTreePermutationIsTight) {
  auto m = machines::summit();
  auto f = m.build_fabric();
  sim::Rng rng(5);
  auto pairs = net::random_permutation(f.topology().num_endpoints(), rng);
  const auto rates = f.steady_rates(pairs);
  // Non-blocking: every pair gets the full NIC-efficiency rate.
  for (double r : rates) EXPECT_NEAR(r / 1e9, 12.5 * 0.68, 0.05);
}

TEST(Fabric, CongestionControlIsolatesVictims) {
  // Victim flow 0->1 shares switch 0 with a 14-way incast onto endpoint 2.
  auto fcc = small_dragonfly(net::Routing::Minimal, true);
  auto fnc = small_dragonfly(net::Routing::Minimal, false);
  net::PairList pairs{{0, 1}};
  std::vector<int> sources;
  for (int e = 4; e < 18; ++e) sources.push_back(e);
  for (auto pr : net::incast(sources, 2)) pairs.push_back(pr);
  const auto rcc = fcc.steady_rates(pairs);
  const auto rnc = fnc.steady_rates(pairs);
  // With CC the victim keeps its full rate despite the incast.
  EXPECT_NEAR(rcc[0] / 1e9, 17.5, 0.1);
  // Without CC, head-of-line blocking at the shared switch degrades it.
  EXPECT_LT(rnc[0], rcc[0] * 0.5);
}

TEST(Fabric, BaseLatencyGrowsWithDistance) {
  auto f = small_dragonfly(net::Routing::Minimal);
  EXPECT_LT(f.base_latency(0, 1), f.base_latency(0, 5));
  EXPECT_LT(f.base_latency(0, 5), f.base_latency(0, 17));
}

// ---------------------------------------------------------------- flowsim ---

TEST(FlowSim, SerialTransferTime) {
  sim::Engine eng;
  auto f = small_dragonfly(net::Routing::Minimal);
  net::FlowSim fs(eng, f);
  double done_at = -1;
  fs.start(0, 1, 17.5e9, [&] { done_at = eng.now(); });  // 1 s at 17.5 GB/s
  eng.run();
  EXPECT_NEAR(done_at, 1.0, 1e-6);
}

TEST(FlowSim, FairSharingDelaysBothFlows) {
  sim::Engine eng;
  auto f = small_dragonfly(net::Routing::Minimal);
  net::FlowSim fs(eng, f);
  // Two flows into the same destination endpoint: ejection link shared.
  double t1 = -1, t2 = -1;
  fs.start(0, 3, 17.5e9, [&] { t1 = eng.now(); });
  fs.start(1, 3, 17.5e9, [&] { t2 = eng.now(); });
  eng.run();
  EXPECT_NEAR(t1, 2.0, 1e-6);  // both halve to 8.75 GB/s
  EXPECT_NEAR(t2, 2.0, 1e-6);
}

TEST(FlowSim, LateArrivalReschedulesEarlierFlow) {
  sim::Engine eng;
  auto f = small_dragonfly(net::Routing::Minimal);
  net::FlowSim fs(eng, f);
  double t1 = -1, t2 = -1;
  fs.start(0, 3, 17.5e9, [&] { t1 = eng.now(); });
  eng.schedule_at(0.5, [&] {
    fs.start(1, 3, 8.75e9, [&] { t2 = eng.now(); });
  });
  eng.run();
  // Flow 1 runs alone for 0.5 s (8.75 GB left), then shares: +1 s -> 1.5 s.
  EXPECT_NEAR(t1, 1.5, 1e-5);
  // Flow 2: 8.75 GB at 8.75 GB/s shared (1 s), finishing with flow 1.
  EXPECT_NEAR(t2, 1.5, 1e-5);
}

TEST(FlowSim, ManyFlowsAllComplete) {
  sim::Engine eng;
  auto f = small_dragonfly(net::Routing::Adaptive);
  net::FlowSim fs(eng, f);
  int done = 0;
  sim::Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    const int src = static_cast<int>(rng.index(128));
    int dst = static_cast<int>(rng.index(128));
    if (dst == src) dst = (dst + 1) % 128;
    fs.start(src, dst, rng.uniform(1e6, 1e9), [&] { ++done; });
  }
  eng.run();
  EXPECT_EQ(done, 64);
  EXPECT_EQ(fs.active_flows(), 0u);
}

// ---------------------------------------------------------------- machines --

TEST(Machines, FrontierTable1Aggregates) {
  const auto m = machines::frontier();
  EXPECT_EQ(m.total_nodes, 9472);
  EXPECT_NEAR(m.fp64_dgemm_peak() / 1e18, 2.0, 0.02);      // 2.0 EF
  EXPECT_NEAR(m.ddr_capacity() / PiB(1), 4.6, 0.05);       // 4.6 PiB
  EXPECT_NEAR(m.hbm_capacity() / PiB(1), 4.6, 0.05);       // 4.6 PiB
  EXPECT_NEAR(m.hbm_bandwidth() / 1e15, 123.9, 0.5);       // 123.9 PB/s
  EXPECT_NEAR(m.injection_bandwidth_per_node() / 1e9, 100, 0.1);
}

TEST(Machines, LookupByName) {
  EXPECT_TRUE(machines::by_name("frontier").has_value());
  EXPECT_TRUE(machines::by_name("SUMMIT").has_value());
  EXPECT_TRUE(machines::by_name("Aurora").has_value());
  EXPECT_FALSE(machines::by_name("el capitan").has_value());
  EXPECT_EQ(machines::by_name("Mira")->total_nodes, 49152);
}

TEST(Machines, AuroraAggregates) {
  const auto m = machines::aurora();
  EXPECT_EQ(m.total_nodes, 10624);
  EXPECT_TRUE(m.has_fabric());
  // ~2 EF headline FP64 over 63,744 GPU Max devices.
  EXPECT_NEAR(m.fp64_dgemm_peak() / 1e18, 2.0, 0.05);
  // 8 Slingshot-11 NICs per node: 8 x 25 GB/s injection.
  EXPECT_NEAR(m.injection_bandwidth_per_node() / 1e9, 200, 0.1);
  EXPECT_EQ(machines::endpoints_per_node(m), 8);
  // Topology sized to the NIC count exactly (83 x 64 x 16 endpoints).
  const auto topo = m.topology_factory();
  EXPECT_EQ(topo.num_endpoints(), m.total_nodes * 8);
}

TEST(Machines, EndpointMapping) {
  const auto m = machines::frontier();
  EXPECT_EQ(machines::endpoints_per_node(m), 4);
  EXPECT_EQ(machines::node_endpoint(m, 0, 3), 3);
  EXPECT_EQ(machines::node_endpoint(m, 100, 2), 402);
}

TEST(Machines, BaselinesHaveNoFabricButFrontierDoes) {
  EXPECT_TRUE(machines::frontier().has_fabric());
  EXPECT_TRUE(machines::summit().has_fabric());
  EXPECT_FALSE(machines::mira().has_fabric());
}

// ---------------------------------------------- fabric manager (ISSUE 7) ----

TEST(FabricManager, FailRestoreIdempotentAndBoundsChecked) {
  auto f = small_dragonfly(net::Routing::Minimal);
  EXPECT_THROW(f.fail_link(-1), std::out_of_range);
  EXPECT_THROW(f.fail_link(1 << 28), std::out_of_range);
  EXPECT_THROW(f.restore_link(-7), std::out_of_range);
  EXPECT_EQ(f.capacity_epoch(), 0u) << "a rejected call must not mutate";

  const int gl = f.topology().global_link(0, 1);
  const double base = f.effective_capacities()[static_cast<std::size_t>(gl)];
  EXPECT_TRUE(f.fail_link(gl));
  EXPECT_EQ(f.capacity_epoch(), 1u);
  EXPECT_TRUE(f.is_failed(gl));
  EXPECT_EQ(f.failed_links(), 1);
  EXPECT_EQ(f.effective_capacities()[static_cast<std::size_t>(gl)], 0.0);

  // Failing an already-failed link is a no-op: no epoch bump, nothing keyed
  // on the epoch (the FlowSim warm memo) gets spuriously invalidated.
  EXPECT_FALSE(f.fail_link(gl));
  EXPECT_EQ(f.capacity_epoch(), 1u);

  EXPECT_TRUE(f.restore_link(gl));
  EXPECT_EQ(f.capacity_epoch(), 2u);
  EXPECT_FALSE(f.is_failed(gl));
  EXPECT_EQ(f.failed_links(), 0);
  EXPECT_EQ(f.effective_capacities()[static_cast<std::size_t>(gl)], base);

  // Restoring a live link is equally a no-op.
  EXPECT_FALSE(f.restore_link(gl));
  EXPECT_EQ(f.capacity_epoch(), 2u);
}

TEST(FabricManager, CapacityOverridesComposeWithFailRestore) {
  auto f = small_dragonfly(net::Routing::Minimal);
  const int inj = f.topology().injection_link(3);
  const auto iu = static_cast<std::size_t>(inj);
  const double base = f.effective_capacities()[iu];

  EXPECT_TRUE(f.set_link_capacity(inj, 1e9));
  EXPECT_EQ(f.capacity_epoch(), 1u);
  EXPECT_EQ(f.effective_capacities()[iu], 1e9);
  EXPECT_FALSE(f.set_link_capacity(inj, 1e9)) << "same value: no-op";
  EXPECT_EQ(f.capacity_epoch(), 1u);

  // A failed link pins 0 regardless of the override; the override survives
  // the failure and re-applies on restore.
  EXPECT_TRUE(f.fail_link(inj));
  EXPECT_EQ(f.effective_capacities()[iu], 0.0);
  EXPECT_TRUE(f.set_link_capacity(inj, 2e9) == false)
      << "overriding a failed link changes nothing observable yet";
  EXPECT_TRUE(f.restore_link(inj));
  EXPECT_EQ(f.effective_capacities()[iu], 2e9);

  EXPECT_TRUE(f.clear_link_capacity(inj));
  EXPECT_EQ(f.effective_capacities()[iu], base);
  EXPECT_FALSE(f.clear_link_capacity(inj)) << "already cleared: no-op";
}

TEST(FabricManager, OverrideUpdateAfterNoOpFirstSetMaterialises) {
  // Regression: a first override equal to the current effective capacity is
  // a no-op that records the override without materialising the COW vector;
  // a later different-valued set takes the update branch and used to write
  // through the still-empty vector (out-of-bounds). A scenario sweeping a
  // link's capacity through its nominal value hits exactly this sequence.
  auto f = small_dragonfly(net::Routing::Minimal);
  const int inj = f.topology().injection_link(2);
  const auto iu = static_cast<std::size_t>(inj);
  const double base = f.effective_capacities()[iu];

  EXPECT_FALSE(f.set_link_capacity(inj, base)) << "base-valued set: no-op";
  EXPECT_EQ(f.capacity_epoch(), 0u);
  EXPECT_TRUE(f.set_link_capacity(inj, base / 2));
  EXPECT_EQ(f.effective_capacities()[iu], base / 2);
  EXPECT_EQ(f.capacity_epoch(), 1u);
  EXPECT_TRUE(f.clear_link_capacity(inj));
  EXPECT_EQ(f.effective_capacities()[iu], base);
}

TEST(FabricManager, SharedSnapshotSessionsAreIsolated) {
  auto t = topo::Topology::uniform_dragonfly(8, {4, 4}, 1, 25e9, 180e-9);
  net::FabricConfig cfg;
  cfg.routing = net::Routing::Minimal;
  auto snap = net::make_snapshot(std::move(t), cfg);
  net::Fabric a(snap);
  net::Fabric b(snap);
  ASSERT_EQ(a.snapshot().get(), b.snapshot().get());

  net::PairList pairs;
  for (int e = 0; e < 16; ++e) pairs.emplace_back(e, 16 + e);
  const auto before = b.steady_rates(pairs);

  // Session A fails the very global bundle B's traffic crosses, plus a
  // terminal link; B must observe nothing: same epoch, same capacities, and
  // bitwise-identical rates.
  const int gl = a.topology().global_link(0, 1);
  ASSERT_TRUE(a.fail_link(gl));
  ASSERT_TRUE(a.fail_link(a.topology().ejection_link(17)));
  EXPECT_EQ(b.capacity_epoch(), 0u);
  EXPECT_FALSE(b.is_failed(gl));
  EXPECT_GT(b.effective_capacities()[static_cast<std::size_t>(gl)], 0.0);
  const auto after = b.steady_rates(pairs);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]) << "sibling overlay leaked into flow " << i;

  // A itself sees the failure (detour exists: rates drop but stay nonzero
  // through the intermediate-group reroute).
  const auto rerouted = a.steady_rates(pairs);
  double sum = 0;
  for (double r : rerouted) sum += r;
  EXPECT_GT(sum, 0.0);
  // And the clean copy-on-write view: B still shares the snapshot's base
  // vector (no private copy until B's own first mutation).
  EXPECT_EQ(&b.effective_capacities(), &snap->base_capacities());
  EXPECT_NE(&a.effective_capacities(), &snap->base_capacities());
}

}  // namespace
