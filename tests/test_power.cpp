// Power model tests: node/system composition, the paper's §5.1 headline
// (1.102 EF at ~21.1 MW -> ~52 GF/W), and the 2008-report straw-man
// comparison (ISSUE 4 satellite).
#include <gtest/gtest.h>

#include "power/power.hpp"

using namespace xscale;

TEST(Power, NodePowerComposesPerComponentDraw) {
  power::NodePowerModel node;
  // At zero activity every component sits at its idle draw (note
  // idle_activity() keeps a small residual duty cycle, so use exact zero).
  power::Activity zero;
  zero.gpu = zero.cpu = zero.memory = zero.nic = 0.0;
  const double expect_idle =
      node.cpu_idle + node.gpu_modules * node.gpu_module_idle +
      node.dimms * node.dimm_idle + node.nics * node.nic_idle +
      node.node_overhead;
  EXPECT_NEAR(node.node_power(zero), expect_idle, 1e-6);

  power::Activity full;
  full.gpu = full.cpu = full.memory = full.nic = 1.0;
  const double expect_full =
      node.cpu_peak + node.gpu_modules * node.gpu_module_peak +
      node.dimms * node.dimm_peak + node.nics * node.nic_peak +
      node.node_overhead;
  EXPECT_NEAR(node.node_power(full), expect_full, 1e-6);
  EXPECT_GT(node.node_power(full), node.node_power(zero));
}

TEST(Power, WorkloadOrderingIdleStreamHpl) {
  power::SystemPowerModel sys;
  const double p_idle = sys.system_power(power::idle_activity());
  const double p_stream = sys.system_power(power::stream_activity());
  const double p_hpl = sys.system_power(power::hpl_activity());
  EXPECT_LT(p_idle, p_stream);
  EXPECT_LT(p_stream, p_hpl);
  // Facility overhead and storage mean even idle is megawatts.
  EXPECT_GT(p_idle, 1e6);
}

TEST(Power, HplLandsAtPaperHeadline) {
  // §5.1: HPL at 1.102 EF drew ~21.1 MW -> 52.2 GF/W (Green500 #1). The
  // calibrated model must land within ~3% of both.
  power::SystemPowerModel sys;
  const double hpl_mw = sys.system_power(power::hpl_activity()) / 1e6;
  EXPECT_NEAR(hpl_mw, 21.1, 0.03 * 21.1);

  const auto g = power::frontier_green500();
  EXPECT_DOUBLE_EQ(g.rmax_flops, 1.102e18);
  EXPECT_NEAR(g.power_w / 1e6, 21.1, 0.03 * 21.1);
  EXPECT_NEAR(g.gf_per_watt, 52.0, 0.03 * 52.0);
  // Beats the 2008 report's 50 GF/W target.
  EXPECT_GT(g.gf_per_watt, 50.0);
}

TEST(Power, GflopsPerWattIsConsistentWithSystemPower) {
  power::SystemPowerModel sys;
  const auto a = power::hpl_activity();
  const double p = sys.system_power(a);
  EXPECT_DOUBLE_EQ(sys.gflops_per_watt(1.102e18, a), 1.102e18 / 1e9 / p);
}

TEST(Power, StrawmanComparisonMeetsSpiritOfTwentyMwTarget) {
  const auto c = power::strawman_comparison();
  EXPECT_DOUBLE_EQ(c.report_low_mw_per_ef, 68);
  EXPECT_DOUBLE_EQ(c.report_high_mw_per_ef, 155);
  EXPECT_DOUBLE_EQ(c.report_target_mw_per_ef, 20);
  // Frontier achieved ~19.3 MW/EF(Rmax): at least 3.5x better than the
  // best straw man and under the 20 MW target the paper says it meets in
  // spirit.
  EXPECT_NEAR(c.frontier_mw_per_ef, 19.3, 0.03 * 19.3);
  EXPECT_LT(c.frontier_mw_per_ef, c.report_target_mw_per_ef);
  EXPECT_GT(c.report_low_mw_per_ef / c.frontier_mw_per_ef, 3.4);
}

TEST(Power, CoolingOverheadScalesSystemPower) {
  power::SystemPowerModel warm;  // PUE ~1.02 (warm-water cooling)
  power::SystemPowerModel chilled = warm;
  chilled.cooling_overhead = 0.30;  // conventional chilled-water PUE ~1.3
  const auto a = power::hpl_activity();
  EXPECT_NEAR(chilled.system_power(a),
              warm.system_power(a) * 1.30 / 1.02, 1e-3 * warm.system_power(a));
}
