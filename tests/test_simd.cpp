// SIMD min-share scan kernel tests (ISSUE 10): the AVX2 kernel must be
// bitwise interchangeable with the portable scalar kernel on every input —
// including the adversarial ones a fabric actually produces (massive exact
// ties from symmetric traffic, near-ties one ULP apart, zero and negative
// residuals from in-place subtraction drift, weight-0 lanes) — and the
// solver built on top must produce identical rates AND an identical
// fired-link trajectory under either kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <limits>
#include <vector>

#include "net/simd.hpp"
#include "net/solver.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"

namespace {

using namespace xscale;

constexpr double kInf = std::numeric_limits<double>::infinity();

// The canonical per-element expression, evaluated by the most naive loop
// possible — the specification both kernels must match bit for bit.
double naive_scan(const std::vector<double>& resid,
                  const std::vector<double>& aw, std::size_t b,
                  std::size_t e) {
  double m = kInf;
  for (std::size_t i = b; i < e; ++i)
    if (aw[i] > 0.0) m = std::min(m, std::max(0.0, resid[i]) / aw[i]);
  return m;
}

// Pin the dispatched kernel (whatever it is on this host/build) and the
// scalar kernel against the naive loop on one input, over every sub-range
// offset so each possible vector-tail length is hit.
void expect_kernels_match(const std::vector<double>& resid,
                          const std::vector<double>& aw) {
  set_scan_kernel(net::ScanKernel::Auto);
  const net::MinShareScanFn dispatched = net::min_share_scan();
  const std::size_t n = resid.size();
  for (std::size_t b = 0; b <= std::min<std::size_t>(n, 9); ++b) {
    const double want = naive_scan(resid, aw, b, n);
    const double scalar = net::min_share_scan_scalar(resid.data(), aw.data(), b, n);
    const double simd = dispatched(resid.data(), aw.data(), b, n);
    // EXPECT_EQ on doubles is bitwise here: the expression never produces
    // NaN, and +inf/-0.0/denormals all compare by value == bits for this
    // kernel's output domain.
    EXPECT_EQ(want, scalar) << "scalar kernel, offset " << b;
    EXPECT_EQ(want, simd) << net::min_share_scan_name() << " kernel, offset "
                          << b;
  }
}

TEST(SimdScan, DispatchSmoke) {
  set_scan_kernel(net::ScanKernel::Auto);
  ASSERT_NE(net::min_share_scan(), nullptr);
  // Log which kernel this host actually runs, so a CI transcript shows
  // whether the AVX2 path was exercised or the scalar fallback.
  std::printf("min_share_scan dispatch: %s\n", net::min_share_scan_name());
  if (net::min_share_scan_is_simd()) {
    EXPECT_STREQ(net::min_share_scan_name(), "avx2");
  } else {
    EXPECT_STREQ(net::min_share_scan_name(), "scalar");
    EXPECT_EQ(net::min_share_scan(), &net::min_share_scan_scalar);
  }
  // ForceScalar always lands on the portable kernel.
  set_scan_kernel(net::ScanKernel::ForceScalar);
  EXPECT_STREQ(net::min_share_scan_name(), "scalar");
  EXPECT_EQ(net::min_share_scan(), &net::min_share_scan_scalar);
  EXPECT_FALSE(net::min_share_scan_is_simd());
  set_scan_kernel(net::ScanKernel::Auto);
}

TEST(SimdScan, EmptyAndTinyRanges) {
  std::vector<double> resid{3.0, 2.0, 1.0};
  std::vector<double> aw{1.0, 1.0, 1.0};
  EXPECT_EQ(net::min_share_scan_scalar(resid.data(), aw.data(), 0, 0), kInf);
  EXPECT_EQ(net::min_share_scan()(resid.data(), aw.data(), 2, 2), kInf);
  expect_kernels_match(resid, aw);
}

TEST(SimdScan, AdversarialNearTies) {
  // Shares one ULP apart around a common value: the min must select the
  // exact smaller bit pattern, never a tolerance-collapsed tie.
  const double base = 1.0 / 3.0;
  std::vector<double> resid, aw;
  for (int k = -3; k <= 3; ++k) {
    double share = base;
    for (int s = 0; s < std::abs(k); ++s)
      share = std::nextafter(share, k < 0 ? 0.0 : 1.0);
    resid.push_back(share * 7.0);
    aw.push_back(7.0);
  }
  // And a block of exact bitwise ties (symmetric-pattern case).
  for (int i = 0; i < 13; ++i) {
    resid.push_back(base * 3.0);
    aw.push_back(3.0);
  }
  expect_kernels_match(resid, aw);
}

TEST(SimdScan, ZeroNegativeAndNonLiveLanes) {
  // residual <= 0 clamps to share 0 on live lanes; aw <= 0 lanes are
  // skipped entirely (+inf), even when their residual is negative, zero,
  // infinite, or huge. -0.0 aw is NOT live (IEEE: -0.0 > 0.0 is false).
  std::vector<double> resid{-1.0, 0.0, -0.0, 5.0,  kInf, 1e308,
                            2.0,  8.0, 1e-300, -3.0, 0.25, 9.0};
  std::vector<double> aw{2.0,  3.0, 1.0, 0.0,  4.0, 1e-3,
                         -1.0, 0.5, 2.0, -0.0, 1e300, 0.0};
  expect_kernels_match(resid, aw);
  // All-dead input: no live lane anywhere -> +inf from every kernel.
  std::vector<double> dead_aw(aw.size(), 0.0);
  EXPECT_EQ(net::min_share_scan_scalar(resid.data(), dead_aw.data(), 0,
                                       dead_aw.size()),
            kInf);
  EXPECT_EQ(net::min_share_scan()(resid.data(), dead_aw.data(), 0,
                                  dead_aw.size()),
            kInf);
}

TEST(SimdScan, RandomizedSweepAllTailLengths) {
  sim::Rng rng(0xD15Bu);
  for (std::size_t n = 1; n <= 70; ++n) {
    std::vector<double> resid(n), aw(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix of live, dead, and clamped lanes in random order.
      const auto kind = rng.index(5);
      resid[i] = rng.uniform(-2.0, 50.0);
      aw[i] = kind == 0 ? 0.0 : rng.uniform(0.25, 8.0);
      if (kind == 1) resid[i] = -resid[i];
    }
    expect_kernels_match(resid, aw);
  }
}

// ---------------------------------------------------------------------------
// Solver-level properties: identical min is not enough — the fired-link SET
// must match too, or the trajectory (and every later iteration) diverges.
// ---------------------------------------------------------------------------

// RAII: force a kernel, restore Auto.
struct ScopedKernel {
  explicit ScopedKernel(net::ScanKernel k) { net::set_scan_kernel(k); }
  ~ScopedKernel() { net::set_scan_kernel(net::ScanKernel::Auto); }
};

// RAII: replace the solver tuning, restore the previous values.
struct ScopedTuning {
  net::SolverTuning prev;
  explicit ScopedTuning(const net::SolverTuning& t) : prev(net::solver_tuning()) {
    net::set_solver_tuning(t);
  }
  ~ScopedTuning() { net::set_solver_tuning(prev); }
};

struct SolveResult {
  std::vector<double> rates;
  net::SolveStats stats;
};

SolveResult solve_with_kernel(net::ScanKernel k,
                              const std::vector<double>& caps,
                              const std::vector<std::vector<int>>& paths,
                              const std::vector<double>* weights = nullptr) {
  ScopedKernel sk(k);
  SolveResult r;
  r.rates = net::max_min_rates(caps, paths, weights, &r.stats);
  return r;
}

// Adversarial near-tie problem: two components whose bottleneck shares sit
// one ULP apart. A tolerance anywhere in the scan or the firing cutoff would
// merge their firing iterations; bit-exact kernels must keep them separate
// and identical under both kernels (same rates, same iteration count, same
// fired-link total).
TEST(SimdSolver, NearTieFiringSetIdentical) {
  // Component A: link 0, 3 unit flows. Component B: link 1, 3 unit flows.
  // The capacities sit one ULP apart, so the two shares cap/3 land 1-2 ULP
  // apart — a genuine bitwise near-tie, NOT an exact tie (a capacity gap
  // this small can vanish in the division; the assertions below prove it
  // survived on this pair).
  const std::vector<double> caps{1.0, std::nextafter(1.0, 2.0)};
  const double share_a = caps[0] / 3.0;
  const double share_b = caps[1] / 3.0;
  ASSERT_NE(share_a, share_b) << "shares collapsed; widen the capacity gap";
  std::vector<std::vector<int>> paths;
  for (int i = 0; i < 3; ++i) paths.push_back({0});
  for (int i = 0; i < 3; ++i) paths.push_back({1});

  const auto auto_r = solve_with_kernel(net::ScanKernel::Auto, caps, paths);
  const auto scal_r =
      solve_with_kernel(net::ScanKernel::ForceScalar, caps, paths);
  ASSERT_EQ(auto_r.rates.size(), scal_r.rates.size());
  for (std::size_t i = 0; i < auto_r.rates.size(); ++i)
    EXPECT_EQ(auto_r.rates[i], scal_r.rates[i]) << "flow " << i;
  EXPECT_EQ(auto_r.stats.iterations, scal_r.stats.iterations);
  EXPECT_EQ(auto_r.stats.bottleneck_links, scal_r.stats.bottleneck_links);
  // The ULP gap must survive: two distinct firing iterations, one link each,
  // and the two rate groups differ in their last bit.
  EXPECT_EQ(auto_r.stats.iterations, 2);
  EXPECT_EQ(auto_r.stats.bottleneck_links, 2);
  EXPECT_EQ(auto_r.rates[0], share_a);
  EXPECT_EQ(auto_r.rates[3], share_b);
  EXPECT_NE(auto_r.rates[0], auto_r.rates[3]);
}

// Weight-0 flows are the one input class where active-list membership
// bookkeeping could diverge between implementations (see solver.hpp): both
// the reference and the CSR core keep the list first-seen-deduplicated, so
// they must agree bitwise here too — under either kernel.
TEST(SimdSolver, ZeroWeightFlowsMatchReference) {
  const std::vector<double> caps{10.0, 8.0, 6.0};
  const std::vector<std::vector<int>> paths{
      {0}, {0, 1}, {1, 2}, {2}, {0, 2}};
  // Flow 1 and 3 carry weight exactly 0: their links enter the active list
  // through a zero-weight crosser first (link 2 via flow 3), the dedupe
  // regression case.
  const std::vector<double> w{1.0, 0.0, 2.0, 0.0, 1.5};
  for (const auto k : {net::ScanKernel::Auto, net::ScanKernel::ForceScalar}) {
    ScopedKernel sk(k);
    net::SolveStats ref_stats{}, csr_stats{};
    const auto ref = net::max_min_rates_reference(caps, paths, &w, &ref_stats);
    const auto csr = net::max_min_rates(caps, paths, &w, &csr_stats);
    ASSERT_EQ(ref.size(), csr.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_EQ(ref[i], csr[i]) << "flow " << i;
    EXPECT_EQ(ref_stats.iterations, csr_stats.iterations);
    EXPECT_EQ(ref_stats.bottleneck_links, csr_stats.bottleneck_links);
  }
}

// Randomized differential with the parallel gates forced open on a small
// problem: every iteration takes the chunked parallel scan and the batched
// update path, on worker threads, under both kernels — and must still match
// the default-tuning serial solve bit for bit.
TEST(SimdSolver, ForcedParallelGatesMatchSerial) {
  sim::Rng rng(0xABCDu);
  const std::size_t num_links = 96;
  std::vector<double> caps(num_links);
  for (auto& c : caps) c = rng.uniform(1.0, 100.0);
  std::vector<std::vector<int>> paths;
  for (int f = 0; f < 400; ++f) {
    std::vector<int> p;
    const int len = 1 + static_cast<int>(rng.index(4));
    while (static_cast<int>(p.size()) < len) {
      const int l = static_cast<int>(rng.index(num_links));
      bool dup = false;
      for (int q : p) dup |= (q == l);
      if (!dup) p.push_back(l);
    }
    paths.push_back(std::move(p));
  }

  net::SolveStats base_stats{};
  const auto baseline = net::max_min_rates(caps, paths, nullptr, &base_stats);
  EXPECT_EQ(base_stats.parallel_scans, 0);  // default gates stay closed here

  const int prev_threads = sim::thread_count();
  for (const int threads : {1, 2, 8}) {
    sim::set_thread_count(threads);
    for (const auto k :
         {net::ScanKernel::Auto, net::ScanKernel::ForceScalar}) {
      ScopedKernel sk(k);
      ScopedTuning st({.parallel_scan_threshold = 8,
                       .scan_grain = 16,
                       .parallel_update_min = 4});
      net::SolveStats stats{};
      const auto got = net::max_min_rates(caps, paths, nullptr, &stats);
      ASSERT_EQ(got.size(), baseline.size());
      for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], baseline[i])
            << "flow " << i << ", threads " << threads;
      EXPECT_EQ(stats.iterations, base_stats.iterations);
      EXPECT_EQ(stats.bottleneck_links, base_stats.bottleneck_links);
      EXPECT_GT(stats.parallel_scans, 0);  // the gate really opened
    }
  }
  sim::set_thread_count(prev_threads);
}

}  // namespace
