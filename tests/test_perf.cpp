// Tests for the perf layer: roofline kernel-time model and the real host
// STREAM implementation.
#include <gtest/gtest.h>

#include "hw/gpu.hpp"
#include "perf/host_stream.hpp"
#include "perf/roofline.hpp"

namespace {

using namespace xscale;

TEST(Roofline, ComputeBoundKernelScalesWithFlops) {
  const auto g = hw::mi250x_gcd();
  perf::KernelWork k;
  k.flops = 1e12;
  k.bytes = 1e6;  // negligible traffic
  const double t1 = perf::kernel_time(k, g);
  k.flops = 2e12;
  const double t2 = perf::kernel_time(k, g);
  EXPECT_NEAR((t2 - g.launch_latency_s) / (t1 - g.launch_latency_s), 2.0, 1e-9);
}

TEST(Roofline, MemoryBoundKernelScalesWithBytes) {
  const auto g = hw::mi250x_gcd();
  perf::KernelWork k;
  k.flops = 1e6;
  k.bytes = 1e10;
  const double t1 = perf::kernel_time(k, g);
  k.bytes = 3e10;
  const double t2 = perf::kernel_time(k, g);
  EXPECT_NEAR((t2 - g.launch_latency_s) / (t1 - g.launch_latency_s), 3.0, 1e-9);
}

TEST(Roofline, MaxOfComputeAndMemoryNotSum) {
  const auto g = hw::mi250x_gcd();
  perf::KernelWork compute_only{.flops = 1e13, .bytes = 0};
  perf::KernelWork memory_only{.flops = 0, .bytes = 1e10};
  perf::KernelWork both{.flops = 1e13, .bytes = 1e10};
  const double tc = perf::kernel_time(compute_only, g);
  const double tm = perf::kernel_time(memory_only, g);
  const double tb = perf::kernel_time(both, g);
  EXPECT_NEAR(tb, std::max(tc, tm), g.launch_latency_s);
}

TEST(Roofline, MatrixCoresCutComputeTime) {
  const auto g = hw::mi250x_gcd();
  perf::KernelWork k{.flops = 1e13, .bytes = 0};
  k.uses_matrix_cores = false;
  const double vec = perf::kernel_time(k, g);
  k.uses_matrix_cores = true;
  const double mat = perf::kernel_time(k, g);
  EXPECT_NEAR(vec / mat, g.fp64_matrix / g.fp64_vector, 0.01);
}

TEST(Roofline, RidgePointConsistent) {
  const auto g = hw::mi250x_gcd();
  const double ridge = perf::ridge_point(g, hw::Precision::FP64, false);
  // 23.95 TF / 1.635 TB/s ~ 14.6 FLOP/byte.
  EXPECT_NEAR(ridge, 14.65, 0.1);
  EXPECT_GT(perf::ridge_point(g, hw::Precision::FP64, true), ridge);
}

TEST(HostStream, ProducesPositiveBandwidths) {
  perf::HostStream hs(1 << 18, 1);  // 2 MiB arrays, quick
  const auto results = hs.run(2);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_GT(r.temporal_bw, 0.0) << r.kernel;
    EXPECT_GT(r.nontemporal_bw, 0.0) << r.kernel;
    // Sanity: no host moves memory at a petabyte per second.
    EXPECT_LT(r.temporal_bw, 1e15) << r.kernel;
  }
  EXPECT_EQ(results[0].kernel, "Copy");
  EXPECT_EQ(results[3].kernel, "Triad");
}

TEST(HostStream, KernelsComputeCorrectValues) {
  // The kernels must actually perform STREAM's arithmetic — verified
  // indirectly: bandwidth of Add/Triad (3 arrays) differs from Copy/Scale
  // (2 arrays) by at most the machine's plausibility envelope, and repeated
  // runs are stable to 10x.
  perf::HostStream hs(1 << 16, 1);
  const auto a = hs.run(2);
  const auto b = hs.run(2);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_LT(a[i].temporal_bw / b[i].temporal_bw, 10.0);
    EXPECT_GT(a[i].temporal_bw / b[i].temporal_bw, 0.1);
  }
}

TEST(HostStream, ReportsNontemporalAvailability) {
#if defined(__SSE2__)
  EXPECT_TRUE(perf::HostStream::has_nontemporal_stores());
#else
  EXPECT_FALSE(perf::HostStream::has_nontemporal_stores());
#endif
}

}  // namespace
