// Parameterized property tests: invariants swept over configuration spaces
// with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "apps/catalog.hpp"
#include "core/xscale.hpp"
#include "sim/parallel.hpp"

namespace {

using namespace xscale;

// ----------------------------------------------------- solver properties ----

struct SolverCase {
  std::uint64_t seed;
  int links;
  int flows;
  int max_path;
};

class SolverProperty : public ::testing::TestWithParam<SolverCase> {};

TEST_P(SolverProperty, MaxMinInvariantsHold) {
  const auto c = GetParam();
  sim::Rng rng(c.seed);
  std::vector<double> cap(static_cast<std::size_t>(c.links));
  for (auto& x : cap) x = rng.uniform(0.5, 50.0);
  std::vector<std::vector<int>> paths(static_cast<std::size_t>(c.flows));
  for (auto& p : paths) {
    const int len = 1 + static_cast<int>(rng.index(static_cast<std::uint64_t>(c.max_path)));
    std::set<int> s;
    while (static_cast<int>(s.size()) < len)
      s.insert(static_cast<int>(rng.index(static_cast<std::uint64_t>(c.links))));
    p.assign(s.begin(), s.end());
  }
  const auto r = net::max_min_rates(cap, paths);

  // 1. All rates strictly positive and finite.
  for (double x : r) {
    EXPECT_GT(x, 0.0);
    EXPECT_TRUE(std::isfinite(x));
  }
  // 2. No link oversubscribed.
  std::vector<double> load(cap.size(), 0.0);
  for (std::size_t f = 0; f < paths.size(); ++f)
    for (int l : paths[f]) load[static_cast<std::size_t>(l)] += r[f];
  for (std::size_t l = 0; l < cap.size(); ++l)
    EXPECT_LE(load[l], cap[l] * (1 + 1e-6));
  // 3. Pareto: each flow crosses a saturated link (cannot be raised without
  //    lowering someone).
  for (std::size_t f = 0; f < paths.size(); ++f) {
    bool saturated = false;
    for (int l : paths[f])
      if (load[static_cast<std::size_t>(l)] >= cap[static_cast<std::size_t>(l)] * (1 - 1e-6))
        saturated = true;
    EXPECT_TRUE(saturated) << "flow " << f;
  }

  // 4. The component-parallel solver satisfies the same invariants and is
  //    bit-identical to the global serial solve at every thread count.
  const int prev_threads = sim::thread_count();
  for (int threads : {1, 2, 8}) {
    sim::set_thread_count(threads);
    const auto rc = net::max_min_rates_components(cap, paths);
    ASSERT_EQ(rc.size(), r.size());
    for (std::size_t f = 0; f < r.size(); ++f)
      EXPECT_EQ(rc[f], r[f]) << "flow " << f << " at threads=" << threads;
  }
  sim::set_thread_count(prev_threads);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SolverProperty,
                         ::testing::Values(SolverCase{1, 8, 20, 3},
                                           SolverCase{2, 64, 200, 5},
                                           SolverCase{3, 256, 1000, 6},
                                           SolverCase{4, 16, 500, 2},
                                           SolverCase{5, 512, 100, 8}));

// -------------------------------------------------- dragonfly properties ----

class DragonflySize : public ::testing::TestWithParam<int> {};

TEST_P(DragonflySize, StructuralInvariants) {
  const int groups = GetParam();
  const auto t = topo::Topology::uniform_dragonfly(groups, {8, 8}, 2, 25e9, 1e-7);
  EXPECT_EQ(t.num_groups(), groups);
  EXPECT_EQ(t.num_switches(), groups * 8);
  EXPECT_EQ(t.num_endpoints(), groups * 64);
  // Every ordered group pair has a global link terminating at a gateway of
  // the source group, and capacities are symmetric.
  for (int g = 0; g < groups; ++g) {
    for (int h = 0; h < groups; ++h) {
      if (g == h) continue;
      const int l = t.global_link(g, h);
      ASSERT_GE(l, 0);
      EXPECT_EQ(t.group_of_switch(t.link(l).src), g);
      EXPECT_EQ(t.group_of_switch(t.link(l).dst), h);
      EXPECT_DOUBLE_EQ(t.link(l).capacity,
                       t.link(t.global_link(h, g)).capacity);
    }
    EXPECT_EQ(static_cast<int>(t.peer_groups(g).size()), groups - 1);
  }
}

TEST_P(DragonflySize, EveryEndpointPairRoutable) {
  const int groups = GetParam();
  net::Fabric f(topo::Topology::uniform_dragonfly(groups, {4, 4}, 1, 25e9, 1e-7),
                net::FabricConfig{});
  sim::Rng rng(17);
  const int eps = f.topology().num_endpoints();
  for (int trial = 0; trial < 50; ++trial) {
    const int a = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
    int b = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
    if (b == a) b = (b + 1) % eps;
    const auto path = f.route(a, b, rng);
    ASSERT_GE(path.size(), 2u);
    // Path is connected: consecutive links share a vertex.
    EXPECT_EQ(f.topology().link(path.front()).src, eps > a ? a : a);
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      EXPECT_EQ(f.topology().link(path[i]).dst,
                f.topology().link(path[i + 1]).src);
    EXPECT_EQ(f.topology().link(path.back()).dst, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DragonflySize, ::testing::Values(3, 5, 9, 16, 33));

// ------------------------------------------------------ STREAM properties ---

class StreamKernelCase
    : public ::testing::TestWithParam<std::tuple<int, hw::NpsMode>> {};

TEST_P(StreamKernelCase, NonTemporalNeverSlower) {
  const auto [ki, nps] = GetParam();
  const auto cpu = hw::trento();
  const auto& k = hw::kCpuStreamKernels[static_cast<std::size_t>(ki)];
  const double nt = cpu.ddr.stream_bandwidth(k, false, nps);
  const double t = cpu.ddr.stream_bandwidth(k, true, nps);
  EXPECT_GE(nt, t);
  EXPECT_LE(nt, cpu.ddr.peak_bandwidth());
  EXPECT_GT(t, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllNps, StreamKernelCase,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(hw::NpsMode::NPS1, hw::NpsMode::NPS2,
                                         hw::NpsMode::NPS4)));

// --------------------------------------------------------- GEMM properties --

class GemmPrecision : public ::testing::TestWithParam<hw::Precision> {};

TEST_P(GemmPrecision, BoundedAndSaturating) {
  const auto p = GetParam();
  const auto g = hw::mi250x_gcd();
  double prev = 0;
  for (int n = 128; n <= 32768; n *= 2) {
    const double a = g.gemm_achieved(p, n);
    EXPECT_GT(a, 0.0);
    EXPECT_LE(a, g.matrix_peak(p));
    EXPECT_GE(a, prev);
    prev = a;
  }
  // Plateau within 5% of the calibrated asymptote.
  EXPECT_NEAR(g.gemm_achieved(p, 32768) / (g.matrix_peak(p) * g.gemm_asymptotic_eff(p)),
              1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, GemmPrecision,
                         ::testing::Values(hw::Precision::FP64, hw::Precision::FP32,
                                           hw::Precision::FP16));

// ------------------------------------------------------------ PFL sweep -----

class PflSplit : public ::testing::TestWithParam<double> {};

TEST_P(PflSplit, PartitionIsExactAndOrdered) {
  const double size = GetParam();
  const storage::Orion o;
  const auto s = o.pfl_split(size);
  EXPECT_DOUBLE_EQ(s.total(), size);          // nothing lost or duplicated
  EXPECT_LE(s.metadata, units::KiB(256));     // DoM bound
  EXPECT_LE(s.performance, units::MiB(8) - units::KiB(256));
  EXPECT_GE(s.metadata, 0.0);
  EXPECT_GE(s.performance, 0.0);
  EXPECT_GE(s.capacity, 0.0);
  // The capacity tier is used only when the performance extent is full.
  if (s.capacity > 0) {
    EXPECT_DOUBLE_EQ(s.performance, units::MiB(8) - units::KiB(256));
  }
}

INSTANTIATE_TEST_SUITE_P(FileSizes, PflSplit,
                         ::testing::Values(1.0, units::KiB(4), units::KiB(256),
                                           units::KiB(257), units::MiB(1),
                                           units::MiB(8), units::MiB(9),
                                           units::GiB(4), units::TB(1)));

// ----------------------------------------------------- scheduler stress -----

struct SchedCase {
  std::uint64_t seed;
  int total_nodes;
  int jobs;
};

class SchedulerStress : public ::testing::TestWithParam<SchedCase> {};

TEST_P(SchedulerStress, NoOverlapNoLeakAllServed) {
  const auto c = GetParam();
  sched::Scheduler s(c.total_nodes, 128, c.seed);
  sim::Engine eng;
  sim::Rng rng(c.seed);
  std::vector<sched::JobRequest> jobs;
  for (int i = 0; i < c.jobs; ++i) {
    const int n = 1 + static_cast<int>(rng.index(static_cast<std::uint64_t>(c.total_nodes)));
    jobs.push_back({n, rng.uniform(1.0, 100.0),
                    static_cast<sched::Placement>(rng.index(4))});
  }
  const auto rec = s.run_workload(eng, jobs);
  ASSERT_EQ(rec.size(), jobs.size());
  for (const auto& r : rec) {
    EXPECT_GE(r.start_time, 0.0);  // every job eventually runs
    EXPECT_EQ(static_cast<int>(r.nodes.size()), r.request.nodes);
  }
  // No node used by two jobs at overlapping times.
  for (std::size_t i = 0; i < rec.size(); ++i) {
    for (std::size_t j = i + 1; j < rec.size(); ++j) {
      const bool overlap_time = rec[i].start_time < rec[j].end_time - 1e-9 &&
                                rec[j].start_time < rec[i].end_time - 1e-9;
      if (!overlap_time) continue;
      std::set<int> a(rec[i].nodes.begin(), rec[i].nodes.end());
      for (int n : rec[j].nodes) EXPECT_EQ(a.count(n), 0u) << i << "," << j;
    }
  }
  EXPECT_EQ(s.free_nodes(), c.total_nodes);
}

INSTANTIATE_TEST_SUITE_P(Workloads, SchedulerStress,
                         ::testing::Values(SchedCase{1, 256, 30},
                                           SchedCase{2, 512, 60},
                                           SchedCase{3, 1024, 40},
                                           SchedCase{4, 128, 80}));

// -------------------------------------------------------- app catalog sweep -

class AppSweep : public ::testing::TestWithParam<int> {};

TEST_P(AppSweep, WeakScalingAndMachineOrdering) {
  const auto all = apps::all_apps();
  const auto& spec = all[static_cast<std::size_t>(GetParam())];
  const auto frontier = machines::frontier();
  // FOM grows near-linearly with node count on Frontier.
  const auto a = apps::run_app(spec, frontier, nullptr, 32);
  const auto b = apps::run_app(spec, frontier, nullptr, 512);
  EXPECT_GT(b.fom, a.fom * 8.0) << spec.name;
  EXPECT_LE(b.fom, a.fom * 16.5) << spec.name;
  // A Frontier node outperforms a Titan node on every app.
  const auto f1 = apps::run_app(spec, frontier, nullptr, 1);
  const auto t1 = apps::run_app(spec, machines::titan(), nullptr, 1);
  EXPECT_GT(f1.fom, t1.fom) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppSweep, ::testing::Range(0, 13));

// ----------------------------------------------------- GPCNeT PPN sweep -----

class GpcnetPpn : public ::testing::TestWithParam<int> {};

TEST_P(GpcnetPpn, ImpactNeverBelowOneAndGrowsWithPpn) {
  machines::Machine m = machines::frontier();
  machines::FrontierFabricSpec spec;
  spec.compute_groups = 4;
  spec.storage_groups = 0;
  spec.management_groups = 0;
  m.topology_factory = [spec] { return machines::frontier_topology(spec); };
  m.total_nodes = 512;
  m.compute_nodes = 512;
  auto fabric = m.build_fabric();
  mpi::GpcnetConfig cfg;
  cfg.nodes = 512;
  cfg.ppn = GetParam();
  const auto r = mpi::run_gpcnet(m, fabric, cfg);
  for (double i : r.impact) {
    EXPECT_GE(i, 0.99);
    if (cfg.ppn <= 8) {
      EXPECT_LE(i, 1.1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ppn, GpcnetPpn, ::testing::Values(4, 8, 16, 32));

// ------------------------------------------------- route cache properties ---
// Invariants of minimal routing and of the fabric route cache (ISSUE 5): a
// route is non-empty and duplicate-free, a minimal dragonfly route crosses at
// most 3 switch-to-switch links of which at most 1 is global, and a cached
// route is identical to one computed by a cache-disabled fabric — before a
// failure, while a link is down, and after it is restored.

class RouteCacheProperty : public ::testing::TestWithParam<int> {};

TEST_P(RouteCacheProperty, CachedEqualsFreshAndMinimalInvariantsHold) {
  const int groups = GetParam();
  const auto build = [&](bool cache) {
    net::FabricConfig cfg;
    cfg.routing = net::Routing::Minimal;
    cfg.route_cache = cache;
    return net::Fabric(
        topo::Topology::uniform_dragonfly(groups, {4, 4}, 1, 25e9, 180e-9), cfg);
  };
  net::Fabric cached = build(true);
  net::Fabric fresh = build(false);
  const auto& t = cached.topology();
  const int eps = t.num_endpoints();
  sim::Rng rng_a(99), rng_b(99);

  const auto check_pair = [&](int a, int b) {
    const auto pc = cached.route(a, b, rng_a);
    const auto pf = fresh.route(a, b, rng_b);
    ASSERT_EQ(pc, pf) << "src=" << a << " dst=" << b;
    ASSERT_FALSE(pc.empty());
    std::set<int> uniq(pc.begin(), pc.end());
    EXPECT_EQ(uniq.size(), pc.size()) << "duplicate link in route";
    int switch_hops = 0, global_hops = 0;
    for (int l : pc) {
      const auto kind = t.link(l).kind;
      if (kind == topo::LinkKind::Local || kind == topo::LinkKind::Global)
        ++switch_hops;
      if (kind == topo::LinkKind::Global) ++global_hops;
    }
    EXPECT_LE(switch_hops, 3);
    EXPECT_LE(global_hops, 1);
    EXPECT_EQ(t.link(pc.front()).src, a);
    EXPECT_EQ(t.link(pc.back()).dst, b);
  };

  // Deterministic sample plus a random sample of endpoint pairs; repeat each
  // pair so the second visit exercises the cache-hit path.
  sim::Rng pick(7);
  for (int trial = 0; trial < 120; ++trial) {
    int a, b;
    if (trial < 40) {  // same-switch and same-group pairs, then cross-group
      a = trial % eps;
      b = (a + 1 + trial / 2) % eps;
    } else {
      a = static_cast<int>(pick.index(static_cast<std::uint64_t>(eps)));
      b = static_cast<int>(pick.index(static_cast<std::uint64_t>(eps)));
    }
    if (a == b) continue;
    check_pair(a, b);
    check_pair(a, b);
  }

  // Fail the global link on a cross-group minimal route: both fabrics must
  // agree on the detour while it is down and return to the original route
  // after restore (the cache is invalidated wholesale both times). Needs a
  // third group to detour through.
  if (groups < 3) return;
  const int a = 0, b = eps - 1;
  const auto before = cached.route(a, b, rng_a);
  int global_id = -1;
  for (int l : before)
    if (t.link(l).kind == topo::LinkKind::Global) global_id = l;
  ASSERT_GE(global_id, 0);
  cached.fail_link(global_id);
  fresh.fail_link(global_id);
  const auto during_c = cached.route(a, b, rng_a);
  const auto during_f = fresh.route(a, b, rng_b);
  EXPECT_EQ(during_c, during_f);
  EXPECT_NE(during_c, before);  // detours around the failed bundle
  for (int l : during_c) EXPECT_NE(l, global_id);
  cached.restore_link(global_id);
  fresh.restore_link(global_id);
  EXPECT_EQ(cached.route(a, b, rng_a), before);
  EXPECT_EQ(fresh.route(a, b, rng_b), before);

  // Terminal failures (ISSUE 7 satellite 2): failing an Injection/Ejection
  // link zeroes its capacity but never changes where packets are steered, so
  // it must NOT invalidate the switch-pair route table. Routes stay cached ==
  // fresh, identical to the pre-failure route, and re-querying already-cached
  // pairs takes zero new cache misses while the terminal link is down.
  const int eject_b = t.ejection_link(b);
  ASSERT_EQ(t.link(eject_b).kind, topo::LinkKind::Ejection);
  const auto misses = [] {
    return obs::metrics().counter("net.route_cache.miss").value();
  };
  const auto sweep = [&] {
    for (int trial = 0; trial < 40; ++trial) {
      const int p = trial % eps;
      const int q = (p + 1 + trial / 2) % eps;
      if (p == q) continue;
      check_pair(p, q);
    }
  };
  // The endpoint-pair table is direct-mapped, so colliding keys evict each
  // other deterministically; measure the sweep's steady-state miss cost and
  // require the terminal failure not to add to it.
  sweep();  // re-warm anything the random sample evicted earlier
  const auto m0 = misses();
  sweep();
  const auto steady_misses = misses() - m0;
  cached.fail_link(eject_b);
  fresh.fail_link(eject_b);
  const auto term_c = cached.route(a, b, rng_a);
  const auto term_f = fresh.route(a, b, rng_b);
  EXPECT_EQ(term_c, term_f);
  EXPECT_EQ(term_c, before);  // steering unchanged: only capacity is gone
  const auto m1 = misses();
  sweep();
  EXPECT_EQ(misses() - m1, steady_misses)
      << "terminal-link failure invalidated the route cache";
  cached.restore_link(eject_b);
  fresh.restore_link(eject_b);
  EXPECT_EQ(cached.route(a, b, rng_a), before);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RouteCacheProperty, ::testing::Values(2, 4, 9, 17));

// Route-cache contract across topology families (ISSUE 9 satellite 1): the
// universal invariants — cached == fresh routes, non-empty, duplicate-free,
// correct terminal links, and terminal-link failures never invalidating the
// switch-pair route table — hold on every family; the hop-structure bound is
// family-specific (a dragonfly minimal route crosses at most 3 switch links
// of which at most 1 is global; a fat-tree route crosses exactly 0 or 2 Core
// links and nothing else; a full-coverage rotor route crosses at most 1
// Global link and no Core/Local ones).

struct RouteFamily {
  const char* name;
  topo::Topology (*make)();
};

topo::Topology route_family_dragonfly() {
  return topo::Topology::uniform_dragonfly(6, {4, 4}, 1, 25e9, 180e-9);
}
topo::Topology route_family_os_fat_tree() {
  return topo::Topology::oversubscribed_fat_tree(12, 8, 4.0, 25e9, 180e-9);
}
topo::Topology route_family_rotor() {
  // Full matching coverage (n-1) so every switch pair has a direct link.
  return topo::Topology::rotor(10, 8, 9, 250e-6, 0.9, 25e9, 180e-9);
}

class RouteCacheFamilyProperty
    : public ::testing::TestWithParam<RouteFamily> {};

TEST_P(RouteCacheFamilyProperty, UniversalInvariantsAndFamilyHopBounds) {
  const RouteFamily fam = GetParam();
  const auto build = [&](bool cache) {
    net::FabricConfig cfg;
    cfg.routing = net::Routing::Minimal;
    cfg.route_cache = cache;
    return net::Fabric(fam.make(), cfg);
  };
  net::Fabric cached = build(true);
  net::Fabric fresh = build(false);
  const auto& t = cached.topology();
  const int eps = t.num_endpoints();
  sim::Rng rng_a(99), rng_b(99);

  const auto check_pair = [&](int a, int b) {
    const auto pc = cached.route(a, b, rng_a);
    const auto pf = fresh.route(a, b, rng_b);
    ASSERT_EQ(pc, pf) << fam.name << " src=" << a << " dst=" << b;
    ASSERT_FALSE(pc.empty());
    std::set<int> uniq(pc.begin(), pc.end());
    EXPECT_EQ(uniq.size(), pc.size()) << fam.name << ": duplicate link";
    int local = 0, global = 0, core = 0;
    for (int l : pc) {
      switch (t.link(l).kind) {
        case topo::LinkKind::Local: ++local; break;
        case topo::LinkKind::Global: ++global; break;
        case topo::LinkKind::Core: ++core; break;
        default: break;
      }
    }
    if (t.is_fat_tree()) {
      EXPECT_EQ(local, 0) << fam.name;
      EXPECT_EQ(global, 0) << fam.name;
      EXPECT_TRUE(core == 0 || core == 2) << fam.name << " core=" << core;
      EXPECT_EQ(pc.size(), static_cast<std::size_t>(2 + core)) << fam.name;
    } else if (t.is_rotor()) {
      EXPECT_EQ(local, 0) << fam.name;
      EXPECT_EQ(core, 0) << fam.name;
      EXPECT_LE(global, 1) << fam.name;
      EXPECT_EQ(pc.size(), static_cast<std::size_t>(2 + global)) << fam.name;
    } else {
      EXPECT_LE(local + global, 3) << fam.name;
      EXPECT_LE(global, 1) << fam.name;
      EXPECT_EQ(core, 0) << fam.name;
    }
    EXPECT_EQ(t.link(pc.front()).src, a);
    EXPECT_EQ(t.link(pc.back()).dst, b);
  };

  // Deterministic same-switch/neighbour pairs, then a random cross sample;
  // each pair queried twice so the second visit rides the cache-hit path.
  sim::Rng pick(7);
  for (int trial = 0; trial < 120; ++trial) {
    int a, b;
    if (trial < 40) {
      a = trial % eps;
      b = (a + 1 + trial / 2) % eps;
    } else {
      a = static_cast<int>(pick.index(static_cast<std::uint64_t>(eps)));
      b = static_cast<int>(pick.index(static_cast<std::uint64_t>(eps)));
    }
    if (a == b) continue;
    check_pair(a, b);
    check_pair(a, b);
  }

  // Terminal failures zero capacity but never steer packets elsewhere, on
  // every family: the switch-pair route table must survive untouched.
  const int a = 0, b = eps - 1;
  const auto before = cached.route(a, b, rng_a);
  const int eject_b = t.ejection_link(b);
  ASSERT_EQ(t.link(eject_b).kind, topo::LinkKind::Ejection);
  const auto misses = [] {
    return obs::metrics().counter("net.route_cache.miss").value();
  };
  const auto sweep = [&] {
    for (int trial = 0; trial < 40; ++trial) {
      const int p = trial % eps;
      const int q = (p + 1 + trial / 2) % eps;
      if (p == q) continue;
      check_pair(p, q);
    }
  };
  sweep();  // re-warm anything the random sample evicted
  const auto m0 = misses();
  sweep();
  const auto steady_misses = misses() - m0;
  cached.fail_link(eject_b);
  fresh.fail_link(eject_b);
  EXPECT_EQ(cached.route(a, b, rng_a), before);
  EXPECT_EQ(fresh.route(a, b, rng_b), before);
  const auto m1 = misses();
  sweep();
  EXPECT_EQ(misses() - m1, steady_misses)
      << fam.name << ": terminal-link failure invalidated the route cache";
  cached.restore_link(eject_b);
  fresh.restore_link(eject_b);
  EXPECT_EQ(cached.route(a, b, rng_a), before);
}

INSTANTIATE_TEST_SUITE_P(
    Families, RouteCacheFamilyProperty,
    ::testing::Values(RouteFamily{"dragonfly", route_family_dragonfly},
                      RouteFamily{"os_fat_tree", route_family_os_fat_tree},
                      RouteFamily{"rotor", route_family_rotor}),
    [](const ::testing::TestParamInfo<RouteFamily>& info) {
      return std::string(info.param.name);
    });

}  // namespace
