// Tests for the incremental FlowSim rate solver: differential equivalence
// against the full max-min oracle on randomized churn, stall/drop handling of
// zero-rate flows over failed links, and event-heap boundedness under the
// cancel-heavy reschedule pattern.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/fabric.hpp"
#include "net/flowsim.hpp"
#include "net/solver.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace {

using namespace xscale;

net::Fabric small_dragonfly(net::Routing r, bool cc = true) {
  // 8 groups x 4 switches x 4 endpoints, 1 link per group pair.
  auto t = topo::Topology::uniform_dragonfly(8, {4, 4}, 1, 25e9, 180e-9);
  net::FabricConfig cfg;
  cfg.routing = r;
  cfg.congestion_control = cc;
  cfg.nic_efficiency = 0.70;
  return net::Fabric(std::move(t), cfg);
}

// Rebuild the full problem from the simulator's state and check every active
// flow's rate against the retained reference oracle, bit for bit. The CSR
// adapter (`max_min_rates`) is checked against the reference on the same
// input, so one call pins live rates == CSR core == original implementation.
int check_against_oracle(const net::FlowSim& fs, const net::Fabric& fabric) {
  std::vector<std::vector<int>> paths;
  std::vector<double> live_rates;
  fs.for_each_flow([&](std::uint64_t, const std::vector<int>& path, double,
                       double rate) {
    paths.push_back(path);
    live_rates.push_back(rate);
  });
  const auto oracle =
      net::max_min_rates_reference(fabric.effective_capacities(), paths);
  const auto csr = net::max_min_rates(fabric.effective_capacities(), paths);
  EXPECT_EQ(oracle.size(), live_rates.size());
  EXPECT_EQ(csr.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(live_rates[i], oracle[i]) << "flow index " << i;
    EXPECT_EQ(csr[i], oracle[i]) << "csr adapter, flow index " << i;
  }
  return static_cast<int>(oracle.size());
}

// Randomized churn over the dragonfly: a window of concurrent flows with
// staggered starts and completions; after every state change (start or
// completion) the incremental rates must equal the oracle's exactly.
TEST(FlowSimIncremental, DifferentialOracleOnRandomChurn) {
  for (std::uint64_t seed : {11ull, 23ull, 47ull}) {
    sim::Engine eng;
    auto fabric = small_dragonfly(net::Routing::Adaptive);
    net::FlowSim fs(eng, fabric);
    sim::Rng rng(seed);
    const int eps = fabric.topology().num_endpoints();
    int launched = 0, completed = 0, checks = 0;
    const int total = 400;

    std::function<void()> launch = [&] {
      if (launched >= total) return;
      ++launched;
      const int src = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
      int dst = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
      if (dst == src) dst = (dst + 1) % eps;
      fs.start(src, dst, rng.uniform(1e6, 5e8), [&] {
        ++completed;
        checks += check_against_oracle(fs, fabric);
        // Replacement keeps a ~16-flow window alive until the budget drains.
        launch();
      });
      checks += check_against_oracle(fs, fabric);
    };
    for (int i = 0; i < 16; ++i) launch();
    eng.run();

    EXPECT_EQ(completed, total);
    EXPECT_EQ(fs.active_flows(), 0u);
    EXPECT_GT(checks, 2000);  // the differential actually exercised rates
    // The point of the machinery: restricted solves happened and dominated.
    EXPECT_GT(fs.stats().component_solves, fs.stats().fallback_solves);
  }
}

// Same-destination ties: many equal flows complete at the same instant, so
// several removals collapse into one resolve whose dirty set spans multiple
// merged components.
TEST(FlowSimIncremental, DifferentialOracleOnTiedIncast) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  net::FlowSim fs(eng, fabric);
  int done = 0;
  for (int s = 4; s < 12; ++s)
    fs.start(s, 2, 8.75e9, [&] {
      ++done;
      check_against_oracle(fs, fabric);
    });
  for (int s = 16; s < 20; ++s)  // independent group, own component
    fs.start(s, 20, 17.5e9, [&] {
      ++done;
      check_against_oracle(fs, fabric);
    });
  check_against_oracle(fs, fabric);
  eng.run();
  EXPECT_EQ(done, 12);
}

TEST(FlowSimIncremental, FullAndIncrementalCompletionTimesAgree) {
  auto run = [](bool incremental) {
    sim::Engine eng;
    auto fabric = small_dragonfly(net::Routing::Adaptive);
    net::FlowSim fs(eng, fabric, {.incremental = incremental});
    sim::Rng rng(7);
    std::vector<double> done_times;
    for (int i = 0; i < 96; ++i) {
      const int src = static_cast<int>(rng.index(128));
      int dst = static_cast<int>(rng.index(128));
      if (dst == src) dst = (dst + 1) % 128;
      fs.start(src, dst, rng.uniform(1e6, 1e9),
               [&done_times, &eng] { done_times.push_back(eng.now()); });
    }
    eng.run();
    return done_times;
  };
  const auto inc = run(true);
  const auto full = run(false);
  ASSERT_EQ(inc.size(), full.size());
  for (std::size_t i = 0; i < inc.size(); ++i) EXPECT_EQ(inc[i], full[i]);
}

// ------------------------------------------------------------ rate floor ---

TEST(FlowSim, FlowOverDownedLinkStallsVisiblyInsteadOfTrickling) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  fabric.fail_link(fabric.topology().ejection_link(3));
  net::FlowSim fs(eng, fabric);
  bool done = false;
  fs.start(0, 3, 1e9, [&] { done = true; });
  eng.run();  // returns immediately: a stalled flow schedules nothing
  EXPECT_FALSE(done);  // the old 1 B/s floor "completed" this after ~31 sim-years
  EXPECT_EQ(fs.active_flows(), 1u);
  EXPECT_EQ(fs.stalled_flows(), 1u);
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(FlowSim, StalledFlowRecoversWhenLinkRestored) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  const int ej3 = fabric.topology().ejection_link(3);
  fabric.fail_link(ej3);
  net::FlowSim fs(eng, fabric);
  double t_victim = -1;
  fs.start(0, 3, 17.5e9, [&] { t_victim = eng.now(); });
  eng.run();
  ASSERT_EQ(fs.stalled_flows(), 1u);

  fabric.restore_link(ej3);
  // Capacity changes are picked up at the next resolve that dirties the
  // component; a new flow over the same destination does exactly that.
  double t_probe = -1;
  fs.start(1, 3, 17.5e9, [&] { t_probe = eng.now(); });
  EXPECT_EQ(fs.stalled_flows(), 0u);
  eng.run();
  EXPECT_NEAR(t_victim, 2.0, 1e-6);  // both shared the restored ejection link
  EXPECT_NEAR(t_probe, 2.0, 1e-6);
  EXPECT_EQ(fs.active_flows(), 0u);
}

TEST(FlowSim, DropPolicyFailsFastWithHook) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  fabric.fail_link(fabric.topology().ejection_link(3));
  net::FlowSim fs(eng, fabric, {.stall_policy = net::StallPolicy::Drop});
  std::vector<std::uint64_t> stalled_ids;
  fs.on_stall([&](std::uint64_t id) { stalled_ids.push_back(id); });
  bool done = false, other_done = false;
  const auto id = fs.start(0, 3, 1e9, [&] { done = true; });
  fs.start(4, 5, 17.5e9, [&] { other_done = true; });  // healthy flow
  eng.run();
  EXPECT_FALSE(done);
  EXPECT_TRUE(other_done);
  EXPECT_EQ(fs.active_flows(), 0u);
  EXPECT_EQ(fs.stalled_flows(), 0u);
  EXPECT_EQ(fs.dropped_flows(), 1u);
  ASSERT_EQ(stalled_ids.size(), 1u);
  EXPECT_EQ(stalled_ids[0], id);
}

// ------------------------------------------------------------- heap churn ---

// Acceptance criterion: across a million-operation FlowSim churn, the engine
// heap stays bounded — cancelled (stale) entries never exceed live ones.
TEST(FlowSim, EngineHeapBoundedAcrossMillionOpChurn) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Adaptive);
  net::FlowSim fs(eng, fabric);
  sim::Rng rng(99);
  const int eps = fabric.topology().num_endpoints();
  std::uint64_t completions = 0;

  std::function<void()> launch = [&] {
    const int src = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
    int dst = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
    if (dst == src) dst = (dst + 1) % eps;
    fs.start(src, dst, rng.uniform(1e5, 1e7), [&] {
      ++completions;
      if (completions % 1024 == 0) {
        ASSERT_LE(eng.cancelled_events(), eng.pending_events());
        ASSERT_LE(eng.heap_size(),
                  2 * eng.pending_events());  // heap = live + stale
      }
      // Keep churning until scheduled + executed events pass the million-op
      // mark (each completion costs ~2 schedules, 1 cancel, 1 execution).
      if (eng.events_scheduled() < 700000) launch();
    });
  };
  for (int i = 0; i < 12; ++i) launch();
  eng.run();

  const std::uint64_t ops = eng.events_scheduled() + eng.events_executed();
  EXPECT_GT(ops, 1000000u);
  EXPECT_LE(eng.cancelled_events(), eng.pending_events());
  EXPECT_GT(eng.compactions(), 0u);
  EXPECT_EQ(fs.active_flows(), 0u);
  // The incremental machinery was engaged, not bypassed, during the churn.
  EXPECT_GT(fs.stats().component_solves, 0u);
}

}  // namespace
