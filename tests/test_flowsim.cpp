// Tests for the incremental FlowSim rate solver: differential equivalence
// against the full max-min oracle on randomized churn, stall/drop handling of
// zero-rate flows over failed links, and event-heap boundedness under the
// cancel-heavy reschedule pattern.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "net/flowsim.hpp"
#include "net/rotor.hpp"
#include "net/simd.hpp"
#include "net/solver.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace {

using namespace xscale;

net::Fabric make_fabric(topo::Topology t, net::Routing r, bool cc) {
  net::FabricConfig cfg;
  cfg.routing = r;
  cfg.congestion_control = cc;
  cfg.nic_efficiency = 0.70;
  return net::Fabric(std::move(t), cfg);
}

net::Fabric small_dragonfly(net::Routing r, bool cc = true) {
  // 8 groups x 4 switches x 4 endpoints, 1 link per group pair.
  return make_fabric(topo::Topology::uniform_dragonfly(8, {4, 4}, 1, 25e9, 180e-9),
                     r, cc);
}

// The three topology families the differential suites sweep (ISSUE 9): the
// classic dragonfly, an oversubscribed fat-tree (contention at the leaf
// uplinks) and a time-sliced rotor whose inter-switch capacity rotates every
// slot. All sized to 128 endpoints so the same churn driver applies.
struct FabricFamily {
  const char* name;
  net::Fabric (*make)(net::Routing);
  // Rotor fabrics get a RotorSchedule attached so every run crosses live
  // slot boundaries (wholesale capacity churn mid-differential).
  bool rotor;
};

net::Fabric family_dragonfly(net::Routing r) { return small_dragonfly(r); }
net::Fabric family_os_fat_tree(net::Routing r) {
  // 16 leaves x 8 endpoints, 4:1 oversubscribed uplinks.
  return make_fabric(
      topo::Topology::oversubscribed_fat_tree(16, 8, 4.0, 25e9, 180e-9), r,
      true);
}
net::Fabric family_rotor(net::Routing r) {
  // 8 switches x 16 endpoints, all 7 matchings (full any-to-any coverage),
  // 250 us slots at 90% duty — hundreds of slot boundaries per churn run.
  return make_fabric(
      topo::Topology::rotor(8, 16, 7, 250e-6, 0.9, 25e9, 180e-9), r, true);
}

constexpr FabricFamily kFamilies[] = {
    {"dragonfly", family_dragonfly, false},
    {"os_fat_tree", family_os_fat_tree, false},
    {"rotor", family_rotor, true},
};

// Rebuild the full problem from the simulator's state and check every active
// flow's rate against the retained reference oracle, bit for bit. The CSR
// adapter (`max_min_rates`) is checked against the reference on the same
// input, so one call pins live rates == CSR core == original implementation.
int check_against_oracle(const net::FlowSim& fs, const net::Fabric& fabric) {
  std::vector<std::vector<int>> paths;
  std::vector<double> live_rates;
  fs.for_each_flow([&](std::uint64_t, const std::vector<int>& path, double,
                       double rate) {
    paths.push_back(path);
    live_rates.push_back(rate);
  });
  const auto oracle =
      net::max_min_rates_reference(fabric.effective_capacities(), paths);
  const auto csr = net::max_min_rates(fabric.effective_capacities(), paths);
  EXPECT_EQ(oracle.size(), live_rates.size());
  EXPECT_EQ(csr.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(live_rates[i], oracle[i]) << "flow index " << i;
    EXPECT_EQ(csr[i], oracle[i]) << "csr adapter, flow index " << i;
  }
  return static_cast<int>(oracle.size());
}

// Randomized churn over every topology family: a window of concurrent flows
// with staggered starts and completions; after every state change (start or
// completion) the incremental rates must equal the oracle's exactly. On the
// rotor family the run additionally crosses live slot boundaries, so the
// oracle (rebuilt from `effective_capacities()`) pins mid-slot rates too.
TEST(FlowSimIncremental, DifferentialOracleOnRandomChurn) {
  for (const FabricFamily& fam : kFamilies) {
    for (std::uint64_t seed : {11ull, 23ull, 47ull}) {
      SCOPED_TRACE(fam.name);
      sim::Engine eng;
      auto fabric = fam.make(net::Routing::Adaptive);
      net::FlowSim fs(eng, fabric);
      std::optional<net::RotorSchedule> rotor;
      if (fam.rotor) {
        rotor.emplace(eng, fabric, &fs);
        rotor->start();
      }
      sim::Rng rng(seed);
      const int eps = fabric.topology().num_endpoints();
      int launched = 0, completed = 0, checks = 0;
      const int total = 400;

      std::function<void()> launch = [&] {
        if (launched >= total) return;
        ++launched;
        const int src = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
        int dst = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
        if (dst == src) dst = (dst + 1) % eps;
        fs.start(src, dst, rng.uniform(1e6, 5e8), [&] {
          ++completed;
          checks += check_against_oracle(fs, fabric);
          // Replacement keeps a ~16-flow window alive until the budget drains.
          launch();
        });
        checks += check_against_oracle(fs, fabric);
      };
      for (int i = 0; i < 16; ++i) launch();
      eng.run();

      EXPECT_EQ(completed, total);
      EXPECT_EQ(fs.active_flows(), 0u);
      EXPECT_GT(checks, 2000);  // the differential actually exercised rates
      // The point of the machinery: restricted solves happened and dominated.
      EXPECT_GT(fs.stats().component_solves, fs.stats().fallback_solves);
      if (fam.rotor) {
        EXPECT_GT(rotor->transitions(), 100u);
      }
    }
  }
}

// SIMD-vs-scalar bitwise differential (ISSUE 10): the same churn workload —
// every topology family, threads in {1, 2, 8} — must produce a bitwise
// identical trajectory (every completion instant and every live rate after
// every completion) whichever min-share scan kernel is dispatched. On
// builds/hosts without a vector kernel both runs resolve to the scalar
// kernel and the differential degenerates to a determinism check.
TEST(FlowSimIncremental, SimdAndScalarKernelTrajectoriesIdentical) {
  std::printf("min_share_scan dispatch: %s\n", net::min_share_scan_name());
  const int prev_threads = sim::thread_count();
  for (const FabricFamily& fam : kFamilies) {
    for (const int threads : {1, 2, 8}) {
      SCOPED_TRACE(std::string(fam.name) + ", threads " +
                   std::to_string(threads));
      sim::set_thread_count(threads);
      auto run = [&](net::ScanKernel k) {
        net::set_scan_kernel(k);
        std::vector<double> trace;
        sim::Engine eng;
        auto fabric = fam.make(net::Routing::Adaptive);
        net::FlowSim fs(eng, fabric);
        std::optional<net::RotorSchedule> rotor;
        if (fam.rotor) {
          rotor.emplace(eng, fabric, &fs);
          rotor->start();
        }
        sim::Rng rng(0x51D5u);
        const int eps = fabric.topology().num_endpoints();
        int launched = 0;
        const int total = 200;
        std::function<void()> launch = [&] {
          if (launched >= total) return;
          ++launched;
          const int src =
              static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
          int dst =
              static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
          if (dst == src) dst = (dst + 1) % eps;
          fs.start(src, dst, rng.uniform(1e6, 5e8), [&] {
            trace.push_back(eng.now());
            fs.for_each_flow(
                [&](std::uint64_t, const std::vector<int>&, double,
                    double rate) { trace.push_back(rate); });
            launch();
          });
        };
        for (int i = 0; i < 16; ++i) launch();
        eng.run();
        net::set_scan_kernel(net::ScanKernel::Auto);
        return trace;
      };
      const auto dispatched = run(net::ScanKernel::Auto);
      const auto scalar = run(net::ScanKernel::ForceScalar);
      ASSERT_EQ(dispatched.size(), scalar.size());
      ASSERT_GT(dispatched.size(), 1000u);  // the trajectory has real content
      for (std::size_t i = 0; i < dispatched.size(); ++i)
        EXPECT_EQ(dispatched[i], scalar[i]) << "trace index " << i;
    }
  }
  sim::set_thread_count(prev_threads);
}

// Same-destination ties: many equal flows complete at the same instant, so
// several removals collapse into one resolve whose dirty set spans multiple
// merged components.
TEST(FlowSimIncremental, DifferentialOracleOnTiedIncast) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  net::FlowSim fs(eng, fabric);
  int done = 0;
  for (int s = 4; s < 12; ++s)
    fs.start(s, 2, 8.75e9, [&] {
      ++done;
      check_against_oracle(fs, fabric);
    });
  for (int s = 16; s < 20; ++s)  // independent group, own component
    fs.start(s, 20, 17.5e9, [&] {
      ++done;
      check_against_oracle(fs, fabric);
    });
  check_against_oracle(fs, fabric);
  eng.run();
  EXPECT_EQ(done, 12);
}

TEST(FlowSimIncremental, FullAndIncrementalCompletionTimesAgree) {
  auto run = [](bool incremental) {
    sim::Engine eng;
    auto fabric = small_dragonfly(net::Routing::Adaptive);
    net::FlowSim fs(eng, fabric, {.incremental = incremental});
    sim::Rng rng(7);
    std::vector<double> done_times;
    for (int i = 0; i < 96; ++i) {
      const int src = static_cast<int>(rng.index(128));
      int dst = static_cast<int>(rng.index(128));
      if (dst == src) dst = (dst + 1) % 128;
      fs.start(src, dst, rng.uniform(1e6, 1e9),
               [&done_times, &eng] { done_times.push_back(eng.now()); });
    }
    eng.run();
    return done_times;
  };
  const auto inc = run(true);
  const auto full = run(false);
  ASSERT_EQ(inc.size(), full.size());
  for (std::size_t i = 0; i < inc.size(); ++i) EXPECT_EQ(inc[i], full[i]);
}

// ------------------------------------------------------------ rate floor ---

TEST(FlowSim, FlowOverDownedLinkStallsVisiblyInsteadOfTrickling) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  fabric.fail_link(fabric.topology().ejection_link(3));
  net::FlowSim fs(eng, fabric);
  bool done = false;
  fs.start(0, 3, 1e9, [&] { done = true; });
  eng.run();  // returns immediately: a stalled flow schedules nothing
  EXPECT_FALSE(done);  // the old 1 B/s floor "completed" this after ~31 sim-years
  EXPECT_EQ(fs.active_flows(), 1u);
  EXPECT_EQ(fs.stalled_flows(), 1u);
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(FlowSim, StalledFlowRecoversWhenLinkRestored) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  const int ej3 = fabric.topology().ejection_link(3);
  fabric.fail_link(ej3);
  net::FlowSim fs(eng, fabric);
  double t_victim = -1;
  fs.start(0, 3, 17.5e9, [&] { t_victim = eng.now(); });
  eng.run();
  ASSERT_EQ(fs.stalled_flows(), 1u);

  fabric.restore_link(ej3);
  // Capacity changes are picked up at the next resolve that dirties the
  // component; a new flow over the same destination does exactly that.
  double t_probe = -1;
  fs.start(1, 3, 17.5e9, [&] { t_probe = eng.now(); });
  EXPECT_EQ(fs.stalled_flows(), 0u);
  eng.run();
  EXPECT_NEAR(t_victim, 2.0, 1e-6);  // both shared the restored ejection link
  EXPECT_NEAR(t_probe, 2.0, 1e-6);
  EXPECT_EQ(fs.active_flows(), 0u);
}

TEST(FlowSim, DropPolicyFailsFastWithHook) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  fabric.fail_link(fabric.topology().ejection_link(3));
  net::FlowSim fs(eng, fabric, {.stall_policy = net::StallPolicy::Drop});
  std::vector<std::uint64_t> stalled_ids;
  fs.on_stall([&](std::uint64_t id) { stalled_ids.push_back(id); });
  bool done = false, other_done = false;
  const auto id = fs.start(0, 3, 1e9, [&] { done = true; });
  fs.start(4, 5, 17.5e9, [&] { other_done = true; });  // healthy flow
  eng.run();
  EXPECT_FALSE(done);
  EXPECT_TRUE(other_done);
  EXPECT_EQ(fs.active_flows(), 0u);
  EXPECT_EQ(fs.stalled_flows(), 0u);
  EXPECT_EQ(fs.dropped_flows(), 1u);
  ASSERT_EQ(stalled_ids.size(), 1u);
  EXPECT_EQ(stalled_ids[0], id);
}

// ------------------------------------------------------------- heap churn ---

// Acceptance criterion: across a million-operation FlowSim churn, the engine
// heap stays bounded — cancelled (stale) entries never exceed live ones.
TEST(FlowSim, EngineHeapBoundedAcrossMillionOpChurn) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Adaptive);
  net::FlowSim fs(eng, fabric);
  sim::Rng rng(99);
  const int eps = fabric.topology().num_endpoints();
  std::uint64_t completions = 0;

  std::function<void()> launch = [&] {
    const int src = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
    int dst = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
    if (dst == src) dst = (dst + 1) % eps;
    fs.start(src, dst, rng.uniform(1e5, 1e7), [&] {
      ++completions;
      if (completions % 1024 == 0) {
        ASSERT_LE(eng.cancelled_events(), eng.pending_events());
        ASSERT_LE(eng.heap_size(),
                  2 * eng.pending_events());  // heap = live + stale
      }
      // Keep churning until scheduled + executed events pass the million-op
      // mark (each completion costs ~2 schedules, 1 cancel, 1 execution).
      if (eng.events_scheduled() < 700000) launch();
    });
  };
  for (int i = 0; i < 12; ++i) launch();
  eng.run();

  const std::uint64_t ops = eng.events_scheduled() + eng.events_executed();
  EXPECT_GT(ops, 1000000u);
  EXPECT_LE(eng.cancelled_events(), eng.pending_events());
  EXPECT_GT(eng.compactions(), 0u);
  EXPECT_EQ(fs.active_flows(), 0u);
  // The incremental machinery was engaged, not bypassed, during the churn.
  EXPECT_GT(fs.stats().component_solves, 0u);
}

// ------------------------------------------------------------ warm start ---

// Restores the configured thread count after a test that sweeps it.
struct ThreadCountGuard {
  ~ThreadCountGuard() { sim::set_thread_count(1); }
};

enum class Shape { Incast, AllToAll, Permutation };

// Deterministic churn of `total` flows in the given traffic shape with a
// ~24-flow replacement window; returns the completion-time sequence. The
// same seed drives every configuration, so any divergence between warm and
// cold (or across thread counts) shows up as a completion-time mismatch.
// On the rotor family every run carries a live RotorSchedule: warm and cold
// cross identical slot boundaries, so the bitwise contract covers wholesale
// slot-capacity churn as well.
std::vector<double> run_shape(const FabricFamily& fam, Shape shape,
                              bool warm_start, int threads, int* oracle_checks,
                              bool incremental_writeback = true,
                              net::FlowSim::Stats* out_stats = nullptr) {
  sim::set_thread_count(threads);
  sim::Engine eng;
  auto fabric = fam.make(net::Routing::Minimal);
  // A low fallback fraction pushes even moderate merged components through
  // the warm (or, with warm_start off, the cold fallback) whole-set path.
  net::FlowSim fs(eng, fabric,
                  {.fallback_fraction = 0.25, .warm_start = warm_start,
                   .incremental_writeback = incremental_writeback});
  std::optional<net::RotorSchedule> rotor;
  if (fam.rotor) {
    rotor.emplace(eng, fabric, &fs);
    rotor->start();
  }
  sim::Rng rng(4242);
  const int eps = fabric.topology().num_endpoints();
  const int total = 160;
  int launched = 0, completed = 0;
  std::vector<double> times;
  std::function<void()> launch = [&] {
    if (launched >= total) return;
    const int i = launched++;
    int src = 0, dst = 0;
    switch (shape) {
      case Shape::Incast:
        src = 1 + static_cast<int>(rng.index(static_cast<std::uint64_t>(eps - 1)));
        dst = 0;
        break;
      case Shape::AllToAll:
        src = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
        dst = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
        if (dst == src) dst = (dst + 1) % eps;
        break;
      case Shape::Permutation:
        src = i % eps;
        dst = (src + 37) % eps;
        break;
    }
    fs.start(src, dst, rng.uniform(1e6, 2e8), [&] {
      ++completed;
      times.push_back(eng.now());
      if (oracle_checks && completed % 16 == 0)
        *oracle_checks += check_against_oracle(fs, fabric);
      launch();
    });
  };
  for (int i = 0; i < 24; ++i) launch();
  eng.run();
  EXPECT_EQ(completed, total) << fam.name;
  if (out_stats) *out_stats = fs.stats();
  if (warm_start && shape == Shape::Incast) {
    // The cliff pattern must actually ride the new path, not fall back.
    EXPECT_GT(fs.stats().warm_solves, 0u) << fam.name;
    EXPECT_EQ(fs.stats().fallback_solves, 0u) << fam.name;
    // On the static families it mostly rides the single-bottleneck closed
    // form (one ejection link is the unique minimum and every flow crosses
    // it). The rotor run usually holds stalled flows (dark matchings), which
    // the closed form correctly declines, so the claim is family-gated.
    if (!fam.rotor) {
      EXPECT_GT(fs.stats().warm_single_hits, 0u) << fam.name;
    }
  }
  return times;
}

// The tentpole contract: the warm-start whole-set solve is bit-identical to
// the cold full solve (and both to the reference oracle) under incast,
// all-to-all and permutation churn, at every thread count — on every
// topology family (dragonfly, oversubscribed fat-tree, live-slotted rotor).
TEST(FlowSimWarmStart, MatchesColdAndOracleAcrossShapesAndThreads) {
  ThreadCountGuard guard;
  for (const FabricFamily& fam : kFamilies) {
    SCOPED_TRACE(fam.name);
    for (Shape shape : {Shape::Incast, Shape::AllToAll, Shape::Permutation}) {
      sim::set_thread_count(1);
      const auto baseline =
          run_shape(fam, shape, /*warm_start=*/false, 1, nullptr);
      for (int threads : {1, 2, 8}) {
        int checks = 0;
        const auto times =
            run_shape(fam, shape, /*warm_start=*/true, threads, &checks);
        ASSERT_EQ(times.size(), baseline.size());
        for (std::size_t i = 0; i < times.size(); ++i)
          EXPECT_EQ(times[i], baseline[i])
              << "shape=" << static_cast<int>(shape) << " threads=" << threads
              << " completion " << i;
        EXPECT_GT(checks, 0);
      }
    }
  }
}

// Property: repeated no-op churn — add a flow, let it complete, add an
// identically-routed one — settles into pure memo replay: the warm solve
// recognises the recurring path streams, the frontier stops growing, and
// rates stay oracle-exact.
TEST(FlowSimWarmStart, NoOpChurnReplaysFromMemoWithEmptyFrontier) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  net::FlowSim fs(eng, fabric);
  // Two incast groups with different fan-in (13 flows into endpoint 0,
  // 11 into endpoint 1) make a genuinely multi-level solution, so the
  // single-bottleneck closed form declines and the memo is what serves the
  // recurring streams.
  for (int s = 4; s < 17; ++s) fs.start(s, 0, 1e12, [] {});
  for (int s = 17; s < 28; ++s) fs.start(s, 1, 1e12, [] {});
  const int cycles = 6;
  int done = 0;
  std::uint64_t frontier_at_first_cycle = 0;
  std::uint64_t memo_hits_at_last_cycle = 0;
  std::uint64_t frontier_at_last_cycle = 0;
  std::function<void()> tick = [&] {
    fs.start(100, 0, 1e3, [&] {
      ++done;
      if (done == 1) frontier_at_first_cycle = fs.stats().frontier_flows;
      if (done < cycles) {
        tick();
      } else {
        memo_hits_at_last_cycle = fs.stats().warm_memo_hits;
        frontier_at_last_cycle = fs.stats().frontier_flows;
        check_against_oracle(fs, fabric);
      }
    });
  };
  tick();
  eng.run();
  // Every resolve after the first full add/remove cycle replays the memo:
  // removals return to the 24-flow base state, re-adds reproduce the 25-flow
  // stream (the new flow appends at the end with an identical path).
  EXPECT_EQ(memo_hits_at_last_cycle,
            static_cast<std::uint64_t>(2 * cycles - 1));
  EXPECT_EQ(frontier_at_last_cycle, frontier_at_first_cycle);
  EXPECT_EQ(fs.stats().fallback_solves, 0u);
  EXPECT_GT(fs.stats().warm_solves, 0u);
}

// Regression (ISSUE 7 satellite 1): redundant fail/restore calls — failing an
// already-failed link, restoring a never-failed one — are no-ops that must not
// bump the capacity epoch, so memo hits survive them. Before the idempotency
// fix each redundant call invalidated both memo generations and the no-op
// churn above degraded to full warm solves.
TEST(FlowSimWarmStart, MemoHitsSurviveRedundantFailRestore) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  net::FlowSim fs(eng, fabric);
  const int dead = fabric.topology().ejection_link(60);
  const int never_failed = fabric.topology().ejection_link(61);
  ASSERT_TRUE(fabric.fail_link(dead));
  const std::uint64_t epoch_after_fail = fabric.capacity_epoch();
  // Same recurring-stream shape as NoOpChurnReplaysFromMemoWithEmptyFrontier,
  // but every completion hammers the fabric with redundant fail/restore.
  for (int s = 4; s < 17; ++s) fs.start(s, 0, 1e12, [] {});
  for (int s = 17; s < 28; ++s) fs.start(s, 1, 1e12, [] {});
  const int cycles = 6;
  int done = 0;
  std::uint64_t memo_hits_at_last_cycle = 0;
  std::function<void()> tick = [&] {
    fs.start(100, 0, 1e3, [&] {
      ++done;
      EXPECT_FALSE(fabric.fail_link(dead));             // already failed
      EXPECT_FALSE(fabric.restore_link(never_failed));  // never failed
      if (done < cycles) {
        tick();
      } else {
        memo_hits_at_last_cycle = fs.stats().warm_memo_hits;
      }
    });
  };
  tick();
  eng.run();
  EXPECT_EQ(fabric.capacity_epoch(), epoch_after_fail);
  EXPECT_EQ(fs.stats().warm_memo_stale, 0u);
  EXPECT_EQ(memo_hits_at_last_cycle,
            static_cast<std::uint64_t>(2 * cycles - 1));
}

// Regression (ISSUE 7 satellite 4): a resolve that throws std::invalid_argument
// (non-finite / negative capacity) used to abandon `live_links_` mid-compaction,
// leaving the simulator permanently broken. The throw must be deferred until
// the invariant is restored: a failed resolve leaves the simulator re-solvable.
TEST(FlowSimWarmStart, FailedResolveLeavesSimulatorReSolvable) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  net::FlowSim fs(eng, fabric);
  // Incast deep enough that resolves run the warm path with a populated
  // live-link set (the structure the bug corrupted).
  for (int s = 4; s < 14; ++s) fs.start(s, 0, 1e12, [] {});
  check_against_oracle(fs, fabric);
  const int eject0 = fabric.topology().ejection_link(0);
  ASSERT_TRUE(fabric.set_link_capacity(eject0, -2.0));
  EXPECT_THROW(fs.start(14, 0, 1e12, [] {}), std::invalid_argument);
  // Still broken the same way: the second attempt must throw too, not crash
  // or silently mis-solve on a corrupted live-link set.
  EXPECT_THROW(fs.start(15, 0, 1e12, [] {}), std::invalid_argument);
  ASSERT_TRUE(fabric.clear_link_capacity(eject0));
  fs.start(16, 0, 1e12, [] {});  // resolves cleanly again
  check_against_oracle(fs, fabric);
}

// The warm solve's batched update path — one firing link freezing more than
// parallel_update_min flows in a set touching more than
// parallel_scan_threshold links — pinned against the oracle at every thread
// count. Synthetic paths give the scale without a 4096-endpoint topology:
// every incast flow crosses the shared link 0 plus two private links.
TEST(FlowSimWarmStart, BatchedUpdatePathMatchesOracleAcrossThreads) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 8}) {
    sim::set_thread_count(threads);
    sim::Engine eng;
    auto t = topo::Topology::uniform_dragonfly(16, {16, 4}, 1, 25e9, 180e-9);
    net::Fabric fabric(std::move(t), net::FabricConfig{});
    const std::size_t incast = 2100;
    const std::size_t extras = 50;
    ASSERT_GE(fabric.topology().links().size(), 1 + 2 * incast);
    ASSERT_GT(incast, net::solver_tuning().parallel_update_min);
    net::FlowSim fs(eng, fabric);
    int done = 0;
    for (std::size_t f = 0; f < incast; ++f)
      fs.start_on_path({0, static_cast<int>(1 + 2 * f),
                        static_cast<int>(2 + 2 * f)},
                       1e9, [&] { ++done; });
    // Extra flows that do NOT cross link 0 (each rides one incast flow's
    // private link): with them present, link 0 no longer covers the whole
    // active set, so the single-bottleneck closed form declines and the
    // resolve runs the general warm loop — whose first iteration freezes
    // the 2100-flow batch through the parallel update path under test.
    for (std::size_t g = 0; g < extras; ++g)
      fs.start_on_path({static_cast<int>(1 + 2 * g)}, 1e9, [&] { ++done; });
    check_against_oracle(fs, fabric);
    EXPECT_GT(fs.stats().warm_solves, 2000u);
    EXPECT_GT(fs.stats().warm_single_hits, 0u);  // pure-incast ramp-up
    EXPECT_GT(fs.stats().warm_solves,
              fs.stats().warm_single_hits + extras);  // general loop ran too
    EXPECT_EQ(fs.stats().fallback_solves, 0u);
    eng.run();
    EXPECT_EQ(done, static_cast<int>(incast + extras));
  }
}

// Property: a removal-only delta whose removed flow froze *after* the first
// water-filling level replays the untouched frozen prefix instead of
// re-deriving it — here the level-1 incast victims are re-frozen wholesale
// and only the surviving level-2 flow is iterated.
TEST(FlowSimWarmStart, RemovalOnlyDeltaReplaysFrozenPrefix) {
  sim::Engine eng;
  auto fabric = small_dragonfly(net::Routing::Minimal);
  net::FlowSim fs(eng, fabric);
  // B goes first (so its removal later yields a path stream the two-slot
  // memo no longer holds, forcing the frozen-prefix path rather than a memo
  // hit): a group-2 source to an uncongested group-0 endpoint. It shares
  // its injection and global links with the incast flows below but is alone
  // on its ejection link, so it freezes at level 2 — and completes long
  // before the level-1 incast victims.
  bool b_done = false;
  net::FlowSim::Stats after_add{};
  fs.start(33, 12, 1e9, [&] {
    b_done = true;
    const auto& st = fs.stats();
    EXPECT_EQ(st.warm_prefix_hits, after_add.warm_prefix_hits + 1);
    EXPECT_EQ(st.warm_memo_hits, after_add.warm_memo_hits);
    // All 16 level-1 survivors were replayed: only C (level 2) was
    // re-derived, so this resolve contributed exactly one frontier flow.
    EXPECT_EQ(st.frontier_flows, after_add.frontier_flows + 1);
    check_against_oracle(fs, fabric);
  });
  // C persists past B's completion and also freezes at level 2 (another
  // group-2 source alone on its group-0 ejection link). With C around, the
  // post-removal set is not a pure single-bottleneck incast, so the closed
  // form declines and the frozen-prefix replay is what must serve it.
  fs.start(40, 13, 1e12, [] {});
  // 16 incast flows pinned at level 1 by endpoint 0's ejection link; their
  // sources include group 2, connecting them to B's and C's links.
  for (int k = 0; k < 16; ++k) fs.start(20 + k, 0, 1e12, [] {});
  after_add = fs.stats();  // B's completion callback fires inside run()
  eng.run();
  EXPECT_TRUE(b_done);
  EXPECT_EQ(fs.stats().fallback_solves, 0u);
}

// ---------------------------------------------------- rate write-back ---

// The ISSUE 8 differential: the change-list write-back (applied set) union
// the proven no-ops (skipped set) must equal the old whole-set write, bit
// for bit. Reference mode (`incremental_writeback = false`) routes every
// solver result through set_rate; incremental mode applies only the change
// list and coalesces same-instant uniform rates lazily. Identical completion
// sequences — at every thread count — prove the two writes are the same
// function of the solve, and the in-run oracle checks (which read rates
// through `for_each_flow`, i.e. through any pending uniform rate) pin the
// observable rates as well.
TEST(FlowSimWriteback, ChangeListEqualsWholeSetWriteBitwise) {
  ThreadCountGuard guard;
  for (const FabricFamily& fam : kFamilies) {
    SCOPED_TRACE(fam.name);
    for (Shape shape : {Shape::Incast, Shape::AllToAll, Shape::Permutation}) {
      sim::set_thread_count(1);
      net::FlowSim::Stats ref{};
      const auto baseline =
          run_shape(fam, shape, /*warm_start=*/true, 1, nullptr,
                    /*incremental_writeback=*/false, &ref);
      // Reference mode hands every solved flow through the write-back, so the
      // counter pair partitions the whole-set write exactly.
      EXPECT_EQ(ref.writeback_applied + ref.writeback_skipped, ref.flows_solved);
      EXPECT_GT(ref.writeback_applied, 0u);
      for (int threads : {1, 2, 8}) {
        int checks = 0;
        net::FlowSim::Stats inc{};
        const auto times = run_shape(fam, shape, /*warm_start=*/true, threads,
                                     &checks, /*incremental_writeback=*/true,
                                     &inc);
        ASSERT_EQ(times.size(), baseline.size());
        for (std::size_t i = 0; i < times.size(); ++i)
          EXPECT_EQ(times[i], baseline[i])
              << "shape=" << static_cast<int>(shape) << " threads=" << threads
              << " completion " << i;
        EXPECT_GT(checks, 0);
        EXPECT_GT(inc.writeback_applied, 0u);
        // Coalescing can only shrink the applied set (same-instant uniform
        // segments are zero-width; intermediate values never materialise).
        EXPECT_LE(inc.writeback_applied, ref.writeback_applied);
        if (shape == Shape::Incast && !fam.rotor) {
          // The tentpole claim at test scale: incast write-back is dominated
          // by skips, not applications. (Rotor slot boundaries legitimately
          // re-rate most of the set each transition, so the skip-dominance
          // claim is for the static families; the bitwise equality above
          // holds for all three.)
          EXPECT_LT(inc.writeback_applied, inc.writeback_skipped);
          EXPECT_GT(inc.minshare_incr, 0u);  // summary verdicts actually ran
        }
      }
    }
  }
}

// Satellite: stall and Drop transitions ride the applied set exactly once.
// A flow whose rate goes to zero is `applied` on the transition (set_rate
// does real work: accrual + stall bookkeeping) and `skipped` on every later
// resolve it sits through — never re-applied.
TEST(FlowSimWriteback, StallAndDropTransitionsAppliedExactlyOnce) {
  for (net::StallPolicy policy :
       {net::StallPolicy::Stall, net::StallPolicy::Drop}) {
    sim::Engine eng;
    auto fabric = small_dragonfly(net::Routing::Minimal);
    fabric.fail_link(fabric.topology().ejection_link(3));
    // fallback_fraction 0 pushes every resolve through the warm whole-set
    // path, so the victim is re-presented to the write-back each time.
    net::FlowSim fs(eng, fabric,
                    {.fallback_fraction = 0.0, .stall_policy = policy});
    bool victim_done = false;
    fs.start(0, 3, 1e9, [&] { victim_done = true; });
    const auto s1 = fs.stats();
    // Exactly one application: the 0-rate transition (fresh flows hold rate
    // 0 but are not stalled, so the write is not a no-op).
    EXPECT_EQ(s1.writeback_applied, 1u);
    if (policy == net::StallPolicy::Drop) {
      EXPECT_EQ(fs.dropped_flows(), 1u);
      EXPECT_EQ(fs.active_flows(), 0u);
      continue;
    }
    ASSERT_EQ(fs.stalled_flows(), 1u);
    // A healthy flow forces another whole-set resolve with the stalled
    // victim still active: the victim must land in the skipped set.
    bool other_done = false;
    fs.start(4, 5, 17.5e9, [&] { other_done = true; });
    const auto s2 = fs.stats();
    EXPECT_EQ(s2.writeback_applied, s1.writeback_applied + 1);  // healthy only
    EXPECT_GE(s2.writeback_skipped, s1.writeback_skipped + 1);  // victim skips
    eng.run();
    EXPECT_TRUE(other_done);
    EXPECT_FALSE(victim_done);
    EXPECT_EQ(fs.stalled_flows(), 1u);
  }
}

// Satellite: the full stall/restore/drop churn stays bitwise identical
// across write-back modes — mid-run capacity failures and recoveries
// (which invalidate the min-share summary and force eager paths) produce
// the same completion sequence whether the write-back is change-list or
// whole-set.
TEST(FlowSimWriteback, StallRestoreDropChurnBitwiseAcrossModes) {
  for (net::StallPolicy policy :
       {net::StallPolicy::Stall, net::StallPolicy::Drop}) {
    auto run = [&](bool incw) {
      sim::Engine eng;
      auto fabric = small_dragonfly(net::Routing::Minimal);
      const int ej3 = fabric.topology().ejection_link(3);
      net::FlowSim fs(eng, fabric,
                      {.fallback_fraction = 0.25,
                       .incremental_writeback = incw,
                       .stall_policy = policy});
      std::vector<double> times;
      int completed = 0, launched = 0;
      const int total = 96;
      sim::Rng rng(777);
      std::function<void()> launch = [&] {
        if (launched >= total) return;
        const int i = launched++;
        // Mostly incast into endpoint 0 (the warm fast path), with every
        // sixth flow aimed at the failure-prone endpoint 3.
        const int src =
            1 + static_cast<int>(rng.index(static_cast<std::uint64_t>(30)));
        const int dst = (i % 6 == 5) ? 3 : 0;
        fs.start(src == dst ? src + 1 : src, dst, rng.uniform(1e6, 2e8), [&] {
          ++completed;
          times.push_back(eng.now());
          // Fail mid-churn, restore later: stalls (or drops) happen while
          // the incast fast path is hot.
          if (completed == 20) fabric.fail_link(ej3);
          if (completed == 48) fabric.restore_link(ej3);
          launch();
        });
      };
      for (int i = 0; i < 16; ++i) launch();
      eng.run();
      return std::make_pair(times, fs.stats());
    };
    const auto [ref_times, ref_stats] = run(false);
    const auto [inc_times, inc_stats] = run(true);
    ASSERT_EQ(inc_times.size(), ref_times.size());
    for (std::size_t i = 0; i < inc_times.size(); ++i)
      EXPECT_EQ(inc_times[i], ref_times[i])
          << "policy=" << static_cast<int>(policy) << " completion " << i;
    EXPECT_EQ(ref_stats.writeback_applied + ref_stats.writeback_skipped,
              ref_stats.flows_solved);
    EXPECT_LE(inc_stats.writeback_applied, ref_stats.writeback_applied);
  }
}

}  // namespace
