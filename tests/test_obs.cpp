// Tests for the obs:: observability layer: tracer ring-buffer semantics,
// Chrome trace_event JSON well-formedness, metrics registry behaviour, and —
// the contract everything else rests on — that enabling tracing changes no
// simulated result (times, stats, solver outputs) across FlowSim churn and a
// slurm workload.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/fabric.hpp"
#include "net/flowsim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/slurm.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace {

using namespace xscale;

// Restores the global tracer to disabled whatever a test does.
struct TracerGuard {
  ~TracerGuard() {
    obs::tracer().disable();
    obs::tracer().clear();
  }
};

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator — enough to assert the exported
// trace and metrics dumps are well-formed without an external parser.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool valid() {
    i_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return i_ == s_.size();
  }

 private:
  bool value() {
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek() == '}') { ++i_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++i_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek() == ']') { ++i_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\') ++i_;  // skip escaped char
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                              s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    return i_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++i_)
      if (i_ >= s_.size() || s_[i_] != *p) return false;
    return true;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\t' || s_[i_] == '\r'))
      ++i_;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

TEST(JsonValidator, SelfCheck) {
  EXPECT_TRUE(JsonValidator(R"({"a":[1,2.5e-3,"x",null,true],"b":{}})").valid());
  EXPECT_FALSE(JsonValidator(R"({"a":1,)").valid());
  EXPECT_FALSE(JsonValidator(R"([NaN])").valid());
}

// ------------------------------------------------------------------ Tracer --

TEST(Tracer, DisabledRecordsNothing) {
  TracerGuard guard;
  obs::Tracer& t = obs::tracer();
  t.disable();
  t.clear();
  t.span("cat", "name", 1.0, 2.0, {{"k", 3.0}});
  t.instant("cat", "name", 1.0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.recorded(), 0u);
}

TEST(Tracer, RecordsSpanAndInstantFields) {
  TracerGuard guard;
  obs::Tracer& t = obs::tracer();
  t.enable(16);
  t.clear();
  t.span("net", "flow", 1.5, 0.25, {{"bytes", 100.0}, {"hops", 4.0}});
  t.instant("sim", "tick", 2.0);
  ASSERT_EQ(t.size(), 2u);
  std::vector<obs::Tracer::Event> got;
  t.for_each([&](const obs::Tracer::Event& e) { got.push_back(e); });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_STREQ(got[0].cat, "net");
  EXPECT_STREQ(got[0].name, "flow");
  EXPECT_DOUBLE_EQ(got[0].ts, 1.5);
  EXPECT_DOUBLE_EQ(got[0].dur, 0.25);
  ASSERT_EQ(got[0].nargs, 2u);
  EXPECT_STREQ(got[0].args[0].key, "bytes");
  EXPECT_DOUBLE_EQ(got[0].args[0].value, 100.0);
  EXPECT_LT(got[1].dur, 0.0);  // instant marker
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  TracerGuard guard;
  obs::Tracer& t = obs::tracer();
  t.enable(4);
  t.clear();
  for (int i = 0; i < 10; ++i)
    t.instant("cat", "e", static_cast<double>(i));
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  // Oldest-first visitation yields the last four timestamps in order.
  std::vector<double> ts;
  t.for_each([&](const obs::Tracer::Event& e) { ts.push_back(e.ts); });
  EXPECT_EQ(ts, (std::vector<double>{6.0, 7.0, 8.0, 9.0}));
}

TEST(Tracer, WritesValidChromeTraceJson) {
  TracerGuard guard;
  obs::Tracer& t = obs::tracer();
  t.enable(64);
  t.clear();
  t.span("net", "flow", 0.0, 1.5, {{"bytes", 1e7}});
  t.instant("sched", "job_submit", 0.5, {{"job", 1.0}});
  t.instant("net", "weird", 1.0, {{"v", std::nan("")}});  // NaN arg -> null
  std::ostringstream os;
  t.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Both categories got a thread-name metadata record.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);
}

// ----------------------------------------------------------------- Metrics --

TEST(Metrics, CounterGaugeStatsRoundTrip) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& c = reg.counter("test.counter");
  obs::Gauge& g = reg.gauge("test.gauge");
  obs::ShardedStats& s = reg.stats("test.stats");
  c.reset();
  g.reset();
  s.reset();
  c.inc();
  c.inc(4);
  g.set(2.5);
  s.add(1.0);
  s.add(3.0);
  EXPECT_EQ(reg.counter("test.counter").value(), 5u);
  EXPECT_DOUBLE_EQ(reg.gauge("test.gauge").value(), 2.5);
  EXPECT_DOUBLE_EQ(reg.stats("test.stats").mean(), 2.0);
  // Same name, different kind: loud failure instead of silent aliasing.
  EXPECT_THROW(reg.gauge("test.counter"), std::logic_error);
  EXPECT_THROW(reg.counter("test.stats"), std::logic_error);
}

TEST(Metrics, SnapshotIsFlatAndNameSorted) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("test.zz");
  reg.gauge("test.aa");
  const auto snap = reg.snapshot();
  EXPECT_GE(snap.size(), 2u);
  for (std::size_t i = 1; i < snap.size(); ++i)
    EXPECT_LE(snap[i - 1].name, snap[i].name);
}

TEST(Metrics, DumpJsonIsValidAndDumpTextMentionsEveryInstrument) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.counter("test.json_counter").inc(7);
  reg.stats("test.json_stats").add(1.25);
  EXPECT_TRUE(JsonValidator(reg.dump_json()).valid()) << reg.dump_json();
  const std::string text = reg.dump_text();
  for (const auto& e : reg.snapshot())
    EXPECT_NE(text.find(e.name), std::string::npos) << e.name;
}

TEST(Metrics, ResetZeroesValuesButKeepsReferences) {
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& c = reg.counter("test.reset_counter");
  c.inc(3);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();  // the cached reference is still live
  EXPECT_EQ(reg.counter("test.reset_counter").value(), 1u);
}

// ------------------------------------------- tracing is purely observational

// Everything a run produces that could conceivably drift: per-flow completion
// times, solver effort counters, scheduler times and utilization.
struct RunDigest {
  std::vector<double> completion_times;
  std::vector<double> flow_rates_at_checkpoints;
  std::uint64_t solver_iterations = 0;
  std::uint64_t flows_solved = 0;
  std::uint64_t resolves = 0;
  std::size_t dropped = 0;
  std::vector<double> job_starts;
  std::vector<double> job_ends;
  double utilization = 0;
  double final_time = 0;

  bool operator==(const RunDigest&) const = default;
};

RunDigest run_scenario() {
  RunDigest d;

  // FlowSim churn: staggered random flows over a small dragonfly, including
  // a mid-run link failure to exercise the stall/drop paths.
  {
    auto t = topo::Topology::uniform_dragonfly(8, {4, 4}, 1, 25e9, 180e-9);
    net::FabricConfig fcfg;
    fcfg.routing = net::Routing::Adaptive;
    net::Fabric fabric(std::move(t), fcfg);
    sim::Engine eng;
    net::FlowSim fs(eng, fabric);
    sim::Rng rng(1234);
    const int eps = fabric.topology().num_endpoints();
    int launched = 0;
    const int total = 200;
    std::function<void()> launch = [&] {
      if (launched >= total) return;
      ++launched;
      const int src = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
      int dst = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
      if (dst == src) dst = (dst + 1) % eps;
      fs.start(src, dst, rng.uniform(1e6, 5e8), [&] {
        d.completion_times.push_back(eng.now());
        fs.for_each_flow([&](std::uint64_t, const std::vector<int>&, double,
                             double rate) {
          d.flow_rates_at_checkpoints.push_back(rate);
        });
        launch();
      });
    };
    for (int i = 0; i < 12; ++i) launch();
    eng.run();
    d.solver_iterations = fs.stats().solver_iterations;
    d.flows_solved = fs.stats().flows_solved;
    d.resolves = fs.stats().resolves;
    d.final_time = eng.now();
  }

  // Slurm workload with backfill and truncation mid-job.
  {
    sched::Scheduler s(256, 128);
    sim::Engine eng;
    std::vector<sched::JobRequest> jobs;
    sim::Rng rng(99);
    for (int i = 0; i < 24; ++i)
      jobs.push_back({8 + static_cast<int>(rng.index(200)),
                      rng.uniform(10.0, 400.0), sched::Placement::Auto});
    auto rec = s.run_workload(eng, jobs, /*run_until=*/900.0);
    for (const auto& r : rec) {
      d.job_starts.push_back(r.start_time);
      d.job_ends.push_back(r.end_time);
    }
    d.utilization = s.last_utilization();
  }
  return d;
}

TEST(TracingDifferential, EnabledAndDisabledRunsAreBitIdentical) {
  TracerGuard guard;
  obs::tracer().disable();
  const RunDigest off = run_scenario();

  obs::tracer().enable(std::size_t{1} << 16);
  obs::tracer().clear();
  const RunDigest on = run_scenario();
  EXPECT_GT(obs::tracer().recorded(), 0u);  // tracing actually happened
  obs::tracer().disable();

  // Bit-identical: EXPECT_EQ on doubles via the defaulted comparison —
  // tracing must be purely observational.
  EXPECT_TRUE(off == on);
  EXPECT_EQ(off.completion_times, on.completion_times);
  EXPECT_EQ(off.flow_rates_at_checkpoints, on.flow_rates_at_checkpoints);
  EXPECT_EQ(off.solver_iterations, on.solver_iterations);
  EXPECT_EQ(off.job_starts, on.job_starts);
  EXPECT_EQ(off.job_ends, on.job_ends);
  EXPECT_EQ(off.utilization, on.utilization);

  // And a third run with tracing off again still matches.
  const RunDigest off2 = run_scenario();
  EXPECT_TRUE(off == off2);
}

}  // namespace
