// Tests for the proxy-application framework and the Table 6 / Table 7
// speedup harness. These use the analytic network fallback (null fabric) so
// the suite stays fast; the bench binaries run the fabric-backed versions.
#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "apps/tables.hpp"
#include "machines/machine.hpp"

namespace {

using namespace xscale;

TEST(AppFramework, RunProducesPositiveFom) {
  const auto m = machines::frontier();
  for (const auto& spec : apps::all_apps()) {
    const auto r = apps::run_app(spec, m, nullptr, 128);
    EXPECT_GT(r.fom, 0.0) << spec.name;
    EXPECT_GT(r.step_time, 0.0) << spec.name;
    EXPECT_GE(r.parallel_efficiency, 0.0) << spec.name;
    EXPECT_LE(r.parallel_efficiency, 1.0) << spec.name;
    EXPECT_EQ(r.gpus, 128 * 8) << spec.name;
  }
}

TEST(AppFramework, WeakScalingFomGrowsWithNodes) {
  const auto m = machines::frontier();
  const auto spec = apps::cholla();
  const auto small = apps::run_app(spec, m, nullptr, 64);
  const auto large = apps::run_app(spec, m, nullptr, 1024);
  EXPECT_GT(large.fom, small.fom * 10.0);  // near-linear weak scaling
}

TEST(AppFramework, ParallelEfficiencyDropsWithScale) {
  const auto m = machines::frontier();
  const auto spec = apps::gests(1);  // transpose-dominated
  const auto small = apps::run_app(spec, m, nullptr, 16);
  const auto large = apps::run_app(spec, m, nullptr, 4096);
  EXPECT_GT(small.parallel_efficiency, large.parallel_efficiency);
}

TEST(AppFramework, SingleNodeHasNoCommCost) {
  const auto m = machines::frontier();
  const auto r = apps::run_app(apps::athenapk(), m, nullptr, 1);
  EXPECT_DOUBLE_EQ(r.comm_time, 0.0);
  EXPECT_DOUBLE_EQ(r.parallel_efficiency, 1.0);
}

TEST(AppFramework, GestsFitsOnlyFrontierMemory) {
  // §4.4.1: "No other computational resource in the world besides Frontier
  // has the memory capacity to complete these simulations."
  const auto spec = apps::gests(1);
  const auto fr = apps::run_app(spec, machines::frontier(), nullptr, 1024);
  const auto su = apps::run_app(spec, machines::summit(), nullptr, 1024);
  EXPECT_TRUE(fr.fits_in_memory);
  EXPECT_FALSE(su.fits_in_memory);
}

TEST(AppFramework, MemoryClampShrinksOversizedProblems) {
  auto spec = apps::picongpu();  // 20 GB/GCD footprint
  const auto su = apps::run_app(spec, machines::summit(), nullptr, 256);
  EXPECT_FALSE(su.fits_in_memory);  // V100 has 16 GiB
  // FOM still computed, on the clamped problem.
  EXPECT_GT(su.fom, 0.0);
}

TEST(AppFramework, ChollaSingleGcdFasterThanV100) {
  // Per-device rate on one node: the paper's hardware + algorithm gains.
  const auto f = apps::run_app(apps::cholla(), machines::frontier(), nullptr, 1);
  const auto s = apps::run_app(apps::cholla(), machines::summit(), nullptr, 1);
  EXPECT_GT(f.fom / f.gpus, 5.0 * (s.fom / s.gpus));
}

TEST(AppFramework, AthenaPkSingleNodeRatioNearPaper) {
  // §4.4.1: a Frontier node does ~1.2x the cell-updates/s of a Summit node.
  const auto f = apps::run_app(apps::athenapk(), machines::frontier(), nullptr, 1);
  const auto s = apps::run_app(apps::athenapk(), machines::summit(), nullptr, 1);
  EXPECT_NEAR(f.fom / s.fom, 1.2, 0.25);
}

TEST(Table6, AllAppsExceedTheir4xTarget) {
  const auto res = apps::run_rows(apps::table6_rows(), nullptr, nullptr);
  ASSERT_EQ(res.size(), 6u);
  for (const auto& r : res) {
    EXPECT_TRUE(r.meets_target()) << r.row.specs[0].name << " " << r.speedup;
    // Within 35% of the paper's achieved factor (shape fidelity).
    EXPECT_NEAR(r.speedup / r.row.paper_achieved, 1.0, 0.35)
        << r.row.specs[0].name;
  }
}

TEST(Table7, AllAppsExceedTheir50xTarget) {
  const auto res = apps::run_rows(apps::table7_rows(), nullptr, nullptr);
  ASSERT_EQ(res.size(), 5u);
  for (const auto& r : res) {
    EXPECT_TRUE(r.meets_target()) << r.row.specs[0].name << " " << r.speedup;
    EXPECT_NEAR(r.speedup / r.row.paper_achieved, 1.0, 0.35)
        << r.row.specs[0].name;
  }
}

TEST(Table7, ExaSmrIsHarmonicMeanOfComponents) {
  auto rows = apps::table7_rows();
  const auto it = std::find_if(rows.begin(), rows.end(), [](const auto& r) {
    return r.specs.size() == 2;
  });
  ASSERT_NE(it, rows.end());
  const auto res = apps::run_rows({*it}, nullptr, nullptr);
  const auto& r = res[0];
  ASSERT_EQ(r.frontier_runs.size(), 2u);
  const double s1 = r.frontier_runs[0].fom / r.baseline_runs[0].fom;
  const double s2 = r.frontier_runs[1].fom / r.baseline_runs[1].fom;
  EXPECT_NEAR(r.speedup, 2.0 / (1.0 / s1 + 1.0 / s2), 1e-9);
}

TEST(Table6, LsmsUsesPerGpuSpeedup) {
  auto rows = apps::table6_rows();
  const auto it = std::find_if(rows.begin(), rows.end(),
                               [](const auto& r) { return r.per_gpu; });
  ASSERT_NE(it, rows.end());
  EXPECT_EQ(it->specs[0].name, "LSMS");
}

TEST(Catalog, EveryAppHasFrontierEfficiency) {
  for (const auto& spec : apps::all_apps()) {
    EXPECT_TRUE(spec.efficiency.count("Frontier")) << spec.name;
    for (const auto& [machine, eff] : spec.efficiency) {
      EXPECT_GT(eff, 0.0) << spec.name << "@" << machine;
      EXPECT_LE(eff, 1.0) << spec.name << "@" << machine;
    }
  }
}

TEST(Catalog, Gests2dCarriesMoreWireTraffic) {
  EXPECT_GT(apps::gests(2).comm.halo_bytes, apps::gests(1).comm.halo_bytes);
}

// §4.4 scaling claims (analytic network path; the bench runs fabric-backed).
TEST(Scaling, ShiftWeakScalingNearPaperValue) {
  // Paper: 97.8% from 1 to 8,192 nodes.
  const auto m = machines::frontier();
  const auto one = apps::run_app(apps::exasmr_shift(), m, nullptr, 1);
  const auto big = apps::run_app(apps::exasmr_shift(), m, nullptr, 8192);
  const double eff = (big.fom / big.gpus) / (one.fom / one.gpus);
  EXPECT_GT(eff, 0.93);
  EXPECT_LE(eff, 1.0 + 1e-9);
}

TEST(Scaling, WarpXWeakScalingNearIdeal) {
  const auto m = machines::frontier();
  const auto one = apps::run_app(apps::warpx(), m, nullptr, 1);
  const auto big = apps::run_app(apps::warpx(), m, nullptr, 9216);
  const double eff = (big.fom / big.gpus) / (one.fom / one.gpus);
  EXPECT_GT(eff, 0.85);
}

TEST(Scaling, HaccTimingsConsistentBetween4kAnd8kNodes) {
  // Paper: "consistent timings between the 4096-8192 node Frontier runs".
  const auto m = machines::frontier();
  const auto h4 = apps::run_app(apps::hacc(), m, nullptr, 4096);
  const auto h8 = apps::run_app(apps::hacc(), m, nullptr, 8192);
  EXPECT_NEAR(h8.step_time / h4.step_time, 1.0, 0.10);
}

}  // namespace
