// Tests for the simulated MPI layer and the GPCNeT reproduction.
//
// Full-machine GPCNeT runs live in bench/table5_gpcnet; the tests here use a
// reduced machine so the suite stays fast, and check invariants rather than
// absolute Table 5 numbers.
#include <gtest/gtest.h>

#include <numeric>

#include "machines/machine.hpp"
#include "mpi/comm.hpp"
#include "mpi/gpcnet.hpp"
#include "net/patterns.hpp"

namespace {

using namespace xscale;

struct Fixture {
  machines::Machine m = machines::frontier();
  // 8-group mini-Frontier to keep solves fast.
  Fixture() {
    m.topology_factory = [] {
      machines::FrontierFabricSpec spec;
      spec.compute_groups = 8;
      spec.storage_groups = 0;
      spec.management_groups = 0;
      return machines::frontier_topology(spec);
    };
    m.total_nodes = 8 * 32 * 16 / 4;  // 4 NICs per node
    m.compute_nodes = m.total_nodes;
  }
};

std::vector<int> iota_nodes(int n, int first = 0) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), first);
  return v;
}

TEST(SimComm, RankMapping) {
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  mpi::SimComm comm(fx.m, &fabric, iota_nodes(4), {.ppn = 8});
  EXPECT_EQ(comm.size(), 32);
  EXPECT_EQ(comm.node_of_rank(0), 0);
  EXPECT_EQ(comm.node_of_rank(8), 1);
  // 8 ranks share 4 NICs, two per NIC.
  EXPECT_EQ(comm.nic_of_rank(0), 0);
  EXPECT_EQ(comm.nic_of_rank(4), 0);
  EXPECT_EQ(comm.nic_of_rank(3), 3);
  EXPECT_EQ(comm.endpoint_of_rank(9), machines::node_endpoint(fx.m, 1, 1));
}

TEST(SimComm, OnNodeLatencyBelowOffNode) {
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  mpi::SimComm comm(fx.m, &fabric, iota_nodes(4), {.ppn = 8});
  EXPECT_LT(comm.latency(0, 1), comm.latency(0, 8));
}

TEST(SimComm, LatencyNearGpcnetValueAcrossGroups) {
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  // Nodes 0 and 200 are in different dragonfly groups (128 nodes/group).
  mpi::SimComm comm(fx.m, &fabric, {0, 200}, {.ppn = 8});
  EXPECT_NEAR(comm.latency(0, 8) * 1e6, 2.6, 0.3);  // Table 5
}

TEST(SimComm, Pt2PtBandwidthIsNicLimited) {
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  mpi::SimComm comm(fx.m, &fabric, iota_nodes(4), {.ppn = 8});
  EXPECT_NEAR(comm.pt2pt_bandwidth(0, 8) / 1e9, 17.5, 0.1);
}

TEST(SimComm, SustainedBandwidthScalesInverselyWithPpn) {
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  mpi::SimComm c8(fx.m, &fabric, iota_nodes(64), {.ppn = 8});
  mpi::SimComm c32(fx.m, &fabric, iota_nodes(64), {.ppn = 32});
  EXPECT_GT(c8.sustained_per_rank_bw(), 2.0 * c32.sustained_per_rank_bw());
  EXPECT_GT(c32.sustained_per_rank_bw(), 0.0);
}

TEST(SimComm, PackedSmallJobHasLowerLatencyThanSpread) {
  // §3.4.2: Slurm packs small jobs into one group to minimize global hops.
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  std::vector<int> packed = iota_nodes(32);  // one group
  std::vector<int> spread;                   // 4 per group
  for (int g = 0; g < 8; ++g)
    for (int i = 0; i < 4; ++i) spread.push_back(g * 128 + i);
  mpi::SimComm cp(fx.m, &fabric, packed, {.ppn = 8});
  mpi::SimComm cs(fx.m, &fabric, spread, {.ppn = 8});
  EXPECT_LT(cp.avg_latency(), cs.avg_latency());
}

TEST(SimComm, SpreadingLargeJobRaisesGlobalBandwidthUnderMinimalRouting) {
  // §3.4.2: large jobs are spread across groups to maximize the number of
  // global connections available to minimal routing. The win is specifically
  // on *cross-group* flows: a packed job funnels them through few bundles.
  Fixture fx;
  auto cfg = fx.m.fabric_defaults;
  cfg.routing = net::Routing::Minimal;
  auto fabric = fx.m.build_fabric(cfg);
  std::vector<int> packed = iota_nodes(512);  // fills 4 of 8 groups
  std::vector<int> spread;                    // 64 per group
  for (int g = 0; g < 8; ++g)
    for (int i = 0; i < 64; ++i) spread.push_back(g * 128 + i);

  auto cross_group_avg = [&](const std::vector<int>& nodes) {
    sim::Rng rng(99);
    const auto& topo = fabric.topology();
    auto perm = net::random_permutation(static_cast<int>(nodes.size()), rng);
    net::PairList pairs;
    for (const auto& [i, j] : perm) {
      const int a = machines::node_endpoint(fx.m, nodes[static_cast<std::size_t>(i)], 0);
      const int b = machines::node_endpoint(fx.m, nodes[static_cast<std::size_t>(j)], 0);
      if (topo.group_of_endpoint(a) != topo.group_of_endpoint(b))
        pairs.emplace_back(a, b);
    }
    const auto rates = fabric.steady_rates(pairs);
    double s = 0;
    for (double r : rates) s += r;
    return s / static_cast<double>(rates.size());
  };
  EXPECT_GT(cross_group_avg(spread), 1.5 * cross_group_avg(packed));
}

TEST(SimComm, CollectiveTimesGrowWithMessageSize) {
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  mpi::SimComm comm(fx.m, &fabric, iota_nodes(16), {.ppn = 8});
  EXPECT_LT(comm.allreduce_time(8), comm.allreduce_time(1 << 20));
  EXPECT_LT(comm.allgather_time(8), comm.allgather_time(1 << 20));
  EXPECT_LT(comm.broadcast_time(8), comm.broadcast_time(1 << 20));
  EXPECT_GT(comm.alltoall_time(1024), 0.0);
  EXPECT_GT(comm.barrier_time(), 0.0);
}

TEST(SimComm, AllreduceLogScaling) {
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  mpi::SimComm small(fx.m, &fabric, iota_nodes(8), {.ppn = 8});
  mpi::SimComm large(fx.m, &fabric, iota_nodes(512), {.ppn = 8});
  const double r = large.allreduce_time(8) / small.allreduce_time(8);
  // 64x more ranks -> +6 stages over ~6: about 2x, certainly < 8x.
  EXPECT_GT(r, 1.2);
  EXPECT_LT(r, 8.0);
}

TEST(SimComm, HaloTimeScalesWithNeighborsAndBytes) {
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  mpi::SimComm comm(fx.m, &fabric, iota_nodes(64), {.ppn = 8});
  const double t6 = comm.halo_exchange_time(1 << 20, 6);
  const double t26 = comm.halo_exchange_time(1 << 20, 26);
  EXPECT_GT(t26, t6 * 2.0);
}

TEST(SimComm, AnalyticMachineWorksWithoutFabric) {
  const auto m = machines::mira();
  mpi::SimComm comm(m, nullptr, iota_nodes(1024), {.ppn = 16});
  EXPECT_GT(comm.sustained_per_rank_bw(), 0.0);
  EXPECT_GT(comm.allreduce_time(8), 0.0);
  EXPECT_GT(comm.latency(0, 64), 1e-6);
}

TEST(Gpcnet, CongestionControlIsolatesAt8Ppn) {
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  mpi::GpcnetConfig cfg;
  cfg.nodes = fx.m.total_nodes;
  cfg.ppn = 8;
  const auto r = mpi::run_gpcnet(fx.m, fabric, cfg);
  ASSERT_EQ(r.impact.size(), 3u);
  for (double i : r.impact) {
    EXPECT_GE(i, 0.99);
    EXPECT_LE(i, 1.05);  // "identical performance" (Table 5)
  }
}

TEST(Gpcnet, OversubscribedPpnDegrades) {
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  mpi::GpcnetConfig cfg;
  cfg.nodes = fx.m.total_nodes;
  cfg.ppn = 32;
  const auto r = mpi::run_gpcnet(fx.m, fabric, cfg);
  // §4.2.2: 1.2-1.6x average degradation at 32 PPN.
  EXPECT_GT(r.impact[0], 1.15);
  EXPECT_LT(r.impact[0], 1.8);
  EXPECT_GT(r.impact[1], 1.15);
  EXPECT_GT(r.impact[2], 1.15);
}

TEST(Gpcnet, DisablingCongestionControlHurtsVictims) {
  Fixture fx;
  auto cfg_cc = fx.m.fabric_defaults;
  cfg_cc.congestion_control = false;
  auto fabric = fx.m.build_fabric(cfg_cc);
  mpi::GpcnetConfig cfg;
  cfg.nodes = fx.m.total_nodes;
  cfg.ppn = 8;
  const auto r = mpi::run_gpcnet(fx.m, fabric, cfg);
  // Bandwidth impact must exceed the CC-on result by a wide margin.
  EXPECT_GT(r.impact[1], 1.3);
}

TEST(Gpcnet, IsolatedLatencyTailAboveAverage) {
  Fixture fx;
  auto fabric = fx.m.build_fabric();
  mpi::GpcnetConfig cfg;
  cfg.nodes = fx.m.total_nodes;
  const auto r = mpi::run_gpcnet(fx.m, fabric, cfg);
  EXPECT_GT(r.isolated[0].p99, r.isolated[0].average * 1.3);
}

}  // namespace
