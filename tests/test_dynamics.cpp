// Tests for the event-driven layers added on top of the steady-state models:
// message-level collectives, the HPL proxy, failure-replay job simulation,
// and fabric-manager link-failure rerouting.
#include <gtest/gtest.h>

#include <numeric>

#include "apps/hpl.hpp"
#include "core/xscale.hpp"
#include "mpi/collective_sim.hpp"
#include "resil/jobsim.hpp"

namespace {

using namespace xscale;

struct MiniFrontier {
  machines::Machine m = machines::frontier();
  MiniFrontier() {
    machines::FrontierFabricSpec spec;
    spec.compute_groups = 8;
    spec.storage_groups = 0;
    spec.management_groups = 0;
    m.topology_factory = [spec] { return machines::frontier_topology(spec); };
    m.total_nodes = 1024;
    m.compute_nodes = 1024;
  }
};

std::vector<int> nodes(int n) {
  std::vector<int> v(static_cast<std::size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

// ------------------------------------------------------------ collectives ---

struct CollectiveFixture : MiniFrontier {
  net::Fabric fabric = m.build_fabric();
  double run_ar(int nnodes, double bytes, mpi::AllreduceAlgo algo) {
    mpi::SimComm comm(m, &fabric, nodes(nnodes), {.ppn = 8});
    sim::Engine eng;
    net::FlowSim flows(eng, fabric);
    mpi::CollectiveSim cs(eng, flows, comm);
    return cs.run_allreduce(bytes, algo);
  }
  double run_bcast(int nnodes, double bytes, int root = 0) {
    mpi::SimComm comm(m, &fabric, nodes(nnodes), {.ppn = 8});
    sim::Engine eng;
    net::FlowSim flows(eng, fabric);
    mpi::CollectiveSim cs(eng, flows, comm);
    return cs.run_broadcast(bytes, root);
  }
};

TEST(CollectiveSim, AllreduceCompletesAndScalesLogarithmically) {
  CollectiveFixture fx;
  const double t8 = fx.run_ar(8, 8, mpi::AllreduceAlgo::RecursiveDoubling);
  const double t64 = fx.run_ar(64, 8, mpi::AllreduceAlgo::RecursiveDoubling);
  EXPECT_GT(t8, 0.0);
  EXPECT_GT(t64, t8);          // more ranks -> more rounds
  EXPECT_LT(t64, t8 * 4.0);    // but logarithmically, not linearly
}

TEST(CollectiveSim, RingBeatsRecursiveDoublingForLargePayloads) {
  CollectiveFixture fx;
  const double big = units::MiB(64);
  const double rd = fx.run_ar(16, big, mpi::AllreduceAlgo::RecursiveDoubling);
  const double ring = fx.run_ar(16, big, mpi::AllreduceAlgo::Ring);
  EXPECT_LT(ring, rd);  // RD moves the full buffer log2(p) times
}

TEST(CollectiveSim, RecursiveDoublingBeatsRingForSmallPayloads) {
  CollectiveFixture fx;
  const double rd = fx.run_ar(32, 8, mpi::AllreduceAlgo::RecursiveDoubling);
  const double ring = fx.run_ar(32, 8, mpi::AllreduceAlgo::Ring);
  EXPECT_LT(rd, ring);  // ring pays 2(p-1) latencies
}

TEST(CollectiveSim, NonPowerOfTwoRanksComplete) {
  CollectiveFixture fx;
  const double t = fx.run_ar(3, 1024, mpi::AllreduceAlgo::RecursiveDoubling);
  EXPECT_GT(t, 0.0);  // 24 ranks: 16-core + 8 folded
}

TEST(CollectiveSim, BroadcastRootInvariance) {
  CollectiveFixture fx;
  const double t0 = fx.run_bcast(16, units::KiB(64), 0);
  const double t5 = fx.run_bcast(16, units::KiB(64), 37);
  EXPECT_GT(t0, 0.0);
  EXPECT_GT(t5, 0.0);
  EXPECT_NEAR(t0 / t5, 1.0, 0.5);  // rotation symmetry, modulo topology
}

TEST(CollectiveSim, AgreesWithAnalyticModelWithinFactorFour) {
  CollectiveFixture fx;
  mpi::SimComm comm(fx.m, &fx.fabric, nodes(32), {.ppn = 8});
  const double analytic = comm.allreduce_time(8);
  const double simulated = fx.run_ar(32, 8, mpi::AllreduceAlgo::RecursiveDoubling);
  EXPECT_GT(simulated, analytic / 4.0);
  EXPECT_LT(simulated, analytic * 4.0);
}

// ------------------------------------------------------------------- HPL ----

TEST(Hpl, FrontierLandsNearPaperRmax) {
  const auto r = apps::run_hpl(machines::frontier(), nullptr, 9408);
  EXPECT_NEAR(r.rmax / 1e18, 1.102, 0.06);  // June 2022 submission
  EXPECT_GT(r.time_s, 3600.0);              // full-machine HPL takes hours
  EXPECT_LT(r.time_s, 5 * 3600.0);
  EXPECT_GT(r.dgemm_fraction, 0.9);
}

TEST(Hpl, EfficiencyDropsWithFewerNodesDueToSmallerMatrix) {
  const auto big = apps::run_hpl(machines::frontier(), nullptr, 9408);
  const auto small = apps::run_hpl(machines::frontier(), nullptr, 64);
  EXPECT_GT(big.efficiency, small.efficiency * 0.99);
  EXPECT_GT(small.rmax, 0.0);
}

TEST(Hpl, SummitRmaxNearItsRealValue) {
  // Summit's HPL was ~148.6 PF on 4,608 nodes; the model should land within
  // ~35% with the same sustained fraction calibrated for Frontier's stack.
  const auto r = apps::run_hpl(machines::summit(), nullptr, 4600);
  EXPECT_GT(r.rmax / 1e15, 95.0);
  EXPECT_LT(r.rmax / 1e15, 210.0);
}

// ------------------------------------------------------------- job replay ---

TEST(JobSim, NoFailuresMeansOnlyCheckpointOverhead) {
  // A census with absurdly good FIT rates -> effectively no failures.
  auto census = resil::frontier_census();
  for (auto& c : census) c.fit *= 1e-6;
  resil::ResiliencyModel m(std::move(census));
  sim::Rng rng(1);
  resil::JobSimConfig cfg;
  cfg.work_hours = 10;
  cfg.checkpoint_write_s = 180;
  cfg.checkpoint_interval_s = 1800;
  const auto r = resil::replay_job(m, rng, cfg);
  EXPECT_EQ(r.failures, 0);
  EXPECT_EQ(r.checkpoints, 20);
  EXPECT_NEAR(r.efficiency, 1800.0 / 1980.0, 1e-6);
}

TEST(JobSim, MeanEfficiencyTracksYoungDaly) {
  resil::ResiliencyModel m;
  resil::JobSimConfig cfg;
  cfg.work_hours = 48;
  cfg.checkpoint_write_s = 185;
  cfg.restart_s = 300;
  const auto s = resil::replay_jobs(m, 99, 300, cfg);
  const double predicted = m.checkpoint_efficiency(cfg.checkpoint_write_s);
  EXPECT_NEAR(s.mean.efficiency, predicted, 0.06);
  EXPECT_GT(s.mean.failures, 5);  // 48h work at ~4.6h MTTI
  EXPECT_LT(s.efficiency_p5, s.efficiency_p95);
}

TEST(JobSim, WrongIntervalHurtsEfficiency) {
  resil::ResiliencyModel m;
  resil::JobSimConfig optimal;
  optimal.work_hours = 48;
  optimal.checkpoint_write_s = 185;
  resil::JobSimConfig rare = optimal;
  rare.checkpoint_interval_s = 6 * 3600;  // checkpoint every 6 h at 4.6 h MTTI
  resil::JobSimConfig frantic = optimal;
  frantic.checkpoint_interval_s = 240;  // checkpoint every 4 min
  const auto so = resil::replay_jobs(m, 7, 200, optimal);
  const auto sr = resil::replay_jobs(m, 7, 200, rare);
  const auto sf = resil::replay_jobs(m, 7, 200, frantic);
  EXPECT_GT(so.mean.efficiency, sr.mean.efficiency);
  EXPECT_GT(so.mean.efficiency, sf.mean.efficiency);
}

// --------------------------------------------------------- fabric manager ---

TEST(FabricManager, FailedGlobalBundleIsRoutedAround) {
  MiniFrontier fx;
  auto cfg = fx.m.fabric_defaults;
  cfg.routing = net::Routing::Minimal;
  auto fabric = fx.m.build_fabric(cfg);
  const auto& topo = fabric.topology();
  const int ep_a = machines::node_endpoint(fx.m, 0, 0);     // group 0
  const int ep_b = machines::node_endpoint(fx.m, 200, 0);   // group 1
  const int gl = topo.global_link(0, 1);
  ASSERT_GE(gl, 0);

  const auto before = fabric.steady_rates({{ep_a, ep_b}});
  fabric.fail_link(gl);
  EXPECT_EQ(fabric.failed_links(), 1);
  const auto after = fabric.steady_rates({{ep_a, ep_b}});
  // Traffic still flows (detour via an intermediate group) at the NIC rate
  // since nothing else competes.
  EXPECT_GT(after[0], 0.9 * before[0]);

  // The detour path must not contain the failed link.
  sim::Rng rng(4);
  const auto path = fabric.route(ep_a, ep_b, rng);
  EXPECT_EQ(std::find(path.begin(), path.end(), gl), path.end());

  fabric.restore_link(gl);
  EXPECT_EQ(fabric.failed_links(), 0);
  const auto restored = fabric.route(ep_a, ep_b, rng);
  EXPECT_NE(std::find(restored.begin(), restored.end(), gl), restored.end());
}

TEST(FabricManager, FailedLinkCarriesNoTraffic) {
  MiniFrontier fx;
  auto fabric = fx.m.build_fabric();
  const auto& topo = fabric.topology();
  const int gl = topo.global_link(2, 5);
  fabric.fail_link(gl);
  // Many flows between groups 2 and 5: all must avoid the dead bundle.
  net::PairList pairs;
  for (int i = 0; i < 64; ++i)
    pairs.emplace_back(machines::node_endpoint(fx.m, 256 + i, 0),
                       machines::node_endpoint(fx.m, 640 + i, 0));
  std::vector<std::vector<int>> paths;
  const auto rates = fabric.steady_rates(pairs, nullptr, &paths);
  for (const auto& p : paths)
    EXPECT_EQ(std::find(p.begin(), p.end(), gl), p.end());
  for (double r : rates) EXPECT_GT(r, 0.0);
}

}  // namespace
