// Scheduler tests: FCFS + conservative backfill ordering, utilization
// accounting (full and truncated runs), placement policies, and allocation
// bookkeeping (ISSUE 4 satellite — these paths previously had no coverage).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "sched/slurm.hpp"
#include "sim/engine.hpp"

using namespace xscale;

namespace {

sched::JobRequest job(int nodes, double duration_s,
                      sched::Placement p = sched::Placement::Pack) {
  sched::JobRequest r;
  r.nodes = nodes;
  r.duration_s = duration_s;
  r.placement = p;
  return r;
}

}  // namespace

TEST(Scheduler, AllocateRespectsHealthAndCapacity) {
  sched::Scheduler s(16, 4);
  EXPECT_EQ(s.healthy_nodes(), 16);
  EXPECT_EQ(s.free_nodes(), 16);

  s.set_healthy(3, false);
  s.set_healthy(7, false);
  EXPECT_EQ(s.healthy_nodes(), 14);
  EXPECT_EQ(s.free_nodes(), 14);

  auto a = s.allocate(14, sched::Placement::Pack);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(static_cast<int>(a->nodes.size()), 14);
  // Unhealthy nodes must never be handed out.
  for (int n : a->nodes) {
    EXPECT_NE(n, 3);
    EXPECT_NE(n, 7);
  }
  EXPECT_EQ(s.free_nodes(), 0);

  // Nothing left: the next request must fail without side effects.
  EXPECT_FALSE(s.allocate(1, sched::Placement::Pack).has_value());
  s.release(*a);
  EXPECT_EQ(s.free_nodes(), 14);
}

TEST(Scheduler, VniAndJobIdsAreUniqueAcrossAllocations) {
  sched::Scheduler s(32, 8);
  std::set<int> job_ids;
  std::set<std::uint16_t> vnis;
  std::vector<sched::Allocation> held;
  for (int i = 0; i < 8; ++i) {
    auto a = s.allocate(4, sched::Placement::Pack);
    ASSERT_TRUE(a.has_value());
    EXPECT_TRUE(job_ids.insert(a->job_id).second) << "duplicate job id";
    EXPECT_TRUE(vnis.insert(a->vni).second) << "duplicate VNI";
    EXPECT_NE(a->vni, 0) << "VNI 0 is reserved";
    held.push_back(*a);
    if (held.size() == 4) {  // churn: release half, ids must stay fresh
      for (const auto& h : held) s.release(h);
      held.clear();
    }
  }
}

TEST(Scheduler, PackPlacementFillsFewestGroups) {
  sched::Scheduler s(64, 16);  // 4 groups of 16
  auto a = s.allocate(16, sched::Placement::Pack);
  ASSERT_TRUE(a.has_value());
  std::set<int> groups;
  for (int n : a->nodes) groups.insert(n / 16);
  EXPECT_EQ(groups.size(), 1u) << "16 nodes fit one group exactly";

  // 20 nodes can't fit one group, but must not smear over more than 2.
  auto b = s.allocate(20, sched::Placement::Pack);
  ASSERT_TRUE(b.has_value());
  groups.clear();
  for (int n : b->nodes) groups.insert(n / 16);
  EXPECT_LE(groups.size(), 2u);
}

TEST(Scheduler, SpreadPlacementTouchesAllGroups) {
  sched::Scheduler s(64, 16);  // 4 groups
  auto a = s.allocate(8, sched::Placement::Spread);
  ASSERT_TRUE(a.has_value());
  std::set<int> groups;
  for (int n : a->nodes) groups.insert(n / 16);
  EXPECT_EQ(groups.size(), 4u) << "8 nodes round-robin across 4 groups";
}

TEST(Scheduler, FcfsStartsJobsInOrderWhenAllFit) {
  sim::Engine eng;
  sched::Scheduler s(100, 25);
  auto recs = s.run_workload(eng, {job(10, 100), job(10, 100), job(10, 100)});
  ASSERT_EQ(recs.size(), 3u);
  for (const auto& r : recs) {
    EXPECT_DOUBLE_EQ(r.start_time, 0.0);
    EXPECT_DOUBLE_EQ(r.wait_time(), 0.0);
    EXPECT_DOUBLE_EQ(r.end_time, 100.0);
  }
}

TEST(Scheduler, BackfillStartsSmallJobWithoutDelayingQueueHead) {
  sim::Engine eng;
  sched::Scheduler s(100, 25);
  // A occupies 80 nodes for 100 s. B (head of the queue after A starts)
  // needs 80 and must wait for A. C needs 10 and fits in the residual 20
  // right now — it backfills at t=0.
  auto recs = s.run_workload(
      eng, {job(80, 100), job(80, 50), job(10, 30)});
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_DOUBLE_EQ(recs[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(recs[2].start_time, 0.0) << "small job should backfill";
  // The head starts exactly when A releases its nodes — the backfilled C
  // (done at t=30) never delays it.
  EXPECT_DOUBLE_EQ(recs[1].start_time, 100.0);
  EXPECT_DOUBLE_EQ(recs[1].wait_time(), 100.0);
  EXPECT_DOUBLE_EQ(recs[1].end_time, 150.0);
}

TEST(Scheduler, QueuedJobsStartAsNodesFree) {
  sim::Engine eng;
  sched::Scheduler s(10, 5);
  // Three serial 10-node jobs: each must wait for the previous to finish.
  auto recs = s.run_workload(eng, {job(10, 60), job(10, 60), job(10, 60)});
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_DOUBLE_EQ(recs[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(recs[1].start_time, 60.0);
  EXPECT_DOUBLE_EQ(recs[2].start_time, 120.0);
  EXPECT_DOUBLE_EQ(recs[2].end_time, 180.0);
}

TEST(Scheduler, UtilizationAccountsBusyNodeSeconds) {
  sim::Engine eng;
  sched::Scheduler s(100, 25);
  // 50 nodes busy for 100 s out of 100 nodes x 100 s -> exactly 0.5.
  auto recs = s.run_workload(eng, {job(50, 100)});
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_NEAR(s.last_utilization(), 0.5, 1e-12);

  // Back-to-back full-machine jobs -> 1.0.
  sim::Engine eng2;
  sched::Scheduler s2(100, 25);
  s2.run_workload(eng2, {job(100, 10), job(100, 10)});
  EXPECT_NEAR(s2.last_utilization(), 1.0, 1e-12);
}

TEST(Scheduler, TruncatedRunProRatesUtilization) {
  sim::Engine eng;
  sched::Scheduler s(100, 25);
  // The job wants 1000 s but the run is truncated at 100 s. Only the
  // node-seconds actually consumed may be credited — utilization must stay
  // in [0, 1] (this used to over-count from the requested duration).
  auto recs = s.run_workload(eng, {job(60, 1000)}, /*run_until=*/100);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_DOUBLE_EQ(recs[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(recs[0].end_time, 100.0) << "truncation time recorded";
  EXPECT_NEAR(s.last_utilization(), 0.6, 1e-12);
  EXPECT_LE(s.last_utilization(), 1.0);
  // Nodes must have been returned so the scheduler is reusable.
  EXPECT_EQ(s.free_nodes(), 100);
}

TEST(Scheduler, WaitTimesAreNonNegativeAndConsistent) {
  sim::Engine eng;
  sched::Scheduler s(40, 10);
  std::vector<sched::JobRequest> jobs;
  for (int i = 0; i < 12; ++i)
    jobs.push_back(job(5 + (i * 7) % 20, 30 + 10 * (i % 4)));
  auto recs = s.run_workload(eng, jobs);
  ASSERT_EQ(recs.size(), jobs.size());
  for (const auto& r : recs) {
    EXPECT_GE(r.start_time, r.submit_time);
    EXPECT_GE(r.end_time, r.start_time);
    EXPECT_DOUBLE_EQ(r.wait_time(), r.start_time - r.submit_time);
    EXPECT_EQ(static_cast<int>(r.nodes.size()), r.request.nodes);
  }
  EXPECT_GT(s.last_utilization(), 0.0);
  EXPECT_LE(s.last_utilization(), 1.0);
}
