// Resiliency model tests: FIT/MTTI census math, contributor ordering,
// Young/Daly optimum, and the Monte Carlo replay paths — serial and sharded
// (ISSUE 4 satellite).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "resil/jobsim.hpp"
#include "resil/resiliency.hpp"
#include "sim/rng.hpp"

using namespace xscale;

TEST(Resiliency, InterruptRateIsSumOfCensusRates) {
  resil::ResiliencyModel model;
  double expect = 0;
  for (const auto& c : model.census())
    expect += c.count * c.fit * 1e-9 * c.interrupt_fraction;
  EXPECT_DOUBLE_EQ(model.interrupts_per_hour(), expect);
  EXPECT_DOUBLE_EQ(model.mtti_hours(), 1.0 / expect);
}

TEST(Resiliency, MttiLandsInPaperFewHoursBand) {
  // §5.4: "not much better than the projected four-hour target" — the
  // calibrated census must land MTTI in a few-hours band, not minutes or
  // days.
  resil::ResiliencyModel model;
  EXPECT_GT(model.mtti_hours(), 2.0);
  EXPECT_LT(model.mtti_hours(), 10.0);
}

TEST(Resiliency, HbmAndPowerSuppliesLeadTheBreakdown) {
  // §5.4 names HBM uncorrectable errors and power supplies as the leading
  // hardware contributors; the lumped software class aside, they must top
  // the sorted breakdown.
  resil::ResiliencyModel model;
  auto b = model.breakdown();
  ASSERT_GE(b.size(), 3u);
  // Sorted descending.
  for (std::size_t i = 1; i < b.size(); ++i)
    EXPECT_GE(b[i - 1].second, b[i].second);
  std::vector<std::string> hw_order;
  for (const auto& [name, rate] : b)
    if (name != "Software/other") hw_order.push_back(name);
  ASSERT_GE(hw_order.size(), 2u);
  EXPECT_EQ(hw_order[0], "HBM2e stack");
  EXPECT_EQ(hw_order[1], "Power supply");
}

TEST(Resiliency, YoungDalyOptimumMatchesClosedForm) {
  resil::ResiliencyModel model;
  const double mtti_s = model.mtti_hours() * 3600.0;
  for (double delta : {30.0, 180.0, 600.0}) {
    const double tau = model.optimal_checkpoint_interval_s(delta);
    EXPECT_DOUBLE_EQ(tau, std::sqrt(2.0 * delta * mtti_s));
    const double eff = model.checkpoint_efficiency(delta);
    EXPECT_DOUBLE_EQ(eff, std::max(0.0, 1.0 - delta / tau - tau / (2 * mtti_s)));
    EXPECT_GT(eff, 0.0);
    EXPECT_LT(eff, 1.0);
  }
  // Longer checkpoint writes can only hurt efficiency.
  EXPECT_GT(model.checkpoint_efficiency(30.0),
            model.checkpoint_efficiency(180.0));
  EXPECT_GT(model.checkpoint_efficiency(180.0),
            model.checkpoint_efficiency(600.0));
}

TEST(Resiliency, BetterFitRatesImproveMtti) {
  auto census = resil::frontier_census();
  for (auto& c : census) c.fit /= 2.0;
  resil::ResiliencyModel base, improved(census);
  EXPECT_NEAR(improved.mtti_hours(), 2.0 * base.mtti_hours(),
              1e-9 * base.mtti_hours());
  EXPECT_GT(improved.checkpoint_efficiency(180.0),
            base.checkpoint_efficiency(180.0));
}

TEST(Resiliency, SampledIntervalsMatchCensusRate) {
  // Mean of exponential inter-arrivals must approach 1/rate (law of large
  // numbers; 200k draws keeps the sampling error well under 2%).
  resil::ResiliencyModel model;
  const auto xs = model.sample_intervals_sharded(200000, 0xC0FFEE);
  const double mean = std::accumulate(xs.begin(), xs.end(), 0.0) /
                      static_cast<double>(xs.size());
  EXPECT_NEAR(mean, model.mtti_hours(), 0.02 * model.mtti_hours());
  for (double x : xs) EXPECT_GT(x, 0.0);
}

TEST(Resiliency, ShardedSamplingIsDeterministicInSeedAndN) {
  resil::ResiliencyModel model;
  const auto a = model.sample_intervals_sharded(10000, 42);
  const auto b = model.sample_intervals_sharded(10000, 42);
  EXPECT_EQ(a, b);
  // A prefix of a longer run is identical: sample i depends only on
  // (seed, i / shard, i % shard), never on n.
  const auto longer = model.sample_intervals_sharded(20000, 42);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), longer.begin()));
  // Different seeds give different streams.
  const auto c = model.sample_intervals_sharded(10000, 43);
  EXPECT_NE(a, c);
}

TEST(Resiliency, ReplayJobAccountsWorkAndLostTime) {
  resil::ResiliencyModel model;
  resil::JobSimConfig cfg;
  cfg.work_hours = 12.0;
  sim::Rng rng(7);
  const auto r = resil::replay_job(model, rng, cfg);
  EXPECT_GE(r.wall_hours, cfg.work_hours);
  EXPECT_GE(r.failures, 0);
  EXPECT_GE(r.lost_work_hours, 0.0);
  EXPECT_NEAR(r.efficiency, cfg.work_hours / r.wall_hours, 1e-12);
}

TEST(Resiliency, ReplayJobsSummaryIsConsistent) {
  resil::ResiliencyModel model;
  resil::JobSimConfig cfg;
  cfg.work_hours = 6.0;
  const auto s = resil::replay_jobs(model, 0xABCD, 400, cfg);
  EXPECT_GT(s.mean.efficiency, 0.0);
  EXPECT_LE(s.mean.efficiency, 1.0);
  EXPECT_LE(s.efficiency_p5, s.efficiency_p95);
  EXPECT_GE(s.mean.wall_hours, cfg.work_hours);
  // Monte Carlo mean should track the Young/Daly expectation loosely —
  // same model, first-order formula, so within a 10-point band.
  const double yd = model.checkpoint_efficiency(cfg.checkpoint_write_s);
  EXPECT_NEAR(s.mean.efficiency, yd, 0.10);
}

TEST(Resiliency, ReplayJobsIsDeterministicInSeed) {
  resil::ResiliencyModel model;
  resil::JobSimConfig cfg;
  cfg.work_hours = 6.0;
  const auto a = resil::replay_jobs(model, 99, 100, cfg);
  const auto b = resil::replay_jobs(model, 99, 100, cfg);
  EXPECT_EQ(a.mean.wall_hours, b.mean.wall_hours);
  EXPECT_EQ(a.mean.efficiency, b.mean.efficiency);
  EXPECT_EQ(a.mean.failures, b.mean.failures);
  EXPECT_EQ(a.efficiency_p5, b.efficiency_p5);
  EXPECT_EQ(a.efficiency_p95, b.efficiency_p95);
}
