// Tests for the deterministic parallel execution layer (sim/parallel.hpp)
// and the differential contract it must uphold: every parallelized hot path
// — FlowSim solves, Monte Carlo resiliency, GPCNeT pattern generation —
// produces byte-identical results, metrics snapshots, and trace exports at
// XSCALE_THREADS ∈ {1, 2, 8}.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "machines/machine.hpp"
#include "mpi/gpcnet.hpp"
#include "net/fabric.hpp"
#include "net/flowsim.hpp"
#include "net/patterns.hpp"
#include "net/solver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "resil/jobsim.hpp"
#include "resil/resiliency.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace {

using namespace xscale;

// Restores the configured thread count after a test that sweeps it.
struct ThreadCountGuard {
  ~ThreadCountGuard() { sim::set_thread_count(1); }
};

// ------------------------------------------------------------ pool basics --

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 5}) {
    sim::set_thread_count(threads);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{1000}, std::size_t{4097}}) {
      for (std::size_t grain : {std::size_t{1}, std::size_t{64},
                                std::size_t{5000}}) {
        std::vector<std::atomic<int>> hits(n);
        sim::parallel_for(n, grain, [&](std::size_t b, std::size_t e) {
          ASSERT_LE(b, e);
          ASSERT_LE(e, n);
          for (std::size_t i = b; i < e; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads
                                       << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount) {
  ThreadCountGuard guard;
  auto collect = [](int threads) {
    sim::set_thread_count(threads);
    std::mutex m;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    sim::parallel_for(1003, 100, [&](std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lk(m);
      chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto c1 = collect(1);
  const auto c4 = collect(4);
  EXPECT_EQ(c1, c4);
  ASSERT_EQ(c1.size(), 11u);  // ceil(1003/100)
  EXPECT_EQ(c1.back(), (std::pair<std::size_t, std::size_t>{1000, 1003}));
}

TEST(ThreadPool, OrderedReduceIsBitIdenticalToSerial) {
  ThreadCountGuard guard;
  // A sum of doubles is NOT associative; the ordered combine must reproduce
  // the serial chunked sum exactly.
  std::vector<double> xs(10001);
  sim::Rng rng(42);
  for (double& x : xs) x = rng.uniform(-1e9, 1e9) * 1e-7;

  auto chunked_sum = [&] {
    return sim::parallel_reduce(
        xs.size(), 128, 0.0,
        [&](std::size_t b, std::size_t e) {
          double s = 0;
          for (std::size_t i = b; i < e; ++i) s += xs[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  sim::set_thread_count(1);
  const double serial = chunked_sum();
  for (int threads : {2, 8}) {
    sim::set_thread_count(threads);
    EXPECT_EQ(serial, chunked_sum()) << "threads=" << threads;
  }
}

TEST(ThreadPool, ParallelEmitConcatenatesInChunkOrder) {
  ThreadCountGuard guard;
  auto emit = [] {
    return sim::parallel_emit<int>(100, 7, [](std::size_t i, std::vector<int>& out) {
      // Variable-length emission: i items of value i.
      for (std::size_t k = 0; k < i % 3; ++k) out.push_back(static_cast<int>(i));
    });
  };
  sim::set_thread_count(1);
  const auto serial = emit();
  sim::set_thread_count(8);
  EXPECT_EQ(serial, emit());
}

// The CSR core's batched rate-update path: one firing link freezing more
// than parallel_update_min flows, in a problem with enough links to open the
// parallel gates. The last 50 flows ride private links whose residuals are
// written by the batched sweep, so their level-2 rates expose any wrong or
// misordered subtraction. Must be bit-identical to the reference at every
// thread count.
TEST(ThreadPool, SolverBatchUpdatePathMatchesReferenceAcrossThreads) {
  ThreadCountGuard guard;
  const std::size_t incast = 2050;
  const std::size_t extras = 50;
  const std::size_t num_links = 1 + 2 * incast;  // 4101
  ASSERT_GE(num_links, net::solver_tuning().parallel_scan_threshold);
  ASSERT_GT(incast, net::solver_tuning().parallel_update_min);
  std::vector<double> caps(num_links, 25e9);
  caps[0] = 10e9;  // shared bottleneck: fires first, freezes all incast flows
  std::vector<std::vector<int>> paths;
  for (std::size_t f = 0; f < incast; ++f)
    paths.push_back({0, static_cast<int>(1 + 2 * f), static_cast<int>(2 + 2 * f)});
  for (std::size_t g = 0; g < extras; ++g)
    paths.push_back({static_cast<int>(1 + 2 * g)});  // shares a private link
  sim::set_thread_count(1);
  const auto oracle = net::max_min_rates_reference(caps, paths);
  for (int threads : {1, 2, 8}) {
    sim::set_thread_count(threads);
    const auto got = net::max_min_rates(caps, paths);
    ASSERT_EQ(got.size(), oracle.size());
    for (std::size_t f = 0; f < got.size(); ++f)
      EXPECT_EQ(got[f], oracle[f]) << "threads=" << threads << " flow=" << f;
  }
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadCountGuard guard;
  sim::set_thread_count(4);
  std::vector<std::atomic<int>> hits(64);
  sim::parallel_for(8, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t outer = b; outer < e; ++outer) {
      sim::parallel_for(8, 2, [&](std::size_t ib, std::size_t ie) {
        for (std::size_t inner = ib; inner < ie; ++inner)
          hits[outer * 8 + inner].fetch_add(1, std::memory_order_relaxed);
      });
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadCountGuard guard;
  for (int threads : {1, 4}) {
    sim::set_thread_count(threads);
    EXPECT_THROW(
        sim::parallel_for(100, 1,
                          [&](std::size_t b, std::size_t) {
                            if (b == 57) throw std::runtime_error("chunk 57");
                          }),
        std::runtime_error);
    // The pool must still be usable afterwards.
    std::atomic<int> ran{0};
    sim::parallel_for(10, 1, [&](std::size_t, std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 10);
  }
}

TEST(ThreadPool, ThreadCountKnobs) {
  ThreadCountGuard guard;
  sim::set_thread_count(3);
  EXPECT_EQ(sim::thread_count(), 3);
  EXPECT_EQ(sim::global_pool().threads(), 3);
  EXPECT_THROW(sim::set_thread_count(0), std::invalid_argument);
}

// ----------------------------------------- thread-safe metrics instruments --

TEST(ShardedStats, SingleThreadMatchesOnlineStatsBitForBit) {
  sim::OnlineStats ref;
  obs::ShardedStats sharded;
  sim::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    ref.add(x);
    sharded.add(x);
  }
  const sim::OnlineStats merged = sharded.merged();
  EXPECT_EQ(ref.count(), merged.count());
  EXPECT_EQ(ref.mean(), merged.mean());
  EXPECT_EQ(ref.variance(), merged.variance());
  EXPECT_EQ(ref.min(), merged.min());
  EXPECT_EQ(ref.max(), merged.max());
}

TEST(ShardedStats, ConcurrentAddsLoseNothing) {
  ThreadCountGuard guard;
  sim::set_thread_count(8);
  obs::ShardedStats s;
  obs::Counter c;
  constexpr int kPerChunk = 1000;
  sim::parallel_for(64, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      for (int k = 0; k < kPerChunk; ++k) {
        s.add(1.0);
        c.inc();
      }
    }
  });
  EXPECT_EQ(s.count(), 64u * kPerChunk);
  EXPECT_EQ(s.merged().mean(), 1.0);
  EXPECT_EQ(c.value(), 64u * kPerChunk);
}

TEST(OnlineStats, MergeOfDisjointShardsMatchesCombinedMoments) {
  sim::OnlineStats a, b, all;
  sim::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    (i < 250 ? a : b).add(x);
    all.add(x);
  }
  sim::OnlineStats m = a;
  m.merge(b);
  EXPECT_EQ(m.count(), all.count());
  EXPECT_NEAR(m.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(m.variance(), all.variance(), 1e-12);
  EXPECT_EQ(m.min(), all.min());
  EXPECT_EQ(m.max(), all.max());
  // Merging an empty accumulator must be an exact no-op.
  sim::OnlineStats before = m;
  m.merge(sim::OnlineStats{});
  EXPECT_EQ(before.mean(), m.mean());
  EXPECT_EQ(before.count(), m.count());
}

// ------------------------------------------------- solver component variant --

TEST(SolverComponents, MatchesGlobalSolveBitForBitAcrossThreadCounts) {
  ThreadCountGuard guard;
  sim::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 20; ++trial) {
    const int nlinks = 20 + static_cast<int>(rng.index(60));
    const int nflows = 1 + static_cast<int>(rng.index(120));
    std::vector<double> caps(static_cast<std::size_t>(nlinks));
    for (double& c : caps) c = rng.uniform(1.0, 100.0);
    std::vector<std::vector<int>> paths(static_cast<std::size_t>(nflows));
    for (auto& p : paths) {
      const int hops = 1 + static_cast<int>(rng.index(4));
      for (int h = 0; h < hops; ++h) {
        const int l = static_cast<int>(rng.index(static_cast<std::uint64_t>(nlinks)));
        if (std::find(p.begin(), p.end(), l) == p.end()) p.push_back(l);
      }
    }
    std::vector<double> weights(static_cast<std::size_t>(nflows));
    for (double& w : weights) w = rng.uniform(0.5, 4.0);

    const auto global = net::max_min_rates(caps, paths, &weights);
    for (int threads : {1, 2, 8}) {
      sim::set_thread_count(threads);
      net::SolveStats ss;
      const auto comp = net::max_min_rates_components(caps, paths, &weights, &ss);
      ASSERT_EQ(global.size(), comp.size());
      for (std::size_t f = 0; f < global.size(); ++f)
        EXPECT_EQ(global[f], comp[f])
            << "trial=" << trial << " flow=" << f << " threads=" << threads;
      EXPECT_GT(ss.iterations, 0);
    }
  }
}

// ------------------------------------------------------- determinism sweep --

// FlowSim churn digest, following the oracle pattern in test_obs.cpp, plus
// the metrics dump so snapshot determinism is asserted too.
struct ChurnDigest {
  std::vector<double> completion_times;
  std::vector<double> rates;
  std::uint64_t solver_iterations = 0;
  std::uint64_t flows_solved = 0;
  std::string metrics_text;
  std::string trace_json;

  bool operator==(const ChurnDigest&) const = default;
};

ChurnDigest run_churn() {
  obs::MetricsRegistry::instance().reset();
  obs::tracer().enable(std::size_t{1} << 14);
  obs::tracer().clear();

  ChurnDigest d;
  auto t = topo::Topology::uniform_dragonfly(8, {4, 4}, 1, 25e9, 180e-9);
  net::FabricConfig fcfg;
  fcfg.routing = net::Routing::Adaptive;
  net::Fabric fabric(std::move(t), fcfg);
  sim::Engine eng;
  net::FlowSimConfig fscfg;
  fscfg.incremental = false;  // force the full (component-parallel) path
  net::FlowSim fs(eng, fabric, fscfg);
  sim::Rng rng(4321);
  const int eps = fabric.topology().num_endpoints();
  int launched = 0;
  const int total = 150;
  std::function<void()> launch = [&] {
    if (launched >= total) return;
    ++launched;
    const int src = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
    int dst = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
    if (dst == src) dst = (dst + 1) % eps;
    fs.start(src, dst, rng.uniform(1e6, 5e8), [&] {
      d.completion_times.push_back(eng.now());
      fs.for_each_flow(
          [&](std::uint64_t, const std::vector<int>&, double, double rate) {
            d.rates.push_back(rate);
          });
      launch();
    });
  };
  for (int i = 0; i < 16; ++i) launch();
  eng.run();
  d.solver_iterations = fs.stats().solver_iterations;
  d.flows_solved = fs.stats().flows_solved;
  d.metrics_text = obs::MetricsRegistry::instance().dump_text();
  std::ostringstream os;
  obs::tracer().write_json(os);
  d.trace_json = os.str();
  obs::tracer().disable();
  obs::tracer().clear();
  return d;
}

TEST(DeterminismSweep, FlowSimChurnBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  sim::set_thread_count(1);
  const ChurnDigest base = run_churn();
  EXPECT_FALSE(base.completion_times.empty());
  EXPECT_NE(base.metrics_text.find("net.resolves"), std::string::npos);
  for (int threads : {2, 8}) {
    sim::set_thread_count(threads);
    const ChurnDigest d = run_churn();
    EXPECT_TRUE(base == d) << "threads=" << threads;
    EXPECT_EQ(base.completion_times, d.completion_times);
    EXPECT_EQ(base.rates, d.rates);
    EXPECT_EQ(base.metrics_text, d.metrics_text);
    EXPECT_EQ(base.trace_json, d.trace_json);
  }
}

// Differential oracle under the thread sweep: at every thread count the
// incremental CSR solves must still match `max_min_rates_reference` — the
// retained original implementation — bit for bit on randomized churn. This
// is the ISSUE 5 contract: the zero-allocation CSR core and the parallel
// min-share scan change how rates are computed, never what they are.
TEST(DeterminismSweep, DifferentialOracleAcrossThreadCounts) {
  ThreadCountGuard guard;
  for (int threads : {1, 2, 8}) {
    sim::set_thread_count(threads);
    sim::Engine eng;
    net::FabricConfig cfg;
    cfg.routing = net::Routing::Adaptive;
    net::Fabric fabric(topo::Topology::uniform_dragonfly(6, {4, 4}, 1, 25e9, 180e-9),
                       cfg);
    net::FlowSim fs(eng, fabric);
    sim::Rng rng(0xD1FFull + static_cast<std::uint64_t>(threads));
    const int eps = fabric.topology().num_endpoints();
    int launched = 0, completed = 0, checks = 0;
    const int total = 220;
    std::function<void()> check = [&] {
      std::vector<std::vector<int>> paths;
      std::vector<double> live;
      fs.for_each_flow([&](std::uint64_t, const std::vector<int>& p, double,
                           double rate) {
        paths.push_back(p);
        live.push_back(rate);
      });
      const auto ref =
          net::max_min_rates_reference(fabric.effective_capacities(), paths);
      ASSERT_EQ(ref.size(), live.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(live[i], ref[i])
            << "threads=" << threads << " flow index " << i;
      ++checks;
    };
    std::function<void()> launch = [&] {
      if (launched >= total) return;
      ++launched;
      const int src = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
      int dst = static_cast<int>(rng.index(static_cast<std::uint64_t>(eps)));
      if (dst == src) dst = (dst + 1) % eps;
      fs.start(src, dst, rng.uniform(1e6, 5e8), [&] {
        ++completed;
        if (completed % 7 == 0) check();
        launch();
      });
    };
    for (int i = 0; i < 24; ++i) launch();
    eng.run();
    EXPECT_EQ(completed, total);
    EXPECT_GT(checks, 20);
  }
}

TEST(DeterminismSweep, MonteCarloBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const resil::ResiliencyModel model;
  resil::JobSimConfig cfg;
  cfg.work_hours = 6.0;

  sim::set_thread_count(1);
  const auto base = resil::replay_jobs(model, 0xFEED, 200, cfg);
  const auto base_iv = model.sample_intervals_sharded(20000, 0xFACE);
  for (int threads : {2, 8}) {
    sim::set_thread_count(threads);
    const auto s = resil::replay_jobs(model, 0xFEED, 200, cfg);
    EXPECT_EQ(base.mean.wall_hours, s.mean.wall_hours) << "threads=" << threads;
    EXPECT_EQ(base.mean.efficiency, s.mean.efficiency);
    EXPECT_EQ(base.mean.lost_work_hours, s.mean.lost_work_hours);
    EXPECT_EQ(base.mean.failures, s.mean.failures);
    EXPECT_EQ(base.mean.checkpoints, s.mean.checkpoints);
    EXPECT_EQ(base.efficiency_p5, s.efficiency_p5);
    EXPECT_EQ(base.efficiency_p95, s.efficiency_p95);
    EXPECT_EQ(base_iv, model.sample_intervals_sharded(20000, 0xFACE));
  }
}

TEST(DeterminismSweep, GpcnetBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const auto m = machines::frontier();
  const auto fabric = m.build_fabric();
  mpi::GpcnetConfig cfg;
  cfg.nodes = 1200;  // full pattern mix, manageable test runtime
  cfg.latency_samples = 512;

  auto digest = [&] {
    const auto r = mpi::run_gpcnet(m, fabric, cfg);
    std::vector<double> v;
    for (const auto& met : r.isolated) {
      v.push_back(met.average);
      v.push_back(met.p99);
    }
    for (const auto& met : r.congested) {
      v.push_back(met.average);
      v.push_back(met.p99);
    }
    v.insert(v.end(), r.impact.begin(), r.impact.end());
    return v;
  };

  sim::set_thread_count(1);
  const auto base = digest();
  for (int threads : {2, 8}) {
    sim::set_thread_count(threads);
    EXPECT_EQ(base, digest()) << "threads=" << threads;
  }
}

TEST(DeterminismSweep, ShiftPatternIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  sim::set_thread_count(1);
  const auto base = net::shift_pattern(10000, 137, 5);
  for (int threads : {2, 8}) {
    sim::set_thread_count(threads);
    EXPECT_EQ(base, net::shift_pattern(10000, 137, 5)) << "threads=" << threads;
  }
}

}  // namespace
