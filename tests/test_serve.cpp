// Serving-layer tests (ISSUE 7): shared-snapshot sessions must be
// indistinguishable from private-fabric sessions — bitwise — at any thread
// count, and sibling sessions must be perfectly isolated (no route-cache or
// memo invalidation leaks across overlays). The acceptance scenario runs 64
// concurrent failure-overlay sessions over one 1,024-endpoint snapshot and
// proves isolation with counters. All of this runs under the TSan CI job,
// which doubles as the data-race check on the shared snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <sstream>
#include <vector>

#include "net/rotor.hpp"
#include "net/snapshot.hpp"
#include "obs/metrics.hpp"
#include "serve/batcher.hpp"
#include "serve/frontend.hpp"
#include "serve/session.hpp"
#include "sim/parallel.hpp"
#include "topo/topology.hpp"

// ---------------------------------------------------------------------------
// Interposed counting allocator (same harness as bench/micro_flowsim): every
// global new/new[] bumps one relaxed atomic, so the allocation-free repeated-
// scenario claim is checked against the real allocator, not a model of it.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (n + align - 1) / align * align;
  return std::aligned_alloc(align, rounded ? rounded : align);
}
}  // namespace

void* operator new(std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  if (void* p = counted_aligned_alloc(n, static_cast<std::size_t>(a))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  if (void* p = counted_aligned_alloc(n, static_cast<std::size_t>(a))) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace xscale;

struct ThreadCountGuard {
  ~ThreadCountGuard() { sim::set_thread_count(1); }
};

topo::Topology small_topology() {
  return topo::Topology::uniform_dragonfly(6, {4, 4}, 1, 25e9, 180e-9);
}

topo::Topology big_topology() {
  // The ISSUE 7 acceptance fabric: 16 x 8 x 8 = 1,024 endpoints.
  return topo::Topology::uniform_dragonfly(16, {8, 8}, 1, 25e9, 180e-9);
}

net::FabricConfig minimal_cfg() {
  net::FabricConfig cfg;
  cfg.routing = net::Routing::Minimal;  // deterministic paths
  return cfg;
}

// Session i's scenario stream: a distinct failed global bundle, a capacity
// override on its own injection link, and a small incast, then churn —
// restore, refail, repeat one scenario verbatim (warm-memo bait).
std::vector<serve::Scenario> scenario_stream(const topo::Topology& topo,
                                             int i) {
  const int ng = topo.num_groups();
  const int neps = topo.num_endpoints();
  const int gl = topo.global_link(i % ng, (i + 1) % ng);
  const int target = (i * 7) % neps;
  const auto flow = [&](int k, double bytes) {
    serve::FlowSpec f;
    f.src = (target + 1 + k) % neps;
    f.dst = target;
    f.bytes = bytes;
    return f;
  };

  serve::Scenario fail_sc;
  fail_sc.fail_links.push_back(gl);
  fail_sc.capacity_overrides.emplace_back(topo.injection_link(target),
                                          12.5e9);
  for (int k = 0; k < 5; ++k) fail_sc.flows.push_back(flow(k, 1e6));

  serve::Scenario clean_sc;  // everything restored
  for (int k = 0; k < 3; ++k) clean_sc.flows.push_back(flow(k, 2e6));

  // fail -> fail (identical, memo bait) -> clean -> fail again
  return {fail_sc, fail_sc, clean_sc, fail_sc};
}

// ISSUE 9: the rotor analogue of scenario_stream. Slot state is ordinary
// overlay capacity state, so a served "advance to slot s" is just capacity
// overrides: matching 0's links to zero, matching s's links to the active
// capacity. Session i parks in slot 1 + (i % (m-1)) and runs flows that ride
// exactly that matching, then returns to slot 0 (override-free), then back —
// the same fail/fail/clean/fail churn shape as the dragonfly stream.
std::vector<serve::Scenario> rotor_scenario_stream(const topo::Topology& topo,
                                                   int i) {
  const int n_sw = topo.num_groups();
  const int eps_per = topo.num_endpoints() / n_sw;
  const int m = topo.rotor_matchings();
  const int slot = 1 + (i % (m - 1));
  const int a = i % n_sw;
  const auto flows_via = [&](int s, double bytes) {
    // Matching s holds links a -> (a + s + 1) mod n; flows between those two
    // switches' endpoints ride it.
    std::vector<serve::FlowSpec> fl;
    const int b = (a + s + 1) % n_sw;
    for (int k = 0; k < 3; ++k) {
      serve::FlowSpec f;
      f.src = a * eps_per + k;
      f.dst = b * eps_per + k;
      f.bytes = bytes;
      fl.push_back(f);
    }
    return fl;
  };

  serve::Scenario slot_sc;  // slot `slot`: matching 0 dark, matching s live
  for (int l : topo.rotor_matching_links(0))
    slot_sc.capacity_overrides.emplace_back(l, 0.0);
  for (int l : topo.rotor_matching_links(slot))
    slot_sc.capacity_overrides.emplace_back(l, topo.rotor_active_capacity());
  slot_sc.flows = flows_via(slot, 1e6);

  serve::Scenario clean_sc;  // back to slot 0 (the snapshot's base pricing)
  clean_sc.flows = flows_via(0, 2e6);

  return {slot_sc, slot_sc, clean_sc, slot_sc};
}

using StreamFn = std::vector<serve::Scenario> (*)(const topo::Topology&, int);

std::vector<std::vector<serve::ScenarioResult>> run_shared(
    std::shared_ptr<const net::TopologySnapshot> snap, int n_sessions,
    StreamFn stream = scenario_stream) {
  serve::BatcherConfig cfg;
  cfg.max_sessions = n_sessions;
  serve::Batcher batcher(snap, cfg);
  std::vector<int> ids;
  for (int i = 0; i < n_sessions; ++i) {
    const int id = batcher.open_session();
    EXPECT_GE(id, 0);
    ids.push_back(id);
  }
  for (int i = 0; i < n_sessions; ++i)
    for (const auto& sc : stream(snap->topology(), i))
      EXPECT_TRUE(batcher.submit(ids[static_cast<std::size_t>(i)], sc));
  auto res = batcher.run_batch();
  res.resize(static_cast<std::size_t>(n_sessions));
  return res;
}

// The oracle: every session gets its own private Fabric (its own snapshot,
// its own route cache), run serially.
std::vector<std::vector<serve::ScenarioResult>> run_private(
    const topo::Topology& topo, net::FabricConfig cfg, int n_sessions,
    StreamFn stream = scenario_stream) {
  std::vector<std::vector<serve::ScenarioResult>> res(
      static_cast<std::size_t>(n_sessions));
  for (int i = 0; i < n_sessions; ++i) {
    serve::ScenarioSession session(net::make_snapshot(topo, cfg));
    for (const auto& sc : stream(topo, i))
      res[static_cast<std::size_t>(i)].push_back(session.run(sc));
  }
  return res;
}

void expect_bitwise_equal(
    const std::vector<std::vector<serve::ScenarioResult>>& a,
    const std::vector<std::vector<serve::ScenarioResult>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].size(), b[s].size()) << "session " << s;
    for (std::size_t i = 0; i < a[s].size(); ++i) {
      const auto& ra = a[s][i];
      const auto& rb = b[s][i];
      ASSERT_EQ(ra.completion_s.size(), rb.completion_s.size());
      for (std::size_t f = 0; f < ra.completion_s.size(); ++f)
        EXPECT_EQ(ra.completion_s[f], rb.completion_s[f])
            << "session " << s << " scenario " << i << " flow " << f;
      EXPECT_EQ(ra.makespan_s, rb.makespan_s) << "session " << s;
      EXPECT_EQ(ra.dropped, rb.dropped);
      EXPECT_EQ(ra.capacity_epoch, rb.capacity_epoch);
    }
  }
}

// --- differential: shared snapshot == private fabrics, any thread count ----

TEST(ServeDifferential, SharedSnapshotBitwiseEqualsPrivateFabrics) {
  ThreadCountGuard guard;
  const auto topo = small_topology();
  const auto cfg = minimal_cfg();
  const auto oracle = run_private(topo, cfg, 8);
  for (int threads : {1, 2, 8}) {
    sim::set_thread_count(threads);
    const auto got = run_shared(net::make_snapshot(topo, cfg), 8);
    expect_bitwise_equal(got, oracle);
  }
}

TEST(ServeDifferential, AdaptiveRoutingStaysDeterministicPerSession) {
  // Adaptive routing draws from the per-session FlowSim rng — still
  // per-session state, so the contract must hold there too.
  ThreadCountGuard guard;
  const auto topo = small_topology();
  const net::FabricConfig cfg;  // default: adaptive + congestion control
  const auto oracle = run_private(topo, cfg, 4);
  for (int threads : {1, 2, 8}) {
    sim::set_thread_count(threads);
    const auto got = run_shared(net::make_snapshot(topo, cfg), 4);
    expect_bitwise_equal(got, oracle);
  }
}

// --- ISSUE 7 acceptance: 64 sessions, 1,024 endpoints, zero sibling churn --

TEST(ServeAcceptance, SixtyFourSessionsOneSnapshotZeroSiblingInvalidation) {
  ThreadCountGuard guard;
  sim::set_thread_count(8);
  auto snap = net::make_snapshot(big_topology(), minimal_cfg());

  serve::BatcherConfig cfg;
  cfg.max_sessions = 64;
  serve::Batcher batcher(snap, cfg);
  std::vector<int> ids;
  for (int i = 0; i < 64; ++i) ids.push_back(batcher.open_session());
  ASSERT_EQ(batcher.open_sessions(), 64);

  // Session 0 never fails anything: it is the sibling whose caches must
  // survive the other 63 sessions' failure churn untouched.
  serve::Scenario clean;
  for (int k = 0; k < 4; ++k) {
    serve::FlowSpec f;
    f.src = 100 + k;
    f.dst = 17;
    f.bytes = 1e6;
    clean.flows.push_back(f);
  }
  const auto submit_round = [&] {
    EXPECT_TRUE(batcher.submit(ids[0], clean));
    for (int i = 1; i < 64; ++i)
      for (const auto& sc : scenario_stream(snap->topology(), i))
        EXPECT_TRUE(batcher.submit(ids[static_cast<std::size_t>(i)], sc));
  };

  submit_round();
  auto first = batcher.run_batch();

  // Sibling isolation, proven by counters. Session 0's routes were cached
  // during the first round; 63 sessions of fail/restore churn ran since. In
  // the old design every fail_link reset the whole route cache, so this solo
  // re-run would miss on every flow — now it must be served entirely from
  // the shared cache: zero new misses.
  const auto miss_before =
      obs::metrics().counter("net.route_cache.miss").value();
  EXPECT_TRUE(batcher.submit(ids[0], clean));
  auto solo = batcher.run_batch();
  const auto miss_after =
      obs::metrics().counter("net.route_cache.miss").value();
  EXPECT_EQ(miss_before, miss_after)
      << "sibling churn must not invalidate the shared route cache";
  const auto& solo_res = solo[static_cast<std::size_t>(ids[0])];
  ASSERT_EQ(solo_res.size(), 1u);
  //  - session 0 never mutated its overlay: epoch pinned at 0;
  //  - no session ever saw its warm memo invalidated by someone else's
  //    fail/restore: the stale counter can only move when the session's OWN
  //    epoch moves, and session 0's never did.
  EXPECT_EQ(batcher.session(ids[0])->fabric().capacity_epoch(), 0u);
  EXPECT_EQ(batcher.session(ids[0])->flowsim().stats().warm_memo_stale, 0u);
  // And the repeat is bitwise-stable.
  EXPECT_EQ(first[static_cast<std::size_t>(ids[0])][0].makespan_s,
            solo_res[0].makespan_s);

  // The failure sessions did real overlay work (their own epochs moved) —
  // the isolation above is not vacuous.
  EXPECT_GT(batcher.session(ids[1])->fabric().capacity_epoch(), 0u);
  EXPECT_GT(batcher.session(ids[1])->fabric().failed_links(), 0);
}

// --- ISSUE 9: rotor fabrics under the serving layer ------------------------

topo::Topology rotor_topology() {
  // 6 single-switch groups x 4 endpoints, full coverage (5 matchings).
  return topo::Topology::rotor(6, 4, 5, 100e-6, 0.9, 25e9, 180e-9);
}

// The full serving differential extends to rotor fabrics unchanged: shared
// snapshot + COW overlays bitwise-equals private fabrics at every thread
// count, with slot state served as ordinary capacity overrides.
TEST(ServeRotor, SharedSnapshotBitwiseEqualsPrivateFabrics) {
  ThreadCountGuard guard;
  const auto topo = rotor_topology();
  const auto cfg = minimal_cfg();
  const auto oracle = run_private(topo, cfg, 8, rotor_scenario_stream);
  for (int threads : {1, 2, 8}) {
    sim::set_thread_count(threads);
    const auto got =
        run_shared(net::make_snapshot(topo, cfg), 8, rotor_scenario_stream);
    expect_bitwise_equal(got, oracle);
  }
}

// Sibling isolation under slot churn, at the serving layer: while other
// sessions rotate their live matching scenario after scenario, a session
// parked in slot 0 must see zero route-cache misses, zero epoch movement and
// zero warm-memo invalidation — slot state is overlay state, so the PR 7
// isolation contract covers it with no new machinery.
TEST(ServeRotor, SlotChurnSessionsLeaveSiblingUntouched) {
  ThreadCountGuard guard;
  sim::set_thread_count(8);
  auto snap = net::make_snapshot(rotor_topology(), minimal_cfg());

  serve::BatcherConfig cfg;
  cfg.max_sessions = 8;
  serve::Batcher batcher(snap, cfg);
  std::vector<int> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(batcher.open_session());

  // Session 0 stays in slot 0 forever: flows riding matching 0, no overrides.
  const auto clean = rotor_scenario_stream(snap->topology(), 0)[2];
  const auto submit_round = [&] {
    EXPECT_TRUE(batcher.submit(ids[0], clean));
    for (int i = 1; i < 8; ++i)
      for (const auto& sc : rotor_scenario_stream(snap->topology(), i))
        EXPECT_TRUE(batcher.submit(ids[static_cast<std::size_t>(i)], sc));
  };
  submit_round();
  auto first = batcher.run_batch();

  const auto miss_before =
      obs::metrics().counter("net.route_cache.miss").value();
  EXPECT_TRUE(batcher.submit(ids[0], clean));
  auto solo = batcher.run_batch();
  const auto miss_after =
      obs::metrics().counter("net.route_cache.miss").value();
  EXPECT_EQ(miss_before, miss_after)
      << "sibling slot churn must not invalidate the shared route cache";
  EXPECT_EQ(batcher.session(ids[0])->fabric().capacity_epoch(), 0u);
  EXPECT_EQ(batcher.session(ids[0])->flowsim().stats().warm_memo_stale, 0u);
  // Bitwise-stable repeat for the slot-0 sibling.
  const auto& solo_res = solo[static_cast<std::size_t>(ids[0])];
  ASSERT_EQ(solo_res.size(), 1u);
  EXPECT_EQ(first[static_cast<std::size_t>(ids[0])][0].makespan_s,
            solo_res[0].makespan_s);
  // The churners really rotated (epochs moved) — isolation is not vacuous.
  EXPECT_GT(batcher.session(ids[1])->fabric().capacity_epoch(), 0u);
}

// The acceptance criterion verbatim: a real RotorSchedule driving slot
// transitions on one overlay must leave a sibling fabric on the SAME shared
// snapshot completely untouched — sibling epoch pinned at 0 and zero new
// route-cache misses, because a transition re-prices links without ever
// re-steering a route.
TEST(ServeRotor, RotorScheduleChurnDoesNotInvalidateSiblingFabric) {
  auto snap = net::make_snapshot(rotor_topology(), minimal_cfg());
  net::Fabric churner(snap);
  net::Fabric sibling(snap);
  const double slot = snap->topology().rotor_slot_s();
  const int eps_per = 4;

  // Warm the sibling: flows between adjacent switches (matching 0, live at
  // the snapshot's base slot 0), run to completion.
  const auto run_sibling = [&] {
    sim::Engine eng;
    net::FlowSim fs(eng, sibling, {});
    double makespan = 0;
    for (int a = 0; a < 6; ++a)
      for (int k = 0; k < eps_per; ++k)
        fs.start(a * eps_per + k, ((a + 1) % 6) * eps_per + k, 1e6,
                 [&] { makespan = eng.now(); });
    eng.run();
    return makespan;
  };
  const double warm_makespan = run_sibling();
  const auto miss_before =
      obs::metrics().counter("net.route_cache.miss").value();

  // Churn: a live RotorSchedule walks the churner's overlay through > 20
  // slot transitions with traffic in flight.
  {
    sim::Engine eng;
    net::FlowSim fs(eng, churner, {});
    net::RotorSchedule rotor(eng, churner, &fs);
    rotor.start();
    eng.schedule_in(20.5 * slot, [] {});
    eng.run();
    EXPECT_GE(rotor.transitions(), 20u);
    EXPECT_GT(churner.capacity_epoch(), 0u);
  }

  // The sibling saw none of it: epoch pinned, cache fully warm, results
  // bitwise identical to the pre-churn run.
  EXPECT_EQ(sibling.capacity_epoch(), 0u);
  const double makespan_after = run_sibling();
  EXPECT_EQ(obs::metrics().counter("net.route_cache.miss").value(),
            miss_before)
      << "rotor slot transitions invalidated the shared route cache";
  EXPECT_EQ(makespan_after, warm_makespan);
}

// --- admission control + backpressure --------------------------------------

TEST(ServeBatcher, AdmissionControlRejectsPastCapacity) {
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  serve::BatcherConfig cfg;
  cfg.max_sessions = 2;
  serve::Batcher batcher(snap, cfg);
  const auto rejected_before =
      obs::metrics().counter("serve.sessions_rejected").value();
  const int a = batcher.open_session();
  const int b = batcher.open_session();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, 0);
  EXPECT_EQ(batcher.open_session(), -1);
  EXPECT_EQ(obs::metrics().counter("serve.sessions_rejected").value(),
            rejected_before + 1);
  // Close frees a slot; a reopened session starts cold but is admitted.
  EXPECT_TRUE(batcher.close_session(a));
  EXPECT_FALSE(batcher.close_session(a));  // double close is a no-op
  EXPECT_GE(batcher.open_session(), 0);
}

TEST(ServeBatcher, SubmitBackpressureAndInvalidSession) {
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  serve::BatcherConfig cfg;
  cfg.max_pending = 2;
  serve::Batcher batcher(snap, cfg);
  const int id = batcher.open_session();
  serve::Scenario sc;
  serve::FlowSpec f;
  f.src = 0;
  f.dst = 5;
  f.bytes = 1e6;
  sc.flows.push_back(f);
  EXPECT_TRUE(batcher.submit(id, sc));
  EXPECT_TRUE(batcher.submit(id, sc));
  EXPECT_FALSE(batcher.submit(id, sc)) << "queue bound must backpressure";
  EXPECT_FALSE(batcher.submit(id + 99, sc)) << "unknown session must reject";
  EXPECT_EQ(batcher.pending(), 2u);
  auto res = batcher.run_batch();
  EXPECT_EQ(batcher.pending(), 0u);
  ASSERT_EQ(res[static_cast<std::size_t>(id)].size(), 2u);
  EXPECT_TRUE(batcher.submit(id, sc)) << "drained queue accepts again";
}

TEST(ServeBatcher, MalformedScenarioFailsAloneAndKeepsSessionUsable) {
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  serve::Batcher batcher(snap);
  const int id = batcher.open_session();
  serve::Scenario bad;
  serve::FlowSpec f;
  f.src = 0;
  f.dst = 0;  // src == dst: invalid
  f.bytes = 1e6;
  bad.flows.push_back(f);
  serve::Scenario good;
  f.dst = 3;
  good.flows.push_back(f);
  EXPECT_TRUE(batcher.submit(id, bad));
  EXPECT_TRUE(batcher.submit(id, good));
  auto res = batcher.run_batch();
  ASSERT_EQ(res[static_cast<std::size_t>(id)].size(), 2u);
  EXPECT_LT(res[static_cast<std::size_t>(id)][0].makespan_s, 0)
      << "malformed scenario reports the sentinel";
  EXPECT_GT(res[static_cast<std::size_t>(id)][1].makespan_s, 0)
      << "the session survives and serves the next scenario";
}

// --- session semantics ------------------------------------------------------

TEST(ServeSession, RepeatedScenarioIsDiffAppliedAndEpochStable) {
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  serve::ScenarioSession session(snap);
  const auto stream = scenario_stream(snap->topology(), 1);
  const auto r1 = session.run(stream[0]);
  const auto r2 = session.run(stream[0]);  // identical, back to back
  // Identical scenario => overlay diff is empty => same epoch (no fail or
  // restore actually ran), so nothing keyed on the epoch was invalidated,
  // and the repeat is bitwise-stable.
  EXPECT_EQ(r1.capacity_epoch, r2.capacity_epoch);
  EXPECT_EQ(r1.makespan_s, r2.makespan_s);
  ASSERT_EQ(r1.completion_s.size(), r2.completion_s.size());
  for (std::size_t i = 0; i < r1.completion_s.size(); ++i)
    EXPECT_EQ(r1.completion_s[i], r2.completion_s[i]);
  EXPECT_EQ(r2.stats.warm_memo_stale, 0u);
}

TEST(ServeSession, RepeatedScenarioIsAllocationFreeAndReusesScratch) {
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  // warm_start off: every resolve takes the full-solve path through
  // solve_component — the one site that feeds `net.solver.scratch_reuse` —
  // so the counter proves the per-session SolveScratch (and the component
  // CSR/caps/rates arenas around it) survives across scenarios instead of
  // being rebuilt per resolve.
  net::FlowSimConfig cfg = serve::ScenarioSession::default_sim_config();
  cfg.warm_start = false;
  serve::ScenarioSession session(snap, cfg);
  const auto stream = scenario_stream(snap->topology(), 2);
  const serve::Scenario& sc = stream[0];

  serve::ScenarioResult out;
  for (int k = 0; k < 3; ++k) session.run(sc, out);  // warm every arena

  auto& reuse = obs::metrics().counter("net.solver.scratch_reuse");
  const std::uint64_t reuse0 = reuse.value();
  const std::uint64_t a0 = heap_allocs();
  constexpr int kRepeats = 8;
  for (int k = 0; k < kRepeats; ++k) session.run(sc, out);
  const std::uint64_t a1 = heap_allocs();
  const std::uint64_t reuse1 = reuse.value();

  EXPECT_EQ(a1 - a0, 0u)
      << "a warmed session must answer a repeated scenario with zero heap "
         "allocations: scheduled closures must fit std::function's buffer "
         "and all scratch must be session-lifetime";
  EXPECT_GE(reuse1 - reuse0, static_cast<std::uint64_t>(kRepeats))
      << "each repeated scenario must reuse the session's solver scratch at "
         "least once";
}

TEST(ServeSession, DropsFlowsThatOnlyCrossFailedTerminalLinks) {
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  serve::ScenarioSession session(snap);
  serve::Scenario sc;
  sc.fail_links.push_back(snap->topology().ejection_link(9));
  serve::FlowSpec f;
  f.src = 2;
  f.dst = 9;
  f.bytes = 1e6;
  sc.flows.push_back(f);
  f.dst = 11;
  sc.flows.push_back(f);
  const auto r = session.run(sc);
  EXPECT_EQ(r.dropped, 1u);
  EXPECT_EQ(r.completion_s[0], -1.0) << "flow into the dead NIC is dropped";
  EXPECT_GT(r.completion_s[1], 0.0) << "unrelated flow completes";
}

TEST(ServeSession, RejectsMalformedScenariosWithoutTouchingState) {
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  serve::ScenarioSession session(snap);
  serve::Scenario sc;
  serve::FlowSpec f;
  f.src = 0;
  f.dst = 1;
  f.bytes = -5;  // invalid
  sc.flows.push_back(f);
  EXPECT_THROW(session.run(sc), std::invalid_argument);
  EXPECT_EQ(session.fabric().capacity_epoch(), 0u);
  sc.flows[0].bytes = 1e6;
  sc.fail_links.push_back(1 << 28);  // out of range
  EXPECT_THROW(session.run(sc), std::invalid_argument);
  EXPECT_EQ(session.fabric().capacity_epoch(), 0u);
  sc.fail_links.clear();
  EXPECT_GT(session.run(sc).makespan_s, 0.0) << "session still healthy";
}

TEST(ServeSession, MidRunSolverErrorLeavesSessionReusable) {
  // Regression: capacity override *values* are deliberately unvalidated, so
  // the solver throws mid-run. The queued flow-start/completion events
  // captured that run's stack-local result; before the fix they survived the
  // throw and fired on the next run through the dangling reference
  // (use-after-free, caught by ASan). Now the engine + sim are rebuilt on the
  // way out and the session serves the next scenario cleanly.
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  serve::ScenarioSession session(snap);
  serve::FlowSpec f;
  f.src = 5;
  f.dst = 9;
  f.bytes = 1e6;
  serve::Scenario bad;
  bad.capacity_overrides.emplace_back(snap->topology().injection_link(5),
                                      -1.0);  // solver rejects at resolve
  bad.flows.push_back(f);
  EXPECT_THROW(session.run(bad), std::invalid_argument);

  serve::Scenario good;
  good.flows.push_back(f);
  good.flows.push_back(f);  // two flows: leftover events would skew these
  const auto r = session.run(good);
  ASSERT_EQ(r.completion_s.size(), 2u);
  EXPECT_GT(r.makespan_s, 0.0) << "session reusable after mid-run throw";
  EXPECT_GT(r.completion_s[0], 0.0);
  EXPECT_GT(r.completion_s[1], 0.0);
  EXPECT_EQ(r.dropped, 0u);

  // And the result matches a fresh session that never saw the bad scenario:
  // nothing from the aborted run leaked into the replay.
  serve::ScenarioSession fresh(snap);
  const auto rf = fresh.run(good);
  EXPECT_EQ(r.makespan_s, rf.makespan_s);
  EXPECT_EQ(r.completion_s[0], rf.completion_s[0]);
  EXPECT_EQ(r.completion_s[1], rf.completion_s[1]);
}

TEST(ServeBatcher, MidRunRoutingErrorIsIsolatedPerScenario) {
  // A scenario can pass validation (all link ids in range) yet fail *inside*
  // the run: cutting every global bundle out of a group leaves routing with
  // no direct bundle and no one-intermediate-group detour, which throws
  // std::runtime_error. run_batch must isolate it like any other scenario
  // error — sentinel result, session and siblings live, queues drained.
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  const auto& topo = snap->topology();
  serve::Batcher batcher(snap);
  const int a = batcher.open_session();
  const int b = batcher.open_session();

  int dst_other_group = -1;
  for (int e = 0; e < topo.num_endpoints(); ++e) {
    if (topo.group_of_switch(topo.endpoint_switch(e)) != 0) {
      dst_other_group = e;
      break;
    }
  }
  ASSERT_GE(dst_other_group, 0);

  serve::FlowSpec f;
  f.src = 0;  // group 0
  f.dst = dst_other_group;
  f.bytes = 1e6;
  serve::Scenario cut;  // group 0 fully disconnected
  for (int g = 1; g < topo.num_groups(); ++g)
    cut.fail_links.push_back(topo.global_link(0, g));
  cut.flows.push_back(f);
  serve::Scenario good;
  good.flows.push_back(f);

  EXPECT_TRUE(batcher.submit(a, cut));
  EXPECT_TRUE(batcher.submit(a, good));
  EXPECT_TRUE(batcher.submit(b, good));
  const auto failed_before =
      obs::metrics().counter("serve.scenarios_failed").value();
  auto res = batcher.run_batch();  // must not throw
  ASSERT_EQ(res[static_cast<std::size_t>(a)].size(), 2u);
  EXPECT_LT(res[static_cast<std::size_t>(a)][0].makespan_s, 0)
      << "routing failure reports the sentinel";
  EXPECT_GT(res[static_cast<std::size_t>(a)][1].makespan_s, 0)
      << "the session survives the mid-run throw";
  ASSERT_EQ(res[static_cast<std::size_t>(b)].size(), 1u);
  EXPECT_GT(res[static_cast<std::size_t>(b)][0].makespan_s, 0)
      << "sibling session unaffected";
  EXPECT_EQ(batcher.pending(), 0u) << "queues drained, gauges consistent";
  EXPECT_EQ(obs::metrics().counter("serve.scenarios_failed").value(),
            failed_before + 1);
}

// --- frontend ---------------------------------------------------------------

TEST(ServeFrontend, LineProtocolEndToEnd) {
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  serve::BatcherConfig cfg;
  cfg.max_sessions = 2;
  serve::Batcher batcher(snap, cfg);
  serve::Frontend frontend(batcher);

  const int gl = snap->topology().global_link(0, 1);
  std::ostringstream script;
  script << "OPEN\n"
         << "OPEN\n"
         << "OPEN\n"  // third must hit admission control
         << "FAIL 0 " << gl << "\n"
         << "FLOW 0 1 20 1000000\n"
         << "FLOW 1 2 30 1000000 0.5\n"
         << "SUBMIT 0\n"
         << "SUBMIT 1\n"
         << "RUN\n"
         << "BOGUS\n"
         << "CLOSE 1\n"
         << "QUIT\n";
  std::istringstream in(script.str());
  std::ostringstream out;
  frontend.serve(in, out);

  const std::string text = out.str();
  EXPECT_NE(text.find("OK 0\n"), std::string::npos);
  EXPECT_NE(text.find("OK 1\n"), std::string::npos);
  EXPECT_NE(text.find("ERR at-capacity"), std::string::npos);
  EXPECT_NE(text.find("RESULT 0 0 "), std::string::npos);
  EXPECT_NE(text.find("RESULT 1 0 "), std::string::npos);
  EXPECT_NE(text.find("ERR unknown-command BOGUS"), std::string::npos);
  // QUIT answered and loop exited (serve returned before we got here).
  EXPECT_EQ(batcher.open_sessions(), 1);
}

TEST(ServeFrontend, SubmitKeepsStagedStateOnRejection) {
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  serve::BatcherConfig cfg;
  cfg.max_pending = 1;
  serve::Batcher batcher(snap, cfg);
  serve::Frontend frontend(batcher);
  std::ostringstream setup;
  EXPECT_TRUE(frontend.handle_line("OPEN", setup));

  // Nothing staged: SUBMIT must be an error, not an empty-scenario enqueue.
  std::ostringstream empty;
  EXPECT_TRUE(frontend.handle_line("SUBMIT 0", empty));
  EXPECT_NE(empty.str().find("ERR nothing-staged"), std::string::npos);
  EXPECT_EQ(batcher.pending(), 0u);

  // Fill the queue (max_pending = 1), then stage a second scenario and hit
  // backpressure: the staged FLOW must survive for retry.
  EXPECT_TRUE(frontend.handle_line("FLOW 0 1 20 1000000", setup));
  EXPECT_TRUE(frontend.handle_line("SUBMIT 0", setup));
  EXPECT_TRUE(frontend.handle_line("FLOW 0 2 30 1000000", setup));
  std::ostringstream rejected;
  EXPECT_TRUE(frontend.handle_line("SUBMIT 0", rejected));
  EXPECT_NE(rejected.str().find("ERR backpressure"), std::string::npos);

  std::ostringstream drain;
  EXPECT_TRUE(frontend.handle_line("RUN", drain));
  std::ostringstream retry;
  EXPECT_TRUE(frontend.handle_line("SUBMIT 0", retry));
  EXPECT_NE(retry.str().find("OK"), std::string::npos)
      << "retry after drain must succeed with the staged scenario intact";
  std::ostringstream run2;
  EXPECT_TRUE(frontend.handle_line("RUN", run2));
  // The retried scenario still carried its flow: a non-trivial makespan.
  const std::string text = run2.str();
  const auto pos = text.find("RESULT 0 0 ");
  ASSERT_NE(pos, std::string::npos);
  double makespan = -1;
  std::istringstream(text.substr(pos + 11)) >> makespan;
  EXPECT_GT(makespan, 0.0)
      << "backpressure must not have destroyed the staged flow";
}

TEST(ServeFrontend, MetricsCommandListsServeCounters) {
  auto snap = net::make_snapshot(small_topology(), minimal_cfg());
  serve::Batcher batcher(snap);
  serve::Frontend frontend(batcher);
  std::ostringstream out;
  EXPECT_TRUE(frontend.handle_line("OPEN", out));
  EXPECT_TRUE(frontend.handle_line("METRICS", out));
  EXPECT_NE(out.str().find("METRIC serve.sessions_opened"), std::string::npos);
}

}  // namespace
