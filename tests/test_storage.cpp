// Tests for the storage subsystem: node-local NVMe, Orion tiers, PFL
// placement, and the fabric-coupled campaign.
#include <gtest/gtest.h>

#include "hw/node.hpp"
#include "machines/machine.hpp"
#include "storage/campaign.hpp"
#include "storage/nvme.hpp"
#include "storage/orion.hpp"

namespace {

using namespace xscale;
using namespace xscale::units;
using storage::Orion;
using storage::Tier;

storage::NodeLocalNvme frontier_nvme() {
  return storage::NodeLocalNvme(hw::bard_peak().nvme);
}

TEST(Nvme, MeasuredRatesMatchSection431) {
  const auto d = frontier_nvme();
  EXPECT_NEAR(d.measured_read_bw() / 1e9, 7.1, 0.01);
  EXPECT_NEAR(d.measured_write_bw() / 1e9, 4.2, 0.01);
  EXPECT_NEAR(d.measured_iops() / 1e6, 1.58, 0.01);
}

TEST(Nvme, FullSystemAggregates) {
  const auto agg = storage::aggregate(frontier_nvme(), 9472);
  EXPECT_NEAR(agg.read_bw / 1e12, 67.3, 0.3);   // §4.3.1
  EXPECT_NEAR(agg.write_bw / 1e12, 39.8, 0.3);
  EXPECT_NEAR(agg.iops / 1e9, 15.0, 0.1);
}

TEST(Nvme, SmallRandomReadsAreIopsBound) {
  const auto d = frontier_nvme();
  const double t_rand = d.io_time(GiB(1), KiB(4), true, true);
  const double t_seq = d.io_time(GiB(1), MiB(1), true, false);
  EXPECT_GT(t_rand, t_seq * 1.05);
  // 4 KiB random read throughput = iops * 4 KiB.
  EXPECT_NEAR(d.throughput(KiB(4), true, true), d.measured_iops() * KiB(4), 1.0);
}

TEST(Nvme, WritesSlowerThanReads) {
  const auto d = frontier_nvme();
  EXPECT_GT(d.measured_read_bw(), d.measured_write_bw());
}

TEST(Orion, Table2Capacities) {
  const Orion o;
  EXPECT_NEAR(o.usable_capacity(Tier::Metadata) / PB(1), 10.0, 0.1);
  EXPECT_NEAR(o.usable_capacity(Tier::Performance) / PB(1), 11.5, 0.3);
  EXPECT_NEAR(o.usable_capacity(Tier::Capacity) / PB(1), 679.0, 10.0);
}

TEST(Orion, Table2Bandwidths) {
  const Orion o;
  EXPECT_NEAR(o.theoretical_read_bw(Tier::Performance) / 1e12, 10.0, 0.1);
  EXPECT_NEAR(o.theoretical_write_bw(Tier::Performance) / 1e12, 10.0, 0.1);
  EXPECT_NEAR(o.theoretical_read_bw(Tier::Capacity) / 1e12, 5.5, 0.1);
  EXPECT_NEAR(o.theoretical_write_bw(Tier::Capacity) / 1e12, 4.6, 0.1);
  EXPECT_NEAR(o.theoretical_read_bw(Tier::Metadata) / 1e12, 0.8, 0.01);
  EXPECT_NEAR(o.theoretical_write_bw(Tier::Metadata) / 1e12, 0.4, 0.01);
}

TEST(Orion, MeasuredRatesMatchSection432) {
  const Orion o;
  EXPECT_NEAR(o.measured_read_bw(Tier::Performance) / 1e12, 11.7, 0.2);
  EXPECT_NEAR(o.measured_write_bw(Tier::Performance) / 1e12, 9.4, 0.2);
  EXPECT_NEAR(o.measured_read_bw(Tier::Capacity) / 1e12, 4.9, 0.1);
  EXPECT_NEAR(o.measured_write_bw(Tier::Capacity) / 1e12, 4.3, 0.2);
}

TEST(Orion, PflSplitBoundaries) {
  const Orion o;
  // Tiny file: all DoM.
  auto s = o.pfl_split(KiB(100));
  EXPECT_DOUBLE_EQ(s.metadata, KiB(100));
  EXPECT_DOUBLE_EQ(s.performance, 0);
  EXPECT_DOUBLE_EQ(s.capacity, 0);
  EXPECT_TRUE(o.served_from_dom(KiB(100)));
  // Mid file: DoM + performance tier.
  s = o.pfl_split(MiB(4));
  EXPECT_DOUBLE_EQ(s.metadata, KiB(256));
  EXPECT_DOUBLE_EQ(s.performance, MiB(4) - KiB(256));
  EXPECT_DOUBLE_EQ(s.capacity, 0);
  // Large file: mostly capacity.
  s = o.pfl_split(GiB(1));
  EXPECT_DOUBLE_EQ(s.capacity, GiB(1) - MiB(8));
  EXPECT_DOUBLE_EQ(s.total(), GiB(1));
}

TEST(Orion, TierOfOffsetConsistentWithSplit) {
  const Orion o;
  EXPECT_EQ(o.tier_of_offset(0), Tier::Metadata);
  EXPECT_EQ(o.tier_of_offset(KiB(256)), Tier::Performance);
  EXPECT_EQ(o.tier_of_offset(MiB(8)), Tier::Capacity);
  EXPECT_EQ(o.tier_of_offset(TB(1)), Tier::Capacity);
}

TEST(Orion, HbmIngestTakesAbout180Seconds) {
  // §4.3.2: ~700 TiB (~776 TB, 15% of HBM) ingested in ~180 s.
  const Orion o;
  const double t = o.ingest_time(TB(776), 9408);
  EXPECT_NEAR(t, 180.0, 20.0);
}

TEST(Orion, SmallFilesFasterViaDomThanViaOst) {
  const Orion o;
  const double dom = o.small_file_read_time(KiB(200), 1000);
  // The same file forced through an OST costs one extra round-trip.
  Orion no_dom{[] {
    storage::OrionConfig c;
    c.dom_boundary = 0;
    return c;
  }()};
  const double ost = no_dom.small_file_read_time(KiB(200), 1000);
  EXPECT_LT(dom, ost);
}

TEST(Orion, CampaignBwCappedByClientInjection) {
  const Orion o;
  // One client cannot exceed its injection bandwidth no matter the tier.
  const double bw = o.campaign_bw(GiB(1), 1, /*read=*/true);
  EXPECT_LE(bw, GBs(100) * 0.7 * 1.001);
}

TEST(Orion, SmallFileCampaignLandsOnFlashRates) {
  const Orion o;
  // Files below 8 MiB never touch the capacity tier; aggregate approaches the
  // flash tier's measured rate with enough clients.
  const double bw = o.campaign_bw(MiB(7), 9408, /*read=*/true);
  EXPECT_GT(bw / 1e12, 8.0);
  // Slightly above the flash tier's 11.7 TB/s because the DoM fraction is
  // served concurrently by the MDTs.
  EXPECT_LE(bw / 1e12, 12.5);
}

TEST(FabricCampaign, CapacityTierIsDiskBoundAtFullScale) {
  const auto m = machines::frontier();
  auto fabric = m.build_fabric();
  const Orion o;
  const auto r = storage::fabric_campaign(m, fabric, o, 9408, Tier::Capacity,
                                          /*read=*/false);
  // Aggregate lands at the capacity tier's measured write rate — the fabric
  // (74 x 5 bundles of 50 GB/s = 18.5 TB/s) is not the bottleneck.
  EXPECT_NEAR(r.aggregate_bw / 1e12, 4.3, 0.5);
  EXPECT_LT(r.network_limited_fraction, 0.35);
}

TEST(FabricCampaign, FewClientsAreNetworkBound) {
  const auto m = machines::frontier();
  auto fabric = m.build_fabric();
  const Orion o;
  // 8 clients (one compute group, against 4 OSS in one storage group) are
  // limited by NICs and the single compute->storage bundle — far below the
  // flash tier's capability, and partly network-limited.
  const auto r =
      storage::fabric_campaign(m, fabric, o, 8, Tier::Performance, /*read=*/true);
  EXPECT_LT(r.aggregate_bw, 0.05 * o.measured_read_bw(Tier::Performance));
  EXPECT_GT(r.network_limited_fraction, 0.3);
  EXPECT_LE(r.per_client_bw, 17.6e9);
}

}  // namespace
