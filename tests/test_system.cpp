// Tests for scheduler, power, and resiliency models.
#include <gtest/gtest.h>

#include <set>

#include "power/power.hpp"
#include "resil/resiliency.hpp"
#include "sched/slurm.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "storage/orion.hpp"

namespace {

using namespace xscale;

// ---------------------------------------------------------------- sched -----

TEST(Scheduler, ExclusiveAllocation) {
  sched::Scheduler s(256, 128);
  auto a = s.allocate(100);
  ASSERT_TRUE(a.has_value());
  auto b = s.allocate(200);
  EXPECT_FALSE(b.has_value());  // only 156 free
  s.release(*a);
  EXPECT_TRUE(s.allocate(200).has_value());
}

TEST(Scheduler, NoNodeInTwoJobs) {
  sched::Scheduler s(512, 128);
  auto a = s.allocate(200);
  auto b = s.allocate(200);
  ASSERT_TRUE(a && b);
  std::set<int> seen(a->nodes.begin(), a->nodes.end());
  for (int n : b->nodes) EXPECT_FALSE(seen.count(n)) << n;
}

TEST(Scheduler, ChecknodeDrainsUnhealthyNodes) {
  sched::Scheduler s(128, 128);
  for (int n = 0; n < 8; ++n) s.set_healthy(n, false);
  EXPECT_EQ(s.healthy_nodes(), 120);
  auto a = s.allocate(120);
  ASSERT_TRUE(a.has_value());
  for (int n : a->nodes) EXPECT_GE(n, 8);
  EXPECT_FALSE(s.allocate(1).has_value());
}

TEST(Scheduler, SmallJobPacksIntoOneGroup) {
  sched::Scheduler s(1024, 128);
  auto a = s.allocate(64);  // Auto -> Pack
  ASSERT_TRUE(a.has_value());
  std::set<int> groups;
  for (int n : a->nodes) groups.insert(n / 128);
  EXPECT_EQ(groups.size(), 1u);
}

TEST(Scheduler, LargeJobSpreadsAcrossAllGroups) {
  sched::Scheduler s(1024, 128);
  auto a = s.allocate(512);  // Auto -> Spread
  ASSERT_TRUE(a.has_value());
  std::set<int> groups;
  for (int n : a->nodes) groups.insert(n / 128);
  EXPECT_EQ(groups.size(), 8u);  // 64 nodes in each of 8 groups
}

TEST(Scheduler, VnisAreUniqueAcrossConcurrentJobs) {
  sched::Scheduler s(1024, 128);
  std::set<std::uint16_t> vnis;
  for (int i = 0; i < 8; ++i) {
    auto a = s.allocate(64);
    ASSERT_TRUE(a.has_value());
    EXPECT_TRUE(vnis.insert(a->vni).second);
    EXPECT_NE(a->vni, 0);  // VNI 0 reserved
  }
}

TEST(Scheduler, PackPrefersTightestFittingGroup) {
  sched::Scheduler s(384, 128);  // 3 groups
  auto big = s.allocate(100, sched::Placement::Pack);    // group A: 28 left
  auto mid = s.allocate(60, sched::Placement::Pack);     // group B: 68 left
  ASSERT_TRUE(big && mid);
  // A 20-node job fits in group A's remainder — best fit should use it.
  auto small = s.allocate(20, sched::Placement::Pack);
  ASSERT_TRUE(small.has_value());
  std::set<int> groups;
  for (int n : small->nodes) groups.insert(n / 128);
  EXPECT_EQ(groups.size(), 1u);
  EXPECT_EQ(*groups.begin(), big->nodes.front() / 128);
}

TEST(Scheduler, WorkloadFcfsWithBackfill) {
  sched::Scheduler s(256, 128);
  sim::Engine eng;
  // Job 0 takes most of the machine for 100 s; job 1 needs all of it and must
  // wait; job 2 is small enough to backfill into the 16 idle nodes.
  std::vector<sched::JobRequest> jobs{
      {240, 100.0, sched::Placement::Auto},
      {256, 50.0, sched::Placement::Auto},
      {16, 10.0, sched::Placement::Auto},
  };
  auto rec = s.run_workload(eng, jobs);
  EXPECT_DOUBLE_EQ(rec[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(rec[1].start_time, 100.0);
  EXPECT_DOUBLE_EQ(rec[2].start_time, 0.0);  // backfilled immediately
  EXPECT_GT(s.last_utilization(), 0.5);
}

TEST(Scheduler, WorkloadRecordsConsistent) {
  sched::Scheduler s(512, 128);
  sim::Engine eng;
  std::vector<sched::JobRequest> jobs;
  for (int i = 0; i < 20; ++i)
    jobs.push_back({32 + 32 * (i % 5), 10.0 + i, sched::Placement::Auto});
  auto rec = s.run_workload(eng, jobs);
  for (const auto& r : rec) {
    EXPECT_GE(r.start_time, r.submit_time);
    EXPECT_NEAR(r.end_time - r.start_time, r.request.duration_s, 1e-9);
    EXPECT_EQ(static_cast<int>(r.nodes.size()), r.request.nodes);
  }
  EXPECT_EQ(s.free_nodes(), 512);  // everything released
}

TEST(Scheduler, TruncatedWorkloadKeepsUtilizationSane) {
  // Regression: busy node-seconds used to be credited at job *start* for the
  // full requested duration, so truncating mid-job reported utilization > 1.
  sched::Scheduler s(256, 128);
  sim::Engine eng;
  std::vector<sched::JobRequest> jobs{
      {256, 1000.0, sched::Placement::Auto},  // whole machine, 1000 s
      {256, 1000.0, sched::Placement::Auto},  // queued behind it
  };
  auto rec = s.run_workload(eng, jobs, /*run_until=*/100.0);
  // Job 0 ran 100 of its 1000 s; job 1 never started.
  EXPECT_DOUBLE_EQ(rec[0].start_time, 0.0);
  EXPECT_DOUBLE_EQ(rec[0].end_time, 100.0);
  EXPECT_DOUBLE_EQ(rec[1].start_time, -1.0);
  EXPECT_LE(s.last_utilization(), 1.0);
  EXPECT_NEAR(s.last_utilization(), 1.0, 1e-9);  // machine was fully busy
  EXPECT_EQ(s.free_nodes(), 256);  // truncated allocations are released
  // The truncated completion event must not linger in the engine (it
  // captures run_workload's stack frame).
  EXPECT_EQ(eng.pending_events(), 0u);
}

TEST(Scheduler, TruncationMidJobProRatesBusyTime) {
  sched::Scheduler s(100, 50);
  sim::Engine eng;
  // Half the machine busy until truncation, the rest idle: utilization 0.5.
  std::vector<sched::JobRequest> jobs{{50, 1000.0, sched::Placement::Auto}};
  s.run_workload(eng, jobs, /*run_until=*/200.0);
  EXPECT_NEAR(s.last_utilization(), 0.5, 1e-9);
  EXPECT_LE(s.last_utilization(), 1.0);
}

TEST(Scheduler, WorkloadSubmittedAtNonzeroTimeMeasuresFromSubmission) {
  sched::Scheduler s(128, 128);
  sim::Engine eng;
  eng.schedule_at(500.0, [] {});  // advance the clock before submitting
  eng.run();
  ASSERT_DOUBLE_EQ(eng.now(), 500.0);
  std::vector<sched::JobRequest> jobs{{128, 100.0, sched::Placement::Auto}};
  auto rec = s.run_workload(eng, jobs);
  EXPECT_DOUBLE_EQ(rec[0].start_time, 500.0);
  // Available node-seconds span submission..makespan, not 0..makespan —
  // the old denominator diluted this to ~1/6.
  EXPECT_NEAR(s.last_utilization(), 1.0, 1e-9);
}

// ---------------------------------------------------------------- power -----

TEST(Power, HplLandsNearPaperHeadline) {
  const auto g = power::frontier_green500();
  EXPECT_NEAR(g.power_w / 1e6, 21.1, 0.5);       // §5.1: 21.1 MW
  EXPECT_NEAR(g.gf_per_watt, 52.0, 1.5);         // §5.1: 52 GF/W
  EXPECT_GT(g.gf_per_watt, 50.0);                // exceeds the report's target
}

TEST(Power, ActivityOrdering) {
  power::SystemPowerModel m;
  EXPECT_LT(m.system_power(power::idle_activity()),
            m.system_power(power::stream_activity()));
  EXPECT_LT(m.system_power(power::stream_activity()),
            m.system_power(power::hpl_activity()));
}

TEST(Power, FrontierBeatsStrawmenByOrderOfMagnitude) {
  const auto c = power::strawman_comparison();
  EXPECT_LT(c.frontier_mw_per_ef, 25.0);  // ~19 MW/EF(Rmax)
  EXPECT_GT(c.report_low_mw_per_ef / c.frontier_mw_per_ef, 3.0);
}

// ------------------------------------------------------------- resiliency ---

TEST(Resiliency, MttiInFewHoursBand) {
  resil::ResiliencyModel m;
  EXPECT_GT(m.mtti_hours(), 3.0);   // §5.4: around the four-hour projection
  EXPECT_LT(m.mtti_hours(), 8.0);
}

TEST(Resiliency, MemoryAndPowerSuppliesLead) {
  resil::ResiliencyModel m;
  const auto b = m.breakdown();
  ASSERT_GE(b.size(), 2u);
  std::set<std::string> top{b[0].first, b[1].first};
  EXPECT_TRUE(top.count("HBM2e stack"));
  EXPECT_TRUE(top.count("Power supply") || top.count("Software/other"));
  EXPECT_EQ(b[0].first, "HBM2e stack");
}

TEST(Resiliency, MonteCarloMatchesAnalyticMtti) {
  resil::ResiliencyModel m;
  sim::Rng rng(77);
  const auto intervals = m.sample_intervals(20000, rng);
  double mean = 0;
  for (double x : intervals) mean += x;
  mean /= static_cast<double>(intervals.size());
  EXPECT_NEAR(mean, m.mtti_hours(), m.mtti_hours() * 0.05);
}

TEST(Resiliency, YoungDalyInterval) {
  resil::ResiliencyModel m;
  // delta = 180 s checkpoint, MTTI ~ 4.6 h: tau = sqrt(2*180*16560) ~ 2440 s.
  const double tau = m.optimal_checkpoint_interval_s(180.0);
  EXPECT_GT(tau, 1500.0);
  EXPECT_LT(tau, 3500.0);
  EXPECT_GT(m.checkpoint_efficiency(180.0), 0.80);
  EXPECT_LT(m.checkpoint_efficiency(180.0), 0.95);
}

TEST(Resiliency, CheckpointPlanCouplesToOrion) {
  resil::ResiliencyModel m;
  storage::Orion orion;
  // 15% of HBM from a full-system job (the §4.3.2 sizing).
  const auto plan = m.plan_checkpoints(orion, units::TB(776), 9408);
  EXPECT_NEAR(plan.write_time_s, 180.0, 20.0);
  EXPECT_GT(plan.efficiency, 0.8);
  EXPECT_GT(plan.interval_s, plan.write_time_s * 5);
}

TEST(Resiliency, BetterFitRatesRaiseMtti) {
  auto census = resil::frontier_census();
  for (auto& c : census) c.fit /= 10.0;  // the report's hoped-for 10x
  resil::ResiliencyModel m(std::move(census));
  resil::ResiliencyModel base;
  EXPECT_NEAR(m.mtti_hours(), base.mtti_hours() * 10.0, 1e-6);
}

}  // namespace
