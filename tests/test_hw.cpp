// Tests for the hardware models: Trento DDR/NPS, MI250X GCD, xGMI fabric,
// Bard Peak node aggregates.
#include <gtest/gtest.h>

#include "hw/cpu.hpp"
#include "hw/gpu.hpp"
#include "hw/memory.hpp"
#include "hw/node.hpp"
#include "hw/xgmi.hpp"
#include "sim/units.hpp"

namespace {

using namespace xscale;
using namespace xscale::units;

TEST(Trento, WirePeakIs204GBs) {
  const auto cpu = hw::trento();
  EXPECT_NEAR(cpu.ddr.peak_bandwidth(), 204.8e9, 1e6);
  EXPECT_EQ(cpu.cores, 64);
  EXPECT_EQ(cpu.cores_per_ccd(), 8);
  EXPECT_NEAR(cpu.ddr.capacity_bytes(), GiB(512), 1.0);
}

TEST(Trento, StreamReaches180GBsNonTemporalNps4) {
  const auto cpu = hw::trento();
  // §4.1.1: "up to 180 GB/s using non-temporal loads and stores in NPS-4".
  const double bw = cpu.ddr.stream_bandwidth(hw::kCpuStreamKernels[3], /*temporal=*/false,
                                             hw::NpsMode::NPS4);
  EXPECT_NEAR(bw / 1e9, 179.2, 2.0);
}

TEST(Trento, Nps1DropsTo125GBs) {
  const auto cpu = hw::trento();
  const double bw = cpu.ddr.stream_bandwidth(hw::kCpuStreamKernels[0], false,
                                             hw::NpsMode::NPS1);
  EXPECT_NEAR(bw / 1e9, 125.0, 3.0);
}

TEST(Trento, TemporalStoresLoseWriteAllocateTraffic) {
  const auto cpu = hw::trento();
  for (const auto& k : hw::kCpuStreamKernels) {
    const double nt = cpu.ddr.stream_bandwidth(k, false, hw::NpsMode::NPS4);
    const double t = cpu.ddr.stream_bandwidth(k, true, hw::NpsMode::NPS4);
    if (k.rfo_elided_when_temporal) {
      EXPECT_DOUBLE_EQ(nt, t) << k.name;  // Copy: hardware elides the RFO
    } else {
      // Scale loses 1/3 (2 counted vs 3 actual), Add/Triad lose 1/4.
      const double expected =
          static_cast<double>(k.counted_reads + k.counted_writes) /
          static_cast<double>(k.counted_reads + 2 * k.counted_writes);
      EXPECT_NEAR(t / nt, expected, 1e-12) << k.name;
    }
  }
}

TEST(Trento, Nps4LatencyLowerThanNps1) {
  const auto cpu = hw::trento();
  EXPECT_LT(cpu.ddr.latency(hw::NpsMode::NPS4), cpu.ddr.latency(hw::NpsMode::NPS1));
}

TEST(Gcd, PeaksMatchPaper) {
  const auto g = hw::mi250x_gcd();
  EXPECT_NEAR(g.fp64_vector, TFLOPS(23.95), TFLOPS(0.01));
  EXPECT_NEAR(g.hbm.peak_bandwidth, GBs(1635), 1e6);
  EXPECT_NEAR(g.hbm.capacity_bytes, GiB(64), 1.0);
}

TEST(Gcd, GpuStreamWithin79to84PercentOfPeak) {
  const auto g = hw::mi250x_gcd();
  for (const auto& k : hw::kGpuStreamKernels) {
    const double frac = g.hbm.stream_bandwidth(k) / g.hbm.peak_bandwidth;
    EXPECT_GE(frac, 0.78) << k.name;
    EXPECT_LE(frac, 0.85) << k.name;
  }
}

TEST(Gcd, GpuStreamMatchesTable4) {
  const auto g = hw::mi250x_gcd();
  // Table 4, MB/s -> B/s; tolerance 1%.
  const double expected[] = {1336574.8e6, 1338272.2e6, 1288240.3e6,
                             1285239.7e6, 1374240.6e6};
  for (std::size_t i = 0; i < hw::kGpuStreamKernels.size(); ++i) {
    EXPECT_NEAR(g.hbm.stream_bandwidth(hw::kGpuStreamKernels[i]) / expected[i], 1.0,
                0.01)
        << hw::kGpuStreamKernels[i].name;
  }
}

TEST(Gemm, AchievedApproachesCalibratedAsymptote) {
  const auto g = hw::mi250x_gcd();
  // Figure 3: large-N achieved values.
  EXPECT_NEAR(g.gemm_achieved(hw::Precision::FP64, 16384) / TFLOPS(1), 33.8, 1.0);
  EXPECT_NEAR(g.gemm_achieved(hw::Precision::FP32, 16384) / TFLOPS(1), 24.1, 1.0);
  EXPECT_NEAR(g.gemm_achieved(hw::Precision::FP16, 16384) / TFLOPS(1), 111.2, 4.0);
}

TEST(Gemm, Fp64ExceedsVectorPeakViaMatrixCores) {
  const auto g = hw::mi250x_gcd();
  EXPECT_GT(g.gemm_achieved(hw::Precision::FP64, 16384), g.fp64_vector);
}

TEST(Gemm, MonotoneNondecreasingOnTileMultiples) {
  const auto g = hw::mi250x_gcd();
  double prev = 0;
  for (int n = 128; n <= 8192; n += 128) {
    const double cur = g.gemm_achieved(hw::Precision::FP64, n);
    EXPECT_GE(cur, prev) << "n=" << n;
    prev = cur;
  }
}

TEST(Gemm, RaggedTileSlowerThanAlignedNeighbor) {
  const auto g = hw::mi250x_gcd();
  EXPECT_LT(g.gemm_achieved(hw::Precision::FP64, 1024 + 1),
            g.gemm_achieved(hw::Precision::FP64, 1024));
}

TEST(Fabric, TwistedLadderLinkClasses) {
  const auto f = hw::IntraNodeFabric::bard_peak();
  EXPECT_EQ(f.links_between(0, 1), 4);  // intra-OAM
  EXPECT_EQ(f.links_between(0, 2), 2);  // north/south bundle
  EXPECT_EQ(f.links_between(2, 4), 1);  // east/west single
  EXPECT_EQ(f.links_between(0, 5), 0);  // not adjacent
  // Symmetry.
  for (int a = 0; a < 8; ++a)
    for (int b = 0; b < 8; ++b) EXPECT_EQ(f.links_between(a, b), f.links_between(b, a));
}

TEST(Fabric, EveryGcdPairReachableWithinThreeHops) {
  const auto f = hw::IntraNodeFabric::bard_peak();
  for (int a = 0; a < 8; ++a)
    for (int b = 0; b < 8; ++b) {
      if (a == b) continue;
      const int h = f.hops(a, b);
      EXPECT_GE(h, 1);
      EXPECT_LE(h, 3) << a << "-" << b;
    }
}

TEST(Fabric, CuTransfersMatchFigure5) {
  const auto f = hw::IntraNodeFabric::bard_peak();
  EXPECT_NEAR(f.cu_transfer_bw(2, 4) / 1e9, 37.5, 0.5);   // 1 link
  EXPECT_NEAR(f.cu_transfer_bw(0, 2) / 1e9, 74.9, 1.0);   // 2 links
  EXPECT_NEAR(f.cu_transfer_bw(0, 1) / 1e9, 145.5, 1.5);  // 4 links
}

TEST(Fabric, SdmaCappedAtSingleLinkEverywhere) {
  const auto f = hw::IntraNodeFabric::bard_peak();
  for (const auto& [a, b, links] : f.edges()) {
    (void)links;
    EXPECT_NEAR(f.sdma_transfer_bw(a, b) / 1e9, 50.0, 1.0);
  }
}

TEST(Fabric, CpuGcdSingleCoreIs25GBs) {
  const auto f = hw::IntraNodeFabric::bard_peak();
  EXPECT_NEAR(f.cpu_gcd_single_core_bw() / 1e9, 25.5, 0.2);
}

TEST(Fabric, AggregateCpuGcdSaturatesAtDdrStream) {
  const auto f = hw::IntraNodeFabric::bard_peak();
  const auto cpu = hw::trento();
  double prev = 0;
  for (int ranks = 1; ranks <= 8; ++ranks) {
    const double bw = f.cpu_gcd_aggregate_bw(ranks, cpu);
    EXPECT_GE(bw, prev);
    prev = bw;
  }
  EXPECT_NEAR(f.cpu_gcd_aggregate_bw(8, cpu) / 1e9, 179.2, 2.0);
  // Below saturation the curve is linear in rank count.
  EXPECT_NEAR(f.cpu_gcd_aggregate_bw(2, cpu), 2 * f.cpu_gcd_single_core_bw(), 1.0);
}

TEST(BardPeak, NodeAggregates) {
  const auto n = hw::bard_peak();
  EXPECT_EQ(n.gpus, 8);
  EXPECT_EQ(n.nics, 4);
  EXPECT_NEAR(n.hbm_capacity(), GiB(512), 1.0);
  EXPECT_NEAR(n.hbm_bandwidth(), TBs(13.08), TBs(0.01));   // §3.1.2
  EXPECT_NEAR(n.injection_bandwidth(), GBs(100), 1.0);     // Table 1
  EXPECT_NEAR(n.hbm_to_ddr_ratio(), 64.0, 1.0);            // §3.1.2: 64x
}

TEST(BardPeak, HbmToDdrRatioWorseThanSummit) {
  // §3.1.2 quotes 64x on Frontier vs 16x on Summit. (The paper also quotes
  // 40x for Titan; a first-principles K20X/Opteron model gives ~5x, so we
  // assert only the ordering for Titan — see EXPERIMENTS.md.)
  EXPECT_NEAR(hw::summit_node().hbm_to_ddr_ratio(), 16.0, 4.0);
  EXPECT_GT(hw::bard_peak().hbm_to_ddr_ratio(), hw::summit_node().hbm_to_ddr_ratio());
  EXPECT_GT(hw::bard_peak().hbm_to_ddr_ratio(), hw::titan_node().hbm_to_ddr_ratio());
}

}  // namespace
