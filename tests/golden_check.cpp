// Golden-output regression checker (ISSUE 4 satellite).
//
// Runs a bench binary, captures stdout, and diffs it against a recorded
// golden file with per-field numeric tolerance: both texts are normalized
// into a non-numeric "skeleton" plus an ordered list of parsed numbers; the
// skeletons must match exactly and each number pair must satisfy
//   |a - b| <= atol + rtol * max(|a|, |b|).
// That makes the harness robust to last-digit float-formatting jitter while
// still catching any structural or numeric drift in the reproduced tables.
//
// Usage:
//   golden_check <bench-binary> <golden-file> [--rtol X] [--atol Y]
//                [--update] [-- <bench args...>]
//
// --update rewrites the golden file from the current output instead of
// diffing (used by scripts/update_goldens.sh). Exit codes: 0 match,
// 1 mismatch, 2 usage/run error.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Normalized {
  std::string skeleton;          // text with every number replaced by '\x01'
  std::vector<double> numbers;   // parsed values, in order of appearance
};

bool starts_number(const std::string& s, std::size_t i) {
  const char c = s[i];
  if (std::isdigit(static_cast<unsigned char>(c))) return true;
  if ((c == '+' || c == '-' || c == '.') && i + 1 < s.size())
    return std::isdigit(static_cast<unsigned char>(s[i + 1])) ||
           (c != '.' && s[i + 1] == '.' && i + 2 < s.size() &&
            std::isdigit(static_cast<unsigned char>(s[i + 2])));
  return false;
}

Normalized normalize(const std::string& text) {
  Normalized n;
  std::size_t i = 0;
  while (i < text.size()) {
    if (starts_number(text, i)) {
      const char* begin = text.c_str() + i;
      char* end = nullptr;
      const double v = std::strtod(begin, &end);
      if (end != begin) {
        n.numbers.push_back(v);
        n.skeleton.push_back('\x01');
        i += static_cast<std::size_t>(end - begin);
        continue;
      }
    }
    n.skeleton.push_back(text[i]);
    ++i;
  }
  return n;
}

// Line/column of the k-th placeholder (or character mismatch) for messages.
std::string context_at(const std::string& skeleton, std::size_t pos) {
  std::size_t line = 1, start = 0;
  for (std::size_t i = 0; i < pos && i < skeleton.size(); ++i) {
    if (skeleton[i] == '\n') {
      ++line;
      start = i + 1;
    }
  }
  std::size_t stop = skeleton.find('\n', start);
  if (stop == std::string::npos) stop = skeleton.size();
  std::string snippet = skeleton.substr(start, stop - start);
  for (char& c : snippet)
    if (c == '\x01') c = '#';
  return "line " + std::to_string(line) + ": " + snippet;
}

std::string run_capture(const std::string& cmd) {
  FILE* p = popen(cmd.c_str(), "r");
  if (!p) {
    std::fprintf(stderr, "golden_check: cannot run: %s\n", cmd.c_str());
    std::exit(2);
  }
  std::string out;
  char buf[4096];
  std::size_t got;
  while ((got = fread(buf, 1, sizeof buf, p)) > 0) out.append(buf, got);
  const int rc = pclose(p);
  if (rc != 0) {
    std::fprintf(stderr, "golden_check: command exited with status %d: %s\n",
                 rc, cmd.c_str());
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: golden_check <bench-binary> <golden-file> "
                 "[--rtol X] [--atol Y] [--update] [-- <bench args...>]\n");
    return 2;
  }
  const std::string binary = argv[1];
  const std::string golden_path = argv[2];
  double rtol = 1e-6, atol = 1e-9;
  bool update = false;
  std::string bench_args;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rtol") == 0 && i + 1 < argc) {
      rtol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--atol") == 0 && i + 1 < argc) {
      atol = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
    } else if (std::strcmp(argv[i], "--") == 0) {
      for (int j = i + 1; j < argc; ++j) {
        bench_args += ' ';
        bench_args += argv[j];
      }
      break;
    } else {
      std::fprintf(stderr, "golden_check: unknown option %s\n", argv[i]);
      return 2;
    }
  }

  // stderr is deliberately not captured: trace/metrics notes and warnings
  // don't participate in the golden contract.
  const std::string actual =
      run_capture("'" + binary + "'" + bench_args + " 2>/dev/null");

  if (update) {
    std::ofstream out(golden_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "golden_check: cannot write %s\n", golden_path.c_str());
      return 2;
    }
    out << actual;
    std::fprintf(stderr, "golden_check: wrote %zu bytes to %s\n", actual.size(),
                 golden_path.c_str());
    return 0;
  }

  std::ifstream in(golden_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr,
                 "golden_check: missing golden file %s\n"
                 "  (run scripts/update_goldens.sh to record it)\n",
                 golden_path.c_str());
    return 2;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string expected = ss.str();

  const Normalized a = normalize(actual);
  const Normalized e = normalize(expected);

  if (a.skeleton != e.skeleton) {
    std::size_t pos = 0;
    const std::size_t n = std::min(a.skeleton.size(), e.skeleton.size());
    while (pos < n && a.skeleton[pos] == e.skeleton[pos]) ++pos;
    std::fprintf(stderr,
                 "golden_check: FAIL %s — output structure diverges from "
                 "golden\n  expected %s\n  actual   %s\n",
                 binary.c_str(), context_at(e.skeleton, pos).c_str(),
                 context_at(a.skeleton, pos).c_str());
    return 1;
  }
  if (a.numbers.size() != e.numbers.size()) {
    std::fprintf(stderr,
                 "golden_check: FAIL %s — %zu numbers vs %zu in golden\n",
                 binary.c_str(), a.numbers.size(), e.numbers.size());
    return 1;
  }

  int failures = 0;
  std::size_t placeholder = 0, pos = 0;
  for (std::size_t k = 0; k < a.numbers.size(); ++k) {
    // Advance to the k-th placeholder for error context.
    while (pos < e.skeleton.size() && placeholder <= k) {
      if (e.skeleton[pos] == '\x01') ++placeholder;
      ++pos;
    }
    const double x = a.numbers[k], y = e.numbers[k];
    const double tol = atol + rtol * std::max(std::fabs(x), std::fabs(y));
    if (!(std::fabs(x - y) <= tol)) {
      if (failures < 10) {
        std::fprintf(stderr,
                     "golden_check: field %zu: actual %.17g vs golden %.17g "
                     "(tol %.3g)\n  %s\n",
                     k, x, y, tol, context_at(e.skeleton, pos - 1).c_str());
      }
      ++failures;
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "golden_check: FAIL %s — %d numeric field(s) out of "
                 "tolerance (rtol %.3g atol %.3g)\n",
                 binary.c_str(), failures, rtol, atol);
    return 1;
  }
  std::printf("golden_check: OK %s (%zu numeric fields, rtol %.3g)\n",
              binary.c_str(), a.numbers.size(), rtol);
  return 0;
}
