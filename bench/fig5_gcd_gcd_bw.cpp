// Figure 5 — GCD-to-GCD bandwidth inside the Bard Peak node.
//
// Top panel: CU copy-kernel transfers stripe across the 1/2/4-link bundles
// (37.5 / 74.9 / 145.5 GB/s). Bottom panel: SDMA engines cannot stripe and
// cap at ~50 GB/s regardless of bundle width.
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Figure 5: GCD<->GCD bandwidth (twisted ladder) ==\n\n");
  const auto f = hw::IntraNodeFabric::bard_peak();

  sim::Table t("Per-pair achieved bandwidth (GB/s)");
  t.header({"GCD pair", "xGMI links", "CU kernel", "SDMA", "Paper CU"});
  for (const auto& [a, b, links] : f.edges()) {
    const char* paper = links == 4 ? "145.5" : (links == 2 ? "74.9" : "37.5");
    t.row({std::to_string(a) + "<->" + std::to_string(b), std::to_string(links),
           sim::Table::num(f.cu_transfer_bw(a, b) / 1e9, 4),
           sim::Table::num(f.sdma_transfer_bw(a, b) / 1e9, 4), paper});
  }
  t.print();

  std::printf("\nSDMA is flat (~50 GB/s = one xGMI3 link) because the DMA engines\n"
              "cannot stripe across a bundle; CU copy kernels can (Section 4.2.1).\n");
  std::printf("\nLadder connectivity check: every GCD pair within %d hops.\n", 3);
  return 0;
}
