// Figure 3 — achieved GEMM rates on one GCD vs matrix size, per precision.
//
// The paper's headline points: FP64 33.8 TF and FP32 24.1 TF (both above the
// 23.95 TF vector peak thanks to matrix cores), FP16 111.2 TF.
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;
using namespace xscale::units;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Figure 3: CoralGemm on one MI250X GCD ==\n\n");
  const auto g = hw::mi250x_gcd();

  std::printf("Peaks per GCD: FP64 vector %.2f TF / matrix %.1f TF; FP16 matrix %.1f TF\n\n",
              g.fp64_vector / 1e12, g.fp64_matrix / 1e12, g.fp16_matrix / 1e12);

  sim::Table t("Achieved TFLOP/s vs N (model)");
  t.header({"N", "FP64", "FP32", "FP16"});
  for (int n : {256, 512, 1024, 2048, 4096, 8192, 16384, 32768}) {
    t.row({std::to_string(n),
           sim::Table::num(g.gemm_achieved(hw::Precision::FP64, n) / 1e12, 4),
           sim::Table::num(g.gemm_achieved(hw::Precision::FP32, n) / 1e12, 4),
           sim::Table::num(g.gemm_achieved(hw::Precision::FP16, n) / 1e12, 4)});
  }
  t.print();

  std::printf("\nLarge-N plateau vs paper: FP64 %.1f (33.8), FP32 %.1f (24.1), "
              "FP16 %.1f (111.2) TFLOP/s\n",
              g.gemm_achieved(hw::Precision::FP64, 32768) / 1e12,
              g.gemm_achieved(hw::Precision::FP32, 32768) / 1e12,
              g.gemm_achieved(hw::Precision::FP16, 32768) / 1e12);
  std::printf("FP64 and FP32 exceed the vector peak because hipBLAS engages the\n"
              "matrix cores (verified with rocprof in the paper).\n");

  std::printf("\nRagged-tile ablation (tile quantization visible off multiples of %d):\n",
              g.gemm_tile);
  for (int n : {4096, 4097, 4160}) {
    std::printf("  N=%5d -> %.2f TF FP64\n", n,
                g.gemm_achieved(hw::Precision::FP64, n) / 1e12);
  }
  return 0;
}
