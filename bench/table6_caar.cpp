// Table 6 — CAAR and INCITE application speedups vs Summit (KPP target 4x),
// run on the simulated machines with the fabric-backed communication model.
#include <cstdio>

#include <optional>

#include "core/xscale.hpp"

using namespace xscale;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Table 6: CAAR/INCITE application results ==\n\n");
  const auto fm = machines::frontier();
  const auto sm = machines::summit();
  // --quick (golden harness): the analytic communication fallback (null
  // fabric) keeps the table format identical while skipping the full-machine
  // flow solves.
  std::optional<net::Fabric> ff, sf;
  if (!obs::quick()) {
    ff.emplace(fm.build_fabric());
    sf.emplace(sm.build_fabric());
  }
  const auto results = apps::run_rows(apps::table6_rows(), ff ? &*ff : nullptr,
                                      sf ? &*sf : nullptr);

  sim::Table t("CAAR/INCITE speedups over Summit");
  t.header({"Application", "Baseline", "Target", "Paper", "Model", "KPP met"});
  for (const auto& r : results) {
    t.row({r.row.specs[0].name, r.row.baseline_machine,
           sim::Table::num(r.row.target, 2) + "x",
           sim::Table::num(r.row.paper_achieved, 3) + "x",
           sim::Table::num(r.speedup, 3) + "x", r.meets_target() ? "yes" : "NO"});
  }
  t.print();

  std::printf("\nPer-app detail (Frontier runs):\n");
  for (const auto& r : results) {
    const auto& fr = r.frontier_runs[0];
    std::printf("  %-12s %5d nodes, %6d GCDs: FOM %.3e %s, step %s, "
                "parallel eff %.0f%%\n",
                fr.app.c_str(), fr.nodes, fr.gpus, fr.fom,
                r.row.specs[0].fom_units.c_str(),
                units::fmt_time(fr.step_time).c_str(),
                100.0 * fr.parallel_efficiency);
  }
  std::printf("\nPaper anchors: CoMet 419.9e15 comparisons/s (6.71 EF mixed) on\n"
              "9,074 nodes; LSMS FOM 1.027e16 on 8,192 nodes; PIConGPU 65.7e12\n"
              "updates/s at 90%% weak-scaling; AthenaPK 96%% vs 48%% efficiency.\n");
  return 0;
}
