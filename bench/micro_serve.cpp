// Serving-path microbenchmark (ISSUE 7): N concurrent `ScenarioSession`s
// over ONE shared 1,024-endpoint `TopologySnapshot`, each sweeping its own
// failure-overlay scenario stream through the batcher.
//
// `items_per_second` is scenario throughput (scenarios fully simulated per
// second, all sessions combined). The per-session scenario stream repeats;
// the reported counters pin the isolation story:
//
//   warm_memo%  — share of resolves replayed from the warm memo
//   memo_stale  — memo generations skipped because the session's own capacity
//                 epoch moved (sibling sessions can never trip this: epochs
//                 are per-overlay since the snapshot split)
//   epochs_max  — largest per-session capacity epoch at the end (diff-applied
//                 repeated scenarios keep this at 1 per failed link)
//   reroutes    — shared-cache misses taken as overlay-local fresh recomputes
//
// The check_bench.py gate compares sessions=64 against sessions=1 throughput:
// serving 64 overlay scenarios from one snapshot must stay within 2x of the
// single-session per-scenario cost at XSCALE_THREADS=1 (no cross-session
// invalidation, or the route cache and memo hit rates collapse and this
// ratio craters).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/snapshot.hpp"
#include "obs/metrics.hpp"
#include "obs/options.hpp"
#include "serve/batcher.hpp"
#include "topo/topology.hpp"

using namespace xscale;

namespace {

std::shared_ptr<const net::TopologySnapshot> shared_snapshot() {
  static std::shared_ptr<const net::TopologySnapshot> snap = [] {
    auto t = topo::Topology::uniform_dragonfly(16, {8, 8}, 1, 25e9, 180e-9);
    net::FabricConfig cfg;
    cfg.routing = net::Routing::Minimal;  // deterministic paths across runs
    return net::make_snapshot(std::move(t), cfg);
  }();
  return snap;
}

// Session `i`'s fixed what-if: fail one global bundle (distinct per session)
// and run an 8-wide incast into a session-private target endpoint.
serve::Scenario scenario_for(const topo::Topology& topo, int i) {
  serve::Scenario sc;
  const int ng = topo.num_groups();
  const int ga = i % ng;
  const int gb = (ga + 1 + (i / ng) % (ng - 1)) % ng;
  const int gl = topo.global_link(ga, gb);
  if (gl >= 0) sc.fail_links.push_back(gl);
  const int neps = topo.num_endpoints();
  const int target = (i * 16) % neps;
  for (int k = 1; k <= 8; ++k) {
    serve::FlowSpec f;
    f.src = (target + k) % neps;
    f.dst = target;
    f.bytes = 1e7;
    sc.flows.push_back(f);
  }
  return sc;
}

void BM_ServeBatch(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  constexpr int kScenariosPerSession = 4;

  auto snap = shared_snapshot();
  serve::BatcherConfig cfg;
  cfg.max_sessions = sessions;
  serve::Batcher batcher(snap, cfg);
  std::vector<int> ids;
  for (int i = 0; i < sessions; ++i) ids.push_back(batcher.open_session());

  std::uint64_t scenarios = 0;
  for (auto _ : state) {
    for (int i = 0; i < sessions; ++i)
      for (int k = 0; k < kScenariosPerSession; ++k)
        batcher.submit(ids[static_cast<std::size_t>(i)],
                       scenario_for(snap->topology(), i));
    auto results = batcher.run_batch();
    benchmark::DoNotOptimize(results.data());
    scenarios += static_cast<std::uint64_t>(sessions) * kScenariosPerSession;
  }

  net::FlowSim::Stats agg;
  std::uint64_t epochs_max = 0;
  for (int id : ids) {
    const auto& st = batcher.session(id)->flowsim().stats();
    agg.resolves += st.resolves;
    agg.warm_memo_hits += st.warm_memo_hits;
    agg.warm_memo_stale += st.warm_memo_stale;
    epochs_max = std::max(epochs_max,
                          batcher.session(id)->fabric().capacity_epoch());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(scenarios));
  state.counters["warm_memo%"] =
      agg.resolves
          ? 100.0 * static_cast<double>(agg.warm_memo_hits) /
                static_cast<double>(agg.resolves)
          : 0.0;
  state.counters["memo_stale"] = static_cast<double>(agg.warm_memo_stale);
  state.counters["epochs_max"] = static_cast<double>(epochs_max);
  state.counters["reroutes"] = static_cast<double>(
      obs::metrics().counter("net.route_cache.overlay_reroute").value());
}

}  // namespace

BENCHMARK(BM_ServeBatch)->Arg(1)->Arg(8)->Arg(64)->Unit(benchmark::kMillisecond);

// Expanded BENCHMARK_MAIN() so the shared obs flags (--trace <file>,
// --metrics) are stripped before google-benchmark parses argv.
int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
