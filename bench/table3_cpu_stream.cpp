// Table 3 — CPU STREAM with temporal vs non-temporal stores.
//
// Prints (a) the Trento DDR model's prediction for the paper's table, (b)
// the NPS-1 vs NPS-4 trade (§3.1.1/§4.1.1), and (c) a *real* STREAM run on
// the host CPU demonstrating the same store-type effect.
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;
using namespace xscale::units;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Table 3: CPU STREAM, temporal vs non-temporal ==\n\n");
  const auto cpu = hw::trento();

  sim::Table t("Trento model (MB/s) vs paper");
  t.header({"Function", "Temporal", "Non-Temporal", "Paper T", "Paper NT"});
  const char* paper_t[] = {"176780.4", "107262.2", "125567.1", "120702.1"};
  const char* paper_nt[] = {"179130.5", "172396.2", "178356.8", "178277.0"};
  int i = 0;
  for (const auto& k : hw::kCpuStreamKernels) {
    const double bt = cpu.ddr.stream_bandwidth(k, true, hw::NpsMode::NPS4) / 1e6;
    const double bnt = cpu.ddr.stream_bandwidth(k, false, hw::NpsMode::NPS4) / 1e6;
    t.row({k.name, sim::Table::num(bt, 6), sim::Table::num(bnt, 6), paper_t[i],
           paper_nt[i]});
    ++i;
  }
  t.print();

  std::printf("\nNPS mode trade (Section 4.1.1):\n");
  for (auto m : {hw::NpsMode::NPS1, hw::NpsMode::NPS4}) {
    std::printf("  %s: best STREAM %s, idle latency %s  %s\n",
                hw::to_string(m).c_str(),
                fmt_rate(cpu.ddr.peak_bandwidth() * cpu.ddr.stream_efficiency(m)).c_str(),
                fmt_time(cpu.ddr.latency(m)).c_str(),
                m == hw::NpsMode::NPS4 ? "(paper: ~180 GB/s; Frontier default)"
                                       : "(paper: ~125 GB/s)");
  }

  std::printf("\nReal host STREAM (same effect on this machine):\n");
  std::printf("  non-temporal stores available: %s\n",
              perf::HostStream::has_nontemporal_stores() ? "yes (SSE2)" : "no");
  perf::HostStream hs(1 << 22);  // 32 MiB/array: larger than LLC on most hosts
  for (const auto& r : hs.run(3)) {
    std::printf("  %-6s temporal %8.0f MB/s   non-temporal %8.0f MB/s   NT/T %.2fx\n",
                r.kernel.c_str(), r.temporal_bw / 1e6, r.nontemporal_bw / 1e6,
                r.nontemporal_bw / r.temporal_bw);
  }
  std::printf(
      "\nThe paper's shape: Scale/Add/Triad gain ~1/3 to ~1/4 from non-temporal\n"
      "stores (no read-for-ownership), Copy is nearly unaffected.\n");
  return 0;
}
