// Section 4.3 — storage evaluation: node-local NVMe (fio-style), Orion
// streaming rates per tier, the PFL small-file path, the ~180 s HBM-ingest
// example, and the fabric-coupled campaign.
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;
using namespace xscale::units;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Section 4.3: Storage Evaluation ==\n\n");

  // --- 4.3.1 node-local -------------------------------------------------------
  const storage::NodeLocalNvme nvme(hw::bard_peak().nvme);
  std::printf("--- 4.3.1 Node-local storage (per node) ---\n");
  std::printf("  sequential read   %5.2f GB/s   (paper: 7.1, contracted 8)\n",
              nvme.measured_read_bw() / 1e9);
  std::printf("  sequential write  %5.2f GB/s   (paper: 4.2, contracted 4)\n",
              nvme.measured_write_bw() / 1e9);
  std::printf("  4 KiB random read %5.2f M IOPS (paper: 1.58, contracted 1.6)\n",
              nvme.measured_iops() / 1e6);
  const auto agg = storage::aggregate(nvme, 9472);
  std::printf("  full system: %s read, %s write, %.1f G IOPS\n",
              fmt_rate(agg.read_bw).c_str(), fmt_rate(agg.write_bw).c_str(),
              agg.iops / 1e9);
  std::printf("  (paper: 67.3 TB/s, 39.8 TB/s, ~15.0 billion IOPS)\n");
  std::printf("  fio-style sweep (1 GiB per pattern):\n");
  for (double bs : {KiB(4), KiB(64), MiB(1)}) {
    std::printf("    block %-7s  seq-read %6.2f GB/s  rand-read %6.2f GB/s\n",
                fmt_bytes_iec(bs).c_str(), nvme.throughput(bs, true, false) / 1e9,
                nvme.throughput(bs, true, true) / 1e9);
  }

  // --- 4.3.2 Orion ------------------------------------------------------------
  const storage::Orion orion;
  std::printf("\n--- 4.3.2 Orion (Lustre) streaming ---\n");
  std::printf("  flash tier     read %5.2f TB/s (paper 11.7)  write %5.2f TB/s (paper 9.4)\n",
              orion.measured_read_bw(storage::Tier::Performance) / 1e12,
              orion.measured_write_bw(storage::Tier::Performance) / 1e12);
  std::printf("  capacity tier  read %5.2f TB/s (paper 4.9)   write %5.2f TB/s (paper 4.3)\n",
              orion.measured_read_bw(storage::Tier::Capacity) / 1e12,
              orion.measured_write_bw(storage::Tier::Capacity) / 1e12);

  const double ingest = orion.ingest_time(TB(776), 9408);
  std::printf("  HBM ingest: ~776 TB (15%% of HBM) from 9,408 nodes in %.0f s "
              "(paper: ~180 s)\n", ingest);
  std::printf("  -> checkpointing every hour costs %.1f%% of walltime (paper: <5%%)\n",
              100.0 * ingest / 3600.0);

  std::printf("\n  PFL placement of one file:\n");
  for (double size : {KiB(100), MiB(4), GiB(1)}) {
    const auto s = orion.pfl_split(size);
    std::printf("    %-8s -> DoM %s, perf %s, capacity %s%s\n",
                fmt_bytes_iec(size).c_str(), fmt_bytes_iec(s.metadata).c_str(),
                fmt_bytes_iec(s.performance).c_str(),
                fmt_bytes_iec(s.capacity).c_str(),
                orion.served_from_dom(size) ? "  [served from DoM on open()]" : "");
  }
  std::printf("  small-file read, 1000 clients: DoM %s vs forced-OST %s\n",
              fmt_time(orion.small_file_read_time(KiB(200), 1000)).c_str(),
              fmt_time(storage::Orion{[] {
                         storage::OrionConfig c;
                         c.dom_boundary = 0;
                         return c;
                       }()}
                           .small_file_read_time(KiB(200), 1000))
                  .c_str());

  // --- fabric-coupled campaign --------------------------------------------------
  std::printf("\n--- Fabric-coupled campaign (I/O through the dragonfly) ---\n");
  const auto m = machines::frontier();
  auto fabric = m.build_fabric();
  for (int clients : {64, 1024, 9408}) {
    const auto w = storage::fabric_campaign(m, fabric, orion, clients,
                                            storage::Tier::Capacity, false);
    std::printf("  %5d writers -> aggregate %6.2f TB/s, %4.1f GB/s per client, "
                "%3.0f%% network-limited\n",
                clients, w.aggregate_bw / 1e12, w.per_client_bw / 1e9,
                100.0 * w.network_limited_fraction);
  }
  std::printf("  The capacity tier's disks, not the 74x5 compute->storage\n"
              "  bundles (18.5 TB/s), bound the full-scale campaign.\n");
  return 0;
}
