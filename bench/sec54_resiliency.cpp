// Section 5.4 — Resiliency: MTTI in the few-hours band, led by HBM memory
// and power supplies; Monte Carlo failure injection; Young/Daly checkpoint
// planning coupled to the Orion write model; the report's 10x-FIT scenario.
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Section 5.4: Resiliency ==\n\n");
  resil::ResiliencyModel model;

  std::printf("System MTTI: %.1f hours (%.3f interrupts/hour)\n", model.mtti_hours(),
              model.interrupts_per_hour());
  std::printf("Paper: 'not much better than [the report's] projected four-hour\n"
              "target with the 10x improvement'; 2008 report projected 24 min\n"
              "without improvement.\n\n");

  std::printf("Interrupt-rate breakdown (leading contributors first):\n");
  for (const auto& [name, rate] : model.breakdown()) {
    std::printf("  %-17s %8.4f /hour  (%4.1f%%)%s\n", name.c_str(), rate,
                100.0 * rate / model.interrupts_per_hour(),
                name == "HBM2e stack" || name == "Power supply"
                    ? "  <- paper's leading contributors"
                    : "");
  }

  // Sharded sampling: drawn on the thread pool from per-shard counter-based
  // streams; the vector is bit-identical for any XSCALE_THREADS.
  const auto intervals = model.sample_intervals_sharded(10000, 2023);
  sim::SampleSet s;
  for (double x : intervals) s.add(x);
  std::printf("\nMonte Carlo failure injection (10,000 intervals):\n");
  std::printf("  mean %.2f h, median %.2f h, p5 %.2f h, p95 %.2f h\n", s.mean(),
              s.percentile(50), s.percentile(5), s.percentile(95));

  // Event-driven job replay (trial-sharded across the pool, trial-order
  // merge): the *distribution* of outcomes behind the Young/Daly mean.
  resil::JobSimConfig jcfg;
  jcfg.work_hours = 24.0;
  const int trials = obs::quick() ? 200 : 5000;
  const auto replay = resil::replay_jobs(model, 0x5EED, trials, jcfg);
  std::printf("\nJob replay (%d trials, 24 h of work, Young/Daly interval):\n",
              trials);
  std::printf("  mean wall %.1f h, %d failures, %.1f h lost per job\n",
              replay.mean.wall_hours, replay.mean.failures,
              replay.mean.lost_work_hours);
  std::printf("  efficiency mean %.1f%%  [p5 %.1f%%, p95 %.1f%%]\n",
              100.0 * replay.mean.efficiency, 100.0 * replay.efficiency_p5,
              100.0 * replay.efficiency_p95);

  storage::Orion orion;
  const auto plan = model.plan_checkpoints(orion, units::TB(776), 9408);
  std::printf("\nYoung/Daly checkpoint planning (full-system job, 15%% of HBM):\n");
  std::printf("  checkpoint write     %s (through Orion's capacity tier)\n",
              units::fmt_time(plan.write_time_s).c_str());
  std::printf("  optimal interval     %s\n", units::fmt_time(plan.interval_s).c_str());
  std::printf("  application efficiency %.1f%%\n", 100.0 * plan.efficiency);

  // The improvement trajectory the paper hopes for: terascale-era 8-12 h.
  std::printf("\nFIT-improvement scenarios:\n");
  for (double factor : {1.0, 2.0, 10.0}) {
    auto census = resil::frontier_census();
    for (auto& c : census) c.fit /= factor;
    resil::ResiliencyModel m2(std::move(census));
    const auto p2 = m2.plan_checkpoints(orion, units::TB(776), 9408);
    std::printf("  %4.0fx better FIT -> MTTI %6.1f h, checkpoint efficiency %.1f%%%s\n",
                factor, m2.mtti_hours(), 100.0 * p2.efficiency,
                factor == 2.0 ? "  <- paper's hoped-for 8-12 h band" : "");
  }
  return 0;
}
