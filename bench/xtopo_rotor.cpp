// Cross-topology chapter (ISSUE 9): steady rates and slot-boundary behaviour
// on the time-sliced rotor family. Two golden-pinned views: the slot-0
// steady-rate table (which matchings are live decides who gets bandwidth),
// and a full rotation run where flows park across dark slots and finish when
// their matching comes back. Deterministic under XSCALE_THREADS=1 + Minimal
// routing, so every number is model output.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "core/xscale.hpp"

using namespace xscale;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);
  std::printf("== Cross-topology: time-sliced rotor fabric ==\n\n");

  const int n_sw = 6, eps_per = 4, n_match = 5;
  const double slot_s = 100e-6, duty = 0.9;
  net::FabricConfig cfg;
  cfg.routing = net::Routing::Minimal;
  const auto make_fabric = [&] {
    return net::Fabric(topo::Topology::rotor(n_sw, eps_per, n_match, slot_s,
                                             duty, 25e9, 180e-9),
                       cfg);
  };

  // --- View 1: slot-0 steady rates by matching distance --------------------
  // A flow whose destination switch is s+1 hops ahead rides matching s;
  // only matching 0 is live in slot 0, so distance-1 flows get the active
  // capacity and everything else sits at rate zero (stalled).
  {
    auto fabric = make_fabric();
    sim::Table t("slot-0 steady rates by switch distance (Gbit/s)");
    t.header({"Matching", "Flows", "Min", "Mean", "Max", "State"});
    for (int m = 0; m < n_match; ++m) {
      sim::Engine eng;
      net::FlowSim fs(eng, fabric, {.stall_policy = net::StallPolicy::Stall});
      for (int a = 0; a < n_sw; ++a)
        for (int k = 0; k < eps_per; ++k)
          fs.start(a * eps_per + k, ((a + m + 1) % n_sw) * eps_per + k, 1e9,
                   [] {});
      int flows = 0;
      double mn = std::numeric_limits<double>::infinity(), mx = 0, sum = 0;
      fs.for_each_flow([&](std::uint64_t, const std::vector<int>&, double,
                           double rate) {
        ++flows;
        const double g = rate / 1e9;
        mn = std::min(mn, g);
        mx = std::max(mx, g);
        sum += g;
      });
      t.row({std::to_string(m), std::to_string(flows), sim::Table::num(mn, 4),
             sim::Table::num(sum / flows, 4), sim::Table::num(mx, 4),
             m == 0 ? "live" : "dark (stalled)"});
    }
    t.print();
  }

  // --- View 2: completion across a full rotation ---------------------------
  // One flow per matching distance, all launched at t = 0. Distance-1
  // finishes inside slot 0; the others park dark and complete when their
  // matching's slot arrives, so completion time is slot-quantised.
  {
    auto fabric = make_fabric();
    sim::Engine eng;
    net::FlowSim fs(eng, fabric, {.stall_policy = net::StallPolicy::Stall});
    net::RotorSchedule rotor(eng, fabric, &fs);
    rotor.start();
    std::vector<double> done(n_match, -1.0);
    for (int m = 0; m < n_match; ++m)
      fs.start(0, ((m + 1) % n_sw) * eps_per, 1e5,
               [&done, &eng, m] { done[m] = eng.now(); });
    eng.run();
    sim::Table t("completion across one rotation (1e5-byte flows from ep 0)");
    t.header({"Matching", "Done (us)", "Slots waited"});
    for (int m = 0; m < n_match; ++m)
      t.row({std::to_string(m), sim::Table::num(done[m] * 1e6, 4),
             std::to_string(m)});
    t.print();
    std::printf(
        "\ntransitions=%llu  final_slot=%d  stalled=%zu  dropped=%llu\n",
        static_cast<unsigned long long>(rotor.transitions()),
        rotor.current_slot(), fs.stalled_flows(),
        static_cast<unsigned long long>(fs.dropped_flows()));
  }
  return 0;
}
