// Ablation bench for the design decisions DESIGN.md calls out:
//   1. routing (minimal vs Valiant vs UGAL-adaptive) on adversarial traffic,
//   2. Slingshot congestion control on/off,
//   3. NPS-1 vs NPS-4,
//   4. SDMA vs CU intra-node transfer engines,
//   5. collective algorithm choice (recursive doubling vs ring) vs payload,
//   6. UGAL threshold sensitivity.
#include <cstdio>
#include <numeric>

#include "core/xscale.hpp"
#include "mpi/collective_sim.hpp"

using namespace xscale;
using namespace xscale::units;

namespace {

machines::Machine mini_frontier() {
  auto m = machines::frontier();
  machines::FrontierFabricSpec spec;
  spec.compute_groups = 16;
  spec.storage_groups = 0;
  spec.management_groups = 0;
  m.topology_factory = [spec] { return machines::frontier_topology(spec); };
  m.total_nodes = 16 * 128;
  m.compute_nodes = m.total_nodes;
  return m;
}

double adversarial_mean(const machines::Machine& m, net::FabricConfig cfg) {
  net::Fabric fabric(m.topology_factory(), cfg);
  net::PairList pairs;
  for (int i = 0; i < m.total_nodes; ++i)
    pairs.emplace_back(machines::node_endpoint(m, i, 0),
                       machines::node_endpoint(m, (i + m.total_nodes / 2) % m.total_nodes, 0));
  const auto rates = fabric.steady_rates(pairs);
  return std::accumulate(rates.begin(), rates.end(), 0.0) / rates.size();
}

}  // namespace

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Design-decision ablations ==\n\n");
  const auto m = mini_frontier();

  std::printf("--- 1. Routing on an adversarial (group-aligned) shift ---\n");
  for (auto r : {net::Routing::Minimal, net::Routing::Valiant, net::Routing::Adaptive}) {
    auto cfg = m.fabric_defaults;
    cfg.routing = r;
    std::printf("  %-8s : %6.2f GB/s per NIC\n", net::to_string(r),
                adversarial_mean(m, cfg) / 1e9);
  }

  std::printf("\n--- 2. UGAL threshold sensitivity (adaptive routing) ---\n");
  for (double th : {1.0, 2.0, 4.0, 8.0}) {
    auto cfg = m.fabric_defaults;
    cfg.ugal_threshold = th;
    std::printf("  threshold %.0f : %6.2f GB/s per NIC%s\n", th,
                adversarial_mean(m, cfg) / 1e9, th == 2.0 ? "  <- default" : "");
  }

  std::printf("\n--- 3. NPS mode (Trento STREAM, non-temporal Triad) ---\n");
  const auto cpu = hw::trento();
  for (auto nps : {hw::NpsMode::NPS1, hw::NpsMode::NPS2, hw::NpsMode::NPS4}) {
    std::printf("  %s : %6.1f GB/s%s\n", hw::to_string(nps).c_str(),
                cpu.ddr.stream_bandwidth(hw::kCpuStreamKernels[3], false, nps) / 1e9,
                nps == hw::NpsMode::NPS4 ? "  <- Frontier's choice" : "");
  }

  std::printf("\n--- 4. Transfer engine (4-link GCD pair 0<->1) ---\n");
  const auto fab = hw::IntraNodeFabric::bard_peak();
  std::printf("  CU copy kernel : %6.1f GB/s (stripes the bundle)\n",
              fab.cu_transfer_bw(0, 1) / 1e9);
  std::printf("  SDMA engine    : %6.1f GB/s (async, but one link)\n",
              fab.sdma_transfer_bw(0, 1) / 1e9);

  std::printf("\n--- 5. Allreduce algorithm vs payload (64 nodes, 512 ranks) ---\n");
  auto fabric = m.build_fabric();
  std::vector<int> alloc(64);
  std::iota(alloc.begin(), alloc.end(), 0);
  mpi::SimComm comm(m, &fabric, alloc, {.ppn = 8});
  for (double bytes : {8.0, KiB(64), MiB(1), MiB(64)}) {
    sim::Engine e1, e2;
    net::FlowSim f1(e1, fabric), f2(e2, fabric);
    mpi::CollectiveSim c1(e1, f1, comm), c2(e2, f2, comm);
    const double rd = c1.run_allreduce(bytes, mpi::AllreduceAlgo::RecursiveDoubling);
    const double ring = c2.run_allreduce(bytes, mpi::AllreduceAlgo::Ring);
    std::printf("  %-8s : recursive-doubling %10s | ring %10s  -> %s wins\n",
                fmt_bytes_iec(bytes).c_str(), fmt_time(rd).c_str(),
                fmt_time(ring).c_str(), rd < ring ? "RD" : "ring");
  }

  std::printf("\n--- 6. Congestion control (GPCNeT victim bandwidth impact) ---\n");
  for (bool cc : {true, false}) {
    auto cfg = m.fabric_defaults;
    cfg.congestion_control = cc;
    net::Fabric f(m.topology_factory(), cfg);
    mpi::GpcnetConfig gcfg;
    gcfg.nodes = m.total_nodes;
    const auto r = mpi::run_gpcnet(m, f, gcfg);
    std::printf("  CC %-3s : latency %.2fx, bandwidth %.2fx, allreduce %.2fx\n",
                cc ? "on" : "off", r.impact[0], r.impact[1], r.impact[2]);
  }
  return 0;
}
