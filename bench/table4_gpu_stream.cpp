// Table 4 — GPU STREAM on one MI250X GCD (79-84% of the 1.635 TB/s HBM peak).
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Table 4: GPU STREAM bandwidth ==\n\n");
  const auto g = hw::mi250x_gcd();

  sim::Table t("GCD STREAM (MB/s) vs paper");
  t.header({"Function", "Model", "Paper", "% of peak"});
  const char* paper[] = {"1336574.8", "1338272.2", "1288240.3", "1285239.7",
                         "1374240.6"};
  int i = 0;
  for (const auto& k : hw::kGpuStreamKernels) {
    const double bw = g.hbm.stream_bandwidth(k);
    t.row({k.name, sim::Table::num(bw / 1e6, 7), paper[i],
           sim::Table::num(100.0 * bw / g.hbm.peak_bandwidth, 3) + "%"});
    ++i;
  }
  t.print();
  std::printf("\nHBM peak per GCD: %s (x8 GCDs = %s per node, Section 3.1.2)\n",
              units::fmt_rate(g.hbm.peak_bandwidth).c_str(),
              units::fmt_rate(8 * g.hbm.peak_bandwidth).c_str());
  return 0;
}
