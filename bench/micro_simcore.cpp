// google-benchmark microbenchmarks of the simulator itself: event-engine
// throughput, max-min solver scaling, dragonfly routing, topology build.
// These back DESIGN.md's flow-level-simulation ablation (design decision 1).
#include <benchmark/benchmark.h>

#include "core/xscale.hpp"

using namespace xscale;

namespace {

void BM_EngineScheduleRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < n; ++i) eng.schedule_at(static_cast<double>(i % 97), [] {});
    eng.run();
    benchmark::DoNotOptimize(eng.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(100000);

void BM_MaxMinSolver(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  sim::Rng rng(1);
  const int links = 4096;
  std::vector<double> cap(links, 25e9);
  std::vector<std::vector<int>> paths(static_cast<std::size_t>(flows));
  for (auto& p : paths)
    for (int h = 0; h < 5; ++h) p.push_back(static_cast<int>(rng.index(links)));
  for (auto& p : paths) {
    std::sort(p.begin(), p.end());
    p.erase(std::unique(p.begin(), p.end()), p.end());
  }
  for (auto _ : state) {
    auto rates = net::max_min_rates(cap, paths);
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_MaxMinSolver)->Arg(1000)->Arg(10000)->Arg(40000);

void BM_FrontierTopologyBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto t = machines::frontier_topology();
    benchmark::DoNotOptimize(t.num_endpoints());
  }
}
BENCHMARK(BM_FrontierTopologyBuild);

void BM_FullSystemShiftSolve(benchmark::State& state) {
  const auto m = machines::frontier();
  auto fabric = m.build_fabric();
  net::PairList pairs;
  for (int i = 0; i < m.total_nodes; ++i)
    pairs.emplace_back(machines::node_endpoint(m, i, 0),
                       machines::node_endpoint(m, (i + 5000) % m.total_nodes, 0));
  for (auto _ : state) {
    auto rates = fabric.steady_rates(pairs);
    benchmark::DoNotOptimize(rates.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(pairs.size()));
}
BENCHMARK(BM_FullSystemShiftSolve)->Unit(benchmark::kMillisecond);

void BM_GemmModel(benchmark::State& state) {
  const auto g = hw::mi250x_gcd();
  int n = 128;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.gemm_achieved(hw::Precision::FP64, n));
    n = n % 16384 + 128;
  }
}
BENCHMARK(BM_GemmModel);

void BM_SchedulerAllocateRelease(benchmark::State& state) {
  sched::Scheduler s(9472, 128);
  for (auto _ : state) {
    auto a = s.allocate(512);
    benchmark::DoNotOptimize(a->nodes.data());
    s.release(*a);
  }
}
BENCHMARK(BM_SchedulerAllocateRelease);

}  // namespace

// Expanded BENCHMARK_MAIN() so the shared obs flags (--trace <file>,
// --metrics) are stripped before google-benchmark parses argv.
int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
