// Cross-topology chapter (ISSUE 9): steady max-min rates on the
// oversubscribed fat-tree family. The defining behaviour is the
// oversubscription cliff — intra-leaf traffic always gets full injection
// bandwidth, while leaf-crossing traffic shares the thinned uplink pool and
// scales as 1/ratio. Golden-pinned: every number here is pure model output.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <vector>

#include "core/xscale.hpp"

using namespace xscale;

namespace {

struct RateStats {
  int flows = 0;
  double min_gbps = std::numeric_limits<double>::infinity();
  double max_gbps = 0;
  double sum_gbps = 0;
  double mean_gbps() const { return flows ? sum_gbps / flows : 0; }
};

RateStats steady_rates(net::Fabric& fabric,
                       const std::function<int(int)>& dst_of) {
  sim::Engine eng;
  net::FlowSim fs(eng, fabric, {});
  const int eps = fabric.topology().num_endpoints();
  for (int src = 0; src < eps; ++src) {
    const int dst = dst_of(src);
    if (dst < 0 || dst == src) continue;
    fs.start(src, dst, 1e9, [] {});
  }
  // Rates are resolved at start time; read the steady allocation before any
  // completion perturbs it.
  RateStats st;
  fs.for_each_flow([&](std::uint64_t, const std::vector<int>&, double,
                       double rate) {
    ++st.flows;
    const double g = rate / 1e9;
    st.min_gbps = std::min(st.min_gbps, g);
    st.max_gbps = std::max(st.max_gbps, g);
    st.sum_gbps += g;
  });
  return st;
}

}  // namespace

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);
  std::printf("== Cross-topology: oversubscribed fat-tree steady rates ==\n\n");

  const int leaves = 8;
  const int eps_per_leaf = 8;
  const int eps = leaves * eps_per_leaf;

  sim::Table t("fat-tree max-min rates vs oversubscription (Gbit/s)");
  t.header({"Oversub", "Pattern", "Flows", "Min", "Mean", "Max"});
  for (const double ratio : {1.0, 2.0, 4.0}) {
    net::FabricConfig cfg;
    cfg.routing = net::Routing::Minimal;
    net::Fabric fabric(topo::Topology::oversubscribed_fat_tree(
                           leaves, eps_per_leaf, ratio, 25e9, 180e-9),
                       cfg);
    // Intra-leaf permutation: neighbour within the same leaf — never touches
    // an uplink, so the rate is ratio-independent.
    const auto intra = steady_rates(fabric, [&](int src) {
      const int leaf = src / eps_per_leaf;
      return leaf * eps_per_leaf + (src + 1) % eps_per_leaf;
    });
    // Leaf-shift permutation: every flow crosses to the next leaf, so the
    // whole pattern rides the thinned uplink pool.
    const auto cross = steady_rates(
        fabric, [&](int src) { return (src + eps_per_leaf) % eps; });
    // 8:1 incast onto endpoint 0 from the next leaf: ejection-limited at
    // ratio 1, uplink-limited beyond.
    const auto incast = steady_rates(fabric, [&](int src) {
      return (src >= eps_per_leaf && src < 2 * eps_per_leaf) ? 0 : -1;
    });
    const std::string r = sim::Table::num(ratio, 1) + ":1";
    t.row({r, "intra-leaf perm", std::to_string(intra.flows),
           sim::Table::num(intra.min_gbps, 4), sim::Table::num(intra.mean_gbps(), 4),
           sim::Table::num(intra.max_gbps, 4)});
    t.row({r, "leaf-shift perm", std::to_string(cross.flows),
           sim::Table::num(cross.min_gbps, 4), sim::Table::num(cross.mean_gbps(), 4),
           sim::Table::num(cross.max_gbps, 4)});
    t.row({r, "8:1 incast", std::to_string(incast.flows),
           sim::Table::num(incast.min_gbps, 4), sim::Table::num(incast.mean_gbps(), 4),
           sim::Table::num(incast.max_gbps, 4)});
    t.rule();
  }
  t.print();
  std::printf(
      "\nIntra-leaf rates are flat across ratios; leaf-shift rates scale as\n"
      "1/ratio (the uplink pool thins from %d to %d links per leaf).\n",
      eps_per_leaf, eps_per_leaf / 4);
  return 0;
}
