// Table 7 — ECP application speedups vs pre-exascale baselines (KPP 50x).
#include <cstdio>

#include <optional>

#include "core/xscale.hpp"

using namespace xscale;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Table 7: ECP application results ==\n\n");
  const auto fm = machines::frontier();
  // --quick (golden harness): analytic fallback, see table6_caar.cpp.
  std::optional<net::Fabric> ff;
  if (!obs::quick()) ff.emplace(fm.build_fabric());

  const auto results =
      apps::run_rows(apps::table7_rows(), ff ? &*ff : nullptr, nullptr);

  sim::Table t("ECP speedups (KPP target 50x)");
  t.header({"Application", "Baseline", "Target", "Paper", "Model", "KPP met"});
  for (const auto& r : results) {
    std::string name = r.row.specs[0].name;
    if (r.row.specs.size() > 1) name = "ExaSMR (Shift+NekRS)";
    t.row({name, r.row.baseline_machine, sim::Table::num(r.row.target, 2) + "x",
           sim::Table::num(r.row.paper_achieved, 4) + "x",
           sim::Table::num(r.speedup, 4) + "x", r.meets_target() ? "yes" : "NO"});
  }
  t.print();

  std::printf("\nComponent detail:\n");
  for (const auto& r : results) {
    for (std::size_t i = 0; i < r.row.specs.size(); ++i) {
      const auto& fr = r.frontier_runs[i];
      const auto& br = r.baseline_runs[i];
      std::printf("  %-15s Frontier %.3e %s on %d nodes | %s %.3e on %d nodes "
                  "| ratio %.1fx\n",
                  fr.app.c_str(), fr.fom, r.row.specs[i].fom_units.c_str(),
                  fr.nodes, br.machine.c_str(), br.fom, br.nodes, fr.fom / br.fom);
    }
  }
  std::printf("\nAnchors: EXAALT sustained 3.57e9 atom-steps/s on 7,000 nodes\n"
              "(398.5x over Mira); ExaSMR combined FOM 70 = harmonic mean of\n"
              "Shift (54x) and NekRS (99.6x); WarpX was first to its KPP.\n");
  return 0;
}
