// Figure 4 — aggregate CPU->GCD bandwidth for 1..8 MPI ranks, each targeting
// its paired GCD over xGMI 2.0. Saturates at the socket's DDR STREAM rate
// (~180 GB/s); a single core reaches ~25.5 GB/s (71% of the 36 GB/s link).
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Figure 4: aggregate CPU-to-GCD bandwidth ==\n\n");
  const auto fabric = hw::IntraNodeFabric::bard_peak();
  const auto cpu = hw::trento();

  std::printf("Single-core CPU->GCD: %.1f GB/s (paper: 25.5 GB/s, 71%% of xGMI2)\n\n",
              fabric.cpu_gcd_single_core_bw() / 1e9);

  sim::Table t("Aggregate bandwidth vs concurrent ranks");
  t.header({"Ranks", "GB/s", "Bar"});
  for (int r = 1; r <= 8; ++r) {
    const double bw = fabric.cpu_gcd_aggregate_bw(r, cpu) / 1e9;
    t.row({std::to_string(r), sim::Table::num(bw, 4),
           std::string(static_cast<std::size_t>(bw / 4), '#')});
  }
  t.print();
  std::printf("\nThe curve is linear until the DDR STREAM ceiling (~%.0f GB/s)\n"
              "because every transfer ultimately streams through socket DRAM.\n",
              cpu.stream_peak() / 1e9);
  return 0;
}
