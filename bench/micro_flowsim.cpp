// Microbenchmarks for the incremental FlowSim rate solver and the engine's
// cancel-heavy event-queue behaviour (ISSUE 2 acceptance: >= 5x flow-update
// throughput over the full re-solve baseline on 1,024-endpoint all-to-all).
//
// Each churn benchmark keeps one outstanding flow per participating endpoint
// over a dragonfly fabric; every completion immediately launches the next
// flow of the pattern, so steady state holds F ~ n concurrent flows and every
// event is an add+remove against the solver. `items_per_second` is therefore
// completed-flow throughput, i.e. flow-update throughput.
//
// Reported counters:
//   comp_avg   — mean flows handed to the solver per resolve (full = F)
//   fallback%  — share of resolves that fell back to the full solve
//   heap       — engine heap occupancy at the end of the run
//   stale      — cancelled-but-unpopped heap entries (bounded by compaction)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "net/fabric.hpp"
#include "net/flowsim.hpp"
#include "obs/options.hpp"
#include "resil/jobsim.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

using namespace xscale;

namespace {

enum class Pattern { Permutation, Incast, AllToAll };

net::Fabric build_fabric(int endpoints) {
  // Dragonfly shapes sized so groups x switches x endpoints = n.
  int g = 4, s = 4, e = 4;  // 64
  if (endpoints >= 4096) {
    g = 32; s = 16; e = 8;
  } else if (endpoints >= 1024) {
    g = 16; s = 8; e = 8;
  } else if (endpoints >= 256) {
    g = 8; s = 8; e = 4;
  }
  auto t = topo::Topology::uniform_dragonfly(g, {s, e}, 1, 25e9, 180e-9);
  net::FabricConfig cfg;
  cfg.routing = net::Routing::Minimal;  // deterministic paths across modes
  return net::Fabric(std::move(t), cfg);
}

// One churn run: `target` completions, one outstanding flow per endpoint.
// Returns completions (== target).
std::uint64_t churn(net::FlowSim& fs, sim::Engine& eng, Pattern p, int n,
                    std::uint64_t target) {
  sim::Rng rng(0xC0FFEE);
  std::uint64_t completions = 0, launched = 0;
  std::vector<int> shift(static_cast<std::size_t>(n), 0);
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = (i + n / 2) % n;

  std::function<void(int)> launch = [&](int src) {
    if (launched >= target) return;
    ++launched;
    int dst = src;
    switch (p) {
      case Pattern::Permutation:
        dst = perm[static_cast<std::size_t>(src)];
        break;
      case Pattern::Incast:
        dst = 0;
        break;
      case Pattern::AllToAll: {
        auto& k = shift[static_cast<std::size_t>(src)];
        dst = (src + 1 + k) % n;
        k = (k + 1) % (n - 1);
        break;
      }
    }
    fs.start(src, dst, rng.uniform(1e7, 1e8), [&, src] {
      ++completions;
      launch(src);
    });
  };
  const int first = p == Pattern::Incast ? 1 : 0;
  for (int i = first; i < n; ++i) launch(i);
  eng.run();
  return completions;
}

void BM_FlowChurn(benchmark::State& state, Pattern p, bool incremental) {
  const int n = static_cast<int>(state.range(0));
  const auto fabric = build_fabric(n);
  const auto target = static_cast<std::uint64_t>(2 * n);
  net::FlowSim::Stats last{};
  std::size_t heap = 0, stale = 0;
  for (auto _ : state) {
    sim::Engine eng;
    net::FlowSim fs(eng, fabric, {.incremental = incremental});
    const auto done = churn(fs, eng, p, n, target);
    benchmark::DoNotOptimize(done);
    last = fs.stats();
    heap = eng.heap_size();
    stale = eng.cancelled_events();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(target));
  const double solves = static_cast<double>(
      last.full_solves + last.fallback_solves + last.component_solves);
  state.counters["comp_avg"] =
      solves > 0 ? static_cast<double>(last.flows_solved) / solves : 0.0;
  state.counters["fallback%"] =
      last.resolves
          ? 100.0 * static_cast<double>(last.fallback_solves) /
                static_cast<double>(last.resolves)
          : 0.0;
  state.counters["heap"] = static_cast<double>(heap);
  state.counters["stale"] = static_cast<double>(stale);
}

// Thread-scaling (ISSUE 4): full-solve all-to-all churn at 4,096 endpoints.
// All-to-all is one connected component, so the win comes from the parallel
// min-share scan inside the water-filling loop (engaged at >= 4096 active
// links); results are bit-identical at any thread count, only wall clock
// changes. Sweep XSCALE_THREADS-equivalents via the Arg.
void BM_FlowChurnThreads(benchmark::State& state) {
  const int prev_threads = sim::thread_count();
  sim::set_thread_count(static_cast<int>(state.range(0)));
  const int n = 4096;
  const auto fabric = build_fabric(n);
  const auto target = static_cast<std::uint64_t>(2 * n);
  for (auto _ : state) {
    sim::Engine eng;
    net::FlowSim fs(eng, fabric, {.incremental = false});
    const auto done = churn(fs, eng, Pattern::AllToAll, n, target);
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(target));
  state.counters["threads"] = static_cast<double>(state.range(0));
  sim::set_thread_count(prev_threads);
}

// Thread-scaling companion for the resiliency Monte Carlo paths (trial-
// sharded job replay); lives here so one binary produces both scaling
// curves for EXPERIMENTS.md.
void BM_JobReplayThreads(benchmark::State& state) {
  const int prev_threads = sim::thread_count();
  sim::set_thread_count(static_cast<int>(state.range(0)));
  const resil::ResiliencyModel model;
  resil::JobSimConfig cfg;
  cfg.work_hours = 24.0;
  const int trials = 20000;
  for (auto _ : state) {
    const auto s = resil::replay_jobs(model, 0x5EED, trials, cfg);
    benchmark::DoNotOptimize(s.mean.efficiency);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          trials);
  state.counters["threads"] = static_cast<double>(state.range(0));
  sim::set_thread_count(prev_threads);
}

// Engine-level churn: the reschedule pattern (schedule, cancel, schedule)
// that used to accumulate stale heap entries without bound.
void BM_EngineCancelChurn(benchmark::State& state) {
  const int live = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < live; ++i)
      ids.push_back(eng.schedule_at(1e9 + i, [] {}));
    for (int i = 0; i < 200000; ++i) {
      const auto idx = static_cast<std::size_t>(i % live);
      eng.cancel(ids[idx]);
      ids[idx] = eng.schedule_at(static_cast<double>(i), [] {});
    }
    benchmark::DoNotOptimize(eng.heap_size());
    state.counters["heap"] = static_cast<double>(eng.heap_size());
    state.counters["stale"] = static_cast<double>(eng.cancelled_events());
    state.counters["compactions"] = static_cast<double>(eng.compactions());
  }
  state.SetItemsProcessed(state.iterations() * 200000);
}

}  // namespace

BENCHMARK_CAPTURE(BM_FlowChurn, permutation_incremental, Pattern::Permutation, true)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, permutation_full, Pattern::Permutation, false)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, alltoall_incremental, Pattern::AllToAll, true)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, alltoall_full, Pattern::AllToAll, false)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, incast_incremental, Pattern::Incast, true)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, incast_full, Pattern::Incast, false)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineCancelChurn)->Arg(4)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlowChurnThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JobReplayThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Expanded BENCHMARK_MAIN() so the shared obs flags (--trace <file>,
// --metrics) are stripped before google-benchmark parses argv.
int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
