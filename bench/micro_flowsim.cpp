// Microbenchmarks for the incremental FlowSim rate solver and the engine's
// cancel-heavy event-queue behaviour (ISSUE 2 acceptance: >= 5x flow-update
// throughput over the full re-solve baseline on 1,024-endpoint all-to-all;
// ISSUE 5 acceptance: zero heap allocations per steady-state incremental
// re-solve, proven by the interposed counting allocator below).
//
// Each churn benchmark keeps one outstanding flow per participating endpoint
// over a dragonfly fabric; every completion immediately launches the next
// flow of the pattern, so steady state holds F ~ n concurrent flows and every
// event is an add+remove against the solver. `items_per_second` is therefore
// completed-flow throughput, i.e. flow-update throughput.
//
// Reported counters:
//   comp_avg   — mean flows handed to the solver per resolve (full = F)
//   fallback%  — share of resolves that fell back to the full solve
//   heap       — engine heap occupancy at the end of the run
//   stale      — cancelled-but-unpopped heap entries (bounded by compaction)
//   allocs/op  — heap allocations per completed flow (includes sim setup)
//   allocs/resolve — steady-state allocations per re-solve (BM_SteadyResolve;
//                    the ISSUE 5 zero-allocation acceptance number)
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <new>
#include <optional>
#include <vector>

#include "net/fabric.hpp"
#include "net/flowsim.hpp"
#include "net/rotor.hpp"
#include "obs/metrics.hpp"
#include "obs/options.hpp"
#include "resil/jobsim.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

// ---------------------------------------------------------------------------
// Interposed counting allocator: every global new/new[] (aligned and nothrow
// forms included) bumps one relaxed atomic. Benchmarks read deltas around the
// measured region, so the zero-allocation claim is checked against the real
// allocator, not a model of it.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
std::uint64_t heap_allocs() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}
void* counted_alloc(std::size_t n) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n ? n : 1);
}
void* counted_aligned_alloc(std::size_t n, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (n + align - 1) / align * align;
  return std::aligned_alloc(align, rounded ? rounded : align);
}
}  // namespace

void* operator new(std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  if (void* p = counted_alloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc(n);
}
void* operator new(std::size_t n, std::align_val_t a) {
  if (void* p = counted_aligned_alloc(n, static_cast<std::size_t>(a))) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n, std::align_val_t a) {
  if (void* p = counted_aligned_alloc(n, static_cast<std::size_t>(a))) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

using namespace xscale;

namespace {

enum class Pattern { Permutation, Incast, AllToAll };

// Topology family for the cross-topology churn rows (ISSUE 9): same churn
// driver, same counters, different fabric physics.
enum class Fab { Dragonfly, OsFatTree, Rotor };

// Wall-clock of the last build_fabric call, in ms — recorded per benchmark so
// a topology-construction regression shows up in the snapshot instead of
// silently inflating setup time outside the measured region.
double g_topo_build_ms = 0.0;

net::Fabric build_fabric(int endpoints, Fab fam = Fab::Dragonfly) {
  const auto tb0 = std::chrono::steady_clock::now();
  topo::Topology t = [&] {
    switch (fam) {
      case Fab::OsFatTree: {
        // Square-ish leaves x eps_per_leaf = n, 4:1 oversubscribed uplinks.
        int leaves = 8, e = 8;  // 64
        if (endpoints >= 1024) {
          leaves = 32; e = 32;
        } else if (endpoints >= 256) {
          leaves = 16; e = 16;
        }
        return topo::Topology::oversubscribed_fat_tree(leaves, e, 4.0, 25e9,
                                                       180e-9);
      }
      case Fab::Rotor: {
        // Full-coverage rotor (n_matchings = n_switches - 1) so every churn
        // pair eventually gets a live slot.
        int sw = 8, e = 8;  // 64
        if (endpoints >= 256) {
          sw = 16; e = 16;
        }
        return topo::Topology::rotor(sw, e, sw - 1, 250e-6, 0.9, 25e9,
                                     180e-9);
      }
      case Fab::Dragonfly:
        break;
    }
    // Dragonfly shapes sized so groups x switches x endpoints = n. Above the
    // paper's single-Frontier shape the ladder scales by adding groups at the
    // same 16x8 group spec (the real machine's scale-out axis): 148 groups ~
    // 2x Frontier, 296 ~ 4x, 740 ~ 10x (the 100k smoke row). Past ~724
    // switches the Fabric drops its dense switch-pair route table, so these
    // rows also exercise the sparse routing path.
    int g = 4, s = 4, e = 4;  // 64
    if (endpoints >= 75776) {
      g = 740; s = 16; e = 8;  // 94,720 eps — 10x-Frontier smoke shape
    } else if (endpoints >= 37888) {
      g = 296; s = 16; e = 8;  // 37,888 eps — 4x Frontier
    } else if (endpoints >= 18944) {
      g = 148; s = 16; e = 8;  // 18,944 eps — 2x Frontier
    } else if (endpoints >= 9408) {
      g = 74; s = 16; e = 8;  // 9,472 eps — the paper's 74+6-group shape
    } else if (endpoints >= 4096) {
      g = 32; s = 16; e = 8;
    } else if (endpoints >= 1024) {
      g = 16; s = 8; e = 8;
    } else if (endpoints >= 256) {
      g = 8; s = 8; e = 4;
    }
    return topo::Topology::uniform_dragonfly(g, {s, e}, 1, 25e9, 180e-9);
  }();
  net::FabricConfig cfg;
  cfg.routing = net::Routing::Minimal;  // deterministic paths across modes
  net::Fabric fabric(std::move(t), cfg);
  g_topo_build_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                tb0)
          .count();
  return fabric;
}

// Route-cache effectiveness over a measured region: hit% of all lookups.
// The cache lives on the shared TopologySnapshot, so it persists across
// benchmark iterations — exactly the steady-churn behaviour the gate guards.
struct RouteCacheProbe {
  std::uint64_t hit0 = 0, miss0 = 0;
  RouteCacheProbe() { reset(); }
  void reset() {
    hit0 = obs::metrics().counter("net.route_cache.hit").value();
    miss0 = obs::metrics().counter("net.route_cache.miss").value();
  }
  double hit_pct() const {
    const std::uint64_t h =
        obs::metrics().counter("net.route_cache.hit").value() - hit0;
    const std::uint64_t m =
        obs::metrics().counter("net.route_cache.miss").value() - miss0;
    return h + m ? 100.0 * static_cast<double>(h) /
                       static_cast<double>(h + m)
                 : 0.0;
  }
};

// Churn driver: one outstanding flow per participating endpoint until the
// launch budget runs out. The completion callback captures only {this, src}
// (12 bytes), so it fits std::function's small-buffer storage — flow starts
// in the measured region touch no allocator for the closure.
struct ChurnDriver {
  net::FlowSim& fs;
  Pattern p;
  int n;
  std::uint64_t budget = 0;  // launches remaining
  sim::Rng rng{0xC0FFEE};
  std::uint64_t completions = 0;
  // Steady-window probe (ISSUE 8): stats snapshots at two completion
  // milestones, so write-back effectiveness can be measured over mid-run
  // steady churn only. The t=0 ramp fill and the end-of-budget drain tail
  // both change the shared bottleneck's uniform rate on every step — those
  // are genuine whole-set rate changes (the eager reference applies them
  // too), not write-back waste, and must not pollute the sub-linear gate.
  std::uint64_t mark1 = 0, mark2 = 0;  // 0 = disabled
  net::FlowSim::Stats stats1{}, stats2{};
  std::uint64_t allocs1 = 0, allocs2 = 0;  // heap_allocs() at the marks
  std::vector<int> shift;
  std::vector<int> perm;
  std::vector<int> idle;  // endpoints whose chain stopped on budget exhaustion
  std::vector<int> restart;  // swap partner for `idle` (keeps capacity warm)

  ChurnDriver(net::FlowSim& fs_, Pattern p_, int n_) : fs(fs_), p(p_), n(n_) {
    shift.assign(static_cast<std::size_t>(n), 0);
    perm.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      perm[static_cast<std::size_t>(i)] = (i + n / 2) % n;
    idle.reserve(static_cast<std::size_t>(n));
    restart.reserve(static_cast<std::size_t>(n));
  }

  void launch(int src) {
    if (budget == 0) {
      idle.push_back(src);
      return;
    }
    --budget;
    int dst = src;
    switch (p) {
      case Pattern::Permutation:
        dst = perm[static_cast<std::size_t>(src)];
        break;
      case Pattern::Incast:
        dst = 0;
        break;
      case Pattern::AllToAll: {
        auto& k = shift[static_cast<std::size_t>(src)];
        dst = (src + 1 + k) % n;
        k = (k + 1) % (n - 1);
        break;
      }
    }
    fs.start(src, dst, rng.uniform(1e7, 1e8), [this, src] {
      ++completions;
      if (completions == mark1) {
        stats1 = fs.stats();
        allocs1 = heap_allocs();
      } else if (completions == mark2) {
        stats2 = fs.stats();
        allocs2 = heap_allocs();
      }
      launch(src);
    });
  }

  // Grant `ops` more launches and restart every idled endpoint chain.
  void resume(std::uint64_t ops) {
    budget += ops;
    restart.clear();
    restart.swap(idle);  // idle becomes the empty (but reserved) buffer
    for (int src : restart) launch(src);
  }
};

// Completion target for one churn run over n endpoints. Small rows replace
// every flow once over (2n completions: n ramp + n replacements); the
// multi-Frontier rows (>= 16,384 endpoints, ISSUE 10) cap the replacement
// phase at n/4 churn events so a 94k-endpoint run stays minutes, not hours —
// steady-state throughput is already converged well before one full
// replacement generation.
std::uint64_t churn_target(int n) {
  const auto un = static_cast<std::uint64_t>(n);
  return n >= 16384 ? un + un / 4 : 2 * un;
}

// One churn run from scratch: `target` completions. Returns completions.
// With `wb` non-null, also reports write-back and allocation counts over the
// steady window: with R = target - n replacement launches after the initial
// ramp, the window spans completions R/4 .. 3R/4 — strictly inside the
// replacement-sustained phase (the budget lasts until completion R), so it
// sees neither the initial ramp nor the drain tail.
struct WindowCounts {
  std::uint64_t applied = 0, skipped = 0;
  std::uint64_t allocs = 0, ops = 0;  // heap allocations over the window
};
std::uint64_t churn(net::FlowSim& fs, sim::Engine& eng, Pattern p, int n,
                    std::uint64_t target, WindowCounts* wb = nullptr) {
  ChurnDriver d(fs, p, n);
  d.budget = target;
  if (wb) {
    const std::uint64_t r = target - static_cast<std::uint64_t>(n);
    d.mark1 = r / 4;
    d.mark2 = 3 * r / 4;
  }
  const int first = p == Pattern::Incast ? 1 : 0;
  for (int i = first; i < n; ++i) d.launch(i);
  eng.run();
  if (wb) {
    wb->applied = d.stats2.writeback_applied - d.stats1.writeback_applied;
    wb->skipped = d.stats2.writeback_skipped - d.stats1.writeback_skipped;
    wb->allocs = d.allocs2 - d.allocs1;
    wb->ops = d.mark2 - d.mark1;
  }
  return d.completions;
}

// Re-price a rotor overlay back to slot 0 (matching 0 live, rest dark) so
// every run starts from the same slot state regardless of where the previous
// run's rotation stopped — RotorSchedule assumes slot-0 pricing at
// construction.
void reset_rotor_slot0(net::Fabric& fabric) {
  const auto& t = fabric.topology();
  std::vector<std::pair<int, double>> batch;
  for (int m = 0; m < t.rotor_matchings(); ++m)
    for (int l : t.rotor_matching_links(m))
      batch.emplace_back(l, m == 0 ? t.rotor_active_capacity() : 0.0);
  fabric.set_link_capacities(batch);
}

void BM_FlowChurn(benchmark::State& state, Pattern p, bool incremental,
                  Fab fam = Fab::Dragonfly) {
  const int n = static_cast<int>(state.range(0));
  auto fabric = build_fabric(n, fam);
  const bool is_rotor = fabric.topology().is_rotor();
  const double topo_ms = g_topo_build_ms;
  const auto target = churn_target(n);
  net::FlowSim::Stats last{};
  std::size_t heap = 0, stale = 0;
  std::uint64_t allocs = 0, slot_transitions = 0;
  RouteCacheProbe rc;
  {
    // Prime the shared route cache (it lives on the topology snapshot and
    // persists across runs) with one untimed churn over the full launch
    // sequence (the driver is deterministic, so a timed run replays exactly
    // these pairs — all-to-all advances its shift phase per launch), then
    // rebase the probe so rc_hit% reports steady-state effectiveness, not
    // first-run cold misses.
    sim::Engine weng;
    net::FlowSim wfs(weng, fabric, {.incremental = incremental});
    std::optional<net::RotorSchedule> wrotor;
    if (is_rotor) {
      // Rotor churn needs live slot rotation: a flow whose matching is dark
      // parks at rate zero until its slot comes back.
      wrotor.emplace(weng, fabric, &wfs);
      wrotor->start();
    }
    churn(wfs, weng, p, n, target);
    rc.reset();
  }
  WindowCounts wb{};
  for (auto _ : state) {
    const std::uint64_t a0 = heap_allocs();
    sim::Engine eng;
    if (is_rotor) reset_rotor_slot0(fabric);
    net::FlowSim fs(eng, fabric, {.incremental = incremental});
    std::optional<net::RotorSchedule> rotor;
    if (is_rotor) {
      rotor.emplace(eng, fabric, &fs);
      rotor->start();
    }
    const auto done = churn(fs, eng, p, n, target, &wb);
    benchmark::DoNotOptimize(done);
    allocs += heap_allocs() - a0;
    last = fs.stats();
    heap = eng.heap_size();
    stale = eng.cancelled_events();
    if (rotor) slot_transitions = rotor->transitions();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(target));
  const double solves = static_cast<double>(
      last.full_solves + last.fallback_solves + last.component_solves);
  state.counters["comp_avg"] =
      solves > 0 ? static_cast<double>(last.flows_solved) / solves : 0.0;
  state.counters["fallback%"] =
      last.resolves
          ? 100.0 * static_cast<double>(last.fallback_solves) /
                static_cast<double>(last.resolves)
          : 0.0;
  state.counters["heap"] = static_cast<double>(heap);
  state.counters["stale"] = static_cast<double>(stale);
  // Warm-start effectiveness (ISSUE 6): share of resolves taking the warm
  // whole-set path, and the mean flows actually *iterated* per warm solve
  // (memo hits and frozen-prefix replays shrink this below comp_avg).
  state.counters["warm%"] =
      last.resolves ? 100.0 * static_cast<double>(last.warm_solves) /
                          static_cast<double>(last.resolves)
                    : 0.0;
  state.counters["frontier_avg"] =
      last.warm_solves ? static_cast<double>(last.frontier_flows) /
                             static_cast<double>(last.warm_solves)
                       : 0.0;
  // Whole-run allocations per completed flow, cold start included (engine,
  // simulator, first-touch arena growth) — the trajectory number. The
  // steady-state zero-allocation claim is BM_SteadyResolve's.
  state.counters["allocs/op"] =
      state.iterations()
          ? static_cast<double>(allocs) /
                static_cast<double>(state.iterations() * target)
          : 0.0;
  // Write-back effectiveness (ISSUE 8), measured over the mid-run steady
  // window only (see `churn`): share of write-back decisions that actually
  // changed a rate. Incast steady state must stay sub-linear — same-instant
  // coalescing parks one uniform rate per churn event and the
  // materialisation skips almost everyone — which check_bench.py gates.
  const double wb_total = static_cast<double>(wb.applied + wb.skipped);
  state.counters["writeback%"] =
      wb_total > 0
          ? 100.0 * static_cast<double>(wb.applied) / wb_total
          : 0.0;
  // Steady-window allocations per churn event (ISSUE 10): allocs/op above
  // includes the cold start (engine, simulator, first-touch arena growth) by
  // design; this one is measured strictly inside the replacement-sustained
  // window and must sit at ~0 on incremental rows — the per-op restatement
  // of BM_SteadyResolve's zero-allocation claim, now visible on every row.
  state.counters["steady_allocs/op"] =
      wb.ops ? static_cast<double>(wb.allocs) / static_cast<double>(wb.ops)
             : 0.0;
  // Share of water-filling iterations whose min-share scan crossed the
  // parallel gate and ran as a chunked parallel reduce (ISSUE 10). Most
  // incremental rows solve small per-churn components and stay at 0; the
  // warm whole-set and full-solve paths engage once the live link count
  // clears solver_tuning().parallel_scan_threshold.
  state.counters["scan_engaged%"] =
      last.solver_iterations
          ? 100.0 * static_cast<double>(last.parallel_scans) /
                static_cast<double>(last.solver_iterations)
          : 0.0;
  state.counters["rc_hit%"] = rc.hit_pct();
  state.counters["topo_build_ms"] = topo_ms;
  if (is_rotor) {
    // Slot-boundary cost (ISSUE 9): how many transitions the run needed and
    // how many warm-memo generations they invalidated. check_bench.py gates
    // that rotor rows actually rotated and that slot re-pricing leaves the
    // route cache untouched (the generic rc_hit% floor).
    state.counters["slot_transitions"] = static_cast<double>(slot_transitions);
    state.counters["memo_stale"] = static_cast<double>(last.warm_memo_stale);
  }
}

// ISSUE 5 acceptance probe: allocations per *steady-state* incremental
// re-solve. One engine + simulator persist across the whole benchmark; a
// warmup churn grows every arena (flow slots, per-link incidence, CSR
// scratch, route cache, engine heap) to its fixed point, then each iteration
// runs a measured churn window against the warm state. allocs/resolve must
// be exactly 0.
void BM_SteadyResolve(benchmark::State& state, Pattern p) {
  const int n = static_cast<int>(state.range(0));
  const auto fabric = build_fabric(n);
  sim::Engine eng;
  net::FlowSim fs(eng, fabric, {.incremental = true});
  ChurnDriver d(fs, p, n);
  // Warm up long enough for all-to-all to visit many shift phases, so
  // per-link incidence lists reach their steady capacity.
  const auto warm = static_cast<std::uint64_t>(std::max(8 * n, 20000));
  d.budget = warm;
  const int first = p == Pattern::Incast ? 1 : 0;
  for (int i = first; i < n; ++i) d.launch(i);
  eng.run();

  const auto window = static_cast<std::uint64_t>(2 * n);
  for (int i = 0; i < 2; ++i) {  // discard windows: absorb late capacity maxima
    d.resume(window);
    eng.run();
  }
  std::uint64_t allocs = 0, resolves = 0, ops = 0;
  for (auto _ : state) {
    const std::uint64_t a0 = heap_allocs();
    const std::uint64_t r0 = fs.stats().resolves;
    const std::uint64_t c0 = d.completions;
    d.resume(window);
    eng.run();
    allocs += heap_allocs() - a0;
    resolves += fs.stats().resolves - r0;
    ops += d.completions - c0;
    benchmark::DoNotOptimize(d.completions);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["allocs/resolve"] =
      resolves ? static_cast<double>(allocs) / static_cast<double>(resolves)
               : 0.0;
  state.counters["allocs_total"] = static_cast<double>(allocs);
  state.counters["resolves"] = static_cast<double>(resolves);
}

// Thread-scaling (ISSUE 4): full-solve all-to-all churn at 4,096 endpoints.
// All-to-all is one connected component, so the win comes from the parallel
// min-share scan inside the water-filling loop (engaged at >= 4096 active
// links); results are bit-identical at any thread count, only wall clock
// changes. Sweep XSCALE_THREADS-equivalents via the Arg.
void BM_FlowChurnThreads(benchmark::State& state) {
  const int prev_threads = sim::thread_count();
  sim::set_thread_count(static_cast<int>(state.range(0)));
  const int n = 4096;
  const auto fabric = build_fabric(n);
  const auto target = churn_target(n);
  net::FlowSim::Stats last{};
  for (auto _ : state) {
    sim::Engine eng;
    net::FlowSim fs(eng, fabric, {.incremental = false});
    const auto done = churn(fs, eng, Pattern::AllToAll, n, target);
    benchmark::DoNotOptimize(done);
    last = fs.stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(target));
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["scan_engaged%"] =
      last.solver_iterations
          ? 100.0 * static_cast<double>(last.parallel_scans) /
                static_cast<double>(last.solver_iterations)
          : 0.0;
  sim::set_thread_count(prev_threads);
}

// Thread-scaling for the warm whole-set solve (ISSUE 8/10): all-to-all churn
// with fallback_fraction = 0, which routes every resolve through the warm
// whole-set water-filling — the path whose min-share scan and batch
// rate-subtraction cross the parallel gates once the live link list is large
// enough. The full-solve variant above never exercises these code paths, so
// its scaling numbers said nothing about warm resolves (and plain
// incremental all-to-all churn solves small per-churn components, never the
// whole set). Args are {threads, endpoints}: the Frontier-scale row (9,408)
// sweeps the full thread ladder; the 2x/4x-Frontier rows (ISSUE 10) run
// {1, 4} so the recorded snapshot carries the 4-thread-vs-1-thread speedup
// check_bench.py gates at every fabric scale.
void BM_FlowChurnThreadsWarm(benchmark::State& state) {
  const int prev_threads = sim::thread_count();
  sim::set_thread_count(static_cast<int>(state.range(0)));
  const int n = static_cast<int>(state.range(1));
  const auto fabric = build_fabric(n);
  const auto target = churn_target(n);
  net::FlowSim::Stats last{};
  for (auto _ : state) {
    sim::Engine eng;
    net::FlowSim fs(eng, fabric,
                    {.incremental = true, .fallback_fraction = 0.0});
    const auto done = churn(fs, eng, Pattern::AllToAll, n, target);
    benchmark::DoNotOptimize(done);
    last = fs.stats();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(target));
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["warm%"] =
      last.resolves ? 100.0 * static_cast<double>(last.warm_solves) /
                          static_cast<double>(last.resolves)
                    : 0.0;
  state.counters["scan_engaged%"] =
      last.solver_iterations
          ? 100.0 * static_cast<double>(last.parallel_scans) /
                static_cast<double>(last.solver_iterations)
          : 0.0;
  sim::set_thread_count(prev_threads);
}

// Thread-scaling companion for the resiliency Monte Carlo paths (trial-
// sharded job replay); lives here so one binary produces both scaling
// curves for EXPERIMENTS.md.
void BM_JobReplayThreads(benchmark::State& state) {
  const int prev_threads = sim::thread_count();
  sim::set_thread_count(static_cast<int>(state.range(0)));
  const resil::ResiliencyModel model;
  resil::JobSimConfig cfg;
  cfg.work_hours = 24.0;
  const int trials = 20000;
  for (auto _ : state) {
    const auto s = resil::replay_jobs(model, 0x5EED, trials, cfg);
    benchmark::DoNotOptimize(s.mean.efficiency);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          trials);
  state.counters["threads"] = static_cast<double>(state.range(0));
  sim::set_thread_count(prev_threads);
}

// Engine-level churn: the reschedule pattern (schedule, cancel, schedule)
// that used to accumulate stale heap entries without bound.
void BM_EngineCancelChurn(benchmark::State& state) {
  const int live = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < live; ++i)
      ids.push_back(eng.schedule_at(1e9 + i, [] {}));
    for (int i = 0; i < 200000; ++i) {
      const auto idx = static_cast<std::size_t>(i % live);
      eng.cancel(ids[idx]);
      ids[idx] = eng.schedule_at(static_cast<double>(i), [] {});
    }
    benchmark::DoNotOptimize(eng.heap_size());
    state.counters["heap"] = static_cast<double>(eng.heap_size());
    state.counters["stale"] = static_cast<double>(eng.cancelled_events());
    state.counters["compactions"] = static_cast<double>(eng.compactions());
  }
  state.SetItemsProcessed(state.iterations() * 200000);
}

}  // namespace

// Multi-Frontier rows (ISSUE 10): 18,944 (2x Frontier), 37,888 (4x), and a
// 94,720-endpoint (10x) permutation smoke row. record_bench.sh --quick
// filters them out; the full recording includes them.
BENCHMARK_CAPTURE(BM_FlowChurn, permutation_incremental, Pattern::Permutation, true)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(9408)
    ->Arg(18944)->Arg(37888)->Arg(94720)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, permutation_full, Pattern::Permutation, false)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, alltoall_incremental, Pattern::AllToAll, true)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(9408)
    ->Arg(18944)->Arg(37888)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, alltoall_full, Pattern::AllToAll, false)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, incast_incremental, Pattern::Incast, true)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Arg(9408)
    ->Arg(18944)->Arg(37888)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, incast_full, Pattern::Incast, false)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
// Cross-topology churn rows (ISSUE 9): identical driver and counters on the
// 4:1 oversubscribed fat-tree and the full-coverage rotor, so the route-cache
// and write-back gates cover all three fabric families.
BENCHMARK_CAPTURE(BM_FlowChurn, osft_permutation_incremental,
                  Pattern::Permutation, true, Fab::OsFatTree)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, osft_incast_incremental, Pattern::Incast,
                  true, Fab::OsFatTree)
    ->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, rotor_permutation_incremental,
                  Pattern::Permutation, true, Fab::Rotor)
    ->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FlowChurn, rotor_incast_incremental, Pattern::Incast,
                  true, Fab::Rotor)
    ->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SteadyResolve, alltoall, Pattern::AllToAll)
    ->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SteadyResolve, permutation, Pattern::Permutation)
    ->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EngineCancelChurn)->Arg(4)->Arg(1024)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlowChurnThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlowChurnThreadsWarm)
    ->Args({1, 9408})->Args({2, 9408})->Args({4, 9408})->Args({8, 9408})
    ->Args({1, 18944})->Args({4, 18944})
    ->Args({1, 37888})->Args({4, 37888})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JobReplayThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Expanded BENCHMARK_MAIN() so the shared obs flags (--trace <file>,
// --metrics) are stripped before google-benchmark parses argv.
int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
