// Table 5 — GPCNeT on 9,400 nodes: isolated vs congested at 8 PPN (ideal,
// impact 1.0x), the 32 PPN degradation (§4.2.2), and a congestion-control
// ablation showing what Slingshot's CC buys.
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;

namespace {

void print_result(const char* title, const mpi::GpcnetResult& r) {
  std::printf("%s\n", title);
  sim::Table t("isolated vs congested");
  t.header({"Name", "Iso Avg", "Iso 99%", "Cong Avg", "Cong 99%", "Impact", "Units"});
  for (std::size_t i = 0; i < r.isolated.size(); ++i) {
    t.row({r.isolated[i].name, sim::Table::num(r.isolated[i].average, 5),
           sim::Table::num(r.isolated[i].p99, 5),
           sim::Table::num(r.congested[i].average, 5),
           sim::Table::num(r.congested[i].p99, 5),
           sim::Table::num(r.impact[i], 3) + "x", r.isolated[i].units});
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Table 5: GPCNeT on 9,400 nodes ==\n\n");
  const auto m = machines::frontier();
  auto fabric = m.build_fabric();

  mpi::GpcnetConfig cfg;
  if (obs::quick()) {
    // Golden harness: a smaller rank count and fewer latency samples keep
    // the same three tables at a fraction of the solve time.
    cfg.nodes = 1200;
    cfg.latency_samples = 512;
  }
  cfg.ppn = 8;
  auto r8 = mpi::run_gpcnet(m, fabric, cfg);
  print_result("--- 8 PPN (paper's Table 5: congested == isolated) ---", r8);
  std::printf("Paper: Lat 2.6/4.8 us, BW 3497/2514 MiB/s/rank, Allreduce 51.5/54.1 us;\n"
              "impact 1.0x on every metric.\n\n");

  cfg.ppn = 32;
  auto r32 = mpi::run_gpcnet(m, fabric, cfg);
  print_result("--- 32 PPN (paper: 1.2-1.6x avg, 1.8-7.6x tail degradation) ---", r32);

  // Ablation: what the results would look like without hardware congestion
  // control (head-of-line blocking couples victims to congestor trees).
  auto nocc_cfg = m.fabric_defaults;
  nocc_cfg.congestion_control = false;
  auto nocc_fabric = m.build_fabric(nocc_cfg);
  cfg.ppn = 8;
  auto rn = mpi::run_gpcnet(m, nocc_fabric, cfg);
  print_result("--- Ablation: congestion control disabled, 8 PPN ---", rn);
  std::printf("Without CC the victim bandwidth impact factor is %.1fx — the\n"
              "qualitative gap the paper attributes to Slingshot's congestion\n"
              "control vs Summit's EDR InfiniBand.\n",
              rn.impact[1]);

  // Cross-machine comparison (ISSUE 9): the same congestor suite on Summit
  // (non-blocking fat-tree, no Slingshot-class CC) and Aurora (Slingshot
  // dragonfly, 8 NICs/node) — the three-point spread the cross-topology
  // chapter in EXPERIMENTS.md tabulates.
  cfg.ppn = 8;
  const auto summit = machines::summit();
  auto sfab = summit.build_fabric();
  auto rs = mpi::run_gpcnet(summit, sfab, cfg);
  print_result("--- Cross-machine: Summit, 8 PPN ---", rs);

  const auto aurora = machines::aurora();
  auto afab = aurora.build_fabric();
  auto ra = mpi::run_gpcnet(aurora, afab, cfg);
  print_result("--- Cross-machine: Aurora, 8 PPN ---", ra);
  return 0;
}
