// Section 5.1 — Energy and Power: Frontier's 52 GF/W at 21.1 MW against the
// 2008 exascale report's 20 MW/EF target and its 68-155 MW/EF straw men.
#include <cstdio>

#include "apps/hpl.hpp"
#include "core/xscale.hpp"

using namespace xscale;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Section 5.1: Energy and Power ==\n\n");
  power::SystemPowerModel model;

  // Run the HPL proxy itself; its Rmax feeds the efficiency figure.
  const auto hpl = apps::run_hpl(machines::frontier(), nullptr, 9408);
  std::printf("HPL proxy: N=%.0f, Rmax %.3f EF (TOP500 June 2022: 1.102 EF),\n"
              "time-to-solution %.1f h, %.0f%% of time in DGEMM\n\n",
              hpl.n, hpl.rmax / 1e18, hpl.time_s / 3600.0,
              100 * hpl.dgemm_fraction);

  auto g = power::frontier_green500(model);
  g.rmax_flops = hpl.rmax;
  g.gf_per_watt = g.rmax_flops / 1e9 / g.power_w;
  std::printf("HPL-like workload:\n");
  std::printf("  system power        %6.2f MW   (paper: 21.1 MW)\n", g.power_w / 1e6);
  std::printf("  Rmax (proxy)        %6.3f EF   (June 2022 TOP500: 1.102 EF)\n",
              g.rmax_flops / 1e18);
  std::printf("  efficiency          %6.1f GF/W (paper: 52 GF/W, report target 50)\n",
              g.gf_per_watt);

  std::printf("\nPer-node breakdown at HPL activity:\n");
  const auto a = power::hpl_activity();
  std::printf("  node power %.0f W  (CPU %.0f%%, GPUs %.0f%%, DDR %.0f%%, NICs %.0f%% active)\n",
              model.node.node_power(a), 100 * a.cpu, 100 * a.gpu, 100 * a.memory,
              100 * a.nic);

  std::printf("\nWorkload sweep:\n");
  const struct {
    const char* name;
    power::Activity act;
  } pts[] = {{"idle", power::idle_activity()},
             {"STREAM (memory-bound)", power::stream_activity()},
             {"HPL (GPU-saturating)", power::hpl_activity()}};
  for (const auto& p : pts)
    std::printf("  %-22s %6.2f MW\n", p.name, model.system_power(p.act) / 1e6);

  const auto c = power::strawman_comparison(model);
  std::printf("\n2008 exascale report comparison (MW per EF):\n");
  std::printf("  report straw men      %3.0f - %3.0f MW/EF\n", c.report_low_mw_per_ef,
              c.report_high_mw_per_ef);
  std::printf("  report target          %3.0f MW/EF\n", c.report_target_mw_per_ef);
  std::printf("  Frontier (Rmax)        %4.1f MW/EF -> %0.1fx better than the best\n"
              "  straw man, meeting the 'spirit' of the 20 MW target (Section 5.1).\n",
              c.frontier_mw_per_ef, c.report_low_mw_per_ef / c.frontier_mw_per_ef);
  return 0;
}
