// Section 4.4 scaling claims (not a numbered figure, but quantified in the
// text):
//   * WarpX: "near-ideal weak-scaling over multiple orders of magnitude of
//     system utilization and realistic strong-scaling over an order of
//     magnitude in node-numbers";
//   * Shift: "a weak-scaling efficiency of 97.8% from 1 to 8,192 nodes";
//   * PIConGPU: "90% weak scaling efficiency" at 9,216 nodes;
//   * HACC: "consistent timings between the 4096-8192 node Frontier runs".
#include <cstdio>
#include <numeric>
#include <optional>

#include "core/xscale.hpp"

using namespace xscale;

namespace {

// Weak scaling: per-GPU FOM at `nodes` relative to one node.
double weak_eff(const apps::AppSpec& spec, const machines::Machine& m,
                const net::Fabric* f, int nodes) {
  const auto one = apps::run_app(spec, m, f, 1);
  const auto many = apps::run_app(spec, m, f, nodes);
  return (many.fom / many.gpus) / (one.fom / one.gpus);
}

}  // namespace

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Section 4.4 scaling claims ==\n\n");
  const auto m = machines::frontier();
  // --quick (golden harness): analytic communication fallback skips the
  // full-machine flow solves; same sections, same format.
  std::optional<net::Fabric> built;
  if (!obs::quick()) built.emplace(m.build_fabric());
  const net::Fabric* fabric_p = built ? &*built : nullptr;

  std::printf("--- WarpX weak scaling (per-GCD rate vs 1 node) ---\n");
  for (int nodes : {8, 64, 512, 4096, 9216}) {
    std::printf("  %5d nodes: %.1f%% of ideal\n", nodes,
                100.0 * weak_eff(apps::warpx(), m, fabric_p, nodes));
  }
  std::printf("  (paper: near-ideal over multiple orders of magnitude)\n\n");

  std::printf("--- WarpX strong scaling (fixed problem, 9216-node size) ---\n");
  {
    const auto base_spec = apps::warpx();
    const int n0 = 922;  // 1/10th of the weak-scaled run
    double t0 = 0;
    for (int nodes : {922, 1843, 4608, 9216}) {
      // Fixed total work: shrink per-GPU units as nodes grow.
      auto spec = base_spec;
      spec.work_units_per_gpu = base_spec.work_units_per_gpu * n0 / nodes;
      spec.comm.halo_bytes =
          base_spec.comm.halo_bytes * std::pow(static_cast<double>(n0) / nodes, 2.0 / 3.0);
      const auto r = apps::run_app(spec, m, fabric_p, nodes);
      if (t0 == 0) t0 = r.step_time * nodes;
      std::printf("  %5d nodes: speedup %5.2fx of %4.1fx ideal (step %s)\n", nodes,
                  t0 / (r.step_time * nodes) * nodes / n0,
                  static_cast<double>(nodes) / n0,
                  units::fmt_time(r.step_time).c_str());
    }
  }
  std::printf("  (paper: realistic strong-scaling over an order of magnitude)\n\n");

  std::printf("--- Shift (ExaSMR) weak scaling ---\n");
  const double shift_eff = weak_eff(apps::exasmr_shift(), m, fabric_p, 8192);
  std::printf("  1 -> 8192 nodes: %.1f%% (paper: 97.8%%)\n\n", 100.0 * shift_eff);

  std::printf("--- PIConGPU weak scaling ---\n");
  std::printf("  1 -> 9216 nodes: %.1f%% (paper: 90%%)\n\n",
              100.0 * weak_eff(apps::picongpu(), m, fabric_p, 9216));

  std::printf("--- HACC 4096 vs 8192 node consistency ---\n");
  const auto h4 = apps::run_app(apps::hacc(), m, fabric_p, 4096);
  const auto h8 = apps::run_app(apps::hacc(), m, fabric_p, 8192);
  std::printf("  step time: %s vs %s (%.1f%% apart; paper: 'consistent timings')\n",
              units::fmt_time(h4.step_time).c_str(),
              units::fmt_time(h8.step_time).c_str(),
              100.0 * std::abs(h8.step_time - h4.step_time) / h4.step_time);
  return 0;
}
