// Table 1 — Frontier Compute Peak Specifications.
//
// Every row is *derived* from the node model and the dragonfly topology, and
// printed next to the paper's value.
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;
using namespace xscale::units;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Table 1: Frontier Compute Peak Specifications ==\n\n");
  const auto m = machines::frontier();
  const auto topo = machines::frontier_topology();

  // Global bandwidth between compute groups only (Table 1 counts 270+270).
  double global_cc = 0;
  for (const auto& l : topo.links())
    if (l.kind == topo::LinkKind::Global && topo.group_of_switch(l.src) < 74 &&
        topo.group_of_switch(l.dst) < 74)
      global_cc += l.capacity;
  global_cc /= 2.0;  // one direction

  sim::Table t("Table 1 (model-derived vs paper)");
  t.header({"Quantity", "Model", "Paper"});
  t.row({"Nodes", std::to_string(m.total_nodes), "9,472"});
  t.row({"FP64 DGEMM", fmt_flops(m.fp64_dgemm_peak()), "2.0 EF"});
  t.row({"DDR4 Memory Capacity", fmt_bytes_iec(m.ddr_capacity()), "4.6 PiB"});
  t.row({"DDR4 Memory Bandwidth", fmt_rate(m.ddr_bandwidth()), "1.9 PiB/s (*)"});
  t.row({"HBM2e Memory Capacity", fmt_bytes_iec(m.hbm_capacity()), "4.6 PiB"});
  t.row({"HBM2e Memory Bandwidth", fmt_rate(m.hbm_bandwidth()), "123.9 PiB/s (*)"});
  t.row({"Injection Bandwidth/node", fmt_rate(m.injection_bandwidth_per_node()),
         "100 GB/s"});
  t.row({"Global Bandwidth", fmt_rate(global_cc) + " +same", "270+270 TB/s"});
  t.print();
  std::printf(
      "\n(*) The paper's PiB/s rows are decimal (PB/s) values: 9,472 x 205 GB/s\n"
      "    = 1.94 PB/s DDR and 9,472 x 8 x 1.635 TB/s = 123.9 PB/s HBM. The\n"
      "    model prints true SI rates; capacities are binary as in the paper.\n");

  std::printf("\nNode-level cross-checks (Section 3.1):\n");
  std::printf("  HBM:DDR bandwidth ratio        %5.1fx (paper: 64x; Summit 16x)\n",
              m.node.hbm_to_ddr_ratio());
  std::printf("  Summit HBM:DDR ratio           %5.1fx\n",
              machines::summit().node.hbm_to_ddr_ratio());
  std::printf("  Node HBM bandwidth             %s (paper: 13.08 TB/s)\n",
              fmt_rate(m.node.hbm_bandwidth()).c_str());
  std::printf("  GCDs visible as GPUs           %d per node (1:4 CPU:GPU, 'sort of')\n",
              m.node.gpus);

  std::printf("\nDragonfly structure (Section 3.2):\n");
  std::printf("  Groups                         %d (74 compute, 5 I/O, 1 mgmt)\n",
              topo.num_groups());
  std::printf("  Switches                       %d\n", topo.num_switches());
  std::printf("  Endpoints                      %d\n", topo.num_endpoints());
  const double inj = topo.injection_capacity_per_group(0);
  double gcc0 = 0;
  for (const auto& l : topo.links())
    if (l.kind == topo::LinkKind::Global && topo.group_of_switch(l.src) == 0 &&
        topo.group_of_switch(l.dst) < 74)
      gcc0 += l.capacity;
  std::printf("  Injection bw per compute group %s (paper: 12.8 TB/s)\n",
              fmt_rate(inj).c_str());
  std::printf("  Global bw per compute group    %s (paper: 7.3 TB/s)\n",
              fmt_rate(gcc0).c_str());
  std::printf("  Taper (global/injection)       %4.0f%% (paper: 57%%)\n",
              100.0 * gcc0 / inj);
  return 0;
}
