// Table 2 — I/O subsystem capacities and theoretical read/write bandwidths,
// derived from the Orion SSU configuration and the node-local NVMe model.
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;
using namespace xscale::units;

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Table 2: I/O Subsystem Specifications ==\n\n");
  const storage::Orion orion;
  const storage::NodeLocalNvme nvme(hw::bard_peak().nvme);
  const int nodes = 9472;

  sim::Table t("Table 2 (model-derived vs paper)");
  t.header({"Tier", "Capacity", "Read BW", "Write BW", "Paper (C/R/W)"});
  t.row({"Node-Local",
         fmt_bytes_si(nvme.capacity() * nodes),
         fmt_rate(nvme.capacity() > 0 ? hw::bard_peak().nvme.read_bw * nodes : 0),
         fmt_rate(hw::bard_peak().nvme.write_bw * nodes),
         "32.9 PB / 75.3 TB/s / 37.6 TB/s"});
  using storage::Tier;
  const struct {
    Tier tier;
    const char* paper;
  } rows[] = {
      {Tier::Metadata, "10.0 PB / 0.8 TB/s / 0.4 TB/s"},
      {Tier::Performance, "11.5 PB / 10.0 TB/s / 10.0 TB/s"},
      {Tier::Capacity, "679.0 PB / 5.5 TB/s / 4.6 TB/s"},
  };
  for (const auto& r : rows) {
    t.row({storage::to_string(r.tier),
           fmt_bytes_si(orion.usable_capacity(r.tier)),
           fmt_rate(orion.theoretical_read_bw(r.tier)),
           fmt_rate(orion.theoretical_write_bw(r.tier)), r.paper});
  }
  t.print();

  std::printf("\nDerivation notes:\n");
  std::printf("  SSUs: %d x (%d NVMe @ %s + %d HDD @ %s), ZFS dRAID-2 %d+%d\n",
              orion.config().ssus, orion.config().nvme_per_ssu,
              fmt_bytes_si(orion.config().nvme_capacity).c_str(),
              orion.config().hdd_per_ssu,
              fmt_bytes_si(orion.config().hdd_capacity).c_str(),
              orion.config().draid_data, orion.config().draid_parity);
  std::printf("  PFL: [0, %s) -> DoM (MDT flash); [%s, %s) -> performance;\n"
              "       beyond %s -> capacity tier (Section 3.3).\n",
              fmt_bytes_iec(orion.config().dom_boundary).c_str(),
              fmt_bytes_iec(orion.config().dom_boundary).c_str(),
              fmt_bytes_iec(orion.config().perf_boundary).c_str(),
              fmt_bytes_iec(orion.config().perf_boundary).c_str());
  return 0;
}
