// Figure 6 — mpiGraph per-NIC bandwidth histograms.
//
// Frontier (dragonfly, 57% taper, adaptive routing): a wide 3-17.5 GB/s
// distribution with a small intra-group population at ~17.5 GB/s.
// Summit (non-blocking EDR fat-tree): a tight distribution at ~8.5 GB/s.
// Plus a routing ablation: minimal-only vs adaptive (the non-minimal
// "halving" the paper describes).
#include <cstdio>

#include "core/xscale.hpp"

using namespace xscale;

namespace {

// mpiGraph: sample shift rounds over all nodes (1 flow per node per round),
// collecting achieved per-NIC receive bandwidth.
sim::Histogram run_mpigraph(const machines::Machine& m, const net::Fabric& fabric,
                            int rounds, double hist_max) {
  // Clamp: mpiGraph-style plots fold outliers into the edge bins.
  sim::Histogram h(0.0, hist_max, 36, sim::Histogram::OutlierPolicy::Clamp);
  sim::Rng rng(0x5175);
  const int nodes = m.total_nodes;
  // Draw all shifts up front (one serial RNG stream), then solve the rounds
  // on the pool — each round writes its own rates slot, and the histogram is
  // filled in round order afterwards, so the figure is byte-identical at any
  // XSCALE_THREADS.
  std::vector<int> shifts(static_cast<std::size_t>(rounds));
  for (int& s : shifts)
    s = 1 + static_cast<int>(rng.index(static_cast<std::uint64_t>(nodes - 1)));
  std::vector<std::vector<double>> round_rates(shifts.size());
  sim::parallel_for(shifts.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t r = b; r < e; ++r) {
      const int shift = shifts[r];
      const int nic = static_cast<int>(r) % m.node.nics;
      net::PairList pairs;
      pairs.reserve(static_cast<std::size_t>(nodes));
      for (int i = 0; i < nodes; ++i) {
        const int j = (i + shift) % nodes;
        pairs.emplace_back(machines::node_endpoint(m, i, nic),
                           machines::node_endpoint(m, j, nic));
      }
      round_rates[r] = fabric.steady_rates(pairs);
    }
  });
  for (const auto& rates : round_rates)
    for (double rate : rates) h.add(rate / 1e9);
  return h;
}

void summarize(const char* name, const sim::Histogram& h) {
  double lo = -1, hi = -1, peak_bin = 0, peak = 0;
  for (std::size_t i = 0; i < h.bins(); ++i) {
    if (h.count(i) > 0) {
      if (lo < 0) lo = h.bin_lo(i);
      hi = h.bin_hi(i);
      if (h.count(i) > peak) {
        peak = h.count(i);
        peak_bin = h.bin_center(i);
      }
    }
  }
  std::printf("%s: range [%.1f, %.1f] GB/s, mode ~%.1f GB/s, %d samples\n", name,
              lo, hi, peak_bin, static_cast<int>(h.total()));
}

}  // namespace

int main(int argc, char** argv) {
  xscale::obs::BenchObs obs(argc, argv);  // shared flags: --trace <file>, --metrics
  std::printf("== Reproducing Figure 6: mpiGraph per-NIC measurements ==\n\n");
  // --quick (golden harness): fewer shift rounds, same histograms/format.
  const int rounds = obs::quick() ? 8 : 48;

  const auto frontier = machines::frontier();
  auto ff = frontier.build_fabric();
  const auto hf = run_mpigraph(frontier, ff, rounds, 26.0);
  std::printf("--- Frontier (Slingshot dragonfly, 25 GB/s NICs) ---\n");
  std::fputs(hf.ascii(48, "GB/s").c_str(), stdout);
  summarize("Frontier", hf);
  std::printf("Paper: wide distribution, 3 to 17.5 GB/s; ~1.4%% of pairs intra-group\n"
              "at ~17.5 GB/s; ~3 GB/s floor when all traffic rides global links.\n\n");

  const auto summit = machines::summit();
  auto sf = summit.build_fabric();
  const auto hs = run_mpigraph(summit, sf, rounds, 14.0);
  std::printf("--- Summit (EDR InfiniBand non-blocking fat-tree, 12.5 GB/s NICs) ---\n");
  std::fputs(hs.ascii(48, "GB/s").c_str(), stdout);
  summarize("Summit", hs);
  std::printf("Paper: tight distribution at ~8.5 GB/s (68%% of EDR peak).\n\n");

  // Third comparison point (ISSUE 9): Aurora rides the same Slingshot
  // dragonfly technology as Frontier but with 8 NICs/node and a different
  // group count, so its histogram shape is Frontier-like, not Summit-like.
  const auto aurora = machines::aurora();
  auto af = aurora.build_fabric();
  const auto ha = run_mpigraph(aurora, af, rounds, 26.0);
  std::printf("--- Aurora (Slingshot dragonfly, 8 NICs/node) ---\n");
  std::fputs(ha.ascii(48, "GB/s").c_str(), stdout);
  summarize("Aurora", ha);
  std::printf("Same fabric family as Frontier: a wide dragonfly distribution,\n"
              "not Summit's non-blocking spike.\n\n");

  // Ablation: minimal-only routing on Frontier collapses aligned shifts onto
  // single bundles; adaptive (UGAL) recovers bandwidth via Valiant detours.
  std::printf("--- Routing ablation (Frontier, one all-global shift round) ---\n");
  for (auto routing : {net::Routing::Minimal, net::Routing::Valiant,
                       net::Routing::Adaptive}) {
    auto cfg = frontier.fabric_defaults;
    cfg.routing = routing;
    auto fab = frontier.build_fabric(cfg);
    net::PairList pairs;
    for (int i = 0; i < frontier.total_nodes; ++i)
      pairs.emplace_back(machines::node_endpoint(frontier, i, 0),
                         machines::node_endpoint(frontier, (i + 4000) % frontier.total_nodes, 0));
    const auto rates = fab.steady_rates(pairs);
    sim::OnlineStats s;
    for (double r : rates) s.add(r / 1e9);
    std::printf("  %-8s routing: mean %5.2f GB/s  min %5.2f  max %5.2f\n",
                net::to_string(routing), s.mean(), s.min(), s.max());
  }
  std::printf("\nNon-minimal paths consume two global hops — the factor-of-two\n"
              "bandwidth cost the paper cites for fully global traffic.\n");

  // Cross-topology comparison (ISSUE 9): the same 64-endpoint shift pattern
  // on all four fabric families at matched link speed. Dragonfly and the
  // non-blocking fat-tree deliver full NIC bandwidth; the 4:1 oversubscribed
  // fat-tree pays the uplink taper on leaf-crossing shifts; the rotor at
  // slot 0 carries only matching-0 traffic (here the shift rides it — dark
  // shifts would read zero).
  std::printf("\n--- Cross-topology: 64-endpoint full shift, minimal routing ---\n");
  struct Family {
    const char* name;
    topo::Topology topo;
    int shift;  // endpoint shift such that traffic is routable at rest
  } families[] = {
      {"dragonfly", topo::Topology::uniform_dragonfly(4, {4, 4}, 1, 25e9,
                                                      180e-9), 16},
      {"fat-tree 1:1", topo::Topology::oversubscribed_fat_tree(8, 8, 1.0,
                                                               25e9, 180e-9),
       8},
      {"fat-tree 4:1", topo::Topology::oversubscribed_fat_tree(8, 8, 4.0,
                                                               25e9, 180e-9),
       8},
      {"rotor slot 0", topo::Topology::rotor(8, 8, 7, 250e-6, 0.9, 25e9,
                                             180e-9), 8},
  };
  for (auto& fam : families) {
    net::FabricConfig cfg;
    cfg.routing = net::Routing::Minimal;
    net::Fabric fab(std::move(fam.topo), cfg);
    const int eps = fab.topology().num_endpoints();
    net::PairList pairs;
    for (int i = 0; i < eps; ++i)
      pairs.emplace_back(i, (i + fam.shift) % eps);
    const auto rates = fab.steady_rates(pairs);
    sim::OnlineStats s;
    for (double r : rates) s.add(r / 1e9);
    std::printf("  %-12s: mean %5.2f GB/s  min %5.2f  max %5.2f\n", fam.name,
                s.mean(), s.min(), s.max());
  }
  std::printf("The oversubscribed uplinks and the duty-cycled matchings are the\n"
              "two contention regimes the dragonfly never produces.\n");
  return 0;
}
