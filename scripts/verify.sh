#!/usr/bin/env bash
# Tier-1 verify: plain build + ctest (the ROADMAP command), then the same
# test suite under ASan+UBSan so the solver and event-queue hot paths run
# sanitized. Usage: scripts/verify.sh [--no-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

echo "== tier-1: RelWithDebInfo build + ctest =="
cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${1:-}" == "--no-sanitize" ]]; then
  echo "== skipping sanitized pass =="
  exit 0
fi

echo "== tier-1 (sanitized): ASan+UBSan build + ctest =="
cmake -B build-sanitize -S . -DXSCALE_SANITIZE=ON
cmake --build build-sanitize -j "$JOBS"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
  ctest --test-dir build-sanitize --output-on-failure -j "$JOBS"

echo "verify: OK"
