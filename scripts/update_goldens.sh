#!/usr/bin/env bash
# Regenerate tests/golden/*.golden from the current build.
#
# Run after an intentional model change, then review the golden diff like any
# other code change. Benches run in --quick mode with XSCALE_THREADS=1 —
# outputs are thread-count invariant by construction (see DESIGN.md §7), so
# one thread is the canonical recording configuration.
#
# Usage: scripts/update_goldens.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

BENCHES=(
  table1_system_specs table2_io_specs table4_gpu_stream table5_gpcnet
  fig3_gemm fig4_cpu_gpu_bw fig5_gcd_gcd_bw fig6_mpigraph
  sec43_storage sec44_scaling sec51_power sec54_resiliency
  table6_caar table7_ecp ablation_design
  xtopo_fat_tree xtopo_rotor
)

cmake --build "$BUILD" -j --target golden_check "${BENCHES[@]}"

mkdir -p tests/golden
for b in "${BENCHES[@]}"; do
  echo "recording $b..."
  XSCALE_THREADS=1 "$BUILD/tests/golden_check" "$BUILD/bench/$b" \
    "tests/golden/$b.golden" --update -- --quick
done
echo "done: $(ls tests/golden | wc -l) golden files"
