#!/usr/bin/env bash
# Record the solver/engine perf trajectory: run the micro benchmarks
# (micro_flowsim, micro_simcore, micro_serve) and write a trimmed snapshot to
# BENCH_flowsim.json at the repo root, so later PRs can diff ops/s and the
# allocations-per-resolve counter against this one.
#
# The allocation numbers come from the interposed counting allocator inside
# bench/micro_flowsim.cpp (global operator new/delete overrides), measured
# against warm state by BM_SteadyResolve — the steady-state incremental
# re-solve must report 0.
#
# Usage: scripts/record_bench.sh [build-dir] [--quick] [--out FILE]
#   build-dir: CMake build tree with the benches built (default: build)
#   --quick:   short min_time (0.1s) for smoke runs, and skip the
#              multi-Frontier rows (>= 18,944 endpoints, minutes each);
#              default is 0.5s with every row
#   --out:     write the snapshot to FILE instead of BENCH_flowsim.json
#              (CI records a fresh snapshot here and diffs it against the
#              committed one with scripts/check_bench.py)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="build"
MIN_TIME="0.5"
# --quick drops the multi-Frontier churn rows (a 94k-endpoint fabric build
# alone is tens of seconds); the full recording keeps everything.
FILTER="all"
OUT="BENCH_flowsim.json"
expect_out=0
for arg in "$@"; do
  if [[ "$expect_out" == 1 ]]; then
    OUT="$arg"; expect_out=0; continue
  fi
  case "$arg" in
    --quick) MIN_TIME="0.1"; FILTER='-/(18944|37888|94720)$' ;;
    --out) expect_out=1 ;;
    *) BUILD="$arg" ;;
  esac
done
if [[ "$expect_out" == 1 ]]; then
  echo "error: --out requires a file argument" >&2
  exit 1
fi
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

for bench in micro_flowsim micro_simcore micro_serve; do
  bin="$BUILD/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $BUILD --target $bench)" >&2
    exit 1
  fi
  echo "== $bench =="
  XSCALE_THREADS="${XSCALE_THREADS:-1}" "$bin" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_filter="$FILTER" \
    --benchmark_out="$TMP/$bench.json" --benchmark_out_format=json
done

# Merge, keeping only the fields worth diffing across PRs.
python3 - "$TMP" "$OUT" <<'PY'
import json, subprocess, sys
tmp, out = sys.argv[1], sys.argv[2]

def rev():
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "--short", "HEAD"], text=True).strip()
    except Exception:
        return "unknown"

snapshot = {"git": rev(), "benchmarks": {}}
for name in ("micro_flowsim", "micro_simcore", "micro_serve"):
    with open(f"{tmp}/{name}.json") as f:
        data = json.load(f)
    if "context" not in snapshot:
        ctx = data.get("context", {})
        snapshot["context"] = {
            "date": ctx.get("date"),
            "num_cpus": ctx.get("num_cpus"),
            "mhz_per_cpu": ctx.get("mhz_per_cpu"),
            "library_build_type": ctx.get("library_build_type"),
        }
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        entry = {"real_time_ms": round(b["real_time"] / 1e6, 3)
                 if b.get("time_unit") == "ns" else round(b["real_time"], 3)}
        for k in ("items_per_second", "allocs/resolve", "allocs/op",
                  "steady_allocs/op", "scan_engaged%",
                  "comp_avg", "fallback%", "warm%", "frontier_avg",
                  "threads", "heap", "stale",
                  "warm_memo%", "memo_stale", "epochs_max", "reroutes",
                  "slot_transitions",
                  "writeback%", "rc_hit%", "topo_build_ms"):
            if k in b:
                entry[k] = round(b[k], 6)
        snapshot["benchmarks"][f"{name}/{b['name']}"] = entry

with open(out, "w") as f:
    json.dump(snapshot, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"wrote {out} ({len(snapshot['benchmarks'])} benchmarks)")
PY
