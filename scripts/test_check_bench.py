#!/usr/bin/env python3
"""Driver checks for scripts/check_bench.py (ISSUE 7 satellite).

Regression under test: a fully renamed benchmark suite used to sail through
the gate — every per-name lookup found nothing, the cross-snapshot check
printed a note and skipped, and the script exited 0 having checked nothing.
The empty shared set must instead be a clean exit-code-2 usage error.

Stdlib-only (unittest + subprocess); registered with ctest so it runs in CI
alongside the C++ suites.
"""
import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECK = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                     "check_bench.py")


def snapshot(benchmarks, num_cpus=None):
    snap = {"git": "test", "benchmarks": benchmarks}
    if num_cpus is not None:
        snap["context"] = {"num_cpus": num_cpus}
    return snap


def entry(items_per_second, **extra):
    e = {"real_time_ms": 1.0, "items_per_second": items_per_second}
    e.update(extra)
    return e


class CheckBenchDriver(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)

    def write(self, name, snap):
        path = os.path.join(self._dir.name, name)
        with open(path, "w") as f:
            json.dump(snap, f)
        return path

    def run_gate(self, baseline, current):
        return subprocess.run(
            [sys.executable, CHECK, "--baseline", baseline,
             "--current", current],
            capture_output=True, text=True)

    def healthy(self):
        # Four shared benchmarks, structural invariants satisfied.
        return {
            "micro_flowsim/BM_SteadyResolve/1024":
                entry(5e5, **{"allocs/resolve": 0.0}),
            "micro_flowsim/BM_FlowChurn/incast_incremental/1024":
                entry(2e4, **{"fallback%": 0.1, "warm%": 95.0,
                              "writeback%": 0.2, "rc_hit%": 92.0}),
            "micro_flowsim/BM_FlowChurn/incast_full/1024": entry(1e3),
            "micro_flowsim/BM_FlowChurn/permutation_incremental/1024":
                entry(3e4),
        }

    def test_identical_snapshots_pass(self):
        path = self.write("same.json", snapshot(self.healthy()))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_renamed_suite_is_usage_error_not_silent_pass(self):
        base = self.write("base.json", snapshot(self.healthy()))
        renamed = {"micro_flowsim/BM_Renamed/" + k.split("/", 2)[-1]: v
                   for k, v in self.healthy().items()}
        cur = self.write("cur.json", snapshot(renamed))
        r = self.run_gate(base, cur)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("no benchmarks shared", r.stderr)

    def test_empty_current_is_usage_error(self):
        base = self.write("base.json", snapshot(self.healthy()))
        cur = self.write("cur.json", snapshot({}))
        r = self.run_gate(base, cur)
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)

    def test_missing_file_is_usage_error(self):
        base = self.write("base.json", snapshot(self.healthy()))
        r = self.run_gate(base, os.path.join(self._dir.name, "absent.json"))
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)

    def test_single_benchmark_regression_fails(self):
        base = self.write("base.json", snapshot(self.healthy()))
        slow = self.healthy()
        slow["micro_flowsim/BM_FlowChurn/incast_full/1024"] = entry(1e2)
        cur = self.write("cur.json", snapshot(slow))
        r = self.run_gate(base, cur)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("REGRESSED", r.stdout)

    def test_structural_failure_fails_even_without_regression(self):
        leaky = self.healthy()
        leaky["micro_flowsim/BM_SteadyResolve/1024"] = \
            entry(5e5, **{"allocs/resolve": 3.0})
        path = self.write("leaky.json", snapshot(leaky))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_serve_ratio_gate(self):
        ok = self.healthy()
        ok["micro_serve/BM_ServeBatch/1"] = entry(1000.0)
        ok["micro_serve/BM_ServeBatch/64"] = entry(600.0, memo_stale=0.0)
        path = self.write("serve_ok.json", snapshot(ok))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

        bad = dict(ok)
        bad["micro_serve/BM_ServeBatch/64"] = entry(400.0, memo_stale=0.0)
        path = self.write("serve_bad.json", snapshot(bad))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("cross-session invalidation", r.stdout)

    def test_writeback_sublinear_gate(self):
        # ISSUE 8: an eager whole-set write on incast churn shows up as a
        # large applied share; the gate must fail loudly, not drift.
        eager = self.healthy()
        eager["micro_flowsim/BM_FlowChurn/incast_incremental/1024"] = \
            entry(2e4, **{"fallback%": 0.1, "warm%": 95.0,
                          "writeback%": 49.7, "rc_hit%": 92.0})
        path = self.write("wb_eager.json", snapshot(eager))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("writeback%", r.stdout)
        self.assertIn("sub-linear", r.stdout)

        # Snapshots without the column (older baselines) are not gated.
        legacy = self.healthy()
        del legacy[
            "micro_flowsim/BM_FlowChurn/incast_incremental/1024"]["writeback%"]
        path = self.write("wb_legacy.json", snapshot(legacy))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_route_cache_hit_rate_gate(self):
        # ISSUE 8: steady churn bypassing the shared route cache (per-run
        # rebuild, epoch churn) collapses the hit rate and must fail.
        cold = self.healthy()
        cold["micro_flowsim/BM_FlowChurn/permutation_incremental/1024"] = \
            entry(3e4, **{"rc_hit%": 3.5})
        path = self.write("rc_cold.json", snapshot(cold))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("rc_hit%", r.stdout)
        self.assertIn("route cache", r.stdout)

        # Entries without the column stay ungated.
        legacy = self.healthy()
        del legacy[
            "micro_flowsim/BM_FlowChurn/incast_incremental/1024"]["rc_hit%"]
        path = self.write("rc_legacy.json", snapshot(legacy))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_rotor_slot_churn_gates(self):
        # ISSUE 9: a rotor churn row whose schedule never fired (frozen
        # slot-0 fabric) must fail, as must one that cold-fallbacks on slot
        # re-pricing.
        def rotor_entry(transitions, fallback):
            return entry(2e4, **{"fallback%": fallback, "warm%": 60.0,
                                 "rc_hit%": 95.0,
                                 "slot_transitions": transitions})

        ok = self.healthy()
        ok["micro_flowsim/BM_FlowChurn/rotor_permutation_incremental/64"] = \
            rotor_entry(1159.0, 0.0)
        path = self.write("rotor_ok.json", snapshot(ok))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

        frozen = self.healthy()
        frozen["micro_flowsim/BM_FlowChurn/rotor_permutation_incremental/64"] \
            = rotor_entry(0.0, 0.0)
        path = self.write("rotor_frozen.json", snapshot(frozen))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("slot_transitions", r.stdout)

        cold = self.healthy()
        cold["micro_flowsim/BM_FlowChurn/rotor_incast_incremental/64"] = \
            rotor_entry(1612.0, 80.0)
        path = self.write("rotor_cold.json", snapshot(cold))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("cold-fallback", r.stdout)

        # Rotor rows are churn rows: the generic route-cache floor applies.
        bypass = self.healthy()
        bypass["micro_flowsim/BM_FlowChurn/rotor_permutation_incremental/64"] \
            = entry(2e4, **{"rc_hit%": 10.0, "slot_transitions": 1159.0})
        path = self.write("rotor_bypass.json", snapshot(bypass))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("rc_hit%", r.stdout)

    def test_steady_alloc_gate(self):
        # ISSUE 10: the steady-window allocation counter on incremental churn
        # rows must stay at ~0; a per-resolve allocation creeping back into
        # the warm path shows up here long before allocs/op moves.
        leaky = self.healthy()
        leaky["micro_flowsim/BM_FlowChurn/permutation_incremental/1024"] = \
            entry(3e4, **{"steady_allocs/op": 0.8})
        path = self.write("steady_leaky.json", snapshot(leaky))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("steady_allocs/op", r.stdout)

        # Legacy snapshots without the column are not gated.
        path = self.write("steady_legacy.json", snapshot(self.healthy()))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def warm_rows(self, one, four):
        rows = self.healthy()
        rows["micro_flowsim/BM_FlowChurnThreadsWarm/1/9408"] = \
            entry(one, threads=1.0)
        rows["micro_flowsim/BM_FlowChurnThreadsWarm/4/9408"] = \
            entry(four, threads=4.0)
        return rows

    def test_thread_scaling_gate(self):
        # ISSUE 10 acceptance: on a multi-core recording host, the 4-thread
        # warm whole-set row must beat 1 thread by >= 1.3x; a flat curve
        # (parallel gates regressed to never engaging, or a serialising lock)
        # must fail.
        path = self.write("scale_ok.json",
                          snapshot(self.warm_rows(1000.0, 1900.0),
                                   num_cpus=8))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

        path = self.write("scale_flat.json",
                          snapshot(self.warm_rows(1000.0, 1050.0),
                                   num_cpus=8))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("1.3x", r.stdout)

    def test_thread_scaling_gate_skips_small_hosts(self):
        # A flat curve on a 1-vCPU container is the honest result (workers
        # time-slice one core); the gate must disengage, not fail.
        path = self.write("scale_1cpu.json",
                          snapshot(self.warm_rows(1000.0, 1000.0),
                                   num_cpus=1))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("skipping", r.stdout)

        # Legacy snapshots: no context block at all, and the pre-ISSUE-10
        # single-arg row shape (BM_FlowChurnThreadsWarm/<threads>) — both
        # must pass untouched.
        legacy = self.healthy()
        legacy["micro_flowsim/BM_FlowChurnThreadsWarm/1"] = \
            entry(1000.0, threads=1.0)
        legacy["micro_flowsim/BM_FlowChurnThreadsWarm/4"] = \
            entry(1000.0, threads=4.0)
        path = self.write("scale_legacy.json", snapshot(legacy))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_serve_sibling_staleness_gate(self):
        stale = self.healthy()
        stale["micro_serve/BM_ServeBatch/1"] = entry(1000.0)
        stale["micro_serve/BM_ServeBatch/64"] = entry(900.0, memo_stale=7.0)
        path = self.write("serve_stale.json", snapshot(stale))
        r = self.run_gate(path, path)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("memo_stale", r.stdout)


if __name__ == "__main__":
    unittest.main()
