#!/usr/bin/env python3
"""Perf regression gate over BENCH_flowsim.json snapshots (ISSUE 6).

Compares a freshly recorded snapshot (scripts/record_bench.sh --out ...)
against the committed baseline. CI machines differ wildly in absolute
speed, so the gate is built from two machine-robust layers:

1. Structural invariants checked on the *current* snapshot alone —
   properties that hold regardless of hardware:
     - steady-state incremental re-solves allocate nothing
       (allocs/resolve == 0, the ISSUE 5 contract);
     - incast churn no longer falls back to the cold full solve on every
       resolve (fallback% bounded, warm% floored — the ISSUE 6 tentpole);
     - incast_incremental beats incast_full at 1,024 endpoints and stays
       within 2x of permutation_incremental (the acceptance ratios — both
       are same-machine, same-run ratios, so they transfer to any host);
     - steady-window churn allocations stay at ~0 per op on incremental
       rows, and the warm whole-set solve scales >= 1.3x from 1 to 4
       threads when the recording host has >= 4 real CPUs (ISSUE 10).

2. Cross-snapshot per-benchmark regression, normalised for machine speed:
   the median current/baseline throughput ratio across all shared
   benchmarks estimates the host-speed factor; any single benchmark whose
   ratio falls below `tolerance * median` regressed relative to its peers
   and fails the gate. A uniformly slower CI runner moves the median, not
   the verdict.

Exit code 0 = pass, 1 = regression/invariant failure, 2 = usage error.
"""
import argparse
import json
import statistics
import sys

CHURN = "micro_flowsim/BM_FlowChurn"
SERVE = "micro_serve/BM_ServeBatch"
THREADS_WARM = "micro_flowsim/BM_FlowChurnThreadsWarm"


def load(path):
    with open(path) as f:
        return json.load(f)


def bench_map(snapshot):
    return snapshot.get("benchmarks", {})


def fail(errors, msg):
    errors.append(msg)
    print(f"FAIL: {msg}")


def check_structural(cur, errors):
    # Near-zero-allocation steady state: short --quick windows still carry a
    # decaying amortized residual from grow-only arenas discovering late
    # occupancy maxima (EXPERIMENTS.md documents < 0.02/resolve under
    # all-to-all), so gate on a small bound rather than an exact zero.
    for name, entry in sorted(cur.items()):
        if "BM_SteadyResolve" in name and "allocs/resolve" in entry:
            if entry["allocs/resolve"] > 0.05:
                fail(errors,
                     f"{name}: allocs/resolve = {entry['allocs/resolve']} "
                     "(steady-state re-solves must stay allocation-free)")

    # Steady-window allocations (ISSUE 10): the whole-run allocs/op counter
    # legitimately carries the cold start (engine, simulator, first-touch
    # arena growth), but the steady_allocs/op companion is measured strictly
    # inside the replacement-sustained churn window against warm arenas and
    # must sit at ~0 on every incremental row — the per-row restatement of
    # the BM_SteadyResolve bound above. Absent on legacy snapshots. The bound
    # is 0.1, not 0: small all-to-all rows keep visiting brand-new (src, dst)
    # pairs deep into the window (the pair universe n(n-1) dwarfs the visit
    # count at n <= 1024), so route-cache/incidence first-touch growth leaks a
    # few hundredths per op there — measured 0.04-0.07 at 64-1024, <= 0.01
    # at 9,408+ where the pair universe saturates. A genuine per-resolve
    # allocation would show as ~1.0/op, an order of magnitude above the bound.
    for name, entry in sorted(cur.items()):
        if name.startswith(CHURN + "/") and "_incremental/" in name:
            sa = entry.get("steady_allocs/op")
            if sa is not None and sa > 0.1:
                fail(errors,
                     f"{name}: steady_allocs/op = {sa} (> 0.1; steady-state "
                     "incremental churn must not allocate)")

    # Warm-start engaged on incast (ISSUE 6): the cliff pattern must not
    # cold-fallback on (almost) every resolve any more, and the warm path
    # must carry most of the load where the component spans the active set.
    for n in (1024, 4096, 9408):
        name = f"{CHURN}/incast_incremental/{n}"
        entry = cur.get(name)
        if entry is None:
            continue  # --quick runs may trim args; gate what's present
        fallback = entry.get("fallback%", 100.0)
        warm = entry.get("warm%", 0.0)
        if fallback > 5.0:
            fail(errors, f"{name}: fallback% = {fallback} (> 5)")
        if warm < 50.0:
            fail(errors, f"{name}: warm% = {warm} (< 50)")

    # Sub-linear write-back (ISSUE 8): steady-state incast churn applies only
    # the changed rates. One churn item perturbs the shared bottleneck's
    # uniform rate, and same-instant segments coalesce, so the applied share
    # of all write-back decisions stays tiny; an eager whole-set write (the
    # regression this guards) drives writeback% toward 100 * applied /
    # (applied + skipped) ~ 50+ immediately.
    for n in (1024, 4096, 9408):
        name = f"{CHURN}/incast_incremental/{n}"
        entry = cur.get(name)
        if entry is None:
            continue
        wb = entry.get("writeback%")
        if wb is not None and wb > 5.0:
            fail(errors,
                 f"{name}: writeback% = {wb} (> 5; incast write-back must "
                 "stay sub-linear in active flows)")

    # Route-cache effectiveness (ISSUE 8): steady churn re-runs the same
    # endpoint pairs against an unchanged snapshot, so route lookups must be
    # cache hits — a regression that rebuilds or bypasses the shared cache
    # (per-session cache, epoch bump per scenario) drives the hit rate
    # toward zero. Same-run ratio, so machine-free.
    for name, entry in sorted(cur.items()):
        if name.startswith(CHURN + "/"):
            rc = entry.get("rc_hit%")
            if rc is not None and rc < 50.0:
                fail(errors,
                     f"{name}: rc_hit% = {rc} (< 50; steady churn must be "
                     "served from the shared route cache)")

    # Rotor slot churn (ISSUE 9): the rotor churn rows must have actually
    # rotated — slot_transitions == 0 means the schedule never fired and the
    # row silently measured a frozen slot-0 fabric — and slot re-pricing must
    # stay on the warm/incremental resolve paths rather than driving every
    # transition to the cold fallback solve. (Their rc_hit% is covered by the
    # generic route-cache floor above: slot changes re-price links but never
    # re-steer routes.)
    for name, entry in sorted(cur.items()):
        if name.startswith(CHURN + "/rotor_"):
            tr = entry.get("slot_transitions")
            if tr is not None and tr <= 0:
                fail(errors,
                     f"{name}: slot_transitions = {tr} (rotor churn must "
                     "advance slots; the schedule never fired)")
            fb = entry.get("fallback%")
            if fb is not None and fb > 25.0:
                fail(errors,
                     f"{name}: fallback% = {fb} (> 25; rotor slot re-pricing "
                     "must resolve warm, not cold-fallback per transition)")

    # Acceptance ratios at 1,024 endpoints — same-run, so machine-free.
    incast_inc = cur.get(f"{CHURN}/incast_incremental/1024")
    incast_full = cur.get(f"{CHURN}/incast_full/1024")
    perm_inc = cur.get(f"{CHURN}/permutation_incremental/1024")
    if incast_inc and incast_full:
        a = incast_inc.get("items_per_second", 0.0)
        b = incast_full.get("items_per_second", 0.0)
        if a <= b:
            fail(errors,
                 f"incast_incremental/1024 ({a:.0f} items/s) does not beat "
                 f"incast_full/1024 ({b:.0f} items/s)")
    if incast_inc and perm_inc:
        a = incast_inc.get("items_per_second", 0.0)
        p = perm_inc.get("items_per_second", 0.0)
        if p > 0 and a < p / 2.0:
            fail(errors,
                 f"incast_incremental/1024 ({a:.0f} items/s) is more than "
                 f"2x slower than permutation_incremental/1024 ({p:.0f})")

    # Serving-path gate (ISSUE 7): 64 concurrent overlay sessions over one
    # shared snapshot must keep at least half the single-session per-scenario
    # throughput in the same run. If cross-session invalidation creeps back in
    # (shared cache resets, sibling epoch bumps), memo and route-cache hit
    # rates collapse and this same-machine ratio craters well below 0.5.
    serve_many = cur.get(f"{SERVE}/64")
    serve_one = cur.get(f"{SERVE}/1")
    if serve_many and serve_one:
        m = serve_many.get("items_per_second", 0.0)
        o = serve_one.get("items_per_second", 0.0)
        if o > 0 and m < 0.5 * o:
            fail(errors,
                 f"ServeBatch/64 ({m:.0f} scenarios/s) is below half of "
                 f"ServeBatch/1 ({o:.0f}): cross-session invalidation "
                 "suspected")
        stale = serve_many.get("memo_stale")
        if stale is not None and stale > 0:
            fail(errors,
                 f"ServeBatch/64: memo_stale = {stale} (sessions must never "
                 "see their memos invalidated by siblings)")


def check_thread_scaling(snapshot, errors):
    """Warm whole-set thread scaling (ISSUE 10 acceptance): on every fabric
    size carrying both rows, BM_FlowChurnThreadsWarm at 4 threads must beat
    1 thread by >= 1.3x in the same recording. Same-run ratio, so machine
    speed cancels — but it is only meaningful when the recording host really
    has >= 4 CPUs; on a 1-2 vCPU container the pool's workers time-slice one
    core and the honest curve is flat, so the gate disengages (with a note)
    rather than failing on hardware the claim never covered."""
    cur = bench_map(snapshot)
    rows = {}
    for name, entry in cur.items():
        if not name.startswith(THREADS_WARM + "/"):
            continue
        parts = name[len(THREADS_WARM) + 1:].split("/")
        if len(parts) != 2:
            continue  # legacy single-arg rows predate the {threads, n} shape
        try:
            threads, n = int(parts[0]), int(parts[1])
        except ValueError:
            continue
        rows[(n, threads)] = entry.get("items_per_second", 0.0)
    if not rows:
        return
    num_cpus = (snapshot.get("context") or {}).get("num_cpus")
    if num_cpus is None or num_cpus < 4:
        print(f"note: recording host has num_cpus={num_cpus}; skipping the "
              "4-thread warm-solve scaling gate (threads time-slice there)")
        return
    for n in sorted({nn for (nn, _) in rows}):
        one = rows.get((n, 1))
        four = rows.get((n, 4))
        if not one or not four:
            continue
        speedup = four / one
        if speedup < 1.3:
            fail(errors,
                 f"{THREADS_WARM}/4/{n}: {speedup:.2f}x over 1 thread "
                 "(< 1.3x; the parallel min-share scan / batch update "
                 "stopped scaling)")
        else:
            print(f"  {speedup:7.2f}x ok         {THREADS_WARM}/{{4 vs 1}}/{n}")


def check_regression(base, cur, tolerance, errors):
    ratios = {}
    for name, b in base.items():
        c = cur.get(name)
        if not c:
            continue
        bt, ct = b.get("items_per_second"), c.get("items_per_second")
        if bt and ct:
            ratios[name] = ct / bt
    if len(ratios) < 3:
        print(f"note: only {len(ratios)} shared benchmarks with throughput; "
              "skipping cross-snapshot regression check")
        return
    median = statistics.median(ratios.values())
    floor = tolerance * median
    print(f"host-speed factor (median current/baseline): {median:.3f}; "
          f"per-benchmark floor: {floor:.3f}")
    for name in sorted(ratios):
        r = ratios[name]
        status = "ok" if r >= floor else "REGRESSED"
        print(f"  {r:7.3f}  {status:9s}  {name}")
        if r < floor:
            fail(errors,
                 f"{name}: throughput ratio {r:.3f} below floor {floor:.3f} "
                 f"(regressed vs peers; tolerance {tolerance})")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", default="BENCH_flowsim.json",
                    help="committed snapshot (default: BENCH_flowsim.json)")
    ap.add_argument("--current", required=True,
                    help="freshly recorded snapshot to gate")
    ap.add_argument("--tolerance", type=float, default=0.6,
                    help="per-benchmark floor as a fraction of the median "
                         "host-speed ratio (default: 0.6, i.e. a benchmark "
                         "may run up to 40%% slower than its peers predict)")
    args = ap.parse_args()

    try:
        base_snap = load(args.baseline)
        cur_snap = load(args.current)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    base = bench_map(base_snap)
    cur = bench_map(cur_snap)

    # An empty shared set means the two snapshots describe different benchmark
    # suites (e.g. a rename landed without re-recording the baseline). Every
    # per-name lookup above would quietly find nothing and the gate would pass
    # while checking nothing — that is a usage error, not a pass.
    if not (set(base) & set(cur)):
        print(f"error: no benchmarks shared between baseline "
              f"'{args.baseline}' ({len(base)} benchmarks) and current "
              f"'{args.current}' ({len(cur)} benchmarks); re-record the "
              "baseline with scripts/record_bench.sh", file=sys.stderr)
        return 2

    errors = []
    check_structural(cur, errors)
    check_thread_scaling(cur_snap, errors)
    check_regression(base, cur, args.tolerance, errors)
    if errors:
        print(f"\n{len(errors)} check(s) failed")
        return 1
    print("\nall perf checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
