# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_apps "/root/repo/build/tests/test_apps")
set_tests_properties(test_apps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;xscale_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dynamics "/root/repo/build/tests/test_dynamics")
set_tests_properties(test_dynamics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;xscale_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hw "/root/repo/build/tests/test_hw")
set_tests_properties(test_hw PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;xscale_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_mpi "/root/repo/build/tests/test_mpi")
set_tests_properties(test_mpi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;xscale_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_net "/root/repo/build/tests/test_net")
set_tests_properties(test_net PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;xscale_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_perf "/root/repo/build/tests/test_perf")
set_tests_properties(test_perf PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;xscale_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;xscale_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;xscale_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_storage "/root/repo/build/tests/test_storage")
set_tests_properties(test_storage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;xscale_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_system "/root/repo/build/tests/test_system")
set_tests_properties(test_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;xscale_test;/root/repo/tests/CMakeLists.txt;0;")
