#include "perf/roofline.hpp"

#include <algorithm>

namespace xscale::perf {

double kernel_time(const KernelWork& k, const hw::GpuConfig& g) {
  const double peak =
      k.uses_matrix_cores ? g.matrix_peak(k.precision) : g.vector_peak(k.precision);
  const double t_compute = peak > 0 ? k.flops / (peak * k.compute_efficiency) : 0.0;
  const double t_memory =
      g.hbm.peak_bandwidth > 0 ? k.bytes / (g.hbm.peak_bandwidth * k.memory_efficiency) : 0.0;
  return g.launch_latency_s + std::max(t_compute, t_memory);
}

double ridge_point(const hw::GpuConfig& g, hw::Precision p, bool matrix_cores) {
  const double peak = matrix_cores ? g.matrix_peak(p) : g.vector_peak(p);
  return peak / g.hbm.peak_bandwidth;
}

}  // namespace xscale::perf
