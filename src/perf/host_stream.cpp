#include "perf/host_stream.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <new>
#include <thread>

#if defined(__SSE2__)
#include <emmintrin.h>
#define XSCALE_HAS_NT_STORES 1
#else
#define XSCALE_HAS_NT_STORES 0
#endif

namespace xscale::perf {
namespace {

enum Kernel { kCopy = 0, kScale = 1, kAdd = 2, kTriad = 3 };
constexpr double kScalar = 3.0;

void run_range_temporal(int kernel, double* a, const double* b, const double* c,
                        std::size_t lo, std::size_t hi) {
  switch (kernel) {
    case kCopy:
      for (std::size_t i = lo; i < hi; ++i) a[i] = b[i];
      break;
    case kScale:
      for (std::size_t i = lo; i < hi; ++i) a[i] = kScalar * b[i];
      break;
    case kAdd:
      for (std::size_t i = lo; i < hi; ++i) a[i] = b[i] + c[i];
      break;
    case kTriad:
      for (std::size_t i = lo; i < hi; ++i) a[i] = b[i] + kScalar * c[i];
      break;
  }
}

#if XSCALE_HAS_NT_STORES
void run_range_nontemporal(int kernel, double* a, const double* b,
                           const double* c, std::size_t lo, std::size_t hi) {
  // Arrays are 64-byte aligned and ranges are multiples of 2 doubles, so the
  // 16-byte streaming stores below are always aligned.
  switch (kernel) {
    case kCopy:
      for (std::size_t i = lo; i < hi; i += 2)
        _mm_stream_pd(a + i, _mm_loadu_pd(b + i));
      break;
    case kScale: {
      const __m128d s = _mm_set1_pd(kScalar);
      for (std::size_t i = lo; i < hi; i += 2)
        _mm_stream_pd(a + i, _mm_mul_pd(s, _mm_loadu_pd(b + i)));
      break;
    }
    case kAdd:
      for (std::size_t i = lo; i < hi; i += 2)
        _mm_stream_pd(a + i, _mm_add_pd(_mm_loadu_pd(b + i), _mm_loadu_pd(c + i)));
      break;
    case kTriad: {
      const __m128d s = _mm_set1_pd(kScalar);
      for (std::size_t i = lo; i < hi; i += 2)
        _mm_stream_pd(a + i, _mm_add_pd(_mm_loadu_pd(b + i),
                                        _mm_mul_pd(s, _mm_loadu_pd(c + i))));
      break;
    }
  }
  _mm_sfence();
}
#endif

}  // namespace

bool HostStream::has_nontemporal_stores() { return XSCALE_HAS_NT_STORES != 0; }

HostStream::HostStream(std::size_t elements, int threads)
    : elements_((elements + 1) & ~std::size_t{1}),  // even, for paired stores
      threads_(threads > 0
                   ? threads
                   : static_cast<int>(std::max(1u, std::thread::hardware_concurrency()))) {
  const std::size_t bytes = elements_ * sizeof(double);
  a_ = static_cast<double*>(::operator new(bytes, std::align_val_t{64}));
  b_ = static_cast<double*>(::operator new(bytes, std::align_val_t{64}));
  c_ = static_cast<double*>(::operator new(bytes, std::align_val_t{64}));
  for (std::size_t i = 0; i < elements_; ++i) {
    a_[i] = 1.0;
    b_[i] = 2.0;
    c_[i] = 0.5;
  }
}

HostStream::~HostStream() {
  ::operator delete(a_, std::align_val_t{64});
  ::operator delete(b_, std::align_val_t{64});
  ::operator delete(c_, std::align_val_t{64});
}

double HostStream::time_kernel(int kernel, bool temporal) {
  auto body = [&](std::size_t lo, std::size_t hi) {
#if XSCALE_HAS_NT_STORES
    if (!temporal) {
      run_range_nontemporal(kernel, a_, b_, c_, lo, hi);
      return;
    }
#else
    (void)temporal;
#endif
    run_range_temporal(kernel, a_, b_, c_, lo, hi);
  };

  const auto t0 = std::chrono::steady_clock::now();
  if (threads_ <= 1) {
    body(0, elements_);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads_));
    const std::size_t chunk = (elements_ / static_cast<std::size_t>(threads_) + 1) & ~std::size_t{1};
    for (int t = 0; t < threads_; ++t) {
      const std::size_t lo = std::min(elements_, static_cast<std::size_t>(t) * chunk);
      const std::size_t hi = std::min(elements_, lo + chunk);
      workers.emplace_back(body, lo, hi);
    }
    for (auto& w : workers) w.join();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

std::vector<HostStreamResult> HostStream::run(int reps) {
  // Counted bytes per kernel, STREAM convention.
  const double counted[4] = {2.0, 2.0, 3.0, 3.0};
  std::vector<HostStreamResult> out(4);
  static const char* names[4] = {"Copy", "Scale", "Add", "Triad"};
  for (int k = 0; k < 4; ++k) {
    out[static_cast<std::size_t>(k)].kernel = names[k];
    double best_t = 1e300, best_nt = 1e300;
    time_kernel(k, true);  // warm-up
    for (int r = 0; r < reps; ++r) {
      best_t = std::min(best_t, time_kernel(k, true));
      best_nt = std::min(best_nt, time_kernel(k, false));
    }
    const double bytes = counted[k] * static_cast<double>(elements_) * sizeof(double);
    out[static_cast<std::size_t>(k)].temporal_bw = bytes / best_t;
    out[static_cast<std::size_t>(k)].nontemporal_bw = bytes / best_nt;
  }
  return out;
}

}  // namespace xscale::perf
