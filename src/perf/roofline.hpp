// Roofline kernel-time model.
//
// Proxy applications describe each GPU kernel by its arithmetic and HBM
// traffic; the model charges the max of compute time and memory time on the
// target device. This is the standard roofline abstraction the paper's
// application sections implicitly argue in (e.g. §4.4: bandwidth-bound codes
// scale with HBM improvements, GEMM-heavy codes with matrix-core FLOPs).
#pragma once

#include "hw/gpu.hpp"

namespace xscale::perf {

struct KernelWork {
  double flops = 0;            // arithmetic operations
  double bytes = 0;            // HBM traffic
  hw::Precision precision = hw::Precision::FP64;
  bool uses_matrix_cores = false;
  // Fraction of the relevant peak this kernel sustains when that resource is
  // the bottleneck (code quality factor).
  double compute_efficiency = 0.80;
  double memory_efficiency = 0.80;
};

// Time for one launch of `k` on device `g` (seconds).
double kernel_time(const KernelWork& k, const hw::GpuConfig& g);

// Arithmetic intensity (FLOP/byte) at which `g` transitions from memory- to
// compute-bound for precision `p`.
double ridge_point(const hw::GpuConfig& g, hw::Precision p, bool matrix_cores);

}  // namespace xscale::perf
