// A real, runnable STREAM implementation for the host CPU.
//
// Table 3's point is qualitative: with temporal (cache-allocating) stores the
// Scale/Add/Triad kernels lose ~1/3 of their bandwidth to read-for-ownership
// traffic, while non-temporal stores avoid it and Copy is nearly unaffected.
// This module lets that effect be measured on whatever hardware hosts the
// repository, alongside the analytic Trento model in `hw::DdrConfig`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace xscale::perf {

struct HostStreamResult {
  std::string kernel;          // Copy/Scale/Add/Triad
  double temporal_bw = 0;      // counted B/s, regular stores
  double nontemporal_bw = 0;   // counted B/s, streaming stores (if supported)
};

class HostStream {
 public:
  // `elements` per array; three arrays of doubles are allocated.
  // `threads` <= hardware concurrency; 0 picks hardware concurrency.
  explicit HostStream(std::size_t elements, int threads = 0);
  ~HostStream();
  HostStream(const HostStream&) = delete;
  HostStream& operator=(const HostStream&) = delete;

  // Best-of-`reps` bandwidth for every kernel, both store flavours.
  std::vector<HostStreamResult> run(int reps = 5);

  // True when the build/ISA provides genuine non-temporal stores; otherwise
  // the non-temporal numbers fall back to temporal stores.
  static bool has_nontemporal_stores();

  std::size_t bytes_per_array() const { return elements_ * sizeof(double); }

 private:
  double time_kernel(int kernel, bool temporal);

  std::size_t elements_;
  int threads_;
  double* a_ = nullptr;
  double* b_ = nullptr;
  double* c_ = nullptr;
};

}  // namespace xscale::perf
