// Unit helpers and formatting for the xscale simulator.
//
// All simulator quantities use SI base units internally:
//   time        -> seconds   (double)
//   data        -> bytes     (double; byte counts may exceed 2^53 only in
//                             aggregate *rates*, never in addressable sizes)
//   bandwidth   -> bytes/s
//   compute     -> FLOP, FLOP/s
//   power       -> watts; energy -> joules
//
// The helpers below exist so that configuration code reads like the paper:
// `GiB(64)`, `GBs(50)`, `TFLOPS(23.95)`.
#pragma once

#include <cstdint>
#include <string>

namespace xscale::units {

// --- binary sizes (IEC) ----------------------------------------------------
constexpr double KiB(double v) { return v * 1024.0; }
constexpr double MiB(double v) { return v * 1024.0 * 1024.0; }
constexpr double GiB(double v) { return v * 1024.0 * 1024.0 * 1024.0; }
constexpr double TiB(double v) { return v * 1024.0 * 1024.0 * 1024.0 * 1024.0; }
constexpr double PiB(double v) { return TiB(v) * 1024.0; }

// --- decimal sizes (SI, as used for storage/network capacities) ------------
constexpr double KB(double v) { return v * 1e3; }
constexpr double MB(double v) { return v * 1e6; }
constexpr double GB(double v) { return v * 1e9; }
constexpr double TB(double v) { return v * 1e12; }
constexpr double PB(double v) { return v * 1e15; }

// --- rates ------------------------------------------------------------------
constexpr double GBs(double v) { return v * 1e9; }    // GB/s -> B/s
constexpr double TBs(double v) { return v * 1e12; }   // TB/s -> B/s
constexpr double MiBs(double v) { return MiB(v); }    // MiB/s -> B/s
constexpr double GiBs(double v) { return GiB(v); }    // GiB/s -> B/s
constexpr double Gbps(double v) { return v * 1e9 / 8.0; }  // Gbit/s -> B/s

constexpr double GFLOPS(double v) { return v * 1e9; }
constexpr double TFLOPS(double v) { return v * 1e12; }
constexpr double PFLOPS(double v) { return v * 1e15; }
constexpr double EFLOPS(double v) { return v * 1e18; }

// --- time --------------------------------------------------------------------
constexpr double usec(double v) { return v * 1e-6; }
constexpr double msec(double v) { return v * 1e-3; }
constexpr double nsec(double v) { return v * 1e-9; }
constexpr double minutes(double v) { return v * 60.0; }
constexpr double hours(double v) { return v * 3600.0; }

// --- power -------------------------------------------------------------------
constexpr double kW(double v) { return v * 1e3; }
constexpr double MW(double v) { return v * 1e6; }

// --- formatting ---------------------------------------------------------------
// Human-readable strings for report output ("13.08 TB/s", "4.6 PiB", ...).
std::string fmt_bytes_si(double bytes);     // decimal multiple (storage/net)
std::string fmt_bytes_iec(double bytes);    // binary multiple (memory)
std::string fmt_rate(double bytes_per_s);   // decimal B/s
std::string fmt_flops(double flop_per_s);
std::string fmt_time(double seconds);
std::string fmt_count(double n);            // 1.2K / 3.4M / 5.6B

}  // namespace xscale::units
