// Discrete-event simulation engine.
//
// The engine owns a priority queue of timestamped events. Events scheduled at
// equal times fire in insertion order (a monotone sequence number breaks
// ties), which keeps every simulation in this repository deterministic.
//
// The engine is deliberately single-threaded: xscale simulates a parallel
// machine, it does not need to *be* one, and determinism is worth more than
// wall-clock speed for reproducing the paper's tables.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace xscale::sim {

using Time = double;  // seconds of simulated time

class Engine {
 public:
  using Callback = std::function<void()>;

  // Current simulated time. Starts at 0.
  Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `t` (clamped to now() if earlier).
  // Returns an id usable with `cancel`.
  std::uint64_t schedule_at(Time t, Callback fn);

  // Schedule `fn` to run `dt` seconds from now.
  std::uint64_t schedule_in(Time dt, Callback fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  // Cancel a pending event. Returns false if it already ran or never existed.
  bool cancel(std::uint64_t id);

  // Run until the event queue drains or stop() is called.
  // Returns final simulated time.
  Time run();

  // Run until simulated time reaches `t_end` (events at exactly t_end run).
  Time run_until(Time t_end);

  // Stop a `run()` in progress after the current event returns.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return callbacks_.size(); }
  std::uint64_t events_executed() const { return executed_; }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    bool operator>(const Event& o) const {
      return t > o.t || (t == o.t && seq > o.seq);
    }
  };

  bool step();  // execute one event; false when queue empty

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace xscale::sim
