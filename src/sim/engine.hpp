// Discrete-event simulation engine.
//
// The engine owns a priority queue of timestamped events. Events scheduled at
// equal times fire in insertion order (a monotone sequence number breaks
// ties), which keeps every simulation in this repository deterministic.
//
// Cancellation is lazy: `cancel` drops the callback and leaves a stale entry
// in the heap, which is skipped on pop. To keep heap memory bounded under
// cancel-heavy workloads (FlowSim reschedules its completion event on every
// flow arrival), the heap is compacted — stale entries filtered out and the
// heap rebuilt — whenever stale entries outnumber live ones. The invariant
// `cancelled_events() <= pending_events()` therefore holds after every cancel.
//
// The engine is deliberately single-threaded: xscale simulates a parallel
// machine, it does not need to *be* one, and determinism is worth more than
// wall-clock speed for reproducing the paper's tables.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace xscale::sim {

using Time = double;  // seconds of simulated time

class Engine {
 public:
  using Callback = std::function<void()>;

  // Current simulated time. Starts at 0.
  Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `t` (clamped to now() if earlier).
  // Non-finite `t` (NaN, ±inf) throws std::invalid_argument: NaN breaks the
  // heap comparator's strict weak ordering and silently corrupts event order.
  // Returns an id usable with `cancel`.
  std::uint64_t schedule_at(Time t, Callback fn);

  // Schedule `fn` to run `dt` seconds from now.
  std::uint64_t schedule_in(Time dt, Callback fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  // Cancel a pending event. Returns false if it already ran or never existed.
  bool cancel(std::uint64_t id);

  // Run until the event queue drains or stop() is called.
  // Returns final simulated time.
  Time run();

  // Run until simulated time reaches `t_end` (events at exactly t_end run;
  // events after t_end — live or hidden behind cancelled entries — do not).
  Time run_until(Time t_end);

  // Stop a `run()` in progress after the current event returns.
  void stop() { stopped_ = true; }

  std::size_t pending_events() const { return live_; }
  std::uint64_t events_executed() const { return executed_; }
  std::uint64_t events_scheduled() const { return next_seq_; }

  // Observability for the lazy-cancel leak: stale (cancelled but not yet
  // popped) entries currently in the heap, total heap occupancy, and how many
  // times the heap has been compacted.
  std::size_t cancelled_events() const { return stale_; }
  std::size_t heap_size() const { return heap_.size(); }
  std::uint64_t compactions() const { return compactions_; }

 private:
  // Callbacks live in a slot arena with a free list; the public event id
  // encodes (generation << 32 | slot) so `cancel` resolves in O(1) without a
  // hash map. Slots (and their std::function buffers) are reused, so a warm
  // schedule/cancel/fire cycle performs zero heap allocations — part of the
  // steady-state zero-allocation contract (DESIGN.md §8). Generations bump on
  // every release; a heap entry whose generation no longer matches its slot
  // is stale. ABA would need 2^32 reuses of one slot between a cancel and
  // its pop, which compaction (stale <= live) rules out.
  struct Slot {
    Callback fn;
    std::uint32_t gen = 0;
    bool live = false;
  };
  struct Event {
    Time t;
    std::uint64_t seq;  // insertion order; ties at equal t fire FIFO
    std::uint32_t slot;
    std::uint32_t gen;
  };
  // Comparator for a min-heap on (t, seq) via the std:: heap algorithms
  // (which build max-heaps, hence the inverted comparison).
  struct After {
    bool operator()(const Event& a, const Event& b) const {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  bool is_live(const Event& e) const {
    return slots_[e.slot].live && slots_[e.slot].gen == e.gen;
  }
  void release_slot(std::uint32_t slot);
  bool step();             // execute one event; false when queue empty
  void drop_stale_top();   // pop cancelled entries off the heap top
  void compact();          // rebuild the heap without stale entries

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t stale_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::vector<Event> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace xscale::sim
