#include "sim/table.hpp"

#include <algorithm>
#include <cstdio>

namespace xscale::sim {

Table& Table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<std::string> cols) {
  rows_.push_back({std::move(cols), false});
  return *this;
}

Table& Table::rule() {
  rows_.push_back({{}, true});
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths;
  auto widen = [&](const std::vector<std::string>& cols) {
    if (widths.size() < cols.size()) widths.resize(cols.size(), 0);
    for (std::size_t i = 0; i < cols.size(); ++i)
      widths[i] = std::max(widths[i], cols[i].size());
  };
  widen(header_);
  for (const auto& r : rows_)
    if (!r.is_rule) widen(r.cols);

  auto fmt_row = [&](const std::vector<std::string>& cols) {
    std::string line = "| ";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::string c = i < cols.size() ? cols[i] : "";
      c.resize(widths[i], ' ');
      line += c + " | ";
    }
    line.pop_back();
    return line + "\n";
  };
  auto rule_row = [&] {
    std::string line = "+";
    for (auto w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };

  std::string out = "== " + title_ + " ==\n";
  out += rule_row();
  if (!header_.empty()) {
    out += fmt_row(header_);
    out += rule_row();
  }
  for (const auto& r : rows_) out += r.is_rule ? rule_row() : fmt_row(r.cols);
  out += rule_row();
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace xscale::sim
