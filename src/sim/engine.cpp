#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xscale::sim {

std::uint64_t Engine::schedule_at(Time t, Callback fn) {
  if (!std::isfinite(t))
    throw std::invalid_argument("Engine::schedule_at: non-finite time");
  if (t < now_) t = now_;
  const std::uint64_t id = next_seq_++;
  heap_.push_back(Event{t, id});
  std::push_heap(heap_.begin(), heap_.end(), After{});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Engine::cancel(std::uint64_t id) {
  if (callbacks_.erase(id) == 0) return false;
  ++stale_;  // the heap entry stays behind; skipped on pop or compacted away
  obs::tracer().instant("sim", "cancel", now_,
                        {{"id", static_cast<double>(id)}});
  static obs::Counter& cancels = obs::metrics().counter("sim.events_cancelled");
  cancels.inc();
  if (stale_ > callbacks_.size()) compact();
  return true;
}

void Engine::compact() {
  const auto before = static_cast<double>(heap_.size());
  std::erase_if(heap_, [this](const Event& e) { return !callbacks_.contains(e.seq); });
  std::make_heap(heap_.begin(), heap_.end(), After{});
  stale_ = 0;
  ++compactions_;
  obs::tracer().span("sim", "compact", now_, 0.0,
                     {{"heap_before", before},
                      {"heap_after", static_cast<double>(heap_.size())}});
  static obs::Counter& compactions = obs::metrics().counter("sim.compactions");
  compactions.inc();
}

void Engine::drop_stale_top() {
  while (!heap_.empty() && !callbacks_.contains(heap_.front().seq)) {
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    heap_.pop_back();
    --stale_;
  }
}

bool Engine::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    const Event ev = heap_.back();
    heap_.pop_back();
    auto it = callbacks_.find(ev.seq);
    if (it == callbacks_.end()) {  // cancelled
      --stale_;
      continue;
    }
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.t;
    ++executed_;
    obs::tracer().instant("sim", "execute", ev.t,
                          {{"seq", static_cast<double>(ev.seq)}});
    static obs::Counter& executed = obs::metrics().counter("sim.events_executed");
    executed.inc();
    fn();
    return true;
  }
  return false;
}

Time Engine::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
  return now_;
}

Time Engine::run_until(Time t_end) {
  stopped_ = false;
  while (!stopped_) {
    // A cancelled entry at the top must not gate the time check: it may hide
    // a live event past t_end that step() would then run prematurely.
    drop_stale_top();
    if (heap_.empty() || heap_.front().t > t_end) break;
    step();
  }
  if (now_ < t_end) now_ = t_end;
  return now_;
}

}  // namespace xscale::sim
