#include "sim/engine.hpp"

#include <utility>

namespace xscale::sim {

std::uint64_t Engine::schedule_at(Time t, Callback fn) {
  if (t < now_) t = now_;
  const std::uint64_t id = next_seq_++;
  heap_.push(Event{t, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool Engine::cancel(std::uint64_t id) {
  return callbacks_.erase(id) > 0;  // stale heap entry is skipped on pop
}

bool Engine::step() {
  while (!heap_.empty()) {
    const Event ev = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(ev.seq);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = ev.t;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

Time Engine::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
  return now_;
}

Time Engine::run_until(Time t_end) {
  stopped_ = false;
  while (!stopped_ && !heap_.empty()) {
    if (heap_.top().t > t_end) break;
    step();
  }
  if (now_ < t_end) now_ = t_end;
  return now_;
}

}  // namespace xscale::sim
