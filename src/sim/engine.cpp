#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xscale::sim {

std::uint64_t Engine::schedule_at(Time t, Callback fn) {
  if (!std::isfinite(t))
    throw std::invalid_argument("Engine::schedule_at: non-finite time");
  if (t < now_) t = now_;
  const std::uint64_t seq = next_seq_++;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  ++live_;
  heap_.push_back(Event{t, seq, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), After{});
  return (static_cast<std::uint64_t>(s.gen) << 32) | slot;
}

void Engine::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;  // keep the slot inert; the buffer is gone (moved or reset)
  s.live = false;
  ++s.gen;  // invalidates every heap entry still pointing here
  free_slots_.push_back(slot);
  --live_;
}

bool Engine::cancel(std::uint64_t id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size() || !slots_[slot].live || slots_[slot].gen != gen)
    return false;  // already ran, already cancelled, or never existed
  release_slot(slot);
  ++stale_;  // the heap entry stays behind; skipped on pop or compacted away
  obs::tracer().instant("sim", "cancel", now_,
                        {{"id", static_cast<double>(id)}});
  static obs::Counter& cancels = obs::metrics().counter("sim.events_cancelled");
  cancels.inc();
  if (stale_ > live_) compact();
  return true;
}

void Engine::compact() {
  const auto before = static_cast<double>(heap_.size());
  std::erase_if(heap_, [this](const Event& e) { return !is_live(e); });
  std::make_heap(heap_.begin(), heap_.end(), After{});
  stale_ = 0;
  ++compactions_;
  obs::tracer().span("sim", "compact", now_, 0.0,
                     {{"heap_before", before},
                      {"heap_after", static_cast<double>(heap_.size())}});
  static obs::Counter& compactions = obs::metrics().counter("sim.compactions");
  compactions.inc();
}

void Engine::drop_stale_top() {
  while (!heap_.empty() && !is_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    heap_.pop_back();
    --stale_;
  }
}

bool Engine::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), After{});
    const Event ev = heap_.back();
    heap_.pop_back();
    if (!is_live(ev)) {  // cancelled
      --stale_;
      continue;
    }
    // Release before invoking: the callback may schedule new events and is
    // allowed to reuse this slot (its generation has already moved on).
    Callback fn = std::move(slots_[ev.slot].fn);
    release_slot(ev.slot);
    now_ = ev.t;
    ++executed_;
    obs::tracer().instant("sim", "execute", ev.t,
                          {{"seq", static_cast<double>(ev.seq)}});
    static obs::Counter& executed = obs::metrics().counter("sim.events_executed");
    executed.inc();
    fn();
    return true;
  }
  return false;
}

Time Engine::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
  return now_;
}

Time Engine::run_until(Time t_end) {
  stopped_ = false;
  while (!stopped_) {
    // A cancelled entry at the top must not gate the time check: it may hide
    // a live event past t_end that step() would then run prematurely.
    drop_stale_top();
    if (heap_.empty() || heap_.front().t > t_end) break;
    step();
  }
  if (now_ < t_end) now_ = t_end;
  return now_;
}

}  // namespace xscale::sim
