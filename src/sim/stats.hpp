// Streaming statistics, percentile samples, and fixed-bin histograms.
//
// These back every "Average / 99%" column and every histogram figure in the
// reproduced tables.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace xscale::sim {

// Welford online mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  // Fold another accumulator in (Chan's parallel Welford update). Merging an
  // empty accumulator is an exact no-op and merging *into* an empty one is an
  // exact copy, so per-shard stats that only ever saw one writer reproduce
  // the sequential bits (the determinism contract in DESIGN.md §7 relies on
  // this).
  void merge(const OnlineStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double d = o.mean_ - mean_;
    mean_ += d * (nb / (na + nb));
    m2_ += o.m2_ + d * d * (na * nb / (na + nb));
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

  void reset() { *this = OnlineStats{}; }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Retains all samples; supports exact percentiles. Fine for the sample counts
// used in the benches (<= millions).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    stats_.add(x);
    if (std::isnan(x)) ++nan_count_;
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  std::size_t nan_count() const { return nan_count_; }
  double mean() const { return stats_.mean(); }
  double stddev() const { return stats_.stddev(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }

  // Exact percentile by nearest-rank over the non-NaN samples (NaN compares
  // false under operator<, which would break std::sort's strict weak
  // ordering — they are ordered after every real sample instead and excluded
  // from the rank). Throws std::invalid_argument unless p is in [0,100];
  // returns 0.0 on an empty set and NaN when every sample is NaN.
  double percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  std::size_t nan_count_ = 0;
  OnlineStats stats_;
};

// Fixed-width-bin histogram over [lo, hi). Out-of-range samples are counted
// in explicit underflow/overflow tallies by default; `OutlierPolicy::Clamp`
// instead buckets them into the edge bins, matching how mpiGraph-style plots
// fold outliers into the plot range. NaN samples never enter a bin (feeding a
// NaN bin index to std::clamp is UB); they are tallied separately.
class Histogram {
 public:
  enum class OutlierPolicy { Count, Clamp };

  // Requires hi > lo and bins >= 1; throws std::invalid_argument otherwise
  // (a non-positive bin width used to produce negative/NaN bin indices).
  Histogram(double lo, double hi, std::size_t bins,
            OutlierPolicy policy = OutlierPolicy::Count);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_hi(std::size_t i) const { return bin_lo(i) + width_; }
  double bin_center(std::size_t i) const { return bin_lo(i) + width_ / 2.0; }
  double count(std::size_t i) const { return counts_[i]; }
  // Total weight landed in bins (includes clamped outliers under Clamp).
  double total() const { return total_; }

  // Weight rejected from the bins (always zero under Clamp, except NaN).
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }
  double nan_weight() const { return nan_; }

  // Multi-line ASCII rendering (one row per bin with a proportional bar),
  // used by the figure benches.
  std::string ascii(std::size_t max_width = 60, const std::string& unit = "") const;

 private:
  double lo_, width_;
  OutlierPolicy policy_;
  std::vector<double> counts_;
  double total_ = 0.0;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  double nan_ = 0.0;
};

}  // namespace xscale::sim
