// Streaming statistics, percentile samples, and fixed-bin histograms.
//
// These back every "Average / 99%" column and every histogram figure in the
// reproduced tables.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace xscale::sim {

// Welford online mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Retains all samples; supports exact percentiles. Fine for the sample counts
// used in the benches (<= millions).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    stats_.add(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  double mean() const { return stats_.mean(); }
  double stddev() const { return stats_.stddev(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }

  // Exact percentile by nearest-rank; p in [0,100].
  double percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  OnlineStats stats_;
};

// Fixed-width-bin histogram over [lo, hi); out-of-range values clamp to the
// edge bins, matching how mpiGraph-style plots bucket outliers.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
  double bin_hi(std::size_t i) const { return bin_lo(i) + width_; }
  double bin_center(std::size_t i) const { return bin_lo(i) + width_ / 2.0; }
  double count(std::size_t i) const { return counts_[i]; }
  double total() const { return total_; }

  // Multi-line ASCII rendering (one row per bin with a proportional bar),
  // used by the figure benches.
  std::string ascii(std::size_t max_width = 60, const std::string& unit = "") const;

 private:
  double lo_, width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace xscale::sim
