#include "sim/parallel.hpp"

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

namespace xscale::sim {
namespace {

// Set while a thread is executing chunks of some region; reentrant
// for_chunks calls from such a thread run inline instead of deadlocking on
// the pool (the outer region's workers are busy).
thread_local bool in_region = false;

// Saves/restores in_region so a nested inline region doesn't clear the flag
// while its enclosing region is still running on this thread (which would
// let the *next* nested call publish a fresh region on the pool and clobber
// the outer region's cursor). Restoring in the destructor also keeps the
// flag correct when fn throws out of the inline path.
struct RegionFlag {
  bool prev;
  RegionFlag() : prev(in_region) { in_region = true; }
  ~RegionFlag() { in_region = prev; }
};

int env_thread_count() {
  if (const char* env = std::getenv("XSCALE_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int g_override = 0;  // 0 = no programmatic override

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(
    const std::function<void(std::size_t, std::size_t)>& fn) {
  for (;;) {
    const std::size_t b = cursor_.fetch_add(grain_, std::memory_order_relaxed);
    if (b >= n_) return;
    const std::size_t e = b + grain_ < n_ ? b + grain_ : n_;
    try {
      fn(b, e);
    } catch (...) {
      std::lock_guard<std::mutex> lk(m_);
      if (!error_) error_ = std::current_exception();
      // Keep draining chunks so the region still covers [0, n); the caller
      // rethrows after the barrier.
    }
  }
}

void ThreadPool::worker_loop(int /*slot*/) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      fn = fn_;
    }
    {
      RegionFlag flag;
      run_chunks(*fn);
    }
    {
      std::lock_guard<std::mutex> lk(m_);
      --workers_in_region_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::for_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;

  // Inline paths: single-threaded pool, nested region, or a region so small
  // that waking workers costs more than the work. Chunk boundaries stay
  // identical either way — only who runs them changes.
  if (threads_ == 1 || in_region || n <= grain) {
    RegionFlag flag;
    for (std::size_t b = 0; b < n; b += grain) {
      const std::size_t e = b + grain < n ? b + grain : n;
      fn(b, e);  // exceptions propagate directly
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lk(m_);
    fn_ = &fn;
    n_ = n;
    grain_ = grain;
    cursor_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    workers_in_region_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  cv_.notify_all();

  {
    RegionFlag flag;
    run_chunks(fn);
  }

  std::unique_lock<std::mutex> lk(m_);
  done_cv_.wait(lk, [&] { return workers_in_region_ == 0; });
  fn_ = nullptr;
  if (error_) {
    auto err = error_;
    error_ = nullptr;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

int thread_count() { return g_override > 0 ? g_override : env_thread_count(); }

namespace {
std::unique_ptr<ThreadPool>& pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}
}  // namespace

void set_thread_count(int n) {
  if (n < 1) throw std::invalid_argument("set_thread_count: n must be >= 1");
  g_override = n;
  auto& slot = pool_slot();
  if (slot && slot->threads() != n) slot.reset();
}

ThreadPool& global_pool() {
  auto& slot = pool_slot();
  const int want = thread_count();
  if (!slot || slot->threads() != want)
    slot = std::make_unique<ThreadPool>(want);
  return *slot;
}

}  // namespace xscale::sim
