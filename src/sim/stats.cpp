#include "sim/stats.hpp"

#include <cstdio>
#include <stdexcept>

namespace xscale::sim {

double SampleSet::percentile(double p) const {
  if (std::isnan(p) || p < 0.0 || p > 100.0)
    throw std::invalid_argument("SampleSet::percentile: p must be in [0,100]");
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    // NaN < x and x < NaN are both false, so plain operator< is not a strict
    // weak ordering over samples containing NaN (UB in std::sort that can
    // scramble or over-run). Order NaNs after every real sample instead.
    std::sort(samples_.begin(), samples_.end(), [](double a, double b) {
      if (std::isnan(b)) return !std::isnan(a);
      if (std::isnan(a)) return false;
      return a < b;
    });
    sorted_ = true;
  }
  const std::size_t n = samples_.size() - nan_count_;  // non-NaN prefix
  if (n == 0) return std::numeric_limits<double>::quiet_NaN();
  const auto rank =
      static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  return samples_[rank == 0 ? 0 : rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t bins, OutlierPolicy policy)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins)),
      policy_(policy),
      counts_(bins, 0.0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(hi > lo) || !std::isfinite(lo) || !std::isfinite(hi))
    throw std::invalid_argument("Histogram: requires finite hi > lo");
}

void Histogram::add(double x, double weight) {
  if (std::isnan(x)) {  // a NaN bin index would be UB in std::clamp
    nan_ += weight;
    return;
  }
  if (x < lo_ || x >= lo_ + width_ * static_cast<double>(counts_.size())) {
    if (policy_ == OutlierPolicy::Count) {
      (x < lo_ ? underflow_ : overflow_) += weight;
      return;
    }
    counts_[x < lo_ ? 0 : counts_.size() - 1] += weight;
    total_ += weight;
    return;
  }
  auto idx = static_cast<long long>(std::floor((x - lo_) / width_));
  // Guard the upper edge against floating-point round-up of (x - lo) / width.
  idx = std::clamp<long long>(idx, 0, static_cast<long long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

std::string Histogram::ascii(std::size_t max_width, const std::string& unit) const {
  double peak = 0.0;
  for (double c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar_len = peak > 0.0
        ? static_cast<std::size_t>(counts_[i] / peak * static_cast<double>(max_width))
        : 0;
    std::snprintf(line, sizeof(line), "  [%8.2f, %8.2f) %s %9.0f |", bin_lo(i),
                  bin_hi(i), unit.c_str(), counts_[i]);
    out += line;
    out.append(bar_len, '#');
    out += '\n';
  }
  return out;
}

}  // namespace xscale::sim
