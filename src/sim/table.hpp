// Minimal fixed-width table renderer for bench output.
//
// Every bench binary prints the paper's table/figure as rows; this helper
// keeps the formatting consistent and column-aligned.
#pragma once

#include <string>
#include <vector>

namespace xscale::sim {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cols);
  Table& row(std::vector<std::string> cols);
  // Horizontal separator row.
  Table& rule();

  std::string render() const;
  // Render to stdout.
  void print() const;

  static std::string num(double v, int precision = 4);

 private:
  std::string title_;
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cols;
    bool is_rule = false;
  };
  std::vector<Row> rows_;
};

}  // namespace xscale::sim
