// Deterministic parallel execution layer.
//
// xscale's simulations must produce byte-identical tables, histograms, and
// metrics snapshots at any thread count (DESIGN.md §7) — a sweep run on a
// 64-core node has to reproduce the single-core reference exactly, or the
// differential tests that gate every solver change lose their oracle. The
// primitives here are therefore *structured*: work is split into chunks whose
// boundaries depend only on the problem size and an explicit grain, never on
// the thread count or on which worker ran what, and every merge the caller
// performs is in chunk-index order.
//
//   * `ThreadPool` — a small fork-join pool. Workers pull fixed-size chunks
//     off a shared atomic cursor (load balancing), the caller participates,
//     and the region ends when every chunk has run. Exceptions propagate to
//     the caller (first thrown wins). Nested regions from a worker thread run
//     inline on that worker — no deadlock, same results.
//   * `parallel_for(n, grain, fn)` — fn(begin, end) over disjoint chunks
//     covering [0, n). Writes to index-disjoint slots need no synchronization
//     and are bit-deterministic by construction.
//   * `parallel_reduce(n, grain, map, combine)` — maps fixed chunks to
//     partial values, then combines them **in ascending chunk order** on the
//     caller. Identical chunk boundaries + ordered combine = bit-identical
//     results for any thread count, even for non-associative floating-point
//     reductions.
//
// Thread count resolution: `XSCALE_THREADS` env var if set (>= 1), else the
// hardware concurrency; `set_thread_count()` overrides programmatically (the
// determinism sweep tests run the same workload at 1/2/8 threads in one
// process). A pool of size 1 executes everything inline on the caller.
//
// Determinism contract for RNG-bearing work: shard the stream by *task index*
// — `rng.substream(i)` or `Rng(splitmix64(seed ^ i))` — never by thread id,
// so sample i is the same number regardless of which worker draws it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xscale::sim {

class ThreadPool {
 public:
  // `threads` counts the caller: a pool of N runs regions on N-1 workers plus
  // the calling thread. threads <= 1 means fully inline execution.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Run fn(begin, end) over chunks of `grain` indices covering [0, n).
  // Chunk boundaries are (k*grain, min(n, (k+1)*grain)) — independent of the
  // thread count. Blocks until every chunk has run; rethrows the first
  // exception any chunk threw. Reentrant calls from inside a region run
  // inline on the calling worker.
  void for_chunks(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop(int slot);
  void run_chunks(const std::function<void(std::size_t, std::size_t)>& fn);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex m_;
  std::condition_variable cv_;       // workers wait for a region
  std::condition_variable done_cv_;  // caller waits for workers to finish
  std::uint64_t epoch_ = 0;          // bumped to publish a region
  bool shutdown_ = false;
  int workers_in_region_ = 0;  // workers that have not yet finished the region

  // Current region (valid while workers_in_region_ > 0).
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t grain_ = 1;
  std::atomic<std::size_t> cursor_{0};
  std::exception_ptr error_;  // first exception, guarded by m_
};

// Thread count configured for this process: the programmatic override if
// set_thread_count() was called, else XSCALE_THREADS (clamped to >= 1), else
// std::thread::hardware_concurrency().
int thread_count();

// Override the thread count (tests, bench --threads). Takes effect on the
// next global_pool() access; must not be called while a region is running.
void set_thread_count(int n);

// Process-wide pool, built lazily at the configured thread count and rebuilt
// when set_thread_count() changes it.
ThreadPool& global_pool();

// fn(begin, end) over fixed chunks of [0, n) on the global pool.
inline void parallel_for(std::size_t n, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t)>& fn) {
  global_pool().for_chunks(n, grain, fn);
}

// Ordered reduction: partial results per fixed chunk, combined in ascending
// chunk order on the caller. `map` is T(begin, end); `combine` is
// T(T acc, T partial). Bit-deterministic for any thread count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, std::size_t grain, T init, Map&& map,
                  Combine&& combine) {
  if (n == 0) return init;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<T> partial(chunks);
  parallel_for(n, grain, [&](std::size_t b, std::size_t e) {
    partial[b / grain] = map(b, e);
  });
  T acc = std::move(init);
  for (auto& p : partial) acc = combine(std::move(acc), std::move(p));
  return acc;
}

// Ordered emit: each index appends a variable number of items to a per-chunk
// buffer; buffers are concatenated in chunk order. The parallel analogue of
//   for (i in [0,n)) fn(i, out);
// with byte-identical output for any thread count.
template <typename T, typename Fn>
std::vector<T> parallel_emit(std::size_t n, std::size_t grain, Fn&& fn) {
  return parallel_reduce<std::vector<T>>(
      n, grain, {},
      [&](std::size_t b, std::size_t e) {
        std::vector<T> local;
        for (std::size_t i = b; i < e; ++i) fn(i, local);
        return local;
      },
      [](std::vector<T> acc, std::vector<T> part) {
        if (acc.empty()) return part;
        acc.insert(acc.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
        return acc;
      });
}

}  // namespace xscale::sim
