#include "sim/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace xscale::units {
namespace {

std::string scaled(double v, double base, const char* const* suffixes, int n,
                   const char* tail) {
  int i = 0;
  double a = std::fabs(v);
  while (a >= base && i + 1 < n) {
    v /= base;
    a /= base;
    ++i;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g %s%s", v, suffixes[i], tail);
  return buf;
}

}  // namespace

std::string fmt_bytes_si(double bytes) {
  static const char* s[] = {"", "K", "M", "G", "T", "P", "E"};
  return scaled(bytes, 1e3, s, 7, "B");
}

std::string fmt_bytes_iec(double bytes) {
  static const char* s[] = {"", "Ki", "Mi", "Gi", "Ti", "Pi", "Ei"};
  return scaled(bytes, 1024.0, s, 7, "B");
}

std::string fmt_rate(double bps) {
  static const char* s[] = {"", "K", "M", "G", "T", "P", "E"};
  return scaled(bps, 1e3, s, 7, "B/s");
}

std::string fmt_flops(double fps) {
  static const char* s[] = {"", "K", "M", "G", "T", "P", "E"};
  return scaled(fps, 1e3, s, 7, "FLOP/s");
}

std::string fmt_time(double seconds) {
  char buf[64];
  double a = std::fabs(seconds);
  if (a >= 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.4g h", seconds / 3600.0);
  } else if (a >= 60.0) {
    std::snprintf(buf, sizeof(buf), "%.4g min", seconds / 60.0);
  } else if (a >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.4g s", seconds);
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.4g ms", seconds * 1e3);
  } else if (a >= 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.4g us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g ns", seconds * 1e9);
  }
  return buf;
}

std::string fmt_count(double n) {
  static const char* s[] = {"", "K", "M", "B", "T", "Q"};
  return scaled(n, 1e3, s, 6, "");
}

}  // namespace xscale::units
