// Deterministic random-number utilities.
//
// Every stochastic component in xscale draws from an explicitly seeded Rng so
// that each bench/test run reproduces bit-identical results. Sub-streams are
// derived with SplitMix64 so components can be given independent streams from
// one master seed without correlation.
#pragma once

#include <cstdint>
#include <random>

namespace xscale::sim {

// SplitMix64: used for seed derivation (Steele et al., "Fast splittable
// pseudorandom number generators").
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97f4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EEDULL)
      : base_seed_(seed), gen_(splitmix64(seed)) {}

  // Independent sub-stream for component `tag` (e.g. per node, per flow).
  Rng substream(std::uint64_t tag) const {
    return Rng(splitmix64(base_seed_ ^ splitmix64(tag)));
  }

  double uniform() { return dist_(gen_); }                       // [0,1)
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  // Integer in [0, n).
  std::uint64_t index(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(gen_);
  }
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(gen_);
  }
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }
  // Log-normal parameterized by the *target* median and sigma of log.
  double lognormal_median(double median, double sigma) {
    return std::lognormal_distribution<double>(std::log(median), sigma)(gen_);
  }
  bool bernoulli(double p) { return uniform() < p; }

  std::mt19937_64& raw() { return gen_; }

 private:
  std::uint64_t base_seed_ = 0;
  std::mt19937_64 gen_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
};

}  // namespace xscale::sim
