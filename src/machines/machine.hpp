// Machine assemblies: a node model, a node count, and a fabric factory.
//
// `frontier()` derives every Table 1 row from first principles (node model x
// node count, topology-derived injection/global bandwidth). The baseline
// machines are the comparison systems of §4.4: Summit and Titan (CAAR
// baselines, GPU machines) and Mira/Theta/Cori (ECP baselines, ~10-20 PF
// CPU/KNL machines).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "hw/node.hpp"
#include "net/fabric.hpp"
#include "topo/topology.hpp"

namespace xscale::machines {

struct Machine {
  std::string name;
  int year = 0;
  hw::NodeConfig node;
  int total_nodes = 0;
  // Nodes available to jobs (Frontier schedules 9,408 of 9,472 for compute;
  // the paper's app runs top out around 9,2xx).
  int compute_nodes = 0;
  // Builds the interconnect; null for machines modelled at node level only.
  std::function<topo::Topology()> topology_factory;
  // Default fabric configuration for this machine's network technology.
  net::FabricConfig fabric_defaults;

  // --- derived aggregates (Table 1) ------------------------------------------
  double fp64_dgemm_peak() const {
    return static_cast<double>(total_nodes) * node.fp64_dgemm_peak();
  }
  double ddr_capacity() const {
    return static_cast<double>(total_nodes) * node.ddr_capacity();
  }
  double ddr_bandwidth() const {
    return static_cast<double>(total_nodes) * node.ddr_bandwidth();
  }
  double hbm_capacity() const {
    return static_cast<double>(total_nodes) * node.hbm_capacity();
  }
  double hbm_bandwidth() const {
    return static_cast<double>(total_nodes) * node.hbm_bandwidth();
  }
  double injection_bandwidth_per_node() const { return node.injection_bandwidth(); }

  bool has_fabric() const { return static_cast<bool>(topology_factory); }
  net::Fabric build_fabric() const { return build_fabric(fabric_defaults); }
  net::Fabric build_fabric(net::FabricConfig cfg) const {
    return net::Fabric(topology_factory(), cfg);
  }

  // Node-level FP64 peak including CPU (GPU-only machines dominated by GPU).
  double node_fp64_peak() const {
    return static_cast<double>(node.gpus) * node.gpu.fp64_vector +
           static_cast<double>(node.cpu_sockets) * node.cpu.fp64_peak();
  }
};

// Frontier dragonfly parameters (§3.2).
struct FrontierFabricSpec {
  int compute_groups = 74;
  int storage_groups = 5;
  int management_groups = 1;
  int switches_per_compute_group = 32;
  int switches_per_service_group = 16;
  int endpoints_per_switch = 16;
  // Physical 200G links per bundle pair (a "bundle" is a QSFP-DD cable with
  // two links; compute-compute uses bundle size two -> 4 links).
  int compute_compute_links = 4;
  int compute_service_links = 2;   // one bundle
  int storage_storage_links = 10;  // five bundles
  int storage_management_links = 6;
  double link_bw = units::Gbps(200);
  // Calibrated so GPCNeT's 8 B RR latency lands at Table 5's 2.6 us over a
  // 5-hop minimal inter-group path plus two software overheads.
  double hop_latency = 150e-9;
};

topo::Topology frontier_topology(const FrontierFabricSpec& spec = {});

Machine frontier();
Machine summit();
Machine aurora();  // HPE Cray EX, Intel CPU Max + GPU Max, Slingshot dragonfly
Machine titan();
Machine mira();    // IBM BG/Q, ~10 PF (EXAALT baseline)
Machine theta();   // Cray XC40 KNL (ExaSky baseline)
Machine cori();    // Cray XC40 KNL (WarpX baseline)

// Look up by (case-insensitive) name; returns nullopt if unknown.
std::optional<Machine> by_name(const std::string& name);

// NIC endpoints of a node in the machine's topology. On Frontier each node
// owns 4 consecutive endpoints (one per Cassini NIC).
int endpoints_per_node(const Machine& m);
int node_endpoint(const Machine& m, int node, int nic);

}  // namespace xscale::machines
