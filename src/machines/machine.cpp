#include "machines/machine.hpp"

#include <algorithm>
#include <cctype>

namespace xscale::machines {

using namespace xscale::units;

topo::Topology frontier_topology(const FrontierFabricSpec& spec) {
  std::vector<topo::GroupSpec> groups;
  for (int g = 0; g < spec.compute_groups; ++g)
    groups.push_back({spec.switches_per_compute_group, spec.endpoints_per_switch});
  for (int g = 0; g < spec.storage_groups; ++g)
    groups.push_back({spec.switches_per_service_group, spec.endpoints_per_switch});
  for (int g = 0; g < spec.management_groups; ++g)
    groups.push_back({spec.switches_per_service_group, spec.endpoints_per_switch});

  const int nc = spec.compute_groups;
  const int ns = spec.storage_groups;
  auto kind = [nc, ns](int g) {
    return g < nc ? 0 : (g < nc + ns ? 1 : 2);  // compute/storage/mgmt
  };
  auto bundle = [spec, kind](int g, int h) {
    const int a = kind(g), b = kind(h);
    if (a == 0 && b == 0) return spec.compute_compute_links;
    if (a == 1 && b == 1) return spec.storage_storage_links;
    if ((a == 1 && b == 2) || (a == 2 && b == 1)) return spec.storage_management_links;
    return spec.compute_service_links;  // compute<->storage, compute<->mgmt
  };
  return topo::Topology::dragonfly(groups, bundle, spec.link_bw, spec.hop_latency);
}

Machine frontier() {
  Machine m;
  m.name = "Frontier";
  m.year = 2022;
  m.node = hw::bard_peak();
  m.total_nodes = 9472;
  m.compute_nodes = 9408;
  m.topology_factory = [] { return frontier_topology(); };
  m.fabric_defaults.routing = net::Routing::Adaptive;
  m.fabric_defaults.congestion_control = true;
  m.fabric_defaults.nic_efficiency = 0.70;  // 17.5/25 best case (Fig. 6)
  return m;
}

Machine summit() {
  Machine m;
  m.name = "Summit";
  m.year = 2018;
  m.node = hw::summit_node();
  m.total_nodes = 4608;
  m.compute_nodes = 4600;
  // Non-blocking EDR fat-tree; one logical endpoint per NIC port
  // (2x 12.5 GB/s per node).
  m.topology_factory = [] {
    return topo::Topology::fat_tree(/*leaves=*/512, /*eps_per_leaf=*/18,
                                    units::Gbps(100), 250e-9);
  };
  m.fabric_defaults.routing = net::Routing::Minimal;
  m.fabric_defaults.congestion_control = false;  // EDR lacks Slingshot-class CC
  m.fabric_defaults.nic_efficiency = 0.68;       // 8.5/12.5 (Fig. 6)
  return m;
}

Machine aurora() {
  // Argonne's Aurora (the architecture paper in PAPERS.md): HPE Cray EX
  // blades with 2x Intel Xeon CPU Max (on-package HBM omitted here — the DDR5
  // channels carry the capacity story) + 6x Data Center GPU Max 1550, eight
  // Slingshot-11 NICs per node on the same dragonfly technology as Frontier.
  Machine m;
  m.name = "Aurora";
  m.year = 2023;
  hw::NodeConfig n;
  n.name = "HPE Cray EX (Aurora blade)";
  n.cpu.name = "Intel Xeon CPU Max 9470C";
  n.cpu.ccds = 1;
  n.cpu.cores = 52;
  n.cpu.clock_hz = 2.4e9;
  n.cpu.fp64_per_cycle_per_core = 32;  // 2x AVX-512 FMA
  n.cpu.ddr.channels = 8;
  n.cpu.ddr.mts = 4800;
  n.cpu.ddr.dimms = 8;
  n.cpu.ddr.dimm_capacity_bytes = GiB(64);  // 512 GiB/socket
  n.cpu.ddr.stream_efficiency_nps4 = 0.80;
  n.cpu.ddr.stream_efficiency_nps1 = 0.80;
  n.cpu_sockets = 2;
  n.gpu.name = "Intel Data Center GPU Max 1550";
  n.gpu.fp64_vector = TFLOPS(52);
  n.gpu.fp64_matrix = TFLOPS(52);
  n.gpu.fp32_vector = TFLOPS(52);
  n.gpu.fp32_matrix = TFLOPS(52);
  n.gpu.fp16_vector = TFLOPS(104);
  n.gpu.fp16_matrix = TFLOPS(832);  // XMX
  n.gpu.hbm.capacity_bytes = GiB(128);
  n.gpu.hbm.peak_bandwidth = GBs(3277);  // HBM2e, 3.2 TB/s
  n.gpu.hbm.efficiency_scale = 0.85;
  n.gpu.gemm_eff_fp64 = 0.80;
  n.gpu.gemm_eff_fp32 = 0.80;
  n.gpu.gemm_eff_fp16 = 0.80;
  n.gpus = 6;
  n.nic = hw::cassini();
  n.nics = 8;  // one Slingshot-11 NIC per GPU tile pair + CPU pair
  // Consistent with the ~2 EF headline aggregate over 63,744 GPUs.
  n.gpu_fp64_dgemm_sustained = TFLOPS(31.5);
  m.node = n;
  m.total_nodes = 10624;
  m.compute_nodes = 10624;
  // Slingshot dragonfly sized to the NIC count exactly: 83 groups x 64
  // switches x 16 endpoints = 84,992 endpoints = 10,624 nodes x 8 NICs.
  m.topology_factory = [] {
    return topo::Topology::uniform_dragonfly(
        /*n_groups=*/83, {/*switches=*/64, /*endpoints_per_switch=*/16},
        /*links_per_pair=*/4, Gbps(200), 150e-9);
  };
  m.fabric_defaults.routing = net::Routing::Adaptive;
  m.fabric_defaults.congestion_control = true;
  m.fabric_defaults.nic_efficiency = 0.70;  // Slingshot, same NIC as Frontier
  return m;
}

Machine titan() {
  Machine m;
  m.name = "Titan";
  m.year = 2012;
  m.node = hw::titan_node();
  m.total_nodes = 18688;
  m.compute_nodes = 18688;
  m.fabric_defaults.nic_efficiency = 0.60;
  return m;
}

Machine mira() {
  Machine m;
  m.name = "Mira";
  m.year = 2012;
  hw::NodeConfig n;
  n.name = "IBM BG/Q";
  n.cpu.name = "PowerPC A2";
  n.cpu.ccds = 1;
  n.cpu.cores = 16;
  n.cpu.clock_hz = 1.6e9;
  n.cpu.fp64_per_cycle_per_core = 8;  // 4-wide QPX FMA -> 204.8 GF/node
  n.cpu.ddr.channels = 2;
  n.cpu.ddr.mts = 1333;
  n.cpu.ddr.dimms = 2;
  n.cpu.ddr.dimm_capacity_bytes = GiB(8);
  n.cpu.ddr.stream_efficiency_nps4 = 0.65;
  n.cpu.ddr.stream_efficiency_nps1 = 0.65;
  // Self-hosted "device": apps treat the BG/Q node itself as the compute
  // engine (204.8 GF QPX, ~28 GB/s streamed DDR3).
  n.gpus = 1;
  n.gpu.name = "BG/Q node (self-hosted)";
  n.gpu.fp64_vector = GFLOPS(204.8);
  n.gpu.fp64_matrix = GFLOPS(204.8);
  n.gpu.fp32_vector = GFLOPS(204.8);
  n.gpu.fp32_matrix = GFLOPS(204.8);
  n.gpu.fp16_vector = GFLOPS(204.8);
  n.gpu.fp16_matrix = GFLOPS(204.8);
  n.gpu.hbm.capacity_bytes = GiB(16);
  n.gpu.hbm.peak_bandwidth = n.cpu.ddr.peak_bandwidth();
  n.gpu.hbm.efficiency_scale = 0.8;
  n.gpu.launch_latency_s = 0;
  n.gpu_fp64_dgemm_sustained = GFLOPS(170);
  n.nic = hw::NicConfig{.name = "BG/Q 5D torus",
                        .rate = GBs(2.0),
                        .sw_overhead_s = usec(1.0),
                        .wire_latency_s = usec(0.5),
                        .efficiency = 0.9};
  n.nics = 1;
  m.node = n;
  m.total_nodes = 49152;
  m.compute_nodes = 49152;
  return m;
}

namespace {

hw::NodeConfig knl_node(const char* cpu_name) {
  hw::NodeConfig n;
  n.name = "Cray XC40 (KNL)";
  n.cpu.name = cpu_name;
  n.cpu.ccds = 1;
  n.cpu.cores = 68;
  n.cpu.clock_hz = 1.4e9;
  n.cpu.fp64_per_cycle_per_core = 32;  // 2x AVX-512 FMA -> ~3 TF/node
  n.cpu.ddr.channels = 6;
  n.cpu.ddr.mts = 2400;
  n.cpu.ddr.dimms = 6;
  n.cpu.ddr.dimm_capacity_bytes = GiB(16);
  n.cpu.ddr.stream_efficiency_nps4 = 0.85;
  n.cpu.ddr.stream_efficiency_nps1 = 0.85;
  // Model MCDRAM as a GPU-less "HBM" attached to the CPU node: 16 GiB at
  // ~450 GB/s streams; apps treat KNL as a self-hosted accelerator.
  n.gpus = 1;
  n.gpu.name = "KNL MCDRAM+AVX512 (self-hosted)";
  n.gpu.fp64_vector = TFLOPS(3.0);
  n.gpu.fp64_matrix = TFLOPS(3.0);
  n.gpu.fp32_vector = TFLOPS(6.0);
  n.gpu.fp32_matrix = TFLOPS(6.0);
  n.gpu.fp16_vector = TFLOPS(6.0);
  n.gpu.fp16_matrix = TFLOPS(6.0);
  n.gpu.hbm.capacity_bytes = GiB(16);
  n.gpu.hbm.peak_bandwidth = GBs(450);
  n.gpu.hbm.efficiency_scale = 0.90;
  n.gpu.gemm_eff_fp64 = 0.70;
  n.gpu.gemm_eff_fp32 = 0.70;
  n.gpu.gemm_eff_fp16 = 0.70;
  n.gpu.launch_latency_s = 0;  // no offload boundary
  n.nic = hw::NicConfig{.name = "Cray Aries",
                        .rate = GBs(10.5),
                        .sw_overhead_s = usec(0.9),
                        .wire_latency_s = usec(0.4),
                        .efficiency = 0.8};
  n.nics = 1;
  n.gpu_fp64_dgemm_sustained = TFLOPS(2.1);
  return n;
}

}  // namespace

Machine theta() {
  Machine m;
  m.name = "Theta";
  m.year = 2017;
  m.node = knl_node("Intel Xeon Phi 7230 (KNL)");
  m.total_nodes = 4392;
  m.compute_nodes = 4392;
  return m;
}

Machine cori() {
  Machine m;
  m.name = "Cori";
  m.year = 2016;
  m.node = knl_node("Intel Xeon Phi 7250 (KNL)");
  m.total_nodes = 9688;
  m.compute_nodes = 9688;
  return m;
}

std::optional<Machine> by_name(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "frontier") return frontier();
  if (lower == "summit") return summit();
  if (lower == "aurora") return aurora();
  if (lower == "titan") return titan();
  if (lower == "mira") return mira();
  if (lower == "theta") return theta();
  if (lower == "cori") return cori();
  return std::nullopt;
}

int endpoints_per_node(const Machine& m) { return m.node.nics; }

int node_endpoint(const Machine& m, int node, int nic) {
  return node * m.node.nics + nic;
}

}  // namespace xscale::machines
