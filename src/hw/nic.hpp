// Network interface models (§3.1.4).
#pragma once

#include <string>

#include "sim/units.hpp"

namespace xscale::hw {

struct NicConfig {
  std::string name;
  double rate = 0;           // B/s per direction
  double sw_overhead_s = 0;  // software send/recv overhead (OS-bypass path)
  double wire_latency_s = 0; // NIC-to-switch serialization/propagation
  // Fraction of wire rate achievable by a single stream (protocol overhead,
  // headers). Summit's EDR measured 8.5/12.5 = 0.68; Slingshot's intra-group
  // best of 17.5/25 = 0.70 (Figure 6 discussion).
  double efficiency = 0.70;
};

// HPE Slingshot "Cassini": 200 Gb/s Ethernet with HPC-Ethernet OS-bypass.
inline NicConfig cassini() {
  return {
      .name = "HPE Slingshot Cassini (200G)",
      .rate = units::Gbps(200),
      .sw_overhead_s = units::usec(0.80),
      .wire_latency_s = units::usec(0.30),
      .efficiency = 0.70,
  };
}

// Mellanox EDR InfiniBand (Summit).
inline NicConfig edr_ib() {
  return {
      .name = "Mellanox EDR InfiniBand (100G)",
      .rate = units::Gbps(100),
      .sw_overhead_s = units::usec(0.75),
      .wire_latency_s = units::usec(0.35),
      .efficiency = 0.68,
  };
}

}  // namespace xscale::hw
