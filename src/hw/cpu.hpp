// CPU socket models.
//
// `CpuConfig` is generic enough to describe every host CPU in the paper's
// machine set (Trento, POWER9, Opteron, BG/Q, KNL, Haswell); `trento()`
// builds the EPYC 7A53 of §3.1.1.
#pragma once

#include <string>

#include "hw/memory.hpp"
#include "sim/units.hpp"

namespace xscale::hw {

struct CpuConfig {
  std::string name;
  int ccds = 1;              // core complex dies (chiplets)
  int cores = 1;             // total cores
  double clock_hz = 1e9;
  double fp64_per_cycle_per_core = 2;  // sustained FMA width
  DdrConfig ddr;
  NpsMode nps = NpsMode::NPS4;

  double fp64_peak() const {
    return static_cast<double>(cores) * clock_hz * fp64_per_cycle_per_core;
  }
  int cores_per_ccd() const { return cores / ccds; }

  // Best-case single-socket STREAM rate (non-temporal, configured NPS mode).
  double stream_peak() const {
    return ddr.peak_bandwidth() * ddr.stream_efficiency(nps);
  }
};

// AMD EPYC 7A53 "Trento": 64 Zen3 cores over 8 CCDs, custom I/O die with
// InfinityFabric to the GCDs, 8x 64 GiB DDR4-3200 (§3.1.1).
inline CpuConfig trento() {
  CpuConfig c;
  c.name = "AMD EPYC 7A53 (Trento)";
  c.ccds = 8;
  c.cores = 64;
  c.clock_hz = 2.0e9;
  // Zen3: 2x 256-bit FMA pipes -> 16 FP64 FLOP/cycle/core.
  c.fp64_per_cycle_per_core = 16;
  c.ddr.channels = 8;
  c.ddr.mts = 3200;
  c.ddr.dimms = 8;
  c.ddr.dimm_capacity_bytes = units::GiB(64);
  c.nps = NpsMode::NPS4;  // Frontier runs NPS-4 (§3.1.1)
  return c;
}

}  // namespace xscale::hw
