// InfinityFabric (xGMI) intra-node fabric of the Bard Peak node (§3.1.3).
//
// Eight GCDs are connected in a "twisted ladder": four links between the two
// GCDs of one OAM package, two-link bundles north/south between OAM pairs,
// and single links east/west. Each Trento CCD pairs with one GCD over an
// xGMI 2.0 connection. This module answers the bandwidth questions behind
// Figures 4 and 5:
//   * CU copy kernels stripe across every link of a pair,
//   * SDMA engines cannot stripe and are capped at one link (~50 GB/s),
//   * a single CPU core reaches ~71% of the 36 GB/s xGMI2 peak, and eight
//     concurrent ranks saturate at the DDR STREAM rate instead.
#pragma once

#include <array>
#include <vector>

#include "hw/cpu.hpp"
#include "sim/units.hpp"

namespace xscale::hw {

inline constexpr int kGcdsPerNode = 8;

struct XgmiSpec {
  // Per-direction theoretical link rates (§3.1.3).
  double xgmi2_link_bw = units::GBs(36.0);  // CPU <-> GCD
  double xgmi3_link_bw = units::GBs(50.0);  // GCD <-> GCD

  // Achieved fractions, calibrated from §4.2.1:
  double cpu_single_core_eff = 0.71;  // 25.5 / 36
  // CU copy kernels: 37.5 GB/s on one link (0.75), with a small per-extra-link
  // striping penalty (74.9 on two, 145.5 on four).
  double cu_base_eff = 0.75;
  double cu_eff_decay_per_link = 0.0075;
  // SDMA engines transfer at nearly the full single-link rate but cannot
  // stripe (Figure 5, bottom).
  double sdma_eff = 0.997;
};

class IntraNodeFabric {
 public:
  // Builds the Bard Peak twisted ladder (Figure 2). OAM packages pair GCDs
  // (0,1), (2,3), (4,5), (6,7).
  static IntraNodeFabric bard_peak(XgmiSpec spec = {});

  // Number of xGMI3 links directly connecting two GCDs (0 if not adjacent).
  int links_between(int gcd_a, int gcd_b) const;
  // Minimum hop count between GCDs over the ladder.
  int hops(int gcd_a, int gcd_b) const;
  // OAM package index of a GCD.
  static int oam_of(int gcd) { return gcd / 2; }

  // Achieved one-direction bandwidth for a GCD->GCD transfer written by a
  // copy kernel running on the destination/ source CUs (stripes over links).
  double cu_transfer_bw(int gcd_a, int gcd_b) const;
  // Achieved bandwidth when the transfer is offloaded to an SDMA engine
  // (hipMemcpy without a kernel): one link only, regardless of bundle width.
  double sdma_transfer_bw(int gcd_a, int gcd_b) const;

  // CPU->GCD bandwidth for a single core over xGMI2 (§4.2.1: ~25.5 GB/s).
  double cpu_gcd_single_core_bw() const;
  // Aggregate CPU->GCD bandwidth with `ranks` processes, each pinned to its
  // own CCD and targeting its paired GCD (Figure 4): per-rank xGMI2 rates
  // accumulate until the socket's DDR streaming limit is hit.
  double cpu_gcd_aggregate_bw(int ranks, const CpuConfig& cpu) const;

  const XgmiSpec& spec() const { return spec_; }
  // All (a, b, links) triples, a < b.
  const std::vector<std::array<int, 3>>& edges() const { return edges_; }

 private:
  explicit IntraNodeFabric(XgmiSpec spec) : spec_(spec) {}

  XgmiSpec spec_;
  std::vector<std::array<int, 3>> edges_;
  std::array<std::array<int, kGcdsPerNode>, kGcdsPerNode> links_{};
};

}  // namespace xscale::hw
