#include "hw/xgmi.hpp"

#include <algorithm>
#include <queue>

namespace xscale::hw {

IntraNodeFabric IntraNodeFabric::bard_peak(XgmiSpec spec) {
  IntraNodeFabric f(spec);
  auto connect = [&f](int a, int b, int links) {
    f.edges_.push_back({a, b, links});
    f.links_[a][b] = links;
    f.links_[b][a] = links;
  };
  // Four-link rungs inside each OAM package (200+200 GB/s).
  connect(0, 1, 4);
  connect(2, 3, 4);
  connect(4, 5, 4);
  connect(6, 7, 4);
  // Two-link north/south bundles between OAM pairs (100+100 GB/s).
  connect(0, 2, 2);
  connect(1, 3, 2);
  connect(4, 6, 2);
  connect(5, 7, 2);
  // Single east/west links closing the twisted ladder (50+50 GB/s); the
  // crossing (6->1, 7->0) is the "twist" of Figure 2.
  connect(2, 4, 1);
  connect(3, 5, 1);
  connect(6, 1, 1);
  connect(7, 0, 1);
  return f;
}

int IntraNodeFabric::links_between(int a, int b) const { return links_[a][b]; }

int IntraNodeFabric::hops(int a, int b) const {
  if (a == b) return 0;
  std::array<int, kGcdsPerNode> dist{};
  dist.fill(-1);
  dist[a] = 0;
  std::queue<int> q;
  q.push(a);
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int v = 0; v < kGcdsPerNode; ++v) {
      if (links_[u][v] > 0 && dist[v] < 0) {
        dist[v] = dist[u] + 1;
        if (v == b) return dist[v];
        q.push(v);
      }
    }
  }
  return dist[b];
}

double IntraNodeFabric::cu_transfer_bw(int a, int b) const {
  const int links = links_[a][b];
  if (links == 0) return 0.0;  // non-adjacent: caller should route via peers
  const double eff =
      spec_.cu_base_eff - spec_.cu_eff_decay_per_link * static_cast<double>(links - 1);
  return static_cast<double>(links) * spec_.xgmi3_link_bw * eff;
}

double IntraNodeFabric::sdma_transfer_bw(int a, int b) const {
  if (links_[a][b] == 0) return 0.0;
  return spec_.xgmi3_link_bw * spec_.sdma_eff;  // one link, no striping
}

double IntraNodeFabric::cpu_gcd_single_core_bw() const {
  return spec_.xgmi2_link_bw * spec_.cpu_single_core_eff;
}

double IntraNodeFabric::cpu_gcd_aggregate_bw(int ranks, const CpuConfig& cpu) const {
  ranks = std::clamp(ranks, 0, kGcdsPerNode);
  const double per_rank = cpu_gcd_single_core_bw();
  // The data ultimately streams out of (or into) DDR: the socket's STREAM
  // rate is the aggregate ceiling (Figure 4 saturates at ~180 GB/s).
  return std::min(static_cast<double>(ranks) * per_rank, cpu.stream_peak());
}

}  // namespace xscale::hw
