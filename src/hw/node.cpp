#include "hw/node.hpp"

namespace xscale::hw {

NodeConfig bard_peak() {
  NodeConfig n;
  n.name = "Cray EX 235a (Bard Peak)";
  n.cpu = trento();
  n.cpu_sockets = 1;
  n.gpu = mi250x_gcd();
  n.gpus = 8;  // each GCD presents as a GPU (§3.1.2)
  n.nic = cassini();
  n.nics = 4;  // one per OAM package (§3.1.4)
  n.fabric = IntraNodeFabric::bard_peak();
  // §3.3: two M.2 drives, RAID-0; ~3.5 TB, 8/4 GB/s, up to 2.2M IOPS
  // contracted (1.6M), 1.58M measured.
  n.nvme.drives = 2;
  n.nvme.capacity_bytes = units::TB(3.5);
  n.nvme.read_bw = units::GBs(8.0);
  n.nvme.write_bw = units::GBs(4.0);
  n.nvme.iops_4k = 2.2e6;
  n.gpu_fp64_dgemm_sustained = units::TFLOPS(26.4);
  return n;
}

NodeConfig summit_node() {
  NodeConfig n;
  n.name = "IBM AC922 (Summit)";
  CpuConfig p9;
  p9.name = "IBM POWER9";
  p9.ccds = 1;
  p9.cores = 22;
  p9.clock_hz = 3.07e9;
  p9.fp64_per_cycle_per_core = 8;
  p9.ddr.channels = 8;
  p9.ddr.mts = 2666;
  p9.ddr.dimms = 8;
  p9.ddr.dimm_capacity_bytes = units::GiB(32);  // 256 GiB/socket, 512/node
  p9.ddr.stream_efficiency_nps4 = 0.80;
  p9.ddr.stream_efficiency_nps1 = 0.80;
  p9.nps = NpsMode::NPS1;
  n.cpu = p9;
  n.cpu_sockets = 2;
  n.gpu = v100();
  n.gpus = 6;
  n.nic = edr_ib();
  n.nics = 2;
  n.nvme.drives = 1;
  n.nvme.capacity_bytes = units::TB(1.6);
  n.nvme.read_bw = units::GBs(5.5);
  n.nvme.write_bw = units::GBs(2.1);
  n.nvme.iops_4k = 0.8e6;
  n.gpu_fp64_dgemm_sustained = units::TFLOPS(7.0);
  return n;
}

NodeConfig titan_node() {
  NodeConfig n;
  n.name = "Cray XK7 (Titan)";
  CpuConfig opteron;
  opteron.name = "AMD Opteron 6274";
  opteron.ccds = 2;
  opteron.cores = 16;
  opteron.clock_hz = 2.2e9;
  opteron.fp64_per_cycle_per_core = 4;
  opteron.ddr.channels = 4;
  opteron.ddr.mts = 1600;
  opteron.ddr.dimms = 4;
  opteron.ddr.dimm_capacity_bytes = units::GiB(8);
  opteron.ddr.stream_efficiency_nps4 = 0.70;
  opteron.ddr.stream_efficiency_nps1 = 0.70;
  n.cpu = opteron;
  n.cpu_sockets = 1;
  n.gpu = k20x();
  n.gpus = 1;
  n.nic = NicConfig{.name = "Cray Gemini",
                    .rate = units::GBs(5.8),
                    .sw_overhead_s = units::usec(1.2),
                    .wire_latency_s = units::usec(0.5),
                    .efficiency = 0.60};
  n.nics = 1;
  n.gpu_fp64_dgemm_sustained = units::TFLOPS(1.2);
  return n;
}

}  // namespace xscale::hw
