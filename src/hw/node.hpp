// Node assemblies.
//
// `NodeConfig` describes one node of any machine in the paper's comparison
// set; `bard_peak()` builds Frontier's Cray EX 235a (§3.1). Aggregate,
// machine-level numbers (Table 1) are *derived* from this description in
// `machines/`.
#pragma once

#include <string>

#include "hw/cpu.hpp"
#include "hw/gpu.hpp"
#include "hw/nic.hpp"
#include "hw/xgmi.hpp"

namespace xscale::hw {

struct NodeLocalNvme {
  int drives = 0;               // RAID-0 striped
  double capacity_bytes = 0;    // usable mount capacity
  double read_bw = 0;           // B/s (aggregate of the stripe)
  double write_bw = 0;
  double iops_4k = 0;           // random-read 4 KiB IOPS
};

struct NodeConfig {
  std::string name;
  CpuConfig cpu;
  int cpu_sockets = 1;
  GpuConfig gpu;
  int gpus = 0;  // devices as seen by the OS (GCDs on Frontier)
  NicConfig nic;
  int nics = 1;
  IntraNodeFabric fabric = IntraNodeFabric::bard_peak();
  NodeLocalNvme nvme;

  // Per-GPU sustained DGEMM rate used for the machine's headline FP64 DGEMM
  // figure. For the MI250X GCD this is 26.4 TF: the value consistent with
  // Table 1's 2.0 EF aggregate (between the 23.95 TF vector peak and the
  // 33.8 TF hipBLAS measurement of Figure 3).
  double gpu_fp64_dgemm_sustained = 0;

  double fp64_dgemm_peak() const {
    return static_cast<double>(gpus) * gpu_fp64_dgemm_sustained;
  }
  double ddr_capacity() const {
    return static_cast<double>(cpu_sockets) * cpu.ddr.capacity_bytes();
  }
  double ddr_bandwidth() const {
    return static_cast<double>(cpu_sockets) * cpu.ddr.peak_bandwidth();
  }
  double hbm_capacity() const {
    return static_cast<double>(gpus) * gpu.hbm.capacity_bytes;
  }
  double hbm_bandwidth() const {
    return static_cast<double>(gpus) * gpu.hbm.peak_bandwidth;
  }
  double injection_bandwidth() const {
    return static_cast<double>(nics) * nic.rate;
  }
  // HBM : DDR bandwidth ratio the paper tracks across Titan/Summit/Frontier
  // (§3.1.2: 64x on Frontier).
  double hbm_to_ddr_ratio() const {
    return hbm_bandwidth() / ddr_bandwidth();
  }
};

// Frontier's Bard Peak node: 1x Trento + 4x MI250X (8 GCDs), 4 Cassini NICs
// each attached to one OAM package, 2x NVMe M.2 in RAID-0 (§3.1, §3.3).
NodeConfig bard_peak();

// Summit node: 2x POWER9 + 6x V100, 2 shared EDR NICs, node-local NVMe.
NodeConfig summit_node();

// Titan node: 1x Opteron 6274 + 1x K20X, Gemini interconnect.
NodeConfig titan_node();

}  // namespace xscale::hw
