// GPU (GCD) models and the GEMM execution model behind Figure 3.
//
// The MI250X package holds two Graphics Compute Dies; each GCD presents as a
// separate GPU (the paper's "sort of" 1:4 CPU:GPU ratio, §3.1.2). All
// per-device quantities in this file are per *GCD*; a full MI250X doubles
// them.
#pragma once

#include <string>

#include "hw/memory.hpp"
#include "sim/units.hpp"

namespace xscale::hw {

enum class Precision { FP64, FP32, FP16 };

const char* to_string(Precision p);

struct GpuConfig {
  std::string name;
  int compute_units = 110;
  int simd_lanes_per_cu = 64;
  double clock_hz = 1.7e9;

  // Peak rates (FLOP/s). `vector` uses the SIMD pipes; `matrix` engages the
  // matrix-core (MFMA) units where present. Devices without matrix cores set
  // matrix == vector.
  double fp64_vector = 0, fp64_matrix = 0;
  double fp32_vector = 0, fp32_matrix = 0;
  double fp16_vector = 0, fp16_matrix = 0;

  HbmConfig hbm;

  // Asymptotic fraction of the matrix peak a tuned GEMM sustains at large N.
  // Calibrated from Figure 3: FP64 33.8/47.9 = 0.705, FP32 24.1/47.9 = 0.503,
  // FP16 111.2/191.5 = 0.581 (hipBLAS heuristics do not pin FP32/FP16 to the
  // MFMA units as effectively as FP64).
  double gemm_eff_fp64 = 0.705;
  double gemm_eff_fp32 = 0.503;
  double gemm_eff_fp16 = 0.581;
  // Matrix size at which half the asymptotic efficiency is reached
  // (launch/tile-drain overheads dominate below it).
  double gemm_n_half = 700.0;
  // MFMA tile granularity; ragged edges waste compute on partial tiles.
  int gemm_tile = 128;

  double vector_peak(Precision p) const;
  double matrix_peak(Precision p) const;
  double gemm_asymptotic_eff(Precision p) const;

  // Achieved GEMM rate (FLOP/s) for an NxN problem at precision `p`,
  // following the Figure 3 model: matrix-core peak, scaled by the asymptotic
  // efficiency, a saturation curve in N, and tile quantization.
  double gemm_achieved(Precision p, int n) const;

  // Time to run a kernel with `flops` arithmetic and `bytes` of HBM traffic:
  // the roofline max of compute and memory time plus a fixed launch latency.
  double kernel_time(double flops, double bytes, double eff = 1.0) const;
  double launch_latency_s = 4e-6;
};

// One MI250X GCD (§3.1.2): 110 CUs, 64 GiB HBM2e at 1.6375 TB/s,
// 23.95 TFLOP/s FP64 vector, doubled via matrix cores; FP64 atomics in hw.
GpuConfig mi250x_gcd();

// NVIDIA V100 (Summit, for per-GCD comparisons in Table 6 apps).
GpuConfig v100();
// NVIDIA K20X (Titan).
GpuConfig k20x();

}  // namespace xscale::hw
