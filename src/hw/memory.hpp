// DRAM and HBM models.
//
// The DDR model reproduces the behaviours §3.1.1 and §4.1.1 of the paper
// describe for the Trento socket:
//   * eight DDR4-3200 channels -> 204.8 GB/s wire peak,
//   * NUMA-per-socket (NPS) modes trading single-stream bandwidth against
//     aggregate bandwidth and latency,
//   * temporal stores paying read-for-ownership (write-allocate) traffic that
//     non-temporal stores avoid (Table 3's Scale/Add/Triad gap).
//
// The HBM model covers the MI250X GCD stacks (§3.1.2, Table 4).
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace xscale::hw {

// NUMA-per-socket mode of an EPYC socket (§3.1.1).
enum class NpsMode { NPS1, NPS2, NPS4 };

std::string to_string(NpsMode m);

// A STREAM-style kernel described by its algorithmic traffic. `counted_*` is
// what the benchmark *credits* (bytes it reports moving); a temporal store
// additionally reads the destination line before writing it (write-allocate).
struct StreamKernel {
  const char* name;
  int counted_reads;   // arrays read per element
  int counted_writes;  // arrays written per element
  // Pure copies can be recognized by hardware/compilers (rep-movsb fast
  // strings, streaming detection) and skip the RFO even with temporal stores;
  // Table 3 shows Copy nearly unaffected by store type.
  bool rfo_elided_when_temporal = false;
  // Fraction of HBM wire peak this kernel sustains on a GCD. Calibrated from
  // Table 4 (79-84% band). Three-array kernels (Add/Triad) sit lower than
  // two-array ones because of extra row-buffer conflicts; the read-only Dot
  // tops the table since HBM reads stream better than writes.
  double hbm_efficiency = 0.0;
};

// The four canonical CPU STREAM kernels.
inline constexpr std::array<StreamKernel, 4> kCpuStreamKernels{{
    {"Copy", 1, 1, true},
    {"Scale", 1, 1, false},
    {"Add", 2, 1, false},
    {"Triad", 2, 1, false},
}};

// The five GPU STREAM kernels of Table 4 (BabelStream naming).
inline constexpr std::array<StreamKernel, 5> kGpuStreamKernels{{
    {"Copy", 1, 1, false, 0.8175},
    {"Mul", 1, 1, false, 0.8185},
    {"Add", 2, 1, false, 0.7879},
    {"Triad", 2, 1, false, 0.7861},
    {"Dot", 2, 0, false, 0.8405},
}};

struct DdrConfig {
  int channels = 8;
  double mts = 3200.0;            // mega-transfers/s
  double bytes_per_transfer = 8;  // 64-bit channel
  double dimm_capacity_bytes = 0; // per DIMM
  int dimms = 8;

  // Fraction of wire peak a well-tuned non-temporal STREAM achieves in the
  // socket's best NPS mode (calibrated: 179.1 GB/s / 204.8 GB/s, Table 3).
  double stream_efficiency_nps4 = 0.875;
  // NPS-1 interleaves all channels for one stream; the paper measures
  // ~125 GB/s (§4.1.1) -> 0.61 of wire peak.
  double stream_efficiency_nps1 = 0.61;
  // Idle load-to-use latencies (approximate Zen3 values; §3.1.1 notes NPS-4
  // local access is "slightly lower latency").
  double latency_nps4_s = 96e-9;
  double latency_nps1_s = 105e-9;

  double peak_bandwidth() const {
    return static_cast<double>(channels) * mts * 1e6 * bytes_per_transfer;
  }
  double capacity_bytes() const {
    return dimm_capacity_bytes * static_cast<double>(dimms);
  }
  double stream_efficiency(NpsMode m) const {
    switch (m) {
      case NpsMode::NPS1: return stream_efficiency_nps1;
      case NpsMode::NPS2: return 0.5 * (stream_efficiency_nps1 + stream_efficiency_nps4);
      case NpsMode::NPS4: return stream_efficiency_nps4;
    }
    return stream_efficiency_nps4;
  }
  double latency(NpsMode m) const {
    return m == NpsMode::NPS4 ? latency_nps4_s : latency_nps1_s;
  }

  // Achievable STREAM bandwidth (counted bytes per second) for `k`.
  // `temporal` selects regular (cache-allocating) stores.
  double stream_bandwidth(const StreamKernel& k, bool temporal, NpsMode m) const;
};

struct HbmConfig {
  int stacks = 4;
  double capacity_bytes = 0;  // per device (GCD)
  double peak_bandwidth = 0;  // B/s per device
  // Scales the per-kernel calibrated efficiencies; 1.0 models HBM2e on a
  // MI250X GCD. Baseline machines with different memory systems override it.
  double efficiency_scale = 1.0;

  double stream_bandwidth(const StreamKernel& k) const;
};

}  // namespace xscale::hw
