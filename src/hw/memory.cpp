#include "hw/memory.hpp"

namespace xscale::hw {

std::string to_string(NpsMode m) {
  switch (m) {
    case NpsMode::NPS1: return "NPS-1";
    case NpsMode::NPS2: return "NPS-2";
    case NpsMode::NPS4: return "NPS-4";
  }
  return "NPS-?";
}

double DdrConfig::stream_bandwidth(const StreamKernel& k, bool temporal,
                                   NpsMode m) const {
  const double wire = peak_bandwidth() * stream_efficiency(m);
  const int counted = k.counted_reads + k.counted_writes;
  // Actual bus transactions per element: every counted access plus, for
  // temporal stores, one read-for-ownership per written line (unless the
  // hardware elides it for recognized copy streams).
  int actual = counted;
  if (temporal && !k.rfo_elided_when_temporal) actual += k.counted_writes;
  return wire * static_cast<double>(counted) / static_cast<double>(actual);
}

double HbmConfig::stream_bandwidth(const StreamKernel& k) const {
  // Kernels without a calibrated efficiency (CPU kernel descriptors reused on
  // a GPU) default to the Copy value.
  const double eff = k.hbm_efficiency > 0.0 ? k.hbm_efficiency : 0.8175;
  return peak_bandwidth * eff * efficiency_scale;
}

}  // namespace xscale::hw
