#include "hw/gpu.hpp"

#include <algorithm>
#include <cmath>

namespace xscale::hw {

const char* to_string(Precision p) {
  switch (p) {
    case Precision::FP64: return "FP64";
    case Precision::FP32: return "FP32";
    case Precision::FP16: return "FP16";
  }
  return "FP??";
}

double GpuConfig::vector_peak(Precision p) const {
  switch (p) {
    case Precision::FP64: return fp64_vector;
    case Precision::FP32: return fp32_vector;
    case Precision::FP16: return fp16_vector;
  }
  return 0;
}

double GpuConfig::matrix_peak(Precision p) const {
  switch (p) {
    case Precision::FP64: return fp64_matrix;
    case Precision::FP32: return fp32_matrix;
    case Precision::FP16: return fp16_matrix;
  }
  return 0;
}

double GpuConfig::gemm_asymptotic_eff(Precision p) const {
  switch (p) {
    case Precision::FP64: return gemm_eff_fp64;
    case Precision::FP32: return gemm_eff_fp32;
    case Precision::FP16: return gemm_eff_fp16;
  }
  return 0;
}

double GpuConfig::gemm_achieved(Precision p, int n) const {
  if (n <= 0) return 0.0;
  const double peak = matrix_peak(p);
  // Saturation with problem size: O(N^2) memory/launch overheads amortize
  // against O(N^3) arithmetic, so efficiency approaches the asymptote
  // quadratically in N.
  const double nn = static_cast<double>(n);
  const double saturation = nn * nn / (nn * nn + gemm_n_half * gemm_n_half);
  // Tile quantization: work is dispatched in gemm_tile x gemm_tile blocks;
  // the ragged edge computes padded tiles at full cost.
  const double nt = std::ceil(static_cast<double>(n) / gemm_tile) * gemm_tile;
  const double quant = std::pow(static_cast<double>(n) / nt, 3);
  return peak * gemm_asymptotic_eff(p) * saturation * quant;
}

double GpuConfig::kernel_time(double flops, double bytes, double eff) const {
  const double compute = flops / (fp64_vector * eff);
  const double memory = bytes / (hbm.peak_bandwidth * 0.8 * eff);
  return launch_latency_s + std::max(compute, memory);
}

GpuConfig mi250x_gcd() {
  GpuConfig g;
  g.name = "AMD Instinct MI250X (one GCD)";
  g.compute_units = 110;
  g.simd_lanes_per_cu = 64;
  g.clock_hz = 1.7e9;
  // 110 CU * 64 lanes * 2 FLOP (FMA) * 1.7 GHz = 23.95 TF vector FP64;
  // MFMA doubles FP64/FP32 and gives 8x for FP16 (191.5 TF per GCD).
  g.fp64_vector = units::TFLOPS(23.95);
  g.fp64_matrix = units::TFLOPS(47.9);
  g.fp32_vector = units::TFLOPS(23.95);
  g.fp32_matrix = units::TFLOPS(47.9);
  g.fp16_vector = units::TFLOPS(23.95);
  g.fp16_matrix = units::TFLOPS(191.5);
  g.hbm.stacks = 4;
  g.hbm.capacity_bytes = units::GiB(64);
  g.hbm.peak_bandwidth = units::GBs(1635.0);  // Table 4 header: 1.635 TB/s
  return g;
}

GpuConfig v100() {
  GpuConfig g;
  g.name = "NVIDIA V100";
  g.compute_units = 80;  // SMs
  g.simd_lanes_per_cu = 64;
  g.clock_hz = 1.53e9;
  g.fp64_vector = units::TFLOPS(7.8);
  g.fp64_matrix = units::TFLOPS(7.8);  // no FP64 tensor cores on Volta
  g.fp32_vector = units::TFLOPS(15.7);
  g.fp32_matrix = units::TFLOPS(15.7);
  g.fp16_vector = units::TFLOPS(31.4);
  g.fp16_matrix = units::TFLOPS(125.0);  // tensor cores
  g.hbm.capacity_bytes = units::GiB(16);
  g.hbm.peak_bandwidth = units::GBs(900.0);
  g.gemm_eff_fp64 = 0.90;  // cuBLAS DGEMM on V100 is near-peak
  g.gemm_eff_fp32 = 0.90;
  g.gemm_eff_fp16 = 0.70;
  return g;
}

GpuConfig k20x() {
  GpuConfig g;
  g.name = "NVIDIA K20X";
  g.compute_units = 14;  // SMX
  g.simd_lanes_per_cu = 192;
  g.clock_hz = 0.732e9;
  g.fp64_vector = units::TFLOPS(1.31);
  g.fp64_matrix = units::TFLOPS(1.31);
  g.fp32_vector = units::TFLOPS(3.93);
  g.fp32_matrix = units::TFLOPS(3.93);
  g.fp16_vector = units::TFLOPS(3.93);
  g.fp16_matrix = units::TFLOPS(3.93);
  g.hbm.capacity_bytes = units::GiB(6);
  g.hbm.peak_bandwidth = units::GBs(250.0);
  g.hbm.efficiency_scale = 0.85;  // GDDR5 streams worse than HBM
  g.gemm_eff_fp64 = 0.85;
  g.gemm_eff_fp32 = 0.85;
  g.gemm_eff_fp16 = 0.85;
  return g;
}

}  // namespace xscale::hw
