#include "sched/slurm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace xscale::sched {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::Auto: return "auto";
    case Placement::Pack: return "pack";
    case Placement::Spread: return "spread";
    case Placement::Random: return "random";
  }
  return "?";
}

Scheduler::Scheduler(int total_nodes, int nodes_per_group, std::uint64_t seed)
    : total_nodes_(total_nodes),
      nodes_per_group_(nodes_per_group),
      groups_((total_nodes + nodes_per_group - 1) / nodes_per_group),
      healthy_(static_cast<std::size_t>(total_nodes), 1),
      allocated_(static_cast<std::size_t>(total_nodes), 0),
      seed_(seed) {}

void Scheduler::set_healthy(int node, bool healthy) {
  healthy_[static_cast<std::size_t>(node)] = healthy ? 1 : 0;
}

int Scheduler::healthy_nodes() const {
  return static_cast<int>(std::count(healthy_.begin(), healthy_.end(), 1));
}

int Scheduler::free_nodes() const {
  int n = 0;
  for (int i = 0; i < total_nodes_; ++i)
    if (healthy_[static_cast<std::size_t>(i)] && !allocated_[static_cast<std::size_t>(i)])
      ++n;
  return n;
}

std::vector<int> Scheduler::pick_nodes(int count, Placement p) {
  if (p == Placement::Auto)
    p = count <= pack_threshold() ? Placement::Pack : Placement::Spread;

  auto available = [&](int node) {
    return healthy_[static_cast<std::size_t>(node)] &&
           !allocated_[static_cast<std::size_t>(node)];
  };

  std::vector<int> picked;
  picked.reserve(static_cast<std::size_t>(count));

  if (p == Placement::Pack) {
    // Fill the group with the fewest (but sufficient) free nodes first —
    // tight packing keeps large contiguous blocks free for big jobs.
    std::vector<std::pair<int, int>> group_free;  // (free count, group)
    for (int g = 0; g < groups_; ++g) {
      int free = 0;
      const int lo = g * nodes_per_group_;
      const int hi = std::min(total_nodes_, lo + nodes_per_group_);
      for (int n = lo; n < hi; ++n)
        if (available(n)) ++free;
      if (free > 0) group_free.emplace_back(free, g);
    }
    // Best fit: groups that can hold the whole remainder, smallest first.
    std::sort(group_free.begin(), group_free.end());
    while (static_cast<int>(picked.size()) < count && !group_free.empty()) {
      const int need = count - static_cast<int>(picked.size());
      auto it = std::find_if(group_free.begin(), group_free.end(),
                             [need](const auto& gf) { return gf.first >= need; });
      if (it == group_free.end()) it = std::prev(group_free.end());  // biggest
      const int g = it->second;
      const int lo = g * nodes_per_group_;
      const int hi = std::min(total_nodes_, lo + nodes_per_group_);
      for (int n = lo; n < hi && static_cast<int>(picked.size()) < count; ++n)
        if (available(n)) picked.push_back(n);
      group_free.erase(it);
    }
  } else if (p == Placement::Spread) {
    // Round-robin across groups so the job touches as many groups as
    // possible (maximizing global links reachable by minimal routing).
    std::vector<int> cursor(static_cast<std::size_t>(groups_), 0);
    bool progressed = true;
    while (static_cast<int>(picked.size()) < count && progressed) {
      progressed = false;
      for (int g = 0; g < groups_ && static_cast<int>(picked.size()) < count; ++g) {
        const int lo = g * nodes_per_group_;
        const int hi = std::min(total_nodes_, lo + nodes_per_group_);
        int& c = cursor[static_cast<std::size_t>(g)];
        while (lo + c < hi && !available(lo + c)) ++c;
        if (lo + c < hi) {
          picked.push_back(lo + c);
          ++c;
          progressed = true;
        }
      }
    }
  } else {  // Random
    std::vector<int> free_list;
    for (int n = 0; n < total_nodes_; ++n)
      if (available(n)) free_list.push_back(n);
    sim::Rng rng(seed_ ^ static_cast<std::uint64_t>(next_job_id_));
    for (std::size_t i = free_list.size(); i > 1; --i)
      std::swap(free_list[i - 1], free_list[rng.index(i)]);
    for (int i = 0; i < count && i < static_cast<int>(free_list.size()); ++i)
      picked.push_back(free_list[static_cast<std::size_t>(i)]);
  }

  if (static_cast<int>(picked.size()) < count) return {};
  std::sort(picked.begin(), picked.end());
  return picked;
}

std::optional<Allocation> Scheduler::allocate(int nodes, Placement p) {
  auto picked = pick_nodes(nodes, p);
  if (picked.empty()) return std::nullopt;
  for (int n : picked) allocated_[static_cast<std::size_t>(n)] = 1;
  Allocation a;
  a.job_id = next_job_id_++;
  a.nodes = std::move(picked);
  a.vni = next_vni_++;
  if (next_vni_ == 0) next_vni_ = 1;  // VNI 0 is reserved
  return a;
}

void Scheduler::release(const Allocation& alloc) {
  // checknode runs between jobs; in this model it simply returns the node to
  // the free pool (health faults are injected via set_healthy).
  for (int n : alloc.nodes) allocated_[static_cast<std::size_t>(n)] = 0;
}

std::vector<JobRecord> Scheduler::run_workload(sim::Engine& eng,
                                               const std::vector<JobRequest>& jobs,
                                               double run_until) {
  std::vector<JobRecord> records(jobs.size());
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    records[i].request = jobs[i];
    records[i].submit_time = eng.now();
    obs::tracer().instant("sched", "job_submit", eng.now(),
                          {{"job", static_cast<double>(i)},
                           {"nodes", static_cast<double>(jobs[i].nodes)}});
    queue.push_back(i);
  }
  static obs::Counter& submitted = obs::metrics().counter("sched.jobs_submitted");
  submitted.inc(jobs.size());

  double busy_node_seconds = 0;
  const double t0 = eng.now();
  static obs::Gauge& idle = obs::metrics().gauge("sched.idle_nodes");
  idle.set(static_cast<double>(free_nodes()));
  // Completion events still pending at truncation must be cancelled before
  // returning: they capture this frame's locals, and leaving them in the
  // engine would dangle if the caller keeps running it.
  std::unordered_map<std::size_t, std::uint64_t> pending_completion;

  // try_start is re-run whenever a job completes. FCFS with conservative
  // backfill: the head is tried first; followers start only if they fit in
  // the residual free set right now. A plain local is safe — and leak-free,
  // unlike a shared_ptr self-capture — because eng.run() below drains every
  // event that references it before this frame returns.
  std::function<void()> try_start;
  try_start = [&] {
    // Any start after a skipped earlier job is a backfill decision: the
    // later job jumped the FCFS order because it fits right now.
    bool skipped_earlier = false;
    for (auto it = queue.begin(); it != queue.end();) {
      const std::size_t j = *it;
      auto alloc = allocate(records[j].request.nodes, records[j].request.placement);
      if (alloc.has_value()) {
        records[j].job_id = alloc->job_id;
        records[j].nodes = alloc->nodes;
        records[j].start_time = eng.now();
        obs::tracer().instant(
            "sched", skipped_earlier ? "backfill_start" : "job_start",
            eng.now(),
            {{"job", static_cast<double>(j)},
             {"nodes", static_cast<double>(alloc->nodes.size())},
             {"wait", records[j].wait_time()}});
        if (skipped_earlier) {
          static obs::Counter& backfills =
              obs::metrics().counter("sched.backfill_starts");
          backfills.inc();
        }
        idle.set(static_cast<double>(free_nodes()));
        const double dur = records[j].request.duration_s;
        // Busy node-seconds are credited in the completion callback, from
        // the time the job actually ran — not here from the requested
        // duration, which over-counts (utilization > 1) when the run is
        // truncated before the job finishes.
        pending_completion[j] = eng.schedule_in(dur, [this, &eng, &records,
                                                      &try_start,
                                                      &busy_node_seconds,
                                                      &pending_completion, j,
                                                      a = *alloc] {
          pending_completion.erase(j);
          records[j].end_time = eng.now();
          busy_node_seconds += (records[j].end_time - records[j].start_time) *
                               static_cast<double>(a.nodes.size());
          obs::tracer().span("sched", "job", records[j].start_time,
                             records[j].end_time - records[j].start_time,
                             {{"job", static_cast<double>(j)},
                              {"nodes", static_cast<double>(a.nodes.size())}});
          static obs::Counter& completed =
              obs::metrics().counter("sched.jobs_completed");
          completed.inc();
          release(a);
          static obs::Gauge& idle_g = obs::metrics().gauge("sched.idle_nodes");
          idle_g.set(static_cast<double>(free_nodes()));
          try_start();
        });
        it = queue.erase(it);
      } else {
        skipped_earlier = true;
        ++it;
      }
    }
  };
  try_start();
  if (std::isfinite(run_until))
    eng.run_until(run_until);
  else
    eng.run();

  // Horizon: the truncation point, or the last completion for a full run.
  const double horizon = eng.now();
  for (auto& [j, event_id] : pending_completion) eng.cancel(event_id);
  for (auto& r : records) {
    if (r.end_time < 0 && r.start_time >= 0) {
      // Truncated mid-job (run_until, or a stop() scheduled by the caller):
      // credit only the node-seconds consumed so far, pro-rated to the
      // horizon, record the truncation time as the end, and free the nodes
      // so the scheduler can be reused.
      r.end_time = horizon;
      busy_node_seconds +=
          (horizon - r.start_time) * static_cast<double>(r.nodes.size());
      Allocation a;
      a.job_id = r.job_id;
      a.nodes = r.nodes;
      release(a);
    }
  }
  idle.set(static_cast<double>(free_nodes()));

  double makespan = t0;
  for (const auto& r : records) makespan = std::max(makespan, r.end_time);
  // Available node-seconds span submission (t0) to the horizon — measuring
  // from absolute zero used to misreport utilization for workloads submitted
  // at eng.now() > 0.
  const double span = makespan - t0;
  last_utilization_ =
      span > 0 ? busy_node_seconds / (span * static_cast<double>(total_nodes_))
               : 0;
  return records;
}

}  // namespace xscale::sched
