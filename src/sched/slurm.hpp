// Slurm-like system scheduler (§3.4.2).
//
// Behaviours reproduced from the paper's description:
//   * compute nodes are scheduled exclusively to a single job,
//   * a `checknode` health gate runs at boot and between jobs — unhealthy
//     nodes are drained and never allocated,
//   * each jobstep gets a unique Slingshot VNI for traffic isolation,
//   * placement is topology-aware: small jobs are packed into one dragonfly
//     group to minimize global hops; large jobs are spread evenly across as
//     many groups as possible to maximize global bandwidth.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "machines/machine.hpp"
#include "sim/engine.hpp"

namespace xscale::sched {

enum class Placement { Auto, Pack, Spread, Random };
const char* to_string(Placement p);

struct Allocation {
  int job_id = -1;
  std::vector<int> nodes;
  std::uint16_t vni = 0;  // Slingshot Virtual Network Identifier
};

struct JobRequest {
  int nodes = 1;
  double duration_s = 0;
  Placement placement = Placement::Auto;
};

struct JobRecord {
  int job_id = -1;
  JobRequest request;
  double submit_time = 0;
  double start_time = -1;
  double end_time = -1;
  std::vector<int> nodes;
  double wait_time() const { return start_time - submit_time; }
};

class Scheduler {
 public:
  // `nodes_per_group` partitions node ids into dragonfly groups for
  // topology-aware placement (128 on Frontier).
  Scheduler(int total_nodes, int nodes_per_group, std::uint64_t seed = 1);

  // --- node health (checknode) -------------------------------------------------
  void set_healthy(int node, bool healthy);
  bool is_healthy(int node) const { return healthy_[static_cast<std::size_t>(node)]; }
  int healthy_nodes() const;
  int free_nodes() const;

  // --- synchronous allocation API ----------------------------------------------
  // Returns nullopt when not enough healthy free nodes exist.
  std::optional<Allocation> allocate(int nodes, Placement p = Placement::Auto);
  void release(const Allocation& alloc);

  // Threshold (in groups' worth of nodes) below which Auto packs.
  int pack_threshold() const { return nodes_per_group_; }

  // --- queued workload simulation ------------------------------------------------
  // FCFS with conservative backfill: a later job may start early only if it
  // fits in the current free set (it can never delay the queue head, whose
  // start time is bounded by running-job end times). Returns per-job records.
  //
  // A finite `run_until` truncates the simulation at that absolute time:
  // jobs still running are credited only for the node-seconds they actually
  // consumed (their end_time records the truncation time), and jobs still
  // queued keep start_time = -1. Busy time is credited at completion (or
  // pro-rated at truncation), never up front — crediting the full requested
  // duration at start used to report utilization > 1.0 on truncated runs.
  std::vector<JobRecord> run_workload(
      sim::Engine& eng, const std::vector<JobRequest>& jobs,
      double run_until = std::numeric_limits<double>::infinity());

  // Machine utilization of the last run_workload: node-seconds actually
  // consumed over node-seconds available between the workload's submission
  // time and its horizon (last job end, or the truncation time). Always in
  // [0, 1].
  double last_utilization() const { return last_utilization_; }

 private:
  std::vector<int> pick_nodes(int count, Placement p);
  int group_of(int node) const { return node / nodes_per_group_; }

  int total_nodes_;
  int nodes_per_group_;
  int groups_;
  std::vector<char> healthy_;
  std::vector<char> allocated_;
  std::uint16_t next_vni_ = 1;
  int next_job_id_ = 1;
  std::uint64_t seed_;
  double last_utilization_ = 0;
};

}  // namespace xscale::sched
