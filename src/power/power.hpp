// Power and energy model (§5.1, and the 2008 exascale report's 20 MW/EF
// target the paper frames itself against).
//
// The node model sums per-component draw under workload activity factors;
// the system model adds switches, storage, and facility overhead (Frontier
// is warm-water cooled; PUE is close to 1). Calibrated so an HPL-like run
// lands at the paper's headline: 1.102 EF at 21.1 MW -> 52.2 GF/W.
#pragma once

#include <string>
#include <vector>

#include "machines/machine.hpp"

namespace xscale::power {

struct Activity {
  // 0..1 utilization of each subsystem during the workload.
  double gpu = 1.0;
  double cpu = 0.2;
  double memory = 0.8;
  double nic = 0.3;
};

// Canonical workload activity points.
Activity hpl_activity();     // GPU-saturating dense solve
Activity stream_activity();  // memory-bound
Activity idle_activity();

struct NodePowerModel {
  // Watts per component at idle and full activity.
  double cpu_idle = 90, cpu_peak = 280;
  double gpu_module_idle = 90, gpu_module_peak = 560;  // per MI250X OAM
  int gpu_modules = 4;
  double dimm_idle = 3, dimm_peak = 8;  // per DIMM
  int dimms = 8;
  double nic_idle = 15, nic_peak = 25;  // per Cassini
  int nics = 4;
  double node_overhead = 120;  // VRs, fans, board, node-local NVMe

  double node_power(const Activity& a) const;
};

struct SystemPowerModel {
  NodePowerModel node;
  int nodes = 9472;
  int switches = 74 * 32 + 6 * 16;
  double switch_power = 250;     // W per 64-port Rosetta blade switch
  double storage_power = 800e3;  // Orion + service nodes
  double cooling_overhead = 0.02;  // warm-water loop pumps (PUE ~ 1.02)

  double system_power(const Activity& a) const;

  // GF/W for a workload achieving `sustained_flops` under activity `a`.
  double gflops_per_watt(double sustained_flops, const Activity& a) const;
};

// Frontier's headline numbers (§5.1) — HPL Rmax from the June 2022 TOP500.
struct Green500Entry {
  double rmax_flops = 1.102e18;
  double power_w = 0;
  double gf_per_watt = 0;
};
Green500Entry frontier_green500(const SystemPowerModel& model = {});

// The 2008 report's straw-man designs landed at 68-155 MW/EF; Frontier's
// achieved MW per EF(Rmax) for comparison.
struct StrawmanComparison {
  double report_low_mw_per_ef = 68;
  double report_high_mw_per_ef = 155;
  double report_target_mw_per_ef = 20;
  double frontier_mw_per_ef = 0;
};
StrawmanComparison strawman_comparison(const SystemPowerModel& model = {});

}  // namespace xscale::power
