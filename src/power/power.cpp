#include "power/power.hpp"

namespace xscale::power {

// GPU activity 0.70: HPL alternates DGEMM bursts with panel factorization and
// communication; average draw sits well below TDP. Calibrated with the other
// constants so the system lands at 21.1 MW / 52 GF/W (§5.1).
Activity hpl_activity() { return {.gpu = 0.70, .cpu = 0.25, .memory = 0.55, .nic = 0.25}; }
Activity stream_activity() { return {.gpu = 0.45, .cpu = 0.3, .memory = 1.0, .nic = 0.05}; }
Activity idle_activity() { return {.gpu = 0.0, .cpu = 0.02, .memory = 0.05, .nic = 0.02}; }

namespace {
double lerp(double idle, double peak, double a) { return idle + (peak - idle) * a; }
}  // namespace

double NodePowerModel::node_power(const Activity& a) const {
  double w = node_overhead;
  w += lerp(cpu_idle, cpu_peak, a.cpu);
  w += gpu_modules * lerp(gpu_module_idle, gpu_module_peak, a.gpu);
  w += dimms * lerp(dimm_idle, dimm_peak, a.memory);
  w += nics * lerp(nic_idle, nic_peak, a.nic);
  return w;
}

double SystemPowerModel::system_power(const Activity& a) const {
  const double compute = static_cast<double>(nodes) * node.node_power(a);
  const double fabric = static_cast<double>(switches) * switch_power;
  return (compute + fabric + storage_power) * (1.0 + cooling_overhead);
}

double SystemPowerModel::gflops_per_watt(double sustained_flops,
                                         const Activity& a) const {
  return sustained_flops / 1e9 / system_power(a);
}

Green500Entry frontier_green500(const SystemPowerModel& model) {
  Green500Entry e;
  e.power_w = model.system_power(hpl_activity());
  e.gf_per_watt = model.gflops_per_watt(e.rmax_flops, hpl_activity());
  return e;
}

StrawmanComparison strawman_comparison(const SystemPowerModel& model) {
  StrawmanComparison c;
  const auto g = frontier_green500(model);
  c.frontier_mw_per_ef = g.power_w / 1e6 / (g.rmax_flops / 1e18);
  return c;
}

}  // namespace xscale::power
