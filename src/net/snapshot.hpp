// Immutable topology snapshot: the shared, read-only half of the fabric.
//
// A `TopologySnapshot` owns everything about a fabric that does not depend on
// which links a particular scenario has failed: the topology, the routing
// configuration, the base effective capacities (NIC efficiency applied), and
// the two-level minimal-route cache (DESIGN.md §8). It is immutable after
// construction — the route cache fills lazily under its own synchronization
// and is NEVER invalidated — so any number of threads and any number of
// per-session `FabricOverlay`s (fabric.hpp) can read one snapshot
// concurrently. This is the serving-layer split (DESIGN.md §10): a thousand
// what-if scenarios share one snapshot and differ only in their overlays.
//
// Every routing entry point takes an optional failure view (`failed`,
// nullable = no failures): a dense per-link flag vector from an overlay.
// Routing decisions depend only on failed *Global* links (local/terminal
// failures zero capacity but never change paths), so overlays pass a view
// only when they hold failed global links; the cached failure-free path is
// still consulted first and reused verbatim whenever its global hop is live.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace xscale::net {

enum class Routing {
  Minimal,   // shortest path only
  Valiant,   // always detour via a random intermediate group
  Adaptive,  // UGAL-style per-flow choice between the two
};

const char* to_string(Routing r);

struct FabricConfig {
  Routing routing = Routing::Adaptive;
  // Slingshot hardware congestion control (§4.2.2). When on, flows receive
  // their max-min fair share regardless of other traffic (victim isolation).
  // When off, head-of-line blocking couples flows that share a switch with an
  // oversubscribed link.
  bool congestion_control = true;
  // Fraction of wire rate a NIC sustains end-to-end (protocol/header
  // overheads); applied to terminal link capacities.
  double nic_efficiency = 0.70;
  // UGAL bias: take the non-minimal path when the minimal global link already
  // carries more than `ugal_threshold` times the flows of the detour path.
  double ugal_threshold = 2.0;
  // Memoise (src, dst) -> link-list expansion; off forces every route to be
  // computed fresh (the cache-vs-fresh differential tests use this).
  bool route_cache = true;
  std::uint64_t seed = 0xF2011EA5;
};

class TopologySnapshot {
 public:
  TopologySnapshot(topo::Topology topology, FabricConfig cfg);
  ~TopologySnapshot();
  TopologySnapshot(const TopologySnapshot&) = delete;
  TopologySnapshot& operator=(const TopologySnapshot&) = delete;

  const topo::Topology& topology() const { return topo_; }
  const FabricConfig& config() const { return cfg_; }

  // Effective link capacities with no failures applied (indexed by link id).
  const std::vector<double>& base_capacities() const { return base_cap_; }
  std::size_t num_links() const { return base_cap_.size(); }

  // Route one flow under the failure view (nullable). Adaptive routing
  // consults `global_load` (flows currently assigned per link) when provided.
  // Thread-safe: concurrent callers may share the snapshot (each needs its
  // own rng and failure view).
  void route_into(int src_ep, int dst_ep, sim::Rng& rng,
                  const std::vector<int>* global_load,
                  const std::vector<char>* failed, std::vector<int>& out) const;

  // Minimal path under the failure view. Served from the shared cache when
  // the cached path's global hop is live; recomputed (uncached) otherwise.
  void minimal_path_into(int src_ep, int dst_ep,
                         const std::vector<char>* failed,
                         std::vector<int>& out) const;

  // Valiant non-minimal path (random intermediate group avoiding failed
  // global bundles under the view).
  std::vector<int> valiant_path(int src_ep, int dst_ep, sim::Rng& rng,
                                const std::vector<char>* failed) const;

  // Minimal paths never change from terminal/local failures and the cache is
  // never reset, so these are failure-view-free conveniences.
  double base_latency(int src_ep, int dst_ep) const;
  int minimal_hops(int src_ep, int dst_ep) const;

 private:
  struct RouteCache;  // defined in snapshot.cpp

  // Failure-free minimal path via the two-level cache.
  void base_minimal_path_into(int src_ep, int dst_ep,
                              std::vector<int>& out) const;
  void minimal_path_fresh(int src_ep, int dst_ep,
                          const std::vector<char>* failed,
                          std::vector<int>& out) const;
  // Switch-switch portion of the minimal path (<= 5 links); returns the
  // count written to `out5`. Throws when no live inter-group route exists.
  int compute_switch_segment(int sa, int sb, const std::vector<char>* failed,
                             int* out5) const;

  topo::Topology topo_;
  FabricConfig cfg_;
  std::vector<double> base_cap_;
  // Filled lazily under the cache's own synchronization; never replaced after
  // construction (the zero-invalidation contract the serving layer relies on).
  mutable std::unique_ptr<RouteCache> cache_;
};

// Build a snapshot ready for sharing across sessions.
std::shared_ptr<const TopologySnapshot> make_snapshot(topo::Topology topology,
                                                      FabricConfig cfg = {});

}  // namespace xscale::net
