#include "net/snapshot.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace xscale::net {

namespace {

obs::Counter& route_cache_hit() {
  static obs::Counter& c = obs::metrics().counter("net.route_cache.hit");
  return c;
}

obs::Counter& route_cache_miss() {
  static obs::Counter& c = obs::metrics().counter("net.route_cache.miss");
  return c;
}

// Cached base path bypassed because an overlay failed its global hop; the
// serving acceptance tests pin that clean overlays never bump this.
obs::Counter& route_overlay_reroute() {
  static obs::Counter& c = obs::metrics().counter("net.route_cache.overlay_reroute");
  return c;
}

inline bool link_failed(const std::vector<char>* failed, int link_id) {
  return failed != nullptr && (*failed)[static_cast<std::size_t>(link_id)] != 0;
}

// SplitMix64 finalizer: spreads the (src<<32 | dst) key over the
// direct-mapped table so shift patterns don't alias into one stripe.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

// Two-level minimal-route memo (DESIGN.md §8), holding *failure-free* routes
// only — overlay failures never touch it, so it is filled at most once per
// entry for the snapshot's lifetime.
//
// Level 1: dense switch-pair table. One entry per ordered (sa, sb) pair,
// filled lazily under std::call_once (a throwing computation — disconnected
// groups — leaves the flag unset, so the next caller retries and observes the
// same throw). The switch segment of a minimal path is at most 5 links. Only
// built when the pair count is small enough to commit the table up front; the
// full Frontier fabric (~2,450 switches) skips it and relies on level 2.
//
// Level 2: direct-mapped endpoint-pair table, key (src<<32)|dst, holding the
// complete path (<= 7 links: injection + segment + ejection). Collisions
// overwrite — it is a cache, not a map. Entries are guarded by sharded
// mutexes (slot -> shard) so concurrent readers (steady_rates workers, whole
// scenario sessions) can probe and fill without a global lock.
struct TopologySnapshot::RouteCache {
  static constexpr std::uint64_t kEmptyKey = ~0ULL;
  static constexpr std::size_t kMaxDenseSwitchPairs = std::size_t{1} << 19;
  static constexpr std::size_t kShards = 64;

  struct SwSeg {
    std::once_flag once;
    int n = 0;
    int links[5];
  };

  struct EpEntry {
    std::uint64_t key = kEmptyKey;
    int n = 0;
    int links[8];
  };

  int num_switches = 0;
  std::unique_ptr<SwSeg[]> sw;  // num_switches^2 entries; null when gated off

  std::uint64_t ep_mask = 0;
  std::vector<EpEntry> ep;
  std::array<std::mutex, kShards> mu;
};

const char* to_string(Routing r) {
  switch (r) {
    case Routing::Minimal: return "minimal";
    case Routing::Valiant: return "valiant";
    case Routing::Adaptive: return "adaptive";
  }
  return "?";
}

TopologySnapshot::TopologySnapshot(topo::Topology topology, FabricConfig cfg)
    : topo_(std::move(topology)), cfg_(cfg) {
  base_cap_.reserve(topo_.links().size());
  for (const auto& l : topo_.links()) {
    const bool terminal = l.kind == topo::LinkKind::Injection ||
                          l.kind == topo::LinkKind::Ejection;
    base_cap_.push_back(terminal ? l.capacity * cfg_.nic_efficiency : l.capacity);
  }
  if (!cfg_.route_cache) return;
  auto rc = std::make_unique<RouteCache>();
  rc->num_switches = topo_.num_switches();
  const std::size_t nsw = static_cast<std::size_t>(rc->num_switches);
  if (nsw * nsw <= RouteCache::kMaxDenseSwitchPairs)
    rc->sw = std::make_unique<RouteCache::SwSeg[]>(nsw * nsw);
  // Endpoint-pair slots: ~8 per endpoint, power of two, bounded so a
  // Frontier-scale fabric commits a few tens of MB at most.
  std::size_t want = static_cast<std::size_t>(topo_.num_endpoints()) * 8;
  want = std::clamp<std::size_t>(want, std::size_t{1} << 12, std::size_t{1} << 20);
  std::size_t slots = 1;
  while (slots < want) slots <<= 1;
  rc->ep_mask = slots - 1;
  rc->ep.resize(slots);
  cache_ = std::move(rc);
}

TopologySnapshot::~TopologySnapshot() = default;

int TopologySnapshot::compute_switch_segment(int sa, int sb,
                                             const std::vector<char>* failed,
                                             int* out) const {
  assert(sa != sb);
  if (topo_.is_fat_tree()) {
    const int core = topo_.num_switches() - 1;
    out[0] = topo_.switch_link(sa, core);
    out[1] = topo_.switch_link(core, sb);
    return 2;
  }
  const int ga = topo_.group_of_switch(sa);
  const int gb = topo_.group_of_switch(sb);
  if (ga == gb) {
    out[0] = topo_.switch_link(sa, sb);
    return 1;
  }
  const int gl = topo_.global_link(ga, gb);
  if (gl < 0) throw std::runtime_error("groups not connected");
  if (link_failed(failed, gl)) {
    // Fabric-manager reroute: the direct bundle is down; take the
    // first live one-intermediate-group detour (deterministic sweep).
    for (int gi = 0; gi < topo_.num_groups(); ++gi) {
      if (gi == ga || gi == gb) continue;
      const int l1 = topo_.global_link(ga, gi);
      const int l2 = topo_.global_link(gi, gb);
      if (l1 < 0 || l2 < 0) continue;
      if (link_failed(failed, l1) || link_failed(failed, l2)) continue;
      int n = 0;
      const int gw_a = topo_.gateway_switch(ga, gi);
      if (sa != gw_a) out[n++] = topo_.switch_link(sa, gw_a);
      out[n++] = l1;
      const int in_i = topo_.gateway_switch(gi, ga);
      const int out_i = topo_.gateway_switch(gi, gb);
      if (in_i != out_i) out[n++] = topo_.switch_link(in_i, out_i);
      out[n++] = l2;
      const int gw_b = topo_.gateway_switch(gb, gi);
      if (gw_b != sb) out[n++] = topo_.switch_link(gw_b, sb);
      return n;
    }
    throw std::runtime_error("no live route between groups");
  }
  int n = 0;
  const int gwa = topo_.gateway_switch(ga, gb);
  const int gwb = topo_.gateway_switch(gb, ga);
  if (sa != gwa) out[n++] = topo_.switch_link(sa, gwa);
  out[n++] = gl;
  if (gwb != sb) out[n++] = topo_.switch_link(gwb, sb);
  return n;
}

void TopologySnapshot::minimal_path_fresh(int src_ep, int dst_ep,
                                          const std::vector<char>* failed,
                                          std::vector<int>& out) const {
  assert(src_ep != dst_ep);
  out.push_back(topo_.injection_link(src_ep));
  const int sa = topo_.endpoint_switch(src_ep);
  const int sb = topo_.endpoint_switch(dst_ep);
  if (sa != sb) {
    int seg[5];
    const int n = compute_switch_segment(sa, sb, failed, seg);
    out.insert(out.end(), seg, seg + n);
  }
  out.push_back(topo_.ejection_link(dst_ep));
}

void TopologySnapshot::base_minimal_path_into(int src_ep, int dst_ep,
                                              std::vector<int>& out) const {
  out.clear();
  RouteCache* rc = cache_.get();
  if (rc == nullptr) {
    minimal_path_fresh(src_ep, dst_ep, nullptr, out);
    return;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_ep)) << 32) |
      static_cast<std::uint32_t>(dst_ep);
  const std::size_t slot = static_cast<std::size_t>(mix64(key) & rc->ep_mask);
  RouteCache::EpEntry& e = rc->ep[slot];
  std::mutex& mu = rc->mu[slot & (RouteCache::kShards - 1)];
  {
    std::lock_guard<std::mutex> lk(mu);
    if (e.key == key) {
      out.assign(e.links, e.links + e.n);
      route_cache_hit().inc();
      return;
    }
  }
  // Assemble into a stack buffer, serving the switch segment from the dense
  // table when available. compute_switch_segment may throw (disconnected
  // groups); nothing is cached in that case.
  assert(src_ep != dst_ep);
  int buf[8];
  int n = 0;
  buf[n++] = topo_.injection_link(src_ep);
  const int sa = topo_.endpoint_switch(src_ep);
  const int sb = topo_.endpoint_switch(dst_ep);
  if (sa != sb) {
    if (rc->sw != nullptr) {
      RouteCache::SwSeg& seg =
          rc->sw[static_cast<std::size_t>(sa) *
                     static_cast<std::size_t>(rc->num_switches) +
                 static_cast<std::size_t>(sb)];
      std::call_once(seg.once, [&] {
        seg.n = compute_switch_segment(sa, sb, nullptr, seg.links);
      });
      for (int i = 0; i < seg.n; ++i) buf[n++] = seg.links[i];
    } else {
      n += compute_switch_segment(sa, sb, nullptr, buf + n);
    }
  }
  buf[n++] = topo_.ejection_link(dst_ep);
  {
    std::lock_guard<std::mutex> lk(mu);
    e.key = key;
    e.n = n;
    std::copy(buf, buf + n, e.links);
  }
  out.assign(buf, buf + n);
  route_cache_miss().inc();
}

void TopologySnapshot::minimal_path_into(int src_ep, int dst_ep,
                                         const std::vector<char>* failed,
                                         std::vector<int>& out) const {
  if (failed == nullptr) {
    // No failed global bundles in the caller's overlay: the failure-free
    // cached path IS the minimal path (local/terminal failures zero capacity
    // without rerouting), so terminal-link failures cost no cache traffic at
    // all — the ISSUE 7 satellite fix over the old wholesale invalidation.
    base_minimal_path_into(src_ep, dst_ep, out);
    return;
  }
  // Probe the shared cache first: the base path stays valid unless one of
  // its *global* hops is down in this overlay (minimal routing only ever
  // detours around failed global bundles).
  base_minimal_path_into(src_ep, dst_ep, out);
  bool broken = false;
  for (int l : out) {
    if (topo_.link(l).kind == topo::LinkKind::Global && link_failed(failed, l)) {
      broken = true;
      break;
    }
  }
  if (!broken) return;
  out.clear();
  minimal_path_fresh(src_ep, dst_ep, failed, out);
  route_overlay_reroute().inc();
}

std::vector<int> TopologySnapshot::valiant_path(
    int src_ep, int dst_ep, sim::Rng& rng,
    const std::vector<char>* failed) const {
  const int sa = topo_.endpoint_switch(src_ep);
  const int sb = topo_.endpoint_switch(dst_ep);
  const int ga = topo_.group_of_switch(sa);
  const int gb = topo_.group_of_switch(sb);
  std::vector<int> minimal;
  // No non-minimal routing on a fat-tree (one core, nothing to spread over)
  // or a rotor (traffic rides the direct matching link; a two-hop detour's
  // legs belong to different matchings and are never live in the same slot,
  // so a valiant flow would stall forever).
  if (topo_.is_fat_tree() || topo_.is_rotor()) {
    minimal_path_into(src_ep, dst_ep, failed, minimal);
    return minimal;
  }

  if (ga == gb) {
    // Intra-group non-minimal: detour through a random intermediate switch,
    // spreading a hot switch pair over the group's full connectivity.
    if (sa == sb) {
      minimal_path_into(src_ep, dst_ep, failed, minimal);
      return minimal;
    }
    const auto [base, n] = topo_.group_switch_range(ga);
    int si = -1;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int cand = base + static_cast<int>(rng.index(static_cast<std::uint64_t>(n)));
      if (cand != sa && cand != sb) {
        si = cand;
        break;
      }
    }
    if (si < 0) {
      minimal_path_into(src_ep, dst_ep, failed, minimal);
      return minimal;
    }
    return {topo_.injection_link(src_ep), topo_.switch_link(sa, si),
            topo_.switch_link(si, sb), topo_.ejection_link(dst_ep)};
  }

  // Pick a random intermediate group reachable from both sides.
  const int ng = topo_.num_groups();
  int gi = -1;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int cand = static_cast<int>(rng.index(static_cast<std::uint64_t>(ng)));
    const int l1 = topo_.global_link(ga, cand);
    const int l2 = topo_.global_link(cand, gb);
    if (cand != ga && cand != gb && l1 >= 0 && l2 >= 0 &&
        !link_failed(failed, l1) && !link_failed(failed, l2)) {
      gi = cand;
      break;
    }
  }
  if (gi < 0) {
    minimal_path_into(src_ep, dst_ep, failed, minimal);
    return minimal;
  }

  std::vector<int> path;
  path.push_back(topo_.injection_link(src_ep));
  const int gw_a = topo_.gateway_switch(ga, gi);
  if (sa != gw_a) path.push_back(topo_.switch_link(sa, gw_a));
  path.push_back(topo_.global_link(ga, gi));
  const int in_i = topo_.gateway_switch(gi, ga);   // arrival switch in gi
  const int out_i = topo_.gateway_switch(gi, gb);  // departure switch in gi
  if (in_i != out_i) path.push_back(topo_.switch_link(in_i, out_i));
  path.push_back(topo_.global_link(gi, gb));
  const int gw_b = topo_.gateway_switch(gb, gi);
  if (gw_b != sb) path.push_back(topo_.switch_link(gw_b, sb));
  path.push_back(topo_.ejection_link(dst_ep));
  return path;
}

void TopologySnapshot::route_into(int src_ep, int dst_ep, sim::Rng& rng,
                                  const std::vector<int>* global_load,
                                  const std::vector<char>* failed,
                                  std::vector<int>& out) const {
  switch (cfg_.routing) {
    case Routing::Minimal:
      minimal_path_into(src_ep, dst_ep, failed, out);
      return;
    case Routing::Valiant:
      out = valiant_path(src_ep, dst_ep, rng, failed);
      return;
    case Routing::Adaptive: {
      minimal_path_into(src_ep, dst_ep, failed, out);
      if (topo_.is_fat_tree() || topo_.is_rotor() || global_load == nullptr)
        return;
      auto val_p = valiant_path(src_ep, dst_ep, rng, failed);
      if (val_p.size() == out.size()) return;  // intra-group or fallback
      // UGAL: compare queue-depth proxies (flow counts) on the switch-switch
      // links; the detour uses more hops, so it must look at least
      // `ugal_threshold` times emptier to win.
      auto load_of = [&](const std::vector<int>& p) {
        int worst = 0;
        for (int l : p) {
          const auto kind = topo_.link(l).kind;
          if (kind == topo::LinkKind::Global || kind == topo::LinkKind::Local)
            worst = std::max(worst, (*global_load)[static_cast<std::size_t>(l)]);
        }
        return worst;
      };
      const int lm = load_of(out);
      const int lv = load_of(val_p);
      if (static_cast<double>(lm) >
          cfg_.ugal_threshold * static_cast<double>(lv + 1))
        out = std::move(val_p);
      return;
    }
  }
  minimal_path_into(src_ep, dst_ep, failed, out);
}

double TopologySnapshot::base_latency(int src_ep, int dst_ep) const {
  static thread_local std::vector<int> scratch;
  base_minimal_path_into(src_ep, dst_ep, scratch);
  double lat = 0;
  for (int l : scratch) lat += topo_.link(l).latency_s;
  return lat;
}

int TopologySnapshot::minimal_hops(int src_ep, int dst_ep) const {
  static thread_local std::vector<int> scratch;
  base_minimal_path_into(src_ep, dst_ep, scratch);
  return static_cast<int>(scratch.size());
}

std::shared_ptr<const TopologySnapshot> make_snapshot(topo::Topology topology,
                                                      FabricConfig cfg) {
  return std::make_shared<const TopologySnapshot>(std::move(topology), cfg);
}

}  // namespace xscale::net
