// Rotor slot driver: time-sliced matching rotation over a fabric overlay.
//
// A rotor fabric (topo::Topology::rotor) lays down the links of every
// matching statically; at any instant exactly one matching is live. This
// driver advances the live slot on the discrete-event engine: every
// `rotor_slot_s()` seconds it re-prices the outgoing matching's links to
// zero and the incoming matching's links to the active capacity through ONE
// batched `FabricOverlay::set_link_capacities` call — so the overlay's
// capacity epoch moves exactly once per slot transition — and then wakes the
// flow simulator (`FlowSim::notify_capacity_change`) so flows stalled on a
// dark link re-resolve the moment their matching returns.
//
// Slot state lives entirely in the session's overlay. The shared
// `TopologySnapshot` (and its route cache) is never touched: a slot change
// re-prices links but never adds, removes or fails one, so every cached
// route stays valid and sibling sessions on the same snapshot observe no
// epoch movement — the PR 7 zero-invalidation contract extends to rotors
// unchanged.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "net/flowsim.hpp"
#include "sim/engine.hpp"

namespace xscale::net {

class RotorSchedule {
 public:
  // `fabric` must wrap a rotor topology (throws std::invalid_argument
  // otherwise). `fs`, when given, is notified after every transition; it also
  // provides the auto-stop criterion below.
  RotorSchedule(sim::Engine& eng, Fabric& fabric, FlowSim* fs = nullptr);
  ~RotorSchedule() { stop(); }
  RotorSchedule(const RotorSchedule&) = delete;
  RotorSchedule& operator=(const RotorSchedule&) = delete;

  // Schedule the first transition at now() + slot_s. The rotation then
  // self-perpetuates, EXCEPT that a transition firing with nothing left to
  // drive — no active flows (with a FlowSim attached) and an otherwise empty
  // event queue — does not reschedule, so `Engine::run()` drains instead of
  // spinning slots forever. `start()` after such an auto-stop (or after
  // `stop()`) resumes from the current slot. With a single matching there is
  // nothing to rotate and start() is a no-op.
  void start();
  // Cancel the pending transition event (the current slot's pricing stays).
  void stop();

  bool running() const { return has_event_; }
  int current_slot() const { return slot_; }
  std::uint64_t transitions() const { return transitions_; }

 private:
  void advance();

  sim::Engine& eng_;
  Fabric& fabric_;
  FlowSim* fs_;
  int n_matchings_;
  double slot_s_;
  double active_capacity_;
  int slot_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t event_ = 0;
  bool has_event_ = false;
  std::vector<std::vector<int>> matching_links_;  // per matching, link ids
  std::vector<std::pair<int, double>> batch_;     // reused per transition
  std::vector<int> changed_links_;                // reused per transition
};

}  // namespace xscale::net
