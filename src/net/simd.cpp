#include "net/simd.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

// The AVX2 kernel is compiled whenever the build enables XSCALE_SIMD and
// the compiler targets x86 — selection still happens at runtime via
// __builtin_cpu_supports, so the same binary runs on hosts without AVX2.
#if defined(XSCALE_SIMD) && defined(__GNUC__) && \
    (defined(__x86_64__) || defined(__i386__))
#define XSCALE_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace xscale::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The canonical per-element expression. Every kernel must match this bit
// for bit: std::max(0.0, x) returns +0.0 for x <= 0 (and for NaN, matching
// vmaxpd's second-operand rule), and the divide is a single correctly
// rounded IEEE operation.
inline double share_at(const double* resid, const double* aw,
                       std::size_t i) {
  return aw[i] > 0.0 ? std::max(0.0, resid[i]) / aw[i] : kInf;
}

std::atomic<ScanKernel> g_override{ScanKernel::Auto};

}  // namespace

double min_share_scan_scalar(const double* resid, const double* aw,
                             std::size_t b, std::size_t e) {
  // Four independent accumulator chains: breaks the loop-carried min
  // dependency so the divides pipeline, and mirrors the vector kernel's
  // lane structure (min is order-independent, so the split is free).
  double m0 = kInf, m1 = kInf, m2 = kInf, m3 = kInf;
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    m0 = std::min(m0, share_at(resid, aw, i));
    m1 = std::min(m1, share_at(resid, aw, i + 1));
    m2 = std::min(m2, share_at(resid, aw, i + 2));
    m3 = std::min(m3, share_at(resid, aw, i + 3));
  }
  for (; i < e; ++i) m0 = std::min(m0, share_at(resid, aw, i));
  return std::min(std::min(m0, m1), std::min(m2, m3));
}

#ifdef XSCALE_SIMD_AVX2
__attribute__((target("avx2"))) static double min_share_scan_avx2(
    const double* resid, const double* aw, std::size_t b, std::size_t e) {
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vinf = _mm256_set1_pd(kInf);
  __m256d vmin = vinf;
  std::size_t i = b;
  for (; i + 4 <= e; i += 4) {
    // r = max(0, resid): vmaxpd returns the second operand on equal/NaN,
    // matching std::max(0.0, x) exactly (share_at above).
    const __m256d r = _mm256_max_pd(_mm256_loadu_pd(resid + i), vzero);
    const __m256d a = _mm256_loadu_pd(aw + i);
    // live lane mask: aw > 0 (ordered compare — NaN lanes are not live).
    const __m256d live = _mm256_cmp_pd(a, vzero, _CMP_GT_OQ);
    // Unconditional IEEE divide; dead lanes may produce inf/NaN and are
    // blended away before they can reach the accumulator.
    const __m256d q = _mm256_div_pd(r, a);
    vmin = _mm256_min_pd(vmin, _mm256_blendv_pd(vinf, q, live));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, vmin);
  double m = std::min(std::min(lane[0], lane[1]), std::min(lane[2], lane[3]));
  for (; i < e; ++i) m = std::min(m, share_at(resid, aw, i));
  return m;
}
#endif

namespace {

MinShareScanFn resolve_auto() {
#ifdef XSCALE_SIMD_AVX2
  if (__builtin_cpu_supports("avx2")) return &min_share_scan_avx2;
#endif
  return &min_share_scan_scalar;
}

}  // namespace

void set_scan_kernel(ScanKernel k) {
  g_override.store(k, std::memory_order_relaxed);
}

ScanKernel scan_kernel_override() {
  return g_override.load(std::memory_order_relaxed);
}

MinShareScanFn min_share_scan() {
  if (g_override.load(std::memory_order_relaxed) == ScanKernel::ForceScalar)
    return &min_share_scan_scalar;
  static const MinShareScanFn auto_fn = resolve_auto();
  return auto_fn;
}

bool min_share_scan_is_simd() {
  return min_share_scan() != &min_share_scan_scalar;
}

const char* min_share_scan_name() {
  return min_share_scan_is_simd() ? "avx2" : "scalar";
}

}  // namespace xscale::net
