// Branch-free min-share scan kernels over the dense link-state SoA
// (DESIGN.md §9). The water-filling inner loop spends its time computing
//
//     min over live links of  (active_w > 0 ? max(0, residual) / active_w
//                                           : +inf)
//
// Since ISSUE 10 the solver keeps `residual[]` / `active_w[]` position-
// indexed and contiguous (parallel to the compacted active-link list), so
// the scan is a straight sweep over two double arrays. This header exposes
// that sweep as a kernel with two implementations that are bitwise
// interchangeable:
//
//   - a portable scalar kernel (4 independent accumulators, always
//     compiled), and
//   - an AVX2 kernel compiled behind the XSCALE_SIMD build option and
//     selected at runtime via CPU dispatch.
//
// Bit-identity argument (the contract every caller relies on): both kernels
// evaluate the identical per-element expression — IEEE max, IEEE divide
// (never a reciprocal-multiply: 1/x then * is not correctly rounded and
// would change bits), +inf for non-live lanes — and `min` over doubles is
// exact and order-independent, so any lane width, unroll factor, chunking,
// or horizontal-reduce order returns the same bits as a naive serial loop.
// The differential suite pins scalar == AVX2 == reference on every topology
// family and thread count.
#pragma once

#include <cstddef>

namespace xscale::net {

// min over i in [b, e) of: aw[i] > 0 ? max(0, resid[i]) / aw[i] : +inf.
// Returns +inf for an empty range.
using MinShareScanFn = double (*)(const double* resid, const double* aw,
                                  std::size_t b, std::size_t e);

// Portable kernel; always compiled, the differential baseline.
double min_share_scan_scalar(const double* resid, const double* aw,
                             std::size_t b, std::size_t e);

// Kernel selection override. Auto resolves to the best kernel the build and
// the host CPU support; ForceScalar pins the portable kernel so tests can
// run the same workload through both and compare bits. Set it only while no
// solve is in flight (same contract as sim::set_thread_count).
enum class ScanKernel { Auto, ForceScalar };
void set_scan_kernel(ScanKernel k);
ScanKernel scan_kernel_override();

// The kernel a solve started right now would use, after the override and
// runtime CPU dispatch. Callers resolve once per solve and reuse the
// pointer for every chunk.
MinShareScanFn min_share_scan();

// "avx2" or "scalar" — what min_share_scan() currently resolves to.
const char* min_share_scan_name();
// True iff the resolved kernel is a vector kernel (build has XSCALE_SIMD
// and the host supports it and no scalar override is active).
bool min_share_scan_is_simd();

}  // namespace xscale::net
