#include "net/fabric.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace xscale::net {

namespace {

obs::Counter& route_cache_hit() {
  static obs::Counter& c = obs::metrics().counter("net.route_cache.hit");
  return c;
}

obs::Counter& route_cache_miss() {
  static obs::Counter& c = obs::metrics().counter("net.route_cache.miss");
  return c;
}

// SplitMix64 finalizer: spreads the (src<<32 | dst) key over the
// direct-mapped table so shift patterns don't alias into one stripe.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

// Two-level minimal-route memo (DESIGN.md §8).
//
// Level 1: dense switch-pair table. One entry per ordered (sa, sb) pair,
// filled lazily under std::call_once (a throwing computation — no live
// inter-group route — leaves the flag unset, so the next caller retries and
// observes the same throw). The switch segment of a minimal path is at most
// 5 links (worst case, failure detour: local hop to gateway, global,
// intra-detour-group local, global, local hop from gateway). Only built when
// the pair count is small enough to commit the table up front; the full
// Frontier fabric (~2,450 switches) skips it and relies on level 2.
//
// Level 2: direct-mapped endpoint-pair table, key (src<<32)|dst, holding the
// complete path (<= 7 links: injection + segment + ejection). Collisions
// overwrite — it is a cache, not a map. Entries are guarded by sharded
// mutexes (slot -> shard) so concurrent steady_rates callers can probe and
// fill without a global lock.
struct Fabric::RouteCache {
  static constexpr std::uint64_t kEmptyKey = ~0ULL;
  static constexpr std::size_t kMaxDenseSwitchPairs = std::size_t{1} << 19;
  static constexpr std::size_t kShards = 64;

  struct SwSeg {
    std::once_flag once;
    int n = 0;
    int links[5];
  };

  struct EpEntry {
    std::uint64_t key = kEmptyKey;
    int n = 0;
    int links[8];
  };

  int num_switches = 0;
  std::unique_ptr<SwSeg[]> sw;  // num_switches^2 entries; null when gated off

  std::uint64_t ep_mask = 0;
  std::vector<EpEntry> ep;
  std::array<std::mutex, kShards> mu;
};

const char* to_string(Routing r) {
  switch (r) {
    case Routing::Minimal: return "minimal";
    case Routing::Valiant: return "valiant";
    case Routing::Adaptive: return "adaptive";
  }
  return "?";
}

Fabric::Fabric(topo::Topology topology, FabricConfig cfg)
    : topo_(std::move(topology)), cfg_(cfg) {
  failed_.assign(topo_.links().size(), 0);
  eff_cap_.reserve(topo_.links().size());
  for (const auto& l : topo_.links()) {
    const bool terminal = l.kind == topo::LinkKind::Injection ||
                          l.kind == topo::LinkKind::Ejection;
    eff_cap_.push_back(terminal ? l.capacity * cfg_.nic_efficiency : l.capacity);
  }
  reset_route_cache();
}

Fabric::~Fabric() = default;
Fabric::Fabric(Fabric&&) noexcept = default;
Fabric& Fabric::operator=(Fabric&&) noexcept = default;

void Fabric::reset_route_cache() {
  if (!cfg_.route_cache) {
    cache_.reset();
    return;
  }
  auto rc = std::make_unique<RouteCache>();
  rc->num_switches = topo_.num_switches();
  const std::size_t nsw = static_cast<std::size_t>(rc->num_switches);
  if (nsw * nsw <= RouteCache::kMaxDenseSwitchPairs)
    rc->sw = std::make_unique<RouteCache::SwSeg[]>(nsw * nsw);
  // Endpoint-pair slots: ~8 per endpoint, power of two, bounded so a
  // Frontier-scale fabric commits a few tens of MB at most.
  std::size_t want = static_cast<std::size_t>(topo_.num_endpoints()) * 8;
  want = std::clamp<std::size_t>(want, std::size_t{1} << 12, std::size_t{1} << 20);
  std::size_t slots = 1;
  while (slots < want) slots <<= 1;
  rc->ep_mask = slots - 1;
  rc->ep.resize(slots);
  cache_ = std::move(rc);
}

int Fabric::compute_switch_segment(int sa, int sb, int* out) const {
  assert(sa != sb);
  if (topo_.is_fat_tree()) {
    const int core = topo_.num_switches() - 1;
    out[0] = topo_.switch_link(sa, core);
    out[1] = topo_.switch_link(core, sb);
    return 2;
  }
  const int ga = topo_.group_of_switch(sa);
  const int gb = topo_.group_of_switch(sb);
  if (ga == gb) {
    out[0] = topo_.switch_link(sa, sb);
    return 1;
  }
  const int gl = topo_.global_link(ga, gb);
  if (gl < 0) throw std::runtime_error("groups not connected");
  if (failed_[static_cast<std::size_t>(gl)]) {
    // Fabric-manager reroute: the direct bundle is down; take the
    // first live one-intermediate-group detour (deterministic sweep).
    for (int gi = 0; gi < topo_.num_groups(); ++gi) {
      if (gi == ga || gi == gb) continue;
      const int l1 = topo_.global_link(ga, gi);
      const int l2 = topo_.global_link(gi, gb);
      if (l1 < 0 || l2 < 0) continue;
      if (failed_[static_cast<std::size_t>(l1)] ||
          failed_[static_cast<std::size_t>(l2)])
        continue;
      int n = 0;
      const int gw_a = topo_.gateway_switch(ga, gi);
      if (sa != gw_a) out[n++] = topo_.switch_link(sa, gw_a);
      out[n++] = l1;
      const int in_i = topo_.gateway_switch(gi, ga);
      const int out_i = topo_.gateway_switch(gi, gb);
      if (in_i != out_i) out[n++] = topo_.switch_link(in_i, out_i);
      out[n++] = l2;
      const int gw_b = topo_.gateway_switch(gb, gi);
      if (gw_b != sb) out[n++] = topo_.switch_link(gw_b, sb);
      return n;
    }
    throw std::runtime_error("no live route between groups");
  }
  int n = 0;
  const int gwa = topo_.gateway_switch(ga, gb);
  const int gwb = topo_.gateway_switch(gb, ga);
  if (sa != gwa) out[n++] = topo_.switch_link(sa, gwa);
  out[n++] = gl;
  if (gwb != sb) out[n++] = topo_.switch_link(gwb, sb);
  return n;
}

void Fabric::append_switch_segment(int sa, int sb, std::vector<int>& out) const {
  int seg[5];
  const int n = compute_switch_segment(sa, sb, seg);
  out.insert(out.end(), seg, seg + n);
}

void Fabric::minimal_path_fresh(int src_ep, int dst_ep,
                                std::vector<int>& out) const {
  assert(src_ep != dst_ep);
  out.push_back(topo_.injection_link(src_ep));
  const int sa = topo_.endpoint_switch(src_ep);
  const int sb = topo_.endpoint_switch(dst_ep);
  if (sa != sb) append_switch_segment(sa, sb, out);
  out.push_back(topo_.ejection_link(dst_ep));
}

void Fabric::minimal_path_into(int src_ep, int dst_ep,
                               std::vector<int>& out) const {
  out.clear();
  RouteCache* rc = cache_.get();
  if (rc == nullptr) {
    minimal_path_fresh(src_ep, dst_ep, out);
    return;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_ep)) << 32) |
      static_cast<std::uint32_t>(dst_ep);
  const std::size_t slot = static_cast<std::size_t>(mix64(key) & rc->ep_mask);
  RouteCache::EpEntry& e = rc->ep[slot];
  std::mutex& mu = rc->mu[slot & (RouteCache::kShards - 1)];
  {
    std::lock_guard<std::mutex> lk(mu);
    if (e.key == key) {
      out.assign(e.links, e.links + e.n);
      route_cache_hit().inc();
      return;
    }
  }
  // Assemble into a stack buffer, serving the switch segment from the dense
  // table when available. compute_switch_segment may throw ("no live route");
  // nothing is cached in that case.
  assert(src_ep != dst_ep);
  int buf[8];
  int n = 0;
  buf[n++] = topo_.injection_link(src_ep);
  const int sa = topo_.endpoint_switch(src_ep);
  const int sb = topo_.endpoint_switch(dst_ep);
  if (sa != sb) {
    if (rc->sw != nullptr) {
      RouteCache::SwSeg& seg =
          rc->sw[static_cast<std::size_t>(sa) *
                     static_cast<std::size_t>(rc->num_switches) +
                 static_cast<std::size_t>(sb)];
      std::call_once(seg.once,
                     [&] { seg.n = compute_switch_segment(sa, sb, seg.links); });
      for (int i = 0; i < seg.n; ++i) buf[n++] = seg.links[i];
    } else {
      n += compute_switch_segment(sa, sb, buf + n);
    }
  }
  buf[n++] = topo_.ejection_link(dst_ep);
  {
    std::lock_guard<std::mutex> lk(mu);
    e.key = key;
    e.n = n;
    std::copy(buf, buf + n, e.links);
  }
  out.assign(buf, buf + n);
  route_cache_miss().inc();
}

std::vector<int> Fabric::minimal_path(int src_ep, int dst_ep) const {
  std::vector<int> path;
  minimal_path_into(src_ep, dst_ep, path);
  return path;
}

std::vector<int> Fabric::valiant_path(int src_ep, int dst_ep, sim::Rng& rng) const {
  const int sa = topo_.endpoint_switch(src_ep);
  const int sb = topo_.endpoint_switch(dst_ep);
  const int ga = topo_.group_of_switch(sa);
  const int gb = topo_.group_of_switch(sb);
  if (topo_.is_fat_tree()) return minimal_path(src_ep, dst_ep);

  if (ga == gb) {
    // Intra-group non-minimal: detour through a random intermediate switch,
    // spreading a hot switch pair over the group's full connectivity.
    if (sa == sb) return minimal_path(src_ep, dst_ep);
    const auto [base, n] = topo_.group_switch_range(ga);
    int si = -1;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int cand = base + static_cast<int>(rng.index(static_cast<std::uint64_t>(n)));
      if (cand != sa && cand != sb) {
        si = cand;
        break;
      }
    }
    if (si < 0) return minimal_path(src_ep, dst_ep);
    return {topo_.injection_link(src_ep), topo_.switch_link(sa, si),
            topo_.switch_link(si, sb), topo_.ejection_link(dst_ep)};
  }

  // Pick a random intermediate group reachable from both sides.
  const int ng = topo_.num_groups();
  int gi = -1;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const int cand = static_cast<int>(rng.index(static_cast<std::uint64_t>(ng)));
    const int l1 = topo_.global_link(ga, cand);
    const int l2 = topo_.global_link(cand, gb);
    if (cand != ga && cand != gb && l1 >= 0 && l2 >= 0 &&
        !failed_[static_cast<std::size_t>(l1)] &&
        !failed_[static_cast<std::size_t>(l2)]) {
      gi = cand;
      break;
    }
  }
  if (gi < 0) return minimal_path(src_ep, dst_ep);

  std::vector<int> path;
  path.push_back(topo_.injection_link(src_ep));
  const int gw_a = topo_.gateway_switch(ga, gi);
  if (sa != gw_a) path.push_back(topo_.switch_link(sa, gw_a));
  path.push_back(topo_.global_link(ga, gi));
  const int in_i = topo_.gateway_switch(gi, ga);   // arrival switch in gi
  const int out_i = topo_.gateway_switch(gi, gb);  // departure switch in gi
  if (in_i != out_i) path.push_back(topo_.switch_link(in_i, out_i));
  path.push_back(topo_.global_link(gi, gb));
  const int gw_b = topo_.gateway_switch(gb, gi);
  if (gw_b != sb) path.push_back(topo_.switch_link(gw_b, sb));
  path.push_back(topo_.ejection_link(dst_ep));
  return path;
}

void Fabric::route_into(int src_ep, int dst_ep, sim::Rng& rng,
                        const std::vector<int>* global_load,
                        std::vector<int>& out) const {
  switch (cfg_.routing) {
    case Routing::Minimal:
      minimal_path_into(src_ep, dst_ep, out);
      return;
    case Routing::Valiant:
      out = valiant_path(src_ep, dst_ep, rng);
      return;
    case Routing::Adaptive: {
      minimal_path_into(src_ep, dst_ep, out);
      if (topo_.is_fat_tree() || global_load == nullptr) return;
      auto val_p = valiant_path(src_ep, dst_ep, rng);
      if (val_p.size() == out.size()) return;  // intra-group or fallback
      // UGAL: compare queue-depth proxies (flow counts) on the switch-switch
      // links; the detour uses more hops, so it must look at least
      // `ugal_threshold` times emptier to win.
      auto load_of = [&](const std::vector<int>& p) {
        int worst = 0;
        for (int l : p) {
          const auto kind = topo_.link(l).kind;
          if (kind == topo::LinkKind::Global || kind == topo::LinkKind::Local)
            worst = std::max(worst, (*global_load)[static_cast<std::size_t>(l)]);
        }
        return worst;
      };
      const int lm = load_of(out);
      const int lv = load_of(val_p);
      if (static_cast<double>(lm) >
          cfg_.ugal_threshold * static_cast<double>(lv + 1))
        out = std::move(val_p);
      return;
    }
  }
  minimal_path_into(src_ep, dst_ep, out);
}

std::vector<int> Fabric::route(int src_ep, int dst_ep, sim::Rng& rng,
                               const std::vector<int>* global_load) const {
  std::vector<int> out;
  route_into(src_ep, dst_ep, rng, global_load, out);
  return out;
}

std::vector<double> Fabric::steady_rates(const std::vector<std::pair<int, int>>& pairs,
                                         const std::vector<double>* weights,
                                         std::vector<std::vector<int>>* paths_out,
                                         const std::vector<double>* rate_caps) const {
  sim::Rng rng(cfg_.seed);
  std::vector<std::vector<int>> paths;
  paths.reserve(pairs.size());
  std::vector<int> load(topo_.links().size(), 0);
  for (const auto& [s, d] : pairs) {
    auto p = route(s, d, rng, &load);
    for (int l : p) ++load[static_cast<std::size_t>(l)];
    paths.push_back(std::move(p));
  }
  std::vector<double> rates;
  if (rate_caps != nullptr) {
    // Realize caps as private virtual links appended to the capped flow.
    std::vector<double> cap = eff_cap_;
    auto capped_paths = paths;
    for (std::size_t f = 0; f < capped_paths.size(); ++f) {
      const double c = (*rate_caps)[f];
      if (c <= 0) continue;
      capped_paths[f].push_back(static_cast<int>(cap.size()));
      cap.push_back(c);  // bounds the flow's total rate
    }
    rates = max_min_rates_components(cap, capped_paths, weights);
  } else {
    rates = max_min_rates_components(eff_cap_, paths, weights);
  }
  if (!cfg_.congestion_control) apply_hol_blocking(paths, rates);
  if (paths_out) *paths_out = std::move(paths);
  return rates;
}

void Fabric::apply_hol_blocking(const std::vector<std::vector<int>>& paths,
                                std::vector<double>& rates) const {
  // Without hardware congestion control, a saturated (typically ejection)
  // link backs frames up into the switch, and every flow crossing that
  // switch slows to the oversubscribed link's drain ratio. We compute, per
  // switch, the worst oversubscription of any link it sources, then scale
  // each flow by the worst factor along its path.
  // Unthrottled desire per flow: its share of the injection link it enters
  // through (ranks sharing a NIC cannot each offer the full NIC rate).
  std::vector<int> inj_count(topo_.links().size(), 0);
  for (const auto& p : paths) ++inj_count[static_cast<std::size_t>(p.front())];
  std::vector<double> demand(topo_.links().size(), 0.0);
  for (std::size_t f = 0; f < paths.size(); ++f) {
    const auto inj = static_cast<std::size_t>(paths[f].front());
    const double desire = eff_cap_[inj] / std::max(1, inj_count[inj]);
    for (int l : paths[f]) demand[static_cast<std::size_t>(l)] += desire;
  }
  std::vector<double> switch_factor(static_cast<std::size_t>(topo_.num_switches()), 1.0);
  for (const auto& l : topo_.links()) {
    if (l.src >= topo_.num_switches()) continue;  // injection links: src is an endpoint
    const double d = demand[static_cast<std::size_t>(l.id)];
    if (d > eff_cap_[static_cast<std::size_t>(l.id)]) {
      const double factor = eff_cap_[static_cast<std::size_t>(l.id)] / d;
      auto& sf = switch_factor[static_cast<std::size_t>(l.src)];
      sf = std::min(sf, factor);
    }
  }
  for (std::size_t f = 0; f < paths.size(); ++f) {
    double factor = 1.0;
    for (int l : paths[f]) {
      const auto& lk = topo_.link(l);
      if (lk.src < topo_.num_switches())
        factor = std::min(factor, switch_factor[static_cast<std::size_t>(lk.src)]);
    }
    rates[f] *= factor;
  }
}

void Fabric::fail_link(int link_id) {
  failed_[static_cast<std::size_t>(link_id)] = 1;
  eff_cap_[static_cast<std::size_t>(link_id)] = 0.0;
  ++cap_epoch_;
  reset_route_cache();
}

void Fabric::restore_link(int link_id) {
  failed_[static_cast<std::size_t>(link_id)] = 0;
  const auto& l = topo_.link(link_id);
  const bool terminal =
      l.kind == topo::LinkKind::Injection || l.kind == topo::LinkKind::Ejection;
  eff_cap_[static_cast<std::size_t>(link_id)] =
      terminal ? l.capacity * cfg_.nic_efficiency : l.capacity;
  ++cap_epoch_;
  reset_route_cache();
}

int Fabric::failed_links() const {
  int n = 0;
  for (char f : failed_)
    if (f) ++n;
  return n;
}

double Fabric::base_latency(int src_ep, int dst_ep) const {
  static thread_local std::vector<int> scratch;
  minimal_path_into(src_ep, dst_ep, scratch);
  double lat = 0;
  for (int l : scratch) lat += topo_.link(l).latency_s;
  return lat;
}

int Fabric::minimal_hops(int src_ep, int dst_ep) const {
  static thread_local std::vector<int> scratch;
  minimal_path_into(src_ep, dst_ep, scratch);
  return static_cast<int>(scratch.size());
}

}  // namespace xscale::net
