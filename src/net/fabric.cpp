#include "net/fabric.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace xscale::net {

// --- FabricOverlay -----------------------------------------------------------

FabricOverlay::FabricOverlay(std::shared_ptr<const TopologySnapshot> snap)
    : snap_(std::move(snap)) {
  if (!snap_) throw std::invalid_argument("FabricOverlay: null snapshot");
}

std::size_t FabricOverlay::check_link(int link_id) const {
  const auto id = static_cast<std::size_t>(link_id);
  if (link_id < 0 || id >= snap_->num_links())
    throw std::out_of_range("FabricOverlay: link id " + std::to_string(link_id) +
                            " out of range [0, " +
                            std::to_string(snap_->num_links()) + ")");
  return id;
}

void FabricOverlay::materialize() {
  if (failed_.empty()) failed_.assign(snap_->num_links(), 0);
  if (cow_cap_.empty()) cow_cap_ = snap_->base_capacities();
}

double FabricOverlay::restored_capacity(int link_id) const {
  for (const auto& [id, cap] : overrides_)
    if (id == link_id) return cap;
  return snap_->base_capacities()[static_cast<std::size_t>(link_id)];
}

bool FabricOverlay::fail_link(int link_id) {
  const std::size_t id = check_link(link_id);
  if (!failed_.empty() && failed_[id]) return false;  // idempotent no-op
  materialize();
  failed_[id] = 1;
  failed_ids_.push_back(link_id);
  if (snap_->topology().link(link_id).kind == topo::LinkKind::Global)
    ++failed_globals_;
  cow_cap_[id] = 0.0;
  ++cap_epoch_;
  return true;
}

bool FabricOverlay::restore_link(int link_id) {
  const std::size_t id = check_link(link_id);
  if (failed_.empty() || !failed_[id]) return false;  // idempotent no-op
  failed_[id] = 0;
  failed_ids_.erase(std::find(failed_ids_.begin(), failed_ids_.end(), link_id));
  if (snap_->topology().link(link_id).kind == topo::LinkKind::Global)
    --failed_globals_;
  cow_cap_[id] = restored_capacity(link_id);
  ++cap_epoch_;
  return true;
}

bool FabricOverlay::set_capacity_no_bump(int link_id, double capacity) {
  const std::size_t id = check_link(link_id);
  for (auto& [oid, cap] : overrides_) {
    if (oid != link_id) continue;
    if (cap == capacity) return false;
    cap = capacity;
    const bool was_live = failed_.empty() || !failed_[id];
    if (was_live) {  // a failed link stays at 0: no observable change yet
      // cow_cap_ may still be empty: a first set equal to the base capacity
      // records the override but never materialises.
      materialize();
      cow_cap_[id] = capacity;
    }
    return was_live;
  }
  overrides_.emplace_back(link_id, capacity);
  const bool live = failed_.empty() || !failed_[id];
  if (live && effective_capacities()[id] == capacity) return false;
  materialize();
  if (live) cow_cap_[id] = capacity;
  return live;
}

bool FabricOverlay::set_link_capacity(int link_id, double capacity) {
  if (!set_capacity_no_bump(link_id, capacity)) return false;
  ++cap_epoch_;
  return true;
}

bool FabricOverlay::set_link_capacities(
    const std::vector<std::pair<int, double>>& updates) {
  bool changed = false;
  for (const auto& [id, cap] : updates)
    changed = set_capacity_no_bump(id, cap) || changed;
  if (changed) ++cap_epoch_;
  return changed;
}

bool FabricOverlay::clear_link_capacity(int link_id) {
  const std::size_t id = check_link(link_id);
  auto it = std::find_if(overrides_.begin(), overrides_.end(),
                         [&](const auto& o) { return o.first == link_id; });
  if (it == overrides_.end()) return false;
  overrides_.erase(it);
  if (!failed_.empty() && failed_[id]) return false;  // takes effect on restore
  const double base = snap_->base_capacities()[id];
  if (!cow_cap_.empty() && cow_cap_[id] != base) {
    cow_cap_[id] = base;
    ++cap_epoch_;
    return true;
  }
  return false;
}

bool FabricOverlay::clear() {
  const bool changed = !failed_ids_.empty() ||
                       (!cow_cap_.empty() && cow_cap_ != snap_->base_capacities());
  if (!failed_.empty()) std::fill(failed_.begin(), failed_.end(), char{0});
  failed_ids_.clear();
  overrides_.clear();
  failed_globals_ = 0;
  if (!cow_cap_.empty()) cow_cap_ = snap_->base_capacities();
  if (changed) ++cap_epoch_;
  return changed;
}

// --- Fabric ------------------------------------------------------------------

Fabric::Fabric(topo::Topology topology, FabricConfig cfg)
    : snap_(make_snapshot(std::move(topology), cfg)), overlay_(snap_) {}

Fabric::Fabric(std::shared_ptr<const TopologySnapshot> snapshot)
    : snap_(std::move(snapshot)), overlay_(snap_) {}

Fabric::~Fabric() = default;
Fabric::Fabric(Fabric&&) noexcept = default;
Fabric& Fabric::operator=(Fabric&&) noexcept = default;

void Fabric::route_into(int src_ep, int dst_ep, sim::Rng& rng,
                        const std::vector<int>* global_load,
                        std::vector<int>& out) const {
  snap_->route_into(src_ep, dst_ep, rng, global_load,
                    overlay_.routing_failure_view(), out);
}

std::vector<int> Fabric::route(int src_ep, int dst_ep, sim::Rng& rng,
                               const std::vector<int>* global_load) const {
  std::vector<int> out;
  route_into(src_ep, dst_ep, rng, global_load, out);
  return out;
}

std::vector<double> Fabric::steady_rates(const std::vector<std::pair<int, int>>& pairs,
                                         const std::vector<double>* weights,
                                         std::vector<std::vector<int>>* paths_out,
                                         const std::vector<double>* rate_caps) const {
  sim::Rng rng(config().seed);
  const auto& topo = topology();
  std::vector<std::vector<int>> paths;
  paths.reserve(pairs.size());
  std::vector<int> load(topo.links().size(), 0);
  for (const auto& [s, d] : pairs) {
    auto p = route(s, d, rng, &load);
    for (int l : p) ++load[static_cast<std::size_t>(l)];
    paths.push_back(std::move(p));
  }
  const std::vector<double>& eff_cap = overlay_.effective_capacities();
  std::vector<double> rates;
  if (rate_caps != nullptr) {
    // Realize caps as private virtual links appended to the capped flow.
    std::vector<double> cap = eff_cap;
    auto capped_paths = paths;
    for (std::size_t f = 0; f < capped_paths.size(); ++f) {
      const double c = (*rate_caps)[f];
      if (c <= 0) continue;
      capped_paths[f].push_back(static_cast<int>(cap.size()));
      cap.push_back(c);  // bounds the flow's total rate
    }
    rates = max_min_rates_components(cap, capped_paths, weights);
  } else {
    rates = max_min_rates_components(eff_cap, paths, weights);
  }
  if (!config().congestion_control) apply_hol_blocking(paths, rates);
  if (paths_out) *paths_out = std::move(paths);
  return rates;
}

void Fabric::apply_hol_blocking(const std::vector<std::vector<int>>& paths,
                                std::vector<double>& rates) const {
  // Without hardware congestion control, a saturated (typically ejection)
  // link backs frames up into the switch, and every flow crossing that
  // switch slows to the oversubscribed link's drain ratio. We compute, per
  // switch, the worst oversubscription of any link it sources, then scale
  // each flow by the worst factor along its path.
  // Unthrottled desire per flow: its share of the injection link it enters
  // through (ranks sharing a NIC cannot each offer the full NIC rate).
  const auto& topo = topology();
  const std::vector<double>& eff_cap = overlay_.effective_capacities();
  std::vector<int> inj_count(topo.links().size(), 0);
  for (const auto& p : paths) ++inj_count[static_cast<std::size_t>(p.front())];
  std::vector<double> demand(topo.links().size(), 0.0);
  for (std::size_t f = 0; f < paths.size(); ++f) {
    const auto inj = static_cast<std::size_t>(paths[f].front());
    const double desire = eff_cap[inj] / std::max(1, inj_count[inj]);
    for (int l : paths[f]) demand[static_cast<std::size_t>(l)] += desire;
  }
  std::vector<double> switch_factor(static_cast<std::size_t>(topo.num_switches()), 1.0);
  for (const auto& l : topo.links()) {
    if (l.src >= topo.num_switches()) continue;  // injection links: src is an endpoint
    const double d = demand[static_cast<std::size_t>(l.id)];
    if (d > eff_cap[static_cast<std::size_t>(l.id)]) {
      const double factor = eff_cap[static_cast<std::size_t>(l.id)] / d;
      auto& sf = switch_factor[static_cast<std::size_t>(l.src)];
      sf = std::min(sf, factor);
    }
  }
  for (std::size_t f = 0; f < paths.size(); ++f) {
    double factor = 1.0;
    for (int l : paths[f]) {
      const auto& lk = topo.link(l);
      if (lk.src < topo.num_switches())
        factor = std::min(factor, switch_factor[static_cast<std::size_t>(lk.src)]);
    }
    rates[f] *= factor;
  }
}

double Fabric::base_latency(int src_ep, int dst_ep) const {
  static thread_local std::vector<int> scratch;
  snap_->minimal_path_into(src_ep, dst_ep, overlay_.routing_failure_view(),
                           scratch);
  double lat = 0;
  for (int l : scratch) lat += topology().link(l).latency_s;
  return lat;
}

int Fabric::minimal_hops(int src_ep, int dst_ep) const {
  static thread_local std::vector<int> scratch;
  snap_->minimal_path_into(src_ep, dst_ep, overlay_.routing_failure_view(),
                           scratch);
  return static_cast<int>(scratch.size());
}

}  // namespace xscale::net
