#include "net/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "net/simd.hpp"
#include "sim/parallel.hpp"

namespace xscale::net {

namespace {
// Process-wide tuning. Read once per solve on the calling thread (worker
// chunks never consult it), so mutation while solves are in flight is a
// caller error — same contract as sim::set_thread_count.
SolverTuning g_tuning;
}  // namespace

const SolverTuning& solver_tuning() { return g_tuning; }
void set_solver_tuning(const SolverTuning& t) { g_tuning = t; }

namespace {

// Malformed inputs must not silently become garbage rates (NaN capacities
// survive the share arithmetic as 0 via std::max, and with -DNDEBUG a bare
// assert vanishes entirely). These checks hold in release builds.
void validate_flat(const double* capacities, std::size_t num_links,
                   const double* weights, std::size_t num_flows) {
  for (std::size_t l = 0; l < num_links; ++l)
    if (!std::isfinite(capacities[l]) || capacities[l] < 0.0)
      throw std::invalid_argument("max_min_rates: capacities must be finite and >= 0");
  if (weights)
    for (std::size_t f = 0; f < num_flows; ++f)
      if (!std::isfinite(weights[f]) || weights[f] < 0.0)
        throw std::invalid_argument("max_min_rates: weights must be finite and >= 0");
}

void validate(const std::vector<double>& capacities,
              const std::vector<std::vector<int>>& paths,
              const std::vector<double>* weights) {
  if (weights && weights->size() != paths.size())
    throw std::invalid_argument("max_min_rates: weights/paths size mismatch");
  validate_flat(capacities.data(), capacities.size(),
                weights ? weights->data() : nullptr, paths.size());
}

// Grow-only sizing; reports whether the buffer had to allocate, so the
// scratch-reuse probe can count allocation-free steady-state re-solves.
template <typename T>
bool ensure(std::vector<T>& v, std::size_t n) {
  const bool grew = v.capacity() < n;
  v.resize(n);
  return grew;
}

// The pre-CSR water-filling core, retained as the differential oracle;
// inputs already validated. The only change since PR 5: active-link list
// membership is first-seen-deduplicated (`on_list`) instead of keyed on
// `active_w == 0.0`. The two are identical unless a link's first crossers
// all have weight exactly 0 (the old key re-pushed such a link, producing
// duplicate list entries); the dense-SoA CSR core cannot represent
// duplicates, so both sides now share the dedup semantics and stay
// bit-identical on every input, zero-weight flows included (DESIGN.md §9).
std::vector<double> solve_core_reference(
    const std::vector<double>& capacities,
    const std::vector<std::vector<int>>& paths,
    const std::vector<double>* weights, SolveStats* stats) {
  const std::size_t nf = paths.size();
  std::vector<double> rate(nf, 0.0);

  // Per-link: residual capacity, total unfrozen weight, flows crossing it.
  std::vector<double> residual = capacities;
  std::vector<double> active_w(capacities.size(), 0.0);
  std::vector<std::vector<int>> flows_on(capacities.size());
  std::vector<char> frozen(nf, 0);

  auto w_of = [&](std::size_t f) { return weights ? (*weights)[f] : 1.0; };

  std::vector<int> active_links;
  std::vector<char> on_list(capacities.size(), 0);
  for (std::size_t f = 0; f < nf; ++f) {
    assert(!paths[f].empty());
    for (int l : paths[f]) {
      if (!on_list[static_cast<std::size_t>(l)]) {
        on_list[static_cast<std::size_t>(l)] = 1;
        active_links.push_back(l);
      }
      active_w[static_cast<std::size_t>(l)] += w_of(f);
      flows_on[static_cast<std::size_t>(l)].push_back(static_cast<int>(f));
    }
  }

  const double inf = std::numeric_limits<double>::infinity();
  auto scan_min = [&](std::size_t b, std::size_t e) {
    double m = inf;
    for (std::size_t i = b; i < e; ++i) {
      const auto lu = static_cast<std::size_t>(active_links[i]);
      if (active_w[lu] <= 0.0) continue;
      m = std::min(m, std::max(0.0, residual[lu]) / active_w[lu]);
    }
    return m;
  };

  const SolverTuning& tun = solver_tuning();
  std::size_t remaining = nf;
  std::int64_t iterations = 0;
  std::int64_t bottlenecks = 0;
  std::int64_t parallel_scans = 0;
  while (remaining > 0) {
    ++iterations;
    // Find the smallest per-weight share among links with unfrozen flows.
    // min is exact for doubles, so chunked parallel scan == serial scan.
    const bool par_scan = active_links.size() >= tun.parallel_scan_threshold;
    if (par_scan) ++parallel_scans;
    const double min_share =
        par_scan
            ? sim::parallel_reduce(
                  active_links.size(), tun.scan_grain, inf, scan_min,
                  [](double a, double b) { return std::min(a, b); })
            : scan_min(0, active_links.size());
    // No link constrains the remaining flows (e.g. every unfrozen flow has
    // weight 0, so its links never activate): there is no finite max-min
    // allocation.
    if (!std::isfinite(min_share))
      throw std::runtime_error(
          "max_min_rates: no finite bottleneck share for remaining flows");

    // Freeze every flow crossing any link whose share ties the minimum
    // EXACTLY. Symmetric traffic patterns produce massive bitwise ties
    // (identical capacity / crosser-count arithmetic) and those still
    // collapse into one iteration. The tie test must not carry a relative
    // slack: a near-tie tolerance lets the minimum link "capture" a link
    // from an unrelated connected component whose share drifted within the
    // window, freezing its flows at the *other* component's share — which
    // breaks the bit-identity between this global solve and the
    // per-component decomposition that `max_min_rates_components` and the
    // incremental FlowSim paths rely on. With exact ties, each component's
    // firing sequence in the global solve is precisely its local solve's
    // sequence, so decomposition is lossless at the ULP level.
    const double cutoff = min_share;
    for (int l : active_links) {
      const auto lu = static_cast<std::size_t>(l);
      if (active_w[lu] <= 0.0) continue;
      if (std::max(0.0, residual[lu]) / active_w[lu] > cutoff) continue;
      ++bottlenecks;
      for (int fi : flows_on[lu]) {
        const auto fu = static_cast<std::size_t>(fi);
        if (frozen[fu]) continue;
        frozen[fu] = 1;
        rate[fu] = min_share * w_of(fu);
        --remaining;
        for (int pl : paths[fu]) {
          const auto plu = static_cast<std::size_t>(pl);
          residual[plu] -= rate[fu];
          active_w[plu] -= w_of(fu);
        }
      }
    }
    // Drop links with no remaining unfrozen flows.
    std::erase_if(active_links,
                  [&](int l) { return active_w[static_cast<std::size_t>(l)] <= 1e-12; });
  }

  if (stats) {
    stats->iterations = iterations;
    stats->bottleneck_links = bottlenecks;
    stats->parallel_scans = parallel_scans;
  }
  return rate;
}

// Union-find over link ids, path-halving.
struct LinkDsu {
  std::vector<int> parent;
  explicit LinkDsu(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(b)] = a;
  }
};

}  // namespace

void max_min_rates_csr(const double* capacities, std::size_t num_links,
                       const PathsCsr& paths, const double* weights,
                       double* rates_out, SolveStats* stats,
                       SolveScratch& s) {
  const std::size_t nf = paths.num_flows();
  if (stats) *stats = SolveStats{};
  if (nf == 0) return;
  validate_flat(capacities, num_links, weights, nf);

  const int* lids = paths.link_ids.data();
  const int* off = paths.offsets.data();
  const std::size_t nnz = paths.nnz();

  // Size the scratch first so a warm re-solve is provably allocation-free;
  // values are (re)written below, so prior contents never leak into output.
  bool grew = false;
  grew |= ensure(s.residual, num_links);
  grew |= ensure(s.active_w, num_links);
  grew |= ensure(s.link_pos, num_links);
  grew |= ensure(s.frozen, nf);
  grew |= ensure(s.t_off, num_links + 1);
  grew |= ensure(s.t_cursor, num_links);
  grew |= ensure(s.t_flow, nnz);
  grew |= ensure(s.batch_mark, nf);
  if (s.active_links.capacity() < num_links) {
    grew = true;
    s.active_links.reserve(num_links);
  }
  s.active_links.clear();
  // Recorded, not counted here: worker threads each warm a private scratch,
  // so a process-wide counter incremented per solve would depend on the
  // thread count and break the byte-identical metrics contract. Owners with
  // deterministic call sites (FlowSim) feed `net.solver.scratch_reuse`.
  s.last_solve_allocated = grew;

  // residual / active_w are position-indexed into the dense SoA and written
  // at first encounter below; only the id->position map needs clearing.
  std::fill(s.link_pos.begin(), s.link_pos.end(), -1);
  std::fill(s.frozen.begin(), s.frozen.end(), 0);
  std::fill(rates_out, rates_out + nf, 0.0);

  // Transposed link->flow incidence by counting sort. Flows land in
  // ascending flow order within each link — the same order the reference
  // builds its per-link flow lists, so the freeze sweep visits flows
  // identically and every output bit matches.
  std::fill(s.t_off.begin(), s.t_off.end(), 0);
  for (std::size_t i = 0; i < nnz; ++i)
    ++s.t_off[static_cast<std::size_t>(lids[i]) + 1];
  for (std::size_t l = 1; l <= num_links; ++l) s.t_off[l] += s.t_off[l - 1];
  std::copy(s.t_off.begin(), s.t_off.end() - 1, s.t_cursor.begin());

  // Dense SoA build: every crossed link gets one position (first-seen
  // order, deduplicated via link_pos) and its residual / active weight live
  // at that position, contiguous for the scan kernel.
  auto w_of = [&](std::size_t f) { return weights ? weights[f] : 1.0; };
  for (std::size_t f = 0; f < nf; ++f) {
    assert(off[f] < off[f + 1]);
    for (int i = off[f]; i < off[f + 1]; ++i) {
      const auto lu = static_cast<std::size_t>(lids[i]);
      int p = s.link_pos[lu];
      if (p < 0) {
        p = static_cast<int>(s.active_links.size());
        s.link_pos[lu] = p;
        s.active_links.push_back(lids[i]);
        s.residual[static_cast<std::size_t>(p)] = capacities[lu];
        s.active_w[static_cast<std::size_t>(p)] = 0.0;
      }
      s.active_w[static_cast<std::size_t>(p)] += w_of(f);
      s.t_flow[static_cast<std::size_t>(s.t_cursor[lu]++)] =
          static_cast<int>(f);
    }
  }

  const double inf = std::numeric_limits<double>::infinity();
  // One kernel resolution per solve; every chunk (serial or parallel) runs
  // the same code, so the result is independent of chunking (simd.hpp).
  const MinShareScanFn kernel = min_share_scan();
  const SolverTuning& tun = solver_tuning();
  auto scan_min = [&](std::size_t b, std::size_t e) {
    return kernel(s.residual.data(), s.active_w.data(), b, e);
  };

  std::size_t remaining = nf;
  std::int64_t iterations = 0;
  std::int64_t bottlenecks = 0;
  std::int64_t parallel_scans = 0;
  while (remaining > 0) {
    ++iterations;
    const std::size_t n_active = s.active_links.size();
    const bool par_scan = n_active >= tun.parallel_scan_threshold;
    if (par_scan) ++parallel_scans;
    const double min_share =
        par_scan ? sim::parallel_reduce(
                       n_active, tun.scan_grain, inf, scan_min,
                       [](double a, double b) { return std::min(a, b); })
                 : scan_min(0, n_active);
    if (!std::isfinite(min_share))
      throw std::runtime_error(
          "max_min_rates: no finite bottleneck share for remaining flows");

    // Exact-tie firing — see solve_core_reference on why the cutoff carries
    // no relative slack (component decomposability of the bits). The sweep
    // walks active positions; the dense values are the same doubles the
    // scan kernel just read.
    const double cutoff = min_share;
    for (std::size_t pi = 0; pi < n_active; ++pi) {
      const double aw = s.active_w[pi];
      if (aw <= 0.0) continue;
      if (std::max(0.0, s.residual[pi]) / aw > cutoff) continue;
      const auto lu = static_cast<std::size_t>(s.active_links[pi]);
      ++bottlenecks;
      // Firing-link batch size decides serial vs parallel update. The count
      // pass only runs when the problem is big enough for the parallel path
      // to possibly engage, and the gate reads problem state only — same
      // decision at every thread count.
      std::size_t batch = 0;
      if (n_active >= tun.parallel_scan_threshold) {
        for (int ti = s.t_off[lu]; ti < s.t_off[lu + 1]; ++ti)
          if (!s.frozen[static_cast<std::size_t>(
                  s.t_flow[static_cast<std::size_t>(ti)])])
            ++batch;
      }
      if (batch < tun.parallel_update_min) {
        for (int ti = s.t_off[lu]; ti < s.t_off[lu + 1]; ++ti) {
          const auto fu = static_cast<std::size_t>(s.t_flow[static_cast<std::size_t>(ti)]);
          if (s.frozen[fu]) continue;
          s.frozen[fu] = 1;
          rates_out[fu] = min_share * w_of(fu);
          --remaining;
          for (int pi2 = off[fu]; pi2 < off[fu + 1]; ++pi2) {
            // Links already compacted off the active list take no further
            // subtractions; their dense cells are dead and never read
            // (pre-SoA code subtracted into dead id-indexed cells — same
            // observable state, DESIGN.md §9).
            const int p = s.link_pos[static_cast<std::size_t>(lids[pi2])];
            if (p < 0) continue;
            s.residual[static_cast<std::size_t>(p)] -= rates_out[fu];
            s.active_w[static_cast<std::size_t>(p)] -= w_of(fu);
          }
        }
      } else {
        // Freeze the whole batch first (no subtractions), then apply the
        // updates per link in transposed-incidence order. No residual or
        // active-weight value is read between the first freeze and the last
        // subtraction of a batch on the serial path either, so deferring is
        // exact; within one batch the serial per-flow subtraction order
        // restricted to any link is ascending flow id == t_flow order. The
        // sweep covers active positions (index-disjoint writes); per link
        // the subtraction sequence matches the serial walk exactly.
        ++s.batch_epoch;
        for (int ti = s.t_off[lu]; ti < s.t_off[lu + 1]; ++ti) {
          const auto fu = static_cast<std::size_t>(s.t_flow[static_cast<std::size_t>(ti)]);
          if (s.frozen[fu]) continue;
          s.frozen[fu] = 1;
          rates_out[fu] = min_share * w_of(fu);
          s.batch_mark[fu] = s.batch_epoch;
          --remaining;
        }
        sim::parallel_for(
            n_active, tun.scan_grain, [&](std::size_t b, std::size_t e) {
              for (std::size_t p2 = b; p2 < e; ++p2) {
                const auto l2 =
                    static_cast<std::size_t>(s.active_links[p2]);
                for (int ti = s.t_off[l2]; ti < s.t_off[l2 + 1]; ++ti) {
                  const auto fu = static_cast<std::size_t>(
                      s.t_flow[static_cast<std::size_t>(ti)]);
                  if (s.batch_mark[fu] != s.batch_epoch) continue;
                  s.residual[p2] -= rates_out[fu];
                  s.active_w[p2] -= w_of(fu);
                }
              }
            });
      }
    }
    // Tandem compaction: drop links with no remaining unfrozen flows,
    // keeping positions dense and first-seen-ordered (what std::erase_if
    // did for the id-indexed layout).
    std::size_t w = 0;
    for (std::size_t pi = 0; pi < s.active_links.size(); ++pi) {
      const int l = s.active_links[pi];
      if (s.active_w[pi] <= 1e-12) {
        s.link_pos[static_cast<std::size_t>(l)] = -1;
        continue;
      }
      s.active_links[w] = l;
      s.residual[w] = s.residual[pi];
      s.active_w[w] = s.active_w[pi];
      s.link_pos[static_cast<std::size_t>(l)] = static_cast<int>(w);
      ++w;
    }
    s.active_links.resize(w);
  }

  if (stats) {
    stats->iterations = iterations;
    stats->bottleneck_links = bottlenecks;
    stats->parallel_scans = parallel_scans;
  }
}

std::vector<double> max_min_rates(const std::vector<double>& capacities,
                                  const std::vector<std::vector<int>>& paths,
                                  const std::vector<double>* weights,
                                  SolveStats* stats) {
  if (paths.empty()) {
    if (stats) *stats = SolveStats{};
    return {};
  }
  if (weights && weights->size() != paths.size())
    throw std::invalid_argument("max_min_rates: weights/paths size mismatch");
  // Adapter: pack into a per-thread CSR arena (component workers and user
  // threads never share) and run the flat core.
  static thread_local PathsCsr csr;
  static thread_local SolveScratch scratch;
  csr.clear();
  for (const auto& p : paths) {
    assert(!p.empty());
    csr.push_path(p.begin(), p.end());
  }
  std::vector<double> rates(paths.size(), 0.0);
  max_min_rates_csr(capacities.data(), capacities.size(), csr,
                    weights ? weights->data() : nullptr, rates.data(), stats,
                    scratch);
  return rates;
}

std::vector<double> max_min_rates_reference(
    const std::vector<double>& capacities,
    const std::vector<std::vector<int>>& paths,
    const std::vector<double>* weights, SolveStats* stats) {
  if (paths.empty()) {
    if (stats) *stats = SolveStats{};
    return {};
  }
  validate(capacities, paths, weights);
  return solve_core_reference(capacities, paths, weights, stats);
}

std::vector<double> max_min_rates_components(
    const std::vector<double>& capacities,
    const std::vector<std::vector<int>>& paths,
    const std::vector<double>* weights, SolveStats* stats) {
  const std::size_t nf = paths.size();
  if (nf == 0) {
    if (stats) *stats = SolveStats{};
    return {};
  }
  validate(capacities, paths, weights);

  // Link-connectivity union-find; two flows are coupled iff their paths
  // transitively share a link.
  LinkDsu dsu(capacities.size());
  for (const auto& p : paths) {
    assert(!p.empty());
    for (std::size_t i = 1; i < p.size(); ++i) dsu.unite(p[0], p[i]);
  }

  // Dense component ids in first-flow order — deterministic regardless of
  // thread count; each component's flow list is ascending by construction.
  std::vector<int> comp_of_root(capacities.size(), -1);
  std::vector<std::vector<int>> comp_flows;
  for (std::size_t f = 0; f < nf; ++f) {
    const int root = dsu.find(paths[f][0]);
    int& c = comp_of_root[static_cast<std::size_t>(root)];
    if (c < 0) {
      c = static_cast<int>(comp_flows.size());
      comp_flows.emplace_back();
    }
    comp_flows[static_cast<std::size_t>(c)].push_back(static_cast<int>(f));
  }

  const std::size_t nc = comp_flows.size();
  if (nc == 1) return max_min_rates(capacities, paths, weights, stats);

  std::vector<double> rate(nf, 0.0);
  std::vector<SolveStats> comp_stats(nc);
  sim::parallel_for(nc, 1, [&](std::size_t cb, std::size_t ce) {
    // Per-worker pack buffers. The link remap is epoch-stamped, so packing a
    // component costs O(its nnz) with no clearing pass; links are renumbered
    // in first-encounter order (the same order the global solve would visit
    // them, so the per-link arithmetic sequence — and hence every output bit
    // — matches the unsplit solve).
    struct PackScratch {
      std::vector<int> local_id;
      std::vector<std::uint64_t> mark;
      std::uint64_t epoch = 0;
      std::vector<double> sub_caps;
      std::vector<double> sub_w;
      std::vector<double> sub_rates;
      PathsCsr sub_csr;
      SolveScratch solve;
    };
    static thread_local PackScratch ps;
    if (ps.mark.size() < capacities.size()) {
      ps.mark.resize(capacities.size(), 0);
      ps.local_id.resize(capacities.size(), 0);
    }
    for (std::size_t c = cb; c < ce; ++c) {
      const std::vector<int>& flows = comp_flows[c];
      ++ps.epoch;
      ps.sub_caps.clear();
      ps.sub_w.clear();
      ps.sub_csr.clear();
      for (int f : flows) {
        const auto fu = static_cast<std::size_t>(f);
        for (int l : paths[fu]) {
          const auto lu = static_cast<std::size_t>(l);
          if (ps.mark[lu] != ps.epoch) {
            ps.mark[lu] = ps.epoch;
            ps.local_id[lu] = static_cast<int>(ps.sub_caps.size());
            ps.sub_caps.push_back(capacities[lu]);
          }
          ps.sub_csr.push_link(ps.local_id[lu]);
        }
        ps.sub_csr.end_path();
        if (weights) ps.sub_w.push_back((*weights)[fu]);
      }
      ensure(ps.sub_rates, flows.size());
      max_min_rates_csr(ps.sub_caps.data(), ps.sub_caps.size(), ps.sub_csr,
                        weights ? ps.sub_w.data() : nullptr,
                        ps.sub_rates.data(), &comp_stats[c], ps.solve);
      for (std::size_t i = 0; i < flows.size(); ++i)
        rate[static_cast<std::size_t>(flows[i])] = ps.sub_rates[i];
    }
  });

  if (stats) {
    *stats = SolveStats{};
    for (const SolveStats& cs : comp_stats) {
      stats->iterations += cs.iterations;
      stats->bottleneck_links += cs.bottleneck_links;
      stats->parallel_scans += cs.parallel_scans;
    }
  }
  return rate;
}

}  // namespace xscale::net
