#include "net/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace xscale::net {

std::vector<double> max_min_rates(const std::vector<double>& capacities,
                                  const std::vector<std::vector<int>>& paths,
                                  const std::vector<double>* weights,
                                  SolveStats* stats) {
  const std::size_t nf = paths.size();
  std::vector<double> rate(nf, 0.0);
  if (nf == 0) return rate;

  // Malformed inputs must not silently become garbage rates (NaN capacities
  // survive the share arithmetic as 0 via std::max, and with -DNDEBUG the old
  // bare assert vanished entirely). These checks hold in release builds.
  for (double c : capacities)
    if (!std::isfinite(c) || c < 0.0)
      throw std::invalid_argument("max_min_rates: capacities must be finite and >= 0");
  if (weights) {
    if (weights->size() != nf)
      throw std::invalid_argument("max_min_rates: weights/paths size mismatch");
    for (double w : *weights)
      if (!std::isfinite(w) || w < 0.0)
        throw std::invalid_argument("max_min_rates: weights must be finite and >= 0");
  }

  // Per-link: residual capacity, total unfrozen weight, flows crossing it.
  std::vector<double> residual = capacities;
  std::vector<double> active_w(capacities.size(), 0.0);
  std::vector<std::vector<int>> flows_on(capacities.size());
  std::vector<char> frozen(nf, 0);

  auto w_of = [&](std::size_t f) { return weights ? (*weights)[f] : 1.0; };

  std::vector<int> active_links;
  for (std::size_t f = 0; f < nf; ++f) {
    assert(!paths[f].empty());
    for (int l : paths[f]) {
      if (active_w[static_cast<std::size_t>(l)] == 0.0)
        active_links.push_back(l);
      active_w[static_cast<std::size_t>(l)] += w_of(f);
      flows_on[static_cast<std::size_t>(l)].push_back(static_cast<int>(f));
    }
  }

  std::size_t remaining = nf;
  int iterations = 0;
  int bottlenecks = 0;
  while (remaining > 0) {
    ++iterations;
    // Find the smallest per-weight share among links with unfrozen flows.
    double min_share = std::numeric_limits<double>::infinity();
    for (int l : active_links) {
      const auto lu = static_cast<std::size_t>(l);
      if (active_w[lu] <= 0.0) continue;
      min_share = std::min(min_share, std::max(0.0, residual[lu]) / active_w[lu]);
    }
    // No link constrains the remaining flows (e.g. every unfrozen flow has
    // weight 0, so its links never activate): there is no finite max-min
    // allocation. Throwing beats the former `assert`, which disappeared under
    // -DNDEBUG and let the loop spin forever.
    if (!std::isfinite(min_share))
      throw std::runtime_error(
          "max_min_rates: no finite bottleneck share for remaining flows");

    // Freeze every flow crossing any link whose share ties the minimum
    // (within a relative tolerance); symmetric traffic patterns produce
    // massive ties and this collapses them into one iteration.
    const double cutoff = min_share * (1.0 + 1e-9);
    for (int l : active_links) {
      const auto lu = static_cast<std::size_t>(l);
      if (active_w[lu] <= 0.0) continue;
      if (std::max(0.0, residual[lu]) / active_w[lu] > cutoff) continue;
      ++bottlenecks;
      for (int fi : flows_on[lu]) {
        const auto fu = static_cast<std::size_t>(fi);
        if (frozen[fu]) continue;
        frozen[fu] = 1;
        rate[fu] = min_share * w_of(fu);
        --remaining;
        for (int pl : paths[fu]) {
          const auto plu = static_cast<std::size_t>(pl);
          residual[plu] -= rate[fu];
          active_w[plu] -= w_of(fu);
        }
      }
    }
    // Drop links with no remaining unfrozen flows.
    std::erase_if(active_links,
                  [&](int l) { return active_w[static_cast<std::size_t>(l)] <= 1e-12; });
  }

  if (stats) {
    stats->iterations = iterations;
    stats->bottleneck_links = bottlenecks;
  }
  return rate;
}

}  // namespace xscale::net
