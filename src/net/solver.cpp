#include "net/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "sim/parallel.hpp"

namespace xscale::net {
namespace {

// Below this many active links the serial min-scan wins; above it the scan
// is farmed out in fixed 2048-link chunks (min over doubles is exact and
// order-independent, so the parallel reduce returns the same bits).
constexpr std::size_t kParallelScanThreshold = 4096;
constexpr std::size_t kScanGrain = 2048;

void validate(const std::vector<double>& capacities,
              const std::vector<std::vector<int>>& paths,
              const std::vector<double>* weights) {
  // Malformed inputs must not silently become garbage rates (NaN capacities
  // survive the share arithmetic as 0 via std::max, and with -DNDEBUG the old
  // bare assert vanished entirely). These checks hold in release builds.
  for (double c : capacities)
    if (!std::isfinite(c) || c < 0.0)
      throw std::invalid_argument("max_min_rates: capacities must be finite and >= 0");
  if (weights) {
    if (weights->size() != paths.size())
      throw std::invalid_argument("max_min_rates: weights/paths size mismatch");
    for (double w : *weights)
      if (!std::isfinite(w) || w < 0.0)
        throw std::invalid_argument("max_min_rates: weights must be finite and >= 0");
  }
}

// Water-filling core; inputs already validated.
std::vector<double> solve_core(const std::vector<double>& capacities,
                               const std::vector<std::vector<int>>& paths,
                               const std::vector<double>* weights,
                               SolveStats* stats) {
  const std::size_t nf = paths.size();
  std::vector<double> rate(nf, 0.0);

  // Per-link: residual capacity, total unfrozen weight, flows crossing it.
  std::vector<double> residual = capacities;
  std::vector<double> active_w(capacities.size(), 0.0);
  std::vector<std::vector<int>> flows_on(capacities.size());
  std::vector<char> frozen(nf, 0);

  auto w_of = [&](std::size_t f) { return weights ? (*weights)[f] : 1.0; };

  std::vector<int> active_links;
  for (std::size_t f = 0; f < nf; ++f) {
    assert(!paths[f].empty());
    for (int l : paths[f]) {
      if (active_w[static_cast<std::size_t>(l)] == 0.0)
        active_links.push_back(l);
      active_w[static_cast<std::size_t>(l)] += w_of(f);
      flows_on[static_cast<std::size_t>(l)].push_back(static_cast<int>(f));
    }
  }

  const double inf = std::numeric_limits<double>::infinity();
  auto scan_min = [&](std::size_t b, std::size_t e) {
    double m = inf;
    for (std::size_t i = b; i < e; ++i) {
      const auto lu = static_cast<std::size_t>(active_links[i]);
      if (active_w[lu] <= 0.0) continue;
      m = std::min(m, std::max(0.0, residual[lu]) / active_w[lu]);
    }
    return m;
  };

  std::size_t remaining = nf;
  int iterations = 0;
  int bottlenecks = 0;
  while (remaining > 0) {
    ++iterations;
    // Find the smallest per-weight share among links with unfrozen flows.
    // min is exact for doubles, so chunked parallel scan == serial scan.
    const double min_share =
        active_links.size() >= kParallelScanThreshold
            ? sim::parallel_reduce(
                  active_links.size(), kScanGrain, inf, scan_min,
                  [](double a, double b) { return std::min(a, b); })
            : scan_min(0, active_links.size());
    // No link constrains the remaining flows (e.g. every unfrozen flow has
    // weight 0, so its links never activate): there is no finite max-min
    // allocation. Throwing beats the former `assert`, which disappeared under
    // -DNDEBUG and let the loop spin forever.
    if (!std::isfinite(min_share))
      throw std::runtime_error(
          "max_min_rates: no finite bottleneck share for remaining flows");

    // Freeze every flow crossing any link whose share ties the minimum
    // (within a relative tolerance); symmetric traffic patterns produce
    // massive ties and this collapses them into one iteration.
    const double cutoff = min_share * (1.0 + 1e-9);
    for (int l : active_links) {
      const auto lu = static_cast<std::size_t>(l);
      if (active_w[lu] <= 0.0) continue;
      if (std::max(0.0, residual[lu]) / active_w[lu] > cutoff) continue;
      ++bottlenecks;
      for (int fi : flows_on[lu]) {
        const auto fu = static_cast<std::size_t>(fi);
        if (frozen[fu]) continue;
        frozen[fu] = 1;
        rate[fu] = min_share * w_of(fu);
        --remaining;
        for (int pl : paths[fu]) {
          const auto plu = static_cast<std::size_t>(pl);
          residual[plu] -= rate[fu];
          active_w[plu] -= w_of(fu);
        }
      }
    }
    // Drop links with no remaining unfrozen flows.
    std::erase_if(active_links,
                  [&](int l) { return active_w[static_cast<std::size_t>(l)] <= 1e-12; });
  }

  if (stats) {
    stats->iterations = iterations;
    stats->bottleneck_links = bottlenecks;
  }
  return rate;
}

// Union-find over link ids, path-halving.
struct LinkDsu {
  std::vector<int> parent;
  explicit LinkDsu(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(b)] = a;
  }
};

}  // namespace

std::vector<double> max_min_rates(const std::vector<double>& capacities,
                                  const std::vector<std::vector<int>>& paths,
                                  const std::vector<double>* weights,
                                  SolveStats* stats) {
  if (paths.empty()) {
    if (stats) *stats = SolveStats{};
    return {};
  }
  validate(capacities, paths, weights);
  return solve_core(capacities, paths, weights, stats);
}

std::vector<double> max_min_rates_components(
    const std::vector<double>& capacities,
    const std::vector<std::vector<int>>& paths,
    const std::vector<double>* weights, SolveStats* stats) {
  const std::size_t nf = paths.size();
  if (nf == 0) {
    if (stats) *stats = SolveStats{};
    return {};
  }
  validate(capacities, paths, weights);

  // Link-connectivity union-find; two flows are coupled iff their paths
  // transitively share a link.
  LinkDsu dsu(capacities.size());
  for (const auto& p : paths) {
    assert(!p.empty());
    for (std::size_t i = 1; i < p.size(); ++i) dsu.unite(p[0], p[i]);
  }

  // Dense component ids in first-flow order — deterministic regardless of
  // thread count; each component's flow list is ascending by construction.
  std::vector<int> comp_of_root(capacities.size(), -1);
  std::vector<std::vector<int>> comp_flows;
  for (std::size_t f = 0; f < nf; ++f) {
    const int root = dsu.find(paths[f][0]);
    int& c = comp_of_root[static_cast<std::size_t>(root)];
    if (c < 0) {
      c = static_cast<int>(comp_flows.size());
      comp_flows.emplace_back();
    }
    comp_flows[static_cast<std::size_t>(c)].push_back(static_cast<int>(f));
  }

  const std::size_t nc = comp_flows.size();
  if (nc == 1) return solve_core(capacities, paths, weights, stats);

  std::vector<double> rate(nf, 0.0);
  std::vector<SolveStats> comp_stats(nc);
  sim::parallel_for(nc, 1, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::vector<int>& flows = comp_flows[c];
      // Compact subproblem: links renumbered in first-encounter order (the
      // same order the global solve would visit them, so the per-link
      // arithmetic sequence — and hence every output bit — matches).
      std::unordered_map<int, int> link_id;
      std::vector<double> sub_caps;
      std::vector<std::vector<int>> sub_paths;
      std::vector<double> sub_w;
      sub_paths.reserve(flows.size());
      if (weights) sub_w.reserve(flows.size());
      for (int f : flows) {
        const auto fu = static_cast<std::size_t>(f);
        std::vector<int> sp;
        sp.reserve(paths[fu].size());
        for (int l : paths[fu]) {
          auto [it, fresh] =
              link_id.try_emplace(l, static_cast<int>(sub_caps.size()));
          if (fresh) sub_caps.push_back(capacities[static_cast<std::size_t>(l)]);
          sp.push_back(it->second);
        }
        sub_paths.push_back(std::move(sp));
        if (weights) sub_w.push_back((*weights)[fu]);
      }
      const std::vector<double> sub_rate = solve_core(
          sub_caps, sub_paths, weights ? &sub_w : nullptr, &comp_stats[c]);
      for (std::size_t i = 0; i < flows.size(); ++i)
        rate[static_cast<std::size_t>(flows[i])] = sub_rate[i];
    }
  });

  if (stats) {
    *stats = SolveStats{};
    for (const SolveStats& cs : comp_stats) {
      stats->iterations += cs.iterations;
      stats->bottleneck_links += cs.bottleneck_links;
    }
  }
  return rate;
}

}  // namespace xscale::net
