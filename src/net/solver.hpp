// Max-min fair bandwidth allocation (progressive water-filling).
//
// Given link capacities and one path (list of link ids) per flow, computes
// the unique max-min fair rate vector: repeatedly find the most constrained
// link, freeze every flow crossing it at the link's equal share, remove that
// bandwidth, and continue. This is the steady-state a credit-based,
// congestion-managed fabric like Slingshot converges to for long flows.
#pragma once

#include <vector>

namespace xscale::net {

struct SolveStats {
  int iterations = 0;
  int bottleneck_links = 0;
};

// `capacities[l]` is the capacity of link l; `paths[f]` lists the links of
// flow f (must be non-empty, without duplicates). Optional `weights` give
// weighted fairness (a flow counting as w concurrent streams); default 1.
// Inputs are validated in all build modes: non-finite or negative capacities
// or weights throw std::invalid_argument, and an unbounded allocation (no
// link constrains a remaining flow) throws std::runtime_error.
std::vector<double> max_min_rates(const std::vector<double>& capacities,
                                  const std::vector<std::vector<int>>& paths,
                                  const std::vector<double>* weights = nullptr,
                                  SolveStats* stats = nullptr);

// Same allocation, computed by decomposing the flow graph into connected
// components (flows transitively sharing links) and solving each component
// independently on the global thread pool (sim::parallel_for). Components
// never exchange bandwidth, so the union of per-component solutions equals
// the global solution — the incremental FlowSim re-solve has relied on that
// bit-for-bit since PR 1. Determinism: component ids are assigned in
// first-flow order, rates are written to index-disjoint slots, and `stats`
// are summed in ascending component id — output is byte-identical for any
// thread count, including 1. `stats->iterations` counts the per-component
// total, which can exceed the single-solve count (ties across unrelated
// components no longer collapse into one global iteration).
std::vector<double> max_min_rates_components(
    const std::vector<double>& capacities,
    const std::vector<std::vector<int>>& paths,
    const std::vector<double>* weights = nullptr,
    SolveStats* stats = nullptr);

}  // namespace xscale::net
