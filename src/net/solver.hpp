// Max-min fair bandwidth allocation (progressive water-filling).
//
// Given link capacities and one path (list of link ids) per flow, computes
// the unique max-min fair rate vector: repeatedly find the most constrained
// link, freeze every flow crossing it at the link's equal share, remove that
// bandwidth, and continue. This is the steady-state a credit-based,
// congestion-managed fabric like Slingshot converges to for long flows.
//
// The hot entry point is `max_min_rates_csr`: paths live in a flat CSR arena
// (`PathsCsr`), the transposed link->flow incidence is rebuilt into a
// caller-owned `SolveScratch` by counting sort, and a steady-state re-solve
// performs zero heap allocations once the scratch has warmed to the problem
// size (DESIGN.md §8). The `std::vector`-of-`std::vector` entry points are
// retained as thin adapters (and `max_min_rates_reference` as the original
// implementation) so differential tests can pin the CSR core bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace xscale::net {

// Parallelisation gates shared by the CSR core and FlowSim's warm-start
// solve (flowsim.cpp mirrors the core loop over its persistent incidence,
// DESIGN.md §9). Below parallel_scan_threshold active links the serial
// min-scan wins; above it the scan is farmed out in scan_grain-link chunks
// (min over doubles is exact and order-independent, so the parallel reduce
// returns the same bits). A single firing link freezing at least
// parallel_update_min flows has its residual / active-weight updates applied
// by a parallel per-link sweep instead of the serial per-flow walk. Only
// batches from ONE firing link qualify: within such a batch the subtraction
// order projected onto any other link is ascending flow id — exactly the
// transposed-incidence order — so the parallel sweep performs the same
// subtractions per link in the same order and the result is bit-identical
// to the serial path (the gates depend only on problem state, never on the
// thread count — and never on which scan kernel is dispatched).
//
// Defaults come from the ISSUE 10 crossover sweep (DESIGN.md §9 records the
// measurements and derivation). Summary: the SIMD kernel scans at ~1
// ns/link (scalar ~2), one pool fork/join region costs ~2-9 µs depending on
// host and thread count, so the 4-thread scan break-even sits at ~3-8k
// links — the pre-SIMD 4096 threshold is still mid-band and stays (a
// cheaper serial baseline RAISES the scan crossover; it does not lower it).
// The update gate moves instead: one batched-update item is a whole path's
// subtractions (~15-30 ns, ~10x a scan link), so its measured crossover is
// ~300-500 flows and the gate drops 2048 -> 512. scan_grain halves to 1024:
// a chunk is then ~1-2 µs of kernel work, still far above per-chunk
// queueing cost, with half the tail imbalance. Override via
// set_solver_tuning (only while no solve is in flight, same contract as
// sim::set_thread_count).
struct SolverTuning {
  std::size_t parallel_scan_threshold = 4096;
  std::size_t scan_grain = 1024;
  std::size_t parallel_update_min = 512;
};
const SolverTuning& solver_tuning();
void set_solver_tuning(const SolverTuning& t);

struct SolveStats {
  // int64: per-component totals accumulated across long churn runs overflow
  // 32 bits (a week-long storage campaign re-solves billions of times).
  std::int64_t iterations = 0;
  std::int64_t bottleneck_links = 0;
  // Water-filling iterations whose min-share scan crossed the
  // parallel_scan_threshold gate and ran as a chunked parallel reduce
  // (scan_engaged% in the bench counters = parallel_scans / iterations).
  std::int64_t parallel_scans = 0;
};

// Flat CSR path set: flow f's links are `link_ids[offsets[f] ..
// offsets[f+1])`. `offsets` always carries num_flows()+1 entries with
// offsets[0] == 0. Append-only between `clear()`s; the backing vectors only
// grow, so a reused PathsCsr allocates nothing once warm.
struct PathsCsr {
  std::vector<int> link_ids;
  std::vector<int> offsets{0};

  std::size_t num_flows() const { return offsets.size() - 1; }
  std::size_t nnz() const { return link_ids.size(); }

  void clear() {
    link_ids.clear();
    offsets.clear();
    offsets.push_back(0);
  }

  // Append one flow; links must be non-empty and duplicate-free.
  template <typename It>
  void push_path(It first, It last) {
    for (; first != last; ++first) link_ids.push_back(*first);
    offsets.push_back(static_cast<int>(link_ids.size()));
  }

  // Incremental append: push links one by one, then seal the flow.
  void push_link(int l) { link_ids.push_back(l); }
  void end_path() { offsets.push_back(static_cast<int>(link_ids.size())); }
};

// Caller-owned, reusable working set for `max_min_rates_csr`. Buffers are
// grown on demand and never shrunk; a solve against a problem no larger than
// any previously seen one performs zero heap allocations (the
// `net.solver.scratch_reuse` counter tracks exactly that). Solver output is
// independent of prior scratch contents, so one scratch may serve unrelated
// problems back to back (FlowSim keeps one per simulator; the adapters keep
// one per thread).
struct SolveScratch {
  // Dense link-state SoA (ISSUE 10): residual capacity and unfrozen weight
  // are indexed by POSITION in `active_links`, not by link id, so the
  // min-share scan is a branch-free sweep over two contiguous double arrays
  // (src/net/simd.hpp). `link_pos[link id]` maps back (-1 when the link is
  // not on the active list); erasures compact all three arrays in tandem,
  // preserving first-seen order.
  std::vector<double> residual;   // [active position] remaining capacity
  std::vector<double> active_w;   // [active position] unfrozen weight
  std::vector<int> active_links;  // links with unfrozen flows, first-seen order
  std::vector<int> link_pos;      // [num_links] position in active_links or -1
  std::vector<char> frozen;       // [num_flows]
  // Transposed incidence (link -> flows), rebuilt per solve by counting sort.
  std::vector<int> t_off;     // [num_links + 1]
  std::vector<int> t_cursor;  // [num_links] fill cursors
  std::vector<int> t_flow;    // [nnz]
  // Parallel rate-update support: flows frozen by the current large batch
  // carry the current epoch, so the per-link update sweep can identify them
  // without any per-solve clearing (epoch grows monotonically).
  std::vector<std::uint64_t> batch_mark;  // [num_flows]
  std::uint64_t batch_epoch = 0;
  // Set by `max_min_rates_csr`: whether the last solve had to grow any
  // buffer. Owners with deterministic call sites use it to feed the
  // `net.solver.scratch_reuse` counter (the solver itself does not count —
  // per-worker-thread scratches would make the metric thread-count
  // dependent, violating the byte-identical metrics contract).
  bool last_solve_allocated = false;
};

// Water-filling over a CSR path set. Writes one rate per flow into
// `rates_out` (size >= paths.num_flows()). Link ids must lie in
// [0, num_links); `weights` (nullable) has one entry per flow. Validation
// matches `max_min_rates`: non-finite/negative capacities or weights throw
// std::invalid_argument, an unbounded allocation throws std::runtime_error.
// Bit-for-bit identical to `max_min_rates_reference` on the same input — the
// differential suite pins this at every thread count.
void max_min_rates_csr(const double* capacities, std::size_t num_links,
                       const PathsCsr& paths, const double* weights,
                       double* rates_out, SolveStats* stats,
                       SolveScratch& scratch);

// `capacities[l]` is the capacity of link l; `paths[f]` lists the links of
// flow f (must be non-empty, without duplicates). Optional `weights` give
// weighted fairness (a flow counting as w concurrent streams); default 1.
// Thin adapter over `max_min_rates_csr` (packs the paths into a thread-local
// CSR arena); kept as the stable oracle-facing signature.
std::vector<double> max_min_rates(const std::vector<double>& capacities,
                                  const std::vector<std::vector<int>>& paths,
                                  const std::vector<double>* weights = nullptr,
                                  SolveStats* stats = nullptr);

// The original pointer-chasing implementation (vector-of-vectors incidence,
// per-solve allocations), retained as the differential oracle: the CSR core
// must match it bit-for-bit on every input — including flows with weight
// exactly 0 (both sides keep the active-link list first-seen-deduplicated;
// DESIGN.md §9 covers why that is the only input class where membership
// bookkeeping could otherwise diverge). Not a hot path.
std::vector<double> max_min_rates_reference(
    const std::vector<double>& capacities,
    const std::vector<std::vector<int>>& paths,
    const std::vector<double>* weights = nullptr, SolveStats* stats = nullptr);

// Same allocation, computed by decomposing the flow graph into connected
// components (flows transitively sharing links) and solving each component
// independently on the global thread pool (sim::parallel_for). Components
// never exchange bandwidth, so the union of per-component solutions equals
// the global solution — the incremental FlowSim re-solve has relied on that
// bit-for-bit since PR 1. Determinism: component ids are assigned in
// first-flow order, rates are written to index-disjoint slots, and `stats`
// are summed in ascending component id — output is byte-identical for any
// thread count, including 1. `stats->iterations` counts the per-component
// total, which can exceed the single-solve count (ties across unrelated
// components no longer collapse into one global iteration). Each worker
// packs its components into a thread-local CSR arena + scratch, so the
// steady-state cost is allocation-free here too.
std::vector<double> max_min_rates_components(
    const std::vector<double>& capacities,
    const std::vector<std::vector<int>>& paths,
    const std::vector<double>* weights = nullptr,
    SolveStats* stats = nullptr);

}  // namespace xscale::net
