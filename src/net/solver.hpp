// Max-min fair bandwidth allocation (progressive water-filling).
//
// Given link capacities and one path (list of link ids) per flow, computes
// the unique max-min fair rate vector: repeatedly find the most constrained
// link, freeze every flow crossing it at the link's equal share, remove that
// bandwidth, and continue. This is the steady-state a credit-based,
// congestion-managed fabric like Slingshot converges to for long flows.
#pragma once

#include <vector>

namespace xscale::net {

struct SolveStats {
  int iterations = 0;
  int bottleneck_links = 0;
};

// `capacities[l]` is the capacity of link l; `paths[f]` lists the links of
// flow f (must be non-empty, without duplicates). Optional `weights` give
// weighted fairness (a flow counting as w concurrent streams); default 1.
// Inputs are validated in all build modes: non-finite or negative capacities
// or weights throw std::invalid_argument, and an unbounded allocation (no
// link constrains a remaining flow) throws std::runtime_error.
std::vector<double> max_min_rates(const std::vector<double>& capacities,
                                  const std::vector<std::vector<int>>& paths,
                                  const std::vector<double>* weights = nullptr,
                                  SolveStats* stats = nullptr);

}  // namespace xscale::net
