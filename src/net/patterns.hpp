// Traffic pattern generators (mpiGraph shifts, GPCNeT congestor patterns).
#pragma once

#include <utility>
#include <vector>

#include "sim/parallel.hpp"
#include "sim/rng.hpp"

namespace xscale::net {

using PairList = std::vector<std::pair<int, int>>;

// mpiGraph's schedule: at step `shift`, endpoint i sends to (i + shift) % n.
// Filled in parallel with indexed writes — pair i depends only on i, so the
// list is identical at any thread count.
inline PairList shift_pattern(int n, int shift, int first = 0) {
  if (n <= 0) return {};
  PairList p(static_cast<std::size_t>(n));
  sim::parallel_for(static_cast<std::size_t>(n), 4096,
                    [&](std::size_t b, std::size_t e) {
                      for (std::size_t i = b; i < e; ++i) {
                        const int ii = static_cast<int>(i);
                        p[i] = {first + ii, first + (ii + shift) % n};
                      }
                    });
  return p;
}

// Random permutation: every endpoint sends to a distinct random peer.
inline PairList random_permutation(int n, sim::Rng& rng, int first = 0) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  // Fisher-Yates, then remove fixed points by swapping with a neighbour so
  // the result stays a permutation (no duplicate destinations).
  for (int i = n - 1; i > 0; --i)
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[rng.index(static_cast<std::uint64_t>(i + 1))]);
  for (int i = 0; i < n; ++i)
    if (perm[static_cast<std::size_t>(i)] == i)
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>((i + 1) % n)]);
  PairList p;
  p.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    if (perm[static_cast<std::size_t>(i)] != i)
      p.emplace_back(first + i, first + perm[static_cast<std::size_t>(i)]);
  return p;
}

// Incast: `sources` endpoints all target one destination.
inline PairList incast(const std::vector<int>& sources, int target) {
  PairList p;
  p.reserve(sources.size());
  for (int s : sources)
    if (s != target) p.emplace_back(s, target);
  return p;
}

// Broadcast: one source fans out to all destinations.
inline PairList broadcast(int source, const std::vector<int>& dests) {
  PairList p;
  p.reserve(dests.size());
  for (int d : dests)
    if (d != source) p.emplace_back(source, d);
  return p;
}

}  // namespace xscale::net
