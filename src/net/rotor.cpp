#include "net/rotor.hpp"

#include <stdexcept>

namespace xscale::net {

RotorSchedule::RotorSchedule(sim::Engine& eng, Fabric& fabric, FlowSim* fs)
    : eng_(eng), fabric_(fabric), fs_(fs) {
  const topo::Topology& t = fabric_.topology();
  if (!t.is_rotor())
    throw std::invalid_argument("RotorSchedule: fabric is not a rotor");
  n_matchings_ = t.rotor_matchings();
  slot_s_ = t.rotor_slot_s();
  active_capacity_ = t.rotor_active_capacity();
  matching_links_.reserve(static_cast<std::size_t>(n_matchings_));
  for (int m = 0; m < n_matchings_; ++m)
    matching_links_.push_back(t.rotor_matching_links(m));
  batch_.reserve(2 * matching_links_[0].size());
  changed_links_.reserve(2 * matching_links_[0].size());
}

void RotorSchedule::start() {
  if (has_event_ || n_matchings_ < 2) return;
  event_ = eng_.schedule_in(slot_s_, [this] { advance(); });
  has_event_ = true;
}

void RotorSchedule::stop() {
  if (!has_event_) return;
  eng_.cancel(event_);
  has_event_ = false;
}

void RotorSchedule::advance() {
  has_event_ = false;
  const int prev = slot_;
  slot_ = (slot_ + 1) % n_matchings_;
  ++transitions_;

  batch_.clear();
  changed_links_.clear();
  for (int l : matching_links_[static_cast<std::size_t>(prev)]) {
    batch_.emplace_back(l, 0.0);
    changed_links_.push_back(l);
  }
  for (int l : matching_links_[static_cast<std::size_t>(slot_)]) {
    batch_.emplace_back(l, active_capacity_);
    changed_links_.push_back(l);
  }
  // One batched override == one epoch bump for the whole slot; the epoch
  // moves BEFORE the simulator is woken, so its warm memo and
  // single-bottleneck summary see the staleness immediately.
  fabric_.set_link_capacities(batch_);
  if (fs_) fs_->notify_capacity_change(changed_links_);

  // Keep rotating only while something can still make progress: flows remain
  // active (possibly stalled, waiting for their matching to come back) or
  // other events are queued. Otherwise let the engine drain.
  const bool idle =
      (fs_ == nullptr || fs_->active_flows() == 0) && eng_.pending_events() == 0;
  if (idle) return;
  event_ = eng_.schedule_in(slot_s_, [this] { advance(); });
  has_event_ = true;
}

}  // namespace xscale::net
