// Event-driven flow dynamics on top of the steady-state fabric model.
//
// Each active flow owns a path through the fabric; whenever the active set
// changes, rates are re-solved (max-min fair) and the next completion event
// is rescheduled. This gives byte-accurate completion times for overlapping
// transfers — used by the storage campaign simulator and application traces,
// where flows start and finish at different times.
//
// Rate resolution is *incremental*: the simulator keeps per-link active-flow
// sets, marks the links of every added/removed flow dirty, and re-runs
// water-filling only over the connected component of flows reachable from a
// dirty link (flows in other components share no links with it, so their
// max-min rates are provably unchanged — the global solution is the union of
// per-component solutions). When the affected component exceeds a configured
// fraction of the active set, it falls back to the full `max_min_rates`
// solve, which also serves as the reference oracle in the differential tests
// (tests/test_flowsim.cpp asserts bit-for-bit equality on randomized churn).
//
// Storage is flat (DESIGN.md §8): flows live in a slot arena with a free
// list, per-link incidence holds slot indices, and the restricted re-solve
// packs into a persistent `PathsCsr` + `SolveScratch` — so a steady-state
// churn event (complete one flow, start another, re-solve the component)
// performs zero heap allocations once the arena has warmed. Byte accrual is
// lazy: a flow's `remaining` is only materialised when its rate changes
// (rates for untouched components are bitwise unchanged, so skipping them is
// exact, and incremental and full modes accrue on identical schedules —
// which keeps their completion times bit-for-bit equal).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace xscale::net {

// What to do with a flow whose solved rate is zero (every path through a
// failed link): `Stall` parks it visibly (it holds its links and is counted
// by `stalled_flows()`, recovering if capacity returns); `Drop` removes it
// immediately and reports it through the `on_stall` hook — its completion
// callback never fires. The old behaviour silently trickled such flows at
// 1 B/s, hiding the failure for simulated centuries.
enum class StallPolicy { Stall, Drop };

struct FlowSimConfig {
  bool incremental = true;
  // Hand the resolve to a whole-set solve when the affected component holds
  // more than this fraction of the active flows (the restricted solve would
  // not be cheaper).
  double fallback_fraction = 0.5;
  // Above the fallback fraction, re-solve the whole active set *in place*
  // over the persistently maintained flow/link incidence (warm start,
  // DESIGN.md §9): no BFS completion, no id sort, no CSR repack, plus a
  // solution memo and a removal-only frozen-prefix replay. Rates are
  // bit-identical to the cold path. `false` restores the PR 5 behaviour —
  // a cold full re-solve — which stays available as the reference oracle.
  bool warm_start = true;
  // Apply solver results through the change-list write-back (DESIGN.md §9):
  // only flows whose computed rate differs from the applied rate reach
  // `set_rate`, and same-instant uniform (single-bottleneck) rates coalesce
  // lazily, materialising once per distinct timestamp. `false` restores the
  // whole-set write — the reference for the write-back differential tests.
  bool incremental_writeback = true;
  StallPolicy stall_policy = StallPolicy::Stall;
};

class FlowSim {
 public:
  using Done = std::function<void()>;
  using StallHook = std::function<void(std::uint64_t flow_id)>;

  FlowSim(sim::Engine& eng, const Fabric& fabric, FlowSimConfig cfg = {})
      : eng_(eng), fabric_(fabric), cfg_(cfg),
        rng_(fabric.config().seed ^ 0xF10Full) {}

  // Start a flow of `bytes` from endpoint `src` to `dst`; `on_done` fires at
  // the simulated completion time (transfer time only; callers add software
  // overheads and propagation latency). Routes directly into the slot's
  // reusable path buffer (allocation-free on minimal routing).
  std::uint64_t start(int src, int dst, double bytes, Done on_done);

  // Start a flow along an explicit path (e.g. storage traffic to OST
  // endpoints with custom capacities).
  std::uint64_t start_on_path(std::vector<int> path, double bytes, Done on_done);

  std::size_t active_flows() const { return active_count_; }

  // The fabric overlay's capacities changed out-of-band (a RotorSchedule slot
  // transition, a fabric-manager sweep): mark the given links dirty and
  // re-resolve now. This is how stalled flows on a re-priced link wake up —
  // they hold their links, so the dirty-link BFS reaches them even though no
  // flow was added or removed. Links not carried by any active flow are
  // ignored; out-of-range ids throw. The caller bumps the overlay epoch
  // (set_link_capacity/set_link_capacities) *before* calling this, which is
  // what retires the warm memo and the single-bottleneck summary.
  void notify_capacity_change(const std::vector<int>& links);

  // Zero-rate flows currently parked (StallPolicy::Stall) / removed so far
  // (StallPolicy::Drop). Stalled flows still count as active.
  std::size_t stalled_flows() const { return stalled_; }
  std::uint64_t dropped_flows() const { return dropped_; }
  void on_stall(StallHook hook) { stall_hook_ = std::move(hook); }

  // Solver-effort accounting, fed by every resolve; plumbed into
  // bench/micro_flowsim and the heap-churn tests.
  struct Stats {
    std::uint64_t resolves = 0;          // resolve passes over a non-empty set
    std::uint64_t full_solves = 0;       // whole-set solves (incremental off)
    std::uint64_t fallback_solves = 0;   // threshold exceeded, cold full solve
    std::uint64_t warm_solves = 0;       // threshold exceeded, warm-start solve
    std::uint64_t warm_single_hits = 0;  // single-bottleneck closed-form solves
    std::uint64_t warm_memo_hits = 0;    // warm solves replayed from the memo
    std::uint64_t warm_memo_stale = 0;   // memo generations skipped: epoch moved
    std::uint64_t warm_prefix_hits = 0;  // warm solves that replayed a prefix
    std::uint64_t component_solves = 0;  // restricted re-solves
    std::uint64_t flows_solved = 0;      // flows handed to the solver, total
    std::uint64_t frontier_flows = 0;    // flows actually iterated warm-start
    std::uint64_t solver_iterations = 0;
    std::uint64_t bottleneck_links = 0;
    // Water-filling iterations whose min-share scan crossed the
    // SolverTuning::parallel_scan_threshold gate and ran as a chunked
    // parallel reduce over the dense SoA (scan_engaged% in the bench
    // counters = parallel_scans / solver_iterations).
    std::uint64_t parallel_scans = 0;
    std::uint64_t largest_component = 0;
    // Rate write-back accounting: `applied` counts solver results that
    // actually changed a flow's rate (a `set_rate` that does work),
    // `skipped` counts results proven no-ops (the flow already held the
    // computed rate). applied + skipped == flows handed a result.
    std::uint64_t writeback_applied = 0;
    std::uint64_t writeback_skipped = 0;
    // Single-bottleneck verification scans: `minshare_incr` resolved the
    // verdict from the incremental per-link share summary (touching only
    // links incident to churned flows); `minshare_full` fell back to the
    // full O(live links) scan (summary invalid or inconclusive).
    std::uint64_t minshare_incr = 0;
    std::uint64_t minshare_full = 0;
  };
  const Stats& stats() const { return stats_; }
  const FlowSimConfig& config() const { return cfg_; }

  // Diagnostic/test hook: visits every active flow in ascending id order
  // (the differential tests rebuild the oracle problem from this).
  // `remaining` is reported as of the current simulated time.
  void for_each_flow(
      const std::function<void(std::uint64_t id, const std::vector<int>& path,
                               double remaining, double rate)>& fn) const;

 private:
  // One arena slot. id == 0 marks a free slot; `path` and `on_done` keep
  // their buffers across reuse so churn stops allocating once warm.
  struct Flow {
    std::uint64_t id = 0;
    double remaining = 0;
    double rate = 0;
    double accrued_at = 0;   // sim time `remaining` was last materialised at
    double start_time = 0;   // obs: span begin for the flow's lifetime
    double total_bytes = 0;  // obs: recorded on the completion span
    bool stalled = false;
    std::uint64_t visit_epoch = 0;  // BFS stamp for component discovery
    std::vector<int> path;
    Done on_done;
  };

  void ensure_sized();
  int alloc_slot();
  std::uint64_t start_slot(int slot, double bytes, Done on_done);
  void mark_dirty(int link);
  void clear_dirty();
  // Bytes drained at simulated time `t` but not yet subtracted from
  // `remaining` (the write-back happens in `accrue`).
  double remaining_at(const Flow& f, double t) const {
    return f.remaining - f.rate * (t - f.accrued_at);
  }
  void accrue(Flow& f);
  void insert_flow_links(int slot, const Flow& f);
  void remove_flow(int slot);  // unlinks + frees the slot; marks links dirty
  void set_rate(std::uint64_t id, Flow& f, double rate);
  // Fills `comp_slots_` with the slots of every flow reachable from the
  // dirty links via shared-link adjacency, ascending flow-id order. When
  // `max_flows` >= 0 the BFS stops (and skips the sort — `comp_truncated_`
  // is set, the contents are only a size witness) as soon as the component
  // provably exceeds the fallback threshold.
  void affected_component(double max_flows);
  // Whole-active-set warm-start solve (DESIGN.md §9): memo lookup, then
  // removal-only frozen-prefix replay, then in-place water-filling over the
  // persistent flow/link incidence. Bit-identical to the cold full solve.
  void warm_solve(SolveStats* ss);
  void warm_record_removal(int slot);
  bool warm_memo_lookup();  // true on hit; rates already applied
  // Single-bottleneck closed form: if exactly one live link fires under the
  // water-filling cutoff computed against the *initial* state and every
  // active flow crosses it, the whole solve collapses to rate = min_share
  // for everyone — order-independent, so it is checked and applied without
  // the O(flows x hops) passes. True on hit; rates already applied.
  bool warm_single_bottleneck(SolveStats* ss);
  // Incremental single-bottleneck verdict from the per-link share summary,
  // touching only this resolve's dirty links. 1 = single bottleneck (the
  // uniform rate is now pending, lazily materialised); 0 = conclusively not
  // single-bottleneck (the full verification scan can be skipped); -1 =
  // summary insufficient, run the full O(live links) scan.
  int try_single_incremental(SolveStats* ss);
  // Apply the pending uniform rate (accruals as of `pending_time_`,
  // bit-identical to the eager per-resolve application it coalesced).
  void materialize_pending();
  // `remaining` under the pending uniform rate without materialising it.
  double remaining_eff_at(const Flow& f, double t) const;
  void note_writeback(std::uint64_t applied, std::uint64_t skipped);
  // Same, seeded from one flow under the caller's visit epoch — the full
  // solve sweeps components with this so fallbacks stay allocation-free.
  void component_from(int seed);
  void solve_component(const std::vector<int>& comp, SolveStats* ss);
  void resolve_and_schedule();

  sim::Engine& eng_;
  const Fabric& fabric_;
  FlowSimConfig cfg_;
  sim::Rng rng_;
  std::vector<Flow> slots_;
  std::vector<int> free_slots_;
  std::size_t active_count_ = 0;
  std::vector<int> link_load_;  // adaptive-routing load proxy
  std::vector<std::vector<int>> flows_on_link_;  // slot indices
  std::vector<char> link_dirty_;
  std::vector<int> dirty_links_;
  std::vector<std::uint64_t> link_visit_epoch_;
  std::uint64_t visit_epoch_ = 0;
  // Persistent working set for the restricted solve and the event handler —
  // grow-only, reused every resolve (the zero-allocation contract).
  std::vector<int> link_local_id_;
  std::vector<std::uint64_t> link_remap_epoch_;
  std::uint64_t remap_epoch_ = 0;
  std::vector<double> comp_caps_;
  PathsCsr comp_csr_;
  std::vector<double> comp_rates_;
  SolveScratch solve_scratch_;
  std::vector<int> comp_slots_;
  std::vector<int> link_q_;      // BFS frontier
  std::vector<int> order_;       // full solve: active slots by ascending id
  bool comp_truncated_ = false;  // affected_component stopped at max_flows
  // --- warm start (DESIGN.md §9) ----------------------------------------
  // Active slots in ascending flow-id order, maintained incrementally
  // (append on start — ids are monotonic — ordered erase on removal). This
  // is exactly the order the cold full solve visits flows in, so the warm
  // pass can skip the per-resolve rebuild + sort.
  std::vector<int> active_order_;
  // Links with at least one active crosser, maintained incrementally (append
  // on first insert, lazily compacted when a scan meets an emptied link).
  // Only the *set* is meaningful — order is unspecified — which is exactly
  // enough for the order-free single-bottleneck scan.
  std::vector<int> live_links_;
  std::vector<char> live_link_in_;          // [link] membership flag
  // Dense link-state SoA for the warm water-filling loop (ISSUE 10):
  // warm_resid_/warm_aw_ are indexed by POSITION in warm_links_, kept
  // contiguous for the branch-free min-share scan kernel (net/simd.hpp);
  // link_local_id_ under the current remap epoch maps link id -> position,
  // and compaction rewrites all three in tandem.
  std::vector<int> warm_links_;             // touched links, first-seen order
  std::vector<double> warm_resid_;          // [position] residual capacity
  std::vector<double> warm_aw_;             // [position] unfrozen crossers
  std::vector<double> warm_rate_;           // [slot] rate solved this pass
  std::vector<std::uint64_t> warm_frozen_;  // [slot] == warm_pass_: frozen
  std::vector<std::uint64_t> warm_batch_;   // [slot] parallel-update stamp
  std::uint64_t warm_pass_ = 0;
  std::uint64_t warm_batch_epoch_ = 0;
  // Frozen-prefix metadata from the previous warm solve (freeze order and
  // 1-based freeze level per slot), valid while `warm_meta_ok_` holds and
  // the delta since then is removal-only with min removed level > 1.
  std::vector<int> warm_level_;     // [slot]
  std::vector<int> warm_seq_;       // slots in freeze order
  std::vector<int> warm_seq_lvl_;   // freeze level per warm_seq_ entry
  std::vector<int> warm_seq2_;      // double buffer for prefix rebuild
  std::vector<int> warm_seq2_lvl_;
  bool warm_meta_ok_ = false;
  std::uint64_t warm_cap_epoch_ = 0;
  int delta_min_level_ = 0;      // 0 = no removals since last warm solve
  bool delta_has_add_ = false;
  bool delta_meta_broken_ = false;
  // Two-generation solution memo keyed on the exact member path stream (id
  // order) + capacity epoch: repeated traffic shapes replay their rate
  // vector wholesale with an empty frontier.
  struct WarmMemo {
    bool valid = false;
    std::uint64_t cap_epoch = 0;
    std::vector<int> stream;    // concatenated member paths, id order
    std::vector<int> offsets;   // [members + 1] into stream
    std::vector<double> rates;  // per member, id order
  };
  WarmMemo memo_[2];
  int memo_next_ = 0;
  // --- incremental write-back (DESIGN.md §9) ----------------------------
  // Change-list the warm water-filling loop builds while freezing: slots
  // whose computed rate differs from the currently applied rate (or that
  // must stall). The final write-back touches only these.
  std::vector<int> changed_slots_;
  // Lazy uniform rate: a successful single-bottleneck resolve parks its
  // (rate, time) here instead of writing every flow. Same-instant re-solves
  // overwrite it (zero-width rate segments perform no accrual arithmetic in
  // the eager path either, so coalescing is bitwise exact); any read or
  // later-time resolve materialises it first. `pending_mixed_` records
  // whether more than one distinct value was parked this instant — if so,
  // the eager path would have accrued every flow at `pending_time_`, so the
  // materialisation must too.
  bool pending_uniform_ = false;
  double pending_rate_ = 0.0;
  double pending_time_ = 0.0;
  double pending_first_ = 0.0;
  bool pending_mixed_ = false;
  // Per-link min-share summary: exact top-2 of max(0,c)/crossers over live
  // links, maintained across resolves so the single-bottleneck verification
  // touches only dirty links. Invalidated whenever a resolve ends without
  // refreshing it (component/full solves, drops after the verdict) or the
  // capacity epoch moves.
  bool sb_valid_ = false;
  bool sb_updated_ = false;    // summary refreshed during this resolve
  bool sb_skip_full_ = false;  // incremental verdict: conclusive "no"
  std::uint64_t sb_cap_epoch_ = 0;
  double sb_min1_ = 0.0, sb_min2_ = 0.0;
  int sb_l1_ = -1, sb_l2_ = -1;
  std::vector<int> dropped_slots_;
  std::vector<std::uint64_t> dropped_ids_;
  std::vector<int> done_slots_;
  std::vector<Done> done_callbacks_;
  std::size_t stalled_ = 0;
  std::uint64_t dropped_ = 0;
  StallHook stall_hook_;
  Stats stats_;
  std::uint64_t next_id_ = 1;
  std::uint64_t pending_event_ = 0;
  bool has_pending_event_ = false;
};

}  // namespace xscale::net
