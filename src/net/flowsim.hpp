// Event-driven flow dynamics on top of the steady-state fabric model.
//
// Each active flow owns a path through the fabric; whenever the active set
// changes, rates are re-solved (max-min fair) and the next completion event
// is rescheduled. This gives byte-accurate completion times for overlapping
// transfers — used by the storage campaign simulator and application traces,
// where flows start and finish at different times.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace xscale::net {

class FlowSim {
 public:
  using Done = std::function<void()>;

  FlowSim(sim::Engine& eng, const Fabric& fabric)
      : eng_(eng), fabric_(fabric), rng_(fabric.config().seed ^ 0xF10Full) {}

  // Start a flow of `bytes` from endpoint `src` to `dst`; `on_done` fires at
  // the simulated completion time (transfer time only; callers add software
  // overheads and propagation latency).
  std::uint64_t start(int src, int dst, double bytes, Done on_done);

  // Start a flow along an explicit path (e.g. storage traffic to OST
  // endpoints with custom capacities).
  std::uint64_t start_on_path(std::vector<int> path, double bytes, Done on_done);

  std::size_t active_flows() const { return flows_.size(); }

 private:
  struct Flow {
    std::vector<int> path;
    double remaining = 0;
    double rate = 0;
    Done on_done;
  };

  void advance_to_now();
  void resolve_and_schedule();

  sim::Engine& eng_;
  const Fabric& fabric_;
  sim::Rng rng_;
  std::unordered_map<std::uint64_t, Flow> flows_;
  std::vector<int> link_load_;  // adaptive-routing load proxy
  std::uint64_t next_id_ = 1;
  std::uint64_t pending_event_ = 0;
  bool has_pending_event_ = false;
  double last_update_ = 0;
};

}  // namespace xscale::net
