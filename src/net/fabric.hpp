// The fabric: topology + routing + bandwidth sharing + congestion control.
//
// This is the model behind Figure 6 (mpiGraph histograms), Table 5 (GPCNeT)
// and every application communication estimate. It computes *steady-state*
// max-min fair rates for a set of concurrent flows; the event-driven
// `FlowSim` (flowsim.hpp) layers byte-counted dynamics on top for I/O and
// app traces.
//
// Since ISSUE 7 a Fabric is a thin pair (DESIGN.md §10):
//
//   * an immutable, shareable `TopologySnapshot` (snapshot.hpp) holding the
//     topology, base capacities and the two-level minimal-route cache —
//     filled lazily, NEVER invalidated, readable from any number of threads
//     and sessions concurrently; and
//   * a cheap per-session `FabricOverlay` holding only this scenario's
//     failed-link set and capacity deltas, with copy-on-write effective
//     capacities and a per-overlay `capacity_epoch()`.
//
// `fail_link`/`restore_link` therefore mutate *only this fabric's overlay*:
// sibling fabrics sharing the snapshot see no capacity change, no epoch bump
// and no route-cache invalidation (there is nothing to invalidate — the
// shared cache holds failure-free routes; an overlay with failed global
// bundles recomputes just the broken paths on the fly). Both calls are
// idempotent and bounds-checked: failing an already-failed link or restoring
// a live one is a no-op that leaves the epoch — and every consumer memo keyed
// on it — untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/snapshot.hpp"
#include "net/solver.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace xscale::net {

// Per-session copy-on-write view over a shared snapshot: the scenario's
// failed links and capacity overrides, nothing else. Construction is O(1);
// the dense flag/capacity vectors materialise on the first mutation and are
// reused (grow-only) across `clear()`s. Not thread-safe for mutation — an
// overlay belongs to one session, like the simulator state it feeds.
class FabricOverlay {
 public:
  explicit FabricOverlay(std::shared_ptr<const TopologySnapshot> snap);

  const TopologySnapshot& snapshot() const { return *snap_; }
  const std::shared_ptr<const TopologySnapshot>& snapshot_ptr() const {
    return snap_;
  }

  // Base capacities until the first mutation, the overlay's private
  // copy-on-write vector afterwards.
  const std::vector<double>& effective_capacities() const {
    return cow_cap_.empty() ? snap_->base_capacities() : cow_cap_;
  }

  bool is_failed(int link_id) const {
    return !failed_.empty() && failed_[check_link(link_id)] != 0;
  }
  int failed_links() const { return static_cast<int>(failed_ids_.size()); }
  int failed_global_links() const { return failed_globals_; }
  // Failed link ids in fail order (stable across restores of other links).
  const std::vector<int>& failed_link_ids() const { return failed_ids_; }

  // Bumped on every *effective* mutation (fail, restore, capacity override,
  // clear). No-ops — repeated fails, restores of live links, overriding with
  // the value already in place — do not bump it, so consumer memos keyed on
  // the epoch (FlowSim's warm-start memo) survive redundant calls.
  std::uint64_t capacity_epoch() const { return cap_epoch_; }

  // All return whether anything changed (false = no-op). Out-of-range link
  // ids throw std::out_of_range.
  bool fail_link(int link_id);
  bool restore_link(int link_id);
  // Scenario capacity override in B/s (applied instead of the base capacity;
  // a failed link stays at 0 until restored, then takes the override). The
  // value is NOT validated here — the solver rejects non-finite/negative
  // capacities at resolve time, which the fault-injection tests rely on.
  bool set_link_capacity(int link_id, double capacity);
  // Batched capacity overrides: applies every (link, capacity) pair but bumps
  // the epoch AT MOST ONCE for the whole batch (zero times if every pair is a
  // no-op). A rotor slot transition re-prices one matching off and another on
  // through this call, so consumer memos see exactly one staleness event per
  // slot instead of one per link.
  bool set_link_capacities(const std::vector<std::pair<int, double>>& updates);
  // Remove a capacity override, returning the link to its base capacity.
  bool clear_link_capacity(int link_id);
  // Restore every failure and override in one call (one epoch bump).
  bool clear();

  const std::vector<std::pair<int, double>>& capacity_overrides() const {
    return overrides_;
  }

  // Dense failed-flag view for routing, or nullptr when no failed *global*
  // bundle exists (routing only ever detours around those, so local and
  // terminal failures keep every lookup on the shared cache).
  const std::vector<char>* routing_failure_view() const {
    return failed_globals_ > 0 ? &failed_ : nullptr;
  }

 private:
  std::size_t check_link(int link_id) const;
  bool set_capacity_no_bump(int link_id, double capacity);
  void materialize();
  double restored_capacity(int link_id) const;

  std::shared_ptr<const TopologySnapshot> snap_;
  std::vector<char> failed_;    // dense flags; empty until the first fail
  std::vector<int> failed_ids_;
  std::vector<std::pair<int, double>> overrides_;  // (link, capacity)
  std::vector<double> cow_cap_;  // empty until the first mutation
  int failed_globals_ = 0;
  std::uint64_t cap_epoch_ = 0;
};

class Fabric {
 public:
  // Builds a private snapshot (the classic single-scenario constructor).
  Fabric(topo::Topology topology, FabricConfig cfg);
  // Opens a session over an existing shared snapshot: O(1), no topology
  // copy, no route-cache build — the serving layer opens one per scenario.
  explicit Fabric(std::shared_ptr<const TopologySnapshot> snapshot);
  ~Fabric();
  Fabric(Fabric&&) noexcept;
  Fabric& operator=(Fabric&&) noexcept;

  const topo::Topology& topology() const { return snap_->topology(); }
  const FabricConfig& config() const { return snap_->config(); }
  const std::shared_ptr<const TopologySnapshot>& snapshot() const {
    return snap_;
  }
  FabricOverlay& overlay() { return overlay_; }
  const FabricOverlay& overlay() const { return overlay_; }

  // Route one flow. Adaptive routing consults `global_load` (flows currently
  // assigned per link) when provided.
  std::vector<int> route(int src_ep, int dst_ep, sim::Rng& rng,
                         const std::vector<int>* global_load = nullptr) const;

  // Same, writing into a caller-owned vector (cleared first). A cached
  // minimal route lands here without any allocation once `out` has warmed to
  // the path length — the FlowSim hot path relies on that.
  void route_into(int src_ep, int dst_ep, sim::Rng& rng,
                  const std::vector<int>* global_load,
                  std::vector<int>& out) const;

  // Routes every pair (adaptive decisions see earlier flows' load) and
  // solves for steady-state max-min rates (B/s per flow). Optional `weights`
  // let one flow stand in for several ranks sharing a NIC (weighted
  // fairness); optional `paths_out` returns the chosen paths (for ablation).
  // `rate_caps` (optional, 0 = uncapped) bound a flow's offered load — e.g.
  // message-rate-limited congestors that cannot saturate their NIC. Caps are
  // realized as per-flow virtual links, so capped flows still take part in
  // max-min fairness.
  std::vector<double> steady_rates(const std::vector<std::pair<int, int>>& pairs,
                                   const std::vector<double>* weights = nullptr,
                                   std::vector<std::vector<int>>* paths_out = nullptr,
                                   const std::vector<double>* rate_caps = nullptr) const;

  // One-way zero-load latency over the minimal path (failure detours apply).
  double base_latency(int src_ep, int dst_ep) const;
  int minimal_hops(int src_ep, int dst_ep) const;

  // Effective link capacities after NIC efficiency and this fabric's overlay
  // (indexed by link id).
  const std::vector<double>& effective_capacities() const {
    return overlay_.effective_capacities();
  }

  // --- fabric manager (§3.4.2) -------------------------------------------------
  // The Slingshot Fabric Manager sweeps for failures and pushes new routing
  // tables. Failing a global bundle makes minimal routing between its two
  // groups fall back to a one-intermediate-group detour; failing a local or
  // terminal link degrades its capacity to zero. Both touch only this
  // fabric's overlay: idempotent, bounds-checked, invisible to sibling
  // fabrics on the same snapshot. Return whether anything changed. Overlay
  // mutation must not race this fabric's own routing/solving (per-session
  // single-writer, as always); the shared snapshot needs no such care.
  bool fail_link(int link_id) { return overlay_.fail_link(link_id); }
  bool restore_link(int link_id) { return overlay_.restore_link(link_id); }
  // Scenario capacity override (see FabricOverlay::set_link_capacity).
  bool set_link_capacity(int link_id, double capacity) {
    return overlay_.set_link_capacity(link_id, capacity);
  }
  // Batched overrides, one epoch bump (see FabricOverlay::set_link_capacities).
  bool set_link_capacities(const std::vector<std::pair<int, double>>& updates) {
    return overlay_.set_link_capacities(updates);
  }
  bool clear_link_capacity(int link_id) {
    return overlay_.clear_link_capacity(link_id);
  }
  bool is_failed(int link_id) const { return overlay_.is_failed(link_id); }
  int failed_links() const { return overlay_.failed_links(); }

  // Bumped on every effective overlay mutation — per-overlay, never global.
  // Consumers that cache anything derived from `effective_capacities()`
  // (FlowSim's warm-start memo and frozen-prefix metadata) compare epochs
  // instead of diffing the vector; sibling sessions' epochs never move.
  std::uint64_t capacity_epoch() const { return overlay_.capacity_epoch(); }

 private:
  void apply_hol_blocking(const std::vector<std::vector<int>>& paths,
                          std::vector<double>& rates) const;

  std::shared_ptr<const TopologySnapshot> snap_;
  FabricOverlay overlay_;
};

}  // namespace xscale::net
