// The fabric: topology + routing + bandwidth sharing + congestion control.
//
// This is the model behind Figure 6 (mpiGraph histograms), Table 5 (GPCNeT)
// and every application communication estimate. It computes *steady-state*
// max-min fair rates for a set of concurrent flows; the event-driven
// `FlowSim` (flowsim.hpp) layers byte-counted dynamics on top for I/O and
// app traces.
//
// Routing is memoised (DESIGN.md §8): minimal paths are served from a
// two-level route cache — a dense switch-pair table (lazily filled, one
// entry per ordered switch pair, gated to topologies small enough for it)
// plus a direct-mapped endpoint-pair map holding full link lists — so
// repeated patterns (mpiGraph shifts, GPCNeT cohorts, storage campaigns,
// FlowSim churn) stop re-deriving dragonfly routes per flow. The cache is
// invalidated wholesale on fail_link/restore_link and is safe to hit from
// concurrent steady_rates callers; cached paths are bit-identical to fresh
// computation (the route-invariant property tests pin this). Disable with
// FabricConfig::route_cache = false.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/solver.hpp"
#include "sim/rng.hpp"
#include "topo/topology.hpp"

namespace xscale::net {

enum class Routing {
  Minimal,   // shortest path only
  Valiant,   // always detour via a random intermediate group
  Adaptive,  // UGAL-style per-flow choice between the two
};

const char* to_string(Routing r);

struct FabricConfig {
  Routing routing = Routing::Adaptive;
  // Slingshot hardware congestion control (§4.2.2). When on, flows receive
  // their max-min fair share regardless of other traffic (victim isolation).
  // When off, head-of-line blocking couples flows that share a switch with an
  // oversubscribed link.
  bool congestion_control = true;
  // Fraction of wire rate a NIC sustains end-to-end (protocol/header
  // overheads); applied to terminal link capacities.
  double nic_efficiency = 0.70;
  // UGAL bias: take the non-minimal path when the minimal global link already
  // carries more than `ugal_threshold` times the flows of the detour path.
  double ugal_threshold = 2.0;
  // Memoise (src, dst) -> link-list expansion; off forces every route to be
  // computed fresh (the cache-vs-fresh differential tests use this).
  bool route_cache = true;
  std::uint64_t seed = 0xF2011EA5;
};

class Fabric {
 public:
  Fabric(topo::Topology topology, FabricConfig cfg);
  ~Fabric();
  Fabric(Fabric&&) noexcept;
  Fabric& operator=(Fabric&&) noexcept;

  const topo::Topology& topology() const { return topo_; }
  const FabricConfig& config() const { return cfg_; }

  // Route one flow. Adaptive routing consults `global_load` (flows currently
  // assigned per link) when provided.
  std::vector<int> route(int src_ep, int dst_ep, sim::Rng& rng,
                         const std::vector<int>* global_load = nullptr) const;

  // Same, writing into a caller-owned vector (cleared first). A cached
  // minimal route lands here without any allocation once `out` has warmed to
  // the path length — the FlowSim hot path relies on that.
  void route_into(int src_ep, int dst_ep, sim::Rng& rng,
                  const std::vector<int>* global_load,
                  std::vector<int>& out) const;

  // Routes every pair (adaptive decisions see earlier flows' load) and
  // solves for steady-state max-min rates (B/s per flow). Optional `weights`
  // let one flow stand in for several ranks sharing a NIC (weighted
  // fairness); optional `paths_out` returns the chosen paths (for ablation).
  // `rate_caps` (optional, 0 = uncapped) bound a flow's offered load — e.g.
  // message-rate-limited congestors that cannot saturate their NIC. Caps are
  // realized as per-flow virtual links, so capped flows still take part in
  // max-min fairness.
  std::vector<double> steady_rates(const std::vector<std::pair<int, int>>& pairs,
                                   const std::vector<double>* weights = nullptr,
                                   std::vector<std::vector<int>>* paths_out = nullptr,
                                   const std::vector<double>* rate_caps = nullptr) const;

  // One-way zero-load latency over the minimal path.
  double base_latency(int src_ep, int dst_ep) const;
  int minimal_hops(int src_ep, int dst_ep) const;

  // Effective link capacities after NIC efficiency (indexed by link id).
  const std::vector<double>& effective_capacities() const { return eff_cap_; }

  // --- fabric manager (§3.4.2) -------------------------------------------------
  // The Slingshot Fabric Manager sweeps for failures and pushes new routing
  // tables. Failing a global bundle makes minimal routing between its two
  // groups fall back to a one-intermediate-group detour; failing a local or
  // terminal link degrades its capacity to zero. Both invalidate the route
  // cache (like a fabric-manager table push); they must not race concurrent
  // routing, the same contract the capacity update always had.
  void fail_link(int link_id);
  void restore_link(int link_id);
  bool is_failed(int link_id) const { return failed_[static_cast<std::size_t>(link_id)] != 0; }
  int failed_links() const;

  // Bumped on every fail_link/restore_link. Consumers that cache anything
  // derived from `effective_capacities()` (FlowSim's warm-start memo and
  // frozen-prefix metadata) compare epochs instead of diffing the vector.
  std::uint64_t capacity_epoch() const { return cap_epoch_; }

 private:
  struct RouteCache;  // defined in fabric.cpp

  std::vector<int> minimal_path(int src_ep, int dst_ep) const;
  void minimal_path_into(int src_ep, int dst_ep, std::vector<int>& out) const;
  void minimal_path_fresh(int src_ep, int dst_ep, std::vector<int>& out) const;
  // Switch-switch portion of the minimal path (<= 5 links); returns the
  // count written to `out5`. Throws when no live inter-group route exists.
  int compute_switch_segment(int sa, int sb, int* out5) const;
  void append_switch_segment(int sa, int sb, std::vector<int>& out) const;
  std::vector<int> valiant_path(int src_ep, int dst_ep, sim::Rng& rng) const;
  void apply_hol_blocking(const std::vector<std::vector<int>>& paths,
                          std::vector<double>& rates) const;
  void reset_route_cache();

  topo::Topology topo_;
  FabricConfig cfg_;
  std::vector<double> eff_cap_;
  std::vector<char> failed_;
  std::uint64_t cap_epoch_ = 0;
  // Mutated only under the cache's own synchronization (lookups) or from the
  // non-const fail/restore methods (wholesale replacement).
  mutable std::unique_ptr<RouteCache> cache_;
};

}  // namespace xscale::net
