#include "net/flowsim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/parallel.hpp"

namespace xscale::net {

void FlowSim::ensure_sized() {
  const std::size_t n = fabric_.topology().links().size();
  if (link_load_.size() == n) return;
  link_load_.assign(n, 0);
  flows_on_link_.assign(n, {});
  link_dirty_.assign(n, 0);
  link_visit_epoch_.assign(n, 0);
  link_local_id_.assign(n, 0);
  link_remap_epoch_.assign(n, 0);
  // Floor rarely-grown scratch capacities so one-off spikes (several flows
  // completing at the same instant) don't allocate mid-run.
  done_slots_.reserve(16);
  done_callbacks_.reserve(16);
  dropped_slots_.reserve(16);
  dropped_ids_.reserve(16);
}

int FlowSim::alloc_slot() {
  if (!free_slots_.empty()) {
    const int s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<int>(slots_.size() - 1);
}

void FlowSim::mark_dirty(int link) {
  const auto lu = static_cast<std::size_t>(link);
  if (link_dirty_[lu]) return;
  link_dirty_[lu] = 1;
  dirty_links_.push_back(link);
}

void FlowSim::clear_dirty() {
  for (int l : dirty_links_) link_dirty_[static_cast<std::size_t>(l)] = 0;
  dirty_links_.clear();
}

std::uint64_t FlowSim::start(int src, int dst, double bytes, Done on_done) {
  ensure_sized();
  const int slot = alloc_slot();
  // Route straight into the slot's reusable path buffer. Floor its capacity
  // at the route cache's max entry length so a reused slot never grows
  // through the 2→3→…→7 exact-size steps `assign` would otherwise take —
  // after one warm pass over the arena, routing touches no allocator.
  auto& path = slots_[static_cast<std::size_t>(slot)].path;
  if (path.capacity() < 8) path.reserve(8);
  fabric_.route_into(src, dst, rng_, &link_load_, path);
  return start_slot(slot, bytes, std::move(on_done));
}

std::uint64_t FlowSim::start_on_path(std::vector<int> path, double bytes,
                                     Done on_done) {
  assert(!path.empty());
  ensure_sized();
  const int slot = alloc_slot();
  slots_[static_cast<std::size_t>(slot)].path = std::move(path);
  return start_slot(slot, bytes, std::move(on_done));
}

std::uint64_t FlowSim::start_slot(int slot, double bytes, Done on_done) {
  Flow& f = slots_[static_cast<std::size_t>(slot)];
  assert(!f.path.empty());
  const std::uint64_t id = next_id_++;
  const double total = std::max(bytes, 1.0);
  f.id = id;
  f.remaining = total;
  f.rate = 0.0;
  f.accrued_at = eng_.now();
  f.start_time = eng_.now();
  f.total_bytes = total;
  f.stalled = false;
  f.visit_epoch = 0;
  f.on_done = std::move(on_done);
  ++active_count_;
  obs::tracer().instant("net", "flow_start", eng_.now(),
                        {{"flow", static_cast<double>(id)},
                         {"bytes", total},
                         {"hops", static_cast<double>(f.path.size())}});
  static obs::Counter& started = obs::metrics().counter("net.flows_started");
  started.inc();
  insert_flow_links(slot, f);
  resolve_and_schedule();
  return id;
}

void FlowSim::insert_flow_links(int slot, const Flow& f) {
  for (int l : f.path) {
    const auto lu = static_cast<std::size_t>(l);
    ++link_load_[lu];
    auto& on_link = flows_on_link_[lu];
    // Seed a link's incidence capacity on first growth: skips the 1→2→4→8
    // doubling chain every busy link would otherwise walk through, which is
    // the bulk of residual steady-state allocations under churn (capacities
    // are grow-only, so each link allocates here at most a handful of times
    // over a whole run).
    if (on_link.size() == on_link.capacity() && on_link.capacity() < 16)
      on_link.reserve(16);
    on_link.push_back(slot);
    mark_dirty(l);
  }
}

void FlowSim::remove_flow(int slot) {
  Flow& f = slots_[static_cast<std::size_t>(slot)];
  for (int l : f.path) {
    const auto lu = static_cast<std::size_t>(l);
    --link_load_[lu];
    auto& on = flows_on_link_[lu];
    auto it = std::find(on.begin(), on.end(), slot);
    assert(it != on.end());
    *it = on.back();  // order within a link's list is irrelevant (BFS sorts)
    on.pop_back();
    mark_dirty(l);
  }
  if (f.stalled) {
    f.stalled = false;
    --stalled_;
  }
  f.id = 0;
  f.rate = 0.0;
  f.on_done = nullptr;
  f.path.clear();  // keep capacity for slot reuse
  free_slots_.push_back(slot);
  --active_count_;
}

void FlowSim::accrue(Flow& f) {
  const double now = eng_.now();
  if (f.rate > 0.0 && now > f.accrued_at)
    f.remaining -= f.rate * (now - f.accrued_at);
  f.accrued_at = now;
}

void FlowSim::set_rate(std::uint64_t id, Flow& f, double rate) {
  // No 1 B/s floor: a zero rate means every byte is stuck behind a failed
  // link, and pretending otherwise hides the failure (satellite fix — the
  // old floor made such flows "complete" after simulated centuries).
  if (rate <= 0.0) rate = 0.0;
  // Unchanged rate: skip the write-back entirely. The drain law stays the
  // same linear function, so deferring accrual is exact — and because a
  // full re-solve recomputes untouched components to bitwise-equal rates,
  // incremental and full modes take this early-out at identical times,
  // keeping their remaining-byte arithmetic (and completion times)
  // bit-for-bit equal.
  if (rate == f.rate && (rate > 0.0 || f.stalled)) return;
  accrue(f);
  if (rate == 0.0) {
    if (!f.stalled) {
      f.stalled = true;
      ++stalled_;
      obs::tracer().instant("net", "flow_stall", eng_.now(),
                            {{"flow", static_cast<double>(id)},
                             {"remaining", f.remaining}});
      static obs::Counter& stalls = obs::metrics().counter("net.flow_stalls");
      stalls.inc();
    }
  } else if (f.stalled) {
    f.stalled = false;
    --stalled_;
    obs::tracer().instant("net", "flow_unstall", eng_.now(),
                          {{"flow", static_cast<double>(id)}, {"rate", rate}});
  }
  f.rate = rate;
}

void FlowSim::affected_component() {
  comp_slots_.clear();
  ++visit_epoch_;
  link_q_.clear();
  for (int l : dirty_links_) {
    link_visit_epoch_[static_cast<std::size_t>(l)] = visit_epoch_;
    link_q_.push_back(l);
  }
  while (!link_q_.empty()) {
    const int l = link_q_.back();
    link_q_.pop_back();
    for (int s : flows_on_link_[static_cast<std::size_t>(l)]) {
      Flow& f = slots_[static_cast<std::size_t>(s)];
      if (f.visit_epoch == visit_epoch_) continue;
      f.visit_epoch = visit_epoch_;
      comp_slots_.push_back(s);
      for (int pl : f.path) {
        const auto plu = static_cast<std::size_t>(pl);
        if (link_visit_epoch_[plu] != visit_epoch_) {
          link_visit_epoch_[plu] = visit_epoch_;
          link_q_.push_back(pl);
        }
      }
    }
  }
  std::sort(comp_slots_.begin(), comp_slots_.end(), [this](int a, int b) {
    return slots_[static_cast<std::size_t>(a)].id <
           slots_[static_cast<std::size_t>(b)].id;
  });
}

void FlowSim::component_from(int seed) {
  // Connected component containing `seed`, under the caller's current
  // `visit_epoch_` (marks persist across calls so a full-solve sweep visits
  // each component exactly once). Same traversal and ordering as
  // `affected_component`, seeded from a flow instead of dirty links.
  comp_slots_.clear();
  link_q_.clear();
  Flow& sf = slots_[static_cast<std::size_t>(seed)];
  sf.visit_epoch = visit_epoch_;
  comp_slots_.push_back(seed);
  for (int pl : sf.path) {
    const auto plu = static_cast<std::size_t>(pl);
    if (link_visit_epoch_[plu] != visit_epoch_) {
      link_visit_epoch_[plu] = visit_epoch_;
      link_q_.push_back(pl);
    }
  }
  while (!link_q_.empty()) {
    const int l = link_q_.back();
    link_q_.pop_back();
    for (int s : flows_on_link_[static_cast<std::size_t>(l)]) {
      Flow& f = slots_[static_cast<std::size_t>(s)];
      if (f.visit_epoch == visit_epoch_) continue;
      f.visit_epoch = visit_epoch_;
      comp_slots_.push_back(s);
      for (int pl : f.path) {
        const auto plu = static_cast<std::size_t>(pl);
        if (link_visit_epoch_[plu] != visit_epoch_) {
          link_visit_epoch_[plu] = visit_epoch_;
          link_q_.push_back(pl);
        }
      }
    }
  }
  std::sort(comp_slots_.begin(), comp_slots_.end(), [this](int a, int b) {
    return slots_[static_cast<std::size_t>(a)].id <
           slots_[static_cast<std::size_t>(b)].id;
  });
}

void FlowSim::solve_component(const std::vector<int>& comp, SolveStats* ss) {
  // Pack a compact sub-problem into the persistent CSR arena: only the
  // component's links, densely renumbered in first-encounter order
  // (ascending flow id), which makes the restricted solve's arithmetic
  // identical to the full solve's — within a component the full solver
  // performs exactly the same operations in the same order, and flows
  // outside it never touch these links. The link remap is epoch-stamped, so
  // packing costs O(component nnz) with no clearing pass.
  ++remap_epoch_;
  const std::size_t caps_cap = comp_caps_.capacity();
  const std::size_t ids_cap = comp_csr_.link_ids.capacity();
  const std::size_t off_cap = comp_csr_.offsets.capacity();
  const std::size_t rates_cap = comp_rates_.capacity();
  comp_caps_.clear();
  comp_csr_.clear();
  const auto& caps = fabric_.effective_capacities();
  for (int s : comp) {
    const Flow& f = slots_[static_cast<std::size_t>(s)];
    for (int l : f.path) {
      const auto lu = static_cast<std::size_t>(l);
      if (link_remap_epoch_[lu] != remap_epoch_) {
        link_remap_epoch_[lu] = remap_epoch_;
        link_local_id_[lu] = static_cast<int>(comp_caps_.size());
        comp_caps_.push_back(caps[lu]);
      }
      comp_csr_.push_link(link_local_id_[lu]);
    }
    comp_csr_.end_path();
  }
  comp_rates_.resize(comp.size());
  max_min_rates_csr(comp_caps_.data(), comp_caps_.size(), comp_csr_, nullptr,
                    comp_rates_.data(), ss, solve_scratch_);
  // A steady-state re-solve touches no allocator at all; count it. (The
  // count is thread-count independent — everything here runs on the
  // simulator's own thread against its own buffers.)
  const bool grew = solve_scratch_.last_solve_allocated ||
                    comp_caps_.capacity() != caps_cap ||
                    comp_csr_.link_ids.capacity() != ids_cap ||
                    comp_csr_.offsets.capacity() != off_cap ||
                    comp_rates_.capacity() != rates_cap;
  static obs::Counter& reuse =
      obs::metrics().counter("net.solver.scratch_reuse");
  if (!grew) reuse.inc();
  for (std::size_t i = 0; i < comp.size(); ++i) {
    Flow& f = slots_[static_cast<std::size_t>(comp[i])];
    set_rate(f.id, f, comp_rates_[i]);
  }
}

void FlowSim::resolve_and_schedule() {
  if (has_pending_event_) {
    eng_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (active_count_ == 0) {
    clear_dirty();
    return;
  }
  ++stats_.resolves;

  bool full = !cfg_.incremental;
  if (full) {
    ++stats_.full_solves;
    comp_slots_.clear();
  } else {
    affected_component();
    stats_.largest_component =
        std::max<std::uint64_t>(stats_.largest_component, comp_slots_.size());
    if (static_cast<double>(comp_slots_.size()) >
        cfg_.fallback_fraction * static_cast<double>(active_count_)) {
      full = true;
      ++stats_.fallback_solves;
    }
  }

  SolveStats ss;
  if (full) {
    // Re-solve the whole active set, decomposed into connected components
    // (flows transitively sharing links) discovered in ascending
    // first-flow-id order. Per-component solutions equal the global solution
    // bit-for-bit (the PR 4 component-vs-global property pins this), each
    // component goes through the persistent CSR path, and stats sum in
    // component order — same rates and same counts as the old
    // `max_min_rates_components` route, but a fallback solve now allocates
    // nothing once warm either.
    order_.clear();
    for (std::size_t s = 0; s < slots_.size(); ++s)
      if (slots_[s].id != 0) order_.push_back(static_cast<int>(s));
    std::sort(order_.begin(), order_.end(), [this](int a, int b) {
      return slots_[static_cast<std::size_t>(a)].id <
             slots_[static_cast<std::size_t>(b)].id;
    });
    ++visit_epoch_;
    for (int seed : order_) {
      if (slots_[static_cast<std::size_t>(seed)].visit_epoch == visit_epoch_)
        continue;
      component_from(seed);
      SolveStats cs;
      solve_component(comp_slots_, &cs);
      ss.iterations += cs.iterations;
      ss.bottleneck_links += cs.bottleneck_links;
    }
    comp_slots_ = order_;  // solved set, for the drop sweep below
  } else if (!comp_slots_.empty()) {
    ++stats_.component_solves;
    solve_component(comp_slots_, &ss);
  }
  const std::vector<int>& solved = comp_slots_;
  stats_.flows_solved += solved.size();
  stats_.solver_iterations += static_cast<std::uint64_t>(ss.iterations);
  stats_.bottleneck_links += static_cast<std::uint64_t>(ss.bottleneck_links);

  // Per-solve observability: component size, incremental-vs-full choice, and
  // solver effort — the numbers that explain where resolve time goes.
  obs::tracer().instant("net", full ? "resolve_full" : "resolve_component",
                        eng_.now(),
                        {{"flows", static_cast<double>(solved.size())},
                         {"active", static_cast<double>(active_count_)},
                         {"iterations", static_cast<double>(ss.iterations)}});
  {
    static obs::Counter& resolves = obs::metrics().counter("net.resolves");
    static obs::Counter& fulls = obs::metrics().counter("net.full_solves");
    static obs::Counter& iters =
        obs::metrics().counter("net.solver.iterations");
    static obs::Counter& bnecks =
        obs::metrics().counter("net.solver.bottleneck_links");
    static obs::ShardedStats& comp_size =
        obs::metrics().stats("net.solve_component_flows");
    static obs::Gauge& active = obs::metrics().gauge("net.active_flows");
    resolves.inc();
    if (full) fulls.inc();
    iters.inc(static_cast<std::uint64_t>(ss.iterations));
    bnecks.inc(static_cast<std::uint64_t>(ss.bottleneck_links));
    comp_size.add(static_cast<double>(solved.size()));
    active.set(static_cast<double>(active_count_));
  }

  // Zero-rate flows: under Drop, remove them now. Their rate is 0, so they
  // consume no capacity — removal provably leaves every other rate unchanged
  // (in the water-filling they freeze at share 0 in the first iteration and
  // subtract nothing), so no re-solve is needed.
  dropped_slots_.clear();
  dropped_ids_.clear();
  if (cfg_.stall_policy == StallPolicy::Drop) {
    for (int s : solved)
      if (slots_[static_cast<std::size_t>(s)].rate <= 0.0)
        dropped_slots_.push_back(s);
    for (int s : dropped_slots_) {
      const std::uint64_t id = slots_[static_cast<std::size_t>(s)].id;
      obs::tracer().instant("net", "flow_drop", eng_.now(),
                            {{"flow", static_cast<double>(id)}});
      dropped_ids_.push_back(id);
      remove_flow(s);
      ++dropped_;
    }
    static obs::Counter& drops = obs::metrics().counter("net.flows_dropped");
    drops.inc(dropped_slots_.size());
  }

  const double now = eng_.now();
  double next_done = std::numeric_limits<double>::infinity();
  for (const Flow& f : slots_)
    if (f.id != 0 && f.rate > 0.0)
      next_done = std::min(next_done, remaining_at(f, now) / f.rate);

  clear_dirty();

  if (std::isfinite(next_done)) {
    pending_event_ = eng_.schedule_in(std::max(next_done, 0.0), [this] {
      has_pending_event_ = false;
      const double t = eng_.now();
      // Complete every flow that has drained (ties finish together).
      done_slots_.clear();
      for (std::size_t s = 0; s < slots_.size(); ++s) {
        const Flow& f = slots_[s];
        if (f.id == 0 || f.rate <= 0.0) continue;
        if (remaining_at(f, t) <= 1e-6 * std::max(1.0, f.rate))
          done_slots_.push_back(static_cast<int>(s));
      }
      std::sort(done_slots_.begin(), done_slots_.end(), [this](int a, int b) {
        return slots_[static_cast<std::size_t>(a)].id <
               slots_[static_cast<std::size_t>(b)].id;
      });
      done_callbacks_.clear();
      static obs::Counter& completed =
          obs::metrics().counter("net.flows_completed");
      for (int s : done_slots_) {
        Flow& f = slots_[static_cast<std::size_t>(s)];
        // The flow's whole lifetime as one span: start -> last byte drained.
        obs::tracer().span("net", "flow", f.start_time, t - f.start_time,
                           {{"flow", static_cast<double>(f.id)},
                            {"bytes", f.total_bytes},
                            {"hops", static_cast<double>(f.path.size())}});
        completed.inc();
        done_callbacks_.push_back(std::move(f.on_done));
        remove_flow(s);
      }
      resolve_and_schedule();
      for (auto& cb : done_callbacks_)
        if (cb) cb();
      done_callbacks_.clear();
    });
    has_pending_event_ = true;
  }
  // else: every active flow is stalled; nothing to schedule. They recover
  // when a future add/remove dirties their component after link repair.

  if (stall_hook_ && !dropped_ids_.empty()) {
    // Steal the list: the hook may re-enter (start replacement flows) and
    // clobber the member buffer mid-iteration.
    auto ids = std::move(dropped_ids_);
    dropped_ids_ = {};
    for (std::uint64_t id : ids) stall_hook_(id);
  }
}

void FlowSim::for_each_flow(
    const std::function<void(std::uint64_t, const std::vector<int>&, double,
                             double)>& fn) const {
  std::vector<std::pair<std::uint64_t, int>> ids;
  ids.reserve(active_count_);
  for (std::size_t s = 0; s < slots_.size(); ++s)
    if (slots_[s].id != 0)
      ids.emplace_back(slots_[s].id, static_cast<int>(s));
  std::sort(ids.begin(), ids.end());
  const double now = eng_.now();
  for (auto [id, s] : ids) {
    const Flow& f = slots_[static_cast<std::size_t>(s)];
    fn(id, f.path, remaining_at(f, now), f.rate);
  }
}

}  // namespace xscale::net
