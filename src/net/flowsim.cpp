#include "net/flowsim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "net/simd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/parallel.hpp"

namespace xscale::net {

void FlowSim::ensure_sized() {
  const std::size_t n = fabric_.topology().links().size();
  if (link_load_.size() == n) return;
  link_load_.assign(n, 0);
  flows_on_link_.assign(n, {});
  link_dirty_.assign(n, 0);
  link_visit_epoch_.assign(n, 0);
  link_local_id_.assign(n, 0);
  link_remap_epoch_.assign(n, 0);
  // Floor rarely-grown scratch capacities so one-off spikes (several flows
  // completing at the same instant) don't allocate mid-run.
  done_slots_.reserve(16);
  done_callbacks_.reserve(16);
  dropped_slots_.reserve(16);
  dropped_ids_.reserve(16);
}

int FlowSim::alloc_slot() {
  if (!free_slots_.empty()) {
    const int s = free_slots_.back();
    free_slots_.pop_back();
    return s;
  }
  slots_.emplace_back();
  return static_cast<int>(slots_.size() - 1);
}

void FlowSim::mark_dirty(int link) {
  const auto lu = static_cast<std::size_t>(link);
  if (link_dirty_[lu]) return;
  link_dirty_[lu] = 1;
  dirty_links_.push_back(link);
}

void FlowSim::clear_dirty() {
  for (int l : dirty_links_) link_dirty_[static_cast<std::size_t>(l)] = 0;
  dirty_links_.clear();
}

std::uint64_t FlowSim::start(int src, int dst, double bytes, Done on_done) {
  ensure_sized();
  const int slot = alloc_slot();
  // Route straight into the slot's reusable path buffer. Floor its capacity
  // at the route cache's max entry length so a reused slot never grows
  // through the 2→3→…→7 exact-size steps `assign` would otherwise take —
  // after one warm pass over the arena, routing touches no allocator.
  auto& path = slots_[static_cast<std::size_t>(slot)].path;
  if (path.capacity() < 8) path.reserve(8);
  fabric_.route_into(src, dst, rng_, &link_load_, path);
  return start_slot(slot, bytes, std::move(on_done));
}

std::uint64_t FlowSim::start_on_path(std::vector<int> path, double bytes,
                                     Done on_done) {
  assert(!path.empty());
  ensure_sized();
  const int slot = alloc_slot();
  slots_[static_cast<std::size_t>(slot)].path = std::move(path);
  return start_slot(slot, bytes, std::move(on_done));
}

void FlowSim::notify_capacity_change(const std::vector<int>& links) {
  ensure_sized();
  const auto n = static_cast<int>(link_dirty_.size());
  for (int l : links) {
    if (l < 0 || l >= n)
      throw std::out_of_range("notify_capacity_change: link id " +
                              std::to_string(l) + " out of range [0, " +
                              std::to_string(n) + ")");
  }
  if (active_count_ == 0) return;  // nothing to re-price
  // A pending uniform rate parked at an earlier instant was computed under
  // the old capacities and covers accrual up to now — apply it before the
  // re-resolve rewrites rates (same contract as start_slot).
  if (pending_uniform_ && eng_.now() != pending_time_) materialize_pending();
  for (int l : links)
    if (!flows_on_link_[static_cast<std::size_t>(l)].empty()) mark_dirty(l);
  if (dirty_links_.empty()) return;  // no active flow touches a changed link
  resolve_and_schedule();
}

std::uint64_t FlowSim::start_slot(int slot, double bytes, Done on_done) {
  // A pending uniform rate parked at an *earlier* instant covers exactly the
  // members that were active then — apply it before this flow joins the
  // active set (a same-instant pending stays parked: mid-instant joiners are
  // covered by the re-park the coming resolve performs).
  if (pending_uniform_ && eng_.now() != pending_time_) materialize_pending();
  Flow& f = slots_[static_cast<std::size_t>(slot)];
  assert(!f.path.empty());
  const std::uint64_t id = next_id_++;
  const double total = std::max(bytes, 1.0);
  f.id = id;
  f.remaining = total;
  f.rate = 0.0;
  f.accrued_at = eng_.now();
  f.start_time = eng_.now();
  f.total_bytes = total;
  f.stalled = false;
  f.visit_epoch = 0;
  f.on_done = std::move(on_done);
  ++active_count_;
  active_order_.push_back(slot);  // ids are monotonic: append keeps id order
  delta_has_add_ = true;
  obs::tracer().instant("net", "flow_start", eng_.now(),
                        {{"flow", static_cast<double>(id)},
                         {"bytes", total},
                         {"hops", static_cast<double>(f.path.size())}});
  static obs::Counter& started = obs::metrics().counter("net.flows_started");
  started.inc();
  insert_flow_links(slot, f);
  resolve_and_schedule();
  return id;
}

void FlowSim::insert_flow_links(int slot, const Flow& f) {
  if (live_link_in_.size() < flows_on_link_.size())
    live_link_in_.resize(flows_on_link_.size(), 0);
  for (int l : f.path) {
    const auto lu = static_cast<std::size_t>(l);
    ++link_load_[lu];
    if (!live_link_in_[lu]) {
      live_link_in_[lu] = 1;
      live_links_.push_back(l);
    }
    auto& on_link = flows_on_link_[lu];
    // Seed a link's incidence capacity on first growth: skips the 1→2→4→8
    // doubling chain every busy link would otherwise walk through, which is
    // the bulk of residual steady-state allocations under churn (capacities
    // are grow-only, so each link allocates here at most a handful of times
    // over a whole run).
    if (on_link.size() == on_link.capacity() && on_link.capacity() < 16)
      on_link.reserve(16);
    on_link.push_back(slot);
    mark_dirty(l);
  }
}

void FlowSim::remove_flow(int slot) {
  Flow& f = slots_[static_cast<std::size_t>(slot)];
  warm_record_removal(slot);
  const auto id_less = [this](int s, std::uint64_t id) {
    return slots_[static_cast<std::size_t>(s)].id < id;
  };
  for (int l : f.path) {
    const auto lu = static_cast<std::size_t>(l);
    --link_load_[lu];
    auto& on = flows_on_link_[lu];
    // Ordered erase: each link's incidence stays in ascending flow-id order
    // (inserts append, ids are monotonic), which is the transposed-incidence
    // order the CSR core freezes flows in — the warm-start solve iterates
    // these lists directly and must visit flows in exactly that order.
    auto it = std::lower_bound(on.begin(), on.end(), f.id, id_less);
    assert(it != on.end() && *it == slot);
    on.erase(it);
    mark_dirty(l);
  }
  auto ao = std::lower_bound(active_order_.begin(), active_order_.end(), f.id,
                             id_less);
  assert(ao != active_order_.end() && *ao == slot);
  active_order_.erase(ao);
  if (f.stalled) {
    f.stalled = false;
    --stalled_;
  }
  f.id = 0;
  f.rate = 0.0;
  f.on_done = nullptr;
  f.path.clear();  // keep capacity for slot reuse
  free_slots_.push_back(slot);
  --active_count_;
}

void FlowSim::accrue(Flow& f) {
  const double now = eng_.now();
  if (f.rate > 0.0 && now > f.accrued_at)
    f.remaining -= f.rate * (now - f.accrued_at);
  f.accrued_at = now;
}

void FlowSim::set_rate(std::uint64_t id, Flow& f, double rate) {
  // No 1 B/s floor: a zero rate means every byte is stuck behind a failed
  // link, and pretending otherwise hides the failure (satellite fix — the
  // old floor made such flows "complete" after simulated centuries).
  if (rate <= 0.0) rate = 0.0;
  // Unchanged rate: skip the write-back entirely. The drain law stays the
  // same linear function, so deferring accrual is exact — and because a
  // full re-solve recomputes untouched components to bitwise-equal rates,
  // incremental and full modes take this early-out at identical times,
  // keeping their remaining-byte arithmetic (and completion times)
  // bit-for-bit equal.
  if (rate == f.rate && (rate > 0.0 || f.stalled)) return;
  accrue(f);
  if (rate == 0.0) {
    if (!f.stalled) {
      f.stalled = true;
      ++stalled_;
      obs::tracer().instant("net", "flow_stall", eng_.now(),
                            {{"flow", static_cast<double>(id)},
                             {"remaining", f.remaining}});
      static obs::Counter& stalls = obs::metrics().counter("net.flow_stalls");
      stalls.inc();
    }
  } else if (f.stalled) {
    f.stalled = false;
    --stalled_;
    obs::tracer().instant("net", "flow_unstall", eng_.now(),
                          {{"flow", static_cast<double>(id)}, {"rate", rate}});
  }
  f.rate = rate;
}

void FlowSim::affected_component(double max_flows) {
  comp_truncated_ = false;
  comp_slots_.clear();
  ++visit_epoch_;
  link_q_.clear();
  for (int l : dirty_links_) {
    link_visit_epoch_[static_cast<std::size_t>(l)] = visit_epoch_;
    link_q_.push_back(l);
  }
  while (!link_q_.empty()) {
    const int l = link_q_.back();
    link_q_.pop_back();
    for (int s : flows_on_link_[static_cast<std::size_t>(l)]) {
      Flow& f = slots_[static_cast<std::size_t>(s)];
      if (f.visit_epoch == visit_epoch_) continue;
      f.visit_epoch = visit_epoch_;
      comp_slots_.push_back(s);
      // Warm-start dispatch only needs to know the component is oversized,
      // not its full membership: stop the BFS (and skip the sort — contents
      // become a size witness only) as soon as that is proven, which turns
      // an incast resolve's O(component) discovery into O(threshold).
      if (max_flows >= 0.0 &&
          static_cast<double>(comp_slots_.size()) > max_flows) {
        comp_truncated_ = true;
        link_q_.clear();
        return;
      }
      for (int pl : f.path) {
        const auto plu = static_cast<std::size_t>(pl);
        if (link_visit_epoch_[plu] != visit_epoch_) {
          link_visit_epoch_[plu] = visit_epoch_;
          link_q_.push_back(pl);
        }
      }
    }
  }
  std::sort(comp_slots_.begin(), comp_slots_.end(), [this](int a, int b) {
    return slots_[static_cast<std::size_t>(a)].id <
           slots_[static_cast<std::size_t>(b)].id;
  });
}

void FlowSim::component_from(int seed) {
  // Connected component containing `seed`, under the caller's current
  // `visit_epoch_` (marks persist across calls so a full-solve sweep visits
  // each component exactly once). Same traversal and ordering as
  // `affected_component`, seeded from a flow instead of dirty links.
  comp_slots_.clear();
  link_q_.clear();
  Flow& sf = slots_[static_cast<std::size_t>(seed)];
  sf.visit_epoch = visit_epoch_;
  comp_slots_.push_back(seed);
  for (int pl : sf.path) {
    const auto plu = static_cast<std::size_t>(pl);
    if (link_visit_epoch_[plu] != visit_epoch_) {
      link_visit_epoch_[plu] = visit_epoch_;
      link_q_.push_back(pl);
    }
  }
  while (!link_q_.empty()) {
    const int l = link_q_.back();
    link_q_.pop_back();
    for (int s : flows_on_link_[static_cast<std::size_t>(l)]) {
      Flow& f = slots_[static_cast<std::size_t>(s)];
      if (f.visit_epoch == visit_epoch_) continue;
      f.visit_epoch = visit_epoch_;
      comp_slots_.push_back(s);
      for (int pl : f.path) {
        const auto plu = static_cast<std::size_t>(pl);
        if (link_visit_epoch_[plu] != visit_epoch_) {
          link_visit_epoch_[plu] = visit_epoch_;
          link_q_.push_back(pl);
        }
      }
    }
  }
  std::sort(comp_slots_.begin(), comp_slots_.end(), [this](int a, int b) {
    return slots_[static_cast<std::size_t>(a)].id <
           slots_[static_cast<std::size_t>(b)].id;
  });
}

void FlowSim::solve_component(const std::vector<int>& comp, SolveStats* ss) {
  // Pack a compact sub-problem into the persistent CSR arena: only the
  // component's links, densely renumbered in first-encounter order
  // (ascending flow id), which makes the restricted solve's arithmetic
  // identical to the full solve's — within a component the full solver
  // performs exactly the same operations in the same order, and flows
  // outside it never touch these links. The link remap is epoch-stamped, so
  // packing costs O(component nnz) with no clearing pass.
  ++remap_epoch_;
  const std::size_t caps_cap = comp_caps_.capacity();
  const std::size_t ids_cap = comp_csr_.link_ids.capacity();
  const std::size_t off_cap = comp_csr_.offsets.capacity();
  const std::size_t rates_cap = comp_rates_.capacity();
  comp_caps_.clear();
  comp_csr_.clear();
  const auto& caps = fabric_.effective_capacities();
  for (int s : comp) {
    const Flow& f = slots_[static_cast<std::size_t>(s)];
    for (int l : f.path) {
      const auto lu = static_cast<std::size_t>(l);
      if (link_remap_epoch_[lu] != remap_epoch_) {
        link_remap_epoch_[lu] = remap_epoch_;
        link_local_id_[lu] = static_cast<int>(comp_caps_.size());
        comp_caps_.push_back(caps[lu]);
      }
      comp_csr_.push_link(link_local_id_[lu]);
    }
    comp_csr_.end_path();
  }
  comp_rates_.resize(comp.size());
  max_min_rates_csr(comp_caps_.data(), comp_caps_.size(), comp_csr_, nullptr,
                    comp_rates_.data(), ss, solve_scratch_);
  // A steady-state re-solve touches no allocator at all; count it. (The
  // count is thread-count independent — everything here runs on the
  // simulator's own thread against its own buffers.)
  const bool grew = solve_scratch_.last_solve_allocated ||
                    comp_caps_.capacity() != caps_cap ||
                    comp_csr_.link_ids.capacity() != ids_cap ||
                    comp_csr_.offsets.capacity() != off_cap ||
                    comp_rates_.capacity() != rates_cap;
  static obs::Counter& reuse =
      obs::metrics().counter("net.solver.scratch_reuse");
  if (!grew) reuse.inc();
  // Counted write-back: `applied` are results that change a rate, `skipped`
  // are provable no-ops (set_rate's own early-out condition, evaluated here
  // so both counters exist on every solve path). Reference mode
  // (`incremental_writeback = false`) still routes the no-ops through
  // set_rate — that is the whole-set write the differential test compares
  // against.
  std::uint64_t applied = 0;
  for (std::size_t i = 0; i < comp.size(); ++i) {
    Flow& f = slots_[static_cast<std::size_t>(comp[i])];
    const double r = comp_rates_[i];
    const bool noop = r == f.rate && (r > 0.0 || f.stalled);
    if (!noop) {
      set_rate(f.id, f, r);
      ++applied;
    } else if (!cfg_.incremental_writeback) {
      set_rate(f.id, f, r);
    }
  }
  note_writeback(applied, static_cast<std::uint64_t>(comp.size()) - applied);
}

void FlowSim::warm_record_removal(int slot) {
  // Extends the delta record consumed by the next warm solve's frozen-prefix
  // replay (DESIGN.md §9). Only meaningful while the previous resolve was a
  // warm solve whose metadata is still current.
  if (!warm_meta_ok_) return;
  const auto su = static_cast<std::size_t>(slot);
  if (su < warm_frozen_.size() && warm_frozen_[su] == warm_pass_) {
    const int lvl = warm_level_[su];
    if (delta_min_level_ == 0 || lvl < delta_min_level_) delta_min_level_ = lvl;
  } else {
    // The flow never went through the last warm solve, so its freeze level
    // is unknown and the prefix invariant cannot be established.
    delta_meta_broken_ = true;
  }
}

bool FlowSim::warm_memo_lookup() {
  // The max-min solution is a pure function of (capacities, member paths in
  // ascending-id order): if the concatenated path stream of the active set
  // matches a cached generation under the same capacity epoch, its rate
  // vector applies verbatim — member *ids* may differ (a completed flow
  // replaced by an identically-routed one), positions and paths are what
  // determine the arithmetic.
  const std::uint64_t cap_epoch = fabric_.capacity_epoch();
  const std::size_t members = active_order_.size();
  for (WarmMemo& m : memo_) {
    if (!m.valid) continue;
    if (m.cap_epoch != cap_epoch) {
      // A capacity epoch that moved under a valid generation is an
      // invalidation: with per-overlay epochs (DESIGN.md §10) only THIS
      // session's fail/restore/override calls can trip it, which is exactly
      // what the serving-layer isolation tests count.
      ++stats_.warm_memo_stale;
      continue;
    }
    if (m.offsets.size() != members + 1) continue;
    bool match = true;
    for (std::size_t i = 0; i < members && match; ++i) {
      const Flow& f = slots_[static_cast<std::size_t>(active_order_[i])];
      const auto b = static_cast<std::size_t>(m.offsets[i]);
      const auto e = static_cast<std::size_t>(m.offsets[i + 1]);
      match = (e - b == f.path.size()) &&
              std::equal(f.path.begin(), f.path.end(), m.stream.begin() + b);
    }
    if (!match) continue;
    std::uint64_t applied = 0;
    for (std::size_t i = 0; i < members; ++i) {
      Flow& f = slots_[static_cast<std::size_t>(active_order_[i])];
      const double r = m.rates[i];
      const bool noop = r == f.rate && (r > 0.0 || f.stalled);
      if (!noop) {
        set_rate(f.id, f, r);
        ++applied;
      } else if (!cfg_.incremental_writeback) {
        set_rate(f.id, f, r);
      }
    }
    note_writeback(applied, static_cast<std::uint64_t>(members) - applied);
    return true;
  }
  return false;
}

void FlowSim::note_writeback(std::uint64_t applied, std::uint64_t skipped) {
  stats_.writeback_applied += applied;
  stats_.writeback_skipped += skipped;
  static obs::Counter& a =
      obs::metrics().counter("net.solver.writeback.applied");
  static obs::Counter& s =
      obs::metrics().counter("net.solver.writeback.skipped");
  a.inc(applied);
  s.inc(skipped);
}

double FlowSim::remaining_eff_at(const Flow& f, double t) const {
  if (!pending_uniform_) return remaining_at(f, t);
  if (pending_mixed_ || pending_rate_ != f.rate) {
    // Materialisation will accrue the old rate up to `pending_time_` and
    // drain at the pending rate from there; reproduce that two-segment law.
    double rem = f.remaining;
    if (f.rate > 0.0 && pending_time_ > f.accrued_at)
      rem -= f.rate * (pending_time_ - f.accrued_at);
    return rem - pending_rate_ * (t - pending_time_);
  }
  // Rate unchanged by the pending value: the linear drain law is unbroken
  // (the eager write-back would have early-outed without accruing).
  return remaining_at(f, t);
}

void FlowSim::materialize_pending() {
  // Apply the coalesced uniform rate exactly as the eager per-resolve
  // write-back would have: within one instant only the *first* rate change
  // performs accrual arithmetic (later segments are zero-width), and a flow
  // whose rate never differed from any value parked this instant was an
  // early-out throughout — so touching only (mixed || changed) flows is
  // bit-identical to the whole-set write it replaces.
  if (!pending_uniform_) return;
  pending_uniform_ = false;
  const double tp = pending_time_;
  const double v = pending_rate_;
  std::uint64_t applied = 0;
  for (int s : active_order_) {
    Flow& f = slots_[static_cast<std::size_t>(s)];
    if (pending_mixed_ || v != f.rate) {
      if (f.rate > 0.0 && tp > f.accrued_at)
        f.remaining -= f.rate * (tp - f.accrued_at);
      f.accrued_at = tp;
      if (v != f.rate) {
        f.rate = v;
        ++applied;
      }
    }
  }
  note_writeback(applied,
                 static_cast<std::uint64_t>(active_order_.size()) - applied);
}

int FlowSim::try_single_incremental(SolveStats* ss) {
  // Single-bottleneck verdict from the maintained top-2 share summary,
  // touching only this resolve's dirty links. Soundness rests on two facts:
  // clean links' shares are the very doubles the full scan would compute
  // (same capacity under an unmoved epoch, same crosser count), and a clean
  // link can never be the unique all-flows bottleneck (this resolve's
  // churned flow crosses the bottleneck, dirtying it). `pending` rates are
  // irrelevant here — the verdict reads only capacities and incidence
  // counts, both maintained eagerly.
  if (!sb_valid_ || stalled_ != 0 || sb_l1_ < 0) return -1;
  if (fabric_.capacity_epoch() != sb_cap_epoch_) {
    sb_valid_ = false;
    return -1;
  }
  const double inf = std::numeric_limits<double>::infinity();
  const bool l1_dirty = link_dirty_[static_cast<std::size_t>(sb_l1_)] != 0;
  const bool l2_dirty =
      sb_l2_ >= 0 && link_dirty_[static_cast<std::size_t>(sb_l2_)] != 0;
  // Exact minimum share over clean (non-dirty) links, and whether the
  // clean runner-up is also known exactly.
  double c1 = inf, c2 = inf;
  int c1l = -1, c2l = -1;
  bool c2_known = false;
  if (!l1_dirty) {
    c1 = sb_min1_;
    c1l = sb_l1_;
    if (sb_l2_ < 0 || !l2_dirty) {
      c2 = sb_l2_ >= 0 ? sb_min2_ : inf;
      c2l = sb_l2_;
      c2_known = true;
    }
  } else if (sb_l2_ >= 0 && !l2_dirty) {
    c1 = sb_min2_;
    c1l = sb_l2_;
  } else if (sb_l2_ >= 0) {
    // Both ranked links churned: the clean minimum is unknowable.
    sb_valid_ = false;
    return -1;
  } else {
    c2_known = true;  // the only live link was sb_l1_, now dirty: no clean links
  }

  // Fresh top-2 among dirty links (emptied links are no longer constraints;
  // their lazy compaction stays with the full scan).
  const auto& caps = fabric_.effective_capacities();
  double d1 = inf, d2 = inf;
  int d1l = -1, d2l = -1;
  for (int l : dirty_links_) {
    const auto lu = static_cast<std::size_t>(l);
    const std::size_t n = flows_on_link_[lu].size();
    if (n == 0) continue;
    const double c = caps[lu];
    if (!std::isfinite(c) || c < 0.0) return -1;  // full scan diagnoses
    const double share = std::max(0.0, c) / static_cast<double>(n);
    if (share < d1) {
      d2 = d1;
      d2l = d1l;
      d1 = share;
      d1l = l;
    } else if (share < d2) {
      d2 = share;
      d2l = l;
    }
  }

  const double m = std::min(c1, d1);
  if (!std::isfinite(m)) return -1;
  const double cutoff = m;  // exact ties only, matching the solver cores
  int verdict;
  if (c1 <= cutoff) {
    // A clean link fires. It cannot carry every active flow (the churned
    // flow would have dirtied it), so the full scan would reject too:
    // either several links fire or the firing one misses flows.
    verdict = 0;
  } else if (d2 <= cutoff) {
    verdict = 0;  // >= 2 dirty links fire
  } else if (flows_on_link_[static_cast<std::size_t>(d1l)].size() !=
             active_order_.size()) {
    verdict = 0;
  } else {
    verdict = 1;
  }

  // Refresh the summary to the exact post-churn top-2 where derivable:
  // merge the clean top-2 (partially known) with the dirty top-2.
  double n1, n2;
  int n1l, n2l;
  bool exact = true;
  if (d1 <= c1) {
    n1 = d1;
    n1l = d1l;
    if (d2 <= c1) {
      n2 = d2;
      n2l = d2l;
    } else {
      n2 = c1;
      n2l = c1l;
    }
  } else {
    n1 = c1;
    n1l = c1l;
    // Runner-up is min(d1, clean second) — needs the clean second exactly.
    if (c2_known && c2 <= d1) {
      n2 = c2;
      n2l = c2l;
    } else if (c2_known || d1 <= c2) {
      n2 = d1;
      n2l = d1l;
    } else {
      exact = false;
      n1 = n2 = 0.0;
      n1l = n2l = -1;
    }
  }
  if (exact && n1l >= 0) {
    sb_min1_ = n1;
    sb_l1_ = n1l;
    sb_min2_ = n2;
    sb_l2_ = std::isfinite(n2) ? n2l : -1;
    sb_updated_ = true;
  } else {
    sb_valid_ = false;
  }

  ++stats_.minshare_incr;
  static obs::Counter& incr =
      obs::metrics().counter("net.solver.minshare.incr_scan");
  incr.inc();
  if (verdict != 1) return verdict;
  // A zero uniform rate stalls every flow — that path (stall counters,
  // traces, Drop sweeps) must stay eager; let the full machinery run it.
  if (!(m > 0.0)) return -1;

  // Single bottleneck: park the uniform rate; same-instant re-parks coalesce
  // (zero-width segments do no accrual arithmetic in the eager path either).
  if (pending_uniform_ && eng_.now() != pending_time_) materialize_pending();
  if (!pending_uniform_) {
    pending_uniform_ = true;
    pending_time_ = eng_.now();
    pending_first_ = m;
    pending_mixed_ = false;
  } else {
    pending_mixed_ = pending_mixed_ || m != pending_first_;
  }
  pending_rate_ = m;
  if (ss) {
    ss->iterations = 1;
    ss->bottleneck_links = 1;
  }
  return 1;
}

bool FlowSim::warm_single_bottleneck(SolveStats* ss) {
  // Incast collapses the whole solve into its first iteration: one link is
  // the unique minimum-share bottleneck and every active flow crosses it, so
  // the cold solve freezes everybody at min_share in iteration 1 and stops.
  // Both conditions are checked here against the *initial* state (residual =
  // capacity, active weight = crosser count — both maintained persistently,
  // `flows_on_link_` sizes ARE the encounter-pass weights), which makes the
  // verdict independent of any visit order:
  //   - min over a set of ratios is exact and order-free, and each ratio
  //     uses the same expression and the same operands as the cold scan
  //     (capacity is exact, the accumulated 1.0-sum equals the list size);
  //   - "exactly one link within cutoff" means the cold firing scan, in
  //     *whatever* encounter order, skips every link before the firing one
  //     against unmutated state, fires it, freezes all flows (it crosses
  //     everyone), and then skips the rest at active weight zero.
  // Any failed condition returns false and the general path runs instead —
  // the check costs one O(live links) pass, no per-flow work.
  const auto& caps = fabric_.effective_capacities();
  const double inf = std::numeric_limits<double>::infinity();
  double min_share = inf, second_share = inf;
  int min_link = -1, second_link = -1;
  std::size_t w = 0;
  bool bad_capacity = false;
  for (std::size_t i = 0; i < live_links_.size(); ++i) {
    const int l = live_links_[i];
    const auto lu = static_cast<std::size_t>(l);
    const std::size_t n = flows_on_link_[lu].size();
    if (n == 0) {  // lazy compaction of links whose last crosser left
      live_link_in_[lu] = 0;
      continue;
    }
    live_links_[w++] = l;
    const double c = caps[lu];
    if (!std::isfinite(c) || c < 0.0) {
      // Defer the throw: `live_links_` is persistent incidence state and we
      // are mid-compaction — bailing here would leave duplicate entries past
      // `w` and an unshrunk size, poisoning every later resolve. Finish the
      // pass, restore the invariant, then report.
      bad_capacity = true;
      continue;
    }
    const double share = std::max(0.0, c) / static_cast<double>(n);
    if (share < min_share) {
      second_share = min_share;
      second_link = min_link;
      min_share = share;
      min_link = l;
    } else if (share < second_share) {
      second_share = share;
      second_link = l;
    }
  }
  live_links_.resize(w);
  if (bad_capacity)
    throw std::invalid_argument(
        "max_min_rates: capacities must be finite and >= 0");
  // The pass just computed the exact top-2 min shares over live links: store
  // them so the next resolve's incremental verdict can skip this scan.
  sb_min1_ = min_share;
  sb_l1_ = min_link;
  sb_min2_ = second_share;
  sb_l2_ = std::isfinite(second_share) ? second_link : -1;
  sb_cap_epoch_ = fabric_.capacity_epoch();
  sb_valid_ = min_link >= 0;
  sb_updated_ = true;
  ++stats_.minshare_full;
  static obs::Counter& full_scan =
      obs::metrics().counter("net.solver.minshare.full_scan");
  full_scan.inc();
  if (!std::isfinite(min_share)) return false;  // general path will diagnose
  const double cutoff = min_share;  // exact ties only, matching the cores
  // "Exactly one link fires" is a top-2 question: the minimum always fires,
  // so uniqueness is `second_share > cutoff` — same verdict as the old
  // counting pass, without re-walking the live list.
  if (second_share <= cutoff ||
      flows_on_link_[static_cast<std::size_t>(min_link)].size() !=
          active_order_.size())
    return false;
  if (ss) {
    ss->iterations = 1;
    ss->bottleneck_links = 1;
  }
  // Park, don't write: the closed form's uniform rate goes through the same
  // lazy coalescing as the incremental verdict, so even resolves that had to
  // pay this full scan (summary invalidated by churn on both ranked links)
  // contribute ~1 materialised write per churn instead of one per active
  // flow. A zero rate or a stalled survivor needs set_rate's stall
  // bookkeeping at *this* instant — those stay eager, as does reference
  // mode (`incremental_writeback = false`, the whole-set write).
  if (cfg_.incremental_writeback && stalled_ == 0 && min_share > 0.0) {
    if (pending_uniform_ && eng_.now() != pending_time_) materialize_pending();
    if (!pending_uniform_) {
      pending_uniform_ = true;
      pending_time_ = eng_.now();
      pending_first_ = min_share;
      pending_mixed_ = false;
    } else {
      pending_mixed_ = pending_mixed_ || min_share != pending_first_;
    }
    pending_rate_ = min_share;
    return true;
  }
  // Eager write: settle any parked rate first — the early-out comparison and
  // set_rate's accrual both read `f.rate`. (Reference mode never parks; this
  // matters for the zero-rate / stalled cases reached after a same-instant
  // park, e.g. a capacity failure landing in the instant of a start burst.)
  materialize_pending();
  std::uint64_t applied = 0;
  for (int s : active_order_) {
    Flow& f = slots_[static_cast<std::size_t>(s)];
    const bool noop = min_share == f.rate && (min_share > 0.0 || f.stalled);
    if (!noop) {
      set_rate(f.id, f, min_share);
      ++applied;
    } else if (!cfg_.incremental_writeback) {
      set_rate(f.id, f, min_share);
    }
  }
  note_writeback(applied,
                 static_cast<std::uint64_t>(active_order_.size()) - applied);
  return true;
}

void FlowSim::warm_solve(SolveStats* ss) {
  // Whole-active-set re-solve without leaving the simulator's persistent
  // state: no BFS completion, no id sort, no CSR re-pack, no link renumber.
  // `active_order_` is already the cold solve's flow visit order and each
  // `flows_on_link_` list is already in the cold solve's
  // transposed-incidence order (ascending flow id), so running the
  // water-filling loop of `max_min_rates_csr` directly over them performs
  // the same arithmetic in the same order — rates are bit-identical to the
  // cold path (the differential suite pins this). Every flow is
  // unit-weight here; the frozen-prefix replay relies on that.
  const std::size_t members = active_order_.size();
  const std::uint64_t cap_epoch = fabric_.capacity_epoch();
  static obs::Counter& warm_hits =
      obs::metrics().counter("net.solver.warmstart.hit");
  static obs::ShardedStats& frontier_stat =
      obs::metrics().stats("net.solver.frontier_size");
  warm_hits.inc();

  // A conclusive incremental "no" verdict from `try_single_incremental`
  // makes the full O(live links) scan pointless this resolve.
  if (!sb_skip_full_ && warm_single_bottleneck(ss)) {
    ++stats_.warm_single_hits;
    frontier_stat.add(0.0);
    warm_meta_ok_ = false;  // no fresh freeze metadata this pass
    return;
  }

  // From here on the solve compares against and writes `f.rate` (memo
  // replay and the general water-filling both go through set_rate): the
  // parked uniform rate must be settled first or the early-out comparisons
  // and accrual would read stale values.
  materialize_pending();

  if (warm_memo_lookup()) {
    ++stats_.warm_memo_hits;
    frontier_stat.add(0.0);
    warm_meta_ok_ = false;  // no fresh freeze metadata this pass
    return;
  }

  if (warm_frozen_.size() < slots_.size()) {
    warm_frozen_.resize(slots_.size(), 0);
    warm_batch_.resize(slots_.size(), 0);
    warm_level_.resize(slots_.size(), 0);
    warm_rate_.resize(slots_.size(), 0.0);
  }
  const auto& caps = fabric_.effective_capacities();
  if (warm_resid_.size() < caps.size()) {
    warm_resid_.resize(caps.size(), 0.0);
    warm_aw_.resize(caps.size(), 0.0);
  }

  // Encounter pass: residual capacity, unfrozen weight and the active-link
  // list in first-seen order over flows in ascending id — exactly how the
  // CSR core initialises its scratch from a packed problem. Since ISSUE 10
  // warm_resid_/warm_aw_ are POSITION-indexed (dense SoA parallel to
  // warm_links_, contiguous for the scan kernel); link_local_id_ under the
  // current remap epoch maps link id -> position, exactly as the component
  // packer uses it.
  ++remap_epoch_;
  warm_links_.clear();
  for (int s : active_order_) {
    for (int l : slots_[static_cast<std::size_t>(s)].path) {
      const auto lu = static_cast<std::size_t>(l);
      if (link_remap_epoch_[lu] != remap_epoch_) {
        link_remap_epoch_[lu] = remap_epoch_;
        const double c = caps[lu];
        if (!std::isfinite(c) || c < 0.0)
          throw std::invalid_argument(
              "max_min_rates: capacities must be finite and >= 0");
        const std::size_t p = warm_links_.size();
        link_local_id_[lu] = static_cast<int>(p);
        warm_resid_[p] = c;
        warm_aw_[p] = 1.0;
        warm_links_.push_back(l);
      } else {
        warm_aw_[static_cast<std::size_t>(link_local_id_[lu])] += 1.0;
      }
    }
  }

  // Tandem compaction of the dense block (replaces the id-indexed erase):
  // links whose unfrozen-crosser count hit zero leave the list, survivors
  // keep first-seen order and get re-pointed positions. Unit weights make
  // the threshold exact — warm_aw_ holds whole numbers, so <= 1e-12 means
  // exactly zero, and an erased link can never be crossed by a flow that
  // freezes later (no unfrozen flow crosses it), so its stamp is cleared
  // rather than re-pointed.
  auto compact_live = [&] {
    std::size_t w = 0;
    for (std::size_t i = 0; i < warm_links_.size(); ++i) {
      const int l = warm_links_[i];
      const auto lu = static_cast<std::size_t>(l);
      if (warm_aw_[i] <= 1e-12) {
        link_remap_epoch_[lu] = 0;
        continue;
      }
      warm_links_[w] = l;
      warm_resid_[w] = warm_resid_[i];
      warm_aw_[w] = warm_aw_[i];
      link_local_id_[lu] = static_cast<int>(w);
      ++w;
    }
    warm_links_.resize(w);
  };

  ++warm_pass_;
  std::size_t remaining = members;
  std::int64_t iterations = 0;
  std::int64_t bottlenecks = 0;
  warm_seq2_.clear();
  warm_seq2_lvl_.clear();
  // Change-list: flows whose frozen rate will differ from the currently
  // applied one, recorded at freeze time (f.rate is untouched until the
  // final write-back, so the set_rate early-out condition evaluated here is
  // exactly the one the write-back would hit). Replayed flows are never
  // pushed: a replay freezes each flow at its own current `f.rate`, and a
  // live rate-0 flow is always stalled after its first applied solve, so
  // the early-out condition provably holds for them.
  changed_slots_.clear();

  // Frozen-prefix replay, removal-only deltas: with k* the minimum freeze
  // level among the flows removed since the previous warm solve, every
  // freeze below level k* is provably bit-unchanged (DESIGN.md §9 gives the
  // argument), so re-apply the stored freeze sequence instead of
  // re-deriving it. `f.rate` still holds the previous solve's rate for
  // every replayed flow — nothing between two warm solves rewrites rates.
  std::size_t replayed = 0;
  if (warm_meta_ok_ && !delta_has_add_ && !delta_meta_broken_ &&
      cap_epoch == warm_cap_epoch_ && delta_min_level_ > 1) {
    const int k_star = delta_min_level_;
    // Levels are nondecreasing along the freeze sequence, and entries at
    // levels >= k* (which include every removed flow, hence possibly freed
    // slots) are never touched.
    for (std::size_t i = 0; i < warm_seq_.size() && warm_seq_lvl_[i] < k_star;
         ++i) {
      const int s = warm_seq_[i];
      const auto su = static_cast<std::size_t>(s);
      const Flow& f = slots_[su];
      warm_frozen_[su] = warm_pass_;
      warm_level_[su] = warm_seq_lvl_[i];
      warm_rate_[su] = f.rate;
      warm_seq2_.push_back(s);
      warm_seq2_lvl_.push_back(warm_seq_lvl_[i]);
      --remaining;
      ++replayed;
      for (int l : f.path) {
        // Replayed flows' links are all in this epoch's encounter set, and
        // no compaction has run yet, so the position is always live.
        const auto p = static_cast<std::size_t>(
            link_local_id_[static_cast<std::size_t>(l)]);
        warm_resid_[p] -= f.rate;
        warm_aw_[p] -= 1.0;
      }
    }
    // One stable compaction reproduces the incremental per-iteration erases
    // the cold solve performs across the replayed levels (unit weights make
    // the threshold exact: active weights are whole numbers, so <= 1e-12
    // means exactly zero at every intermediate step too).
    compact_live();
    // Iteration parity with the cold solve: it would have run k*-1 levels
    // before reaching new work — or stopped at the last replayed level if
    // the replay already froze every current member.
    iterations = (remaining == 0 && !warm_seq2_lvl_.empty())
                     ? warm_seq2_lvl_.back()
                     : k_star - 1;
    if (replayed > 0) ++stats_.warm_prefix_hits;
  }

  const double inf = std::numeric_limits<double>::infinity();
  // Same dispatched kernel as the CSR core: a branch-free sweep over the
  // dense position-indexed block (simd.hpp pins scalar == AVX2 bitwise).
  const MinShareScanFn kernel = min_share_scan();
  const SolverTuning& tun = solver_tuning();
  auto scan_min = [&](std::size_t b, std::size_t e) {
    return kernel(warm_resid_.data(), warm_aw_.data(), b, e);
  };

  std::int64_t parallel_scans = 0;
  while (remaining > 0) {
    ++iterations;
    const std::size_t n_active = warm_links_.size();
    const bool par_scan = n_active >= tun.parallel_scan_threshold;
    if (par_scan) ++parallel_scans;
    const double min_share =
        par_scan ? sim::parallel_reduce(
                       n_active, tun.scan_grain, inf, scan_min,
                       [](double a, double b) { return std::min(a, b); })
                 : scan_min(0, n_active);
    if (!std::isfinite(min_share))
      throw std::runtime_error(
          "max_min_rates: no finite bottleneck share for remaining flows");
    const double cutoff = min_share;  // exact ties only, matching the cores
    const int level = static_cast<int>(iterations);
    for (std::size_t pi = 0; pi < n_active; ++pi) {
      const double aw = warm_aw_[pi];
      if (aw <= 0.0) continue;
      if (std::max(0.0, warm_resid_[pi]) / aw > cutoff) continue;
      const auto lu = static_cast<std::size_t>(warm_links_[pi]);
      ++bottlenecks;
      const auto& on = flows_on_link_[lu];
      // Same serial-vs-batch split as the CSR core (see solver.hpp on why
      // the batch path is bit-identical); unit rates make the per-link
      // subtraction values within one batch all equal to min_share.
      std::size_t batch = 0;
      if (n_active >= tun.parallel_scan_threshold) {
        for (int s : on)
          if (warm_frozen_[static_cast<std::size_t>(s)] != warm_pass_) ++batch;
      }
      if (batch < tun.parallel_update_min) {
        for (int s : on) {
          const auto su = static_cast<std::size_t>(s);
          if (warm_frozen_[su] == warm_pass_) continue;
          warm_frozen_[su] = warm_pass_;
          warm_level_[su] = level;
          warm_rate_[su] = min_share;
          const Flow& ff = slots_[su];
          if (!(min_share == ff.rate && (min_share > 0.0 || ff.stalled)))
            changed_slots_.push_back(s);
          warm_seq2_.push_back(s);
          warm_seq2_lvl_.push_back(level);
          --remaining;
          for (int pl : slots_[su].path) {
            // Every link of a flow unfrozen until now still has unfrozen
            // crossers, so it survived every compaction and its position
            // under the current epoch is live (unit-weight argument above).
            const auto p = static_cast<std::size_t>(
                link_local_id_[static_cast<std::size_t>(pl)]);
            warm_resid_[p] -= min_share;
            warm_aw_[p] -= 1.0;
          }
        }
      } else {
        ++warm_batch_epoch_;
        for (int s : on) {
          const auto su = static_cast<std::size_t>(s);
          if (warm_frozen_[su] == warm_pass_) continue;
          warm_frozen_[su] = warm_pass_;
          warm_level_[su] = level;
          warm_rate_[su] = min_share;
          warm_batch_[su] = warm_batch_epoch_;
          const Flow& ff = slots_[su];
          if (!(min_share == ff.rate && (min_share > 0.0 || ff.stalled)))
            changed_slots_.push_back(s);
          warm_seq2_.push_back(s);
          warm_seq2_lvl_.push_back(level);
          --remaining;
        }
        sim::parallel_for(
            n_active, tun.scan_grain, [&](std::size_t b, std::size_t e) {
              for (std::size_t i = b; i < e; ++i) {
                const auto lu2 = static_cast<std::size_t>(warm_links_[i]);
                for (int s : flows_on_link_[lu2]) {
                  const auto su = static_cast<std::size_t>(s);
                  if (warm_batch_[su] != warm_batch_epoch_) continue;
                  warm_resid_[i] -= warm_rate_[su];
                  warm_aw_[i] -= 1.0;
                }
              }
            });
      }
    }
    compact_live();
  }

  // Freeze metadata + memo for the next resolve's replay paths, then apply
  // rates in ascending id order (set_rate early-outs keep accrual schedules
  // bitwise aligned with the cold path).
  warm_seq_.swap(warm_seq2_);
  warm_seq_lvl_.swap(warm_seq2_lvl_);
  warm_meta_ok_ = true;
  warm_cap_epoch_ = cap_epoch;
  delta_has_add_ = false;
  delta_meta_broken_ = false;
  delta_min_level_ = 0;

  WarmMemo& m = memo_[memo_next_];
  memo_next_ ^= 1;
  m.valid = true;
  m.cap_epoch = cap_epoch;
  m.stream.clear();
  m.offsets.clear();
  m.rates.clear();
  m.offsets.push_back(0);
  for (int s : active_order_) {
    const Flow& f = slots_[static_cast<std::size_t>(s)];
    m.stream.insert(m.stream.end(), f.path.begin(), f.path.end());
    m.offsets.push_back(static_cast<int>(m.stream.size()));
    m.rates.push_back(warm_rate_[static_cast<std::size_t>(s)]);
  }

  const std::size_t frontier = members - replayed;
  stats_.frontier_flows += frontier;
  frontier_stat.add(static_cast<double>(frontier));
  if (ss) {
    ss->iterations = iterations;
    ss->bottleneck_links = bottlenecks;
    ss->parallel_scans = parallel_scans;
  }

  if (cfg_.incremental_writeback) {
    // Only flows whose rate actually moves reach set_rate; the order is
    // freeze order rather than ascending id, which is immaterial — each
    // write touches one flow's independent state at one instant.
    for (int s : changed_slots_) {
      Flow& f = slots_[static_cast<std::size_t>(s)];
      set_rate(f.id, f, warm_rate_[static_cast<std::size_t>(s)]);
    }
    note_writeback(changed_slots_.size(), members - changed_slots_.size());
  } else {
    std::uint64_t applied = 0;
    for (int s : active_order_) {
      Flow& f = slots_[static_cast<std::size_t>(s)];
      const double r = warm_rate_[static_cast<std::size_t>(s)];
      if (!(r == f.rate && (r > 0.0 || f.stalled))) ++applied;
      set_rate(f.id, f, r);
    }
    note_writeback(applied, members - applied);
  }
}

void FlowSim::resolve_and_schedule() {
  if (has_pending_event_) {
    eng_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (active_count_ == 0) {
    clear_dirty();
    sb_valid_ = false;  // incidence changed with no verification to refresh it
    return;
  }
  ++stats_.resolves;

  bool full = !cfg_.incremental;
  bool warm = false;
  bool lazy = false;  // single-bottleneck verdict resolved without a solve
  sb_skip_full_ = false;
  sb_updated_ = false;
  SolveStats ss;
  if (full) {
    ++stats_.full_solves;
    comp_slots_.clear();
  } else {
    if (cfg_.warm_start && cfg_.incremental_writeback) {
      // Incremental single-bottleneck verdict from the maintained top-2
      // share summary: a "yes" skips the BFS, the O(live links) scan AND
      // the write-back — the uniform rate is parked for lazy,
      // once-per-instant materialisation.
      const int verdict = try_single_incremental(&ss);
      if (verdict == 1) {
        lazy = true;
        warm = true;
        comp_slots_.clear();
        ++stats_.warm_solves;
        ++stats_.warm_single_hits;
        warm_meta_ok_ = false;  // no fresh freeze metadata this pass
        static obs::Counter& warm_hits =
            obs::metrics().counter("net.solver.warmstart.hit");
        static obs::ShardedStats& frontier_stat =
            obs::metrics().stats("net.solver.frontier_size");
        warm_hits.inc();
        frontier_stat.add(0.0);
      } else if (verdict == 0) {
        sb_skip_full_ = true;
      }
    }
    if (!lazy) {
      // The parked uniform rate (if any) is NOT applied here: the BFS below
      // reads only incidence, and a bailed verdict usually lands back in the
      // closed form, which re-parks. Each eager path that really compares or
      // writes `f.rate` materialises at its own entry instead — this is what
      // keeps same-instant start bursts (scenario injection, the bench ramp)
      // from paying one whole-set write per bailed verdict.
      // With warm start enabled the BFS may stop early: it only has to
      // prove the component oversized — the warm solve re-derives
      // membership from `active_order_` itself, so `comp_slots_` is just a
      // size lower bound.
      const double limit =
          cfg_.fallback_fraction * static_cast<double>(active_count_);
      affected_component(cfg_.warm_start ? limit : -1.0);
      stats_.largest_component = std::max<std::uint64_t>(
          stats_.largest_component, comp_slots_.size());
      if (comp_truncated_ ||
          static_cast<double>(comp_slots_.size()) > limit) {
        if (cfg_.warm_start) {
          warm = true;
          ++stats_.warm_solves;
        } else {
          full = true;
          ++stats_.fallback_solves;
          static obs::Counter& warm_fb =
              obs::metrics().counter("net.solver.warmstart.fallback");
          warm_fb.inc();
        }
      }
    }
  }

  if (full) materialize_pending();
  if (warm && !lazy) {
    warm_solve(&ss);
  } else if (full) {
    // Re-solve the whole active set, decomposed into connected components
    // (flows transitively sharing links) discovered in ascending
    // first-flow-id order. Per-component solutions equal the global solution
    // bit-for-bit (the PR 4 component-vs-global property pins this), each
    // component goes through the persistent CSR path, and stats sum in
    // component order — same rates and same counts as the old
    // `max_min_rates_components` route, but a fallback solve now allocates
    // nothing once warm either.
    order_.clear();
    for (std::size_t s = 0; s < slots_.size(); ++s)
      if (slots_[s].id != 0) order_.push_back(static_cast<int>(s));
    std::sort(order_.begin(), order_.end(), [this](int a, int b) {
      return slots_[static_cast<std::size_t>(a)].id <
             slots_[static_cast<std::size_t>(b)].id;
    });
    ++visit_epoch_;
    for (int seed : order_) {
      if (slots_[static_cast<std::size_t>(seed)].visit_epoch == visit_epoch_)
        continue;
      component_from(seed);
      SolveStats cs;
      solve_component(comp_slots_, &cs);
      ss.iterations += cs.iterations;
      ss.bottleneck_links += cs.bottleneck_links;
      ss.parallel_scans += cs.parallel_scans;
    }
    comp_slots_ = order_;  // solved set, for the drop sweep below
    warm_meta_ok_ = false;
  } else if (!comp_slots_.empty()) {
    ++stats_.component_solves;
    materialize_pending();  // solve_component compares and writes `f.rate`
    solve_component(comp_slots_, &ss);
    warm_meta_ok_ = false;  // some rates changed outside the warm bookkeeping
  }
  const std::vector<int>& solved = warm ? active_order_ : comp_slots_;
  stats_.flows_solved += solved.size();
  stats_.solver_iterations += static_cast<std::uint64_t>(ss.iterations);
  stats_.bottleneck_links += static_cast<std::uint64_t>(ss.bottleneck_links);
  stats_.parallel_scans += static_cast<std::uint64_t>(ss.parallel_scans);

  // Per-solve observability: component size, which solve path ran, and
  // solver effort — the numbers that explain where resolve time goes.
  // `reason` records *why* a full solve was taken: 0 = no fallback (warm or
  // restricted solve), 1 = incremental disabled, 2 = component exceeded
  // fallback_fraction with warm start disabled.
  obs::tracer().instant(
      "net",
      warm ? "resolve_warm" : full ? "resolve_full" : "resolve_component",
      eng_.now(),
      {{"flows", static_cast<double>(solved.size())},
       {"active", static_cast<double>(active_count_)},
       {"iterations", static_cast<double>(ss.iterations)},
       {"reason", full ? (!cfg_.incremental ? 1.0 : 2.0) : 0.0}});
  {
    static obs::Counter& resolves = obs::metrics().counter("net.resolves");
    static obs::Counter& fulls = obs::metrics().counter("net.full_solves");
    static obs::Counter& iters =
        obs::metrics().counter("net.solver.iterations");
    static obs::Counter& bnecks =
        obs::metrics().counter("net.solver.bottleneck_links");
    static obs::ShardedStats& comp_size =
        obs::metrics().stats("net.solve_component_flows");
    static obs::Gauge& active = obs::metrics().gauge("net.active_flows");
    resolves.inc();
    if (full) fulls.inc();
    iters.inc(static_cast<std::uint64_t>(ss.iterations));
    bnecks.inc(static_cast<std::uint64_t>(ss.bottleneck_links));
    comp_size.add(static_cast<double>(solved.size()));
    active.set(static_cast<double>(active_count_));
  }

  // Zero-rate flows: under Drop, remove them now. Their rate is 0, so they
  // consume no capacity — removal provably leaves every other rate unchanged
  // (in the water-filling they freeze at share 0 in the first iteration and
  // subtract nothing), so no re-solve is needed.
  dropped_slots_.clear();
  dropped_ids_.clear();
  // Under a parked uniform rate the sweep is skipped as provably empty: the
  // pending rate is positive and covers every active flow, so the eager
  // write would have left no zero-rate flows (reading `f.rate` here would
  // see stale values). This covers both park sites — the incremental
  // verdict and the closed form inside the warm solve.
  if (cfg_.stall_policy == StallPolicy::Drop && !pending_uniform_) {
    for (int s : solved)
      if (slots_[static_cast<std::size_t>(s)].rate <= 0.0)
        dropped_slots_.push_back(s);
    for (int s : dropped_slots_) {
      const std::uint64_t id = slots_[static_cast<std::size_t>(s)].id;
      obs::tracer().instant("net", "flow_drop", eng_.now(),
                            {{"flow", static_cast<double>(id)}});
      dropped_ids_.push_back(id);
      remove_flow(s);
      ++dropped_;
    }
    static obs::Counter& drops = obs::metrics().counter("net.flows_dropped");
    drops.inc(dropped_slots_.size());
  }

  const double now = eng_.now();
  double next_done = std::numeric_limits<double>::infinity();
  if (pending_uniform_) {
    // Every active flow's effective rate is the (positive) pending value;
    // `remaining_eff_at` is bitwise the remaining the eager write-back would
    // have produced, so the completion horizon is identical.
    for (int s : active_order_) {
      const Flow& f = slots_[static_cast<std::size_t>(s)];
      next_done =
          std::min(next_done, remaining_eff_at(f, now) / pending_rate_);
    }
  } else {
    for (const Flow& f : slots_)
      if (f.id != 0 && f.rate > 0.0)
        next_done = std::min(next_done, remaining_at(f, now) / f.rate);
  }

  // Summary upkeep: a resolve that neither merged nor rebuilt the top-2
  // leaves it stale against the new incidence; drops after the verdict do
  // the same. Either way the next resolve must take the full scan.
  if (!sb_updated_ || !dropped_slots_.empty()) sb_valid_ = false;

  clear_dirty();

  if (std::isfinite(next_done)) {
    pending_event_ = eng_.schedule_in(std::max(next_done, 0.0), [this] {
      has_pending_event_ = false;
      // Completions read and remove flows: settle the parked uniform rate
      // first so `remaining`/`rate` fields are the eager path's values.
      materialize_pending();
      const double t = eng_.now();
      // Complete every flow that has drained (ties finish together).
      done_slots_.clear();
      for (std::size_t s = 0; s < slots_.size(); ++s) {
        const Flow& f = slots_[s];
        if (f.id == 0 || f.rate <= 0.0) continue;
        if (remaining_at(f, t) <= 1e-6 * std::max(1.0, f.rate))
          done_slots_.push_back(static_cast<int>(s));
      }
      std::sort(done_slots_.begin(), done_slots_.end(), [this](int a, int b) {
        return slots_[static_cast<std::size_t>(a)].id <
               slots_[static_cast<std::size_t>(b)].id;
      });
      done_callbacks_.clear();
      static obs::Counter& completed =
          obs::metrics().counter("net.flows_completed");
      for (int s : done_slots_) {
        Flow& f = slots_[static_cast<std::size_t>(s)];
        // The flow's whole lifetime as one span: start -> last byte drained.
        obs::tracer().span("net", "flow", f.start_time, t - f.start_time,
                           {{"flow", static_cast<double>(f.id)},
                            {"bytes", f.total_bytes},
                            {"hops", static_cast<double>(f.path.size())}});
        completed.inc();
        done_callbacks_.push_back(std::move(f.on_done));
        remove_flow(s);
      }
      resolve_and_schedule();
      for (auto& cb : done_callbacks_)
        if (cb) cb();
      done_callbacks_.clear();
    });
    has_pending_event_ = true;
  }
  // else: every active flow is stalled; nothing to schedule. They recover
  // when a future add/remove dirties their component after link repair.

  if (stall_hook_ && !dropped_ids_.empty()) {
    // Steal the list: the hook may re-enter (start replacement flows) and
    // clobber the member buffer mid-iteration.
    auto ids = std::move(dropped_ids_);
    dropped_ids_ = {};
    for (std::uint64_t id : ids) stall_hook_(id);
  }
}

void FlowSim::for_each_flow(
    const std::function<void(std::uint64_t, const std::vector<int>&, double,
                             double)>& fn) const {
  const double now = eng_.now();
  for (int s : active_order_) {
    const Flow& f = slots_[static_cast<std::size_t>(s)];
    fn(f.id, f.path, remaining_eff_at(f, now),
       pending_uniform_ ? pending_rate_ : f.rate);
  }
}

}  // namespace xscale::net
