#include "net/flowsim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/parallel.hpp"

namespace xscale::net {

void FlowSim::ensure_sized() {
  const std::size_t n = fabric_.topology().links().size();
  if (link_load_.size() == n) return;
  link_load_.assign(n, 0);
  flows_on_link_.assign(n, {});
  link_dirty_.assign(n, 0);
  link_visit_epoch_.assign(n, 0);
  link_local_id_.assign(n, 0);
  link_remap_epoch_.assign(n, 0);
}

void FlowSim::mark_dirty(int link) {
  const auto lu = static_cast<std::size_t>(link);
  if (link_dirty_[lu]) return;
  link_dirty_[lu] = 1;
  dirty_links_.push_back(link);
}

void FlowSim::clear_dirty() {
  for (int l : dirty_links_) link_dirty_[static_cast<std::size_t>(l)] = 0;
  dirty_links_.clear();
}

std::uint64_t FlowSim::start(int src, int dst, double bytes, Done on_done) {
  ensure_sized();
  auto path = fabric_.route(src, dst, rng_, &link_load_);
  return start_on_path(std::move(path), bytes, std::move(on_done));
}

std::uint64_t FlowSim::start_on_path(std::vector<int> path, double bytes,
                                     Done on_done) {
  assert(!path.empty());
  ensure_sized();
  advance_to_now();
  const std::uint64_t id = next_id_++;
  const double total = std::max(bytes, 1.0);
  auto [it, inserted] = flows_.emplace(
      id, Flow{std::move(path), total, 0.0, false, 0, eng_.now(), total,
               std::move(on_done)});
  assert(inserted);
  obs::tracer().instant(
      "net", "flow_start", eng_.now(),
      {{"flow", static_cast<double>(id)},
       {"bytes", total},
       {"hops", static_cast<double>(it->second.path.size())}});
  static obs::Counter& started = obs::metrics().counter("net.flows_started");
  started.inc();
  insert_flow_links(id, it->second);
  resolve_and_schedule();
  return id;
}

void FlowSim::insert_flow_links(std::uint64_t id, const Flow& f) {
  for (int l : f.path) {
    const auto lu = static_cast<std::size_t>(l);
    ++link_load_[lu];
    flows_on_link_[lu].push_back(id);
    mark_dirty(l);
  }
}

void FlowSim::remove_flow(std::uint64_t id) {
  auto it = flows_.find(id);
  assert(it != flows_.end());
  Flow& f = it->second;
  for (int l : f.path) {
    const auto lu = static_cast<std::size_t>(l);
    --link_load_[lu];
    auto& on = flows_on_link_[lu];
    on.erase(std::find(on.begin(), on.end(), id));
    mark_dirty(l);
  }
  if (f.stalled) --stalled_;
  flows_.erase(it);
}

void FlowSim::advance_to_now() {
  const double dt = eng_.now() - last_update_;
  if (dt > 0) {
    for (auto& [id, f] : flows_) f.remaining -= f.rate * dt;
  }
  last_update_ = eng_.now();
}

void FlowSim::set_rate(std::uint64_t id, Flow& f, double rate) {
  // No 1 B/s floor: a zero rate means every byte is stuck behind a failed
  // link, and pretending otherwise hides the failure (satellite fix — the
  // old floor made such flows "complete" after simulated centuries).
  if (rate <= 0.0) {
    rate = 0.0;
    if (!f.stalled) {
      f.stalled = true;
      ++stalled_;
      obs::tracer().instant("net", "flow_stall", eng_.now(),
                            {{"flow", static_cast<double>(id)},
                             {"remaining", f.remaining}});
      static obs::Counter& stalls = obs::metrics().counter("net.flow_stalls");
      stalls.inc();
    }
  } else if (f.stalled) {
    f.stalled = false;
    --stalled_;
    obs::tracer().instant("net", "flow_unstall", eng_.now(),
                          {{"flow", static_cast<double>(id)}, {"rate", rate}});
  }
  f.rate = rate;
}

std::vector<std::uint64_t> FlowSim::affected_component() {
  std::vector<std::uint64_t> comp;
  ++visit_epoch_;
  std::vector<int> link_q = dirty_links_;
  for (int l : link_q) link_visit_epoch_[static_cast<std::size_t>(l)] = visit_epoch_;
  while (!link_q.empty()) {
    const int l = link_q.back();
    link_q.pop_back();
    for (std::uint64_t id : flows_on_link_[static_cast<std::size_t>(l)]) {
      Flow& f = flows_.find(id)->second;
      if (f.visit_epoch == visit_epoch_) continue;
      f.visit_epoch = visit_epoch_;
      comp.push_back(id);
      for (int pl : f.path) {
        const auto plu = static_cast<std::size_t>(pl);
        if (link_visit_epoch_[plu] != visit_epoch_) {
          link_visit_epoch_[plu] = visit_epoch_;
          link_q.push_back(pl);
        }
      }
    }
  }
  std::sort(comp.begin(), comp.end());
  return comp;
}

void FlowSim::solve_component(const std::vector<std::uint64_t>& comp,
                              SolveStats* ss) {
  // Build a compact sub-problem: only the component's links, densely
  // renumbered in first-encounter order (ascending flow id), which makes the
  // restricted solve's arithmetic identical to the full solve's — within a
  // component the full solver performs exactly the same operations in the
  // same order, and flows outside it never touch these links.
  ++remap_epoch_;
  comp_caps_.clear();
  comp_paths_.resize(comp.size());
  const auto& caps = fabric_.effective_capacities();
  for (std::size_t i = 0; i < comp.size(); ++i) {
    const Flow& f = flows_.find(comp[i])->second;
    auto& lp = comp_paths_[i];
    lp.clear();
    for (int l : f.path) {
      const auto lu = static_cast<std::size_t>(l);
      if (link_remap_epoch_[lu] != remap_epoch_) {
        link_remap_epoch_[lu] = remap_epoch_;
        link_local_id_[lu] = static_cast<int>(comp_caps_.size());
        comp_caps_.push_back(caps[lu]);
      }
      lp.push_back(link_local_id_[lu]);
    }
  }
  const auto rates = max_min_rates(comp_caps_, comp_paths_, nullptr, ss);
  for (std::size_t i = 0; i < comp.size(); ++i)
    set_rate(comp[i], flows_.find(comp[i])->second, rates[i]);
}

void FlowSim::resolve_and_schedule() {
  if (has_pending_event_) {
    eng_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (flows_.empty()) {
    clear_dirty();
    return;
  }
  ++stats_.resolves;

  bool full = !cfg_.incremental;
  std::vector<std::uint64_t> comp;
  if (full) {
    ++stats_.full_solves;
  } else {
    comp = affected_component();
    stats_.largest_component = std::max<std::uint64_t>(stats_.largest_component, comp.size());
    if (static_cast<double>(comp.size()) >
        cfg_.fallback_fraction * static_cast<double>(flows_.size())) {
      full = true;
      ++stats_.fallback_solves;
    }
  }

  SolveStats ss;
  std::vector<std::uint64_t> solved;
  if (full) {
    // Re-solve rates for the whole active set (deterministic order by id).
    solved.reserve(flows_.size());
    for (const auto& [id, f] : flows_) solved.push_back(id);
    std::sort(solved.begin(), solved.end());
    // Indexed parallel copy — pure reads of the flow table, disjoint writes.
    std::vector<std::vector<int>> paths(solved.size());
    sim::parallel_for(solved.size(), 256, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) paths[i] = flows_.at(solved[i]).path;
    });
    // Component-parallel solve; the union of per-component solutions is the
    // global solution bit-for-bit (the incremental path's oracle tests pin
    // this), and the decomposition itself is thread-count independent.
    const auto rates = max_min_rates_components(fabric_.effective_capacities(),
                                                paths, nullptr, &ss);
    for (std::size_t i = 0; i < solved.size(); ++i)
      set_rate(solved[i], flows_.at(solved[i]), rates[i]);
  } else if (!comp.empty()) {
    ++stats_.component_solves;
    solve_component(comp, &ss);
    solved = std::move(comp);
  }
  stats_.flows_solved += solved.size();
  stats_.solver_iterations += static_cast<std::uint64_t>(ss.iterations);
  stats_.bottleneck_links += static_cast<std::uint64_t>(ss.bottleneck_links);

  // Per-solve observability: component size, incremental-vs-full choice, and
  // solver effort — the numbers that explain where resolve time goes.
  obs::tracer().instant("net", full ? "resolve_full" : "resolve_component",
                        eng_.now(),
                        {{"flows", static_cast<double>(solved.size())},
                         {"active", static_cast<double>(flows_.size())},
                         {"iterations", static_cast<double>(ss.iterations)}});
  {
    static obs::Counter& resolves = obs::metrics().counter("net.resolves");
    static obs::Counter& fulls = obs::metrics().counter("net.full_solves");
    static obs::ShardedStats& comp_size =
        obs::metrics().stats("net.solve_component_flows");
    static obs::Gauge& active = obs::metrics().gauge("net.active_flows");
    resolves.inc();
    if (full) fulls.inc();
    comp_size.add(static_cast<double>(solved.size()));
    active.set(static_cast<double>(flows_.size()));
  }

  // Zero-rate flows: under Drop, remove them now. Their rate is 0, so they
  // consume no capacity — removal provably leaves every other rate unchanged
  // (in the water-filling they freeze at share 0 in the first iteration and
  // subtract nothing), so no re-solve is needed.
  std::vector<std::uint64_t> dropped_ids;
  if (cfg_.stall_policy == StallPolicy::Drop) {
    for (std::uint64_t id : solved)
      if (flows_.at(id).rate <= 0.0) dropped_ids.push_back(id);
    for (std::uint64_t id : dropped_ids) {
      obs::tracer().instant("net", "flow_drop", eng_.now(),
                            {{"flow", static_cast<double>(id)}});
      remove_flow(id);
      ++dropped_;
    }
    static obs::Counter& drops = obs::metrics().counter("net.flows_dropped");
    drops.inc(dropped_ids.size());
  }

  double next_done = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : flows_)
    if (f.rate > 0.0) next_done = std::min(next_done, f.remaining / f.rate);

  clear_dirty();

  if (std::isfinite(next_done)) {
    pending_event_ = eng_.schedule_in(std::max(next_done, 0.0), [this] {
      has_pending_event_ = false;
      advance_to_now();
      // Complete every flow that has drained (ties finish together).
      std::vector<std::uint64_t> done;
      for (auto& [id, f] : flows_)
        if (f.rate > 0.0 && f.remaining <= 1e-6 * std::max(1.0, f.rate))
          done.push_back(id);
      std::sort(done.begin(), done.end());
      std::vector<Done> callbacks;
      callbacks.reserve(done.size());
      static obs::Counter& completed =
          obs::metrics().counter("net.flows_completed");
      for (auto id : done) {
        Flow& f = flows_.at(id);
        // The flow's whole lifetime as one span: start -> last byte drained.
        obs::tracer().span("net", "flow", f.start_time,
                           eng_.now() - f.start_time,
                           {{"flow", static_cast<double>(id)},
                            {"bytes", f.total_bytes},
                            {"hops", static_cast<double>(f.path.size())}});
        completed.inc();
        callbacks.push_back(std::move(f.on_done));
        remove_flow(id);
      }
      resolve_and_schedule();
      for (auto& cb : callbacks)
        if (cb) cb();
    });
    has_pending_event_ = true;
  }
  // else: every active flow is stalled; nothing to schedule. They recover
  // when a future add/remove dirties their component after link repair.

  if (stall_hook_ && !dropped_ids.empty())
    for (std::uint64_t id : dropped_ids) stall_hook_(id);
}

void FlowSim::for_each_flow(
    const std::function<void(std::uint64_t, const std::vector<int>&, double,
                             double)>& fn) const {
  std::vector<std::uint64_t> ids;
  ids.reserve(flows_.size());
  for (const auto& [id, f] : flows_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (auto id : ids) {
    const Flow& f = flows_.at(id);
    fn(id, f.path, f.remaining, f.rate);
  }
}

}  // namespace xscale::net
