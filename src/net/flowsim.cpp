#include "net/flowsim.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace xscale::net {

std::uint64_t FlowSim::start(int src, int dst, double bytes, Done on_done) {
  if (link_load_.empty()) link_load_.assign(fabric_.topology().links().size(), 0);
  auto path = fabric_.route(src, dst, rng_, &link_load_);
  return start_on_path(std::move(path), bytes, std::move(on_done));
}

std::uint64_t FlowSim::start_on_path(std::vector<int> path, double bytes,
                                     Done on_done) {
  assert(!path.empty());
  if (link_load_.empty()) link_load_.assign(fabric_.topology().links().size(), 0);
  advance_to_now();
  const std::uint64_t id = next_id_++;
  for (int l : path) ++link_load_[static_cast<std::size_t>(l)];
  flows_.emplace(id, Flow{std::move(path), std::max(bytes, 1.0), 0.0,
                          std::move(on_done)});
  resolve_and_schedule();
  return id;
}

void FlowSim::advance_to_now() {
  const double dt = eng_.now() - last_update_;
  if (dt > 0) {
    for (auto& [id, f] : flows_) f.remaining -= f.rate * dt;
  }
  last_update_ = eng_.now();
}

void FlowSim::resolve_and_schedule() {
  if (has_pending_event_) {
    eng_.cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (flows_.empty()) return;

  // Re-solve rates for the active set (deterministic order by id).
  std::vector<std::uint64_t> ids;
  ids.reserve(flows_.size());
  for (const auto& [id, f] : flows_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  std::vector<std::vector<int>> paths;
  paths.reserve(ids.size());
  for (auto id : ids) paths.push_back(flows_.at(id).path);
  const auto rates = max_min_rates(fabric_.effective_capacities(), paths);

  double next_done = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto& f = flows_.at(ids[i]);
    f.rate = std::max(rates[i], 1.0);  // guard against zero-rate stalls
    next_done = std::min(next_done, f.remaining / f.rate);
  }

  pending_event_ = eng_.schedule_in(std::max(next_done, 0.0), [this] {
    has_pending_event_ = false;
    advance_to_now();
    // Complete every flow that has drained (ties finish together).
    std::vector<std::uint64_t> done;
    for (auto& [id, f] : flows_)
      if (f.remaining <= 1e-6 * std::max(1.0, f.rate)) done.push_back(id);
    std::sort(done.begin(), done.end());
    std::vector<Done> callbacks;
    for (auto id : done) {
      auto& f = flows_.at(id);
      for (int l : f.path) --link_load_[static_cast<std::size_t>(l)];
      callbacks.push_back(std::move(f.on_done));
      flows_.erase(id);
    }
    resolve_and_schedule();
    for (auto& cb : callbacks)
      if (cb) cb();
  });
  has_pending_event_ = true;
}

}  // namespace xscale::net
