#include "resil/resiliency.hpp"

#include <algorithm>
#include <cmath>

#include "sim/parallel.hpp"

namespace xscale::resil {

std::vector<ComponentClass> frontier_census() {
  // Counts from the §3.1 node description x 9,472 nodes. FIT rates are
  // calibrated (see header) to land MTTI in the paper's few-hours band with
  // HBM and power supplies leading — the ordering §5.4 reports.
  const double nodes = 9472;
  return {
      // 8 GCDs x 4 HBM2e stacks per node; uncorrectable ECC interrupts the
      // job ("level of uncorrectable errors is in line with Summit's HBM2
      // scaled up by capacity", §5.4).
      {"HBM2e stack", nodes * 8 * 4, 295, 1.0},
      // Rectifier/supply modules; "power supplies continue to be a large
      // source of upsets" (§5.4).
      {"Power supply", nodes * 2, 3500, 1.0},
      // GPU logic dies excluding HBM.
      {"GCD logic", nodes * 8, 150, 1.0},
      // Slingshot NICs; fabric manager reroutes around many faults.
      {"Cassini NIC", nodes * 4, 100, 1.0},
      // DDR4 DIMMs: chipkill corrects most events.
      {"DDR4 DIMM", nodes * 8, 40, 0.5},
      {"Trento CPU", nodes, 100, 1.0},
      {"Node NVMe", nodes * 2, 200, 0.5},
      // Switches: leader failover + reroute mask most, but blade switch loss
      // kills the jobs on its endpoints.
      {"Slingshot switch", 74 * 32 + 6 * 16, 500, 1.0},
      // Orion drives: dRAID-2 masks all single (and most double) failures.
      {"Orion drive", 225.0 * (212 + 24), 1000, 0.02},
      // System software, Lustre hiccups, operator error — lumped.
      {"Software/other", 1, 4.0e7, 1.0},
  };
}

double ResiliencyModel::interrupts_per_hour() const {
  double r = 0;
  for (const auto& c : census_) r += c.interrupt_rate_per_hour();
  return r;
}

std::vector<std::pair<std::string, double>> ResiliencyModel::breakdown() const {
  std::vector<std::pair<std::string, double>> b;
  for (const auto& c : census_) b.emplace_back(c.name, c.interrupt_rate_per_hour());
  std::sort(b.begin(), b.end(),
            [](const auto& x, const auto& y) { return x.second > y.second; });
  return b;
}

std::vector<double> ResiliencyModel::sample_intervals(int n, sim::Rng& rng) const {
  const double rate = interrupts_per_hour();
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(rng.exponential(rate));
  return out;
}

std::vector<double> ResiliencyModel::sample_intervals_sharded(
    int n, std::uint64_t seed, int shard) const {
  if (n <= 0) return {};
  if (shard <= 0) shard = 1;
  const double rate = interrupts_per_hour();
  std::vector<double> out(static_cast<std::size_t>(n));
  // Shard boundaries depend on (n, shard) only; each shard owns its own
  // counter-based stream, so sample i is the same double no matter which
  // worker draws it.
  sim::parallel_for(
      out.size(), static_cast<std::size_t>(shard),
      [&](std::size_t b, std::size_t e) {
        sim::Rng rng(sim::splitmix64(
            seed ^ sim::splitmix64(b / static_cast<std::size_t>(shard))));
        for (std::size_t i = b; i < e; ++i) out[i] = rng.exponential(rate);
      });
  return out;
}

double ResiliencyModel::optimal_checkpoint_interval_s(double delta_s) const {
  const double mtti_s = mtti_hours() * 3600.0;
  return std::sqrt(2.0 * delta_s * mtti_s);  // Young's first-order formula
}

double ResiliencyModel::checkpoint_efficiency(double delta_s) const {
  const double mtti_s = mtti_hours() * 3600.0;
  const double tau = optimal_checkpoint_interval_s(delta_s);
  return std::max(0.0, 1.0 - delta_s / tau - tau / (2.0 * mtti_s));
}

ResiliencyModel::CheckpointPlan ResiliencyModel::plan_checkpoints(
    const storage::Orion& orion, double bytes, int client_nodes) const {
  CheckpointPlan p;
  p.write_time_s = orion.ingest_time(bytes, client_nodes);
  p.interval_s = optimal_checkpoint_interval_s(p.write_time_s);
  p.efficiency = checkpoint_efficiency(p.write_time_s);
  return p;
}

}  // namespace xscale::resil
