// Event-driven failure replay for a long-running job with checkpoint/restart.
//
// Young/Daly gives the *expected* efficiency; this simulator actually plays
// failures (exponential inter-arrival at the machine MTTI) against a job
// that checkpoints every `interval`, losing the work since the last
// checkpoint plus a restart penalty on each hit — so the distribution of
// outcomes, not just the mean, is observable. Used to validate the planner
// and by the failure_replay example.
#pragma once

#include "resil/resiliency.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace xscale::resil {

struct JobSimConfig {
  double work_hours = 24.0;        // useful compute needed
  double checkpoint_write_s = 180; // cost of writing one checkpoint
  double checkpoint_interval_s = 0;  // 0 = use Young's optimum
  double restart_s = 600;          // reboot/requeue/reload after a failure
};

struct JobSimResult {
  double wall_hours = 0;
  int failures = 0;
  int checkpoints = 0;
  double lost_work_hours = 0;      // recomputed work + restart time
  double efficiency = 0;           // work_hours / wall_hours
};

// Replay one job instance; deterministic given `rng` state.
JobSimResult replay_job(const ResiliencyModel& model, sim::Rng& rng,
                        JobSimConfig cfg);

// Replay `trials` jobs and average; also reports the spread.
struct JobSimSummary {
  JobSimResult mean;
  double efficiency_p5 = 0;
  double efficiency_p95 = 0;
};
JobSimSummary replay_jobs(const ResiliencyModel& model, std::uint64_t seed,
                          int trials, JobSimConfig cfg);

}  // namespace xscale::resil
