#include "resil/jobsim.hpp"

#include <algorithm>

#include "sim/parallel.hpp"
#include "sim/stats.hpp"

namespace xscale::resil {

JobSimResult replay_job(const ResiliencyModel& model, sim::Rng& rng,
                        JobSimConfig cfg) {
  if (cfg.checkpoint_interval_s <= 0)
    cfg.checkpoint_interval_s =
        model.optimal_checkpoint_interval_s(cfg.checkpoint_write_s);

  const double rate_per_s = model.interrupts_per_hour() / 3600.0;
  JobSimResult out;
  const double work_needed_s = cfg.work_hours * 3600.0;

  double wall = 0;  // elapsed wall clock
  double done = 0;  // committed (checkpointed) work
  double next_failure = rng.exponential(rate_per_s);

  while (done < work_needed_s) {
    // Attempt one segment of work followed by a checkpoint commit.
    const double segment = std::min(cfg.checkpoint_interval_s, work_needed_s - done);
    const double ckpt_at = wall + segment + cfg.checkpoint_write_s;
    if (next_failure < ckpt_at) {
      // Failure before the checkpoint commits: the whole segment is lost.
      const double progressed = std::max(0.0, next_failure - wall);
      out.lost_work_hours += (std::min(progressed, segment) + cfg.restart_s) / 3600.0;
      wall = next_failure + cfg.restart_s;
      ++out.failures;
      next_failure = wall + rng.exponential(rate_per_s);
      continue;
    }
    wall = ckpt_at;
    done += segment;
    ++out.checkpoints;
    out.lost_work_hours += cfg.checkpoint_write_s / 3600.0;
  }

  out.wall_hours = wall / 3600.0;
  out.efficiency = cfg.work_hours / out.wall_hours;
  return out;
}

JobSimSummary replay_jobs(const ResiliencyModel& model, std::uint64_t seed,
                          int trials, JobSimConfig cfg) {
  JobSimSummary s;
  // Trials are independent by construction — each one draws from its own
  // counter-based stream keyed by (seed, trial) — so they shard across the
  // pool with indexed result writes and a trial-order merge below. The
  // summary is bit-identical for any thread count.
  std::vector<JobSimResult> results(
      trials > 0 ? static_cast<std::size_t>(trials) : 0);
  sim::parallel_for(results.size(), 16, [&](std::size_t b, std::size_t e) {
    for (std::size_t t = b; t < e; ++t) {
      sim::Rng rng(sim::splitmix64(seed ^ static_cast<std::uint64_t>(t)));
      results[t] = replay_job(model, rng, cfg);
    }
  });
  sim::SampleSet eff;
  double wall = 0, lost = 0;
  int fails = 0, ckpts = 0;
  for (const JobSimResult& r : results) {
    eff.add(r.efficiency);
    wall += r.wall_hours;
    lost += r.lost_work_hours;
    fails += r.failures;
    ckpts += r.checkpoints;
  }
  const double n = std::max(1, trials);
  s.mean.wall_hours = wall / n;
  s.mean.lost_work_hours = lost / n;
  s.mean.failures = static_cast<int>(fails / n);
  s.mean.checkpoints = static_cast<int>(ckpts / n);
  s.mean.efficiency = eff.mean();
  s.efficiency_p5 = eff.percentile(5);
  s.efficiency_p95 = eff.percentile(95);
  return s;
}

}  // namespace xscale::resil
