// Resiliency model (§5.4 and the 2008 report's resiliency challenge).
//
// A component census with per-class FIT rates (failures per 10^9 device
// hours) gives the system interrupt rate; the paper reports Frontier's MTTI
// "is not much better than [the report's] projected four-hour target", with
// HBM uncorrectable errors and power supplies the leading contributors.
// FIT rates below are calibrated to land the MTTI in that few-hours band
// with that contributor ordering.
//
// The module also couples resiliency to the storage model via the
// Young/Daly optimal checkpoint interval, turning MTTI into an application
// efficiency figure.
#pragma once

#include <string>
#include <vector>

#include "sim/rng.hpp"
#include "storage/orion.hpp"

namespace xscale::resil {

struct ComponentClass {
  std::string name;
  double count = 0;     // devices in the full system
  double fit = 0;       // failures per 1e9 device-hours
  // Fraction of this class's failures that interrupt a running job (vs
  // masked by ECC/dRAID/failover).
  double interrupt_fraction = 1.0;

  double interrupt_rate_per_hour() const {
    return count * fit * 1e-9 * interrupt_fraction;
  }
};

// Frontier's census: 9,472 nodes x (8 HBM-stacked GCDs, 8 DIMMs, 1 CPU,
// 4 NICs, 2 NVMe, power envelope), 2,464 switches, Orion drives.
std::vector<ComponentClass> frontier_census();

class ResiliencyModel {
 public:
  explicit ResiliencyModel(std::vector<ComponentClass> census = frontier_census())
      : census_(std::move(census)) {}

  const std::vector<ComponentClass>& census() const { return census_; }

  double interrupts_per_hour() const;
  double mtti_hours() const { return 1.0 / interrupts_per_hour(); }

  // Leading contributor classes, sorted by interrupt rate (descending).
  std::vector<std::pair<std::string, double>> breakdown() const;

  // Monte Carlo failure injection: sample `n` inter-failure intervals.
  // Exponential superposition across classes; returns hours.
  std::vector<double> sample_intervals(int n, sim::Rng& rng) const;

  // Same distribution, sharded across the thread pool: samples are drawn in
  // fixed shards of `shard` draws, each from its own counter-based stream
  // `Rng(splitmix64(seed ^ splitmix64(shard_index)))`, and written to
  // index-disjoint slots — the returned vector is bit-identical for any
  // XSCALE_THREADS, including 1. Note the streams differ from the single
  // `sample_intervals(n, rng)` sequence by construction; what is invariant
  // is the (seed, shard) -> samples mapping.
  std::vector<double> sample_intervals_sharded(int n, std::uint64_t seed,
                                               int shard = 4096) const;

  // Young/Daly: optimal checkpoint interval (s) given checkpoint write time
  // `delta_s`, and the resulting application efficiency.
  double optimal_checkpoint_interval_s(double delta_s) const;
  double checkpoint_efficiency(double delta_s) const;

  // End-to-end: checkpoint `bytes` through Orion from `client_nodes` and
  // report interval/efficiency.
  struct CheckpointPlan {
    double write_time_s = 0;
    double interval_s = 0;
    double efficiency = 0;
  };
  CheckpointPlan plan_checkpoints(const storage::Orion& orion, double bytes,
                                  int client_nodes) const;

 private:
  std::vector<ComponentClass> census_;
};

}  // namespace xscale::resil
