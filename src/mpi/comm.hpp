// Simulated MPI: ranks mapped onto machine nodes/NICs, with point-to-point
// and collective time models grounded in the fabric simulator.
//
// Two backing modes:
//   * fabric-backed (Frontier, Summit): achieved bandwidths are sampled from
//     steady-state max-min solves over the job's actual node allocation, so
//     placement (packed vs spread) and topology (dragonfly vs fat-tree)
//     change the numbers — the effects §3.4.2 and §4.2.2 describe;
//   * analytic (Titan/Mira/Theta/Cori baselines): injection-bandwidth and
//     hop-latency models only.
#pragma once

#include <memory>
#include <vector>

#include "machines/machine.hpp"
#include "net/fabric.hpp"
#include "sim/rng.hpp"

namespace xscale::mpi {

struct CommConfig {
  int ppn = 8;  // ranks per node (8 = one per GCD, the paper's expected case)
  // Number of random shift rounds sampled when estimating sustained
  // inter-node bandwidth over the allocation.
  int bandwidth_samples = 8;
  // Extra per-message host overhead when more ranks than NICs share one NIC
  // (message-rate contention at 32 PPN, Table 5 discussion).
  double nic_share_overhead_s = 0.25e-6;
  // Per-stage progress/synchronization overhead inside collectives,
  // calibrated so a full-system 8 B allreduce lands at Table 5's 51.5 us.
  double collective_stage_overhead_s = 1.08e-6;
  std::uint64_t seed = 0xC0117EC7;
};

class SimComm {
 public:
  // `nodes` lists the machine node ids of the allocation (from the
  // scheduler). The fabric pointer may be null for analytic machines.
  SimComm(const machines::Machine& machine, const net::Fabric* fabric,
          std::vector<int> nodes, CommConfig cfg = {});

  int size() const { return static_cast<int>(nodes_.size()) * cfg_.ppn; }
  int nnodes() const { return static_cast<int>(nodes_.size()); }
  int ppn() const { return cfg_.ppn; }
  int node_of_rank(int rank) const { return nodes_[static_cast<std::size_t>(rank / cfg_.ppn)]; }
  int nic_of_rank(int rank) const {
    return (rank % cfg_.ppn) % std::max(1, machine_->node.nics);
  }
  int endpoint_of_rank(int rank) const;

  // --- point-to-point ---------------------------------------------------------
  // Zero-load one-way latency between two ranks (software + wire).
  double latency(int rank_a, int rank_b) const;
  // Time to move `bytes` between two ranks with no competing traffic.
  double pt2pt_time(int rank_a, int rank_b, double bytes) const;
  // Single-flow achieved bandwidth between two ranks.
  double pt2pt_bandwidth(int rank_a, int rank_b) const;

  // --- sustained aggregate bandwidths ------------------------------------------
  // Average per-rank achieved bandwidth when every rank streams to a random
  // peer simultaneously (sampled steady-state solves; cached).
  double sustained_per_rank_bw() const;
  double sustained_per_node_bw() const { return sustained_per_rank_bw() * cfg_.ppn; }

  // --- collectives ------------------------------------------------------------
  // Binomial-tree reduce + broadcast for small payloads, ring
  // reduce-scatter/allgather for large ones.
  double allreduce_time(double bytes) const;
  double barrier_time() const;
  // Personalized all-to-all: each rank sends `bytes_per_pair` to every other
  // rank; executed as size-1 shift rounds at the sustained rate.
  double alltoall_time(double bytes_per_pair) const;
  double allgather_time(double bytes_per_rank) const;
  // Nearest-neighbour halo exchange: each rank exchanges `bytes` with
  // `neighbors` peers concurrently.
  double halo_exchange_time(double bytes, int neighbors) const;
  double broadcast_time(double bytes) const;

  // Average zero-load latency over sampled rank pairs (cached).
  double avg_latency() const;

  const machines::Machine& machine() const { return *machine_; }
  const net::Fabric* fabric() const { return fabric_; }
  const std::vector<int>& nodes() const { return nodes_; }

 private:
  double nic_share_penalty() const;

  const machines::Machine* machine_;
  const net::Fabric* fabric_;
  std::vector<int> nodes_;
  CommConfig cfg_;
  mutable double cached_bw_ = -1;
  mutable double cached_lat_ = -1;
};

}  // namespace xscale::mpi
