#include "mpi/collective_sim.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xscale::mpi {

const char* to_string(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::RecursiveDoubling: return "recursive-doubling";
    case AllreduceAlgo::Ring: return "ring";
  }
  return "?";
}

// Shared per-collective bookkeeping: ranks advance through numbered phases;
// a phase completes when its send has drained AND its expected message has
// arrived. The subclass-free design keeps all three algorithms in one state
// machine parameterized by a "plan" of (peer, bytes) per phase per rank.
struct CollectiveSim::Op {
  struct Phase {
    int send_to = -1;    // -1: no send this phase
    int recv_from = -1;  // -1: no receive expected
    double bytes = 0;
  };
  // plan[rank] = phases in order.
  std::vector<std::vector<Phase>> plan;
  std::vector<int> phase;               // current phase per rank
  std::vector<std::vector<char>> sent;  // send completion flags
  std::vector<std::vector<char>> recvd;
  int done_ranks = 0;
  double start_time = 0;
  const char* name = "collective";  // obs: span name ("allreduce/ring", ...)
  std::function<void(double)> cb;
};

void CollectiveSim::send_msg(const std::shared_ptr<Op>& op, int from, int to,
                             double bytes, std::function<void()> on_recv) {
  static obs::Counter& messages = obs::metrics().counter("mpi.messages");
  messages.inc();
  const auto& nic = comm_.machine().node.nic;
  const double overhead = nic.sw_overhead_s;
  if (comm_.node_of_rank(from) == comm_.node_of_rank(to)) {
    // Shared-memory path: latency + copy through DDR.
    const double t =
        0.5e-6 + bytes / comm_.machine().node.cpu.stream_peak();
    eng_.schedule_in(t, std::move(on_recv));
    (void)op;
    return;
  }
  const double wire = comm_.fabric() != nullptr
                          ? comm_.fabric()->base_latency(comm_.endpoint_of_rank(from),
                                                         comm_.endpoint_of_rank(to))
                          : 2.0 * nic.wire_latency_s;
  eng_.schedule_in(overhead, [this, from, to, bytes, wire,
                              cb = std::move(on_recv)]() mutable {
    if (comm_.fabric() != nullptr) {
      flows_.start(comm_.endpoint_of_rank(from), comm_.endpoint_of_rank(to),
                   bytes, [this, wire, cb = std::move(cb)]() mutable {
                     eng_.schedule_in(wire, std::move(cb));
                   });
    } else {
      const auto& n = comm_.machine().node.nic;
      eng_.schedule_in(wire + bytes / (n.rate * n.efficiency), std::move(cb));
    }
  });
}

namespace {

// Advance `rank` through completed phases; initiate the next send.
void advance(CollectiveSim* cs, const std::shared_ptr<CollectiveSim::Op>& op,
             int rank, sim::Engine& eng,
             const std::function<void(const std::shared_ptr<CollectiveSim::Op>&, int)>&
                 start_phase) {
  auto& ph = op->phase[static_cast<std::size_t>(rank)];
  const auto& phases = op->plan[static_cast<std::size_t>(rank)];
  while (ph < static_cast<int>(phases.size())) {
    const auto& p = phases[static_cast<std::size_t>(ph)];
    const bool send_ok =
        p.send_to < 0 || op->sent[static_cast<std::size_t>(rank)][static_cast<std::size_t>(ph)];
    const bool recv_ok =
        p.recv_from < 0 ||
        op->recvd[static_cast<std::size_t>(rank)][static_cast<std::size_t>(ph)];
    if (!send_ok || !recv_ok) return;
    // One instant per completed (rank, phase): the straggler pattern across
    // ranks is exactly what the analytic models assume away.
    obs::tracer().instant(
        "mpi", "phase_done", eng.now(),
        {{"rank", static_cast<double>(rank)}, {"phase", static_cast<double>(ph)}});
    ++ph;
    if (ph < static_cast<int>(phases.size())) start_phase(op, rank);
  }
  if (++op->done_ranks == static_cast<int>(op->plan.size())) {
    obs::tracer().span("mpi", op->name, op->start_time,
                       eng.now() - op->start_time,
                       {{"ranks", static_cast<double>(op->plan.size())}});
    static obs::Counter& collectives = obs::metrics().counter("mpi.collectives");
    collectives.inc();
    op->cb(eng.now() - op->start_time);
  }
  (void)cs;
}

}  // namespace

void CollectiveSim::allreduce(double bytes, AllreduceAlgo algo,
                              std::function<void(double)> done) {
  const int p = comm_.size();
  auto op = std::make_shared<Op>();
  op->cb = std::move(done);
  op->start_time = eng_.now();
  op->name = algo == AllreduceAlgo::RecursiveDoubling
                 ? "allreduce/recursive-doubling"
                 : "allreduce/ring";
  op->plan.resize(static_cast<std::size_t>(p));

  if (algo == AllreduceAlgo::RecursiveDoubling) {
    // Power-of-two core with fold-in/fold-out for the remainder ranks.
    const int rounds = static_cast<int>(std::floor(std::log2(std::max(1, p))));
    const int core = 1 << rounds;
    const int extras = p - core;
    for (int r = 0; r < p; ++r) {
      auto& phases = op->plan[static_cast<std::size_t>(r)];
      if (r >= core) {
        // Fold in: send everything to the partner, then wait for the result.
        phases.push_back({r - core, -1, bytes});
        phases.push_back({-1, r - core, bytes});
        continue;
      }
      if (r < extras) phases.push_back({-1, core + r, bytes});
      for (int k = 0; k < rounds; ++k) {
        const int peer = r ^ (1 << k);
        phases.push_back({peer, peer, bytes});
      }
      if (r < extras) phases.push_back({core + r, -1, bytes});
    }
  } else {  // Ring: reduce-scatter + allgather, 2(p-1) chunk steps.
    const double chunk = bytes / std::max(1, p);
    for (int r = 0; r < p; ++r) {
      auto& phases = op->plan[static_cast<std::size_t>(r)];
      for (int s = 0; s < 2 * (p - 1); ++s)
        phases.push_back({(r + 1) % p, (r + p - 1) % p, chunk});
    }
  }

  op->phase.assign(static_cast<std::size_t>(p), 0);
  op->sent.resize(static_cast<std::size_t>(p));
  op->recvd.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    op->sent[static_cast<std::size_t>(r)].assign(op->plan[static_cast<std::size_t>(r)].size(), 0);
    op->recvd[static_cast<std::size_t>(r)].assign(op->plan[static_cast<std::size_t>(r)].size(), 0);
  }

  // start_phase initiates the sends of rank's current phase. The stored
  // function keeps only a weak reference to itself; strong references live in
  // the pending engine callbacks, so the chain is freed when the collective
  // drains rather than leaking through a shared_ptr self-capture cycle.
  using StartPhase = std::function<void(const std::shared_ptr<Op>&, int)>;
  auto start_phase = std::make_shared<StartPhase>();
  *start_phase = [this, weak_self = std::weak_ptr<StartPhase>(start_phase)](
                     const std::shared_ptr<Op>& o, int rank) {
    const auto self = weak_self.lock();  // non-null: the caller holds a ref
    const int ph = o->phase[static_cast<std::size_t>(rank)];
    const auto& phase = o->plan[static_cast<std::size_t>(rank)][static_cast<std::size_t>(ph)];
    if (phase.send_to < 0) {
      advance(this, o, rank, eng_, *self);
      return;
    }
    // Find the matching phase index at the receiver: the first phase at the
    // receiver expecting a message from `rank` that has not yet arrived.
    send_msg(o, rank, phase.send_to, phase.bytes,
             [this, o, self, from = rank, to = phase.send_to] {
               auto& rv = o->recvd[static_cast<std::size_t>(to)];
               const auto& plan_to = o->plan[static_cast<std::size_t>(to)];
               for (std::size_t i = 0; i < plan_to.size(); ++i) {
                 if (plan_to[i].recv_from == from && !rv[i]) {
                   rv[i] = 1;
                   break;
                 }
               }
               advance(this, o, to, eng_, *self);
             });
    // Sends are non-blocking (buffered): the sender may start its next phase
    // immediately; phase gating comes from the receive dependencies.
    o->sent[static_cast<std::size_t>(rank)][static_cast<std::size_t>(ph)] = 1;
    advance(this, o, rank, eng_, *self);
  };

  for (int r = 0; r < p; ++r) (*start_phase)(op, r);
}

void CollectiveSim::broadcast(double bytes, int root,
                              std::function<void(double)> done) {
  const int p = comm_.size();
  auto op = std::make_shared<Op>();
  op->cb = std::move(done);
  op->start_time = eng_.now();
  op->name = "broadcast/binomial";
  op->plan.resize(static_cast<std::size_t>(p));
  // Binomial tree in "virtual rank" space (rotated so root is 0). Captured
  // by value: these lambdas outlive this frame inside the engine callbacks.
  auto actual = [p, root](int v) { return (v + root) % p; };
  int rounds = 0;
  while ((1 << rounds) < p) ++rounds;
  for (int v = 0; v < p; ++v) {
    auto& phases = op->plan[static_cast<std::size_t>(v)];
    // Receive phase (non-root): from v - highest set bit.
    if (v != 0) {
      int bit = 1;
      while (bit * 2 <= v) bit *= 2;
      phases.push_back({-1, actual(v - bit), bytes});
    }
    // Send phases: to v + 2^k for k starting after our own arrival bit.
    int start_k = 0;
    if (v != 0) {
      int bit = 1, k = 0;
      while (bit * 2 <= v) {
        bit *= 2;
        ++k;
      }
      start_k = k + 1;
    }
    for (int k = start_k; k < rounds; ++k) {
      const int peer = v + (1 << k);
      if (peer < p) phases.push_back({actual(peer), -1, bytes});
    }
  }

  op->phase.assign(static_cast<std::size_t>(p), 0);
  op->sent.resize(static_cast<std::size_t>(p));
  op->recvd.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    op->sent[static_cast<std::size_t>(r)].assign(op->plan[static_cast<std::size_t>(r)].size(), 0);
    op->recvd[static_cast<std::size_t>(r)].assign(op->plan[static_cast<std::size_t>(r)].size(), 0);
  }
  // Weak self-reference, as in allreduce(): pending callbacks hold the only
  // strong references, so nothing leaks once the tree drains.
  using StartPhase = std::function<void(const std::shared_ptr<Op>&, int)>;
  auto start_phase = std::make_shared<StartPhase>();
  *start_phase = [this, weak_self = std::weak_ptr<StartPhase>(start_phase),
                  actual](const std::shared_ptr<Op>& o, int v) {
    const auto self = weak_self.lock();  // non-null: the caller holds a ref
    const int ph = o->phase[static_cast<std::size_t>(v)];
    const auto& phase = o->plan[static_cast<std::size_t>(v)][static_cast<std::size_t>(ph)];
    if (phase.send_to < 0) {
      advance(this, o, v, eng_, *self);
      return;
    }
    send_msg(o, actual(v), phase.send_to, phase.bytes,
             [this, o, self, from = actual(v), to = phase.send_to] {
               // Receiver is identified by actual rank; find its virtual id.
               for (std::size_t tv = 0; tv < o->plan.size(); ++tv) {
                 const auto& plan_to = o->plan[tv];
                 const int phx = o->phase[tv];
                 if (phx < static_cast<int>(plan_to.size()) &&
                     plan_to[static_cast<std::size_t>(phx)].recv_from == from &&
                     plan_to[static_cast<std::size_t>(phx)].send_to == -1) {
                   // Check the destination matches this virtual rank.
                   o->recvd[tv][static_cast<std::size_t>(phx)] = 1;
                   advance(this, o, static_cast<int>(tv), eng_, *self);
                   break;
                 }
               }
               (void)to;
             });
    o->sent[static_cast<std::size_t>(v)][static_cast<std::size_t>(ph)] = 1;
    advance(this, o, v, eng_, *self);
  };
  for (int v = 0; v < p; ++v) (*start_phase)(op, v);
}

void CollectiveSim::barrier(std::function<void(double)> done) {
  allreduce(8, AllreduceAlgo::RecursiveDoubling, std::move(done));
}

double CollectiveSim::run_allreduce(double bytes, AllreduceAlgo algo) {
  double elapsed = -1;
  allreduce(bytes, algo, [&](double t) { elapsed = t; });
  eng_.run();
  return elapsed;
}

double CollectiveSim::run_broadcast(double bytes, int root) {
  double elapsed = -1;
  broadcast(bytes, root, [&](double t) { elapsed = t; });
  eng_.run();
  return elapsed;
}

double CollectiveSim::run_barrier() {
  double elapsed = -1;
  barrier([&](double t) { elapsed = t; });
  eng_.run();
  return elapsed;
}

}  // namespace xscale::mpi
