// GPCNeT (Global Performance and Congestion Network Test) reproduction.
//
// The benchmark (Chunduri et al., SC'19; §4.2.2 and Table 5 of the Frontier
// paper) splits the job into congestor nodes (80%) running adversarial
// patterns — all-to-all, one/two-sided incast, broadcasts — and victim nodes
// (20%) measuring:
//   * RR (random-ring) two-sided 8 B latency,
//   * RR two-sided bandwidth with sync (128 KiB),
//   * multiple small allreduce.
// Each metric is reported isolated and under congestion, as average and 99th
// percentile. Slingshot's congestion control makes congested == isolated at
// 8 PPN; disabling it (or oversubscribing NICs at 32 PPN) shows degradation.
#pragma once

#include <string>
#include <vector>

#include "machines/machine.hpp"
#include "mpi/comm.hpp"
#include "net/fabric.hpp"

namespace xscale::mpi {

struct GpcnetConfig {
  int nodes = 9400;
  int ppn = 8;
  double victim_fraction = 0.2;
  double rr_message_bytes = 131072;
  int latency_samples = 4096;
  // Latency jitter: lognormal sigma calibrated so p99/avg ~ 1.85 at 8 PPN
  // (Table 5: 4.8/2.6); NIC oversubscription widens the tail.
  double jitter_sigma = 0.27;
  // Offered load per congestor *rank*: GPCNeT congestors use small messages
  // and are message-rate limited, well below NIC line rate. At 8 PPN this
  // keeps global links under capacity (CC isolation, impact 1.0x); at 32 PPN
  // aggregate congestor demand exceeds the taper and victims degrade.
  double congestor_rank_load = 4.5e9;
  // Fraction of the RR BW+Sync window spent streaming (the sync phases idle
  // the NIC); calibrated to Table 5's 3497 MiB/s/rank.
  double rr_bw_duty = 0.80;
  std::uint64_t seed = 0x67C17;
};

struct GpcnetMetric {
  std::string name;
  double average = 0;
  double p99 = 0;
  std::string units;
};

struct GpcnetResult {
  std::vector<GpcnetMetric> isolated;
  std::vector<GpcnetMetric> congested;
  // Congestion impact factor per metric (>= 1; 1.0 is ideal isolation).
  std::vector<double> impact;
};

GpcnetResult run_gpcnet(const machines::Machine& machine, const net::Fabric& fabric,
                        const GpcnetConfig& cfg = {});

}  // namespace xscale::mpi
