#include "mpi/comm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "net/patterns.hpp"

namespace xscale::mpi {

SimComm::SimComm(const machines::Machine& machine, const net::Fabric* fabric,
                 std::vector<int> nodes, CommConfig cfg)
    : machine_(&machine), fabric_(fabric), nodes_(std::move(nodes)), cfg_(cfg) {
  assert(!nodes_.empty());
}

int SimComm::endpoint_of_rank(int rank) const {
  return machines::node_endpoint(*machine_, node_of_rank(rank), nic_of_rank(rank));
}

double SimComm::nic_share_penalty() const {
  const int per_nic = (cfg_.ppn + machine_->node.nics - 1) / machine_->node.nics;
  return static_cast<double>(per_nic - 1) * cfg_.nic_share_overhead_s;
}

double SimComm::latency(int rank_a, int rank_b) const {
  const auto& nic = machine_->node.nic;
  const double sw = 2.0 * nic.sw_overhead_s + nic_share_penalty();
  if (node_of_rank(rank_a) == node_of_rank(rank_b))
    return 0.5e-6;  // shared-memory path
  if (fabric_ != nullptr)
    return sw + fabric_->base_latency(endpoint_of_rank(rank_a), endpoint_of_rank(rank_b));
  // Analytic machines: software + two wire hops + three switch transits.
  return sw + 2.0 * nic.wire_latency_s + 3.0 * 0.2e-6;
}

double SimComm::pt2pt_bandwidth(int rank_a, int rank_b) const {
  const auto& nic = machine_->node.nic;
  if (node_of_rank(rank_a) == node_of_rank(rank_b))
    return machine_->node.cpu.stream_peak();  // on-node copies stream in DDR
  if (fabric_ != nullptr) {
    const auto rates = fabric_->steady_rates(
        {{endpoint_of_rank(rank_a), endpoint_of_rank(rank_b)}});
    return rates[0];
  }
  return nic.rate * nic.efficiency;
}

double SimComm::pt2pt_time(int rank_a, int rank_b, double bytes) const {
  return latency(rank_a, rank_b) + bytes / pt2pt_bandwidth(rank_a, rank_b);
}

double SimComm::sustained_per_rank_bw() const {
  if (cached_bw_ >= 0) return cached_bw_;
  const auto& nic = machine_->node.nic;
  const int ranks = size();
  if (nnodes() == 1) {
    cached_bw_ = machine_->node.cpu.stream_peak() / std::max(1, cfg_.ppn);
    return cached_bw_;
  }
  if (fabric_ == nullptr) {
    // Analytic: node injection bandwidth divided among its ranks.
    cached_bw_ = machine_->node.injection_bandwidth() * nic.efficiency /
                 static_cast<double>(cfg_.ppn);
    return cached_bw_;
  }
  // Sample random rank-level permutation rounds over the allocation and
  // average the achieved per-flow rate (the steady pattern of an all-to-all
  // or a randomized neighbour exchange).
  sim::Rng rng(cfg_.seed);
  double total = 0;
  std::size_t count = 0;
  for (int s = 0; s < cfg_.bandwidth_samples; ++s) {
    const auto perm = net::random_permutation(ranks, rng);
    net::PairList pairs;
    pairs.reserve(perm.size());
    for (const auto& [r, peer] : perm) {
      if (node_of_rank(r) == node_of_rank(peer)) continue;  // on-node: free
      pairs.emplace_back(endpoint_of_rank(r), endpoint_of_rank(peer));
    }
    if (pairs.empty()) continue;
    const auto rates = fabric_->steady_rates(pairs);
    for (double x : rates) total += x;
    count += rates.size();
  }
  cached_bw_ = count > 0 ? total / static_cast<double>(count)
                         : nic.rate * nic.efficiency;
  return cached_bw_;
}

double SimComm::avg_latency() const {
  if (cached_lat_ >= 0) return cached_lat_;
  sim::Rng rng(cfg_.seed ^ 0x1A7);
  const int ranks = size();
  double total = 0;
  const int samples = 32;
  for (int i = 0; i < samples; ++i) {
    const int a = static_cast<int>(rng.index(static_cast<std::uint64_t>(ranks)));
    int b = static_cast<int>(rng.index(static_cast<std::uint64_t>(ranks)));
    if (b == a) b = (b + 1) % ranks;
    total += latency(a, b);
  }
  cached_lat_ = total / samples;
  return cached_lat_;
}

double SimComm::allreduce_time(double bytes) const {
  const int p = size();
  if (p <= 1) return 0;
  const double stages = std::ceil(std::log2(static_cast<double>(p)));
  const double lat = avg_latency();
  // Small payloads: recursive-doubling dissemination, one message per stage.
  const double small = stages * (lat + cfg_.collective_stage_overhead_s);
  // Large payloads: ring reduce-scatter + allgather moves 2*(p-1)/p of the
  // buffer at the sustained rate.
  const double large =
      2.0 * bytes * static_cast<double>(p - 1) / static_cast<double>(p) /
      std::max(1.0, sustained_per_rank_bw());
  return small + large;
}

double SimComm::barrier_time() const { return allreduce_time(8); }

double SimComm::alltoall_time(double bytes_per_pair) const {
  const int p = size();
  if (p <= 1) return 0;
  // (p-1) shift rounds; each round moves bytes_per_pair per rank at the
  // sustained rate, with a per-round latency floor.
  const double per_round = std::max(
      avg_latency(), bytes_per_pair / std::max(1.0, sustained_per_rank_bw()));
  return static_cast<double>(p - 1) * per_round;
}

double SimComm::allgather_time(double bytes_per_rank) const {
  const int p = size();
  if (p <= 1) return 0;
  const double ring = bytes_per_rank * static_cast<double>(p - 1) /
                      std::max(1.0, sustained_per_rank_bw());
  return avg_latency() * std::ceil(std::log2(static_cast<double>(p))) + ring;
}

double SimComm::halo_exchange_time(double bytes, int neighbors) const {
  if (size() <= 1 || neighbors <= 0) return 0;
  // Neighbor exchanges proceed concurrently; the rank's NIC share is the
  // bottleneck, so total bytes divide the sustained rate.
  return avg_latency() +
         static_cast<double>(neighbors) * bytes /
             std::max(1.0, sustained_per_rank_bw());
}

double SimComm::broadcast_time(double bytes) const {
  const int p = size();
  if (p <= 1) return 0;
  const double stages = std::ceil(std::log2(static_cast<double>(p)));
  return stages * (avg_latency() + bytes / std::max(1.0, sustained_per_rank_bw()));
}

}  // namespace xscale::mpi
