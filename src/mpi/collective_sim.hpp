// Event-driven collective algorithms executed message-by-message on the
// flow-level network simulator.
//
// The analytic estimates in `SimComm` are closed-form; this module *runs*
// the algorithms — recursive doubling, ring reduce-scatter/allgather,
// binomial broadcast — as individual flows through `FlowSim`, so skew,
// contention between rounds, and topology effects emerge instead of being
// assumed. Used by tests to validate the analytic models and by the
// ablation bench to compare algorithm choices.
#pragma once

#include <functional>
#include <memory>

#include "mpi/comm.hpp"
#include "net/flowsim.hpp"
#include "sim/engine.hpp"

namespace xscale::mpi {

enum class AllreduceAlgo { RecursiveDoubling, Ring };
const char* to_string(AllreduceAlgo a);

class CollectiveSim {
 public:
  // `comm` supplies the rank->endpoint mapping and software overheads; the
  // fabric behind `flows` carries every message.
  CollectiveSim(sim::Engine& eng, net::FlowSim& flows, const SimComm& comm)
      : eng_(eng), flows_(flows), comm_(comm) {}

  // Each call schedules the collective starting at the engine's current
  // time and invokes `done(completion_time)` when the last rank finishes.
  // Run the engine to execute.
  void allreduce(double bytes, AllreduceAlgo algo,
                 std::function<void(double)> done);
  void broadcast(double bytes, int root, std::function<void(double)> done);
  void barrier(std::function<void(double)> done);

  // Convenience: run the collective to completion on a fresh engine pass and
  // return the elapsed simulated time.
  double run_allreduce(double bytes, AllreduceAlgo algo);
  double run_broadcast(double bytes, int root = 0);
  double run_barrier();

  struct Op;  // per-collective state machine (public for the internal driver)

 private:
  void send_msg(const std::shared_ptr<Op>& op, int from, int to, double bytes,
                std::function<void()> on_recv);

  sim::Engine& eng_;
  net::FlowSim& flows_;
  const SimComm& comm_;
};

}  // namespace xscale::mpi
