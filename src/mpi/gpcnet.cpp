#include "mpi/gpcnet.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "net/patterns.hpp"
#include "sim/parallel.hpp"
#include "sim/stats.hpp"

namespace xscale::mpi {
namespace {

using net::PairList;

// Congestor traffic at NIC granularity: one flow per congestor NIC, with a
// weight equal to the ranks sharing that NIC, so the solve is PPN-faithful
// without 300k individual rank flows.
struct FlowSet {
  PairList pairs;
  std::vector<double> weights;
  std::vector<double> caps;      // offered-load bound per flow (0 = uncapped)
  std::size_t victim_begin = 0;  // victim flows occupy [victim_begin, end)
};

FlowSet build_flows(const machines::Machine& m, const GpcnetConfig& cfg,
                    const std::vector<int>& congestors,
                    const std::vector<int>& victims, bool with_congestion,
                    sim::Rng& rng) {
  FlowSet fs;
  const int nics = std::max(1, m.node.nics);
  const double w = static_cast<double>(cfg.ppn) / static_cast<double>(nics);
  const double congestor_cap = cfg.congestor_rank_load * w;
  auto push = [&fs](int src, int dst, double weight, double cap) {
    fs.pairs.emplace_back(src, dst);
    fs.weights.push_back(weight);
    fs.caps.push_back(cap);
  };

  if (with_congestion) {
    // Four congestor cohorts: all-to-all (random permutation shifts), incast,
    // one-sided incast, broadcast — the GPCNeT pattern mix. Each cohort's
    // flows are a pure function of the source index, so generation fans out
    // over the pool with sim::parallel_emit; chunk-ordered concatenation
    // keeps the flow list byte-identical to the serial loop at any thread
    // count (the solve downstream is order-sensitive only in tie-breaking,
    // so the order must not drift).
    struct Rec {
      int src, dst;
    };
    auto emit_all = [&](const std::vector<Rec>& recs) {
      for (const Rec& r : recs) push(r.src, r.dst, w, congestor_cap);
    };
    const std::size_t n = congestors.size();
    const std::size_t cohort = n / 4;
    // Cohort 0+1: permutation traffic among congestors (all-to-all phase).
    emit_all(sim::parallel_emit<Rec>(
        2 * cohort, 512, [&](std::size_t i, std::vector<Rec>& out) {
          const int a = congestors[i];
          const int b = congestors[(i + 7 * cohort / 3 + 1) % (2 * cohort)];
          if (a == b) return;
          for (int k = 0; k < nics; ++k)
            out.push_back({machines::node_endpoint(m, a, k),
                           machines::node_endpoint(m, b, k)});
        }));
    // Cohort 2: incast groups of 64 sources onto one target NIC.
    const std::size_t incast_groups = cohort >= 65 ? (cohort - 65) / 65 + 1 : 0;
    emit_all(sim::parallel_emit<Rec>(
        incast_groups, 8, [&](std::size_t g, std::vector<Rec>& out) {
          const std::size_t base = 2 * cohort + g * 65;
          const int target = congestors[base];
          for (int s = 1; s <= 64; ++s) {
            const int src = congestors[base + static_cast<std::size_t>(s)];
            out.push_back({machines::node_endpoint(m, src, s % nics),
                           machines::node_endpoint(m, target, 0)});
          }
        }));
    // Cohort 3: broadcasts, 1 root to 64 leaves.
    const std::size_t bcast_span = n - 3 * cohort;
    const std::size_t bcast_groups =
        bcast_span >= 65 ? (bcast_span - 65) / 65 + 1 : 0;
    emit_all(sim::parallel_emit<Rec>(
        bcast_groups, 8, [&](std::size_t g, std::vector<Rec>& out) {
          const std::size_t base = 3 * cohort + g * 65;
          const int root = congestors[base];
          for (int s = 1; s <= 64; ++s) {
            const int dst = congestors[base + static_cast<std::size_t>(s)];
            out.push_back({machines::node_endpoint(m, root, s % nics),
                           machines::node_endpoint(m, dst, s % nics)});
          }
        }));
  }

  fs.victim_begin = fs.pairs.size();
  // Victim random ring: every victim NIC streams to the same NIC of the next
  // victim in a shuffled ring.
  std::vector<int> ring = victims;
  for (std::size_t i = ring.size() - 1; i > 0; --i)
    std::swap(ring[i], ring[rng.index(i + 1)]);
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const int a = ring[i];
    const int b = ring[(i + 1) % ring.size()];
    for (int k = 0; k < nics; ++k)
      push(machines::node_endpoint(m, a, k), machines::node_endpoint(m, b, k),
           w, 0.0);
  }
  return fs;
}

// Per-rank achieved bandwidth stats for the victim flows of `fs`.
void victim_bw_stats(const std::vector<double>& rates, const FlowSet& fs,
                     double ranks_per_flow, double* avg, double* p99_low) {
  sim::SampleSet s;
  for (std::size_t i = fs.victim_begin; i < rates.size(); ++i)
    s.add(rates[i] / ranks_per_flow);
  *avg = s.mean();
  *p99_low = s.percentile(1.0);  // "99%" for bandwidth = 99th-worst (slowest 1%)
}

}  // namespace

GpcnetResult run_gpcnet(const machines::Machine& machine, const net::Fabric& fabric,
                        const GpcnetConfig& cfg) {
  sim::Rng rng(cfg.seed);
  const int nics = std::max(1, machine.node.nics);
  const double ranks_per_flow =
      static_cast<double>(cfg.ppn) / static_cast<double>(nics);

  // Node split: victims interleaved through the machine like a real
  // allocation (every 1/victim_fraction-th node).
  std::vector<int> victims, congestors;
  const int stride = static_cast<int>(std::lround(1.0 / cfg.victim_fraction));
  for (int nd = 0; nd < cfg.nodes; ++nd)
    (nd % stride == 0 ? victims : congestors).push_back(nd);

  CommConfig cc;
  cc.ppn = cfg.ppn;
  cc.seed = cfg.seed;
  SimComm victim_comm(machine, &fabric, victims, cc);

  // ---- bandwidth metric: steady-state solves --------------------------------
  sim::Rng flow_rng(cfg.seed ^ 0xBEEF);
  auto con = build_flows(machine, cfg, congestors, victims, true, flow_rng);
  // The isolated problem is exactly the victim tail slice of the congested
  // one: congestor cohorts are a pure function of the source index and
  // consume no RNG, so the victim ring shuffle lands on the same state either
  // way. Slicing instead of a second build halves flow generation and keeps
  // the solve inputs byte-identical to the two-build version (table 5 golden).
  FlowSet iso;
  const auto vb = static_cast<std::ptrdiff_t>(con.victim_begin);
  iso.pairs.assign(con.pairs.begin() + vb, con.pairs.end());
  iso.weights.assign(con.weights.begin() + vb, con.weights.end());
  iso.caps.assign(con.caps.begin() + vb, con.caps.end());
  iso.victim_begin = 0;
  const auto iso_rates =
      fabric.steady_rates(iso.pairs, &iso.weights, nullptr, &iso.caps);
  double iso_bw_avg, iso_bw_p99, con_bw_avg, con_bw_p99;
  victim_bw_stats(iso_rates, iso, ranks_per_flow, &iso_bw_avg, &iso_bw_p99);

  // NIC oversubscription beyond the paper's 8 PPN baseline erodes isolation
  // even under congestion control (progress-engine and ordering-point
  // sharing); calibrated to the 1.2-1.6x degradation quoted for 32 PPN.
  const double oversub =
      std::max(0.0, static_cast<double>(cfg.ppn) / (2.0 * nics) - 1.0);

  if (fabric.config().congestion_control) {
    // Slingshot CC throttles the flows *causing* congestion at their
    // congestion point, so innocent-bystander (victim) flows keep their
    // isolated rates up to a small residual interference (§4.2.2: 3497 ->
    // 3472 MiB/s/rank, a 0.7% dip).
    const double residual = 0.993;
    const double scale = residual / (1.0 + 0.15 * oversub);
    con_bw_avg = iso_bw_avg * scale;
    con_bw_p99 = iso_bw_p99 * scale;
  } else {
    // No CC: joint solve plus head-of-line blocking at shared switches.
    const auto con_rates =
        fabric.steady_rates(con.pairs, &con.weights, nullptr, &con.caps);
    victim_bw_stats(con_rates, con, ranks_per_flow, &con_bw_avg, &con_bw_p99);
  }
  iso_bw_avg *= cfg.rr_bw_duty;
  iso_bw_p99 *= cfg.rr_bw_duty;
  con_bw_avg *= cfg.rr_bw_duty;
  con_bw_p99 *= cfg.rr_bw_duty;

  // Congestion overload factor drives the latency/allreduce inflation: ~0
  // when the fabric isolates victims perfectly.
  const double overload = std::max(0.0, iso_bw_avg / std::max(con_bw_avg, 1.0) - 1.0);

  // ---- latency metric: sampled victim pairs + lognormal jitter --------------
  auto latency_stats = [&](double extra_sigma, double inflate, double* avg,
                           double* p99) {
    sim::SampleSet s;
    sim::Rng lrng(cfg.seed ^ 0x1A7E);
    const int nranks = victim_comm.size();
    for (int i = 0; i < cfg.latency_samples; ++i) {
      const int a = static_cast<int>(lrng.index(static_cast<std::uint64_t>(nranks)));
      int b = static_cast<int>(lrng.index(static_cast<std::uint64_t>(nranks)));
      if (b == a) b = (b + 1) % nranks;
      const double base = victim_comm.latency(a, b) * inflate;
      const double sigma = cfg.jitter_sigma + extra_sigma;
      // Mean-preserving lognormal jitter: divide out E[lognormal] so the
      // average tracks `inflate` while sigma widens only the tail.
      s.add(base * lrng.lognormal_median(1.0, sigma) *
            std::exp(-0.5 * sigma * sigma));
    }
    *avg = s.mean();
    *p99 = s.percentile(99.0);
  };
  double iso_lat_avg, iso_lat_p99, con_lat_avg, con_lat_p99;
  latency_stats(0.0, 1.0, &iso_lat_avg, &iso_lat_p99);
  latency_stats(0.27 * oversub + 0.5 * overload,
                1.0 + 0.12 * (overload + oversub), &con_lat_avg, &con_lat_p99);

  // ---- multiple allreduce ----------------------------------------------------
  const double iso_ar = victim_comm.allreduce_time(8);
  const double con_ar = iso_ar * (1.0 + 0.15 * (overload + oversub));

  auto mk = [](std::string name, double avg, double p99, std::string units) {
    return GpcnetMetric{std::move(name), avg, p99, std::move(units)};
  };
  GpcnetResult out;
  out.isolated = {
      mk("RR Two-sided Lat (8 B)", iso_lat_avg * 1e6, iso_lat_p99 * 1e6, "usec"),
      mk("RR Two-sided BW+Sync (131072 B)", iso_bw_avg / units::MiB(1),
         iso_bw_p99 / units::MiB(1), "MiB/s/rank"),
      mk("Multiple Allreduce (8 B)", iso_ar * 1e6, iso_ar * 1e6 * 1.05, "usec"),
  };
  out.congested = {
      mk("RR Two-sided Lat (8 B)", con_lat_avg * 1e6, con_lat_p99 * 1e6, "usec"),
      mk("RR Two-sided BW+Sync (131072 B)", con_bw_avg / units::MiB(1),
         con_bw_p99 / units::MiB(1), "MiB/s/rank"),
      mk("Multiple Allreduce (8 B)", con_ar * 1e6, con_ar * 1e6 * 1.05, "usec"),
  };
  out.impact = {
      con_lat_avg / iso_lat_avg,
      iso_bw_avg / std::max(con_bw_avg, 1.0),  // bandwidth: lower is worse
      con_ar / iso_ar,
  };
  return out;
}

}  // namespace xscale::mpi
