#include "topo/topology.hpp"

#include <cassert>
#include <stdexcept>

namespace xscale::topo {
namespace {

std::uint64_t key(int a, int b, int stride) {
  return static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(stride) +
         static_cast<std::uint64_t>(b);
}

}  // namespace

int Topology::add_link(int src, int dst, LinkKind kind, double cap, double lat) {
  const int id = static_cast<int>(links_.size());
  links_.push_back(Link{id, src, dst, kind, cap, lat});
  return id;
}

int Topology::switch_link(int u, int v) const {
  const auto it = switch_link_idx_.find(key(u, v, num_switches_ + 1));
  return it == switch_link_idx_.end() ? -1 : it->second;
}

int Topology::global_link(int g, int h) const {
  const auto it = global_link_idx_.find(key(g, h, n_groups_ + 1));
  return it == global_link_idx_.end() ? -1 : it->second;
}

int Topology::gateway_switch(int g, int h) const {
  const int id = global_link(g, h);
  return id < 0 ? -1 : links_[static_cast<std::size_t>(id)].src;
}

std::vector<int> Topology::peer_groups(int g) const {
  std::vector<int> peers;
  for (int h = 0; h < n_groups_; ++h)
    if (h != g && global_link(g, h) >= 0) peers.push_back(h);
  return peers;
}

double Topology::total_global_capacity_one_direction() const {
  double sum = 0;
  for (const auto& l : links_)
    if (l.kind == LinkKind::Global) sum += l.capacity;
  return sum / 2.0;  // directed links counted once per direction
}

double Topology::injection_capacity_per_group(int g) const {
  double sum = 0;
  for (std::size_t ep = 0; ep < endpoint_switch_.size(); ++ep)
    if (group_of_endpoint(static_cast<int>(ep)) == g)
      sum += links_[static_cast<std::size_t>(injection_link_[ep])].capacity;
  return sum;
}

double Topology::global_capacity_per_group(int g) const {
  double sum = 0;
  for (const auto& l : links_)
    if (l.kind == LinkKind::Global && group_of_switch(l.src) == g) sum += l.capacity;
  return sum;
}

Topology Topology::dragonfly(const std::vector<GroupSpec>& groups,
                             const std::function<int(int, int)>& bundle_links,
                             double link_bw, double hop_latency) {
  Topology t;
  t.n_groups_ = static_cast<int>(groups.size());

  // Size everything up front — a Frontier-scale build (74 groups, ~2.5k
  // switches, ~10k endpoints, ~1M links) would otherwise spend most of its
  // time in vector regrowth and hash-map rehashes.
  {
    std::size_t switches = 0, endpoints = 0, locals = 0;
    for (const GroupSpec& gs : groups) {
      const auto s = static_cast<std::size_t>(gs.switches);
      switches += s;
      endpoints += s * static_cast<std::size_t>(gs.endpoints_per_switch);
      locals += s * (s - 1);
    }
    const std::size_t globals =
        static_cast<std::size_t>(t.n_groups_) *
        static_cast<std::size_t>(t.n_groups_ > 0 ? t.n_groups_ - 1 : 0);
    t.group_first_switch_.reserve(groups.size());
    t.group_size_.reserve(groups.size());
    t.group_of_switch_.reserve(switches);
    t.endpoint_switch_.reserve(endpoints);
    t.injection_link_.reserve(endpoints);
    t.ejection_link_.reserve(endpoints);
    t.links_.reserve(2 * endpoints + locals + globals);
    t.switch_link_idx_.reserve(locals);
    t.global_link_idx_.reserve(globals);
  }

  // Switch ids, grouped contiguously.
  for (int g = 0; g < t.n_groups_; ++g) {
    t.group_first_switch_.push_back(t.num_switches_);
    t.group_size_.push_back(groups[static_cast<std::size_t>(g)].switches);
    for (int s = 0; s < groups[static_cast<std::size_t>(g)].switches; ++s)
      t.group_of_switch_.push_back(g);
    t.num_switches_ += groups[static_cast<std::size_t>(g)].switches;
  }

  // Endpoints + terminal links.
  for (int g = 0; g < t.n_groups_; ++g) {
    const auto& spec = groups[static_cast<std::size_t>(g)];
    for (int s = 0; s < spec.switches; ++s) {
      const int sw = t.group_first_switch_[static_cast<std::size_t>(g)] + s;
      for (int e = 0; e < spec.endpoints_per_switch; ++e) {
        const int ep = static_cast<int>(t.endpoint_switch_.size());
        t.endpoint_switch_.push_back(sw);
        t.injection_link_.push_back(
            t.add_link(ep, sw, LinkKind::Injection, link_bw, hop_latency));
        t.ejection_link_.push_back(
            t.add_link(sw, ep, LinkKind::Ejection, link_bw, hop_latency));
      }
    }
  }

  // Intra-group full connectivity: one L1 link per ordered switch pair.
  for (int g = 0; g < t.n_groups_; ++g) {
    const int first = t.group_first_switch_[static_cast<std::size_t>(g)];
    const int n = t.group_size_[static_cast<std::size_t>(g)];
    for (int a = 0; a < n; ++a)
      for (int b = 0; b < n; ++b) {
        if (a == b) continue;
        const int id = t.add_link(first + a, first + b, LinkKind::Local, link_bw,
                                  hop_latency);
        t.switch_link_idx_[key(first + a, first + b, t.num_switches_ + 1)] = id;
      }
  }

  // Global bundles: one aggregated logical link per direction per group pair.
  // The bundle terminates on a deterministic gateway switch: peer-group index
  // modulo the group size, which spreads bundles over switches like the real
  // fabric manager's cabling plan does.
  for (int g = 0; g < t.n_groups_; ++g)
    for (int h = 0; h < t.n_groups_; ++h) {
      if (g == h) continue;
      const int nl = bundle_links(g, h);
      if (nl <= 0) continue;
      if (bundle_links(h, g) != nl)
        throw std::invalid_argument("bundle_links must be symmetric");
      const int gw_g = t.group_first_switch_[static_cast<std::size_t>(g)] +
                       h % t.group_size_[static_cast<std::size_t>(g)];
      const int gw_h = t.group_first_switch_[static_cast<std::size_t>(h)] +
                       g % t.group_size_[static_cast<std::size_t>(h)];
      const int id = t.add_link(gw_g, gw_h, LinkKind::Global,
                                static_cast<double>(nl) * link_bw, hop_latency);
      t.global_link_idx_[key(g, h, t.n_groups_ + 1)] = id;
    }
  return t;
}

Topology Topology::uniform_dragonfly(int n_groups, GroupSpec spec, int links_per_pair,
                                     double link_bw, double hop_latency) {
  return dragonfly(std::vector<GroupSpec>(static_cast<std::size_t>(n_groups), spec),
                   [links_per_pair](int, int) { return links_per_pair; }, link_bw,
                   hop_latency);
}

Topology Topology::fat_tree(int leaves, int eps_per_leaf, double link_bw,
                            double hop_latency) {
  // Non-blocking == oversubscription ratio 1: the uplink carries the leaf's
  // full injection demand and is never the bottleneck.
  return oversubscribed_fat_tree(leaves, eps_per_leaf, 1.0, link_bw,
                                 hop_latency);
}

Topology Topology::oversubscribed_fat_tree(int leaves, int eps_per_leaf,
                                           double oversub_ratio, double link_bw,
                                           double hop_latency) {
  if (oversub_ratio < 1.0)
    throw std::invalid_argument("oversub_ratio must be >= 1");
  Topology t;
  t.fat_tree_ = true;
  t.n_groups_ = 1;
  t.group_first_switch_.push_back(0);
  // Leaf switches plus one core vertex.
  t.num_switches_ = leaves + 1;
  t.group_size_.push_back(t.num_switches_);
  t.group_of_switch_.assign(static_cast<std::size_t>(t.num_switches_), 0);
  const int core = leaves;

  const auto eps =
      static_cast<std::size_t>(leaves) * static_cast<std::size_t>(eps_per_leaf);
  t.endpoint_switch_.reserve(eps);
  t.injection_link_.reserve(eps);
  t.ejection_link_.reserve(eps);
  t.links_.reserve(2 * eps + 2 * static_cast<std::size_t>(leaves));
  t.switch_link_idx_.reserve(2 * static_cast<std::size_t>(leaves));

  for (int l = 0; l < leaves; ++l) {
    for (int e = 0; e < eps_per_leaf; ++e) {
      const int ep = static_cast<int>(t.endpoint_switch_.size());
      t.endpoint_switch_.push_back(l);
      t.injection_link_.push_back(
          t.add_link(ep, l, LinkKind::Injection, link_bw, hop_latency));
      t.ejection_link_.push_back(
          t.add_link(l, ep, LinkKind::Ejection, link_bw, hop_latency));
    }
    // Uplink capacity: full injection demand divided by the oversubscription
    // ratio. At ratio 1 the uplink is never the bottleneck; above 1 inter-leaf
    // traffic contends here before it contends at the terminals.
    const double up =
        link_bw * static_cast<double>(eps_per_leaf) / oversub_ratio;
    const int upl = t.add_link(l, core, LinkKind::Core, up, hop_latency);
    const int dnl = t.add_link(core, l, LinkKind::Core, up, hop_latency);
    t.switch_link_idx_[key(l, core, t.num_switches_ + 1)] = upl;
    t.switch_link_idx_[key(core, l, t.num_switches_ + 1)] = dnl;
  }
  return t;
}

Topology Topology::rotor(int n_switches, int eps_per_switch, int n_matchings,
                         double slot_s, double duty_cycle, double link_bw,
                         double hop_latency) {
  if (n_switches < 2) throw std::invalid_argument("rotor needs >= 2 switches");
  if (n_matchings < 1 || n_matchings > n_switches - 1)
    throw std::invalid_argument("n_matchings must be in [1, n_switches - 1]");
  if (slot_s <= 0.0) throw std::invalid_argument("slot_s must be positive");
  if (duty_cycle <= 0.0 || duty_cycle > 1.0)
    throw std::invalid_argument("duty_cycle must be in (0, 1]");

  // One switch per group: every inter-switch link is a Global link, so the
  // dragonfly routing branch (direct group-to-group hop) serves unchanged and
  // the route cache never needs a rotor-specific path. The links of ALL
  // matchings are laid down statically; a slot change only re-prices them
  // (never adds or removes links), which is what keeps the shared snapshot's
  // route cache valid across slot boundaries.
  Topology t;
  t.n_groups_ = n_switches;
  t.num_switches_ = n_switches;
  t.rotor_matchings_ = n_matchings;
  t.rotor_slot_s_ = slot_s;
  t.rotor_duty_cycle_ = duty_cycle;
  t.rotor_active_capacity_ = link_bw * duty_cycle;

  const auto ns = static_cast<std::size_t>(n_switches);
  const auto eps = ns * static_cast<std::size_t>(eps_per_switch);
  const auto globals = ns * static_cast<std::size_t>(n_matchings);
  t.group_first_switch_.reserve(ns);
  t.group_size_.reserve(ns);
  t.group_of_switch_.reserve(ns);
  t.endpoint_switch_.reserve(eps);
  t.injection_link_.reserve(eps);
  t.ejection_link_.reserve(eps);
  t.links_.reserve(2 * eps + globals);
  t.global_link_idx_.reserve(globals);

  for (int s = 0; s < n_switches; ++s) {
    t.group_first_switch_.push_back(s);
    t.group_size_.push_back(1);
    t.group_of_switch_.push_back(s);
  }
  for (int s = 0; s < n_switches; ++s) {
    for (int e = 0; e < eps_per_switch; ++e) {
      const int ep = static_cast<int>(t.endpoint_switch_.size());
      t.endpoint_switch_.push_back(s);
      t.injection_link_.push_back(
          t.add_link(ep, s, LinkKind::Injection, link_bw, hop_latency));
      t.ejection_link_.push_back(
          t.add_link(s, ep, LinkKind::Ejection, link_bw, hop_latency));
    }
  }
  // Matching m: directed link i -> (i + m + 1) mod n from every switch.
  // Matching 0 is live at build time; the rest idle at zero capacity until a
  // RotorSchedule overlay activates them.
  for (int m = 0; m < n_matchings; ++m) {
    const double cap = m == 0 ? t.rotor_active_capacity_ : 0.0;
    for (int i = 0; i < n_switches; ++i) {
      const int j = (i + m + 1) % n_switches;
      const int id = t.add_link(i, j, LinkKind::Global, cap, hop_latency);
      t.global_link_idx_[key(i, j, t.n_groups_ + 1)] = id;
    }
  }
  return t;
}

std::vector<int> Topology::rotor_matching_links(int m) const {
  if (m < 0 || m >= rotor_matchings_)
    throw std::out_of_range("rotor matching index out of range");
  std::vector<int> ids;
  ids.reserve(static_cast<std::size_t>(num_switches_));
  for (int i = 0; i < num_switches_; ++i) {
    const int id = global_link(i, (i + m + 1) % num_switches_);
    assert(id >= 0);
    ids.push_back(id);
  }
  return ids;
}

}  // namespace xscale::topo
