// Interconnect topology substrate.
//
// A `Topology` is a directed multigraph of switches and endpoints. Parallel
// physical links between the same pair of switches (the paper's "bundles",
// §3.2) are aggregated into one logical link whose capacity is the bundle
// sum — flows are assumed to stripe across a bundle, which Slingshot does.
//
// Builders (four families; pick by what contention you need to model):
//   * `dragonfly(...)` — Slingshot-style three-hop dragonfly: fully connected
//     switches inside a group (L1 ports), direct group-to-group bundles
//     (L2 ports), 16 endpoints per switch (L0 ports). Use for Frontier-class
//     machines where the taper and adaptive-vs-minimal routing matter.
//   * `fat_tree(...)` — non-blocking Clos abstraction (Summit): every leaf
//     uplink carries the leaf's full injection demand, so contention exists
//     only at endpoint injection/ejection. Use as the "ideal fabric"
//     baseline, or for machines that really are non-blocking.
//   * `oversubscribed_fat_tree(...)` — the same Clos shape with leaf uplinks
//     thinned by an oversubscription ratio (2:1, 4:1, ...), so inter-leaf
//     traffic contends at the uplink the way commodity datacenter fabrics
//     do. Use when the question is how much taper an application tolerates.
//   * `rotor(...)` — time-sliced rotor/optical fabric: one switch per group,
//     inter-switch links partitioned into round-robin matchings of which
//     exactly one is live per slot. The builder lays down *every* matching's
//     links; matching 0 is live (capacity = link_bw x duty_cycle) and all
//     others carry zero capacity until a `net::RotorSchedule` drives the
//     slot rotation through a fabric overlay. Use to stress wholesale
//     capacity churn (every slot boundary reprices every inter-switch link).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace xscale::topo {

enum class LinkKind : std::uint8_t {
  Injection,  // endpoint -> switch (L0 in)
  Ejection,   // switch -> endpoint (L0 out)
  Local,      // switch -> switch inside a group (L1)
  Global,     // switch -> switch between groups (L2)
  Core,       // infinite-capacity Clos core (fat-tree abstraction)
};

struct Link {
  int id = -1;
  int src = -1;  // vertex id (switch or endpoint)
  int dst = -1;
  LinkKind kind = LinkKind::Local;
  double capacity = 0;   // B/s (bundle aggregate)
  double latency_s = 0;  // per-hop propagation + switch transit
};

struct GroupSpec {
  int switches = 32;
  int endpoints_per_switch = 16;
};

class Topology {
 public:
  // --- structure queries -----------------------------------------------------
  int num_switches() const { return num_switches_; }
  int num_endpoints() const { return static_cast<int>(endpoint_switch_.size()); }
  int num_groups() const { return n_groups_; }

  int endpoint_switch(int ep) const { return endpoint_switch_[static_cast<std::size_t>(ep)]; }
  int group_of_switch(int sw) const { return group_of_switch_[static_cast<std::size_t>(sw)]; }
  int group_of_endpoint(int ep) const { return group_of_switch(endpoint_switch(ep)); }

  const std::vector<Link>& links() const { return links_; }
  const Link& link(int id) const { return links_[static_cast<std::size_t>(id)]; }

  // Logical link from vertex u to v (-1 if absent). Switch vertices use
  // switch ids; endpoint links are looked up with `injection_link` /
  // `ejection_link`.
  int switch_link(int sw_u, int sw_v) const;
  int injection_link(int ep) const { return injection_link_[static_cast<std::size_t>(ep)]; }
  int ejection_link(int ep) const { return ejection_link_[static_cast<std::size_t>(ep)]; }

  // Switch in group `g` that terminates the global bundle toward group `h`
  // (-1 if no bundle exists).
  int gateway_switch(int g, int h) const;
  // Global link id between groups g -> h (-1 if none).
  int global_link(int g, int h) const;

  // Groups adjacent to `g` via global bundles.
  std::vector<int> peer_groups(int g) const;

  // (first switch id, switch count) of group `g`.
  std::pair<int, int> group_switch_range(int g) const {
    return {group_first_switch_[static_cast<std::size_t>(g)],
            group_size_[static_cast<std::size_t>(g)]};
  }

  // Aggregate capacities for spec tables (Table 1's "Global Bandwidth").
  double total_global_capacity_one_direction() const;
  double injection_capacity_per_group(int g) const;
  double global_capacity_per_group(int g) const;

  bool is_fat_tree() const { return fat_tree_; }

  // --- rotor metadata ---------------------------------------------------------
  bool is_rotor() const { return rotor_matchings_ > 0; }
  int rotor_matchings() const { return rotor_matchings_; }
  double rotor_slot_s() const { return rotor_slot_s_; }
  double rotor_duty_cycle() const { return rotor_duty_cycle_; }
  // Capacity an inter-switch link carries while its matching is live.
  double rotor_active_capacity() const { return rotor_active_capacity_; }
  // Link ids of matching `m` (one directed link per switch: i -> (i+m+1) mod n).
  std::vector<int> rotor_matching_links(int m) const;

  // --- builders ---------------------------------------------------------------
  // `bundle_links(g, h)` returns physical link count of the g->h bundle
  // (0 = not connected). Must be symmetric.
  static Topology dragonfly(const std::vector<GroupSpec>& groups,
                            const std::function<int(int, int)>& bundle_links,
                            double link_bw, double hop_latency);

  // Uniform dragonfly convenience: `n_groups` identical groups, every pair
  // connected by `links_per_pair` physical links.
  static Topology uniform_dragonfly(int n_groups, GroupSpec spec, int links_per_pair,
                                    double link_bw, double hop_latency);

  // Non-blocking fat-tree: `leaves` leaf switches x `eps_per_leaf` endpoints;
  // every leaf connects to a single infinite core vertex.
  static Topology fat_tree(int leaves, int eps_per_leaf, double link_bw,
                           double hop_latency);

  // Oversubscribed fat-tree: same shape as `fat_tree`, but each leaf's core
  // uplink/downlink carries only `eps_per_leaf * link_bw / oversub_ratio`,
  // so inter-leaf traffic contends at the uplink (ratio 1 is non-blocking).
  static Topology oversubscribed_fat_tree(int leaves, int eps_per_leaf,
                                          double oversub_ratio, double link_bw,
                                          double hop_latency);

  // Time-sliced rotor fabric: `n_switches` single-switch groups, inter-switch
  // links partitioned into `n_matchings` round-robin matchings (matching m
  // connects switch i -> (i+m+1) mod n_switches; full any-to-any coverage
  // needs n_matchings == n_switches - 1). The built topology is frozen at
  // slot 0: matching 0's links carry `link_bw * duty_cycle`, every other
  // matching's links carry zero. `net::RotorSchedule` rotates the live
  // matching every `slot_s` seconds through a fabric overlay; the base
  // snapshot is never mutated.
  static Topology rotor(int n_switches, int eps_per_switch, int n_matchings,
                        double slot_s, double duty_cycle, double link_bw,
                        double hop_latency);

 private:
  int add_link(int src, int dst, LinkKind kind, double cap, double lat);

  int num_switches_ = 0;
  bool fat_tree_ = false;
  int rotor_matchings_ = 0;  // 0 = not a rotor fabric
  double rotor_slot_s_ = 0;
  double rotor_duty_cycle_ = 1.0;
  double rotor_active_capacity_ = 0;
  std::vector<Link> links_;
  std::vector<int> endpoint_switch_;
  std::vector<int> injection_link_;
  std::vector<int> ejection_link_;
  std::vector<int> group_of_switch_;
  std::vector<int> group_first_switch_;  // per group
  std::vector<int> group_size_;          // switches per group
  // (u * num_vertices + v) -> link id for switch-switch links.
  std::unordered_map<std::uint64_t, int> switch_link_idx_;
  // (g * num_groups + h) -> link id.
  std::unordered_map<std::uint64_t, int> global_link_idx_;
  int n_groups_ = 0;
};

}  // namespace xscale::topo
