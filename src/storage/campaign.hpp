// Fabric-coupled I/O campaigns.
//
// Orion's OSS controllers live in the five storage dragonfly groups (§3.2:
// one bundle from each compute group to each storage group, five bundles
// between storage groups). This module routes client->OSS flows through the
// actual fabric simulator and adds per-OSS drain limits and a per-tier
// backend limit, so an I/O campaign sees *both* network and disk
// bottlenecks — the coupling a center-wide file system lives with.
#pragma once

#include "machines/machine.hpp"
#include "net/fabric.hpp"
#include "storage/orion.hpp"

namespace xscale::storage {

struct FabricCampaignResult {
  double aggregate_bw = 0;     // B/s across all clients
  double per_client_bw = 0;    // B/s average
  double network_limited_fraction = 0;  // flows whose bottleneck is the fabric
};

// `client_nodes` compute nodes stream checkpoint data to (read=false) or from
// (read=true) the OSS endpoints, round-robin. `tier` selects the backend
// drain rate (performance vs capacity).
FabricCampaignResult fabric_campaign(const machines::Machine& frontier,
                                     const net::Fabric& fabric, const Orion& orion,
                                     int client_nodes, Tier tier, bool read);

}  // namespace xscale::storage
