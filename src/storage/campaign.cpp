#include "storage/campaign.hpp"

#include <algorithm>
#include <cmath>

#include "net/solver.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/rng.hpp"

namespace xscale::storage {

FabricCampaignResult fabric_campaign(const machines::Machine& frontier,
                                     const net::Fabric& fabric, const Orion& orion,
                                     int client_nodes, Tier tier, bool read) {
  const auto& topo = fabric.topology();
  const auto& cfg = orion.config();

  // Storage endpoints: everything beyond the compute groups' endpoints.
  const int compute_eps = frontier.total_nodes * frontier.node.nics;
  const int service_eps = topo.num_endpoints() - compute_eps;
  const int n_oss = cfg.ssus * cfg.oss_per_ssu;
  const int oss_eps = std::min(service_eps, n_oss * cfg.nics_per_oss);

  // Per-OSS backend drain for the chosen tier.
  const double tier_bw =
      read ? orion.measured_read_bw(tier) : orion.measured_write_bw(tier);
  const double per_oss_drain = tier_bw / static_cast<double>(n_oss);

  // Build flows: client NIC k -> OSS endpoint, round-robin over OSS NICs.
  std::vector<double> cap = fabric.effective_capacities();
  std::vector<std::vector<int>> paths;
  sim::Rng rng(0x10CA);
  std::vector<int> load(topo.links().size(), 0);
  // Virtual drain link per OSS, shared by flows to both of its endpoints.
  const int first_drain = static_cast<int>(cap.size());
  for (int i = 0; i < n_oss; ++i) cap.push_back(per_oss_drain);

  for (int c = 0; c < client_nodes; ++c) {
    const int nic = c % frontier.node.nics;
    const int src = machines::node_endpoint(frontier, c, nic);
    const int target_ep_idx = c % oss_eps;  // round-robin over OSS NICs
    const int dst = compute_eps + target_ep_idx;
    const int oss = target_ep_idx / cfg.nics_per_oss;
    auto path = read ? fabric.route(dst, src, rng, &load)
                     : fabric.route(src, dst, rng, &load);
    for (int l : path) ++load[static_cast<std::size_t>(l)];
    path.push_back(first_drain + oss);
    paths.push_back(std::move(path));
  }

  const auto rates = net::max_min_rates(cap, paths);

  FabricCampaignResult out;
  std::vector<int> flows_per_oss(static_cast<std::size_t>(n_oss), 0);
  for (const auto& p : paths)
    ++flows_per_oss[static_cast<std::size_t>(p.back() - first_drain)];
  int net_limited = 0;
  for (std::size_t f = 0; f < rates.size(); ++f) {
    out.aggregate_bw += rates[f];
    // A flow is network-limited if it runs below its share of the OSS drain.
    const int oss = paths[f].back() - first_drain;
    const double share = per_oss_drain /
                         std::max(1, flows_per_oss[static_cast<std::size_t>(oss)]);
    if (rates[f] < share * 0.99) ++net_limited;
  }
  out.per_client_bw = out.aggregate_bw / std::max(1, client_nodes);
  out.network_limited_fraction =
      rates.empty() ? 0 : static_cast<double>(net_limited) / static_cast<double>(rates.size());

  // Deepest per-OSS request backlog — the queue-depth proxy for this
  // steady-state model (flows concurrently draining into one controller).
  int max_depth = 0;
  for (int d : flows_per_oss) max_depth = std::max(max_depth, d);
  static obs::Gauge& depth = obs::metrics().gauge("storage.oss_queue_depth");
  depth.set(static_cast<double>(max_depth));
  obs::tracer().instant("storage", "fabric_campaign", 0.0,
                        {{"clients", static_cast<double>(client_nodes)},
                         {"aggregate_bw", out.aggregate_bw},
                         {"net_limited", out.network_limited_fraction},
                         {"oss_queue_depth", static_cast<double>(max_depth)}});
  return out;
}

}  // namespace xscale::storage
