#include "storage/nvme.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xscale::storage {

double NodeLocalNvme::throughput(double block_size, bool read, bool random) const {
  const double bw = read ? measured_read_bw() : measured_write_bw();
  if (!random) return bw;
  // Random access: each block costs one request; the drive sustains
  // measured_iops() requests/s (reads; writes are SLC-buffered to ~60%).
  const double iops = measured_iops() * (read ? 1.0 : 0.6);
  return std::min(bw, iops * block_size);
}

double NodeLocalNvme::io_time(double bytes, double block_size, bool read,
                              bool random) const {
  if (bytes <= 0) return 0;
  const double t = perf_.latency_s + bytes / throughput(block_size, read, random);
  // The model is analytic (no queue in simulated time), so the request span
  // starts at 0: its *duration* is the quantity the timeline shows.
  obs::tracer().span("storage", read ? "nvme_read" : "nvme_write", 0.0, t,
                     {{"bytes", bytes}, {"block", block_size}});
  static obs::Counter& reqs = obs::metrics().counter("storage.nvme_requests");
  static obs::ShardedStats& times = obs::metrics().stats("storage.nvme_io_time_s");
  reqs.inc();
  times.add(t);
  return t;
}

NvmeAggregate aggregate(const NodeLocalNvme& drive, int nodes) {
  return {
      drive.measured_read_bw() * nodes,
      drive.measured_write_bw() * nodes,
      drive.measured_iops() * nodes,
  };
}

}  // namespace xscale::storage
