#include "storage/nvme.hpp"

#include <algorithm>
#include <cmath>

namespace xscale::storage {

double NodeLocalNvme::throughput(double block_size, bool read, bool random) const {
  const double bw = read ? measured_read_bw() : measured_write_bw();
  if (!random) return bw;
  // Random access: each block costs one request; the drive sustains
  // measured_iops() requests/s (reads; writes are SLC-buffered to ~60%).
  const double iops = measured_iops() * (read ? 1.0 : 0.6);
  return std::min(bw, iops * block_size);
}

double NodeLocalNvme::io_time(double bytes, double block_size, bool read,
                              bool random) const {
  if (bytes <= 0) return 0;
  return perf_.latency_s + bytes / throughput(block_size, read, random);
}

NvmeAggregate aggregate(const NodeLocalNvme& drive, int nodes) {
  return {
      drive.measured_read_bw() * nodes,
      drive.measured_write_bw() * nodes,
      drive.measured_iops() * nodes,
  };
}

}  // namespace xscale::storage
