// Node-local NVMe model (§3.3, §4.3.1).
//
// Each Frontier node mounts two M.2 drives striped RAID-0: ~3.5 TB, 8 GB/s
// read / 4 GB/s write contracted, with ~1.6M contracted (1.58M measured)
// random-read 4 KiB IOPS. The model charges the max of the bandwidth and
// IOPS costs for an I/O phase — small blocks are IOPS-bound, large streams
// bandwidth-bound — exactly what fio measures.
#pragma once

#include "hw/node.hpp"

namespace xscale::storage {

struct NvmePerf {
  // Measured-to-contracted ratios (§4.3.1: 7.1/8 reads, 4.2/4 writes,
  // 1.58M/1.6M IOPS). Writes exceed contract; SLC caching on the drives.
  double seq_read_eff = 7.1 / 8.0;
  double seq_write_eff = 4.2 / 4.0;
  double iops_contract = 1.6e6;  // contractual commitment (§4.3.1)
  double iops_eff = 1.58 / 1.6;
  double latency_s = 80e-6;  // per-request service floor
};

class NodeLocalNvme {
 public:
  explicit NodeLocalNvme(const hw::NodeLocalNvme& cfg, NvmePerf perf = {})
      : cfg_(cfg), perf_(perf) {}

  double capacity() const { return cfg_.capacity_bytes; }
  double measured_read_bw() const { return cfg_.read_bw * perf_.seq_read_eff; }
  double measured_write_bw() const { return cfg_.write_bw * perf_.seq_write_eff; }
  double measured_iops() const { return perf_.iops_contract * perf_.iops_eff; }

  // Time to perform `bytes` of I/O in `block_size` requests.
  // Random small-block reads hit the IOPS ceiling; large sequential I/O hits
  // the bandwidth ceiling.
  double io_time(double bytes, double block_size, bool read, bool random) const;

  // Effective throughput for the same access pattern.
  double throughput(double block_size, bool read, bool random) const;

 private:
  hw::NodeLocalNvme cfg_;
  NvmePerf perf_;
};

// Whole-machine aggregates for a job spanning `nodes` nodes (§4.3.1 quotes
// 67.3 TB/s, 39.8 TB/s and ~15 G IOPS for all of Frontier).
struct NvmeAggregate {
  double read_bw = 0;
  double write_bw = 0;
  double iops = 0;
};
NvmeAggregate aggregate(const NodeLocalNvme& drive, int nodes);

}  // namespace xscale::storage
