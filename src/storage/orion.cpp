#include "storage/orion.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace xscale::storage {

const char* to_string(Tier t) {
  switch (t) {
    case Tier::Metadata: return "Orion Metadata";
    case Tier::Performance: return "Orion Performance";
    case Tier::Capacity: return "Orion Capacity";
  }
  return "?";
}

double Orion::draid_usable_fraction() const {
  return static_cast<double>(cfg_.draid_data) /
             static_cast<double>(cfg_.draid_data + cfg_.draid_parity) *
         (1.0 - cfg_.spare_fraction);
}

double Orion::usable_capacity(Tier t) const {
  switch (t) {
    case Tier::Metadata:
      return cfg_.mdt_capacity;
    case Tier::Performance:
      return cfg_.ssus * cfg_.nvme_per_ssu * cfg_.nvme_capacity *
             draid_usable_fraction() * (1.0 - cfg_.flash_reserve_fraction);
    case Tier::Capacity:
      return cfg_.ssus * cfg_.hdd_per_ssu * cfg_.hdd_capacity *
             draid_usable_fraction();
  }
  return 0;
}

double Orion::theoretical_read_bw(Tier t) const {
  switch (t) {
    case Tier::Metadata:
      return cfg_.mdt_read_bw;
    case Tier::Performance:
      return cfg_.ssus * cfg_.nvme_per_ssu * cfg_.nvme_read_bw;
    case Tier::Capacity:
      return cfg_.ssus * cfg_.hdd_per_ssu * cfg_.hdd_read_bw;
  }
  return 0;
}

double Orion::theoretical_write_bw(Tier t) const {
  switch (t) {
    case Tier::Metadata:
      return cfg_.mdt_write_bw;
    case Tier::Performance:
      return cfg_.ssus * cfg_.nvme_per_ssu * cfg_.nvme_write_bw;
    case Tier::Capacity:
      return cfg_.ssus * cfg_.hdd_per_ssu * cfg_.hdd_write_bw;
  }
  return 0;
}

double Orion::measured_read_bw(Tier t) const {
  switch (t) {
    case Tier::Metadata: return cfg_.mdt_read_bw;  // Table 2 values are as-measured
    case Tier::Performance: return theoretical_read_bw(t) * cfg_.perf_read_measured_ratio;
    case Tier::Capacity: return theoretical_read_bw(t) * cfg_.cap_read_measured_ratio;
  }
  return 0;
}

double Orion::measured_write_bw(Tier t) const {
  switch (t) {
    case Tier::Metadata: return cfg_.mdt_write_bw;
    case Tier::Performance: return theoretical_write_bw(t) * cfg_.perf_write_measured_ratio;
    case Tier::Capacity: return theoretical_write_bw(t) * cfg_.cap_write_measured_ratio;
  }
  return 0;
}

TierSplit Orion::pfl_split(double file_size) const {
  TierSplit s;
  s.metadata = std::min(file_size, cfg_.dom_boundary);
  s.performance =
      std::clamp(file_size - cfg_.dom_boundary, 0.0, cfg_.perf_boundary - cfg_.dom_boundary);
  s.capacity = std::max(0.0, file_size - cfg_.perf_boundary);
  return s;
}

Tier Orion::tier_of_offset(double offset) const {
  if (offset < cfg_.dom_boundary) return Tier::Metadata;
  if (offset < cfg_.perf_boundary) return Tier::Performance;
  return Tier::Capacity;
}

double Orion::campaign_bw(double file_size, int client_nodes, bool read,
                          double per_node_injection_bw) const {
  const TierSplit split = pfl_split(file_size);
  const double total = split.total();
  if (total <= 0 || client_nodes <= 0) return 0;
  auto bw = [&](Tier t) { return read ? measured_read_bw(t) : measured_write_bw(t); };
  // Tiers drain concurrently across the campaign's many files; the campaign
  // finishes when the most loaded tier finishes. Clients can also be the
  // bottleneck via their injection limit.
  double t_done = std::max({split.metadata / bw(Tier::Metadata),
                            split.performance / bw(Tier::Performance),
                            split.capacity / bw(Tier::Capacity)});
  t_done = std::max(t_done, total / (static_cast<double>(client_nodes) *
                                     per_node_injection_bw));
  return total / t_done;
}

double Orion::campaign_time(double total_bytes, double file_size, int client_nodes,
                            bool read) const {
  const double bw = campaign_bw(file_size, client_nodes, read);
  const double t = bw > 0 ? total_bytes / bw : 0;
  obs::tracer().span("storage", read ? "orion_read_campaign" : "orion_write_campaign",
                     0.0, t,
                     {{"bytes", total_bytes},
                      {"clients", static_cast<double>(client_nodes)},
                      {"bw", bw}});
  static obs::Counter& campaigns = obs::metrics().counter("storage.orion_campaigns");
  static obs::ShardedStats& bws = obs::metrics().stats("storage.orion_campaign_bw");
  campaigns.inc();
  if (bw > 0) bws.add(bw);
  return t;
}

double Orion::small_file_read_time(double file_size, int concurrent_clients) const {
  if (!served_from_dom(file_size)) {
    // One metadata round-trip plus an OST read at the per-client share.
    const double ost_bw =
        measured_read_bw(Tier::Performance) / std::max(1, concurrent_clients);
    return 2.0 * cfg_.metadata_op_latency + file_size / ost_bw;
  }
  // DoM: the open() reply carries the contents; one round-trip total.
  const double mdt_bw = measured_read_bw(Tier::Metadata) / std::max(1, concurrent_clients);
  return cfg_.metadata_op_latency + file_size / mdt_bw;
}

double Orion::ingest_time(double bytes, int client_nodes) const {
  // Checkpoint-style streams: large per-node files, overwhelmingly landing in
  // the capacity tier under PFL (§4.3.2's ~180 s for ~776 TB example).
  const double file_size = bytes / std::max(1, client_nodes);
  return campaign_time(bytes, file_size, client_nodes, /*read=*/false);
}

}  // namespace xscale::storage
