// Orion: Frontier's center-wide Lustre parallel file system (§3.3, §4.3.2).
//
// 225 Scalable Storage Units, each with two OSS controllers (two Cassini
// NICs each), 24x 3.2 TB NVMe drives and 212x 18 TB hard drives arranged as
// ZFS dRAID-2 groups. The aggregation exposes three tiers under one
// namespace:
//   * metadata (MDT flash, hosting Data-on-Metadata),
//   * performance (NVMe OSTs),
//   * capacity (HDD OSTs),
// with a Progressive File Layout placing the first 256 KiB of every file on
// the MDTs, the range up to 8 MiB on the performance tier, and the rest on
// the capacity tier.
#pragma once

#include <array>
#include <string>

#include "sim/units.hpp"

namespace xscale::storage {

enum class Tier { Metadata, Performance, Capacity };
const char* to_string(Tier t);

struct OrionConfig {
  int ssus = 225;
  int oss_per_ssu = 2;
  int nics_per_oss = 2;

  // Performance tier (per SSU).
  int nvme_per_ssu = 24;
  double nvme_capacity = units::TB(3.2);
  double nvme_read_bw = units::GBs(1.852);  // per drive in dRAID; 225x24 -> 10 TB/s
  double nvme_write_bw = units::GBs(1.852);
  // Capacity tier (per SSU).
  int hdd_per_ssu = 212;
  double hdd_capacity = units::TB(18);
  double hdd_read_bw = units::MB(115.3);  // streaming; 225x212 -> 5.5 TB/s
  double hdd_write_bw = units::MB(96.4);  // 225x212 -> 4.6 TB/s

  // dRAID-2 data:parity geometry plus distributed-spare reserve.
  int draid_data = 8;
  int draid_parity = 2;
  double spare_fraction = 0.01;
  // Lustre-level OST reserve on the flash tier (grant space, journals).
  double flash_reserve_fraction = 0.16;

  // Metadata tier (whole system).
  double mdt_capacity = units::PB(10.0);
  double mdt_read_bw = units::TBs(0.8);   // Table 2
  double mdt_write_bw = units::TBs(0.4);
  double metadata_op_latency = 250e-6;

  // PFL layout boundaries (§3.3).
  double dom_boundary = units::KiB(256);
  double perf_boundary = units::MiB(8);

  // Measured-to-theoretical ratios (§4.3.2: flash 11.7/9.4 TB/s vs 10
  // contracted; capacity-tier large files 4.9/4.3 TB/s).
  double perf_read_measured_ratio = 1.17;
  double perf_write_measured_ratio = 0.94;
  double cap_read_measured_ratio = 0.89;
  double cap_write_measured_ratio = 0.91;
};

struct TierSplit {
  double metadata = 0;
  double performance = 0;
  double capacity = 0;
  double total() const { return metadata + performance + capacity; }
};

class Orion {
 public:
  explicit Orion(OrionConfig cfg = {}) : cfg_(cfg) {}
  const OrionConfig& config() const { return cfg_; }

  // --- Table 2 rows -----------------------------------------------------------
  double usable_capacity(Tier t) const;
  double theoretical_read_bw(Tier t) const;
  double theoretical_write_bw(Tier t) const;
  // §4.3.2 measured streaming rates.
  double measured_read_bw(Tier t) const;
  double measured_write_bw(Tier t) const;

  // --- PFL placement ------------------------------------------------------------
  // How the bytes of one file of `size` split over the tiers.
  TierSplit pfl_split(double file_size) const;
  // Tier holding byte `offset` of a file.
  Tier tier_of_offset(double offset) const;

  // --- I/O estimates -------------------------------------------------------------
  // Aggregate rate for `files` identical files of `file_size` written (or
  // read) concurrently from `client_nodes` compute nodes: per-tier rates are
  // weighted by the PFL byte split; client injection caps apply.
  double campaign_bw(double file_size, int client_nodes, bool read,
                     double per_node_injection_bw = units::GBs(100) * 0.7) const;
  double campaign_time(double total_bytes, double file_size, int client_nodes,
                       bool read) const;

  // Small-file open+read served entirely from DoM: one metadata round-trip,
  // no OST access (the intent of the PFL design, §3.3).
  bool served_from_dom(double file_size) const { return file_size <= cfg_.dom_boundary; }
  double small_file_read_time(double file_size, int concurrent_clients) const;

  // Time to ingest `bytes` spread over `client_nodes` (the §4.3.2 example:
  // ~700 TiB of HBM checkpointed in ~180 s).
  double ingest_time(double bytes, int client_nodes) const;

 private:
  double draid_usable_fraction() const;
  OrionConfig cfg_;
};

}  // namespace xscale::storage
