// Shared observability flags for the bench/example mains.
//
// Every bench accepts:
//   --trace <file> | --trace=<file>   enable the tracer; write Chrome
//                                     trace_event JSON to <file> at exit
//   --metrics                         print the metrics registry (text) to
//                                     stdout at exit
//   --quick                           downscaled run for the golden-output
//                                     regression harness (benches consult
//                                     obs::quick(); same tables, smaller
//                                     inputs)
//   --threads <n> | --threads=<n>     set the sim::ThreadPool size for this
//                                     run (overrides XSCALE_THREADS)
//
// Usage — first line of main(), before any other argv consumer:
//
//   int main(int argc, char** argv) {
//     xscale::obs::BenchObs obs(argc, argv);   // strips the flags it owns
//     ...                                      // bench body
//   }                                          // ~BenchObs writes the dumps
//
// The constructor removes recognized flags from argv (compacting it and
// updating argc), so argument-parsing mains — google-benchmark's
// Initialize() in particular — never see them.
#pragma once

#include <string>

namespace xscale::obs {

class BenchObs {
 public:
  BenchObs(int& argc, char** argv);

  // Writes the trace file (if --trace) and prints the metrics dump (if
  // --metrics); reports the trace path and event/drop counts on stderr.
  ~BenchObs();

  BenchObs(const BenchObs&) = delete;
  BenchObs& operator=(const BenchObs&) = delete;

  bool tracing() const { return !trace_path_.empty(); }
  const std::string& trace_path() const { return trace_path_; }
  bool metrics_requested() const { return metrics_; }
  bool quick() const { return quick_; }

 private:
  std::string trace_path_;
  bool metrics_ = false;
  bool quick_ = false;
};

// True when the current bench was started with --quick (set by BenchObs);
// benches consult this to shrink node counts / trial counts while keeping
// the output format identical for the golden diff.
bool quick();

}  // namespace xscale::obs
