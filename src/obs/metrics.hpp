// Process-wide metrics registry: named counters, gauges, and online
// distributions with a flat snapshot and text/JSON dumps.
//
// Unlike the tracer, metrics are always on — an increment is one add on a
// cached slot, cheaper than any enabled check worth having. The cost that
// matters is the name lookup, so hot probes resolve their instrument once
// and keep the reference:
//
//   static obs::Counter& c = obs::metrics().counter("net.flows_started");
//   c.inc();
//
// References returned by the registry are stable for the process lifetime
// (node-based storage); `reset()` zeroes values without invalidating them.
// Metrics never feed back into simulation decisions — they are purely
// observational, like the tracer.
//
// Thread safety (DESIGN.md §7): every instrument may be hit from pool
// workers. Counters and gauges are atomics; distributions are sharded per
// thread ordinal and merged on snapshot; registry lookups take the registry
// mutex (cold path — probes cache their reference). Snapshot values are
// independent of which worker recorded what only when recording itself is
// deterministic — the deterministic hot paths record from the merge points
// on the calling thread, so their snapshots are byte-identical at any thread
// count.
//
// Naming convention: dotted `subsystem.metric` (e.g. `sched.idle_nodes`),
// which keeps the name-sorted snapshot grouped by subsystem.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/shard.hpp"
#include "sim/stats.hpp"

namespace xscale::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { v_.fetch_add(by, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-written level (queue depth, idle nodes, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double by) { v_.fetch_add(by, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

// An OnlineStats distribution that tolerates concurrent writers: each thread
// adds into its own shard (per-shard mutex — threads sharing an ordinal
// modulo kShards stay safe) and readers merge the shards in fixed shard
// order. A distribution recorded by one thread lives entirely in one shard,
// so `merged()` returns the sequential accumulator bit-for-bit.
class ShardedStats {
 public:
  static constexpr int kShards = 16;

  void add(double x) {
    Shard& sh = shards_[thread_ordinal() % kShards];
    std::lock_guard<std::mutex> lk(sh.m);
    sh.s.add(x);
  }

  sim::OnlineStats merged() const {
    sim::OnlineStats out;
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lk(sh.m);
      out.merge(sh.s);
    }
    return out;
  }

  std::size_t count() const { return merged().count(); }
  double mean() const { return merged().mean(); }
  double stddev() const { return merged().stddev(); }
  double min() const { return merged().min(); }
  double max() const { return merged().max(); }

  void reset() {
    for (Shard& sh : shards_) {
      std::lock_guard<std::mutex> lk(sh.m);
      sh.s.reset();
    }
  }

 private:
  struct alignas(64) Shard {
    mutable std::mutex m;
    sim::OnlineStats s;
  };
  Shard shards_[kShards];
};

class MetricsRegistry {
 public:
  enum class Kind { Counter, Gauge, Stats };

  // One instrument flattened for reporting. For Kind::Stats, `value` is the
  // mean and `count`/`min`/`max`/`stddev` carry the distribution.
  struct Entry {
    std::string name;
    Kind kind = Kind::Counter;
    double value = 0;
    std::uint64_t count = 0;
    double min = 0, max = 0, stddev = 0;
  };

  static MetricsRegistry& instance();

  // Find-or-create by name. A name registers exactly one kind; re-requesting
  // it with another kind throws std::logic_error (two probes silently
  // sharing a name across kinds is a bug worth failing loudly on).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  ShardedStats& stats(const std::string& name);

  // Flat, name-sorted view of every registered instrument.
  std::vector<Entry> snapshot() const;

  // Aligned `name value` lines / a single JSON object keyed by name.
  std::string dump_text() const;
  std::string dump_json() const;

  // Zero every value; registered references stay valid.
  void reset();

  std::size_t instrument_count() const {
    std::lock_guard<std::mutex> lk(m_);
    return counters_.size() + gauges_.size() + stats_.size();
  }

 private:
  void check_unique(const std::string& name, Kind requested) const;

  // std::map: stable references and name-sorted iteration for free.
  // m_ guards the maps themselves; instrument values have their own
  // synchronization.
  mutable std::mutex m_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, ShardedStats> stats_;
};

inline MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

}  // namespace xscale::obs
