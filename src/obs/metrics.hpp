// Process-wide metrics registry: named counters, gauges, and online
// distributions with a flat snapshot and text/JSON dumps.
//
// Unlike the tracer, metrics are always on — an increment is one add on a
// cached slot, cheaper than any enabled check worth having. The cost that
// matters is the name lookup, so hot probes resolve their instrument once
// and keep the reference:
//
//   static obs::Counter& c = obs::metrics().counter("net.flows_started");
//   c.inc();
//
// References returned by the registry are stable for the process lifetime
// (node-based storage); `reset()` zeroes values without invalidating them.
// Metrics never feed back into simulation decisions — they are purely
// observational, like the tracer.
//
// Naming convention: dotted `subsystem.metric` (e.g. `sched.idle_nodes`),
// which keeps the name-sorted snapshot grouped by subsystem.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace xscale::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { v_ += by; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

// Last-written level (queue depth, idle nodes, ...).
class Gauge {
 public:
  void set(double v) { v_ = v; }
  void add(double by) { v_ += by; }
  double value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  double v_ = 0;
};

class MetricsRegistry {
 public:
  enum class Kind { Counter, Gauge, Stats };

  // One instrument flattened for reporting. For Kind::Stats, `value` is the
  // mean and `count`/`min`/`max`/`stddev` carry the distribution.
  struct Entry {
    std::string name;
    Kind kind = Kind::Counter;
    double value = 0;
    std::uint64_t count = 0;
    double min = 0, max = 0, stddev = 0;
  };

  static MetricsRegistry& instance();

  // Find-or-create by name. A name registers exactly one kind; re-requesting
  // it with another kind throws std::logic_error (two probes silently
  // sharing a name across kinds is a bug worth failing loudly on).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  sim::OnlineStats& stats(const std::string& name);

  // Flat, name-sorted view of every registered instrument.
  std::vector<Entry> snapshot() const;

  // Aligned `name value` lines / a single JSON object keyed by name.
  std::string dump_text() const;
  std::string dump_json() const;

  // Zero every value; registered references stay valid.
  void reset();

  std::size_t instrument_count() const {
    return counters_.size() + gauges_.size() + stats_.size();
  }

 private:
  void check_unique(const std::string& name, Kind requested) const;

  // std::map: stable references and name-sorted iteration for free.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, sim::OnlineStats> stats_;
};

inline MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

}  // namespace xscale::obs
