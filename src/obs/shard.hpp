// Thread → shard assignment shared by the sharded obs:: instruments.
#pragma once

#include <atomic>

namespace xscale::obs {

// Stable small ordinal for the calling thread: 0 for the first thread that
// ever asks (the main thread, in practice — pool workers only reach obs::
// code from inside a region), then 1, 2, ... in first-use order. Sharded
// instruments key their shard choice on this so a single-threaded run puts
// everything in shard 0 and merge-on-snapshot reproduces the unsharded
// result bit-for-bit.
inline int thread_ordinal() {
  static std::atomic<int> next{0};
  thread_local const int ord = next.fetch_add(1, std::memory_order_relaxed);
  return ord;
}

}  // namespace xscale::obs
