#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace xscale::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry r;
  return r;
}

void MetricsRegistry::check_unique(const std::string& name,
                                   Kind requested) const {
  const bool taken = (requested != Kind::Counter && counters_.contains(name)) ||
                     (requested != Kind::Gauge && gauges_.contains(name)) ||
                     (requested != Kind::Stats && stats_.contains(name));
  if (taken)
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered with a different kind");
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  check_unique(name, Kind::Counter);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  check_unique(name, Kind::Gauge);
  return gauges_[name];
}

ShardedStats& MetricsRegistry::stats(const std::string& name) {
  std::lock_guard<std::mutex> lk(m_);
  check_unique(name, Kind::Stats);
  return stats_[name];
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(m_);
  std::vector<Entry> out;
  out.reserve(counters_.size() + gauges_.size() + stats_.size());
  for (const auto& [name, c] : counters_) {
    Entry e;
    e.name = name;
    e.kind = Kind::Counter;
    e.value = static_cast<double>(c.value());
    e.count = c.value();
    out.push_back(std::move(e));
  }
  for (const auto& [name, g] : gauges_) {
    Entry e;
    e.name = name;
    e.kind = Kind::Gauge;
    e.value = g.value();
    out.push_back(std::move(e));
  }
  for (const auto& [name, s] : stats_) {
    const sim::OnlineStats m = s.merged();
    Entry e;
    e.name = name;
    e.kind = Kind::Stats;
    e.value = m.mean();
    e.count = m.count();
    e.min = m.min();
    e.max = m.max();
    e.stddev = m.stddev();
    out.push_back(std::move(e));
  }
  // The three maps are each sorted; merge into one name-sorted view.
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

std::string MetricsRegistry::dump_text() const {
  std::string out;
  char line[256];
  for (const Entry& e : snapshot()) {
    switch (e.kind) {
      case Kind::Counter:
        std::snprintf(line, sizeof(line), "%-40s %llu\n", e.name.c_str(),
                      static_cast<unsigned long long>(e.count));
        break;
      case Kind::Gauge:
        std::snprintf(line, sizeof(line), "%-40s %.6g\n", e.name.c_str(),
                      e.value);
        break;
      case Kind::Stats:
        std::snprintf(line, sizeof(line),
                      "%-40s n=%llu mean=%.6g min=%.6g max=%.6g sd=%.6g\n",
                      e.name.c_str(), static_cast<unsigned long long>(e.count),
                      e.value, e.min, e.max, e.stddev);
        break;
    }
    out += line;
  }
  return out;
}

namespace {

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::dump_json() const {
  std::string out = "{";
  bool first = true;
  for (const Entry& e : snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + e.name + "\":";
    switch (e.kind) {
      case Kind::Counter: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(e.count));
        out += buf;
        break;
      }
      case Kind::Gauge:
        append_number(out, e.value);
        break;
      case Kind::Stats: {
        out += "{\"n\":";
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(e.count));
        out += buf;
        out += ",\"mean\":";
        append_number(out, e.value);
        out += ",\"min\":";
        append_number(out, e.min);
        out += ",\"max\":";
        append_number(out, e.max);
        out += ",\"stddev\":";
        append_number(out, e.stddev);
        out += "}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(m_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, s] : stats_) s.reset();
}

}  // namespace xscale::obs
