// Structured tracing in *simulated* time.
//
// The tracer records typed events — spans `{ts, dur, category, name, args}`
// and zero-duration instants — into a preallocated ring buffer and exports
// them as Chrome `trace_event` JSON, loadable in chrome://tracing and
// Perfetto. Timestamps are simulated seconds (written as microseconds, the
// trace_event convention), so a dumped run replays as a timeline of what the
// *simulated* machine did: which flow held which link when, where the
// scheduler went idle, which collective phase straggled.
//
// Cost contract (see DESIGN.md §6):
//   * disabled (the default): every probe is an inlined `enabled_` load and
//     a predicted-not-taken branch — no allocation, no formatting, no store.
//   * enabled: one bounded-size struct store into a preallocated ring; when
//     the ring wraps, the oldest events are overwritten (`dropped()` counts
//     them) rather than growing memory under multi-million-event runs.
//
// Tracing is purely observational: probes never read tracer state back into
// simulation decisions, so enabling it cannot change any simulated result
// (tests/test_obs.cpp asserts bit-identical runs either way).
//
// The tracer is process-global (`obs::tracer()`) and single-threaded, like
// the engine it observes. Category/name/arg-key strings must outlive the
// tracer — pass string literals.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace xscale::obs {

// One numeric argument attached to an event. `key` must be a string literal
// (or otherwise outlive the tracer); only the pointer is stored.
struct Arg {
  const char* key;
  double value;
};

class Tracer {
 public:
  static constexpr std::size_t kMaxArgs = 4;

  struct Event {
    const char* cat = nullptr;
    const char* name = nullptr;
    double ts = 0;    // simulated seconds
    double dur = -1;  // simulated seconds; < 0 marks an instant event
    std::uint32_t nargs = 0;
    Arg args[kMaxArgs];
  };

  // The process-wide tracer every probe reports to.
  static Tracer& instance();

  // Preallocates the ring (default ~256k events) and starts recording.
  void enable(std::size_t capacity = std::size_t{1} << 18);
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Record a span covering [ts, ts+dur] of simulated time. Inlined disabled
  // check: when tracing is off this is a load and a branch. Negative or
  // non-finite durations are recorded as zero-length spans (dur < 0 is the
  // internal instant marker).
  void span(const char* cat, const char* name, double ts, double dur,
            std::initializer_list<Arg> args = {}) {
    if (!enabled_) return;
    record(cat, name, ts, dur >= 0 ? dur : 0, args);
  }

  // Record a point-in-time event.
  void instant(const char* cat, const char* name, double ts,
               std::initializer_list<Arg> args = {}) {
    if (!enabled_) return;
    record(cat, name, ts, -1.0, args);
  }

  // Events currently held (<= capacity) / ever recorded / overwritten.
  std::size_t size() const;
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }

  // Drop all recorded events (keeps the ring allocation and enabled state).
  void clear();

  // Visit held events oldest-first (tests and custom exporters).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) fn(at(i));
  }

  // Chrome trace_event JSON: {"traceEvents":[...]} with "X" (span) and "i"
  // (instant) phases, one tid per category, and thread-name metadata so
  // Perfetto labels each subsystem's lane. Returns false on I/O failure.
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;

 private:
  void record(const char* cat, const char* name, double ts, double dur,
              std::initializer_list<Arg> args);
  const Event& at(std::size_t i) const;  // i-th oldest held event

  bool enabled_ = false;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // next write slot
  std::uint64_t recorded_ = 0;
};

inline Tracer& tracer() { return Tracer::instance(); }

}  // namespace xscale::obs
