// Structured tracing in *simulated* time.
//
// The tracer records typed events — spans `{ts, dur, category, name, args}`
// and zero-duration instants — into preallocated ring buffers and exports
// them as Chrome `trace_event` JSON, loadable in chrome://tracing and
// Perfetto. Timestamps are simulated seconds (written as microseconds, the
// trace_event convention), so a dumped run replays as a timeline of what the
// *simulated* machine did: which flow held which link when, where the
// scheduler went idle, which collective phase straggled.
//
// Cost contract (see DESIGN.md §6):
//   * disabled (the default): every probe is an inlined relaxed-atomic load
//     and a predicted-not-taken branch — no allocation, no formatting, no
//     store.
//   * enabled: one bounded-size struct store into a preallocated per-shard
//     ring under that shard's (uncontended, in the deterministic paths)
//     mutex; when a ring wraps, its oldest events are overwritten
//     (`dropped()` counts them) rather than growing memory under
//     multi-million-event runs.
//
// Thread safety (DESIGN.md §7): probes may fire from pool workers. Each
// thread records into the shard picked by its `obs::thread_ordinal()`; the
// thread that called `enable()` owns shard 0, which holds the full requested
// capacity. Exports visit shards in fixed shard order, oldest-first within a
// shard — a run that records only from the enabling thread (every
// deterministic hot path does) therefore exports byte-identically to the
// pre-sharding single-ring tracer, at any thread count.
//
// Tracing is purely observational: probes never read tracer state back into
// simulation decisions, so enabling it cannot change any simulated result
// (tests/test_obs.cpp asserts bit-identical runs either way).
//
// The tracer is process-global (`obs::tracer()`). Category/name/arg-key
// strings must outlive the tracer — pass string literals.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "obs/shard.hpp"

namespace xscale::obs {

// One numeric argument attached to an event. `key` must be a string literal
// (or otherwise outlive the tracer); only the pointer is stored.
struct Arg {
  const char* key;
  double value;
};

class Tracer {
 public:
  static constexpr std::size_t kMaxArgs = 4;
  static constexpr std::size_t kShards = 8;

  struct Event {
    const char* cat = nullptr;
    const char* name = nullptr;
    double ts = 0;    // simulated seconds
    double dur = -1;  // simulated seconds; < 0 marks an instant event
    std::uint32_t nargs = 0;
    Arg args[kMaxArgs];
  };

  // The process-wide tracer every probe reports to.
  static Tracer& instance();

  // Preallocates the rings (default ~256k events in the caller's shard) and
  // starts recording. The calling thread claims shard 0; other threads share
  // the remaining shards, each sized capacity / kShards (min 1).
  void enable(std::size_t capacity = std::size_t{1} << 18);
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Record a span covering [ts, ts+dur] of simulated time. Inlined disabled
  // check: when tracing is off this is a load and a branch. Negative or
  // non-finite durations are recorded as zero-length spans (dur < 0 is the
  // internal instant marker).
  void span(const char* cat, const char* name, double ts, double dur,
            std::initializer_list<Arg> args = {}) {
    if (!enabled()) return;
    record(cat, name, ts, dur >= 0 ? dur : 0, args);
  }

  // Record a point-in-time event.
  void instant(const char* cat, const char* name, double ts,
               std::initializer_list<Arg> args = {}) {
    if (!enabled()) return;
    record(cat, name, ts, -1.0, args);
  }

  // Events currently held (<= capacity) / ever recorded / overwritten,
  // summed across shards.
  std::size_t size() const;
  std::size_t capacity() const;
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  // Drop all recorded events (keeps the ring allocations and enabled state).
  void clear();

  // Visit held events in shard order, oldest-first within each shard (tests
  // and custom exporters). With a single recording thread this is exactly
  // oldest-first overall.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& sh : shards_) {
      std::lock_guard<std::mutex> lk(sh.m);
      const std::size_t n = shard_size(sh);
      for (std::size_t i = 0; i < n; ++i) fn(shard_at(sh, i));
    }
  }

  // Chrome trace_event JSON: {"traceEvents":[...]} with "X" (span) and "i"
  // (instant) phases, one tid per category, and thread-name metadata so
  // Perfetto labels each subsystem's lane. Returns false on I/O failure.
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;

 private:
  struct Shard {
    mutable std::mutex m;
    std::vector<Event> ring;
    std::size_t head = 0;  // next write slot
    std::uint64_t recorded = 0;
  };

  void record(const char* cat, const char* name, double ts, double dur,
              std::initializer_list<Arg> args);
  static std::size_t shard_size(const Shard& sh) {
    return sh.recorded < sh.ring.size() ? static_cast<std::size_t>(sh.recorded)
                                        : sh.ring.size();
  }
  // i-th oldest held event of a shard (caller holds the shard mutex).
  static const Event& shard_at(const Shard& sh, std::size_t i) {
    const std::size_t base = sh.recorded > sh.ring.size() ? sh.head : 0;
    return sh.ring[(base + i) % sh.ring.size()];
  }

  std::atomic<bool> enabled_{false};
  int owner_ordinal_ = 0;  // thread_ordinal() of the enable() caller
  Shard shards_[kShards];
};

inline Tracer& tracer() { return Tracer::instance(); }

}  // namespace xscale::obs
