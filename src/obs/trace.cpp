#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace xscale::obs {

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  if (ring_.size() != capacity) {
    ring_.assign(capacity, Event{});
    head_ = 0;
    recorded_ = 0;
  }
  enabled_ = true;
}

void Tracer::clear() {
  head_ = 0;
  recorded_ = 0;
}

std::size_t Tracer::size() const {
  return std::min<std::uint64_t>(recorded_, ring_.size());
}

const Tracer::Event& Tracer::at(std::size_t i) const {
  // Oldest held event sits at head_ once the ring has wrapped, else at 0.
  const std::size_t base = recorded_ > ring_.size() ? head_ : 0;
  return ring_[(base + i) % ring_.size()];
}

void Tracer::record(const char* cat, const char* name, double ts, double dur,
                    std::initializer_list<Arg> args) {
  Event& e = ring_[head_];
  e.cat = cat;
  e.name = name;
  e.ts = ts;
  e.dur = dur;
  e.nargs = 0;
  for (const Arg& a : args) {
    if (e.nargs == kMaxArgs) break;
    e.args[e.nargs++] = a;
  }
  head_ = (head_ + 1) % ring_.size();
  ++recorded_;
}

namespace {

// JSON has no NaN/Infinity literals; route non-finite values to null.
void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void Tracer::write_json(std::ostream& os) const {
  // One trace "thread" per category so each subsystem renders as its own
  // lane. Category pointers are stable (string literals), so pointer
  // identity is the key; names are compared to merge duplicate literals.
  std::vector<const char*> cats;
  auto tid_of = [&](const char* cat) {
    for (std::size_t i = 0; i < cats.size(); ++i)
      if (cats[i] == cat || std::string(cats[i]) == cat) return i;
    cats.push_back(cat);
    return cats.size() - 1;
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for_each([&](const Event& e) {
    if (!first) os << ",";
    first = false;
    const bool span = e.dur >= 0;
    os << "{\"ph\":\"" << (span ? 'X' : 'i') << "\",\"pid\":0,\"tid\":"
       << tid_of(e.cat) << ",\"cat\":\"" << e.cat << "\",\"name\":\"" << e.name
       << "\",\"ts\":";
    write_number(os, e.ts * 1e6);  // simulated seconds -> trace microseconds
    if (span) {
      os << ",\"dur\":";
      write_number(os, e.dur * 1e6);
    } else {
      os << ",\"s\":\"g\"";  // global-scope instant
    }
    if (e.nargs > 0) {
      os << ",\"args\":{";
      for (std::uint32_t i = 0; i < e.nargs; ++i) {
        if (i) os << ",";
        os << "\"" << e.args[i].key << "\":";
        write_number(os, e.args[i].value);
      }
      os << "}";
    }
    os << "}";
  });
  // Thread-name metadata so viewers label lanes by subsystem.
  for (std::size_t i = 0; i < cats.size(); ++i) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << i
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << cats[i]
       << "\"}}";
  }
  os << "]}\n";
}

bool Tracer::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return os.good();
}

}  // namespace xscale::obs
