#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace xscale::obs {

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::enable(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  owner_ordinal_ = thread_ordinal();
  if (shards_[0].ring.size() != capacity) {
    const std::size_t worker_cap = std::max<std::size_t>(capacity / kShards, 1);
    for (std::size_t i = 0; i < kShards; ++i) {
      Shard& sh = shards_[i];
      std::lock_guard<std::mutex> lk(sh.m);
      sh.ring.assign(i == 0 ? capacity : worker_cap, Event{});
      sh.head = 0;
      sh.recorded = 0;
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::clear() {
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.m);
    sh.head = 0;
    sh.recorded = 0;
  }
}

std::size_t Tracer::size() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.m);
    n += shard_size(sh);
  }
  return n;
}

std::size_t Tracer::capacity() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.ring.size();
  return n;
}

std::uint64_t Tracer::recorded() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.m);
    n += sh.recorded;
  }
  return n;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.m);
    if (sh.recorded > sh.ring.size()) n += sh.recorded - sh.ring.size();
  }
  return n;
}

void Tracer::record(const char* cat, const char* name, double ts, double dur,
                    std::initializer_list<Arg> args) {
  const int ord = thread_ordinal();
  const std::size_t idx =
      ord == owner_ordinal_
          ? 0
          : 1 + static_cast<std::size_t>(ord) % (kShards - 1);
  Shard& sh = shards_[idx];
  std::lock_guard<std::mutex> lk(sh.m);
  if (sh.ring.empty()) return;  // enable() never ran; nothing to write into
  Event& e = sh.ring[sh.head];
  e.cat = cat;
  e.name = name;
  e.ts = ts;
  e.dur = dur;
  e.nargs = 0;
  for (const Arg& a : args) {
    if (e.nargs == kMaxArgs) break;
    e.args[e.nargs++] = a;
  }
  sh.head = (sh.head + 1) % sh.ring.size();
  ++sh.recorded;
}

namespace {

// JSON has no NaN/Infinity literals; route non-finite values to null.
void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void Tracer::write_json(std::ostream& os) const {
  // One trace "thread" per category so each subsystem renders as its own
  // lane. Category pointers are stable (string literals), so pointer
  // identity is the key; names are compared to merge duplicate literals.
  std::vector<const char*> cats;
  auto tid_of = [&](const char* cat) {
    for (std::size_t i = 0; i < cats.size(); ++i)
      if (cats[i] == cat || std::string(cats[i]) == cat) return i;
    cats.push_back(cat);
    return cats.size() - 1;
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for_each([&](const Event& e) {
    if (!first) os << ",";
    first = false;
    const bool span = e.dur >= 0;
    os << "{\"ph\":\"" << (span ? 'X' : 'i') << "\",\"pid\":0,\"tid\":"
       << tid_of(e.cat) << ",\"cat\":\"" << e.cat << "\",\"name\":\"" << e.name
       << "\",\"ts\":";
    write_number(os, e.ts * 1e6);  // simulated seconds -> trace microseconds
    if (span) {
      os << ",\"dur\":";
      write_number(os, e.dur * 1e6);
    } else {
      os << ",\"s\":\"g\"";  // global-scope instant
    }
    if (e.nargs > 0) {
      os << ",\"args\":{";
      for (std::uint32_t i = 0; i < e.nargs; ++i) {
        if (i) os << ",";
        os << "\"" << e.args[i].key << "\":";
        write_number(os, e.args[i].value);
      }
      os << "}";
    }
    os << "}";
  });
  // Thread-name metadata so viewers label lanes by subsystem.
  for (std::size_t i = 0; i < cats.size(); ++i) {
    if (!first) os << ",";
    first = false;
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << i
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << cats[i]
       << "\"}}";
  }
  os << "]}\n";
}

bool Tracer::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return os.good();
}

}  // namespace xscale::obs
