#include "obs/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/parallel.hpp"

namespace xscale::obs {

namespace {
bool g_quick = false;

void apply_threads(const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end != s && *end == '\0' && v >= 1) {
    sim::set_thread_count(static_cast<int>(v));
  } else {
    std::fprintf(stderr, "--threads: ignoring invalid value '%s'\n", s);
  }
}
}  // namespace

bool quick() { return g_quick; }

BenchObs::BenchObs(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--trace") == 0 && i + 1 < argc) {
      trace_path_ = argv[++i];
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path_ = arg + 8;
    } else if (std::strcmp(arg, "--metrics") == 0) {
      metrics_ = true;
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick_ = true;
      g_quick = true;
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      apply_threads(argv[++i]);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      apply_threads(arg + 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  if (!trace_path_.empty()) tracer().enable();
}

BenchObs::~BenchObs() {
  if (!trace_path_.empty()) {
    Tracer& t = tracer();
    if (t.write_json_file(trace_path_)) {
      std::fprintf(stderr,
                   "trace: wrote %zu events to %s (%llu recorded, %llu "
                   "overwritten by ring wrap)\n",
                   t.size(), trace_path_.c_str(),
                   static_cast<unsigned long long>(t.recorded()),
                   static_cast<unsigned long long>(t.dropped()));
    } else {
      std::fprintf(stderr, "trace: failed to write %s\n", trace_path_.c_str());
    }
    t.disable();
  }
  if (metrics_) {
    std::fputs("\n== metrics ==\n", stdout);
    std::fputs(MetricsRegistry::instance().dump_text().c_str(), stdout);
  }
}

}  // namespace xscale::obs
