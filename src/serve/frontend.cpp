#include "serve/frontend.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "obs/metrics.hpp"

namespace xscale::serve {

namespace {

bool parse_int(std::istringstream& ss, int& out) {
  return static_cast<bool>(ss >> out);
}

bool parse_double(std::istringstream& ss, double& out) {
  return static_cast<bool>(ss >> out);
}

}  // namespace

void Frontend::serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (!handle_line(line, out)) break;
  }
}

bool Frontend::handle_line(const std::string& line, std::ostream& out) {
  std::istringstream ss(line);
  std::string cmd;
  if (!(ss >> cmd)) return true;  // blank line: no response

  if (cmd == "QUIT") {
    out << "OK\n";
    return false;
  }
  if (cmd == "OPEN") {
    const int id = batcher_.open_session();
    if (id < 0)
      out << "ERR at-capacity\n";
    else
      out << "OK " << id << "\n";
    return true;
  }
  if (cmd == "CLOSE") {
    int id;
    if (!parse_int(ss, id)) {
      out << "ERR usage: CLOSE <id>\n";
      return true;
    }
    staged_.erase(id);
    out << (batcher_.close_session(id) ? "OK\n" : "ERR no-such-session\n");
    return true;
  }
  if (cmd == "FAIL") {
    int id;
    if (!parse_int(ss, id) || batcher_.session(id) == nullptr) {
      out << "ERR usage: FAIL <id> <link>...\n";
      return true;
    }
    Scenario& sc = staged_[id];
    int link;
    int n = 0;
    while (parse_int(ss, link)) {
      sc.fail_links.push_back(link);
      ++n;
    }
    if (n == 0) {
      out << "ERR usage: FAIL <id> <link>...\n";
      return true;
    }
    out << "OK\n";
    return true;
  }
  if (cmd == "DELTA") {
    int id, link;
    double cap;
    if (!parse_int(ss, id) || batcher_.session(id) == nullptr ||
        !parse_int(ss, link) || !parse_double(ss, cap)) {
      out << "ERR usage: DELTA <id> <link> <cap_Bps>\n";
      return true;
    }
    staged_[id].capacity_overrides.emplace_back(link, cap);
    out << "OK\n";
    return true;
  }
  if (cmd == "FLOW") {
    int id;
    FlowSpec f;
    if (!parse_int(ss, id) || batcher_.session(id) == nullptr ||
        !parse_int(ss, f.src) || !parse_int(ss, f.dst) ||
        !parse_double(ss, f.bytes)) {
      out << "ERR usage: FLOW <id> <src> <dst> <bytes> [<start_s>]\n";
      return true;
    }
    parse_double(ss, f.start_s);  // optional, defaults to 0
    staged_[id].flows.push_back(f);
    out << "OK\n";
    return true;
  }
  if (cmd == "SUBMIT") {
    int id;
    if (!parse_int(ss, id)) {
      out << "ERR usage: SUBMIT <id>\n";
      return true;
    }
    const auto it = staged_.find(id);
    if (it == staged_.end()) {
      out << "ERR nothing-staged\n";
      return true;
    }
    // A rejected submit does not consume the scenario: the staged state
    // survives backpressure, so the client can retry after RUN drains the
    // queue instead of silently losing its FAIL/DELTA/FLOW lines.
    if (!batcher_.submit(id, std::move(it->second))) {
      out << "ERR backpressure-or-no-session\n";
      return true;
    }
    staged_.erase(it);
    out << "OK " << batcher_.pending() << "\n";
    return true;
  }
  if (cmd == "RUN") {
    const auto results = batcher_.run_batch();
    std::size_t count = 0;
    for (std::size_t sid = 0; sid < results.size(); ++sid) {
      for (std::size_t i = 0; i < results[sid].size(); ++i) {
        const ScenarioResult& r = results[sid][i];
        out << "RESULT " << sid << " " << i << " " << r.makespan_s << " "
            << r.dropped << "\n";
        ++count;
      }
    }
    out << "OK " << count << "\n";
    return true;
  }
  if (cmd == "METRICS") {
    for (const auto& e : obs::metrics().snapshot()) {
      if (e.name.rfind("serve.", 0) != 0) continue;
      out << "METRIC " << e.name << " " << e.value << "\n";
    }
    out << "OK\n";
    return true;
  }
  out << "ERR unknown-command " << cmd << "\n";
  return true;
}

}  // namespace xscale::serve
