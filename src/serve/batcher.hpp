// Session batcher: admission control + deterministic parallel execution.
//
// The batcher owns up to `max_sessions` ScenarioSessions over ONE shared
// snapshot and runs their queued scenarios through `sim::parallel_for` at
// grain 1 (one session per chunk). Determinism contract (pinned by the
// differential test in tests/test_serve.cpp): each session's results are
// byte-identical to running that session alone, serially, at any thread
// count. That holds because sessions share nothing mutable — the snapshot is
// immutable and its lazily-filled route cache is value-deterministic (a probe
// either hits the cached minimal path or recomputes the identical one), and
// every overlay, engine, FlowSim and scratch buffer is per-session.
//
// Admission and backpressure are explicit and observable: opening past
// capacity or submitting past the queue bound is *rejected* (false / -1),
// never silently dropped, and every decision ticks an obs::MetricsRegistry
// counter under `serve.*`.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/session.hpp"

namespace xscale::serve {

struct BatcherConfig {
  int max_sessions = 64;
  // Per-session queued-scenario bound; `submit` past it is backpressure.
  std::size_t max_pending = 1024;
  net::FlowSimConfig sim = ScenarioSession::default_sim_config();
};

class Batcher {
 public:
  Batcher(std::shared_ptr<const net::TopologySnapshot> snap,
          BatcherConfig cfg = {});
  ~Batcher();

  const std::shared_ptr<const net::TopologySnapshot>& snapshot() const {
    return snap_;
  }

  // Returns a session id, or -1 when at max_sessions (counted as a
  // rejection). Ids are reused after close; a fresh session starts cold.
  int open_session();
  bool close_session(int id);

  // Queue a scenario on an open session. False = invalid id or backpressure;
  // a rejected rvalue submit does NOT consume `sc`, so callers holding staged
  // state (the Frontend) can retry the same scenario after the queue drains.
  bool submit(int id, Scenario&& sc);
  bool submit(int id, const Scenario& sc) { return submit(id, Scenario(sc)); }

  // Drain every queue: sessions run concurrently (parallel_for, grain 1),
  // each session's scenarios strictly in submit order. Returns results
  // indexed [session id][scenario], empty vectors for idle/closed ids.
  // Scenario errors — validation rejects *and* mid-run solver/routing
  // throws — surface per-scenario as a sentinel result (completion_s empty,
  // dropped == 0, makespan < 0) rather than tearing down sibling sessions;
  // the erroring session itself stays open and serves its next scenario.
  std::vector<std::vector<ScenarioResult>> run_batch();

  ScenarioSession* session(int id);
  int open_sessions() const;
  std::size_t pending() const;
  const BatcherConfig& config() const { return cfg_; }

 private:
  struct Slot {
    std::unique_ptr<ScenarioSession> session;  // null = closed
    std::vector<Scenario> queue;
  };
  bool valid_open(int id) const {
    return id >= 0 && static_cast<std::size_t>(id) < slots_.size() &&
           slots_[static_cast<std::size_t>(id)].session != nullptr;
  }

  std::shared_ptr<const net::TopologySnapshot> snap_;
  BatcherConfig cfg_;
  std::vector<Slot> slots_;
  std::vector<int> free_ids_;
};

}  // namespace xscale::serve
