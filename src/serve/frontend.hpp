// Thin text front-end over the batcher: one command per line, answers on the
// paired output stream. Works the same over stdin/stdout (examples/serve_cli)
// or any socket-backed iostream a caller wires up — the protocol is the
// interface, the transport is not.
//
//   OPEN                          -> OK <id>            | ERR at-capacity
//   CLOSE <id>                    -> OK                 | ERR no-such-session
//   FAIL <id> <link> [<link>...]  -> OK        (stage failures, next scenario)
//   DELTA <id> <link> <cap_Bps>   -> OK        (stage a capacity override)
//   FLOW <id> <src> <dst> <bytes> [<start_s>] -> OK      (stage a flow)
//   SUBMIT <id>                   -> OK <n-pending>     | ERR backpressure
//                                                       | ERR nothing-staged
//   RUN                           -> RESULT <id> <idx> <makespan_s> <dropped>
//                                    (one line per scenario) then OK <count>
//   METRICS                       -> METRIC <name> <value> ... then OK
//   QUIT                          -> OK (serve() returns; EOF does the same)
//
// Staged scenario state lives per session in the frontend; SUBMIT moves it
// into the batcher's queue (admission/backpressure decisions and counters
// happen there). A rejected SUBMIT keeps the staged scenario intact for
// retry; SUBMIT with nothing staged is an error, never an empty scenario.
// Unknown commands and malformed arguments answer ERR and leave every
// session untouched.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "serve/batcher.hpp"

namespace xscale::serve {

class Frontend {
 public:
  explicit Frontend(Batcher& batcher) : batcher_(batcher) {}

  // Read commands from `in` until QUIT or EOF. Every line gets exactly one
  // OK/ERR/RESULT... response block on `out`.
  void serve(std::istream& in, std::ostream& out);

  // Process one command line; returns false when the line was QUIT.
  bool handle_line(const std::string& line, std::ostream& out);

 private:
  Batcher& batcher_;
  std::map<int, Scenario> staged_;  // per open session id
};

}  // namespace xscale::serve
