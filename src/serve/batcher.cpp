#include "serve/batcher.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/parallel.hpp"

namespace xscale::serve {

namespace {

obs::Counter& c_sessions_opened() {
  static obs::Counter& c = obs::metrics().counter("serve.sessions_opened");
  return c;
}
obs::Counter& c_sessions_closed() {
  static obs::Counter& c = obs::metrics().counter("serve.sessions_closed");
  return c;
}
obs::Counter& c_sessions_rejected() {
  static obs::Counter& c = obs::metrics().counter("serve.sessions_rejected");
  return c;
}
obs::Counter& c_scenarios_submitted() {
  static obs::Counter& c = obs::metrics().counter("serve.scenarios_submitted");
  return c;
}
obs::Counter& c_scenarios_rejected() {
  static obs::Counter& c = obs::metrics().counter("serve.scenarios_rejected");
  return c;
}
obs::Counter& c_scenarios_completed() {
  static obs::Counter& c = obs::metrics().counter("serve.scenarios_completed");
  return c;
}
obs::Counter& c_scenarios_failed() {
  static obs::Counter& c = obs::metrics().counter("serve.scenarios_failed");
  return c;
}
obs::Counter& c_batches() {
  static obs::Counter& c = obs::metrics().counter("serve.batches");
  return c;
}
obs::Gauge& g_sessions_open() {
  static obs::Gauge& g = obs::metrics().gauge("serve.sessions_open");
  return g;
}
obs::Gauge& g_pending() {
  static obs::Gauge& g = obs::metrics().gauge("serve.pending_scenarios");
  return g;
}

}  // namespace

Batcher::Batcher(std::shared_ptr<const net::TopologySnapshot> snap,
                 BatcherConfig cfg)
    : snap_(std::move(snap)), cfg_(cfg) {
  if (!snap_) throw std::invalid_argument("Batcher: null snapshot");
  if (cfg_.max_sessions < 1)
    throw std::invalid_argument("Batcher: max_sessions must be >= 1");
}

Batcher::~Batcher() = default;

int Batcher::open_session() {
  if (open_sessions() >= cfg_.max_sessions) {
    c_sessions_rejected().inc();
    return -1;
  }
  int id;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
  } else {
    id = static_cast<int>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[static_cast<std::size_t>(id)];
  s.session = std::make_unique<ScenarioSession>(snap_, cfg_.sim);
  s.queue.clear();
  c_sessions_opened().inc();
  g_sessions_open().add(1);
  return id;
}

bool Batcher::close_session(int id) {
  if (!valid_open(id)) return false;
  Slot& s = slots_[static_cast<std::size_t>(id)];
  g_pending().add(-static_cast<double>(s.queue.size()));
  s.session.reset();
  s.queue.clear();
  free_ids_.push_back(id);
  c_sessions_closed().inc();
  g_sessions_open().add(-1);
  return true;
}

bool Batcher::submit(int id, Scenario&& sc) {
  if (!valid_open(id)) {
    c_scenarios_rejected().inc();
    return false;
  }
  Slot& s = slots_[static_cast<std::size_t>(id)];
  if (s.queue.size() >= cfg_.max_pending) {
    c_scenarios_rejected().inc();
    return false;
  }
  s.queue.push_back(std::move(sc));
  c_scenarios_submitted().inc();
  g_pending().add(1);
  return true;
}

std::vector<std::vector<ScenarioResult>> Batcher::run_batch() {
  c_batches().inc();
  std::vector<std::vector<ScenarioResult>> results(slots_.size());
  // Grain 1: one session per chunk. Chunk boundaries depend only on the slot
  // count, each session mutates only its own state, and results land in
  // index-disjoint vectors — the bit-determinism conditions of DESIGN.md §7.
  sim::parallel_for(slots_.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      Slot& s = slots_[i];
      if (!s.session || s.queue.empty()) continue;
      results[i].reserve(s.queue.size());
      for (const Scenario& sc : s.queue) {
        try {
          results[i].push_back(s.session->run(sc));
        } catch (const std::exception&) {
          // Per-scenario error isolation: report a sentinel result and keep
          // the session. Validation errors (std::invalid_argument) reject
          // before touching state; mid-run errors — the solver refusing an
          // unvalidated capacity override, routing finding no live route
          // between groups (std::runtime_error) — leave the session reset
          // and re-runnable (ScenarioSession::run rebuilds engine + sim
          // before rethrowing). Either way the batch must not tear down.
          ScenarioResult bad;
          bad.makespan_s = -1.0;
          results[i].push_back(std::move(bad));
        }
      }
    }
  });
  // Counter/gauge bookkeeping on the caller, in slot order, after the region:
  // metric totals stay byte-identical at any thread count.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    if (!s.session || s.queue.empty()) continue;
    for (const ScenarioResult& r : results[i])
      (r.makespan_s < 0 ? c_scenarios_failed() : c_scenarios_completed()).inc();
    g_pending().add(-static_cast<double>(s.queue.size()));
    s.queue.clear();
  }
  return results;
}

ScenarioSession* Batcher::session(int id) {
  return valid_open(id) ? slots_[static_cast<std::size_t>(id)].session.get()
                        : nullptr;
}

int Batcher::open_sessions() const {
  int n = 0;
  for (const Slot& s : slots_)
    if (s.session) ++n;
  return n;
}

std::size_t Batcher::pending() const {
  std::size_t n = 0;
  for (const Slot& s : slots_) n += s.queue.size();
  return n;
}

}  // namespace xscale::serve
