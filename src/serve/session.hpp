// Scenario serving: one session = one what-if stream over a shared snapshot.
//
// The capacity-planning workload (ROADMAP "xscale-as-a-service") is thousands
// of near-identical questions: take the machine, fail this handful of links,
// scale that link's capacity, inject this traffic, report completion times.
// A `ScenarioSession` answers them sequentially over a private
// `net::FabricOverlay` + `net::FlowSim`, while the expensive immutable state
// — topology, base capacities, minimal-route cache — lives in one
// `net::TopologySnapshot` shared by every session (DESIGN.md §10).
//
// Sessions are deliberately *stateful* between scenarios: the overlay is
// diffed (not rebuilt) against the next scenario's failure set, so a repeated
// failure set bumps no capacity epoch, and the FlowSim warm-start memo
// (DESIGN.md §9) replays repeated traffic shapes wholesale. A sweep that
// perturbs one link per probe pays for one link, not for the machine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/flowsim.hpp"
#include "net/snapshot.hpp"
#include "sim/engine.hpp"

namespace xscale::serve {

// One flow to inject: endpoints, payload, start offset from scenario begin.
struct FlowSpec {
  int src = 0;
  int dst = 0;
  double bytes = 0;
  double start_s = 0;
};

// A complete what-if question. `fail_links` / `capacity_overrides` describe
// the *desired* overlay state, not a delta — the session diffs them against
// its current overlay, so listing the same failure twice (or across
// consecutive scenarios) is free.
struct Scenario {
  std::vector<int> fail_links;
  std::vector<std::pair<int, double>> capacity_overrides;  // (link, B/s)
  std::vector<FlowSpec> flows;
};

struct ScenarioResult {
  // Per flow, seconds from scenario start to completion; -1 for flows dropped
  // (zero-rate over the failed fabric — StallPolicy::Drop).
  std::vector<double> completion_s;
  double makespan_s = 0;
  std::uint64_t dropped = 0;
  // Solver-effort delta for this scenario (memo/warm hit accounting — the
  // serving tests read `warm_memo_stale` to prove sibling isolation).
  net::FlowSim::Stats stats;
  // Overlay epoch after applying the scenario (diff-applied: identical
  // repeated scenarios leave it unchanged).
  std::uint64_t capacity_epoch = 0;
};

class ScenarioSession {
 public:
  // Flows with zero max-min rate must be dropped, not stalled: a stalled flow
  // would pin `Engine::run()` forever and leak into the next scenario.
  static net::FlowSimConfig default_sim_config() {
    net::FlowSimConfig cfg;
    cfg.stall_policy = net::StallPolicy::Drop;
    return cfg;
  }

  explicit ScenarioSession(std::shared_ptr<const net::TopologySnapshot> snap,
                           net::FlowSimConfig sim_cfg = default_sim_config());

  // Apply the scenario's overlay (diffed against the current one), inject its
  // flows, run to completion, report. Throws std::invalid_argument on a
  // malformed scenario (bad endpoint, non-positive bytes, negative start)
  // without touching session state. A throw *mid-run* — the solver rejecting
  // a deliberately-unvalidated capacity override, routing finding no live
  // route — propagates after the engine and simulator are rebuilt, so no
  // queued event or in-flight flow (whose callbacks reference the dead run's
  // stack frame) survives into the next run; the overlay and its epoch are
  // kept, warm-start state starts cold.
  ScenarioResult run(const Scenario& sc);

  // Allocation-free form: reuse the caller's result buffers (grow-only). A
  // warmed session answering a repeated scenario through this overload
  // touches the heap zero times — the solver scratch, the engine's event
  // arena, the overlay-diff scratch and the scheduled closures (which fit
  // std::function's small-buffer; see run()'s loop) are all session-lifetime.
  // tests/test_serve.cpp pins this with a counting allocator.
  void run(const Scenario& sc, ScenarioResult& out);

  const net::Fabric& fabric() const { return fabric_; }
  net::Fabric& fabric() { return fabric_; }
  const net::FlowSim& flowsim() const { return *sim_; }
  std::uint64_t scenarios_run() const { return scenarios_run_; }

 private:
  void validate(const Scenario& sc) const;
  void apply_overlay(const Scenario& sc);
  void reset_sim();

  net::Fabric fabric_;
  net::FlowSimConfig sim_cfg_;
  sim::Engine eng_;
  // optional<> only so reset_sim() can reconstruct it (FlowSim holds
  // references); engaged for the whole session lifetime.
  std::optional<net::FlowSim> sim_;
  std::uint64_t scenarios_run_ = 0;

  // Scenario-run scratch. The scheduled start/completion closures capture
  // only [this, index] (16 bytes, trivially copyable) so they live in
  // std::function's small-buffer instead of heap-allocating twice per flow
  // per scenario; the flow specs and result slot they need are reached
  // through these members. Valid only while run() is on the stack.
  const Scenario* cur_sc_ = nullptr;
  ScenarioResult* cur_res_ = nullptr;
  double cur_t0_ = 0;
  // Grow-only copies of the current overlay state for the diff in
  // apply_overlay() (the overlay mutates while we iterate, so iterating its
  // own vectors directly would be UB).
  std::vector<int> ov_failed_scratch_;
  std::vector<std::pair<int, double>> ov_caps_scratch_;
};

}  // namespace xscale::serve
