#include "serve/session.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace xscale::serve {

namespace {

net::FlowSim::Stats stats_delta(const net::FlowSim::Stats& after,
                                const net::FlowSim::Stats& before) {
  net::FlowSim::Stats d;
  d.resolves = after.resolves - before.resolves;
  d.full_solves = after.full_solves - before.full_solves;
  d.fallback_solves = after.fallback_solves - before.fallback_solves;
  d.warm_solves = after.warm_solves - before.warm_solves;
  d.warm_single_hits = after.warm_single_hits - before.warm_single_hits;
  d.warm_memo_hits = after.warm_memo_hits - before.warm_memo_hits;
  d.warm_memo_stale = after.warm_memo_stale - before.warm_memo_stale;
  d.warm_prefix_hits = after.warm_prefix_hits - before.warm_prefix_hits;
  d.component_solves = after.component_solves - before.component_solves;
  d.flows_solved = after.flows_solved - before.flows_solved;
  d.frontier_flows = after.frontier_flows - before.frontier_flows;
  d.solver_iterations = after.solver_iterations - before.solver_iterations;
  d.bottleneck_links = after.bottleneck_links - before.bottleneck_links;
  d.largest_component =
      std::max(after.largest_component, before.largest_component);
  d.writeback_applied = after.writeback_applied - before.writeback_applied;
  d.writeback_skipped = after.writeback_skipped - before.writeback_skipped;
  d.minshare_incr = after.minshare_incr - before.minshare_incr;
  d.minshare_full = after.minshare_full - before.minshare_full;
  return d;
}

}  // namespace

ScenarioSession::ScenarioSession(
    std::shared_ptr<const net::TopologySnapshot> snap,
    net::FlowSimConfig sim_cfg)
    : fabric_(std::move(snap)), sim_cfg_(sim_cfg) {
  sim_.emplace(eng_, fabric_, sim_cfg_);
}

void ScenarioSession::reset_sim() {
  // Destroy the simulator before wiping the engine it references: its
  // completion callbacks and pending-event ids die with it, then the fresh
  // engine starts with an empty heap at t = 0 (results are relative to t0,
  // so the clock reset is unobservable).
  sim_.reset();
  eng_ = sim::Engine{};
  sim_.emplace(eng_, fabric_, sim_cfg_);
}

void ScenarioSession::validate(const Scenario& sc) const {
  const int neps = fabric_.topology().num_endpoints();
  const auto nlinks = fabric_.snapshot()->num_links();
  for (int l : sc.fail_links)
    if (l < 0 || static_cast<std::size_t>(l) >= nlinks)
      throw std::invalid_argument("scenario: fail link " + std::to_string(l) +
                                  " out of range");
  for (const auto& [l, cap] : sc.capacity_overrides) {
    if (l < 0 || static_cast<std::size_t>(l) >= nlinks)
      throw std::invalid_argument("scenario: override link " +
                                  std::to_string(l) + " out of range");
    (void)cap;  // value intentionally unchecked: the solver rejects bad
                // capacities at resolve time (fault-injection tests)
  }
  for (const FlowSpec& f : sc.flows) {
    if (f.src < 0 || f.src >= neps || f.dst < 0 || f.dst >= neps ||
        f.src == f.dst)
      throw std::invalid_argument("scenario: bad flow endpoints " +
                                  std::to_string(f.src) + " -> " +
                                  std::to_string(f.dst));
    if (!(f.bytes > 0))
      throw std::invalid_argument("scenario: flow bytes must be > 0");
    if (!(f.start_s >= 0))
      throw std::invalid_argument("scenario: flow start must be >= 0");
  }
}

void ScenarioSession::apply_overlay(const Scenario& sc) {
  // Diff, don't rebuild: only the symmetric difference with the current
  // overlay touches the capacity epoch. The sets are scenario-sized (a
  // handful of links), so linear membership scans beat any index.
  const auto wants_failed = [&](int l) {
    return std::find(sc.fail_links.begin(), sc.fail_links.end(), l) !=
           sc.fail_links.end();
  };
  const auto& failed = fabric_.overlay().failed_link_ids();
  ov_failed_scratch_.assign(failed.begin(), failed.end());  // grow-only copy
  for (int l : ov_failed_scratch_)
    if (!wants_failed(l)) fabric_.restore_link(l);
  for (int l : sc.fail_links) fabric_.fail_link(l);

  const auto wants_override = [&](int l) {
    for (const auto& [ol, cap] : sc.capacity_overrides)
      if (ol == l) return true;
    return false;
  };
  const auto& overrides = fabric_.overlay().capacity_overrides();
  ov_caps_scratch_.assign(overrides.begin(), overrides.end());  // grow-only
  for (const auto& [l, cap] : ov_caps_scratch_)
    if (!wants_override(l)) fabric_.clear_link_capacity(l);
  for (const auto& [l, cap] : sc.capacity_overrides)
    fabric_.set_link_capacity(l, cap);
}

ScenarioResult ScenarioSession::run(const Scenario& sc) {
  ScenarioResult res;
  run(sc, res);
  return res;
}

void ScenarioSession::run(const Scenario& sc, ScenarioResult& out) {
  validate(sc);
  apply_overlay(sc);

  out.capacity_epoch = fabric_.capacity_epoch();
  out.completion_s.assign(sc.flows.size(), -1.0);
  out.makespan_s = 0;
  out.dropped = 0;
  const net::FlowSim::Stats before = sim_->stats();
  const std::uint64_t dropped_before = sim_->dropped_flows();

  // Engine time is monotone across the session's scenarios; everything the
  // caller sees is relative to this scenario's start.
  const double t0 = eng_.now();
  cur_sc_ = &sc;
  cur_res_ = &out;
  cur_t0_ = t0;
  for (std::size_t i = 0; i < sc.flows.size(); ++i) {
    // Both closures capture exactly [this, i]: small enough for
    // std::function's in-place buffer, so a warmed session schedules and
    // completes flows without touching the heap (the old captures carried
    // the FlowSpec + t0 by value and heap-allocated twice per flow).
    eng_.schedule_at(t0 + sc.flows[i].start_s, [this, i] {
      const FlowSpec& f = cur_sc_->flows[i];
      sim_->start(f.src, f.dst, f.bytes, [this, i] {
        cur_res_->completion_s[i] = eng_.now() - cur_t0_;
      });
    });
  }
  try {
    eng_.run();
  } catch (...) {
    // A mid-run throw (solver rejecting an unvalidated capacity override,
    // routing with no live route) abandons queued events and active flows
    // whose callbacks reference *this run's* scenario + result. Rebuild
    // engine + sim so nothing dangles into the next run, then let the
    // caller see the error.
    cur_sc_ = nullptr;
    cur_res_ = nullptr;
    reset_sim();
    throw;
  }
  cur_sc_ = nullptr;
  cur_res_ = nullptr;

  out.makespan_s = eng_.now() - t0;
  out.dropped = sim_->dropped_flows() - dropped_before;
  out.stats = stats_delta(sim_->stats(), before);
  ++scenarios_run_;
}

}  // namespace xscale::serve
