// Proxy-application framework for the paper's CAAR and ECP codes (§4.4).
//
// Each application is described declaratively (AppSpec): the GPU kernels one
// work unit costs per step, the communication pattern per step, how work
// units map to the figure of merit, and per-machine code-quality factors
// (the CAAR/ECP optimization history the paper narrates — e.g. Cholla's
// "4-5x from algorithmic optimizations", EXAALT's "~25x from the SNAP
// kernel rewrite"). Running a spec on a machine produces an AppRun whose
// step time combines the roofline compute model with the fabric-backed
// communication model — so weak-scaling efficiency is an output, not an
// input.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "machines/machine.hpp"
#include "mpi/comm.hpp"
#include "perf/roofline.hpp"

namespace xscale::apps {

// Communication cost of one step, per rank.
struct CommSpec {
  double halo_bytes = 0;       // bytes exchanged with each neighbour
  int halo_neighbors = 0;
  double allreduce_bytes = 0;  // global reduction payload
  double alltoall_bytes_per_pair = 0;  // personalized all-to-all (FFT transpose)
  double allgather_bytes = 0;
  // Fraction of communication hidden behind compute (GPU-aware overlap).
  double overlap = 0.0;
  // Per-machine overlap override: e.g. AthenaPK hides most halo traffic on
  // Frontier because each GCD owns a NIC (§4.4.1 attributes its 96%-vs-48%
  // scaling gap to exactly this), while on Summit 6 GPUs share 2 NICs.
  std::map<std::string, double> overlap_override;

  double machine_overlap(const std::string& machine) const {
    const auto it = overlap_override.find(machine);
    return it == overlap_override.end() ? overlap : it->second;
  }
};

struct AppSpec {
  std::string name;
  std::string fom_units;
  std::string domain;  // science domain, for the report

  // Resident work units per GPU/GCD (weak scaling: problem grows with the
  // machine). A "work unit" is app-specific: a lattice site, a particle
  // block, a mesh cell block...
  double work_units_per_gpu = 1;
  // Device cost of ONE work unit for ONE step.
  std::vector<perf::KernelWork> kernels_per_unit;
  CommSpec comm;
  // FOM units produced by one work unit per step.
  double fom_per_unit_step = 1;

  // Code-quality factor per machine name: the fraction of the roofline bound
  // this code reaches on that machine. Encodes the port/optimization history
  // the paper describes. Machines not listed use `default_efficiency`.
  std::map<std::string, double> efficiency;
  double default_efficiency = 0.5;

  // Memory footprint of one work unit (bytes) — used to check the problem
  // fits (GESTS' 32768^3 "only Frontier has the memory" claim).
  double bytes_per_unit = 0;

  double machine_efficiency(const std::string& machine) const {
    const auto it = efficiency.find(machine);
    return it == efficiency.end() ? default_efficiency : it->second;
  }
};

struct AppRun {
  std::string app;
  std::string machine;
  int nodes = 0;
  int gpus = 0;
  double step_time = 0;     // seconds
  double compute_time = 0;  // per step
  double comm_time = 0;     // per step (after overlap)
  double fom = 0;           // FOM units per second
  double parallel_efficiency = 0;  // single-node rate / per-node rate at scale
  bool fits_in_memory = true;
};

// Run `spec` on `machine` with an allocation of `nodes` node ids. The fabric
// pointer may be null (analytic network model). `ppn` ranks per node; the
// paper's standard is one rank per GCD.
AppRun run_app(const AppSpec& spec, const machines::Machine& machine,
               const net::Fabric* fabric, const std::vector<int>& nodes, int ppn = 0);

// Convenience: allocate the first `node_count` nodes.
AppRun run_app(const AppSpec& spec, const machines::Machine& machine,
               const net::Fabric* fabric, int node_count);

}  // namespace xscale::apps
