#include "apps/hpl.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace xscale::apps {

HplResult run_hpl(const machines::Machine& machine, const net::Fabric* fabric,
                  int nodes, HplConfig cfg) {
  HplResult out;
  const auto& gpu = machine.node.gpu;
  const int gpus = nodes * std::max(1, machine.node.gpus);

  // Matrix order from the memory budget: N^2 * 8 bytes across all HBM.
  const double hbm_total =
      static_cast<double>(gpus) * gpu.hbm.capacity_bytes * cfg.memory_fraction;
  out.n = std::floor(std::sqrt(hbm_total / 8.0));
  out.rpeak = static_cast<double>(gpus) * gpu.matrix_peak(hw::Precision::FP64);

  std::vector<int> alloc(static_cast<std::size_t>(nodes));
  std::iota(alloc.begin(), alloc.end(), 0);
  mpi::SimComm comm(machine, fabric, alloc, {.ppn = std::max(1, machine.node.gpus)});

  // Integrate over sampled panels; each sample stands for n/NB/samples panels.
  const double nb = cfg.block_size;
  const double panels_total = out.n / nb;
  const double panels_per_sample =
      panels_total / static_cast<double>(cfg.panels_sampled);

  double t_total = 0, t_dgemm = 0;
  for (int s = 0; s < cfg.panels_sampled; ++s) {
    // Remaining submatrix order at this point of the factorization.
    const double frac = static_cast<double>(s) / cfg.panels_sampled;
    const double m = out.n * (1.0 - frac);
    // Per-GPU share of the trailing update: 2 * m^2 * NB flops total.
    const double update_flops = 2.0 * m * m * nb / gpus;
    // The local DGEMM runs at the achieved rate for its local tile size.
    const int local_n = static_cast<int>(std::max(256.0, m / std::sqrt(gpus)));
    const auto it = cfg.sustained_by_machine.find(machine.name);
    const double sustained =
        it != cfg.sustained_by_machine.end() ? it->second : cfg.sustained_fraction;
    const double rate = gpu.gemm_achieved(hw::Precision::FP64, local_n) * sustained;
    const double t_update = update_flops / std::max(rate, 1.0);
    // Panel factorization: memory-bound pass over an m x NB strip (row
    // swaps + scaling), on the panel column of processes.
    const double panel_bytes = m * nb * 8.0;
    const double t_panel =
        panel_bytes / (gpu.hbm.peak_bandwidth * 0.5) / std::sqrt(gpus);
    // Panel broadcast along the process row + pivot allreduce.
    const double t_comm =
        comm.broadcast_time(nb * nb * 8.0) / std::sqrt(static_cast<double>(comm.size())) +
        comm.allreduce_time(8.0 * nb);
    t_total += (t_update + t_panel + t_comm) * panels_per_sample;
    t_dgemm += t_update * panels_per_sample;
  }

  out.time_s = t_total;
  out.rmax = (2.0 / 3.0 * out.n * out.n * out.n) / t_total;
  out.efficiency = out.rmax / out.rpeak;
  out.dgemm_fraction = t_dgemm / t_total;
  return out;
}

}  // namespace xscale::apps
