// HPL (High-Performance Linpack) proxy — the benchmark behind Frontier's
// TOP500/Green500 headline (§5.1: 1.102 EF Rmax at 21.1 MW).
//
// Blocked right-looking LU: for each panel k of NB columns, factor the panel
// (memory-bound), broadcast it along the process row, and update the
// trailing submatrix with DGEMM (matrix-core bound). The model integrates
// per-panel times over the whole factorization, so Rmax/Rpeak emerges from
// the DGEMM efficiency curve and the communication terms.
#pragma once

#include <map>
#include <string>

#include "machines/machine.hpp"
#include "mpi/comm.hpp"

namespace xscale::apps {

struct HplConfig {
  double memory_fraction = 0.80;  // of HBM used for the matrix
  int block_size = 512;           // NB
  int panels_sampled = 200;       // integration resolution
  // Fraction of the ideal DGEMM rate the full HPL sustains: look-ahead
  // imperfections, row swaps, and software maturity. Frontier's June-2022
  // value (0.44) reproduces its 1.102 EF Rmax; Summit's mature CUDA stack
  // ran much closer to its DGEMM bound (148.6 PF Rmax -> 0.77). Machines not
  // listed use `sustained_fraction`.
  double sustained_fraction = 0.44;
  std::map<std::string, double> sustained_by_machine = {{"Frontier", 0.44},
                                                        {"Summit", 0.77}};
};

struct HplResult {
  double n = 0;            // matrix order
  double rmax = 0;         // sustained FLOP/s
  double rpeak = 0;        // machine DGEMM peak
  double time_s = 0;       // time-to-solution
  double efficiency = 0;   // rmax / rpeak
  double dgemm_fraction = 0;  // time share in the trailing update
};

HplResult run_hpl(const machines::Machine& machine, const net::Fabric* fabric,
                  int nodes, HplConfig cfg = {});

}  // namespace xscale::apps
