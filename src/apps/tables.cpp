#include "apps/tables.hpp"

#include <cmath>

#include "sim/parallel.hpp"

namespace xscale::apps {

std::vector<SpeedupRow> table6_rows() {
  // CAAR/INCITE, baseline Summit (4,600 compute nodes), KPP target 4x.
  return {
      {{comet()}, "Summit", 9074, 4600, 4.0, 5.2, false},
      {{lsms()}, "Summit", 8192, 4500, 4.0, 7.5, true},
      {{picongpu()}, "Summit", 9216, 4600, 4.0, 4.7, false},
      {{cholla()}, "Summit", 9216, 4600, 4.0, 20.0, false},
      {{gests(1)}, "Summit", 8192, 4600, 4.0, 5.9, false},
      {{athenapk()}, "Summit", 9200, 4600, 4.0, 4.6, false},
  };
}

std::vector<SpeedupRow> table7_rows() {
  // ECP, KPP target 50x over ~10-20 PF baselines.
  return {
      {{warpx()}, "Cori", 9216, 9688, 50.0, 500.0, false},
      {{hacc()}, "Theta", 8192, 4392, 50.0, 234.0, false},
      {{exaalt()}, "Mira", 7000, 49152, 50.0, 398.5, false},
      {{exasmr_shift(), exasmr_nekrs()}, "Titan", 6400, 18688, 50.0, 70.0, false},
      {{wdmapp()}, "Titan", 6000, 18688, 50.0, 150.0, false},
  };
}

std::vector<SpeedupResult> run_rows(const std::vector<SpeedupRow>& rows,
                                    const net::Fabric* frontier_fabric,
                                    const net::Fabric* summit_fabric) {
  const auto frontier = machines::frontier();
  // Rows are independent (the shared fabrics are only read), so they run on
  // the pool with indexed result writes — row order in the output never
  // depends on the thread count.
  std::vector<SpeedupResult> out(rows.size());
  sim::parallel_for(rows.size(), 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const SpeedupRow& row = rows[i];
      SpeedupResult r;
      r.row = row;
      const auto baseline = machines::by_name(row.baseline_machine).value();
      const net::Fabric* base_fabric =
          row.baseline_machine == "Summit" ? summit_fabric : nullptr;

      double harmonic_sum = 0;
      for (const auto& spec : row.specs) {
        const auto fr =
            run_app(spec, frontier, frontier_fabric, row.frontier_nodes);
        const auto br = run_app(spec, baseline, base_fabric, row.baseline_nodes);
        double s = fr.fom / br.fom;
        if (row.per_gpu) s = (fr.fom / fr.gpus) / (br.fom / br.gpus);
        harmonic_sum += 1.0 / s;
        r.frontier_runs.push_back(fr);
        r.baseline_runs.push_back(br);
      }
      r.speedup = static_cast<double>(row.specs.size()) / harmonic_sum;
      out[i] = std::move(r);
    }
  });
  return out;
}

}  // namespace xscale::apps
