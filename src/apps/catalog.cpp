#include "apps/catalog.hpp"

#include "sim/units.hpp"

namespace xscale::apps {

using hw::Precision;
using namespace xscale::units;

AppSpec comet() {
  AppSpec s;
  s.name = "CoMet";
  s.domain = "comparative genomics";
  s.fom_units = "comparisons/s";
  // One work unit = one vector-element comparison of the 3-way CCC method,
  // executed as mixed-precision (FP16-in / FP32-accumulate) GEMM.
  s.work_units_per_gpu = 5e9;
  s.kernels_per_unit = {{.flops = 16,  // ops per CCC comparison
                         .bytes = 0.05,  // GEMM blocking reuses operands
                         .precision = Precision::FP16,
                         .uses_matrix_cores = true,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  s.comm.allreduce_bytes = 8;
  s.fom_per_unit_step = 1.0;
  s.bytes_per_unit = 4;
  // Calibrated from the paper's measured rates: 6.71 EF mixed precision on
  // 72,592 GCDs = 48.3% of the FP16 matrix peak; the Summit baseline's
  // 81.2e15 comparisons/s = 37.7% of V100 tensor peak.
  s.efficiency = {{"Frontier", 0.483}, {"Summit", 0.377}};
  s.default_efficiency = 0.35;
  return s;
}

AppSpec lsms() {
  AppSpec s;
  s.name = "LSMS";
  s.domain = "first-principles materials";
  s.fom_units = "FOM/s";
  // One work unit = one atom's multiple-scattering solve: a dense double
  // complex matrix inversion on the matrix-core path. 2.11e12 FLOP per atom
  // per self-consistency step calibrated to the 8,192-node FOM of 1.027e16.
  s.work_units_per_gpu = 16;  // 1,048,576 atoms / 65,536 GCDs
  s.kernels_per_unit = {{.flops = 2.11e12,
                         .bytes = 2e9,
                         .precision = Precision::FP64,
                         .uses_matrix_cores = true,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  s.comm.allreduce_bytes = KiB(64);  // Green's function moments
  s.fom_per_unit_step = 9.79e9;
  s.bytes_per_unit = GiB(1.5);
  // Frontier reaches hipBLAS-grade matrix-core efficiency (Figure 3's 70.5%);
  // the pre-CAAR Summit baseline ran cuSolver kernels at ~58% — together
  // giving the paper's 7.5x per-GPU inversion speedup.
  s.efficiency = {{"Frontier", 0.7056}, {"Summit", 0.578}};
  s.default_efficiency = 0.5;
  return s;
}

AppSpec picongpu() {
  AppSpec s;
  s.name = "PIConGPU";
  s.domain = "laser-plasma physics";
  s.fom_units = "weighted updates/s";
  // One unit = one weighted update (0.9 particle + 0.1 cell); ~900 bytes of
  // HBM traffic per update (push, current deposit, field interpolation).
  s.work_units_per_gpu = 5e7;
  s.kernels_per_unit = {{.flops = 250,
                         .bytes = 908,
                         .precision = Precision::FP32,
                         .uses_matrix_cores = false,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  s.comm.halo_bytes = MiB(20);
  s.comm.halo_neighbors = 6;
  // Alpaka streams overlap guard exchanges; the per-GCD NIC on Frontier
  // hides more of it than Summit's 3-GPUs-per-NIC layout.
  s.comm.overlap = 0.3;
  s.comm.overlap_override = {{"Frontier", 0.6}, {"Summit", 0.3}};
  s.fom_per_unit_step = 1.0;
  s.bytes_per_unit = 400;
  // §4.4.1: 25% single-GCD speedup over V100 — the HIP/Alpaka port achieves
  // a lower fraction of the GCD's higher bandwidth (0.55 x 1635 vs 0.8 x 900).
  s.efficiency = {{"Frontier", 0.55}, {"Summit", 0.77}};
  s.default_efficiency = 0.5;
  return s;
}

AppSpec cholla() {
  AppSpec s;
  s.name = "Cholla";
  s.domain = "astrophysical hydrodynamics";
  s.fom_units = "cell-updates/s";
  s.work_units_per_gpu = 3e7;
  s.kernels_per_unit = {{.flops = 1200,
                         .bytes = 600,  // PPM reconstruction + Riemann passes
                         .precision = Precision::FP64,
                         .uses_matrix_cores = false,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  s.comm.halo_bytes = MiB(6);
  s.comm.halo_neighbors = 6;
  s.comm.overlap = 0.4;
  s.fom_per_unit_step = 1.0;
  s.bytes_per_unit = 400;
  // §4.4.1: "about 4-5x of these speedups can be attributed to the intensive
  // algorithmic optimizations" done during CAAR — the baseline Summit run
  // predates them (0.17 vs 0.75 of the bandwidth roofline).
  s.efficiency = {{"Frontier", 0.78}, {"Summit", 0.17}};
  s.default_efficiency = 0.3;
  return s;
}

AppSpec gests(int decomposition_dims) {
  AppSpec s;
  s.name = decomposition_dims == 1 ? "GESTS (1D)" : "GESTS (2D)";
  s.domain = "turbulence DNS";
  s.fom_units = "grid-points/s (N^3/t)";
  // One unit = one grid point per step: ~8 bandwidth passes over a
  // double-complex field (forward+inverse 3D FFT stages plus nonlinear term).
  s.work_units_per_gpu = 4.77e8;  // 32768^3 over 73,728 GCDs
  s.kernels_per_unit = {{.flops = 480,  // ~5 N log N per 1D FFT pass
                         .bytes = 128,
                         .precision = Precision::FP64,
                         .uses_matrix_cores = false,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  // Spectral transposes: every point crosses the machine twice per step.
  // The 2D pencil decomposition performs two smaller transposes with an
  // extra reshuffle pass (~15% more wire traffic) but scales to more ranks.
  const double transpose_bytes = 4.77e8 * 16.0 * 2.0;
  s.comm.alltoall_bytes_per_pair = 0;  // set at run time via allgather proxy
  s.comm.allgather_bytes = 0;
  s.comm.halo_bytes = transpose_bytes * (decomposition_dims == 1 ? 1.0 : 1.15);
  s.comm.halo_neighbors = 1;  // modelled as one aggregate exchange
  s.comm.overlap = 0.55;      // §4.4.1: asynchronous GPU-aware MPI pipelining
  s.fom_per_unit_step = 1.0;
  s.bytes_per_unit = 96;  // state + scratch per point (16 B x 6 arrays)
  s.efficiency = {{"Frontier", 0.60}, {"Summit", 0.60}};
  s.default_efficiency = 0.5;
  return s;
}

AppSpec athenapk() {
  AppSpec s;
  s.name = "AthenaPK";
  s.domain = "astrophysical MHD";
  s.fom_units = "cell-updates/s";
  s.work_units_per_gpu = 2e7;
  s.kernels_per_unit = {{.flops = 1500,
                         .bytes = 500,
                         .precision = Precision::FP64,
                         .uses_matrix_cores = false,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  s.comm.halo_bytes = MiB(8);
  s.comm.halo_neighbors = 6;
  // §4.4.1 attributes the 96% (Frontier) vs 48% (Summit) weak-scaling gap to
  // each GCD owning a NIC: Parthenon's per-device communication streams
  // overlap almost fully on Frontier and barely on Summit.
  s.comm.overlap = 0.0;
  s.comm.overlap_override = {{"Frontier", 0.85}, {"Summit", 0.1}};
  s.fom_per_unit_step = 1.0;
  s.bytes_per_unit = 450;
  // Per-node ratio calibrated to the paper's single-node result: 1.2x more
  // cell-updates/s on a Frontier node (8x larger problem): the fresh Kokkos
  // MHD port reaches a lower roofline fraction than the mature CUDA path.
  s.efficiency = {{"Frontier", 0.42}, {"Summit", 0.85}};
  s.default_efficiency = 0.4;
  return s;
}

AppSpec warpx() {
  AppSpec s;
  s.name = "WarpX";
  s.domain = "plasma accelerators";
  s.fom_units = "particle-updates/s";
  s.work_units_per_gpu = 6e7;
  s.kernels_per_unit = {{.flops = 400,
                         .bytes = 700,
                         .precision = Precision::FP64,
                         .uses_matrix_cores = false,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  s.comm.halo_bytes = MiB(8);
  s.comm.halo_neighbors = 6;
  s.comm.overlap = 0.5;
  s.fom_per_unit_step = 1.0;
  s.bytes_per_unit = 350;
  // Baseline is Warp — the original Fortran/Python CPU code — on Cori KNL,
  // which reached only a few percent of the MCDRAM roofline; WarpX is a
  // ground-up AMReX rewrite (Gordon Bell 2022). The 500x of Table 7 is
  // mostly code, not hardware.
  s.efficiency = {{"Frontier", 0.65}, {"Cori", 0.033}};
  s.default_efficiency = 0.3;
  return s;
}

AppSpec hacc() {
  AppSpec s;
  s.name = "ExaSky (HACC)";
  s.domain = "cosmology";
  s.fom_units = "particle-steps/s";
  // Gravity + CRK-SPH kernels: FP32 particle interactions, compute-bound.
  s.work_units_per_gpu = 2e8;
  s.kernels_per_unit = {{.flops = 1500,  // P3M short-range + SPH neighbours
                         .bytes = 120,
                         .precision = Precision::FP32,
                         .uses_matrix_cores = false,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  s.comm.halo_bytes = MiB(12);
  s.comm.halo_neighbors = 6;
  s.comm.allreduce_bytes = KiB(1);
  s.comm.overlap = 0.5;
  s.fom_per_unit_step = 1.0;
  s.bytes_per_unit = 150;
  // §4.4.2 expects "roughly a factor of two hardware single precision
  // improvement between Summit and Frontier nodes"; the Theta/KNL baseline
  // ran the pre-GPU code path at a modest fraction of peak.
  s.efficiency = {{"Frontier", 0.56}, {"Summit", 0.60}, {"Theta", 0.11}};
  s.default_efficiency = 0.3;
  return s;
}

AppSpec exaalt() {
  AppSpec s;
  s.name = "EXAALT";
  s.domain = "molecular dynamics (ParSplice)";
  s.fom_units = "atom-steps/s";
  // One unit = one atom for one MD step under the SNAP ML potential:
  // ~1.7e8 FLOP (bispectrum components + quadratic model).
  s.work_units_per_gpu = 1000;  // 4000-atom replica per 4 GCDs
  s.kernels_per_unit = {{.flops = 1.69e8,
                         .bytes = 2e5,
                         .precision = Precision::FP64,
                         .uses_matrix_cores = false,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  // Sub-lattice ParSplice: domains synchronize only on topological
  // transitions, not every step (§4.4.2) — communication is negligible.
  s.comm.allreduce_bytes = 8;
  s.comm.overlap = 0.9;
  s.fom_per_unit_step = 1.0;
  s.bytes_per_unit = 1e4;
  // The near-complete SNAP kernel rewrite (§4.4.2: "~25x performance
  // increase on a single V100") is what separates the Frontier efficiency
  // from the pre-ECP baseline that ran on Mira.
  s.efficiency = {{"Frontier", 0.45}, {"Mira", 0.15}, {"Summit", 0.42}};
  s.default_efficiency = 0.2;
  return s;
}

AppSpec exasmr_shift() {
  AppSpec s;
  s.name = "ExaSMR (Shift)";
  s.domain = "Monte Carlo neutronics";
  s.fom_units = "particles/s";
  // One unit = one particle history per "step": cross-section lookups are
  // latency/bandwidth-bound with low arithmetic intensity.
  s.work_units_per_gpu = 7e5;  // 51.2e9 particles per cycle over 65,536 GCDs
  s.kernels_per_unit = {{.flops = 4e4,
                         .bytes = 7e4,  // random-walk table traffic
                         .precision = Precision::FP64,
                         .uses_matrix_cores = false,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  s.comm.allreduce_bytes = MiB(1);  // tally reduction per cycle
  s.comm.overlap = 0.2;
  s.fom_per_unit_step = 1.0;
  s.bytes_per_unit = 600;
  // Titan baseline: K20X with the pre-ECP Shift, heavy divergence penalties.
  s.efficiency = {{"Frontier", 0.64}, {"Titan", 0.212}, {"Summit", 0.55}};
  s.default_efficiency = 0.3;
  return s;
}

AppSpec exasmr_nekrs() {
  AppSpec s;
  s.name = "ExaSMR (NekRS)";
  s.domain = "spectral-element CFD";
  s.fom_units = "DOF-steps/s";
  s.work_units_per_gpu = 5.7e6;  // 376e9 DOF over 65,536 GCDs
  s.kernels_per_unit = {{.flops = 2000,  // high-order operator apply
                         .bytes = 800,
                         .precision = Precision::FP64,
                         .uses_matrix_cores = false,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  s.comm.halo_bytes = MiB(1.5);
  s.comm.halo_neighbors = 8;
  s.comm.allreduce_bytes = 64;  // pressure-solve dot products
  s.comm.overlap = 0.5;
  s.fom_per_unit_step = 1.0;
  s.bytes_per_unit = 900;
  s.efficiency = {{"Frontier", 0.71}, {"Titan", 0.112}, {"Summit", 0.60}};
  s.default_efficiency = 0.3;
  return s;
}

AppSpec wdmapp() {
  AppSpec s;
  s.name = "WDMApp";
  s.domain = "whole-device fusion modelling";
  s.fom_units = "particle-steps/s";
  s.work_units_per_gpu = 1e8;
  s.kernels_per_unit = {{.flops = 600,
                         .bytes = 300,  // gyrokinetic PIC scatter/gather
                         .precision = Precision::FP64,
                         .uses_matrix_cores = false,
                         .compute_efficiency = 1.0,
                         .memory_efficiency = 1.0}};
  s.comm.halo_bytes = MiB(6);
  s.comm.halo_neighbors = 4;  // field-line-following exchange
  s.comm.allreduce_bytes = KiB(16);
  s.comm.overlap = 0.4;
  s.fom_per_unit_step = 1.0;
  s.bytes_per_unit = 250;
  // XGC/GENE GPU ports vs the CPU-era coupled code on Titan's host side.
  s.efficiency = {{"Frontier", 0.75}, {"Titan", 0.077}, {"Summit", 0.60}};
  s.default_efficiency = 0.3;
  return s;
}

std::vector<AppSpec> all_apps() {
  return {comet(),    lsms(),         picongpu(),      cholla(),
          gests(1),   gests(2),       athenapk(),      warpx(),
          hacc(),     exaalt(),       exasmr_shift(),  exasmr_nekrs(),
          wdmapp()};
}

}  // namespace xscale::apps
