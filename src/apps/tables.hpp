// Reproduction harness for Table 6 (CAAR/INCITE) and Table 7 (ECP):
// run each proxy app on the simulated Frontier and on its paper baseline
// machine, and report the figure-of-merit speedup against the KPP target.
#pragma once

#include <vector>

#include "apps/catalog.hpp"
#include "machines/machine.hpp"
#include "net/fabric.hpp"

namespace xscale::apps {

struct SpeedupRow {
  // Several specs are combined by harmonic mean (ExaSMR's coupled FOM).
  std::vector<AppSpec> specs;
  std::string baseline_machine;
  int frontier_nodes = 0;
  int baseline_nodes = 0;
  double target = 0;          // KPP target (4x CAAR, 50x ECP)
  double paper_achieved = 0;  // the paper's measured speedup
  // LSMS reports a per-GPU kernel speedup rather than a whole-machine one.
  bool per_gpu = false;
};

struct SpeedupResult {
  SpeedupRow row;
  std::vector<AppRun> frontier_runs;
  std::vector<AppRun> baseline_runs;
  double speedup = 0;
  bool meets_target() const { return speedup >= row.target; }
};

std::vector<SpeedupRow> table6_rows();
std::vector<SpeedupRow> table7_rows();

// Fabric pointers may be shared across rows (building them is the expensive
// part); pass null to fall back to the analytic network model.
std::vector<SpeedupResult> run_rows(const std::vector<SpeedupRow>& rows,
                                    const net::Fabric* frontier_fabric,
                                    const net::Fabric* summit_fabric);

}  // namespace xscale::apps
