#include "apps/app.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace xscale::apps {

namespace {

// Per-step device time for one rank owning `units` work units.
double compute_time_per_step(const AppSpec& spec, const hw::GpuConfig& gpu,
                             double units, double machine_eff) {
  double t = 0;
  for (auto k : spec.kernels_per_unit) {
    k.flops *= units;
    k.bytes *= units;
    k.compute_efficiency *= machine_eff;
    k.memory_efficiency *= machine_eff;
    t += perf::kernel_time(k, gpu);
  }
  return t;
}

}  // namespace

AppRun run_app(const AppSpec& spec, const machines::Machine& machine,
               const net::Fabric* fabric, const std::vector<int>& nodes, int ppn) {
  AppRun out;
  out.app = spec.name;
  out.machine = machine.name;
  out.nodes = static_cast<int>(nodes.size());
  const int gpus_per_node = std::max(1, machine.node.gpus);
  if (ppn <= 0) ppn = gpus_per_node;  // one rank per device, the standard layout
  out.gpus = out.nodes * gpus_per_node;

  const double eff = spec.machine_efficiency(machine.name);
  // Weak-scaled problem, clamped to what fits in device memory (GESTS'
  // 32768^3 run fits only Frontier's HBM; smaller machines run smaller N).
  const double mem_limit =
      spec.bytes_per_unit > 0
          ? 0.9 * machine.node.gpu.hbm.capacity_bytes / spec.bytes_per_unit
          : spec.work_units_per_gpu;
  const double units_per_gpu = std::min(spec.work_units_per_gpu, mem_limit);
  out.fits_in_memory = spec.work_units_per_gpu <= mem_limit;

  out.compute_time =
      compute_time_per_step(spec, machine.node.gpu, units_per_gpu, eff);

  // Communication per step, per rank.
  double comm = 0;
  if (out.nodes > 1) {
    mpi::CommConfig ccfg;
    ccfg.ppn = ppn;
    mpi::SimComm comm_layer(machine, fabric, nodes, ccfg);
    const auto& c = spec.comm;
    // Volume-coupled traffic shrinks with a memory-clamped problem.
    const double scale = units_per_gpu / spec.work_units_per_gpu;
    if (c.halo_neighbors > 0)
      comm += comm_layer.halo_exchange_time(c.halo_bytes * scale, c.halo_neighbors);
    if (c.allreduce_bytes > 0) comm += comm_layer.allreduce_time(c.allreduce_bytes);
    if (c.alltoall_bytes_per_pair > 0)
      comm += comm_layer.alltoall_time(c.alltoall_bytes_per_pair * scale);
    if (c.allgather_bytes > 0)
      comm += comm_layer.allgather_time(c.allgather_bytes * scale);
    comm *= (1.0 - std::clamp(spec.comm.machine_overlap(machine.name), 0.0, 1.0));
  }
  out.comm_time = comm;
  out.step_time = out.compute_time + out.comm_time;

  const double total_units =
      static_cast<double>(out.gpus) * units_per_gpu;
  out.fom = total_units * spec.fom_per_unit_step / out.step_time;
  out.parallel_efficiency = out.compute_time / out.step_time;
  return out;
}

AppRun run_app(const AppSpec& spec, const machines::Machine& machine,
               const net::Fabric* fabric, int node_count) {
  std::vector<int> nodes(static_cast<std::size_t>(node_count));
  std::iota(nodes.begin(), nodes.end(), 0);
  return run_app(spec, machine, fabric, nodes);
}

}  // namespace xscale::apps
