// The application catalog: one AppSpec per CAAR/INCITE code (Table 6) and
// per ECP code (Table 7).
//
// Every efficiency constant is a *code-quality* factor calibrated against the
// paper's own narrative and measured FOMs; the hardware side (peaks,
// bandwidths, fabric) comes from the machine models. See each function's
// comment for the calibration source.
#pragma once

#include "apps/app.hpp"

namespace xscale::apps {

// --- CAAR / INCITE (Table 6, baseline Summit, target 4x) ---------------------
AppSpec comet();       // combinatorial metrics, mixed-precision GEMM
AppSpec lsms();        // dense complex FP64 multiple scattering
AppSpec picongpu();    // particle-in-cell, bandwidth-bound
AppSpec cholla();      // astrophysical hydrodynamics
AppSpec gests(int decomposition_dims = 1);  // pseudo-spectral DNS (3D FFT)
AppSpec athenapk();    // AMR magnetohydrodynamics (Kokkos/Parthenon)

// --- ECP (Table 7, 50x targets vs pre-exascale baselines) ---------------------
AppSpec warpx();        // electromagnetic PIC (baseline: Warp on Cori)
AppSpec hacc();         // ExaSky cosmology (baseline: Theta)
AppSpec exaalt();       // ParSplice/LAMMPS SNAP MD (baseline: Mira)
AppSpec exasmr_shift(); // Monte Carlo neutronics (baseline: Titan)
AppSpec exasmr_nekrs(); // spectral-element CFD (baseline: Titan)
AppSpec wdmapp();       // coupled whole-device fusion model (baseline: Titan)

// All CAAR + ECP specs (Shift and NekRS listed separately).
std::vector<AppSpec> all_apps();

}  // namespace xscale::apps
