// xscale — umbrella header for the Frontier system-architecture simulator.
//
// The library reproduces, in simulation, every system and experiment of
// "Frontier: Exploring Exascale" (Atchley et al., SC'23). Typical entry
// points:
//
//   auto frontier = xscale::machines::frontier();   // the machine
//   auto fabric   = frontier.build_fabric();        // Slingshot dragonfly
//   auto rates    = fabric.steady_rates(pairs);     // bandwidth model
//   auto run      = xscale::apps::run_app(xscale::apps::cholla(),
//                                         frontier, &fabric, 9216);
//
// See DESIGN.md for the per-experiment index and bench/ for the binaries
// that regenerate each table and figure of the paper.
#pragma once

#include "apps/catalog.hpp"
#include "apps/tables.hpp"
#include "hw/node.hpp"
#include "machines/machine.hpp"
#include "mpi/comm.hpp"
#include "mpi/gpcnet.hpp"
#include "net/fabric.hpp"
#include "net/flowsim.hpp"
#include "net/patterns.hpp"
#include "net/rotor.hpp"
#include "obs/metrics.hpp"
#include "obs/options.hpp"
#include "obs/trace.hpp"
#include "perf/host_stream.hpp"
#include "perf/roofline.hpp"
#include "power/power.hpp"
#include "resil/jobsim.hpp"
#include "resil/resiliency.hpp"
#include "sched/slurm.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/table.hpp"
#include "sim/units.hpp"
#include "storage/campaign.hpp"
#include "storage/nvme.hpp"
#include "storage/orion.hpp"
#include "topo/topology.hpp"

namespace xscale {

inline constexpr const char* kVersion = "1.0.0";
inline constexpr const char* kPaper =
    "Frontier: Exploring Exascale — The System Architecture of the First "
    "Exascale Supercomputer (Atchley et al., SC'23)";

}  // namespace xscale
